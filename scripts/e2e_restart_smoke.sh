#!/bin/sh
# End-to-end crash/recovery smoke: run a durable fleet (DM -> CE1 -> AD,
# both stateful processes journaling to -state-dir with -fsync 1), SIGKILL
# the AD and the CE mid-stream, restart them against the same state
# directories, and redeliver an overlapping tail with `condmon-dm
# -start-seq`. The stitched displayed stream (phase 1 + phase 2) must be
# identical to an uninterrupted reference run.
#
# A second, deliberately stateless CE replica joins only after the
# restart: it re-fires alerts for redelivered sequence numbers that were
# already displayed before the crash, so the recovered AD filter must
# suppress them from its WAL-restored state — the cross-restart duplicate
# suppression that Section 3's AD algorithms exist to provide.
#
# Usage: scripts/e2e_restart_smoke.sh  (from the repository root)
set -eu

workdir=$(mktemp -d)
trap 'kill $(cat "$workdir"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir" ./cmd/condmon-ad ./cmd/condmon-ce ./cmd/condmon-dm

AD_LISTEN=127.0.0.1:7270
CE1_LISTEN=127.0.0.1:7271
CE2_LISTEN=127.0.0.1:7272
COND='x[0] > 3000'
TOTAL=40     # updates in the full stream
CUT=20       # last seq delivered before the crash
RESTART=15   # phase-2 start seq: overlaps [RESTART, CUT] for redelivery

fail() {
    echo "FAIL: $1"
    for f in "$workdir"/*.log; do echo "--- $f:"; cat "$f"; done
    exit 1
}

# Reference run: the same stream end to end with no crash.
"$workdir/condmon-ad" -listen "$AD_LISTEN" -ad-algo AD-1 -vars x \
    > "$workdir/ref-ad.log" 2>&1 &
echo $! > "$workdir/ad.pid"
sleep 0.3
"$workdir/condmon-ce" -id CE1 -listen "$CE1_LISTEN" -ad "$AD_LISTEN" \
    -cond "$COND" > "$workdir/ref-ce1.log" 2>&1 &
echo $! > "$workdir/ce1.pid"
sleep 0.3
"$workdir/condmon-dm" -var x -ce "$CE1_LISTEN" -source reactor \
    -n "$TOTAL" -interval 5ms > "$workdir/ref-dm.log" 2>&1
sleep 1
kill "$(cat "$workdir/ad.pid")" "$(cat "$workdir/ce1.pid")" 2>/dev/null || true
sleep 0.3

# Crash run, phase 1: durable AD and CE1, stream cut at seq CUT.
"$workdir/condmon-ad" -listen "$AD_LISTEN" -ad-algo AD-1 -vars x \
    -state-dir "$workdir/ad-state" -fsync 1 > "$workdir/p1-ad.log" 2>&1 &
echo $! > "$workdir/ad.pid"
sleep 0.3
"$workdir/condmon-ce" -id CE1 -listen "$CE1_LISTEN" -ad "$AD_LISTEN" \
    -cond "$COND" -state-dir "$workdir/ce-state" -fsync 1 > "$workdir/p1-ce1.log" 2>&1 &
echo $! > "$workdir/ce1.pid"
sleep 0.3
"$workdir/condmon-dm" -var x -ce "$CE1_LISTEN" -source reactor \
    -n "$CUT" -interval 5ms > "$workdir/p1-dm.log" 2>&1
sleep 1

# Kill without warning: no Close, no final fsync beyond the per-record
# policy — recovery must come entirely from the WALs.
kill -9 "$(cat "$workdir/ad.pid")" "$(cat "$workdir/ce1.pid")"
sleep 0.3

# Phase 2: restart both against the same state directories, plus a
# stateless CE2 that will regenerate duplicates for the overlap window.
"$workdir/condmon-ad" -listen "$AD_LISTEN" -ad-algo AD-1 -vars x \
    -state-dir "$workdir/ad-state" -fsync 1 > "$workdir/p2-ad.log" 2>&1 &
echo $! > "$workdir/ad.pid"
sleep 0.3
"$workdir/condmon-ce" -id CE1 -listen "$CE1_LISTEN" -ad "$AD_LISTEN" \
    -cond "$COND" -state-dir "$workdir/ce-state" -fsync 1 > "$workdir/p2-ce1.log" 2>&1 &
echo $! > "$workdir/ce1.pid"
"$workdir/condmon-ce" -id CE2 -listen "$CE2_LISTEN" -ad "$AD_LISTEN" \
    -cond "$COND" > "$workdir/p2-ce2.log" 2>&1 &
echo $! > "$workdir/ce2.pid"
sleep 0.3
"$workdir/condmon-dm" -var x -ce "$CE1_LISTEN,$CE2_LISTEN" -source reactor \
    -start-seq "$RESTART" -n $((TOTAL - RESTART + 1)) -interval 5ms \
    > "$workdir/p2-dm.log" 2>&1
sleep 1
kill "$(cat "$workdir/ad.pid")" "$(cat "$workdir/ce1.pid")" "$(cat "$workdir/ce2.pid")" 2>/dev/null || true
sleep 0.3

# Both durable processes must have announced a WAL replay on restart.
grep -q 'AD recovered [1-9][0-9]* records'  "$workdir/p2-ad.log"  || fail "AD did not replay its WAL"
grep -q 'CE1 recovered [1-9][0-9]* records' "$workdir/p2-ce1.log" || fail "CE1 did not replay its WAL"

# The stitched displayed stream equals the uninterrupted reference,
# alert for alert and in order (sources stripped: which replica's copy
# of a duplicate wins the race is immaterial).
displayed() { sed -n 's/^ALERT \(a([^)]*)\).*/\1/p' "$@"; }
displayed "$workdir/ref-ad.log" > "$workdir/ref-stream.txt"
displayed "$workdir/p1-ad.log" "$workdir/p2-ad.log" > "$workdir/stitched-stream.txt"
[ -s "$workdir/ref-stream.txt" ] || fail "reference run displayed nothing"
diff -u "$workdir/ref-stream.txt" "$workdir/stitched-stream.txt" \
    || fail "stitched displayed stream differs from uninterrupted reference"

# The recovered AD must have suppressed CE2's replayed duplicates —
# proof the filter state survived the SIGKILL, not just the stream shape.
grep -q '(suppressed' "$workdir/p2-ad.log" || fail "recovered AD suppressed no duplicates"

# The recovered CE1 must not have re-fired for the redelivered overlap:
# every alert it ever fires appears exactly once across both phases.
ce1_ref=$(grep -c '^CE1 alert' "$workdir/ref-ce1.log" || true)
ce1_got=$(cat "$workdir/p1-ce1.log" "$workdir/p2-ce1.log" | grep -c '^CE1 alert' || true)
[ "$ce1_ref" = "$ce1_got" ] || fail "CE1 fired $ce1_got alerts across the crash, reference fired $ce1_ref"

echo "e2e restart smoke OK"
