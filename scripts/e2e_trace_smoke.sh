#!/bin/sh
# End-to-end live-tracing smoke: launch a real fleet (one DM, two CE
# replicas — one lossy — and the AD) with -tracing, curl every /trace and
# /healthz endpoint, and assert that `condmon-trace follow` stitches a
# cross-process per-seq timeline that names the suppressing AD rule.
#
# Usage: scripts/e2e_trace_smoke.sh  (from the repository root)
set -eu

workdir=$(mktemp -d)
trap 'kill $(cat "$workdir"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir" ./cmd/condmon-ad ./cmd/condmon-ce ./cmd/condmon-dm ./cmd/condmon-trace

AD_LISTEN=127.0.0.1:7260
CE1_LISTEN=127.0.0.1:7261
CE2_LISTEN=127.0.0.1:7262
AD_OBS=127.0.0.1:9260
CE1_OBS=127.0.0.1:9261
CE2_OBS=127.0.0.1:9262
DM_OBS=127.0.0.1:9263

"$workdir/condmon-ad" -listen "$AD_LISTEN" -ad-algo AD-1 -vars x \
    -metrics "$AD_OBS" -tracing > "$workdir/ad.log" 2>&1 &
echo $! > "$workdir/ad.pid"
sleep 0.3
"$workdir/condmon-ce" -id CE1 -listen "$CE1_LISTEN" -ad "$AD_LISTEN" \
    -cond 'x[0] > 3000' -metrics "$CE1_OBS" -tracing > "$workdir/ce1.log" 2>&1 &
echo $! > "$workdir/ce1.pid"
"$workdir/condmon-ce" -id CE2 -listen "$CE2_LISTEN" -ad "$AD_LISTEN" \
    -cond 'x[0] > 3000' -drop 0.4 -seed 7 -metrics "$CE2_OBS" -tracing > "$workdir/ce2.log" 2>&1 &
echo $! > "$workdir/ce2.pid"
sleep 0.3
"$workdir/condmon-dm" -var x -ce "$CE1_LISTEN,$CE2_LISTEN" -source reactor \
    -n 30 -interval 10ms -metrics "$DM_OBS" -tracing -linger 10s > "$workdir/dm.log" 2>&1 &
echo $! > "$workdir/dm.pid"
sleep 0.5

"$workdir/condmon-trace" follow \
    -endpoints "$DM_OBS,$CE1_OBS,$CE2_OBS,$AD_OBS" -var x -for 2s > "$workdir/follow.log" 2>&1

fail() { echo "FAIL: $1"; echo "--- follow.log:"; cat "$workdir/follow.log"; exit 1; }

# The stitched timeline crosses all four processes: the DM's emit span, a
# per-replica link verdict, a CE feed span, both halves of a back-link
# crossing, and the displayer's verdict naming the suppressing rule.
grep -q 'emit .*DM .*emitted'        "$workdir/follow.log" || fail "no emit span stitched"
grep -q 'link .*CE1 .*delivered'     "$workdir/follow.log" || fail "no delivered link span"
grep -q 'link .*CE2 .*lost'          "$workdir/follow.log" || fail "lossy replica lost nothing"
grep -q 'feed .*fired'               "$workdir/follow.log" || fail "no fired feed span"
grep -q 'backlink .*sent'            "$workdir/follow.log" || fail "no backlink sent span"
grep -q 'backlink .*arrived'         "$workdir/follow.log" || fail "no backlink arrived span"
grep -q 'ad .*displayed'             "$workdir/follow.log" || fail "no displayed verdict"
grep -q 'ad .*suppressed  by AD-1'   "$workdir/follow.log" || fail "no suppression naming AD-1"

# Raw /trace endpoints serve JSON spans; /healthz reports healthy with the
# links fresh and the CE readiness gate passed.
curl -sf "http://$CE1_OBS/trace?var=x" | grep -q '"stage": "feed"' || fail "CE1 /trace has no feed spans"
curl -sf "http://$AD_OBS/trace"        | grep -q '"stage": "ad"'   || fail "AD /trace has no verdict spans"
curl -sf "http://$CE1_OBS/healthz"     | grep -q '"healthy": true' || fail "CE1 /healthz not healthy"
curl -sf "http://$CE1_OBS/healthz"     | grep -q '"ready": true'   || fail "CE1 readiness gate not passed"
curl -sf "http://$AD_OBS/healthz"      | grep -q '"healthy": true' || fail "AD /healthz not healthy"
# The Prometheus exposition negotiates via ?format=prom and terminates
# with the OpenMetrics EOF marker.
curl -sf "http://$CE1_OBS/metrics?format=prom" | grep -q '^# EOF' || fail "no OpenMetrics exposition"

echo "e2e trace smoke OK"
