#!/bin/sh
# End-to-end online-auditor smoke: launch a real fleet (one DM publishing
# evidence digests, two CE replicas — one lossy — forwarding them, and an
# auditing AD), scrape the live /audit matrix with `condmon-trace audit`,
# and assert a clean verdict; then rerun with the -audit-break dedup
# negative control and assert the auditor flips Complete to VIOLATED.
#
# Usage: scripts/e2e_audit_smoke.sh  (from the repository root)
set -eu

workdir=$(mktemp -d)
trap 'kill $(cat "$workdir"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir" ./cmd/condmon-ad ./cmd/condmon-ce ./cmd/condmon-dm ./cmd/condmon-trace

AD_LISTEN=127.0.0.1:7280
CE1_LISTEN=127.0.0.1:7281
CE2_LISTEN=127.0.0.1:7282
AD_OBS=127.0.0.1:9280

fail() { echo "FAIL: $1"; echo "--- ad.log:"; cat "$workdir/ad.log"; echo "--- audit.log:"; cat "$workdir/audit.log" 2>/dev/null || true; exit 1; }

# --- Phase 1: clean fleet; the matrix must stay violation-free. ---------
"$workdir/condmon-ad" -listen "$AD_LISTEN" -ad-algo AD-1 -vars x \
    -audit -audit-cond 'x[0] > 3000' -metrics "$AD_OBS" > "$workdir/ad.log" 2>&1 &
echo $! > "$workdir/ad.pid"
sleep 0.3
"$workdir/condmon-ce" -id CE1 -listen "$CE1_LISTEN" -ad "$AD_LISTEN" \
    -cond 'x[0] > 3000' -audit > "$workdir/ce1.log" 2>&1 &
echo $! > "$workdir/ce1.pid"
"$workdir/condmon-ce" -id CE2 -listen "$CE2_LISTEN" -ad "$AD_LISTEN" \
    -cond 'x[0] > 3000' -drop 0.4 -seed 7 -audit > "$workdir/ce2.log" 2>&1 &
echo $! > "$workdir/ce2.pid"
sleep 0.3
"$workdir/condmon-dm" -var x -ce "$CE1_LISTEN,$CE2_LISTEN" -source reactor \
    -n 30 -interval 10ms -audit-evidence 8 > "$workdir/dm.log" 2>&1
sleep 0.5

# The live fleet matrix renders the audited condition and a clean fleet ∧.
"$workdir/condmon-trace" audit -endpoints "$AD_OBS" > "$workdir/audit.log" 2>&1
grep -q 'cond'        "$workdir/audit.log" || fail "audited condition missing from the matrix"
grep -q '(fleet ∧)'   "$workdir/audit.log" || fail "no fleet And row"
grep -q 'violations=0' "$workdir/audit.log" || fail "clean fleet reported violations"

# Raw /audit JSON: confirmed orderedness, zero violations, and the DM's
# evidence digests arrived through the CE forwarding path.
curl -sf "http://$AD_OBS/audit" > "$workdir/audit.json"
grep -q '"ordered": "CONFIRMED"' "$workdir/audit.json" || fail "orderedness not confirmed on /audit"
grep -q '"violations": 0'        "$workdir/audit.json" || fail "/audit reports violations on a clean run"
grep -q '"var": "x"'             "$workdir/audit.json" || fail "no DM evidence reached the auditor"

# The exit summary prints the finalized matrix.
kill -INT "$(cat "$workdir/ad.pid")"
sleep 0.5
grep -q 'audit: ordered=CONFIRMED' "$workdir/ad.log" || fail "no finalized matrix in the AD exit summary"
grep -q 'violations=0'             "$workdir/ad.log" || fail "clean run finalized with violations"
kill "$(cat "$workdir/ce1.pid")" "$(cat "$workdir/ce2.pid")" 2>/dev/null || true

# --- Phase 2: negative control; broken dedup must flip Complete. --------
AD_LISTEN=127.0.0.1:7283
CE1_LISTEN=127.0.0.1:7284
CE2_LISTEN=127.0.0.1:7285
AD_OBS=127.0.0.1:9283

"$workdir/condmon-ad" -listen "$AD_LISTEN" -ad-algo AD-1 -vars x \
    -audit -audit-cond 'x[0] > 3000' -audit-break dedup -metrics "$AD_OBS" > "$workdir/ad2.log" 2>&1 &
echo $! > "$workdir/ad2.pid"
sleep 0.3
# Both replicas lossless: every CE2 alert duplicates CE1's, and the broken
# filter displays the duplicates anyway.
"$workdir/condmon-ce" -id CE1 -listen "$CE1_LISTEN" -ad "$AD_LISTEN" \
    -cond 'x[0] > 3000' > "$workdir/ce1b.log" 2>&1 &
echo $! > "$workdir/ce1b.pid"
"$workdir/condmon-ce" -id CE2 -listen "$CE2_LISTEN" -ad "$AD_LISTEN" \
    -cond 'x[0] > 3000' > "$workdir/ce2b.log" 2>&1 &
echo $! > "$workdir/ce2b.pid"
sleep 0.3
"$workdir/condmon-dm" -var x -ce "$CE1_LISTEN,$CE2_LISTEN" -source reactor \
    -n 20 -interval 10ms > "$workdir/dm2.log" 2>&1
sleep 0.5

fail2() { echo "FAIL: $1"; echo "--- ad2.log:"; cat "$workdir/ad2.log"; exit 1; }

curl -sf "http://$AD_OBS/audit" > "$workdir/audit2.json"
grep -q '"complete": "VIOLATED"' "$workdir/audit2.json" || fail2 "broken dedup not flagged on /audit"

kill -INT "$(cat "$workdir/ad2.pid")"
sleep 0.5
grep -q 'complete=VIOLATED'          "$workdir/ad2.log" || fail2 "exit summary missing the violation"
grep -q 'duplicate displayed alert'  "$workdir/ad2.log" || fail2 "violation detail missing"

echo "e2e audit smoke OK"
