package condmon

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index) and measures the
// hot paths of each component. Run with:
//
//	go test -bench=. -benchmem
//
// The table benchmarks verify, on every iteration, that the regenerated
// ✓/✗ matrix matches the paper cell for cell; a mismatch fails the
// benchmark. Reported metric: rows_matched (out of 4 scenario rows).

import (
	"fmt"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/exp"
	"condmon/internal/link"
	"condmon/internal/multicond"
	"condmon/internal/props"
	"condmon/internal/runtime"
	"condmon/internal/sim"
	"condmon/internal/wire"
	"condmon/internal/workload"

	"math/rand"
)

// benchConfig keeps benchmark iterations fast while preserving every
// deterministic (canonical) counterexample; cmd/condmon-bench runs the
// full 400-trial configuration.
func benchConfig() exp.Config {
	return exp.Config{Seed: 1, Trials: 50, StreamLen: 6, LossP: 0.3}
}

func benchTable(b *testing.B, run func(exp.Config) (*exp.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		matched := 0
		for _, row := range tbl.Rows {
			if row.Matches() {
				matched++
			}
		}
		if matched != len(tbl.Rows) {
			b.Fatalf("%s does not match the paper:\n%s", tbl.Name, tbl.Format())
		}
		b.ReportMetric(float64(matched), "rows_matched")
	}
}

// BenchmarkTable1 regenerates Table 1 (single-variable systems, AD-1).
func BenchmarkTable1(b *testing.B) { benchTable(b, exp.RunTable1) }

// BenchmarkTable2 regenerates Table 2 (single-variable systems, AD-2).
func BenchmarkTable2(b *testing.B) { benchTable(b, exp.RunTable2) }

// BenchmarkTableAD3 regenerates the §4.3 variant (Table 1 under AD-3).
func BenchmarkTableAD3(b *testing.B) { benchTable(b, exp.RunTableAD3) }

// BenchmarkTableAD4 regenerates the §4.4 variant (Table 2 under AD-4).
func BenchmarkTableAD4(b *testing.B) { benchTable(b, exp.RunTableAD4) }

// BenchmarkTable3 regenerates Table 3 (multi-variable systems, AD-5).
func BenchmarkTable3(b *testing.B) { benchTable(b, exp.RunTable3) }

// BenchmarkTableAD6 regenerates the §5.2 variant (Table 3 under AD-6).
func BenchmarkTableAD6(b *testing.B) { benchTable(b, exp.RunTableAD6) }

// BenchmarkDomination measures the Theorem 6/8 domination relations
// (AD-1 > AD-2, AD-1 > AD-3, and the derived AD-1 > AD-4).
func BenchmarkDomination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunDomination(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("domination violated:\n%s", res.Format())
		}
		strict := 0
		for _, p := range res.Pairs {
			strict += p.StrictTrials
		}
		b.ReportMetric(float64(strict), "strict_witnesses")
	}
}

// BenchmarkReplicationBenefit regenerates the Section 1 motivation curve:
// alert recall with one vs. two CEs across a loss sweep.
func BenchmarkReplicationBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunBenefit(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("replication benefit shape violated:\n%s", res.Format())
		}
		// Report the recall gap at 30% loss.
		p := res.Points[3]
		b.ReportMetric((p.RecallTwoCE-p.RecallOneCE)*100, "recall_gain_pct_at_p30")
	}
}

// BenchmarkTradeoff regenerates the §4 filter-strength tradeoff curves
// (fraction of offered alerts displayed per algorithm across a loss
// sweep).
func BenchmarkTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTradeoff(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("tradeoff monotonicity violated:\n%s", res.Format())
		}
	}
}

// BenchmarkFigure1bRuntime drives the live goroutine system of Figure 1(b)
// end to end: DM broadcast, two replicas, AD-1 display.
func BenchmarkFigure1bRuntime(b *testing.B) {
	trace := workload.Generate("x", workload.NewReactorTemp(1), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := runtime.New(cond.NewOverheat("x"), ad.NewAD1(), runtime.Options{Replicas: 2})
		if err != nil {
			b.Fatal(err)
		}
		for _, u := range trace {
			if _, err := sys.Emit("x", u.Value); err != nil {
				b.Fatal(err)
			}
		}
		sys.Close()
	}
}

// BenchmarkFigure3Runtime drives the two-variable live system of Figure 3
// under AD-6.
func BenchmarkFigure3Runtime(b *testing.B) {
	tx := workload.Generate("x", workload.NewReactorTemp(1), 100)
	ty := workload.Generate("y", workload.NewReactorTemp(2), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := runtime.New(cond.NewTempDiff("x", "y"), ad.NewAD6("x", "y"), runtime.Options{Replicas: 2})
		if err != nil {
			b.Fatal(err)
		}
		for j := range tx {
			if _, err := sys.Emit("x", tx[j].Value); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Emit("y", ty[j].Value); err != nil {
				b.Fatal(err)
			}
		}
		sys.Close()
	}
}

// BenchmarkFigureD7MultiCond drives the Appendix D separate-CE demux
// (Figure D-7(c)): two conditions, per-condition filter instances.
func BenchmarkFigureD7MultiCond(b *testing.B) {
	condA := cond.GreaterThan{CondName: "A", X: "x", Y: "y"}
	condB := cond.GreaterThan{CondName: "B", X: "y", Y: "x"}
	mkAlert := func(name string, x, y int64) event.Alert {
		return event.Alert{Cond: name, Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", x, 0)}},
			"y": {Var: "y", Recent: []event.Update{event.U("y", y, 0)}},
		}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := multicond.NewDemux(func(c cond.Condition) ad.Filter {
			return ad.NewAD5(c.Vars()...)
		}, condA, condB)
		if err != nil {
			b.Fatal(err)
		}
		for n := int64(1); n <= 64; n++ {
			if _, err := d.Offer(mkAlert("A", n, n)); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Offer(mkAlert("B", n, n)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- component micro-benchmarks ---

// BenchmarkCEFeed measures the evaluator hot path: one update through a
// degree-2 condition.
func BenchmarkCEFeed(b *testing.B) {
	eval, err := ce.New("CE1", cond.NewRiseAggressive("x"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.Feed(event.U("x", int64(i+1), float64(i%500))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSLEval measures a compiled DSL condition against the
// hand-written equivalent benchmarked in BenchmarkCEFeed.
func BenchmarkDSLEval(b *testing.B) {
	c := cond.MustParse("c3", "x[0] - x[-1] > 200 && consecutive(x)")
	eval, err := ce.New("CE1", c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.Feed(event.U("x", int64(i+1), float64(i%500))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilters measures each AD algorithm's Offer path on a
// precomputed lossy two-CE alert stream.
func BenchmarkFilters(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	trace := workload.Generate("x", workload.NewReactorTemp(3), 64)
	run, err := sim.RunSingleVar(cond.NewRiseAggressive("x"), trace,
		link.Bernoulli{P: 0.3}, link.Bernoulli{P: 0.3}, r)
	if err != nil {
		b.Fatal(err)
	}
	merged := sim.RandomArrival(run.A1, run.A2, r)
	if len(merged) == 0 {
		b.Fatal("empty alert stream; adjust workload")
	}
	factories := []struct {
		name string
		mk   func() ad.Filter
	}{
		{"AD-1", func() ad.Filter { return ad.NewAD1() }},
		{"AD-2", func() ad.Filter { return ad.NewAD2("x") }},
		{"AD-3", func() ad.Filter { return ad.NewAD3("x") }},
		{"AD-4", func() ad.Filter { return ad.NewAD4("x") }},
	}
	for _, f := range factories {
		b.Run(f.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ad.Run(f.mk(), merged)
			}
		})
	}
}

// BenchmarkConsistencyChecker measures the linear single-variable
// consistency checker on a realistic output sequence.
func BenchmarkConsistencyChecker(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	trace := workload.Generate("x", workload.NewReactorTemp(4), 64)
	run, err := sim.RunSingleVar(cond.NewRiseAggressive("x"), trace,
		link.Bernoulli{P: 0.3}, link.Bernoulli{P: 0.3}, r)
	if err != nil {
		b.Fatal(err)
	}
	merged := sim.RandomArrival(run.A1, run.A2, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.ConsistentSingle(merged)
	}
}

// BenchmarkWire measures the codec round trip for alerts.
func BenchmarkWire(b *testing.B) {
	a := event.Alert{Cond: "c2", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 7, 700), event.U("x", 6, 400)}},
	}}
	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, 128)
		for i := 0; i < b.N; i++ {
			out, err := wire.AppendAlert(buf[:0], a)
			if err != nil {
				b.Fatal(err)
			}
			_ = out
		}
	})
	encoded, err := wire.EncodeAlert(a)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := wire.DecodeAlert(encoded); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("digest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wire.DigestOf(a)
		}
	})
}

// BenchmarkTable1ThreeReplicas regenerates Table 1's matrix with three CE
// replicas (the Section 2.1 "easily extended" claim, validated).
func BenchmarkTable1ThreeReplicas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := exp.RunTableReplicas(benchConfig(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if !tbl.Matches() {
			b.Fatalf("3-replica table mismatch:\n%s", tbl.Format())
		}
	}
}

// BenchmarkReplicaCountBenefit regenerates the replica-count recall sweep
// (diminishing returns of replication).
func BenchmarkReplicaCountBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunReplicaBenefit(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("replica benefit shape violated:\n%s", res.Format())
		}
		b.ReportMetric((res.Points[1].Recall-res.Points[0].Recall)*100, "recall_gain_pct_1to2")
	}
}

// BenchmarkDowntimeBenefit regenerates the CE-outage recall sweep.
func BenchmarkDowntimeBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunDowntime(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("downtime benefit shape violated:\n%s", res.Format())
		}
	}
}

// BenchmarkSnapshotRestore measures filter state snapshot/restore (AD-4
// with accumulated state).
func BenchmarkSnapshotRestore(b *testing.B) {
	f := ad.NewAD4("x")
	for n := int64(1); n <= 256; n += 2 {
		ad.Offer(f, event.Alert{Cond: "c", Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", n+1, 0), event.U("x", n, 0)}},
		}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := f.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		g := ad.NewAD4("x")
		if err := g.Restore(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaximality audits every AD-2/AD-3/AD-4 drop decision against
// the guarantee that forced it (Theorems 5, 7, 9 quantified).
func BenchmarkMaximality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunMaximality(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("maximality violated:\n%s", res.Format())
		}
	}
}

// BenchmarkMultiSystemThroughput drives a scaled-down version of the
// BENCH_PR2 scenario — threshold conditions sharded onto the worker pool,
// two replicas each, updates arriving via EmitBatch — through a complete
// build/emit/Close cycle per iteration. The reported updates/sec tracks
// the batched pipeline end to end; CI runs it as a smoke test.
func BenchmarkMultiSystemThroughput(b *testing.B) {
	const (
		nConds = 100
		nVars  = 4
		total  = 2000
		batch  = 128
	)
	vars := make([]event.VarName, nVars)
	for i := range vars {
		vars[i] = event.VarName(fmt.Sprintf("x%d", i))
	}
	conds := make([]cond.Condition, nConds)
	for i := range conds {
		conds[i] = cond.Threshold{
			CondName: fmt.Sprintf("c%03d", i),
			Var:      vars[i%nVars],
			Limit:    990,
			Above:    true,
		}
	}
	perVar := total / nVars
	values := make([]float64, perVar)
	for i := range values {
		values[i] = float64(i % 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := runtime.NewMulti(conds, func(c cond.Condition) ad.Filter {
			return ad.NewAD1()
		}, runtime.MultiOptions{Replicas: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range vars {
			for k := 0; k < len(values); k += batch {
				j := k + batch
				if j > len(values) {
					j = len(values)
				}
				if _, err := sys.EmitBatch(v, values[k:j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := sys.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*total)/b.Elapsed().Seconds(), "updates/sec")
}
