package condmon_test

import (
	"fmt"
	"log"

	"condmon"
)

// ExampleParseCondition shows how condition classification is derived from
// the expression itself.
func ExampleParseCondition() {
	c2, err := condmon.ParseCondition("c2", "x[0] - x[-1] > 200")
	if err != nil {
		log.Fatal(err)
	}
	c3, err := condmon.ParseCondition("c3", "x[0] - x[-1] > 200 && consecutive(x)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("c2 degree:", c2.Degree("x"), "conservative:", c2.Conservative())
	fmt.Println("c3 degree:", c3.Degree("x"), "conservative:", c3.Conservative())
	// Output:
	// c2 degree: 2 conservative: false
	// c3 degree: 2 conservative: true
}

// ExampleEvaluate runs the paper's Example 1 through the pure mapping T.
func ExampleEvaluate() {
	c1, err := condmon.ParseCondition("c1", "x[0] > 3000")
	if err != nil {
		log.Fatal(err)
	}
	alerts, err := condmon.Evaluate(c1, []condmon.Update{
		{Var: "x", SeqNo: 1, Value: 2900},
		{Var: "x", SeqNo: 2, Value: 3100},
		{Var: "x", SeqNo: 3, Value: 3200},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range alerts {
		fmt.Println(a)
	}
	// Output:
	// a(2x)
	// a(3x)
}

// ExampleNewMonitor runs a replicated live monitor end to end.
func ExampleNewMonitor() {
	overheat, err := condmon.ParseCondition("overheat", "x[0] > 3000")
	if err != nil {
		log.Fatal(err)
	}
	m, err := condmon.NewMonitor(overheat,
		condmon.WithReplicas(2),
		condmon.WithAlgorithm(condmon.AD1),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, temp := range []float64{2900, 3100, 3200} {
		if _, err := m.Emit("x", temp); err != nil {
			log.Fatal(err)
		}
	}
	alerts := m.Close()
	fmt.Println("alerts:", len(alerts), "suppressed duplicates:", m.Suppressed())
	// Output:
	// alerts: 2 suppressed duplicates: 2
}

// ExampleCheckSingleVariable analyzes Theorem 2's scenario offline: with a
// lossy link and a non-historical condition, AD-1 keeps the system
// complete and consistent but not ordered.
func ExampleCheckSingleVariable() {
	c1, err := condmon.ParseCondition("c1", "x[0] > 3000")
	if err != nil {
		log.Fatal(err)
	}
	u1 := []condmon.Update{{Var: "x", SeqNo: 1, Value: 3100}, {Var: "x", SeqNo: 2, Value: 3500}}
	u2 := []condmon.Update{{Var: "x", SeqNo: 2, Value: 3500}} // CE2 missed update 1
	verdict, err := condmon.CheckSingleVariable(c1, u1, u2, func() condmon.Filter {
		f, err := condmon.NewFilter(condmon.AD1)
		if err != nil {
			log.Fatal(err)
		}
		return f
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(verdict)
	// Output:
	// ord=✗ comp=✓ cons=✓
}

// ExampleNewFilter demonstrates direct filter use on an alert stream.
func ExampleNewFilter() {
	c1, err := condmon.ParseCondition("c1", "x[0] > 3000")
	if err != nil {
		log.Fatal(err)
	}
	alerts, err := condmon.Evaluate(c1, []condmon.Update{
		{Var: "x", SeqNo: 1, Value: 3100},
		{Var: "x", SeqNo: 2, Value: 3200},
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := condmon.NewFilter(condmon.AD2, "x")
	if err != nil {
		log.Fatal(err)
	}
	// Offer the second alert first: AD-2 then rejects the stale first one.
	for _, i := range []int{1, 0} {
		a := alerts[i]
		if f.Test(a) {
			f.Accept(a)
			fmt.Println("displayed", a)
		} else {
			fmt.Println("suppressed", a)
		}
	}
	// Output:
	// displayed a(2x)
	// suppressed a(1x)
}
