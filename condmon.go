// Package condmon is a replicated condition monitoring library: an
// implementation of "Replicated condition monitoring" (Huang &
// Garcia-Molina, PODC 2001).
//
// A condition monitoring system watches real-world variables and alerts a
// user when a predefined condition becomes true — a reactor overheating, a
// stock price collapsing. Replicating the Condition Evaluator makes the
// system robust to evaluator crashes and lossy sensor links, but naive
// replication shows the user duplicated, out-of-order, or outright
// contradictory alerts. This library provides the paper's remedy: the
// filtering algorithms AD-1 through AD-6, which restore well-defined
// guarantees — orderedness, consistency, and (when attainable)
// completeness — at a quantifiable cost in suppressed alerts.
//
// # Quick start
//
//	c, err := condmon.ParseCondition("overheat", "x[0] > 3000")
//	// handle err
//	m, err := condmon.NewMonitor(c,
//		condmon.WithReplicas(2),
//		condmon.WithAlgorithm(condmon.AD4),
//	)
//	// handle err
//	m.Emit("x", 3100) // sensor reading; alerts flow to the displayer
//	alerts := m.Close()
//
// The facade wraps the full-strength internal packages; power users can
// reach the analysis machinery (pure T evaluation, property checkers,
// table regeneration) through Evaluate, CheckSingleVariable and the
// cmd/condmon-bench tool.
package condmon

import (
	"fmt"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/runtime"
	"condmon/internal/sim"
)

// Core data types, re-exported for API stability.
type (
	// VarName identifies a monitored real-world variable.
	VarName = event.VarName
	// Update is a sensor reading u(varname, seqno, value).
	Update = event.Update
	// Alert is a triggered notification a(condname, histories).
	Alert = event.Alert
	// Condition is a boolean expression over update histories.
	Condition = cond.Condition
	// Filter is an Alert Displayer filtering algorithm.
	Filter = ad.Filter
	// Properties records which guarantees held on an output sequence.
	Properties = props.Verdict
)

// Alert Displayer algorithm names, as in the paper's Appendix A.
const (
	// AD0 displays every alert (no filtering).
	AD0 = ad.NameAD0
	// AD1 removes exact duplicates.
	AD1 = ad.NameAD1
	// AD2 enforces orderedness (single variable).
	AD2 = ad.NameAD2
	// AD3 enforces consistency (single variable, multi-variable inside AD6).
	AD3 = ad.NameAD3
	// AD4 enforces orderedness and consistency (single variable).
	AD4 = ad.NameAD4
	// AD5 enforces orderedness (multi-variable).
	AD5 = ad.NameAD5
	// AD6 enforces orderedness and consistency (multi-variable).
	AD6 = ad.NameAD6
)

// ParseCondition compiles a condition from the expression DSL, deriving its
// variable set, per-variable history degrees, and conservative/aggressive
// classification. Examples:
//
//	ParseCondition("c1", "x[0] > 3000")
//	ParseCondition("c3", "x[0] - x[-1] > 200 && consecutive(x)")
//	ParseCondition("cm", "abs(x[0] - y[0]) > 100")
func ParseCondition(name, expr string) (Condition, error) {
	return cond.Parse(name, expr)
}

// NewFilter constructs a fresh filter by algorithm name for the given
// variable set (AD-2/AD-4 take exactly one variable; AD-3/AD-5/AD-6 take
// one or more).
func NewFilter(algorithm string, vars ...VarName) (Filter, error) {
	return ad.NewByName(algorithm, vars...)
}

// Evaluate is the paper's mapping T: the alert sequence a single fresh
// Condition Evaluator emits when fed the update sequence in order.
func Evaluate(c Condition, updates []Update) ([]Alert, error) {
	return ce.T(c, updates)
}

// Monitor is a live replicated monitoring system: data monitors, condition
// evaluator replicas, links, and an alert displayer, each running in its
// own goroutine.
type Monitor struct {
	sys *runtime.System
}

// Option configures NewMonitor.
type Option interface {
	apply(*monitorOptions) error
}

type monitorOptions struct {
	replicas  int
	algorithm string
	filter    Filter
	lossP     float64
	seed      int64
}

type optionFunc func(*monitorOptions) error

func (f optionFunc) apply(o *monitorOptions) error { return f(o) }

// WithReplicas sets the number of Condition Evaluator replicas (default 2;
// 1 yields the non-replicated system of the paper's Figure 1(a)).
func WithReplicas(n int) Option {
	return optionFunc(func(o *monitorOptions) error {
		if n < 1 {
			return fmt.Errorf("condmon: replicas must be ≥ 1, got %d", n)
		}
		o.replicas = n
		return nil
	})
}

// WithAlgorithm selects the Alert Displayer algorithm by name (default
// AD1). The filter is instantiated over the condition's variable set.
func WithAlgorithm(name string) Option {
	return optionFunc(func(o *monitorOptions) error {
		o.algorithm = name
		return nil
	})
}

// WithFilter installs a caller-constructed filter instance, overriding
// WithAlgorithm.
func WithFilter(f Filter) Option {
	return optionFunc(func(o *monitorOptions) error {
		if f == nil {
			return fmt.Errorf("condmon: nil filter")
		}
		o.filter = f
		return nil
	})
}

// WithFrontLinkLoss makes every front link drop updates independently with
// probability p — the paper's lossy-link regime, useful for demos and
// fault-injection tests. Default 0 (lossless).
func WithFrontLinkLoss(p float64) Option {
	return optionFunc(func(o *monitorOptions) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("condmon: loss probability %g outside [0,1]", p)
		}
		o.lossP = p
		return nil
	})
}

// WithSeed fixes the randomness seed for reproducible loss patterns.
func WithSeed(seed int64) Option {
	return optionFunc(func(o *monitorOptions) error {
		o.seed = seed
		return nil
	})
}

// NewMonitor builds and starts a live replicated monitoring system for the
// condition.
func NewMonitor(c Condition, opts ...Option) (*Monitor, error) {
	o := monitorOptions{replicas: 2, algorithm: AD1}
	for _, opt := range opts {
		if err := opt.apply(&o); err != nil {
			return nil, err
		}
	}
	filter := o.filter
	if filter == nil {
		var err error
		filter, err = ad.NewByName(o.algorithm, c.Vars()...)
		if err != nil {
			return nil, err
		}
	}
	var loss func(int, VarName) link.Model
	if o.lossP > 0 {
		p := o.lossP
		loss = func(int, VarName) link.Model { return link.Bernoulli{P: p} }
	}
	sys, err := runtime.New(c, filter, runtime.Options{
		Replicas: o.replicas,
		Loss:     loss,
		Seed:     o.seed,
	})
	if err != nil {
		return nil, err
	}
	return &Monitor{sys: sys}, nil
}

// Emit publishes a new sensor reading for variable v; the Data Monitor
// assigns the sequence number and broadcasts to every replica. It returns
// the assigned sequence number.
func (m *Monitor) Emit(v VarName, value float64) (int64, error) {
	return m.sys.Emit(v, value)
}

// EmitBatch publishes a run of consecutive readings for variable v as one
// batch frame per front link, amortizing the channel hop across the batch.
// Observationally it is identical to calling Emit for each value in order;
// it returns the sequence number assigned to the last reading.
func (m *Monitor) EmitBatch(v VarName, values []float64) (int64, error) {
	return m.sys.EmitBatch(v, values)
}

// Alerts returns a snapshot of the alert sequence displayed to the user so
// far.
func (m *Monitor) Alerts() []Alert {
	return m.sys.Displayer().Displayed()
}

// Suppressed returns how many alerts the displayer's filter discarded.
func (m *Monitor) Suppressed() int {
	return m.sys.Displayer().Suppressed()
}

// SetDisplayConnected connects or disconnects the display device (the
// user's PDA). While disconnected, arriving alerts are buffered and run
// through the filter upon reconnection.
func (m *Monitor) SetDisplayConnected(connected bool) {
	m.sys.Displayer().SetConnected(connected)
}

// PendingAlerts returns how many alerts are buffered awaiting
// reconnection.
func (m *Monitor) PendingAlerts() int {
	return m.sys.Displayer().PendingCount()
}

// Close drains the pipeline, stops every goroutine, and returns the final
// displayed alert sequence.
func (m *Monitor) Close() []Alert {
	return m.sys.Close()
}

// CheckSingleVariable analyzes a single-variable replicated scenario
// offline: given the two delivered update streams and the chosen
// algorithm, it reports which properties (orderedness, completeness,
// consistency) hold over every possible alert arrival order. newFilter
// must return a fresh filter per call.
func CheckSingleVariable(c Condition, u1, u2 []Update, newFilter func() Filter) (Properties, error) {
	if len(c.Vars()) != 1 {
		return Properties{}, fmt.Errorf("condmon: CheckSingleVariable needs a single-variable condition")
	}
	a1, err := ce.T(c, u1)
	if err != nil {
		return Properties{}, err
	}
	a2, err := ce.T(c, u2)
	if err != nil {
		return Properties{}, err
	}
	union, err := sim.OrderedUnionUpdates(u1, u2)
	if err != nil {
		return Properties{}, err
	}
	nOut, err := ce.T(c, union)
	if err != nil {
		return Properties{}, err
	}
	run := &sim.SingleVarRun{Cond: c, U: union, U1: u1, U2: u2, A1: a1, A2: a2, NInput: union, NOutput: nOut}
	v, _, err := props.CheckSingleVarRun(run, props.FilterFactory(newFilter))
	return v, err
}

// SnapshotFilter serializes the monitor's Alert Displayer filter state so
// a restarted displayer does not forget which alerts it already showed.
// Supported by the built-in algorithms AD-1 through AD-6.
func (m *Monitor) SnapshotFilter() ([]byte, error) {
	return m.sys.Displayer().Snapshot()
}

// RestoreFilter replaces the displayer's filter state from a snapshot
// taken on a monitor with the same algorithm and condition.
func (m *Monitor) RestoreFilter(data []byte) error {
	return m.sys.Displayer().RestoreFilter(data)
}

// SetReplicaDown fails (true) or revives (false) Condition Evaluator
// replica i (0-based). While down the replica misses every update — the
// failure mode replication exists to mask. The control takes effect after
// every previously emitted update, so fault-injection tests are
// deterministic.
func (m *Monitor) SetReplicaDown(i int, down bool) error {
	return m.sys.SetReplicaDown(i, down)
}

// CrashReplica simulates a fail-stop restart of replica i without stable
// storage: it loses its update histories and cannot fire again until its
// windows refill.
func (m *Monitor) CrashReplica(i int) error {
	return m.sys.CrashReplica(i)
}
