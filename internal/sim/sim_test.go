package sim

import (
	"math/rand"
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/seq"
)

func TestOrderedUnionUpdates(t *testing.T) {
	u1 := []event.Update{event.U("x", 1, 10), event.U("x", 3, 30)}
	u2 := []event.Update{event.U("x", 2, 20), event.U("x", 3, 30)}
	got, err := OrderedUnionUpdates(u1, u2)
	if err != nil {
		t.Fatalf("OrderedUnionUpdates: %v", err)
	}
	if !event.SeqNos(got, "x").Equal(seq.Seq{1, 2, 3}) {
		t.Errorf("union = %v, want seqnos ⟨1,2,3⟩", got)
	}
}

func TestOrderedUnionUpdatesRejectsDisagreement(t *testing.T) {
	u1 := []event.Update{event.U("x", 1, 10)}
	u2 := []event.Update{event.U("x", 1, 99)}
	if _, err := OrderedUnionUpdates(u1, u2); err == nil {
		t.Error("value disagreement on the same seqno should fail")
	}
}

func TestOrderedUnionUpdatesRejectsUnordered(t *testing.T) {
	bad := []event.Update{event.U("x", 2, 0), event.U("x", 1, 0)}
	if _, err := OrderedUnionUpdates(bad, nil); err == nil {
		t.Error("unordered left stream should fail")
	}
	if _, err := OrderedUnionUpdates(nil, bad); err == nil {
		t.Error("unordered right stream should fail")
	}
}

func TestRunSingleVarPaperExample1(t *testing.T) {
	// Example 1 end to end: U = ⟨1x(2900),2x(3100),3x(3200)⟩, c1, CE2
	// misses 2x.
	u := []event.Update{event.U("x", 1, 2900), event.U("x", 2, 3100), event.U("x", 3, 3200)}
	run, err := RunSingleVar(cond.NewOverheat("x"), u, link.None{}, link.NewDropSeqNos("x", 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	if got := event.AlertSeqNos(run.A1, "x"); !got.Equal(seq.Seq{2, 3}) {
		t.Errorf("A1 = %v, want alerts at ⟨2,3⟩", got)
	}
	if got := event.AlertSeqNos(run.A2, "x"); !got.Equal(seq.Seq{3}) {
		t.Errorf("A2 = %v, want alerts at ⟨3⟩", got)
	}
	// N receives U1 ⊔ U2 = U and produces both alerts.
	if got := event.SeqNos(run.NInput, "x"); !got.Equal(seq.Seq{1, 2, 3}) {
		t.Errorf("NInput = %v, want ⟨1,2,3⟩", got)
	}
	if got := event.AlertSeqNos(run.NOutput, "x"); !got.Equal(seq.Seq{2, 3}) {
		t.Errorf("NOutput = %v, want ⟨2,3⟩", got)
	}
}

func TestRunSingleVarRejectsMultiVarCondition(t *testing.T) {
	if _, err := RunSingleVar(cond.NewTempDiff("x", "y"), nil, link.None{}, link.None{}, nil); err == nil {
		t.Error("RunSingleVar must reject multi-variable conditions")
	}
}

func TestForEachArrivalEnumerates(t *testing.T) {
	a1 := []event.Alert{alert1("x", 1), alert1("x", 2)}
	a2 := []event.Alert{alert1("x", 3)}
	var got [][]event.Alert
	err := ForEachArrival(a1, a2, func(m []event.Alert) bool {
		got = append(got, m)
		return true
	})
	if err != nil {
		t.Fatalf("ForEachArrival: %v", err)
	}
	// C(3,2) = 3 interleavings.
	if len(got) != 3 {
		t.Fatalf("enumerated %d arrival orders, want 3", len(got))
	}
	for _, m := range got {
		if len(m) != 3 {
			t.Errorf("interleaving %v has wrong length", m)
		}
		if !event.AlertSeqNos([]event.Alert{m[0], m[1], m[2]}, "x").
			Set().Equal(seq.NewSet(1, 2, 3)) {
			t.Errorf("interleaving %v lost alerts", m)
		}
	}
}

func TestForEachArrivalEarlyStop(t *testing.T) {
	a1 := []event.Alert{alert1("x", 1), alert1("x", 2)}
	a2 := []event.Alert{alert1("x", 3), alert1("x", 4)}
	calls := 0
	err := ForEachArrival(a1, a2, func([]event.Alert) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatalf("ForEachArrival: %v", err)
	}
	if calls != 1 {
		t.Errorf("fn called %d times after returning false, want 1", calls)
	}
}

func TestForEachArrivalBound(t *testing.T) {
	big := make([]event.Alert, 20)
	for i := range big {
		big[i] = alert1("x", int64(i))
	}
	if err := ForEachArrival(big, big, func([]event.Alert) bool { return true }); err == nil {
		t.Error("C(40,20) interleavings must exceed the bound and error out")
	}
}

func TestRandomArrivalPreservesStreamOrder(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a1 := []event.Alert{alert1("x", 1), alert1("x", 2), alert1("x", 3)}
	a2 := []event.Alert{alert1("x", 10), alert1("x", 20)}
	for i := 0; i < 100; i++ {
		m := RandomArrival(a1, a2, r)
		if len(m) != 5 {
			t.Fatalf("merged length %d, want 5", len(m))
		}
		var s1, s2 seq.Seq
		for _, a := range m {
			n := a.MustSeqNo("x")
			if n < 10 {
				s1 = append(s1, n)
			} else {
				s2 = append(s2, n)
			}
		}
		if !s1.Equal(seq.Seq{1, 2, 3}) || !s2.Equal(seq.Seq{10, 20}) {
			t.Fatalf("arrival %v broke per-stream order", m)
		}
	}
}

func TestInterleavers(t *testing.T) {
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 0), event.U("x", 2, 0)},
		"y": {event.U("y", 1, 0), event.U("y", 2, 0)},
	}
	if got := Sequential(streams, nil); !event.SeqNos(got, "").Equal(seq.Seq{1, 2, 1, 2}) ||
		got[0].Var != "x" || got[2].Var != "y" {
		t.Errorf("Sequential = %v, want ⟨1x,2x,1y,2y⟩", got)
	}
	if got := SequentialReverse(streams, nil); got[0].Var != "y" || got[2].Var != "x" {
		t.Errorf("SequentialReverse = %v, want ⟨1y,2y,1x,2x⟩", got)
	}
	if got := RoundRobin(streams, nil); got[0].Var != "x" || got[1].Var != "y" ||
		got[2].Var != "x" || got[3].Var != "y" {
		t.Errorf("RoundRobin = %v, want ⟨1x,1y,2x,2y⟩", got)
	}
	r := rand.New(rand.NewSource(7))
	got := RandomInterleave(streams, r)
	if len(got) != 4 {
		t.Fatalf("RandomInterleave length %d, want 4", len(got))
	}
	if !event.SeqNos(got, "x").IsOrdered() || !event.SeqNos(got, "y").IsOrdered() {
		t.Errorf("RandomInterleave %v broke per-variable order", got)
	}
}

func TestRunMultiVarTheoremTenSetup(t *testing.T) {
	// Theorem 10: lossless links, opposite interleavings at the two CEs.
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 1000), event.U("x", 2, 1200)},
		"y": {event.U("y", 1, 1050), event.U("y", 2, 1150)},
	}
	run, err := RunMultiVar(
		cond.NewTempDiff("x", "y"),
		streams,
		[2]map[event.VarName]link.Model{},
		[2]Interleaver{Sequential, SequentialReverse},
		nil,
	)
	if err != nil {
		t.Fatalf("RunMultiVar: %v", err)
	}
	if len(run.A1) != 1 || run.A1[0].MustSeqNo("x") != 2 || run.A1[0].MustSeqNo("y") != 1 {
		t.Errorf("A1 = %v, want ⟨a(2x,1y)⟩", run.A1)
	}
	if len(run.A2) != 1 || run.A2[0].MustSeqNo("x") != 1 || run.A2[0].MustSeqNo("y") != 2 {
		t.Errorf("A2 = %v, want ⟨a(1x,2y)⟩", run.A2)
	}
	combined, err := run.CombinedStreams()
	if err != nil {
		t.Fatalf("CombinedStreams: %v", err)
	}
	if !event.SeqNos(combined["x"], "x").Equal(seq.Seq{1, 2}) ||
		!event.SeqNos(combined["y"], "y").Equal(seq.Seq{1, 2}) {
		t.Errorf("combined streams wrong: %v", combined)
	}
}

func TestRunMultiVarWithLoss(t *testing.T) {
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 1000), event.U("x", 2, 1200)},
		"y": {event.U("y", 1, 1050)},
	}
	loss := [2]map[event.VarName]link.Model{
		{"x": link.NewDropSeqNos("x", 2)},
		{},
	}
	run, err := RunMultiVar(cond.NewTempDiff("x", "y"), streams, loss,
		[2]Interleaver{RoundRobin, RoundRobin}, nil)
	if err != nil {
		t.Fatalf("RunMultiVar: %v", err)
	}
	if got := event.SeqNos(run.Delivered[0]["x"], "x"); !got.Equal(seq.Seq{1}) {
		t.Errorf("CE1 delivered x = %v, want ⟨1⟩", got)
	}
	if got := event.SeqNos(run.Delivered[1]["x"], "x"); !got.Equal(seq.Seq{1, 2}) {
		t.Errorf("CE2 delivered x = %v, want ⟨1,2⟩", got)
	}
}

func TestForEachInterleavingCountsAndOrder(t *testing.T) {
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 0), event.U("x", 2, 0)},
		"y": {event.U("y", 1, 0)},
	}
	count := 0
	err := ForEachInterleaving(streams, func(uv []event.Update) bool {
		count++
		if !event.SeqNos(uv, "x").IsOrdered() || !event.SeqNos(uv, "y").IsOrdered() {
			t.Errorf("interleaving %v broke per-variable order", uv)
		}
		return true
	})
	if err != nil {
		t.Fatalf("ForEachInterleaving: %v", err)
	}
	if count != 3 { // C(3,1) = 3
		t.Errorf("enumerated %d interleavings, want 3", count)
	}
}

func TestForEachInterleavingBound(t *testing.T) {
	big := make([]event.Update, 15)
	for i := range big {
		big[i] = event.U("x", int64(i+1), 0)
	}
	big2 := make([]event.Update, 15)
	for i := range big2 {
		big2[i] = event.U("y", int64(i+1), 0)
	}
	streams := map[event.VarName][]event.Update{"x": big, "y": big2}
	if err := ForEachInterleaving(streams, func([]event.Update) bool { return true }); err == nil {
		t.Error("C(30,15) interleavings must exceed the bound and error out")
	}
}

// alert1 builds a degree-1 single-variable alert for testing.
func alert1(v event.VarName, n int64) event.Alert {
	return event.Alert{Cond: "c", Histories: event.HistorySet{
		v: {Var: v, Recent: []event.Update{event.U(v, n, 0)}},
	}}
}
