package sim

import (
	"math/rand"
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/seq"
)

func TestRunSingleVarNMatchesTwoReplicaRun(t *testing.T) {
	c := cond.NewOverheat("x")
	u := []event.Update{event.U("x", 1, 2900), event.U("x", 2, 3100), event.U("x", 3, 3200)}
	two, err := RunSingleVar(c, u, link.None{}, link.NewDropSeqNos("x", 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	n, err := RunSingleVarN(c, u, []link.Model{link.None{}, link.NewDropSeqNos("x", 2)}, nil)
	if err != nil {
		t.Fatalf("RunSingleVarN: %v", err)
	}
	if !event.SeqNos(n.Us[0], "x").Equal(event.SeqNos(two.U1, "x")) ||
		!event.SeqNos(n.Us[1], "x").Equal(event.SeqNos(two.U2, "x")) {
		t.Error("delivered streams differ between the two-replica APIs")
	}
	if !event.KeySetEqual(n.NOutput, two.NOutput) {
		t.Error("corresponding non-replicated outputs differ")
	}
}

func TestRunSingleVarNThreeReplicas(t *testing.T) {
	c := cond.NewOverheat("x")
	u := []event.Update{event.U("x", 1, 3100), event.U("x", 2, 3200), event.U("x", 3, 3300)}
	run, err := RunSingleVarN(c, u, []link.Model{
		link.NewDropSeqNos("x", 1),
		link.NewDropSeqNos("x", 2),
		link.NewDropSeqNos("x", 3),
	}, nil)
	if err != nil {
		t.Fatalf("RunSingleVarN: %v", err)
	}
	// Each replica misses a different update; together they cover U.
	if got := event.SeqNos(run.NInput, "x"); !got.Equal(seq.Seq{1, 2, 3}) {
		t.Errorf("NInput = %v, want full ⟨1,2,3⟩", got)
	}
	if len(run.NOutput) != 3 {
		t.Errorf("NOutput has %d alerts, want 3", len(run.NOutput))
	}
	for i, alerts := range run.As {
		if len(alerts) != 2 {
			t.Errorf("CE%d raised %d alerts, want 2", i+1, len(alerts))
		}
	}
}

func TestRunSingleVarNValidation(t *testing.T) {
	if _, err := RunSingleVarN(cond.NewTempDiff("x", "y"), nil, []link.Model{link.None{}}, nil); err == nil {
		t.Error("multi-variable condition should be rejected")
	}
	if _, err := RunSingleVarN(cond.NewOverheat("x"), nil, nil, nil); err == nil {
		t.Error("zero replicas should be rejected")
	}
}

func TestForEachArrivalNCountsMultinomial(t *testing.T) {
	streams := [][]event.Alert{
		{alert1("x", 1), alert1("x", 2)},
		{alert1("x", 10)},
		{alert1("x", 20)},
	}
	count := 0
	err := ForEachArrivalN(streams, func(m []event.Alert) bool {
		count++
		if len(m) != 4 {
			t.Errorf("merged length %d", len(m))
		}
		return true
	})
	if err != nil {
		t.Fatalf("ForEachArrivalN: %v", err)
	}
	// 4!/(2!·1!·1!) = 12 interleavings.
	if count != 12 {
		t.Errorf("enumerated %d interleavings, want 12", count)
	}
}

func TestForEachArrivalNPreservesOrderAndStops(t *testing.T) {
	streams := [][]event.Alert{
		{alert1("x", 1), alert1("x", 2)},
		{alert1("x", 10), alert1("x", 20)},
	}
	calls := 0
	err := ForEachArrivalN(streams, func(m []event.Alert) bool {
		calls++
		var s1, s2 seq.Seq
		for _, a := range m {
			n := a.MustSeqNo("x")
			if n < 10 {
				s1 = append(s1, n)
			} else {
				s2 = append(s2, n)
			}
		}
		if !s1.Equal(seq.Seq{1, 2}) || !s2.Equal(seq.Seq{10, 20}) {
			t.Errorf("interleaving %v broke stream order", m)
		}
		return calls < 3
	})
	if err != nil {
		t.Fatalf("ForEachArrivalN: %v", err)
	}
	if calls != 3 {
		t.Errorf("early stop failed: %d calls", calls)
	}
}

func TestForEachArrivalNBound(t *testing.T) {
	big := make([]event.Alert, 14)
	for i := range big {
		big[i] = alert1("x", int64(i))
	}
	if err := ForEachArrivalN([][]event.Alert{big, big, big}, func([]event.Alert) bool { return true }); err == nil {
		t.Error("42-alert three-way enumeration must exceed the bound")
	}
}

func TestRandomArrivalNUniformCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	streams := [][]event.Alert{
		{alert1("x", 1)},
		{alert1("x", 10)},
		{alert1("x", 20)},
	}
	seen := make(map[string]int)
	for i := 0; i < 1200; i++ {
		m := RandomArrivalN(streams, r)
		key := ""
		for _, a := range m {
			key += a.Key() + "|"
		}
		seen[key]++
	}
	if len(seen) != 6 { // 3! orderings
		t.Fatalf("saw %d distinct orderings, want 6", len(seen))
	}
	for key, n := range seen {
		if n < 120 { // uniform would be 200; allow wide slack
			t.Errorf("ordering %s seen only %d times; distribution skewed", key, n)
		}
	}
}
