// Package sim is the deterministic scenario engine behind the analysis
// model of Figure 2: a DM emits an update stream U; lossy in-order front
// links deliver subsequences U1, U2 to the replicated CEs; each CE maps its
// input through T to an alert stream; the AD merges the streams in some
// arrival order and filters them with an AD algorithm, producing the final
// sequence A. The corresponding non-replicated system N feeds U1 ⊔ U2
// through a single CE with no filtering.
//
// Everything is pure and reproducible: loss comes from seeded link.Model
// values, and both update interleavings (multi-variable systems) and alert
// arrival orders can be enumerated exhaustively, which is how the property
// checkers quantify over "every alert sequence A the system produces".
package sim

import (
	"fmt"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"

	"math/rand"
)

// OrderedUnionUpdates returns U1 ⊔ U2 for two single-variable update
// streams delivered from the same DM: the ordered, duplicate-free merge by
// sequence number. It rejects unordered inputs and inputs that disagree on
// an update's payload (impossible for subsequences of one DM stream, so a
// disagreement indicates a scenario bug).
func OrderedUnionUpdates(u1, u2 []event.Update) ([]event.Update, error) {
	if !event.SeqNos(u1, "").IsOrdered() {
		return nil, fmt.Errorf("sim: ordered union: left stream is not ordered")
	}
	if !event.SeqNos(u2, "").IsOrdered() {
		return nil, fmt.Errorf("sim: ordered union: right stream is not ordered")
	}
	var out []event.Update
	i, j := 0, 0
	push := func(u event.Update) {
		if len(out) == 0 || out[len(out)-1].SeqNo != u.SeqNo {
			out = append(out, u)
		}
	}
	for i < len(u1) && j < len(u2) {
		a, b := u1[i], u2[j]
		switch {
		case a.SeqNo < b.SeqNo:
			push(a)
			i++
		case a.SeqNo > b.SeqNo:
			push(b)
			j++
		default:
			if a.Value != b.Value || a.Var != b.Var {
				return nil, fmt.Errorf("sim: ordered union: streams disagree on update %d (%v vs %v)", a.SeqNo, a, b)
			}
			push(a)
			i++
			j++
		}
	}
	for ; i < len(u1); i++ {
		push(u1[i])
	}
	for ; j < len(u2); j++ {
		push(u2[j])
	}
	return out, nil
}

// SingleVarRun captures one simulated run of a two-CE single-variable
// replicated system, before AD filtering (arrival order at the AD is a
// separate degree of freedom — see ForEachArrival).
type SingleVarRun struct {
	Cond cond.Condition
	// U is the full stream the DM sent.
	U []event.Update
	// U1, U2 are the subsequences delivered to CE1 and CE2.
	U1, U2 []event.Update
	// A1, A2 are the alert streams T(U1), T(U2).
	A1, A2 []event.Alert
	// NInput is U1 ⊔ U2 and NOutput is T(NInput): what the corresponding
	// non-replicated system N would produce given the combined inputs.
	NInput  []event.Update
	NOutput []event.Alert
}

// RunSingleVar simulates the replicated system of Figure 2(a): stream u
// through two lossy front links, then each delivered stream through T. The
// rng drives the loss models; pass nil when both models are deterministic.
func RunSingleVar(c cond.Condition, u []event.Update, loss1, loss2 link.Model, r *rand.Rand) (*SingleVarRun, error) {
	if got := len(c.Vars()); got != 1 {
		return nil, fmt.Errorf("sim: RunSingleVar needs a single-variable condition, %q has %d", c.Name(), got)
	}
	run := &SingleVarRun{
		Cond: c,
		U:    u,
		U1:   link.Apply(u, loss1, r),
		U2:   link.Apply(u, loss2, r),
	}
	var err error
	if run.A1, err = ce.T(c, run.U1); err != nil {
		return nil, fmt.Errorf("sim: CE1: %w", err)
	}
	if run.A2, err = ce.T(c, run.U2); err != nil {
		return nil, fmt.Errorf("sim: CE2: %w", err)
	}
	if run.NInput, err = OrderedUnionUpdates(run.U1, run.U2); err != nil {
		return nil, err
	}
	if run.NOutput, err = ce.T(c, run.NInput); err != nil {
		return nil, fmt.Errorf("sim: corresponding non-replicated CE: %w", err)
	}
	return run, nil
}

// MaxArrivals bounds exhaustive arrival-order enumeration; C(m+n, m) grows
// fast and the checkers are meant for short paper-scale scenarios.
const MaxArrivals = 200000

// ForEachArrival invokes fn once per interleaving of the two alert streams
// that preserves each stream's internal order — every arrival order the AD
// can observe, since back links are ordered and lossless. Iteration stops
// early when fn returns false. It returns an error when the number of
// interleavings would exceed MaxArrivals.
func ForEachArrival(a1, a2 []event.Alert, fn func(merged []event.Alert) bool) error {
	if c := binom(len(a1)+len(a2), len(a1)); c > MaxArrivals {
		return fmt.Errorf("sim: %d arrival orders exceed the enumeration bound %d", c, MaxArrivals)
	}
	buf := make([]event.Alert, 0, len(a1)+len(a2))
	var rec func(i, j int) bool
	rec = func(i, j int) bool {
		if i == len(a1) && j == len(a2) {
			out := make([]event.Alert, len(buf))
			copy(out, buf)
			return fn(out)
		}
		if i < len(a1) {
			buf = append(buf, a1[i])
			cont := rec(i+1, j)
			buf = buf[:len(buf)-1]
			if !cont {
				return false
			}
		}
		if j < len(a2) {
			buf = append(buf, a2[j])
			cont := rec(i, j+1)
			buf = buf[:len(buf)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	return nil
}

// Arrivals materializes every arrival order (subject to MaxArrivals).
func Arrivals(a1, a2 []event.Alert) ([][]event.Alert, error) {
	var out [][]event.Alert
	err := ForEachArrival(a1, a2, func(m []event.Alert) bool {
		out = append(out, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RandomArrival draws one arrival order uniformly at random (each prefix
// choice weighted by the number of completions, yielding the uniform
// distribution over interleavings).
func RandomArrival(a1, a2 []event.Alert, r *rand.Rand) []event.Alert {
	out := make([]event.Alert, 0, len(a1)+len(a2))
	i, j := 0, 0
	for i < len(a1) || j < len(a2) {
		remaining1 := len(a1) - i
		remaining2 := len(a2) - j
		// Choose stream 1 with probability (ways starting with 1)/(total
		// ways) = remaining1/(remaining1+remaining2).
		if r.Intn(remaining1+remaining2) < remaining1 {
			out = append(out, a1[i])
			i++
		} else {
			out = append(out, a2[j])
			j++
		}
	}
	return out
}

// binom computes C(n, k), saturating at MaxArrivals+1 to avoid overflow.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (n - k + i) / i
		if c > MaxArrivals {
			return MaxArrivals + 1
		}
	}
	return c
}

// MultiVarRun captures one simulated run of a two-CE multi-variable system
// (Figure 3): independent per-variable DM streams, per-CE per-variable
// lossy delivery, and a per-CE interleaving of the delivered streams.
type MultiVarRun struct {
	Cond cond.Condition
	// Streams holds the full per-variable DM outputs.
	Streams map[event.VarName][]event.Update
	// Delivered[i][v] is the subsequence of Streams[v] delivered to CE i.
	Delivered [2]map[event.VarName][]event.Update
	// Inputs[i] is the interleaved update sequence CE i actually consumed.
	Inputs [2][]event.Update
	// A1, A2 are the CE outputs.
	A1, A2 []event.Alert
}

// Interleaver merges per-variable delivered streams into the single update
// sequence a CE consumes. Implementations must preserve each variable's
// internal order.
type Interleaver func(streams map[event.VarName][]event.Update, r *rand.Rand) []event.Update

// RoundRobin interleaves variables one update at a time in sorted variable
// order: x1 y1 x2 y2 …. Deterministic.
func RoundRobin(streams map[event.VarName][]event.Update, _ *rand.Rand) []event.Update {
	vars := sortedKeys(streams)
	idx := make(map[event.VarName]int, len(vars))
	total := 0
	for _, us := range streams {
		total += len(us)
	}
	out := make([]event.Update, 0, total)
	for len(out) < total {
		for _, v := range vars {
			if idx[v] < len(streams[v]) {
				out = append(out, streams[v][idx[v]])
				idx[v]++
			}
		}
	}
	return out
}

// Sequential concatenates complete per-variable streams in sorted variable
// order: all of x, then all of y. It is the interleaving used by the
// Theorem 10 counter-example (U1 = ⟨1x,2x,1y,2y⟩). SequentialReverse is its
// mirror.
func Sequential(streams map[event.VarName][]event.Update, _ *rand.Rand) []event.Update {
	var out []event.Update
	for _, v := range sortedKeys(streams) {
		out = append(out, streams[v]...)
	}
	return out
}

// SequentialReverse concatenates per-variable streams in reverse sorted
// order: all of y, then all of x (U2 = ⟨1y,2y,1x,2x⟩ in Theorem 10).
func SequentialReverse(streams map[event.VarName][]event.Update, _ *rand.Rand) []event.Update {
	vars := sortedKeys(streams)
	var out []event.Update
	for i := len(vars) - 1; i >= 0; i-- {
		out = append(out, streams[vars[i]]...)
	}
	return out
}

// RandomInterleave draws a uniformly random interleaving of the streams.
func RandomInterleave(streams map[event.VarName][]event.Update, r *rand.Rand) []event.Update {
	var (
		vars  = sortedKeys(streams)
		total int
	)
	for _, us := range streams {
		total += len(us)
	}
	idx := make(map[event.VarName]int, len(vars))
	out := make([]event.Update, 0, total)
	for len(out) < total {
		// Weight each variable by its remaining length for uniformity.
		remaining := 0
		for _, v := range vars {
			remaining += len(streams[v]) - idx[v]
		}
		n := r.Intn(remaining)
		for _, v := range vars {
			left := len(streams[v]) - idx[v]
			if n < left {
				out = append(out, streams[v][idx[v]])
				idx[v]++
				break
			}
			n -= left
		}
	}
	return out
}

// RunMultiVar simulates a two-CE multi-variable system: per-CE, per-variable
// loss models and per-CE interleavers.
func RunMultiVar(
	c cond.Condition,
	streams map[event.VarName][]event.Update,
	loss [2]map[event.VarName]link.Model,
	inter [2]Interleaver,
	r *rand.Rand,
) (*MultiVarRun, error) {
	run := &MultiVarRun{Cond: c, Streams: streams}
	for i := 0; i < 2; i++ {
		delivered := make(map[event.VarName][]event.Update, len(streams))
		for v, us := range streams {
			m := link.Model(link.None{})
			if loss[i] != nil {
				if lm, ok := loss[i][v]; ok {
					m = lm
				}
			}
			delivered[v] = link.Apply(us, m, r)
		}
		run.Delivered[i] = delivered
		run.Inputs[i] = inter[i](delivered, r)
	}
	var err error
	if run.A1, err = ce.T(c, run.Inputs[0]); err != nil {
		return nil, fmt.Errorf("sim: CE1: %w", err)
	}
	if run.A2, err = ce.T(c, run.Inputs[1]); err != nil {
		return nil, fmt.Errorf("sim: CE2: %w", err)
	}
	return run, nil
}

// CombinedStreams returns, per variable, the ordered union of what the two
// CEs received — the per-variable inputs of the corresponding
// non-replicated system in the multi-variable completeness/consistency
// definitions (Appendix C).
func (run *MultiVarRun) CombinedStreams() (map[event.VarName][]event.Update, error) {
	out := make(map[event.VarName][]event.Update, len(run.Streams))
	for v := range run.Streams {
		u, err := OrderedUnionUpdates(run.Delivered[0][v], run.Delivered[1][v])
		if err != nil {
			return nil, fmt.Errorf("sim: variable %q: %w", v, err)
		}
		out[v] = u
	}
	return out, nil
}

// MaxInterleavings bounds exhaustive update-interleaving enumeration.
const MaxInterleavings = 200000

// ForEachInterleaving invokes fn once per interleaving of the per-variable
// streams (preserving each stream's order). Used by the Appendix C
// completeness/consistency definitions, which quantify over interleavings
// UV. Stops early when fn returns false.
func ForEachInterleaving(streams map[event.VarName][]event.Update, fn func(uv []event.Update) bool) error {
	vars := sortedKeys(streams)
	total := 0
	count := 1
	for _, v := range vars {
		n := len(streams[v])
		total += n
		count = count * binom(total, n)
		if count > MaxInterleavings {
			return fmt.Errorf("sim: interleaving count exceeds the enumeration bound %d", MaxInterleavings)
		}
	}
	idx := make([]int, len(vars))
	buf := make([]event.Update, 0, total)
	var rec func() bool
	rec = func() bool {
		if len(buf) == total {
			out := make([]event.Update, total)
			copy(out, buf)
			return fn(out)
		}
		for vi, v := range vars {
			if idx[vi] < len(streams[v]) {
				buf = append(buf, streams[v][idx[vi]])
				idx[vi]++
				cont := rec()
				idx[vi]--
				buf = buf[:len(buf)-1]
				if !cont {
					return false
				}
			}
		}
		return true
	}
	rec()
	return nil
}

func sortedKeys(m map[event.VarName][]event.Update) []event.VarName {
	out := make([]event.VarName, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
