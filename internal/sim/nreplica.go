package sim

import (
	"fmt"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"

	"math/rand"
)

// The paper analyzes two CEs "for simplicity" and notes the analysis
// extends to more. This file provides the N-replica generalization: runs
// with any number of CEs and exhaustive enumeration of N-way alert arrival
// interleavings.

// NReplicaRun captures one simulated run of an N-CE single-variable
// system.
type NReplicaRun struct {
	Cond cond.Condition
	// U is the DM's output stream.
	U []event.Update
	// Us[i] is the subsequence delivered to CE i.
	Us [][]event.Update
	// As[i] is T(Us[i]).
	As [][]event.Alert
	// NInput is the ordered union of every delivered stream; NOutput is
	// T(NInput) — the corresponding non-replicated system's output given
	// the combined inputs.
	NInput  []event.Update
	NOutput []event.Alert
}

// RunSingleVarN simulates an N-replica single-variable system, one loss
// model per front link.
func RunSingleVarN(c cond.Condition, u []event.Update, losses []link.Model, r *rand.Rand) (*NReplicaRun, error) {
	if got := len(c.Vars()); got != 1 {
		return nil, fmt.Errorf("sim: RunSingleVarN needs a single-variable condition, %q has %d", c.Name(), got)
	}
	if len(losses) == 0 {
		return nil, fmt.Errorf("sim: RunSingleVarN needs at least one replica")
	}
	run := &NReplicaRun{Cond: c, U: u}
	for i, m := range losses {
		delivered := link.Apply(u, m, r)
		alerts, err := ce.T(c, delivered)
		if err != nil {
			return nil, fmt.Errorf("sim: CE%d: %w", i+1, err)
		}
		run.Us = append(run.Us, delivered)
		run.As = append(run.As, alerts)
	}
	var err error
	run.NInput = run.Us[0]
	for _, us := range run.Us[1:] {
		if run.NInput, err = OrderedUnionUpdates(run.NInput, us); err != nil {
			return nil, err
		}
	}
	if run.NOutput, err = ce.T(c, run.NInput); err != nil {
		return nil, fmt.Errorf("sim: corresponding non-replicated CE: %w", err)
	}
	return run, nil
}

// ForEachArrivalN invokes fn once per interleaving of the N alert streams
// that preserves each stream's internal order. The number of interleavings
// is the multinomial coefficient of the stream lengths; enumeration is
// bounded by MaxArrivals. Iteration stops early when fn returns false.
func ForEachArrivalN(streams [][]event.Alert, fn func(merged []event.Alert) bool) error {
	total := 0
	count := 1
	for _, s := range streams {
		total += len(s)
		count = count * binom(total, len(s))
		if count > MaxArrivals {
			return fmt.Errorf("sim: %d-way arrival orders exceed the enumeration bound %d", len(streams), MaxArrivals)
		}
	}
	idx := make([]int, len(streams))
	buf := make([]event.Alert, 0, total)
	var rec func() bool
	rec = func() bool {
		if len(buf) == total {
			out := make([]event.Alert, total)
			copy(out, buf)
			return fn(out)
		}
		for i, s := range streams {
			if idx[i] < len(s) {
				buf = append(buf, s[idx[i]])
				idx[i]++
				cont := rec()
				idx[i]--
				buf = buf[:len(buf)-1]
				if !cont {
					return false
				}
			}
		}
		return true
	}
	rec()
	return nil
}

// RandomArrivalN draws one uniformly random interleaving of the N streams.
func RandomArrivalN(streams [][]event.Alert, r *rand.Rand) []event.Alert {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	idx := make([]int, len(streams))
	out := make([]event.Alert, 0, total)
	for len(out) < total {
		remaining := 0
		for i, s := range streams {
			remaining += len(s) - idx[i]
		}
		n := r.Intn(remaining)
		for i, s := range streams {
			left := len(s) - idx[i]
			if n < left {
				out = append(out, s[idx[i]])
				idx[i]++
				break
			}
			n -= left
		}
	}
	return out
}
