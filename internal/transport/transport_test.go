package transport

import (
	"testing"
	"time"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/seq"
)

// collect drains updates from a receiver until the expected count arrives
// or a timeout expires.
func collect(t *testing.T, r *UDPReceiver, want int, timeout time.Duration) []event.Update {
	t.Helper()
	var out []event.Update
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case u, ok := <-r.Updates():
			if !ok {
				return out
			}
			out = append(out, u)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestUDPFrontLinkDeliversInOrder(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	for i := int64(1); i <= 5; i++ {
		if err := pub.Publish(event.U("x", i, float64(i*100))); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	got := collect(t, recv, 5, 5*time.Second)
	if !event.SeqNos(got, "x").Equal(seq.Seq{1, 2, 3, 4, 5}) {
		t.Errorf("received %v, want ⟨1..5⟩", event.SeqNos(got, "x"))
	}
}

func TestUDPReceiverDiscardsStaleSeqNos(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	// Send 2, then the stale 1, then 3: receiver must pass 2, 3 only.
	for _, n := range []int64{2, 1, 3} {
		if err := pub.Publish(event.U("x", n, 0)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	got := collect(t, recv, 2, 5*time.Second)
	if !event.SeqNos(got, "x").Equal(seq.Seq{2, 3}) {
		t.Errorf("received %v, want ⟨2,3⟩", event.SeqNos(got, "x"))
	}
	// Allow the stale datagram to be counted before asserting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, _ := recv.Stats(); d == 1 {
			break
		}
		if time.Now().After(deadline) {
			d, _ := recv.Stats()
			t.Fatalf("discarded = %d, want 1", d)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPForcedLoss(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ForcedLoss: link.NewDropSeqNos("x", 2),
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	for i := int64(1); i <= 3; i++ {
		if err := pub.Publish(event.U("x", i, 0)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	got := collect(t, recv, 2, 5*time.Second)
	if !event.SeqNos(got, "x").Equal(seq.Seq{1, 3}) {
		t.Errorf("received %v, want ⟨1,3⟩ with 2 force-dropped", event.SeqNos(got, "x"))
	}
}

func TestTCPBackLinkRoundTrip(t *testing.T) {
	adl, err := ListenAD("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAD: %v", err)
	}
	defer adl.Close()

	snd, err := DialAD(adl.Addr())
	if err != nil {
		t.Fatalf("DialAD: %v", err)
	}
	defer func() { _ = snd.Close() }()

	a := event.Alert{Cond: "c1", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 3200)}},
	}}
	if err := snd.Send(a); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case got := <-adl.Alerts():
		if got.Key() != a.Key() || got.Source != "CE1" {
			t.Errorf("received %v, want %v", got, a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alert did not arrive")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewUDPPublisher(); err == nil {
		t.Error("publisher with no addresses should fail")
	}
	if _, err := NewUDPPublisher("not-an-address:::"); err == nil {
		t.Error("bad address should fail")
	}
	if _, err := ListenUDP("bad:::addr", UDPReceiverOptions{}); err == nil {
		t.Error("bad listen address should fail")
	}
	if _, err := DialAD("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
	if _, err := ListenAD("bad:::addr"); err == nil {
		t.Error("bad AD address should fail")
	}
}

func TestEndToEndNetworkedReplicatedSystem(t *testing.T) {
	// The full Figure 1(b) pipeline over real sockets: one DM publishing
	// over UDP to two CE processes, each evaluating c1 and forwarding
	// alerts over TCP to one AD running AD-1. CE2's front link
	// deterministically loses update 2 (Example 1's loss pattern).
	adl, err := ListenAD("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAD: %v", err)
	}
	defer adl.Close()

	recv1, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP CE1: %v", err)
	}
	defer recv1.Close()
	recv2, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ForcedLoss: link.NewDropSeqNos("x", 2),
	})
	if err != nil {
		t.Fatalf("ListenUDP CE2: %v", err)
	}
	defer recv2.Close()

	// CE processes: consume updates, evaluate, send alerts.
	startCE := func(id string, recv *UDPReceiver) {
		snd, err := DialAD(adl.Addr())
		if err != nil {
			t.Errorf("DialAD(%s): %v", id, err)
			return
		}
		eval, err := ce.New(id, cond.NewOverheat("x"))
		if err != nil {
			t.Errorf("ce.New(%s): %v", id, err)
			return
		}
		go func() {
			defer func() { _ = snd.Close() }()
			for u := range recv.Updates() {
				a, fired, err := eval.Feed(u)
				if err != nil {
					t.Errorf("%s Feed: %v", id, err)
					return
				}
				if fired {
					if err := snd.Send(a); err != nil {
						return
					}
				}
			}
		}()
	}
	startCE("CE1", recv1)
	startCE("CE2", recv2)

	pub, err := NewUDPPublisher(recv1.Addr(), recv2.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	for _, u := range []event.Update{
		event.U("x", 1, 2900), event.U("x", 2, 3100), event.U("x", 3, 3200),
	} {
		if err := pub.Publish(u); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		// Pace the datagrams so loopback does not coalesce-drop them.
		time.Sleep(5 * time.Millisecond)
	}

	// Expect three alerts at the AD (a1(2x), a2(3x) from CE1 and a3(3x)
	// from CE2), of which AD-1 displays two.
	filter := ad.NewAD1()
	var displayed []event.Alert
	deadline := time.After(10 * time.Second)
	for received := 0; received < 3; {
		select {
		case a := <-adl.Alerts():
			received++
			if ad.Offer(filter, a) {
				displayed = append(displayed, a)
			}
		case <-deadline:
			t.Fatalf("timed out after %d alerts", received)
		}
	}
	if len(displayed) != 2 {
		t.Fatalf("displayed %d alerts, want 2 (duplicate suppressed): %v", len(displayed), displayed)
	}
	if !props.Ordered(displayed, []event.VarName{"x"}) {
		// Arrival order across TCP connections is nondeterministic, but
		// with CE1 publishing first the duplicate is the late one in
		// practice; orderedness is not guaranteed here (Theorem 2), so
		// only check the alert set.
		t.Logf("note: unordered arrival (allowed by Theorem 2): %v", displayed)
	}
	keys := event.KeySet(displayed)
	if len(keys) != 2 {
		t.Errorf("displayed duplicate alerts: %v", displayed)
	}
}

func TestUDPBatchFrontLink(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	us := make([]event.Update, 100)
	for i := range us {
		us[i] = event.U("x", int64(i+1), float64(i)*1.5)
	}
	if err := pub.PublishBatch("x", us); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	got := collect(t, recv, 100, 5*time.Second)
	if len(got) != 100 {
		t.Fatalf("received %d updates, want 100", len(got))
	}
	for i, u := range got {
		if u != us[i] {
			t.Fatalf("update %d: got %v, want %v", i, u, us[i])
		}
	}
}

func TestUDPBatchSplitsOversizedRuns(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	// More than one datagram's worth of 16-byte records (64KB / 16 ≈ 4095
	// per chunk after the header): the publisher must split, and loopback
	// rarely drops, so most should land. Require in-order, gap-free prefix
	// semantics rather than exact counts — this is still UDP.
	const n = 5000
	us := make([]event.Update, n)
	for i := range us {
		us[i] = event.U("x", int64(i+1), float64(i))
	}
	if err := pub.PublishBatch("x", us); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	// Receiver-overrun drops mean fewer than n may arrive; a short timeout
	// bounds the wait without weakening the ordering assertion below.
	got := collect(t, recv, n, time.Second)
	if len(got) == 0 {
		t.Fatal("no updates received")
	}
	last := int64(0)
	for _, u := range got {
		if u.SeqNo <= last {
			t.Fatalf("out-of-order delivery: %d after %d", u.SeqNo, last)
		}
		last = u.SeqNo
	}
}

func TestUDPBatchInOrderAcrossBatchAndSingle(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	// A batch, then a stale single, then a fresh single: the receiver's
	// sequence check must span datagram kinds.
	if err := pub.PublishBatch("x", []event.Update{
		event.U("x", 1, 10), event.U("x", 2, 20), event.U("x", 3, 30),
	}); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	if err := pub.Publish(event.U("x", 2, 99)); err != nil { // stale
		t.Fatalf("Publish: %v", err)
	}
	if err := pub.Publish(event.U("x", 4, 40)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := collect(t, recv, 4, 5*time.Second)
	if !event.SeqNos(got, "x").Equal(seq.Seq{1, 2, 3, 4}) {
		t.Errorf("received %v, want ⟨1,2,3,4⟩", event.SeqNos(got, "x"))
	}
	discarded, _ := recv.Stats()
	if discarded != 1 {
		t.Errorf("discarded = %d, want 1 (the stale single)", discarded)
	}
}
