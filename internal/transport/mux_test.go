package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"condmon/internal/event"
	"condmon/internal/obs"
	"condmon/internal/runtime"
	"condmon/internal/wire"
)

// testAlert builds a small distinct alert for stream/seq.
func testAlert(cond string, source string, seqNo int64) event.Alert {
	return event.Alert{Cond: cond, Source: source, Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", seqNo, float64(seqNo)*10)}},
	}}
}

// collectStream drains n stream alerts or fails at the timeout.
func collectStream(t *testing.T, l *MuxListener, n int, timeout time.Duration) []StreamAlert {
	t.Helper()
	var out []StreamAlert
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case sa, ok := <-l.Alerts():
			if !ok {
				t.Fatalf("listener closed after %d/%d alerts", len(out), n)
			}
			out = append(out, sa)
		case <-deadline:
			t.Fatalf("timed out after %d/%d alerts", len(out), n)
		}
	}
	return out
}

// TestMuxPerStreamOrdering is the core mux contract: many streams share
// one connection, and each stream's alerts arrive in send order.
func TestMuxPerStreamOrdering(t *testing.T) {
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	s, err := DialMux(l.Addr(), MuxSenderOptions{})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer func() { _ = s.Close() }()

	const streams, perStream = 5, 20
	for i := 0; i < perStream; i++ {
		for st := 0; st < streams; st++ {
			a := testAlert(fmt.Sprintf("c%d", st), "CE", int64(i+1))
			if err := s.Send(uint32(st), a); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := collectStream(t, l, streams*perStream, 10*time.Second)
	last := map[uint32]int64{}
	for _, sa := range got {
		seq := sa.Alert.MustSeqNo("x")
		if seq <= last[sa.Stream] {
			t.Fatalf("stream %d: seq %d arrived after %d", sa.Stream, seq, last[sa.Stream])
		}
		if want := fmt.Sprintf("c%d", sa.Stream); sa.Alert.Cond != want {
			t.Fatalf("stream %d carried alert for %q, want %q", sa.Stream, sa.Alert.Cond, want)
		}
		last[sa.Stream] = seq
	}
}

// TestMuxDeadlineFlush verifies the coalescing buffer's deadline: a single
// buffered alert must arrive without any explicit Flush.
func TestMuxDeadlineFlush(t *testing.T) {
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	s, err := DialMux(l.Addr(), MuxSenderOptions{FlushEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer func() { _ = s.Close() }()
	if err := s.Send(9, testAlert("c", "CE1", 1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := collectStream(t, l, 1, 5*time.Second)
	if got[0].Stream != 9 || got[0].Alert.Cond != "c" {
		t.Errorf("got %v, want stream 9 alert c", got[0])
	}
}

// TestMuxSendAfterClose pins the sentinel contract shared with the front
// links: Send and Flush on a closed mux return the wrapped
// runtime.ErrClosed.
func TestMuxSendAfterClose(t *testing.T) {
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	s, err := DialMux(l.Addr(), MuxSenderOptions{})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Send(0, testAlert("c", "CE1", 1)); !errors.Is(err, runtime.ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, runtime.ErrClosed) {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestTCPSenderSendAfterClose pins the same sentinel on the dedicated
// back-link sender (previously a raw net error).
func TestTCPSenderSendAfterClose(t *testing.T) {
	l, err := ListenAD("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAD: %v", err)
	}
	defer l.Close()
	s, err := DialAD(l.Addr())
	if err != nil {
		t.Fatalf("DialAD: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Send(testAlert("c", "CE1", 1)); !errors.Is(err, runtime.ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if err := s.SendDigest(wire.DigestOf(testAlert("c", "CE1", 2))); !errors.Is(err, runtime.ErrClosed) {
		t.Errorf("SendDigest after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestMuxOversizedRunSplits is the maxFrame enforcement contract for 'M'
// frames: a coalesced run whose encoding exceeds maxFrame is split into
// several frames of the same stream — every alert still arrives, in order,
// and the connection is not reset.
func TestMuxOversizedRunSplits(t *testing.T) {
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	// A huge FlushBytes keeps everything buffered until one explicit Flush,
	// forcing the flush itself to split the run across frames.
	s, err := DialMux(l.Addr(), MuxSenderOptions{FlushBytes: 1 << 30, FlushEvery: time.Hour})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer func() { _ = s.Close() }()

	// Each alert carries a ~64 KiB history window; 40 of them exceed the
	// 1 MiB maxFrame at least twice over.
	big := make([]event.Update, 4000)
	const n = 40
	for i := 0; i < n; i++ {
		for j := range big {
			big[j] = event.Update{Var: "x", SeqNo: int64(i*len(big) + j + 1), Value: float64(j)}
		}
		// Recent is newest-first per event.History conventions elsewhere, but
		// the wire layer round-trips any order; what matters here is size.
		a := event.Alert{Cond: "big", Source: "CE1", Histories: event.HistorySet{
			"x": {Var: "x", Recent: append([]event.Update(nil), big...)},
		}}
		if err := s.Send(1, a); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := collectStream(t, l, n, 30*time.Second)
	for i, sa := range got {
		if sa.Stream != 1 {
			t.Fatalf("alert %d arrived on stream %d, want 1", i, sa.Stream)
		}
		if want := int64((i+1)*len(big) - len(big) + 1); sa.Alert.Histories["x"].Recent[0].SeqNo != want {
			t.Fatalf("alert %d out of order: head seqno %d, want %d", i, sa.Alert.Histories["x"].Recent[0].SeqNo, want)
		}
	}
}

// TestMuxSingleOversizedAlertRejected: one alert too big for any frame is
// an error at Send time, not a poisoned connection.
func TestMuxSingleOversizedAlertRejected(t *testing.T) {
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	s, err := DialMux(l.Addr(), MuxSenderOptions{})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer func() { _ = s.Close() }()
	// Two 60000-update histories: each is under the encoder's per-window
	// limit, but together they encode to ~1.9 MiB — past maxFrame.
	hs := event.HistorySet{}
	for i := 0; i < 2; i++ {
		v := event.VarName(fmt.Sprintf("v%d", i))
		rec := make([]event.Update, 60000)
		for j := range rec {
			rec[j] = event.Update{Var: v, SeqNo: int64(j + 1)}
		}
		hs[v] = event.History{Var: v, Recent: rec}
	}
	if err := s.Send(0, event.Alert{Cond: "huge", Histories: hs}); err == nil {
		t.Error("Send of >maxFrame alert succeeded, want error")
	}
	// The connection is still usable.
	if err := s.Send(0, testAlert("ok", "CE1", 1)); err != nil {
		t.Fatalf("Send after rejection: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := collectStream(t, l, 1, 5*time.Second)
	if got[0].Alert.Cond != "ok" {
		t.Errorf("got %v, want the follow-up alert", got[0])
	}
}

// TestMuxListenerAcceptsLegacyAlertFrames: a plain TCPSender can talk to a
// MuxListener; its alerts surface as stream 0.
func TestMuxListenerAcceptsLegacyAlertFrames(t *testing.T) {
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	s, err := DialAD(l.Addr())
	if err != nil {
		t.Fatalf("DialAD: %v", err)
	}
	defer func() { _ = s.Close() }()
	if err := s.Send(testAlert("legacy", "CE1", 4)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := collectStream(t, l, 1, 5*time.Second)
	if got[0].Stream != 0 || got[0].Alert.Cond != "legacy" {
		t.Errorf("got %v, want stream-0 legacy alert", got[0])
	}
}

// TestMuxMetrics spot-checks the coalescing counters: many alerts, few
// frames, fewer flushes.
func TestMuxMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	lreg := obs.NewRegistry()
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{Metrics: lreg})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	s, err := DialMux(l.Addr(), MuxSenderOptions{Metrics: reg, FlushEvery: time.Hour})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer func() { _ = s.Close() }()
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Send(uint32(i%2), testAlert("c", "CE", int64(i+1))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	collectStream(t, l, n, 10*time.Second)
	if got, _ := reg.Get("transport.mux.alerts"); got.Value != n {
		t.Errorf("transport.mux.alerts = %d, want %d", got.Value, n)
	}
	frames, _ := reg.Get("transport.mux.frames")
	if frames.Value < 2 || frames.Value > 4 {
		t.Errorf("transport.mux.frames = %d, want 2 streams' worth (2-4)", frames.Value)
	}
	if got, _ := lreg.Get("transport.muxrecv.alerts"); got.Value != n {
		t.Errorf("transport.muxrecv.alerts = %d, want %d", got.Value, n)
	}
	if got, _ := lreg.Get("transport.muxrecv.item_errors"); got.Value != 0 {
		t.Errorf("transport.muxrecv.item_errors = %d, want 0", got.Value)
	}
}
