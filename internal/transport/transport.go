// Package transport carries updates and alerts over real sockets,
// realizing the link assumptions of Section 2.1 with the protocols the
// paper itself suggests:
//
//   - Front links (DM → CE) use UDP datagrams: cheap for a low-capability
//     sensor, naturally lossy, one update per packet. The receiver enforces
//     in-order delivery by discarding any update whose sequence number does
//     not exceed the last accepted one for its variable — the
//     sequence-number mechanism the paper describes. An optional forced
//     loss model injects deterministic drops for testing and demos, since
//     loopback UDP rarely loses packets on its own.
//
//   - Back links (CE → AD) use TCP with length-prefixed frames: reliable
//     and ordered, matching the paper's argument that alert traffic is low
//     and too valuable to lose.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
	"condmon/internal/runtime"
	"condmon/internal/wire"

	"math/rand"
)

// maxFrame bounds a TCP alert frame; anything larger indicates corruption.
const maxFrame = 1 << 20

// maxDatagram is the receiver's read-buffer size; PublishBatch splits runs
// so no batch datagram exceeds it.
const maxDatagram = 64 * 1024

// updateBuffer sizes receiver channels; UDP senders never block on the
// receiver, so a full buffer simply looks like link loss — faithful to the
// medium.
const updateBuffer = 1024

// UDPPublisher is the DM side of a front link: it multicasts each update to
// a fixed set of CE endpoints as independent datagrams (one lossy link per
// recipient, as in Figure 1(b)).
type UDPPublisher struct {
	conns []*net.UDPConn

	// Optional instrumentation; nil counters no-op.
	cDatagrams *obs.Counter // datagrams written (one per endpoint per send)
	cUpdates   *obs.Counter // updates published (before fan-out)

	// Optional live tracing (SetTrace); annotate gates the whole path so
	// the tracing-off cost is one bool check.
	tr        *obs.Tracer
	traceName string
	annotate  bool
}

// SetMetrics registers publisher counters in reg under prefix:
// <prefix>.datagrams (one per endpoint per send, so batching shows up as
// datagrams ≪ updates × endpoints) and <prefix>.updates. Call before
// publishing; a nil registry leaves metrics off.
func (p *UDPPublisher) SetMetrics(reg *obs.Registry, prefix string) {
	p.cDatagrams = reg.Counter(prefix + ".datagrams")
	p.cUpdates = reg.Counter(prefix + ".updates")
}

// SetTrace enables live tracing on the publisher: every published update
// records a StageEmit span in t under the given replica name (default
// "DM"), and every outgoing datagram gains a wire trace trailer carrying
// the emit timestamp so downstream daemons can stitch their spans to this
// origin. Receivers that predate the trailer reject annotated datagrams as
// trailing garbage, which is why annotation only happens on this opt-in.
// A nil tracer leaves tracing off.
func (p *UDPPublisher) SetTrace(t *obs.Tracer, replica string) {
	if t == nil {
		return
	}
	if replica == "" {
		replica = "DM"
	}
	p.tr, p.traceName, p.annotate = t, replica, true
}

// NewUDPPublisher connects to the given CE addresses.
func NewUDPPublisher(addrs ...string) (*UDPPublisher, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: publisher needs at least one address")
	}
	p := &UDPPublisher{conns: make([]*net.UDPConn, 0, len(addrs))}
	for _, a := range addrs {
		dst, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: resolve %q: %w", a, err)
		}
		conn, err := net.DialUDP("udp", nil, dst)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: dial %q: %w", a, err)
		}
		p.conns = append(p.conns, conn)
	}
	return p, nil
}

// Publish sends the update to every CE endpoint. Send errors on individual
// endpoints are ignored — a front link is allowed to lose updates, and a
// dead receiver is indistinguishable from a lossy link.
func (p *UDPPublisher) Publish(u event.Update) error {
	b, err := wire.EncodeUpdate(u)
	if err != nil {
		return err
	}
	if p.annotate {
		now := time.Now().UnixNano()
		b = wire.AppendTrace(b, wire.Trace{Flags: wire.TraceFlagSampled, Origin: now})
		p.tr.Record(obs.Span{
			Var: string(u.Var), Seq: u.SeqNo,
			Stage: obs.StageEmit, Replica: p.traceName, Disp: obs.DispEmitted,
			Time: now, Origin: now,
		})
	}
	for _, c := range p.conns {
		_, _ = c.Write(b) // best-effort: loss is part of the model
	}
	p.cUpdates.Inc()
	p.cDatagrams.Add(int64(len(p.conns)))
	return nil
}

// PublishBatch sends a run of in-order updates of one variable as batch
// datagrams, one syscall per endpoint per chunk instead of one per update.
// Runs too large for a single datagram are split so every chunk fits the
// receiver's buffer. Like Publish, per-endpoint send errors are ignored:
// losing a whole batch datagram is just a burstier draw from the same lossy
// link the paper assumes, and the receiver's per-update sequence check
// keeps later arrivals in order.
func (p *UDPPublisher) PublishBatch(v event.VarName, us []event.Update) error {
	// Fixed 16-byte records after the header make the chunk capacity exact;
	// an annotated chunk also reserves room for the frame trailer.
	overhead := 1 + 2 + len(string(v)) + 2
	if p.annotate {
		overhead += wire.TraceLen
	}
	perChunk := (maxDatagram - overhead) / 16
	if perChunk < 1 {
		return fmt.Errorf("transport: variable name %q leaves no room for updates", v)
	}
	for len(us) > 0 {
		n := len(us)
		if n > perChunk {
			n = perChunk
		}
		b, err := wire.EncodeBatch(v, us[:n])
		if err != nil {
			return err
		}
		if p.annotate {
			// One trailer per chunk: the whole run shares one emit instant.
			now := time.Now().UnixNano()
			b = wire.AppendTrace(b, wire.Trace{Flags: wire.TraceFlagSampled, Origin: now})
			for _, u := range us[:n] {
				p.tr.Record(obs.Span{
					Var: string(u.Var), Seq: u.SeqNo,
					Stage: obs.StageEmit, Replica: p.traceName, Disp: obs.DispEmitted,
					Time: now, Origin: now,
				})
			}
		}
		for _, c := range p.conns {
			_, _ = c.Write(b) // best-effort: loss is part of the model
		}
		p.cUpdates.Add(int64(n))
		p.cDatagrams.Add(int64(len(p.conns)))
		us = us[n:]
	}
	return nil
}

// Close releases the sockets.
func (p *UDPPublisher) Close() {
	for _, c := range p.conns {
		_ = c.Close()
	}
}

// UDPReceiverOptions configure a CE-side front link endpoint.
type UDPReceiverOptions struct {
	// ForcedLoss, if non-nil, drops delivered updates per the model — a
	// deterministic stand-in for real network loss. Seed drives it.
	ForcedLoss link.Model
	Seed       int64
	// Metrics, if non-nil, registers receiver counters: accepted updates,
	// out-of-order discards, forced-loss drops, and overruns (updates
	// dropped because the consumer fell behind). Names are prefixed with
	// MetricsPrefix, default "transport.recv".
	Metrics       *obs.Registry
	MetricsPrefix string
	// Trace, if non-nil, records a StageLink span for every datagram-borne
	// update (delivered, discarded, lost) under the TraceName replica label
	// (default "CE"), carrying the origin timestamp from annotated frames.
	Trace     *obs.Tracer
	TraceName string
	// Health, if non-nil, registers this front link under TraceName (or
	// "front") and touches it on every datagram-borne update, so /healthz
	// reports the link stale after StaleAfter without activity
	// (obs.DefaultStaleAfter when ≤ 0).
	Health     *obs.Health
	StaleAfter time.Duration
}

// UDPReceiver is the CE side of a front link: it decodes datagrams,
// enforces per-variable in-order delivery, optionally injects loss, and
// hands accepted updates to a channel.
type UDPReceiver struct {
	conn *net.UDPConn
	out  chan event.Update
	done chan struct{}

	mu         sync.Mutex
	lastSeq    map[event.VarName]int64
	lastOrigin map[event.VarName]int64
	discarded  int64
	forced     int64

	// Optional instrumentation; nil counters, tracer, and link health
	// no-op.
	cAccepted, cDiscarded, cForced, cOverrun *obs.Counter
	tr                                       *obs.Tracer
	trName                                   string
	lh                                       *obs.LinkHealth
}

// ListenUDP starts a receiver on addr (use "127.0.0.1:0" for an ephemeral
// test port).
func ListenUDP(addr string, opts UDPReceiverOptions) (*UDPReceiver, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	r := &UDPReceiver{
		conn:       conn,
		out:        make(chan event.Update, updateBuffer),
		done:       make(chan struct{}),
		lastSeq:    make(map[event.VarName]int64),
		lastOrigin: make(map[event.VarName]int64),
	}
	if opts.Trace != nil {
		r.tr = opts.Trace
		r.trName = opts.TraceName
		if r.trName == "" {
			r.trName = "CE"
		}
	}
	if opts.Health != nil {
		name := opts.TraceName
		if name == "" {
			name = "front"
		}
		r.lh = opts.Health.Link("front:"+name, opts.StaleAfter)
	}
	if opts.Metrics != nil {
		prefix := opts.MetricsPrefix
		if prefix == "" {
			prefix = "transport.recv"
		}
		r.cAccepted = opts.Metrics.Counter(prefix + ".accepted")
		r.cDiscarded = opts.Metrics.Counter(prefix + ".discarded")
		r.cForced = opts.Metrics.Counter(prefix + ".forced_loss")
		r.cOverrun = opts.Metrics.Counter(prefix + ".overrun")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	go r.loop(opts.ForcedLoss, rng)
	return r, nil
}

// Addr returns the bound address (useful with ephemeral ports).
func (r *UDPReceiver) Addr() string { return r.conn.LocalAddr().String() }

// Updates returns the stream of accepted updates. The channel closes when
// the receiver is closed.
func (r *UDPReceiver) Updates() <-chan event.Update { return r.out }

// Stats reports discarded out-of-order datagrams and force-dropped updates.
func (r *UDPReceiver) Stats() (discarded, forced int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.discarded, r.forced
}

// Close stops the receiver; Updates is closed after the read loop exits.
func (r *UDPReceiver) Close() {
	_ = r.conn.Close()
	<-r.done
}

func (r *UDPReceiver) loop(forced link.Model, rng *rand.Rand) {
	defer close(r.done)
	defer close(r.out)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n > 0 && buf[0] == 'B' {
			// A batch datagram: every decodable update runs through the same
			// per-update acceptance as single datagrams. Corrupt items are
			// dropped individually (the decoder keeps framing), just another
			// form of link loss.
			batch, _, rest, err := wire.DecodeBatch(buf[:n])
			if err != nil {
				continue // corrupt datagram: drop, like any lossy link
			}
			t, _, rest, terr := wire.TakeTrace(rest)
			if terr != nil || len(rest) != 0 {
				continue // corrupt datagram: drop, like any lossy link
			}
			for _, u := range batch.Updates {
				r.deliver(u, forced, rng, t.Origin)
			}
			continue
		}
		u, rest, err := wire.DecodeUpdate(buf[:n])
		if err != nil {
			continue // corrupt datagram: drop, like any lossy link
		}
		t, _, rest, terr := wire.TakeTrace(rest)
		if terr != nil || len(rest) != 0 {
			continue // corrupt datagram: drop, like any lossy link
		}
		r.deliver(u, forced, rng, t.Origin)
	}
}

// LastOrigin returns the origin timestamp (Unix nanoseconds) carried by
// the most recently accepted annotated update for v, or zero when no
// annotated update has arrived. CE daemons use it to stamp outgoing alert
// frames with the triggering update's emit time.
func (r *UDPReceiver) LastOrigin(v event.VarName) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastOrigin[v]
}

// deliver applies the in-order rule and forced loss to one received update
// and hands survivors to the output channel — identical acceptance whether
// the update arrived alone or inside a batch datagram. origin is the
// annotated frame's emit timestamp (zero when untagged); it labels the
// link spans and is remembered per variable for LastOrigin.
func (r *UDPReceiver) deliver(u event.Update, forced link.Model, rng *rand.Rand, origin int64) {
	r.lh.Touch() // any datagram-borne update is link activity
	r.mu.Lock()
	if last, ok := r.lastSeq[u.Var]; ok && u.SeqNo <= last {
		r.discarded++
		r.mu.Unlock()
		r.cDiscarded.Inc()
		r.linkSpan(u, obs.DispDiscarded, origin)
		return // out-of-order or duplicate: discard (Section 2.1)
	}
	if forced != nil && !forced.Deliver(u, rng) {
		// Forced loss still advances the order horizon: the link "lost"
		// this update and later arrivals remain in order.
		r.lastSeq[u.Var] = u.SeqNo
		r.forced++
		r.mu.Unlock()
		r.cForced.Inc()
		r.linkSpan(u, obs.DispLost, origin)
		return
	}
	r.lastSeq[u.Var] = u.SeqNo
	if origin != 0 {
		r.lastOrigin[u.Var] = origin
	}
	r.mu.Unlock()

	select {
	case r.out <- u:
		r.cAccepted.Inc()
		r.linkSpan(u, obs.DispDelivered, origin)
	default:
		// Receiver overrun: drop, indistinguishable from link loss.
		r.cOverrun.Inc()
		r.linkSpan(u, obs.DispLost, origin)
	}
}

// linkSpan records one front-link span; no-op with tracing off.
func (r *UDPReceiver) linkSpan(u event.Update, disp string, origin int64) {
	if r.tr == nil {
		return
	}
	r.tr.Record(obs.Span{
		Var: string(u.Var), Seq: u.SeqNo,
		Stage: obs.StageLink, Replica: r.trName, Disp: disp,
		Origin: origin,
	})
}

// TCPSender is the CE side of a back link: a reliable, ordered alert
// stream to the AD.
type TCPSender struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DialAD connects to an ADListener.
func DialAD(addr string) (*TCPSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial AD %q: %w", addr, err)
	}
	return &TCPSender{conn: conn}, nil
}

// Send transmits one alert as a length-prefixed frame. Unlike the front
// links, errors are returned: back links must not lose alerts silently.
// After Close, Send returns the wrapped runtime.ErrClosed sentinel —
// parity with the runtime's Emit-after-Close contract, instead of the raw
// net error a write on a closed socket would surface.
func (s *TCPSender) Send(a event.Alert) error {
	body, err := wire.EncodeAlert(a)
	if err != nil {
		return err
	}
	return s.sendFrame(body)
}

// SendTrace transmits one alert with a wire trace trailer appended after
// the alert body inside the frame, carrying the sampled flag and the
// triggering update's origin timestamp across the back link. Listeners
// that predate the trailer reject annotated frames as trailing garbage,
// so only send annotated when the AD side is running ListenADOpts (or a
// MuxListener) from this version on.
func (s *TCPSender) SendTrace(a event.Alert, t wire.Trace) error {
	body, err := wire.EncodeAlert(a)
	if err != nil {
		return err
	}
	return s.sendFrame(wire.AppendTrace(body, t))
}

// sendFrame writes one length-prefixed frame under the sender mutex.
func (s *TCPSender) sendFrame(body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("transport: alert frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: Send: %w", runtime.ErrClosed)
	}
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send alert header: %w", err)
	}
	if _, err := s.conn.Write(body); err != nil {
		return fmt.Errorf("transport: send alert body: %w", err)
	}
	return nil
}

// Close closes the connection; it is idempotent, and later Sends report
// the runtime.ErrClosed sentinel.
func (s *TCPSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.conn.Close()
}

// ADListener is the AD side of the back links: it accepts any number of CE
// connections and merges their alert streams into one channel — the
// nondeterministic arrival interleaving M of the analysis model.
type ADListener struct {
	ln      net.Listener
	out     chan event.Alert
	digests chan wire.Digest
	wg      sync.WaitGroup
	done    chan struct{}

	// Optional instrumentation; nil tracer and link health no-op.
	tr *obs.Tracer
	lh *obs.LinkHealth
}

// ADListenerOptions configure the AD side of the back links.
type ADListenerOptions struct {
	// Trace, if non-nil, records a StageBacklink/arrived span for every
	// alert frame that arrives (one per history variable, labelled with the
	// alert's source replica), carrying the origin timestamp from annotated
	// frames.
	Trace *obs.Tracer
	// Health, if non-nil, registers the merged back link under "backlink"
	// and touches it on every arriving frame; /healthz reports it stale
	// after StaleAfter without traffic (obs.DefaultStaleAfter when ≤ 0).
	Health     *obs.Health
	StaleAfter time.Duration
}

// ListenAD starts an AD endpoint on addr.
func ListenAD(addr string) (*ADListener, error) {
	return ListenADOpts(addr, ADListenerOptions{})
}

// ListenADOpts starts an AD endpoint on addr with tracing and health
// wiring. The zero options value behaves exactly like ListenAD.
func ListenADOpts(addr string, opts ADListenerOptions) (*ADListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen AD %q: %w", addr, err)
	}
	l := &ADListener{
		ln:      ln,
		out:     make(chan event.Alert, updateBuffer),
		digests: make(chan wire.Digest, updateBuffer),
		done:    make(chan struct{}),
		tr:      opts.Trace,
	}
	if opts.Health != nil {
		l.lh = opts.Health.Link("backlink", opts.StaleAfter)
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// arrivalSpans records one StageBacklink/arrived span per history variable
// of an alert that crossed a back link — shared by the dedicated and mux
// listeners. No-op with tracing off.
func arrivalSpans(tr *obs.Tracer, a event.Alert, origin int64) {
	if tr == nil {
		return
	}
	for _, v := range a.Histories.Vars() {
		tr.Record(obs.Span{
			Var: string(v), Seq: a.Histories[v].Latest().SeqNo,
			Stage: obs.StageBacklink, Replica: a.Source, Disp: obs.DispArrived,
			Origin: origin,
		})
	}
}

// Addr returns the bound address.
func (l *ADListener) Addr() string { return l.ln.Addr().String() }

// Alerts returns the merged alert stream. It closes after Close once all
// connection handlers exit.
func (l *ADListener) Alerts() <-chan event.Alert { return l.out }

// Close shuts the listener and all connections down and closes Alerts.
func (l *ADListener) Close() {
	close(l.done)
	_ = l.ln.Close()
	l.wg.Wait()
	close(l.out)
	close(l.digests)
}

func (l *ADListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go l.handle(conn)
	}
}

func (l *ADListener) handle(conn net.Conn) {
	defer l.wg.Done()
	defer func() { _ = conn.Close() }()
	go func() {
		// Unblock reads when Close is called.
		<-l.done
		_ = conn.Close()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			return // corrupt stream: a real TCP link would reset here
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		// Frames are self-describing: dispatch on the wire tag byte. Either
		// frame kind may carry an optional trace trailer after its body.
		switch body[0] {
		case 'A':
			a, rest, err := wire.DecodeAlert(body)
			if err != nil {
				return
			}
			t, _, rest, terr := wire.TakeTrace(rest)
			if terr != nil || len(rest) != 0 {
				return
			}
			l.lh.Touch()
			arrivalSpans(l.tr, a, t.Origin)
			select {
			case l.out <- a:
			case <-l.done:
				return
			}
		case 'D':
			d, rest, err := wire.DecodeDigest(body)
			if err != nil {
				return
			}
			if _, _, rest, terr := wire.TakeTrace(rest); terr != nil || len(rest) != 0 {
				return
			}
			l.lh.Touch()
			select {
			case l.digests <- d:
			case <-l.done:
				return
			}
		default:
			return // unknown frame type: treat as a corrupt stream
		}
	}
}
