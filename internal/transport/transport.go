// Package transport carries updates and alerts over real sockets,
// realizing the link assumptions of Section 2.1 with the protocols the
// paper itself suggests:
//
//   - Front links (DM → CE) use UDP datagrams: cheap for a low-capability
//     sensor, naturally lossy, one update per packet. The receiver enforces
//     in-order delivery by discarding any update whose sequence number does
//     not exceed the last accepted one for its variable — the
//     sequence-number mechanism the paper describes. An optional forced
//     loss model injects deterministic drops for testing and demos, since
//     loopback UDP rarely loses packets on its own.
//
//   - Back links (CE → AD) use TCP with length-prefixed frames: reliable
//     and ordered, matching the paper's argument that alert traffic is low
//     and too valuable to lose.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
	"condmon/internal/runtime"
	"condmon/internal/wire"

	"math/rand"
)

// maxFrame bounds a TCP alert frame; anything larger indicates corruption.
const maxFrame = 1 << 20

// maxDatagram is the receiver's read-buffer size; PublishBatch splits runs
// so no batch datagram exceeds it.
const maxDatagram = 64 * 1024

// updateBuffer sizes receiver channels; UDP senders never block on the
// receiver, so a full buffer simply looks like link loss — faithful to the
// medium.
const updateBuffer = 1024

// UDPPublisher is the DM side of a front link: it multicasts each update to
// a fixed set of CE endpoints as independent datagrams (one lossy link per
// recipient, as in Figure 1(b)).
type UDPPublisher struct {
	conns []*net.UDPConn

	// Optional instrumentation; nil counters no-op.
	cDatagrams *obs.Counter // datagrams written (one per endpoint per send)
	cUpdates   *obs.Counter // updates published (before fan-out)
}

// SetMetrics registers publisher counters in reg under prefix:
// <prefix>.datagrams (one per endpoint per send, so batching shows up as
// datagrams ≪ updates × endpoints) and <prefix>.updates. Call before
// publishing; a nil registry leaves metrics off.
func (p *UDPPublisher) SetMetrics(reg *obs.Registry, prefix string) {
	p.cDatagrams = reg.Counter(prefix + ".datagrams")
	p.cUpdates = reg.Counter(prefix + ".updates")
}

// NewUDPPublisher connects to the given CE addresses.
func NewUDPPublisher(addrs ...string) (*UDPPublisher, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: publisher needs at least one address")
	}
	p := &UDPPublisher{conns: make([]*net.UDPConn, 0, len(addrs))}
	for _, a := range addrs {
		dst, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: resolve %q: %w", a, err)
		}
		conn, err := net.DialUDP("udp", nil, dst)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: dial %q: %w", a, err)
		}
		p.conns = append(p.conns, conn)
	}
	return p, nil
}

// Publish sends the update to every CE endpoint. Send errors on individual
// endpoints are ignored — a front link is allowed to lose updates, and a
// dead receiver is indistinguishable from a lossy link.
func (p *UDPPublisher) Publish(u event.Update) error {
	b, err := wire.EncodeUpdate(u)
	if err != nil {
		return err
	}
	for _, c := range p.conns {
		_, _ = c.Write(b) // best-effort: loss is part of the model
	}
	p.cUpdates.Inc()
	p.cDatagrams.Add(int64(len(p.conns)))
	return nil
}

// PublishBatch sends a run of in-order updates of one variable as batch
// datagrams, one syscall per endpoint per chunk instead of one per update.
// Runs too large for a single datagram are split so every chunk fits the
// receiver's buffer. Like Publish, per-endpoint send errors are ignored:
// losing a whole batch datagram is just a burstier draw from the same lossy
// link the paper assumes, and the receiver's per-update sequence check
// keeps later arrivals in order.
func (p *UDPPublisher) PublishBatch(v event.VarName, us []event.Update) error {
	// Fixed 16-byte records after the header make the chunk capacity exact.
	perChunk := (maxDatagram - (1 + 2 + len(string(v)) + 2)) / 16
	if perChunk < 1 {
		return fmt.Errorf("transport: variable name %q leaves no room for updates", v)
	}
	for len(us) > 0 {
		n := len(us)
		if n > perChunk {
			n = perChunk
		}
		b, err := wire.EncodeBatch(v, us[:n])
		if err != nil {
			return err
		}
		for _, c := range p.conns {
			_, _ = c.Write(b) // best-effort: loss is part of the model
		}
		p.cUpdates.Add(int64(n))
		p.cDatagrams.Add(int64(len(p.conns)))
		us = us[n:]
	}
	return nil
}

// Close releases the sockets.
func (p *UDPPublisher) Close() {
	for _, c := range p.conns {
		_ = c.Close()
	}
}

// UDPReceiverOptions configure a CE-side front link endpoint.
type UDPReceiverOptions struct {
	// ForcedLoss, if non-nil, drops delivered updates per the model — a
	// deterministic stand-in for real network loss. Seed drives it.
	ForcedLoss link.Model
	Seed       int64
	// Metrics, if non-nil, registers receiver counters: accepted updates,
	// out-of-order discards, forced-loss drops, and overruns (updates
	// dropped because the consumer fell behind). Names are prefixed with
	// MetricsPrefix, default "transport.recv".
	Metrics       *obs.Registry
	MetricsPrefix string
}

// UDPReceiver is the CE side of a front link: it decodes datagrams,
// enforces per-variable in-order delivery, optionally injects loss, and
// hands accepted updates to a channel.
type UDPReceiver struct {
	conn *net.UDPConn
	out  chan event.Update
	done chan struct{}

	mu        sync.Mutex
	lastSeq   map[event.VarName]int64
	discarded int64
	forced    int64

	// Optional instrumentation; nil counters no-op.
	cAccepted, cDiscarded, cForced, cOverrun *obs.Counter
}

// ListenUDP starts a receiver on addr (use "127.0.0.1:0" for an ephemeral
// test port).
func ListenUDP(addr string, opts UDPReceiverOptions) (*UDPReceiver, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	r := &UDPReceiver{
		conn:    conn,
		out:     make(chan event.Update, updateBuffer),
		done:    make(chan struct{}),
		lastSeq: make(map[event.VarName]int64),
	}
	if opts.Metrics != nil {
		prefix := opts.MetricsPrefix
		if prefix == "" {
			prefix = "transport.recv"
		}
		r.cAccepted = opts.Metrics.Counter(prefix + ".accepted")
		r.cDiscarded = opts.Metrics.Counter(prefix + ".discarded")
		r.cForced = opts.Metrics.Counter(prefix + ".forced_loss")
		r.cOverrun = opts.Metrics.Counter(prefix + ".overrun")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	go r.loop(opts.ForcedLoss, rng)
	return r, nil
}

// Addr returns the bound address (useful with ephemeral ports).
func (r *UDPReceiver) Addr() string { return r.conn.LocalAddr().String() }

// Updates returns the stream of accepted updates. The channel closes when
// the receiver is closed.
func (r *UDPReceiver) Updates() <-chan event.Update { return r.out }

// Stats reports discarded out-of-order datagrams and force-dropped updates.
func (r *UDPReceiver) Stats() (discarded, forced int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.discarded, r.forced
}

// Close stops the receiver; Updates is closed after the read loop exits.
func (r *UDPReceiver) Close() {
	_ = r.conn.Close()
	<-r.done
}

func (r *UDPReceiver) loop(forced link.Model, rng *rand.Rand) {
	defer close(r.done)
	defer close(r.out)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n > 0 && buf[0] == 'B' {
			// A batch datagram: every decodable update runs through the same
			// per-update acceptance as single datagrams. Corrupt items are
			// dropped individually (the decoder keeps framing), just another
			// form of link loss.
			batch, _, rest, err := wire.DecodeBatch(buf[:n])
			if err != nil || len(rest) != 0 {
				continue // corrupt datagram: drop, like any lossy link
			}
			for _, u := range batch.Updates {
				r.deliver(u, forced, rng)
			}
			continue
		}
		u, rest, err := wire.DecodeUpdate(buf[:n])
		if err != nil || len(rest) != 0 {
			continue // corrupt datagram: drop, like any lossy link
		}
		r.deliver(u, forced, rng)
	}
}

// deliver applies the in-order rule and forced loss to one received update
// and hands survivors to the output channel — identical acceptance whether
// the update arrived alone or inside a batch datagram.
func (r *UDPReceiver) deliver(u event.Update, forced link.Model, rng *rand.Rand) {
	r.mu.Lock()
	if last, ok := r.lastSeq[u.Var]; ok && u.SeqNo <= last {
		r.discarded++
		r.mu.Unlock()
		r.cDiscarded.Inc()
		return // out-of-order or duplicate: discard (Section 2.1)
	}
	if forced != nil && !forced.Deliver(u, rng) {
		// Forced loss still advances the order horizon: the link "lost"
		// this update and later arrivals remain in order.
		r.lastSeq[u.Var] = u.SeqNo
		r.forced++
		r.mu.Unlock()
		r.cForced.Inc()
		return
	}
	r.lastSeq[u.Var] = u.SeqNo
	r.mu.Unlock()

	select {
	case r.out <- u:
		r.cAccepted.Inc()
	default:
		// Receiver overrun: drop, indistinguishable from link loss.
		r.cOverrun.Inc()
	}
}

// TCPSender is the CE side of a back link: a reliable, ordered alert
// stream to the AD.
type TCPSender struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DialAD connects to an ADListener.
func DialAD(addr string) (*TCPSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial AD %q: %w", addr, err)
	}
	return &TCPSender{conn: conn}, nil
}

// Send transmits one alert as a length-prefixed frame. Unlike the front
// links, errors are returned: back links must not lose alerts silently.
// After Close, Send returns the wrapped runtime.ErrClosed sentinel —
// parity with the runtime's Emit-after-Close contract, instead of the raw
// net error a write on a closed socket would surface.
func (s *TCPSender) Send(a event.Alert) error {
	body, err := wire.EncodeAlert(a)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("transport: alert frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: Send: %w", runtime.ErrClosed)
	}
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send alert header: %w", err)
	}
	if _, err := s.conn.Write(body); err != nil {
		return fmt.Errorf("transport: send alert body: %w", err)
	}
	return nil
}

// Close closes the connection; it is idempotent, and later Sends report
// the runtime.ErrClosed sentinel.
func (s *TCPSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.conn.Close()
}

// ADListener is the AD side of the back links: it accepts any number of CE
// connections and merges their alert streams into one channel — the
// nondeterministic arrival interleaving M of the analysis model.
type ADListener struct {
	ln      net.Listener
	out     chan event.Alert
	digests chan wire.Digest
	wg      sync.WaitGroup
	done    chan struct{}
}

// ListenAD starts an AD endpoint on addr.
func ListenAD(addr string) (*ADListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen AD %q: %w", addr, err)
	}
	l := &ADListener{
		ln:      ln,
		out:     make(chan event.Alert, updateBuffer),
		digests: make(chan wire.Digest, updateBuffer),
		done:    make(chan struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address.
func (l *ADListener) Addr() string { return l.ln.Addr().String() }

// Alerts returns the merged alert stream. It closes after Close once all
// connection handlers exit.
func (l *ADListener) Alerts() <-chan event.Alert { return l.out }

// Close shuts the listener and all connections down and closes Alerts.
func (l *ADListener) Close() {
	close(l.done)
	_ = l.ln.Close()
	l.wg.Wait()
	close(l.out)
	close(l.digests)
}

func (l *ADListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go l.handle(conn)
	}
}

func (l *ADListener) handle(conn net.Conn) {
	defer l.wg.Done()
	defer func() { _ = conn.Close() }()
	go func() {
		// Unblock reads when Close is called.
		<-l.done
		_ = conn.Close()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			return // corrupt stream: a real TCP link would reset here
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		// Frames are self-describing: dispatch on the wire tag byte.
		switch body[0] {
		case 'A':
			a, rest, err := wire.DecodeAlert(body)
			if err != nil || len(rest) != 0 {
				return
			}
			select {
			case l.out <- a:
			case <-l.done:
				return
			}
		case 'D':
			d, rest, err := wire.DecodeDigest(body)
			if err != nil || len(rest) != 0 {
				return
			}
			select {
			case l.digests <- d:
			case <-l.done:
				return
			}
		default:
			return // unknown frame type: treat as a corrupt stream
		}
	}
}
