// Package transport carries updates and alerts over real sockets,
// realizing the link assumptions of Section 2.1 with the protocols the
// paper itself suggests:
//
//   - Front links (DM → CE) use UDP datagrams: cheap for a low-capability
//     sensor, naturally lossy, one update per packet. The receiver enforces
//     in-order delivery by discarding any update whose sequence number does
//     not exceed the last accepted one for its variable — the
//     sequence-number mechanism the paper describes. An optional forced
//     loss model injects deterministic drops for testing and demos, since
//     loopback UDP rarely loses packets on its own.
//
//   - Back links (CE → AD) use TCP with length-prefixed frames: reliable
//     and ordered, matching the paper's argument that alert traffic is low
//     and too valuable to lose.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
	"condmon/internal/runtime"
	"condmon/internal/seq"
	"condmon/internal/wire"

	"math/rand"
)

// maxFrame bounds a TCP alert frame; anything larger indicates corruption.
const maxFrame = 1 << 20

// maxDatagram is the receiver's read-buffer size; PublishBatch splits runs
// so no batch datagram exceeds it. UDPPublisherOptions.MaxDatagram may
// lower the split point but never raise it.
const maxDatagram = 64 * 1024

// minDatagram is the smallest MaxDatagram a publisher accepts: enough for
// the batch header, a long variable name, a trace trailer, and at least one
// record.
const minDatagram = 512

// maxSenders bounds the sender-lane count: beyond a few hundred source
// sockets per endpoint the file-descriptor cost dwarfs any striping gain,
// and an absurd request is almost certainly a sign error.
const maxSenders = 256

// DefaultReorderSkew is the gap-release bound used when ReorderDepth is
// set without an explicit ReorderSkew: long enough for cross-socket
// scheduling skew on a loaded host, short enough that a genuinely lost
// update stalls its variable's release for only a few milliseconds.
const DefaultReorderSkew = 5 * time.Millisecond

// updateBuffer sizes receiver channels; UDP senders never block on the
// receiver, so a full buffer simply looks like link loss — faithful to the
// medium.
const updateBuffer = 1024

// hashVarName derives a stable shard index component from a variable name
// (FNV-1a, allocation-free). Publishers use it to pin each variable to one
// sender socket; with SO_REUSEPORT receive groups the kernel hashes the
// resulting fixed 4-tuple, so every datagram of a variable lands on the
// same receive socket and per-variable in-order acceptance needs no
// cross-socket coordination.
func hashVarName(v event.VarName) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(v))
	return h.Sum64()
}

// UDPPublisherOptions configure the DM side of a front link.
type UDPPublisherOptions struct {
	// Senders is the number of source sockets per CE endpoint. Values
	// below 1 (zero, negative) mean 1; values above 256 are clamped to
	// 256. In the default pinned mode variables are sharded across senders
	// by name hash, so a variable's datagrams always leave on the same
	// socket — the 4-tuple stability that keeps an SO_REUSEPORT receive
	// group's per-variable streams on one receive socket. Different
	// senders may publish concurrently; publishes of variables sharing a
	// sender serialize on its lock.
	Senders int
	// MaxDatagram bounds the size of a batch datagram. Values outside
	// [512, 64KB] are clamped to that range; zero means 64KB — the
	// receiver's read-buffer size, which no setting may exceed.
	MaxDatagram int
	// Stripe un-pins variables from their hash lane: each datagram —
	// every Publish, every PublishBatch chunk — takes the next sender
	// lane round-robin, so one hot variable's stream spreads across all
	// lanes, all 4-tuples, and therefore all sockets of an SO_REUSEPORT
	// receive group. Striped datagrams carry a path trailer (lane id +
	// per-lane datagram seqno) so receivers can drop duplicated frames
	// cheaply. The receiving CE MUST run with ReorderDepth > 0: striping
	// trades the pinned mode's free in-order guarantee for multipath
	// parallelism, and without a reorder buffer the cross-socket races
	// are discarded as out-of-order arrivals. Receivers that predate the
	// path trailer reject striped frames as trailing garbage, which is
	// why striping is opt-in per publisher.
	Stripe bool
}

// UDPPublisher is the DM side of a front link: it multicasts each update to
// a fixed set of CE endpoints as independent datagrams (one lossy link per
// recipient, as in Figure 1(b)).
type UDPPublisher struct {
	// senders each own one socket per endpoint plus a pooled encode buffer;
	// a variable's traffic always flows through senders[hash(var)%n].
	senders []*udpSender
	// payload is the per-chunk byte budget PublishBatch splits runs
	// against: MaxDatagram minus the fixed batch-frame overhead and a
	// reserved trace trailer, hoisted to construction so the hot path only
	// subtracts the variable-name length.
	payload int
	maxDg   int

	// stripe round-robins datagrams across lanes instead of pinning by
	// name hash; rr is the shared lane cursor.
	stripe bool
	rr     atomic.Uint64

	// Optional instrumentation; nil counters no-op.
	cDatagrams *obs.Counter // datagrams written (one per endpoint per send)
	cUpdates   *obs.Counter // updates published (before fan-out)

	// Optional live tracing (SetTrace); annotate gates the whole path so
	// the tracing-off cost is one bool check.
	tr        *obs.Tracer
	traceName string
	annotate  bool
}

// udpSender is one source-socket lane of a publisher: its connected
// sockets (one per endpoint, all sharing this lane's source port per
// endpoint) and the encode buffer its datagrams are built in. Striping
// publishers also stamp each lane's datagrams with (pathID, dgSeq) — the
// path trailer that lets receivers spot duplicated frames.
type udpSender struct {
	mu     sync.Mutex
	conns  []*net.UDPConn
	buf    []byte
	pathID uint32 // random lane instance id (stripe mode)
	dgSeq  uint64 // this lane's datagram counter, from 1 (under mu)
}

// SetMetrics registers publisher counters in reg under prefix:
// <prefix>.datagrams (one per endpoint per send, so batching shows up as
// datagrams ≪ updates × endpoints) and <prefix>.updates. Call before
// publishing; a nil registry leaves metrics off.
func (p *UDPPublisher) SetMetrics(reg *obs.Registry, prefix string) {
	p.cDatagrams = reg.Counter(prefix + ".datagrams")
	p.cUpdates = reg.Counter(prefix + ".updates")
}

// SetTrace enables live tracing on the publisher: every published update
// records a StageEmit span in t under the given replica name (default
// "DM"), and every outgoing datagram gains a wire trace trailer carrying
// the emit timestamp so downstream daemons can stitch their spans to this
// origin. Receivers that predate the trailer reject annotated datagrams as
// trailing garbage, which is why annotation only happens on this opt-in.
// A nil tracer leaves tracing off.
func (p *UDPPublisher) SetTrace(t *obs.Tracer, replica string) {
	if t == nil {
		return
	}
	if replica == "" {
		replica = "DM"
	}
	p.tr, p.traceName, p.annotate = t, replica, true
}

// NewUDPPublisher connects to the given CE addresses with default options:
// one sender socket per endpoint, 64KB batch datagrams.
func NewUDPPublisher(addrs ...string) (*UDPPublisher, error) {
	return NewUDPPublisherOpts(UDPPublisherOptions{}, addrs...)
}

// NewUDPPublisherOpts connects to the given CE addresses with explicit
// sender-socket and datagram-size options.
func NewUDPPublisherOpts(opts UDPPublisherOptions, addrs ...string) (*UDPPublisher, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: publisher needs at least one address")
	}
	switch {
	case opts.Senders < 1:
		opts.Senders = 1
	case opts.Senders > maxSenders:
		opts.Senders = maxSenders
	}
	maxDg := opts.MaxDatagram
	switch {
	case maxDg <= 0:
		maxDg = maxDatagram
	case maxDg < minDatagram:
		maxDg = minDatagram
	case maxDg > maxDatagram:
		maxDg = maxDatagram
	}
	p := &UDPPublisher{
		senders: make([]*udpSender, 0, opts.Senders),
		maxDg:   maxDg,
		stripe:  opts.Stripe,
		// Fixed batch-frame overhead (tag, name length, item count) plus a
		// reserved trace trailer, whether or not tracing is on: computing
		// the budget once here is what keeps PublishBatch's split point out
		// of the per-call path.
		payload: maxDg - (1 + 2 + 2) - wire.TraceLen,
	}
	if opts.Stripe {
		p.payload -= wire.PathLen // every striped datagram carries one
	}
	dsts := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		dst, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return nil, fmt.Errorf("transport: resolve %q: %w", a, err)
		}
		dsts = append(dsts, dst)
	}
	for i := 0; i < opts.Senders; i++ {
		s := &udpSender{
			conns:  make([]*net.UDPConn, 0, len(dsts)),
			pathID: rand.Uint32(),
		}
		for _, dst := range dsts {
			conn, err := net.DialUDP("udp", nil, dst)
			if err != nil {
				p.Close()
				return nil, fmt.Errorf("transport: dial %q: %w", dst, err)
			}
			s.conns = append(s.conns, conn)
		}
		p.senders = append(p.senders, s)
	}
	return p, nil
}

// Senders returns the number of sender-socket lanes.
func (p *UDPPublisher) Senders() int { return len(p.senders) }

// MaxDatagram returns the effective (clamped) batch datagram bound.
func (p *UDPPublisher) MaxDatagram() int { return p.maxDg }

// senderFor returns the pinned sender lane that carries variable v.
func (p *UDPPublisher) senderFor(v event.VarName) *udpSender {
	if len(p.senders) == 1 {
		return p.senders[0]
	}
	return p.senders[hashVarName(v)%uint64(len(p.senders))]
}

// lane picks the sender lane for one outgoing datagram of variable v:
// the hash-pinned lane normally, the next lane round-robin in stripe
// mode — the per-datagram rotation that spreads one variable's stream
// across every 4-tuple.
func (p *UDPPublisher) lane(v event.VarName) *udpSender {
	if p.stripe && len(p.senders) > 1 {
		return p.senders[p.rr.Add(1)%uint64(len(p.senders))]
	}
	return p.senderFor(v)
}

// Publish sends the update to every CE endpoint. Send errors on individual
// endpoints are ignored — a front link is allowed to lose updates, and a
// dead receiver is indistinguishable from a lossy link.
func (p *UDPPublisher) Publish(u event.Update) error {
	s := p.lane(u.Var)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := wire.AppendUpdate(s.buf[:0], u)
	if err != nil {
		return err
	}
	if p.stripe {
		s.dgSeq++
		b = wire.AppendPath(b, wire.Path{ID: s.pathID, Seq: s.dgSeq})
	}
	if p.annotate {
		now := time.Now().UnixNano()
		b = wire.AppendTrace(b, wire.Trace{Flags: wire.TraceFlagSampled, Origin: now})
		p.tr.Record(obs.Span{
			Var: string(u.Var), Seq: u.SeqNo,
			Stage: obs.StageEmit, Replica: p.traceName, Disp: obs.DispEmitted,
			Time: now, Origin: now,
		})
	}
	s.buf = b
	for _, c := range s.conns {
		_, _ = c.Write(b) // best-effort: loss is part of the model
	}
	p.cUpdates.Inc()
	p.cDatagrams.Add(int64(len(s.conns)))
	return nil
}

// PublishBatch sends a run of in-order updates of one variable as batch
// datagrams, one syscall per endpoint per chunk instead of one per update.
// Runs too large for a single datagram are split so every chunk fits the
// publisher's MaxDatagram bound (hence the receiver's buffer); the split
// point is derived from a budget computed at construction, and chunks are
// encoded into the sender lane's pooled buffer, so a steady-state call
// allocates nothing. Like Publish, per-endpoint send errors are ignored:
// losing a whole batch datagram is just a burstier draw from the same lossy
// link the paper assumes, and the receiver's per-update sequence check
// keeps later arrivals in order.
func (p *UDPPublisher) PublishBatch(v event.VarName, us []event.Update) error {
	perChunk := (p.payload - len(v)) / 16
	if perChunk < 1 {
		return fmt.Errorf("transport: variable name %q leaves no room for updates", v)
	}
	if !p.stripe {
		// Pinned fast path: the whole run flows through one lane under one
		// lock acquisition.
		s := p.senderFor(v)
		s.mu.Lock()
		defer s.mu.Unlock()
		for len(us) > 0 {
			n := len(us)
			if n > perChunk {
				n = perChunk
			}
			if err := p.sendChunkLocked(s, v, us[:n]); err != nil {
				return err
			}
			us = us[n:]
		}
		return nil
	}
	// Stripe mode: every chunk datagram takes the next lane, so a long run
	// of one hot variable fans out across all lanes (and the receive
	// group's sockets). Locks are taken per chunk — concurrent publishers
	// interleave at datagram granularity, which the receiver's reorder
	// buffer absorbs.
	for len(us) > 0 {
		n := len(us)
		if n > perChunk {
			n = perChunk
		}
		s := p.lane(v)
		s.mu.Lock()
		err := p.sendChunkLocked(s, v, us[:n])
		s.mu.Unlock()
		if err != nil {
			return err
		}
		us = us[n:]
	}
	return nil
}

// sendChunkLocked encodes one batch chunk into s's pooled buffer, appends
// the optional path and trace trailers, and writes it to every endpoint.
// Caller holds s.mu.
func (p *UDPPublisher) sendChunkLocked(s *udpSender, v event.VarName, us []event.Update) error {
	b, err := wire.AppendBatch(s.buf[:0], v, us)
	if err != nil {
		return err
	}
	if p.stripe {
		s.dgSeq++
		b = wire.AppendPath(b, wire.Path{ID: s.pathID, Seq: s.dgSeq})
	}
	if p.annotate {
		// One trailer per chunk: the whole run shares one emit instant.
		now := time.Now().UnixNano()
		b = wire.AppendTrace(b, wire.Trace{Flags: wire.TraceFlagSampled, Origin: now})
		for _, u := range us {
			p.tr.Record(obs.Span{
				Var: string(u.Var), Seq: u.SeqNo,
				Stage: obs.StageEmit, Replica: p.traceName, Disp: obs.DispEmitted,
				Time: now, Origin: now,
			})
		}
	}
	s.buf = b
	for _, c := range s.conns {
		_, _ = c.Write(b) // best-effort: loss is part of the model
	}
	p.cUpdates.Add(int64(len(us)))
	p.cDatagrams.Add(int64(len(s.conns)))
	return nil
}

// Close releases the sockets.
func (p *UDPPublisher) Close() {
	for _, s := range p.senders {
		for _, c := range s.conns {
			_ = c.Close()
		}
	}
}

// UDPReceiverOptions configure a CE-side front link endpoint.
type UDPReceiverOptions struct {
	// ForcedLoss, if non-nil, drops delivered updates per the model — a
	// deterministic stand-in for real network loss. The model instance is
	// shared by every variable (guarded by one lock); loss randomness is
	// drawn from a per-variable generator seeded from Seed and the variable
	// name, so a stateless model's schedule for a variable depends only on
	// that variable's arrival sequence — identical however datagrams
	// interleave across sockets.
	ForcedLoss link.Model
	Seed       int64
	// LossFor, if non-nil, supersedes ForcedLoss with a fresh model
	// instance per variable — the per-variable loss lanes that make even
	// stateful models (e.g. link.Burst) deterministic per variable
	// regardless of socket count. Returning nil means lossless for that
	// variable.
	LossFor func(v event.VarName) link.Model
	// Dispatch, if non-nil, switches the receiver into direct-dispatch
	// mode: each accepted in-order run is handed to this callback
	// synchronously on the owning socket's read goroutine, and the Updates
	// channel stays empty. The run aliases a pooled decode buffer — consume
	// or copy before returning. Dispatch may be called concurrently for
	// different variables, but one variable's runs are always handed over
	// serially and in seqno order: in pinned mode because sender lanes pin
	// each variable's 4-tuple to one receive socket, and with ReorderDepth
	// set because the reorder ring releases under a per-variable lock held
	// across the hand-off. Wire it to MultiSystem.InjectBatch or
	// Engine.InjectBatch to feed shard lanes without the channel hop.
	Dispatch func(v event.VarName, us []event.Update)
	// ReorderDepth, when positive, inserts the bounded reorder/dedup
	// acceptance layer (seq.Reorder) between the sockets and delivery: a
	// per-variable ring of this many slots buffers out-of-order arrivals
	// and releases them in seqno order, which is what lets one variable's
	// stream span sender lanes and receive sockets (the publisher's Stripe
	// mode). Duplicates drop, and a missing seqno blocks its variable for
	// at most ReorderSkew before being declared lost — the paper's
	// front-link loss semantics, so every downstream property is
	// preserved. The ring assumes the system-wide convention that a
	// variable's updates are numbered from 1 (an update with seqno ≤ 0 is
	// dropped as a duplicate). Zero keeps the zero-buffer pinned fast
	// path, which requires each variable's stream to stay on one socket.
	ReorderDepth int
	// ReorderSkew bounds how long a gap (missing seqno) may block a
	// variable's release when ReorderDepth > 0; on expiry the gap is
	// counted as <prefix>.reorder.gap_loss and the buffered successors
	// release. Zero or negative means DefaultReorderSkew.
	ReorderSkew time.Duration
	// Metrics, if non-nil, registers receiver counters: accepted updates,
	// out-of-order discards, forced-loss drops, and overruns (updates
	// dropped because the consumer fell behind). Names are prefixed with
	// MetricsPrefix, default "transport.recv". Socket groups additionally
	// register per-socket <prefix>.<i>.datagrams and <prefix>.<i>.accepted
	// counters showing how the kernel spreads load across the group.
	Metrics       *obs.Registry
	MetricsPrefix string
	// Trace, if non-nil, records a StageLink span for every datagram-borne
	// update (delivered, discarded, lost) under the TraceName replica label
	// (default "CE"), carrying the origin timestamp from annotated frames.
	Trace     *obs.Tracer
	TraceName string
	// Health, if non-nil, registers this front link under TraceName (or
	// "front") and touches it on every datagram-borne update, so /healthz
	// reports the link stale after StaleAfter without activity
	// (obs.DefaultStaleAfter when ≤ 0).
	Health     *obs.Health
	StaleAfter time.Duration
}

// varState is one variable's acceptance lane: the in-order horizon and
// origin timestamp as plain atomics (readers never stall the read loops),
// plus the variable's forced-loss state. States live in a copy-on-write
// map — the per-variable striping that replaced the receiver-wide mutex.
type varState struct {
	name       event.VarName
	lastSeq    atomic.Int64 // highest seqno seen in order; -1 before the first
	lastOrigin atomic.Int64

	// Forced-loss lane; model nil means lossless. lossMu is per-variable
	// under LossFor and shared receiver-wide under legacy ForcedLoss
	// (whose model instance is itself shared).
	lossMu *sync.Mutex
	model  link.Model
	rng    *rand.Rand

	// Reorder lane, nil in pinned mode. ringMu serializes the ring AND
	// the release→deliver hand-off: holding it across deliverRun is what
	// keeps one variable's releases in seqno order even when its datagrams
	// race up through several sockets. release is the pooled output slice
	// the ring drains into; gapSeen is the last GapLost reading already
	// forwarded to the gap-loss counter.
	ringMu  sync.Mutex
	ring    *seq.Reorder[event.Update]
	release []event.Update
	gapSeen int64
}

// sockStats is one socket's load instrumentation; nil counters no-op.
type sockStats struct {
	datagrams *obs.Counter
	accepted  *obs.Counter
	reordered *obs.Counter // arrivals below the variable's highest seqno
	dup       *obs.Counter // duplicate updates dropped on this socket
}

// UDPReceiver is the CE side of a front link: one or more UDP sockets
// (SO_REUSEPORT groups on Linux) whose read goroutines decode datagrams
// into pooled buffers, enforce per-variable in-order delivery through
// lock-free acceptance lanes, optionally inject loss, and hand accepted
// updates to a channel or a direct-dispatch callback.
type UDPReceiver struct {
	conns []*net.UDPConn
	socks []sockStats
	out   chan event.Update
	// evidence carries decoded DM evidence frames ('G') to whoever asked
	// for them via Evidence(); unconsumed frames drop (they are advisory
	// digests, re-sent at the publisher's cadence).
	evidence chan wire.Evidence
	wg       sync.WaitGroup
	once     sync.Once

	// vars is the copy-on-write variable-state index: read lock-free on
	// every datagram, copied under varsMu when a new variable appears.
	vars   atomic.Pointer[map[string]*varState]
	varsMu sync.Mutex

	// Reorder layer (rDepth > 0): per-variable rings hang off varState;
	// the flusher goroutine (fwg, stopped via done) releases gaps whose
	// skew bound expired even when no more traffic arrives.
	rDepth int
	rSkew  time.Duration
	done   chan struct{}
	fwg    sync.WaitGroup

	// paths is the copy-on-write per-lane frame-dedup index: last datagram
	// seqno seen per path trailer id, so an exact replay of a lane's most
	// recent frame drops in O(1) before any per-update work.
	paths   atomic.Pointer[map[uint32]*pathSeq]
	pathsMu sync.Mutex

	discarded atomic.Int64
	forced    atomic.Int64

	dispatch     func(v event.VarName, us []event.Update)
	lossFor      func(v event.VarName) link.Model
	lossShared   link.Model
	sharedLossMu sync.Mutex
	seed         int64

	// Optional instrumentation; nil counters, tracer, and link health
	// no-op.
	cAccepted, cDiscarded, cForced, cOverrun *obs.Counter
	cReleased, cRDup, cGapLoss, cDupFrames   *obs.Counter
	cEvidence                                *obs.Counter
	gRDepth                                  *obs.Gauge
	tr                                       *obs.Tracer
	trName                                   string
	lh                                       *obs.LinkHealth
}

// pathSeq tracks one sender lane's forward-only datagram-seqno horizon.
type pathSeq struct {
	last atomic.Uint64
}

// ListenUDP starts a single-socket receiver on addr (use "127.0.0.1:0" for
// an ephemeral test port).
func ListenUDP(addr string, opts UDPReceiverOptions) (*UDPReceiver, error) {
	return ListenUDPGroup(addr, 1, opts)
}

// ListenUDPGroup starts a receiver with sockets SO_REUSEPORT sockets bound
// to one port, each drained by its own read goroutine — the parallel
// ingest plane for multi-queue NICs and many-sender fleets. The kernel
// hashes each datagram's 4-tuple to one socket of the group, so a sender
// that keeps a variable on one source socket (UDPPublisherOptions.Senders)
// gives that variable a single receive goroutine and strictly in-order
// acceptance with no cross-socket coordination. On platforms without
// SO_REUSEPORT support (anything but Linux) the group transparently falls
// back to a single socket; Sockets reports the real width.
func ListenUDPGroup(addr string, sockets int, opts UDPReceiverOptions) (*UDPReceiver, error) {
	if sockets < 1 {
		sockets = 1
	}
	if !reusePortAvailable {
		sockets = 1 // documented fallback: one socket, same semantics
	}
	conns := make([]*net.UDPConn, 0, sockets)
	fail := func(err error) (*UDPReceiver, error) {
		for _, c := range conns {
			_ = c.Close()
		}
		return nil, err
	}
	if sockets == 1 {
		laddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
		}
		conns = append(conns, conn)
	} else {
		// Every socket of the group — including the first — must opt into
		// SO_REUSEPORT before bind; the first bind fixes the port the rest
		// join.
		first, err := listenUDPReusePort(addr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
		}
		conns = append(conns, first)
		bound := first.LocalAddr().String()
		for i := 1; i < sockets; i++ {
			c, err := listenUDPReusePort(bound)
			if err != nil {
				return fail(fmt.Errorf("transport: listen group socket %d on %q: %w", i, bound, err))
			}
			conns = append(conns, c)
		}
	}
	for _, c := range conns {
		// Best-effort: a deeper kernel buffer absorbs sender bursts while a
		// read goroutine is mid-decode.
		_ = c.SetReadBuffer(1 << 20)
	}
	r := &UDPReceiver{
		conns:    conns,
		socks:    make([]sockStats, len(conns)),
		out:      make(chan event.Update, updateBuffer),
		evidence: make(chan wire.Evidence, evidenceBuffer),
		dispatch: opts.Dispatch,
		lossFor:  opts.LossFor,
		seed:     opts.Seed,
		done:     make(chan struct{}),
	}
	if opts.ReorderDepth > 0 {
		r.rDepth = opts.ReorderDepth
		r.rSkew = opts.ReorderSkew
		if r.rSkew <= 0 {
			r.rSkew = DefaultReorderSkew
		}
	}
	if opts.LossFor == nil {
		r.lossShared = opts.ForcedLoss
	}
	m := make(map[string]*varState)
	r.vars.Store(&m)
	pm := make(map[uint32]*pathSeq)
	r.paths.Store(&pm)
	if opts.Trace != nil {
		r.tr = opts.Trace
		r.trName = opts.TraceName
		if r.trName == "" {
			r.trName = "CE"
		}
	}
	if opts.Health != nil {
		name := opts.TraceName
		if name == "" {
			name = "front"
		}
		r.lh = opts.Health.Link("front:"+name, opts.StaleAfter)
	}
	if opts.Metrics != nil {
		prefix := opts.MetricsPrefix
		if prefix == "" {
			prefix = "transport.recv"
		}
		r.cAccepted = opts.Metrics.Counter(prefix + ".accepted")
		r.cDiscarded = opts.Metrics.Counter(prefix + ".discarded")
		r.cForced = opts.Metrics.Counter(prefix + ".forced_loss")
		r.cOverrun = opts.Metrics.Counter(prefix + ".overrun")
		r.cDupFrames = opts.Metrics.Counter(prefix + ".dup_frames")
		r.cEvidence = opts.Metrics.Counter(prefix + ".evidence")
		if r.rDepth > 0 {
			r.cReleased = opts.Metrics.Counter(prefix + ".reorder.released")
			r.cRDup = opts.Metrics.Counter(prefix + ".reorder.dropped_dup")
			r.cGapLoss = opts.Metrics.Counter(prefix + ".reorder.gap_loss")
			r.gRDepth = opts.Metrics.Gauge(prefix + ".reorder.depth")
		}
		for i := range r.socks {
			r.socks[i] = sockStats{
				datagrams: opts.Metrics.Counter(fmt.Sprintf("%s.%d.datagrams", prefix, i)),
				accepted:  opts.Metrics.Counter(fmt.Sprintf("%s.%d.accepted", prefix, i)),
				reordered: opts.Metrics.Counter(fmt.Sprintf("%s.%d.reordered", prefix, i)),
				dup:       opts.Metrics.Counter(fmt.Sprintf("%s.%d.dup", prefix, i)),
			}
		}
	}
	for i := range r.conns {
		r.wg.Add(1)
		go r.readLoop(i)
	}
	if r.rDepth > 0 {
		r.fwg.Add(1)
		go r.flushLoop()
	}
	return r, nil
}

// Addr returns the bound address (useful with ephemeral ports).
func (r *UDPReceiver) Addr() string { return r.conns[0].LocalAddr().String() }

// Sockets returns the width of the receive group (1 after the
// non-SO_REUSEPORT fallback).
func (r *UDPReceiver) Sockets() int { return len(r.conns) }

// Updates returns the stream of accepted updates. The channel closes when
// the receiver is closed. In dispatch mode it stays empty.
func (r *UDPReceiver) Updates() <-chan event.Update { return r.out }

// Stats reports discarded out-of-order datagrams and force-dropped
// updates. It reads two atomics — safe to poll from any goroutine without
// stalling the read loops.
func (r *UDPReceiver) Stats() (discarded, forced int64) {
	return r.discarded.Load(), r.forced.Load()
}

// Close stops the receiver; Updates is closed after every read loop exits.
// With a reorder layer the rings are drained last — buffered updates
// release in seqno order (interior gaps declared lost), so a closing
// receiver never swallows traffic it already held.
func (r *UDPReceiver) Close() {
	r.once.Do(func() {
		close(r.done)
		r.fwg.Wait()
		for _, c := range r.conns {
			_ = c.Close()
		}
		r.wg.Wait()
		if r.rDepth > 0 {
			r.flushAllRings()
		}
		close(r.out)
		close(r.evidence)
	})
}

// state returns the acceptance lane for the encoded variable name,
// creating it on first sight. The fast path is one lock-free map read with
// no string conversion; the slow path copies the map under varsMu.
func (r *UDPReceiver) state(name []byte) *varState {
	if st, ok := (*r.vars.Load())[string(name)]; ok {
		return st
	}
	return r.addVar(string(name))
}

// intern resolves an encoded variable name for the wire decoders, sharing
// the acceptance-lane index as the intern table.
func (r *UDPReceiver) intern(name []byte) event.VarName {
	return r.state(name).name
}

// lookup fetches the lane for an already-interned variable.
func (r *UDPReceiver) lookup(v event.VarName) *varState {
	return (*r.vars.Load())[string(v)]
}

// addVar installs a new variable's acceptance lane (copy-on-write).
func (r *UDPReceiver) addVar(name string) *varState {
	r.varsMu.Lock()
	defer r.varsMu.Unlock()
	old := *r.vars.Load()
	if st, ok := old[name]; ok {
		return st // lost the race to another socket
	}
	st := &varState{name: event.VarName(name)}
	st.lastSeq.Store(-1)
	if r.rDepth > 0 {
		// DMs number every variable's updates from 1 (dm.seq++ from the
		// zero value), so the ring's release horizon anchors at 0: seqno 1
		// releases immediately and the window never waits on a phantom
		// seqno 0. Releases are strictly ascending and therefore always
		// pass the acceptance CAS below (whose own horizon starts at -1).
		st.ring = seq.NewReorder[event.Update](0, r.rDepth, int64(r.rSkew))
		st.release = make([]event.Update, 0, 64)
	}
	var model link.Model
	if r.lossFor != nil {
		model = r.lossFor(st.name)
	} else {
		model = r.lossShared
	}
	if _, lossless := model.(link.None); model != nil && !lossless {
		st.model = model
		// Per-variable randomness: a variable's draw sequence depends only
		// on its own arrival order, so loss schedules are identical for any
		// socket count — what the ingest-equivalence suite pins.
		st.rng = rand.New(rand.NewSource(r.seed ^ int64(hashVarName(st.name))))
		if r.lossFor != nil {
			st.lossMu = new(sync.Mutex)
		} else {
			st.lossMu = &r.sharedLossMu // shared model ⇒ shared lock
		}
	}
	next := make(map[string]*varState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = st
	r.vars.Store(&next)
	return st
}

// readLoop drains one socket: decode into this goroutine's pooled buffers,
// then run the shared acceptance path.
func (r *UDPReceiver) readLoop(idx int) {
	defer r.wg.Done()
	conn := r.conns[idx]
	buf := make([]byte, maxDatagram)
	scratch := make([]event.Update, 0, 64)
	for {
		// ReadFromUDPAddrPort keeps the read loop allocation-free: the
		// classic ReadFromUDP materializes a *net.UDPAddr per datagram.
		n, _, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed
		}
		scratch = r.handleDatagram(idx, buf[:n], scratch)
	}
}

// handleDatagram decodes one datagram into scratch and delivers the run,
// returning the (possibly grown) scratch for reuse. Corrupt datagrams are
// dropped whole, corrupt batch items individually — both just another form
// of link loss.
func (r *UDPReceiver) handleDatagram(idx int, b []byte, scratch []event.Update) []event.Update {
	r.socks[idx].datagrams.Inc()
	if len(b) > 0 && b[0] == 'B' {
		// A batch datagram: every decodable update runs through the same
		// per-update acceptance as single datagrams.
		batch, _, rest, err := wire.DecodeBatchInto(b, scratch[:0], r.intern)
		if err != nil {
			return scratch
		}
		if len(batch.Updates) > 0 {
			scratch = batch.Updates // keep any growth
		}
		pth, pok, rest, perr := wire.TakePath(rest)
		if perr != nil {
			return scratch
		}
		t, _, rest, terr := wire.TakeTrace(rest)
		if terr != nil || len(rest) != 0 {
			return scratch
		}
		if pok && r.dupFrame(pth) {
			r.cDupFrames.Inc()
			return scratch
		}
		if len(batch.Updates) > 0 {
			r.acceptRun(idx, r.lookup(batch.Var), batch.Updates, t.Origin)
		}
		return scratch
	}
	if len(b) > 0 && b[0] == 'G' {
		// A DM evidence frame: CRC-framed prefix digest for the audit path.
		// Decoders that predate the tag drop these whole, which is why
		// evidence publishing is opt-in per daemon.
		ev, rest, err := wire.DecodeEvidence(b)
		if err != nil || len(rest) != 0 {
			return scratch
		}
		r.lh.Touch() // evidence is link activity too
		r.cEvidence.Inc()
		select {
		case r.evidence <- ev:
		default: // advisory digests: the next frame re-covers this one
		}
		return scratch
	}
	u, rest, err := wire.DecodeUpdateInto(b, r.intern)
	if err != nil {
		return scratch
	}
	pth, pok, rest, perr := wire.TakePath(rest)
	if perr != nil {
		return scratch
	}
	t, _, rest, terr := wire.TakeTrace(rest)
	if terr != nil || len(rest) != 0 {
		return scratch
	}
	if pok && r.dupFrame(pth) {
		r.cDupFrames.Inc()
		return scratch
	}
	run := append(scratch[:0], u)
	r.acceptRun(idx, r.lookup(u.Var), run, t.Origin)
	return run[:0]
}

// dupFrame reports whether this frame is an exact replay of its lane's
// most recent datagram — the O(1) duplication-safe framing check striped
// publishers enable with the path trailer. A lane's datagram seqno only
// moves forward; an equal reading is a replay, a lower one is frame
// reordering and proceeds to per-update acceptance (which catches any
// duplicate updates inside it).
func (r *UDPReceiver) dupFrame(p wire.Path) bool {
	ps, ok := (*r.paths.Load())[p.ID]
	if !ok {
		ps = r.addPath(p.ID)
	}
	for {
		last := ps.last.Load()
		switch {
		case p.Seq == last:
			return true
		case p.Seq < last:
			return false
		}
		if ps.last.CompareAndSwap(last, p.Seq) {
			return false
		}
	}
}

// addPath installs a new lane's frame-dedup horizon (copy-on-write).
func (r *UDPReceiver) addPath(id uint32) *pathSeq {
	r.pathsMu.Lock()
	defer r.pathsMu.Unlock()
	old := *r.paths.Load()
	if ps, ok := old[id]; ok {
		return ps // lost the race to another socket
	}
	ps := new(pathSeq)
	next := make(map[uint32]*pathSeq, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = ps
	r.paths.Store(&next)
	return ps
}

// acceptRun routes one decoded run of a variable into the acceptance
// machinery: through the reorder ring when the layer is on, straight to
// in-order delivery in pinned mode.
func (r *UDPReceiver) acceptRun(idx int, st *varState, us []event.Update, origin int64) {
	if st.ring != nil {
		r.reorderRun(idx, st, us, origin)
		return
	}
	r.deliverRun(idx, st, us, origin)
}

// acceptance verdicts of one update against its variable's lane.
const (
	acceptOK      = iota
	acceptDiscard // out-of-order: seqno below the horizon
	acceptDup     // exact replay: seqno equals the horizon
	acceptForced
)

// accept applies the in-order rule and forced loss to one update. The
// horizon is claimed by compare-and-swap: with sender lanes pinning each
// variable to one socket the loop never spins, but acceptance stays
// correct even if datagrams of one variable reach two sockets.
func (st *varState) accept(u event.Update) int {
	for {
		last := st.lastSeq.Load()
		if u.SeqNo == last {
			return acceptDup // replayed datagram (Section 2.1 discard rule)
		}
		if u.SeqNo < last {
			return acceptDiscard // out-of-order (Section 2.1)
		}
		if st.lastSeq.CompareAndSwap(last, u.SeqNo) {
			break
		}
	}
	if st.model != nil {
		// Forced loss still advances the order horizon (claimed above): the
		// link "lost" this update and later arrivals remain in order.
		st.lossMu.Lock()
		ok := st.model.Deliver(u, st.rng)
		st.lossMu.Unlock()
		if !ok {
			return acceptForced
		}
	}
	return acceptOK
}

// deliverRun runs one decoded in-order run (all of one variable) through
// acceptance, compacting survivors in place, then hands them to the
// dispatch callback or the output channel. origin is the annotated frame's
// emit timestamp (zero when untagged); it labels the link spans and is
// remembered per variable for LastOrigin. idx is the receiving socket, or
// -1 when the run comes from the reorder flusher rather than a read loop.
func (r *UDPReceiver) deliverRun(idx int, st *varState, us []event.Update, origin int64) {
	r.lh.Touch() // any datagram-borne update is link activity
	kept := us[:0]
	for _, u := range us {
		switch st.accept(u) {
		case acceptDiscard:
			r.discarded.Add(1)
			r.cDiscarded.Inc()
			if idx >= 0 {
				r.socks[idx].reordered.Inc()
			}
			r.linkSpan(u, obs.DispDiscarded, origin)
		case acceptDup:
			r.discarded.Add(1)
			r.cDiscarded.Inc()
			if idx >= 0 {
				r.socks[idx].dup.Inc()
			}
			r.linkSpan(u, obs.DispDiscarded, origin)
		case acceptForced:
			r.forced.Add(1)
			r.cForced.Inc()
			r.linkSpan(u, obs.DispLost, origin)
		default:
			kept = append(kept, u)
		}
	}
	if len(kept) == 0 {
		return
	}
	if origin != 0 {
		st.lastOrigin.Store(origin)
	}
	if r.dispatch != nil {
		r.dispatch(st.name, kept)
		r.cAccepted.Add(int64(len(kept)))
		if idx >= 0 {
			r.socks[idx].accepted.Add(int64(len(kept)))
		}
		if r.tr != nil {
			for _, u := range kept {
				r.linkSpan(u, obs.DispDelivered, origin)
			}
		}
		return
	}
	for _, u := range kept {
		select {
		case r.out <- u:
			r.cAccepted.Inc()
			if idx >= 0 {
				r.socks[idx].accepted.Inc()
			}
			r.linkSpan(u, obs.DispDelivered, origin)
		default:
			// Receiver overrun: drop, indistinguishable from link loss.
			r.cOverrun.Inc()
			r.linkSpan(u, obs.DispLost, origin)
		}
	}
}

// reorderRun feeds one decoded run through the variable's reorder ring and
// delivers whatever the ring releases — all under the variable's ring
// lock, which serializes both the ring state and the hand-off to
// deliverRun, so a variable's releases reach dispatch in seqno order even
// when its datagrams race up through several sockets concurrently. The
// clock is read once per datagram, not per update.
func (r *UDPReceiver) reorderRun(idx int, st *varState, us []event.Update, origin int64) {
	// Touch link health on arrival, not release: a datagram the ring fully
	// buffers (its seqnos wait behind a gap) is still link activity, and
	// /healthz must not report a front link stale while its traffic is
	// merely parked in the reorder rings.
	r.lh.Touch()
	now := time.Now().UnixNano()
	st.ringMu.Lock()
	defer st.ringMu.Unlock()
	out := st.release[:0]
	pend0 := st.ring.Pending()
	var dups, reord int64
	for _, u := range us {
		var v seq.OfferVerdict
		out, v = st.ring.Offer(u.SeqNo, u, now, out)
		if v&seq.OfferDup != 0 {
			dups++
		}
		if v&seq.OfferReordered != 0 {
			reord++
		}
	}
	r.finishReorder(idx, st, out, origin, pend0, dups, reord)
}

// finishReorder does the post-ring bookkeeping shared by arrivals and
// flushes — counters, the depth gauge delta, and delivery of the released
// run. Caller holds st.ringMu.
func (r *UDPReceiver) finishReorder(idx int, st *varState, out []event.Update, origin int64, pend0 int, dups, reord int64) {
	if dups > 0 {
		// Ring-level duplicates fold into the receiver-wide discarded
		// aggregate (the Stats identity stays sent = accepted + discarded +
		// forced for duplicate-free schedules and counts every drop
		// otherwise) and into the dedicated reorder counter.
		r.discarded.Add(dups)
		r.cDiscarded.Add(dups)
		r.cRDup.Add(dups)
		if idx >= 0 {
			r.socks[idx].dup.Add(dups)
		}
	}
	if reord > 0 && idx >= 0 {
		r.socks[idx].reordered.Add(reord)
	}
	if gl := st.ring.Stats().GapLost; gl != st.gapSeen {
		r.cGapLoss.Add(gl - st.gapSeen)
		st.gapSeen = gl
	}
	r.gRDepth.Add(int64(st.ring.Pending() - pend0))
	if len(out) > 0 {
		r.cReleased.Add(int64(len(out)))
		r.deliverRun(idx, st, out, origin)
	}
	// Keep any growth of the pooled release slice.
	st.release = out[:0]
}

// flushLoop is the reorder layer's skew clock: arrivals start gap timers
// (seq.Reorder.Offer), and this loop releases the gaps whose bound expired
// with no further traffic to observe it.
func (r *UDPReceiver) flushLoop() {
	defer r.fwg.Done()
	period := r.rSkew / 4
	if period < 200*time.Microsecond {
		period = 200 * time.Microsecond
	}
	if period > 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			r.flushExpired(time.Now().UnixNano())
		}
	}
}

// flushExpired releases every variable's expired head gap (if any),
// declaring the missing seqnos lost.
func (r *UDPReceiver) flushExpired(now int64) {
	for _, st := range *r.vars.Load() {
		st.ringMu.Lock()
		pend0 := st.ring.Pending()
		out := st.ring.FlushExpired(now, st.release[:0])
		r.finishReorder(-1, st, out, st.lastOrigin.Load(), pend0, 0, 0)
		st.ringMu.Unlock()
	}
}

// flushAllRings drains every ring on shutdown: buffered updates release in
// seqno order with interior gaps declared lost.
func (r *UDPReceiver) flushAllRings() {
	for _, st := range *r.vars.Load() {
		st.ringMu.Lock()
		pend0 := st.ring.Pending()
		out := st.ring.FlushAll(st.release[:0])
		r.finishReorder(-1, st, out, st.lastOrigin.Load(), pend0, 0, 0)
		st.ringMu.Unlock()
	}
}

// ReorderPending returns the number of updates currently buffered across
// all reorder rings (always zero in pinned mode) — the same quantity the
// <prefix>.reorder.depth gauge tracks, but available without a registry.
func (r *UDPReceiver) ReorderPending() int {
	if r.rDepth == 0 {
		return 0
	}
	n := 0
	for _, st := range *r.vars.Load() {
		st.ringMu.Lock()
		n += st.ring.Pending()
		st.ringMu.Unlock()
	}
	return n
}

// LastOrigin returns the origin timestamp (Unix nanoseconds) carried by
// the most recently accepted annotated update for v, or zero when no
// annotated update has arrived. CE daemons use it to stamp outgoing alert
// frames with the triggering update's emit time. One atomic load — safe
// from any goroutine without stalling the read loops.
func (r *UDPReceiver) LastOrigin(v event.VarName) int64 {
	if st := r.lookup(v); st != nil {
		return st.lastOrigin.Load()
	}
	return 0
}

// linkSpan records one front-link span; no-op with tracing off.
func (r *UDPReceiver) linkSpan(u event.Update, disp string, origin int64) {
	if r.tr == nil {
		return
	}
	r.tr.Record(obs.Span{
		Var: string(u.Var), Seq: u.SeqNo,
		Stage: obs.StageLink, Replica: r.trName, Disp: disp,
		Origin: origin,
	})
}

// TCPSender is the CE side of a back link: a reliable, ordered alert
// stream to the AD.
type TCPSender struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DialAD connects to an ADListener.
func DialAD(addr string) (*TCPSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial AD %q: %w", addr, err)
	}
	return &TCPSender{conn: conn}, nil
}

// Send transmits one alert as a length-prefixed frame. Unlike the front
// links, errors are returned: back links must not lose alerts silently.
// After Close, Send returns the wrapped runtime.ErrClosed sentinel —
// parity with the runtime's Emit-after-Close contract, instead of the raw
// net error a write on a closed socket would surface.
func (s *TCPSender) Send(a event.Alert) error {
	body, err := wire.EncodeAlert(a)
	if err != nil {
		return err
	}
	return s.sendFrame(body)
}

// SendTrace transmits one alert with a wire trace trailer appended after
// the alert body inside the frame, carrying the sampled flag and the
// triggering update's origin timestamp across the back link. Listeners
// that predate the trailer reject annotated frames as trailing garbage,
// so only send annotated when the AD side is running ListenADOpts (or a
// MuxListener) from this version on.
func (s *TCPSender) SendTrace(a event.Alert, t wire.Trace) error {
	body, err := wire.EncodeAlert(a)
	if err != nil {
		return err
	}
	return s.sendFrame(wire.AppendTrace(body, t))
}

// sendFrame writes one length-prefixed frame under the sender mutex.
func (s *TCPSender) sendFrame(body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("transport: alert frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: Send: %w", runtime.ErrClosed)
	}
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send alert header: %w", err)
	}
	if _, err := s.conn.Write(body); err != nil {
		return fmt.Errorf("transport: send alert body: %w", err)
	}
	return nil
}

// Close closes the connection; it is idempotent, and later Sends report
// the runtime.ErrClosed sentinel.
func (s *TCPSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.conn.Close()
}

// ADListener is the AD side of the back links: it accepts any number of CE
// connections and merges their alert streams into one channel — the
// nondeterministic arrival interleaving M of the analysis model.
type ADListener struct {
	ln      net.Listener
	out     chan event.Alert
	digests chan wire.Digest
	evs     chan wire.Evidence
	wg      sync.WaitGroup
	done    chan struct{}

	// Optional instrumentation; nil tracer and link health no-op.
	tr      *obs.Tracer
	lh      *obs.LinkHealth
	observe func(event.Alert, int64)
}

// ADListenerOptions configure the AD side of the back links.
type ADListenerOptions struct {
	// Trace, if non-nil, records a StageBacklink/arrived span for every
	// alert frame that arrives (one per history variable, labelled with the
	// alert's source replica), carrying the origin timestamp from annotated
	// frames.
	Trace *obs.Tracer
	// Health, if non-nil, registers the merged back link under "backlink"
	// and touches it on every arriving frame; /healthz reports it stale
	// after StaleAfter without traffic (obs.DefaultStaleAfter when ≤ 0).
	Health     *obs.Health
	StaleAfter time.Duration
	// Observe, if non-nil, is invoked inline from the connection handler
	// for every decoded alert with the origin timestamp carried by its
	// trace trailer (0 when the frame was unannotated), before the alert
	// is enqueued. It is how the AD-side auditor learns each alert's
	// end-to-end latency anchor; it must not block.
	Observe func(a event.Alert, originNanos int64)
}

// ListenAD starts an AD endpoint on addr.
func ListenAD(addr string) (*ADListener, error) {
	return ListenADOpts(addr, ADListenerOptions{})
}

// ListenADOpts starts an AD endpoint on addr with tracing and health
// wiring. The zero options value behaves exactly like ListenAD.
func ListenADOpts(addr string, opts ADListenerOptions) (*ADListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen AD %q: %w", addr, err)
	}
	l := &ADListener{
		ln:      ln,
		out:     make(chan event.Alert, updateBuffer),
		digests: make(chan wire.Digest, updateBuffer),
		evs:     make(chan wire.Evidence, evidenceBuffer),
		done:    make(chan struct{}),
		tr:      opts.Trace,
		observe: opts.Observe,
	}
	if opts.Health != nil {
		l.lh = opts.Health.Link("backlink", opts.StaleAfter)
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// arrivalSpans records one StageBacklink/arrived span per history variable
// of an alert that crossed a back link — shared by the dedicated and mux
// listeners. No-op with tracing off.
func arrivalSpans(tr *obs.Tracer, a event.Alert, origin int64) {
	if tr == nil {
		return
	}
	for _, v := range a.Histories.Vars() {
		tr.Record(obs.Span{
			Var: string(v), Seq: a.Histories[v].Latest().SeqNo,
			Stage: obs.StageBacklink, Replica: a.Source, Disp: obs.DispArrived,
			Origin: origin,
		})
	}
}

// Addr returns the bound address.
func (l *ADListener) Addr() string { return l.ln.Addr().String() }

// Alerts returns the merged alert stream. It closes after Close once all
// connection handlers exit.
func (l *ADListener) Alerts() <-chan event.Alert { return l.out }

// Close shuts the listener and all connections down and closes Alerts.
func (l *ADListener) Close() {
	close(l.done)
	_ = l.ln.Close()
	l.wg.Wait()
	close(l.out)
	close(l.digests)
	close(l.evs)
}

func (l *ADListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go l.handle(conn)
	}
}

func (l *ADListener) handle(conn net.Conn) {
	defer l.wg.Done()
	defer func() { _ = conn.Close() }()
	go func() {
		// Unblock reads when Close is called.
		<-l.done
		_ = conn.Close()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			return // corrupt stream: a real TCP link would reset here
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		// Frames are self-describing: dispatch on the wire tag byte. Either
		// frame kind may carry an optional trace trailer after its body.
		switch body[0] {
		case 'A':
			a, rest, err := wire.DecodeAlert(body)
			if err != nil {
				return
			}
			t, _, rest, terr := wire.TakeTrace(rest)
			if terr != nil || len(rest) != 0 {
				return
			}
			l.lh.Touch()
			arrivalSpans(l.tr, a, t.Origin)
			if l.observe != nil {
				l.observe(a, t.Origin)
			}
			select {
			case l.out <- a:
			case <-l.done:
				return
			}
		case 'D':
			d, rest, err := wire.DecodeDigest(body)
			if err != nil {
				return
			}
			if _, _, rest, terr := wire.TakeTrace(rest); terr != nil || len(rest) != 0 {
				return
			}
			l.lh.Touch()
			select {
			case l.digests <- d:
			case <-l.done:
				return
			}
		case 'G':
			// A forwarded DM evidence frame, relayed by a CE running with
			// -audit: the AD-side auditor cross-checks displayed values
			// against these digests.
			ev, rest, err := wire.DecodeEvidence(body)
			if err != nil || len(rest) != 0 {
				return
			}
			l.lh.Touch()
			select {
			case l.evs <- ev:
			case <-l.done:
				return
			}
		default:
			return // unknown frame type: treat as a corrupt stream
		}
	}
}
