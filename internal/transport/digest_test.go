package transport

import (
	"testing"
	"time"

	"condmon/internal/ad"
	"condmon/internal/event"
	"condmon/internal/wire"
)

func TestDigestBackLinkRoundTrip(t *testing.T) {
	adl, err := ListenAD("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAD: %v", err)
	}
	defer adl.Close()

	snd, err := DialAD(adl.Addr())
	if err != nil {
		t.Fatalf("DialAD: %v", err)
	}
	defer func() { _ = snd.Close() }()

	a := event.Alert{Cond: "c1", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 3200)}},
	}}
	want := wire.DigestOf(a)
	if err := snd.SendDigest(want); err != nil {
		t.Fatalf("SendDigest: %v", err)
	}
	select {
	case got := <-adl.Digests():
		if got.Key() != want.Key() || got.Latest["x"] != 3 || got.Source != "CE1" {
			t.Errorf("received %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("digest did not arrive")
	}
}

func TestMixedAlertAndDigestFrames(t *testing.T) {
	// One CE sends full alerts, another sends digests; both arrive on the
	// right channel of the same listener, and an AD-1d filter deduplicates
	// across the two encodings.
	adl, err := ListenAD("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAD: %v", err)
	}
	defer adl.Close()

	full, err := DialAD(adl.Addr())
	if err != nil {
		t.Fatalf("DialAD full: %v", err)
	}
	defer func() { _ = full.Close() }()
	compact, err := DialAD(adl.Addr())
	if err != nil {
		t.Fatalf("DialAD compact: %v", err)
	}
	defer func() { _ = compact.Close() }()

	a := event.Alert{Cond: "c1", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 3200)}},
	}}
	dup := a.Clone()
	dup.Source = "CE2"
	if err := full.Send(a); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := compact.SendDigest(wire.DigestOf(dup)); err != nil {
		t.Fatalf("SendDigest: %v", err)
	}

	filter := ad.NewAD1Digest()
	displayed := 0
	received := 0
	deadline := time.After(5 * time.Second)
	for received < 2 {
		select {
		case got := <-adl.Alerts():
			received++
			if filter.Test(got) {
				filter.Accept(got)
				displayed++
			}
		case d := <-adl.Digests():
			received++
			if filter.TestDigest(d) {
				filter.AcceptDigest(d)
				displayed++
			}
		case <-deadline:
			t.Fatalf("timed out after %d frames", received)
		}
	}
	if displayed != 1 {
		t.Errorf("displayed %d, want 1 (digest recognized as duplicate of the full alert)", displayed)
	}
}
