package transport

import (
	"net"
	"testing"
	"time"

	"condmon/internal/audit"
	"condmon/internal/event"
	"condmon/internal/obs"
	"condmon/internal/wire"
)

// A DM-side evidence builder publishing 'G' frames over the front link:
// the receiver decodes them onto its Evidence channel while the update
// stream flows untouched, and a corrupted frame drops whole without
// wedging either stream.
func TestEvidencePublishReceive(t *testing.T) {
	reg := obs.NewRegistry()
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{Metrics: reg, MetricsPrefix: "recv"})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	b := audit.NewEvidenceBuilder("x", 1, 16)
	for s := int64(1); s <= 5; s++ {
		u := event.U("x", s, float64(s)*10)
		b.Observe(u)
		if err := pub.Publish(u); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	f, ok := b.Frame()
	if !ok {
		t.Fatal("builder yielded no frame")
	}
	if err := pub.PublishEvidence(f); err != nil {
		t.Fatalf("PublishEvidence: %v", err)
	}

	select {
	case got := <-recv.Evidence():
		if got.Var != "x" || got.UpTo != 5 || got.PrefixHash != f.PrefixHash || len(got.Vals) != 5 {
			t.Fatalf("evidence = %+v, want frame for x up to 5", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evidence frame never arrived")
	}
	if p, _ := reg.Get("recv.evidence"); p.Value != 1 {
		t.Fatalf("recv.evidence = %d, want 1", p.Value)
	}

	// A corrupted evidence frame (CRC breaks) is dropped whole; the link
	// keeps working for both kinds of traffic.
	raw, err := wire.AppendEvidence(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	conn, err := net.Dial("udp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}

	b.Observe(event.U("x", 6, 60))
	f2, _ := b.Frame()
	if err := pub.PublishEvidence(f2); err != nil {
		t.Fatalf("PublishEvidence: %v", err)
	}
	select {
	case got := <-recv.Evidence():
		if got.UpTo != 6 {
			t.Fatalf("second evidence frame = %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evidence after corrupt frame never arrived")
	}
	if p, _ := reg.Get("recv.evidence"); p.Value != 2 {
		t.Fatalf("recv.evidence = %d, want 2 (corrupt frame must not count)", p.Value)
	}
}

// A CE forwarding evidence over the back link: SendEvidence frames arrive
// on the listener's Evidence channel, interleaved with alerts on Alerts.
func TestEvidenceBacklinkForward(t *testing.T) {
	l, err := ListenAD("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAD: %v", err)
	}
	defer l.Close()
	s, err := DialAD(l.Addr())
	if err != nil {
		t.Fatalf("DialAD: %v", err)
	}
	defer func() { _ = s.Close() }()

	ev := wire.Evidence{Var: "reactor", Base: 0, UpTo: 3, PrefixHash: 42, Vals: []float64{1, 2, 3}}
	h := wire.EvidenceHashSeed
	for i, v := range ev.Vals {
		h = wire.EvidenceHashStep(h, int64(i+1), v)
	}
	ev.PrefixHash = h
	if err := s.SendEvidence(ev); err != nil {
		t.Fatalf("SendEvidence: %v", err)
	}
	al := event.NewAlert("c1", event.HistorySet{
		"reactor": {Var: "reactor", Recent: []event.Update{event.U("reactor", 3, 3)}},
	}, "CE1")
	if err := s.Send(al); err != nil {
		t.Fatalf("Send: %v", err)
	}

	select {
	case got := <-l.Evidence():
		if got.Var != "reactor" || got.UpTo != 3 || got.PrefixHash != ev.PrefixHash {
			t.Fatalf("forwarded evidence = %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evidence never arrived on back link")
	}
	select {
	case got := <-l.Alerts():
		if got.Cond != "c1" {
			t.Fatalf("alert = %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alert never arrived after evidence frame")
	}
}

// Satellite regression for /healthz under the reorder layer: a datagram the
// ring fully buffers (parked behind a gap, nothing released) must still
// count as front-link activity.
func TestReorderBufferedArrivalTouchesLinkHealth(t *testing.T) {
	hl := obs.NewHealth()
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ReorderDepth: 8, ReorderSkew: time.Hour, // park the gap for the whole test
		Health: hl, StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	if rep := hl.Check(); rep.Healthy {
		t.Fatal("never-touched link must start stale")
	}
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	// Seqno 2 with 1 missing: buffered behind the gap, nothing released.
	if err := pub.Publish(event.U("x", 2, 200)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !hl.Check().Healthy {
		if time.Now().After(deadline) {
			t.Fatal("buffered arrival never touched link health")
		}
		time.Sleep(time.Millisecond)
	}
	if n := recv.ReorderPending(); n != 1 {
		t.Fatalf("ReorderPending = %d, want 1 (the update must still be parked)", n)
	}
}

// Satellite regression for /healthz under the reorder flusher: an update
// released by the skew-expiry flusher (not a fresh datagram) goes through
// the same delivery path and must advance link activity.
func TestReorderFlushReleaseTouchesLinkHealth(t *testing.T) {
	hl := obs.NewHealth()
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ReorderDepth: 8, ReorderSkew: 50 * time.Millisecond,
		Health: hl, StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	lh := hl.Link("front:front", 0) // same registered instance the receiver touches
	if err := pub.Publish(event.U("x", 2, 200)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for lh.LastActivity().IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("arrival never touched link health")
		}
		time.Sleep(time.Millisecond)
	}
	t0 := lh.LastActivity()

	// The flusher declares seqno 1 lost after the skew and releases 2 —
	// with no new datagrams in flight, any later activity is the release.
	select {
	case u := <-recv.Updates():
		if u.SeqNo != 2 {
			t.Fatalf("released update = %+v", u)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never released the parked update")
	}
	deadline = time.Now().Add(5 * time.Second)
	for !lh.LastActivity().After(t0) {
		if time.Now().After(deadline) {
			t.Fatal("flush release never advanced link activity")
		}
		time.Sleep(time.Millisecond)
	}
}
