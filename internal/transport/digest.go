package transport

import (
	"encoding/binary"
	"fmt"

	"condmon/internal/runtime"
	"condmon/internal/wire"
)

// This file completes the Section 2 checksum optimization end to end: CEs
// whose AD runs an equality-only filter (AD-1) can ship compact digests on
// the back links instead of full alerts. Frames are self-describing — the
// wire tag byte distinguishes alerts from digests — so one ADListener can
// serve a mixed fleet of CEs.

// SendDigest transmits an alert digest as a length-prefixed frame. Like
// Send, it returns the wrapped runtime.ErrClosed sentinel after Close.
func (s *TCPSender) SendDigest(d wire.Digest) error {
	body, err := wire.AppendDigest(nil, d)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("transport: digest frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: SendDigest: %w", runtime.ErrClosed)
	}
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send digest header: %w", err)
	}
	if _, err := s.conn.Write(body); err != nil {
		return fmt.Errorf("transport: send digest body: %w", err)
	}
	return nil
}

// Digests returns the stream of digest frames received from CEs using the
// compact encoding. Full alerts keep arriving on Alerts. The channel
// closes with the listener.
func (l *ADListener) Digests() <-chan wire.Digest { return l.digests }
