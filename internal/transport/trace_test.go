package transport

import (
	"testing"
	"time"

	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
	"condmon/internal/wire"
)

// waitSpans polls a tracer until at least want spans matching the filter
// exist (recording trails the channel hand-off, so tests wait).
func waitSpans(t *testing.T, tr *obs.Tracer, varName string, seq int64, want int) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := tr.Spans(varName, seq)
		if len(spans) >= want {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("have %d spans for (%q, %d), want %d: %+v", len(spans), varName, seq, want, spans)
		}
		time.Sleep(time.Millisecond)
	}
}

// An annotated publisher and a tracing receiver: the publisher records the
// emit span and stamps the wire trailer, the receiver records per-update
// link spans carrying the origin, and LastOrigin remembers it per variable
// for the CE daemon's alert annotation.
func TestUDPTracedPublishReceive(t *testing.T) {
	tr := obs.NewTracer(256)
	hl := obs.NewHealth()
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		Trace: tr, TraceName: "CE1", Health: hl, StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()
	pub.SetTrace(tr, "DM")

	if err := pub.Publish(event.U("x", 1, 100)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := collect(t, recv, 1, 5*time.Second)
	if len(got) != 1 {
		t.Fatalf("received %d updates, want 1", len(got))
	}

	spans := waitSpans(t, tr, "x", 1, 2)
	var emit, linkSpan *obs.Span
	for i := range spans {
		switch spans[i].Stage {
		case obs.StageEmit:
			emit = &spans[i]
		case obs.StageLink:
			linkSpan = &spans[i]
		}
	}
	if emit == nil || emit.Replica != "DM" || emit.Disp != obs.DispEmitted || emit.Origin == 0 {
		t.Errorf("emit span = %+v, want DM/emitted with origin", emit)
	}
	if linkSpan == nil || linkSpan.Replica != "CE1" || linkSpan.Disp != obs.DispDelivered {
		t.Errorf("link span = %+v, want CE1/delivered", linkSpan)
	}
	if linkSpan != nil && emit != nil && linkSpan.Origin != emit.Origin {
		t.Errorf("origin did not survive the wire: link %d, emit %d", linkSpan.Origin, emit.Origin)
	}
	if got := recv.LastOrigin("x"); emit != nil && got != emit.Origin {
		t.Errorf("LastOrigin(x) = %d, want %d", got, emit.Origin)
	}
	if rep := hl.Check(); !rep.Healthy || len(rep.Links) != 1 || rep.Links[0].Name != "front:CE1" {
		t.Errorf("health = %+v, want one fresh front:CE1 link", rep)
	}
}

// PublishBatch annotates each chunk once and records one emit span per
// update; the receiving side's link spans cover the whole batch.
func TestUDPTracedBatch(t *testing.T) {
	tr := obs.NewTracer(1024)
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{Trace: tr, TraceName: "CE1"})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()
	pub.SetTrace(tr, "DM")

	us := make([]event.Update, 300) // several chunks worth
	for i := range us {
		us[i] = event.U("x", int64(i+1), float64(i))
	}
	if err := pub.PublishBatch("x", us); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	if got := collect(t, recv, len(us), 5*time.Second); len(got) != len(us) {
		t.Fatalf("received %d updates, want %d", len(got), len(us))
	}
	spans := waitSpans(t, tr, "x", -1, 2*len(us))
	emits, links := 0, 0
	for _, s := range spans {
		switch s.Stage {
		case obs.StageEmit:
			emits++
		case obs.StageLink:
			links++
			if s.Origin == 0 {
				t.Fatalf("link span without origin: %+v", s)
			}
		}
	}
	if emits != len(us) || links != len(us) {
		t.Errorf("emit/link spans = %d/%d, want %d/%d", emits, links, len(us), len(us))
	}
}

// Forced loss and stale discards leave their own spans, so the flight
// recorder explains exactly which replica missed which update and why.
func TestUDPTracedLossAndDiscard(t *testing.T) {
	tr := obs.NewTracer(256)
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ForcedLoss: link.NewDropSeqNos("x", 2),
		Trace:      tr, TraceName: "CE2",
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	defer pub.Close()

	for _, n := range []int64{1, 2, 3, 1} { // 2 force-dropped, trailing 1 stale
		if err := pub.Publish(event.U("x", n, 0)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if got := collect(t, recv, 2, 5*time.Second); len(got) != 2 {
		t.Fatalf("received %d updates, want 2", len(got))
	}
	spans := waitSpans(t, tr, "x", -1, 4)
	byDisp := map[string]int{}
	for _, s := range spans {
		byDisp[s.Disp]++
	}
	if byDisp[obs.DispDelivered] != 2 || byDisp[obs.DispLost] != 1 || byDisp[obs.DispDiscarded] != 1 {
		t.Errorf("dispositions = %v, want 2 delivered, 1 lost, 1 discarded", byDisp)
	}
}

// An annotated alert frame through the back link: SendTrace stamps the
// trailer, the tracing listener records arrived spans carrying the origin
// and touches the backlink health.
func TestTCPBackLinkTraced(t *testing.T) {
	tr := obs.NewTracer(64)
	hl := obs.NewHealth()
	adl, err := ListenADOpts("127.0.0.1:0", ADListenerOptions{Trace: tr, Health: hl, StaleAfter: time.Hour})
	if err != nil {
		t.Fatalf("ListenADOpts: %v", err)
	}
	defer adl.Close()
	snd, err := DialAD(adl.Addr())
	if err != nil {
		t.Fatalf("DialAD: %v", err)
	}
	defer func() { _ = snd.Close() }()

	a := event.Alert{Cond: "c1", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 3200)}},
	}}
	const origin = int64(987654321)
	if err := snd.SendTrace(a, wire.Trace{Flags: wire.TraceFlagSampled, Origin: origin}); err != nil {
		t.Fatalf("SendTrace: %v", err)
	}
	select {
	case got := <-adl.Alerts():
		if got.Key() != a.Key() {
			t.Errorf("received %v, want %v", got, a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alert did not arrive")
	}
	spans := waitSpans(t, tr, "x", 3, 1)
	s := spans[0]
	if s.Stage != obs.StageBacklink || s.Disp != obs.DispArrived || s.Replica != "CE1" || s.Origin != origin {
		t.Errorf("arrival span = %+v, want backlink/arrived/CE1 with origin %d", s, origin)
	}
	if rep := hl.Check(); !rep.Healthy || len(rep.Links) != 1 || rep.Links[0].Name != "backlink" {
		t.Errorf("health = %+v, want one fresh backlink", rep)
	}
}

// An annotating mux sender against a tracing mux listener: frames carry
// the sampled trailer and every demultiplexed alert leaves an arrival span.
func TestMuxTraced(t *testing.T) {
	tr := obs.NewTracer(64)
	hl := obs.NewHealth()
	l, err := ListenMux("127.0.0.1:0", MuxListenerOptions{Trace: tr, Health: hl, StaleAfter: time.Hour})
	if err != nil {
		t.Fatalf("ListenMux: %v", err)
	}
	defer l.Close()
	ms, err := DialMux(l.Addr(), MuxSenderOptions{Annotate: true})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer func() { _ = ms.Close() }()

	a := event.Alert{Cond: "c1", Source: "CE2", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 9, 4100)}},
	}}
	if err := ms.Send(4, a); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case got := <-l.Alerts():
		if got.Stream != 4 || got.Alert.Key() != a.Key() {
			t.Errorf("received stream=%d %v, want 4 %v", got.Stream, got.Alert, a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alert did not arrive")
	}
	spans := waitSpans(t, tr, "x", 9, 1)
	s := spans[0]
	if s.Stage != obs.StageBacklink || s.Disp != obs.DispArrived || s.Replica != "CE2" {
		t.Errorf("arrival span = %+v, want backlink/arrived/CE2", s)
	}
	if rep := hl.Check(); !rep.Healthy {
		t.Errorf("health = %+v, want healthy backlink", rep)
	}
}
