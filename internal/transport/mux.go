package transport

// This file is the multiplexed back link: every CE replica of a process
// shares one TCP connection to the AD instead of dialing its own. The
// MuxSender tags each alert with a 32-bit stream id, coalesces small
// writes into 'M' frames (flushed by size or deadline), and preserves
// per-stream order; the MuxListener demultiplexes frames back into
// (stream, alert) pairs. A thousand-replica deployment thus holds one
// file descriptor per process on each side where the dedicated-connection
// wiring holds one per replica.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"condmon/internal/event"
	"condmon/internal/obs"
	"condmon/internal/runtime"
	"condmon/internal/wire"
)

// Default MuxSender coalescing knobs: a buffer flushes as soon as it holds
// defaultFlushBytes of frame payload, or defaultFlushEvery after the first
// unflushed Send, whichever comes first.
const (
	defaultFlushBytes = 32 * 1024
	defaultFlushEvery = 2 * time.Millisecond
)

// MuxSenderOptions configure the coalescing buffer of a MuxSender.
type MuxSenderOptions struct {
	// FlushBytes is the buffered payload size that forces an immediate
	// flush (default 32 KiB). Larger values coalesce more alerts per
	// syscall at the cost of latency.
	FlushBytes int
	// FlushEvery bounds how long a buffered alert may wait before the
	// deadline flush pushes it out (default 2ms).
	FlushEvery time.Duration
	// Metrics, if non-nil, registers sender counters under MetricsPrefix
	// (default "transport.mux"): <prefix>.alerts, <prefix>.frames, and
	// <prefix>.flushes — alerts ≫ frames ≫ flushes is coalescing working.
	Metrics       *obs.Registry
	MetricsPrefix string
	// Annotate appends a wire trace trailer to every flushed 'M' frame
	// (sampled flag, no origin — a coalesced frame spans many origins), so
	// a tracing MuxListener knows the sender participates in a traced run.
	// Listeners that predate the trailer reject annotated frames, so leave
	// this off unless the AD side is current.
	Annotate bool
}

func (o *MuxSenderOptions) applyDefaults() {
	if o.FlushBytes <= 0 {
		o.FlushBytes = defaultFlushBytes
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = defaultFlushEvery
	}
	if o.MetricsPrefix == "" {
		o.MetricsPrefix = "transport.mux"
	}
}

// muxStream is one stream's pending coalesced run: encoded alert bodies in
// Send order, reused across flushes.
type muxStream struct {
	id    uint32
	items [][]byte
	bytes int // sum of item body lengths
}

// MuxSender is the shared-connection CE side of a multiplexed back link.
// Any number of streams (CE replicas, shards) send through one TCP
// connection; alerts of one stream are delivered in Send order, and small
// Sends are coalesced into 'M' frames flushed by size or deadline. All
// methods are safe for concurrent use — replicas of one process share the
// sender directly.
type MuxSender struct {
	opts MuxSenderOptions
	conn net.Conn

	mu      sync.Mutex
	streams map[uint32]*muxStream
	order   []*muxStream // streams with pending items, first-Send order
	pending int          // buffered payload bytes (items + per-item overhead)
	timer   *time.Timer  // armed deadline flush, nil when idle
	closed  bool
	err     error // sticky write error: the connection is dead

	cAlerts, cFrames, cFlushes *obs.Counter
}

// DialMux connects a shared back link to a MuxListener (or any AD endpoint
// that understands 'M' frames).
func DialMux(addr string, opts MuxSenderOptions) (*MuxSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial mux %q: %w", addr, err)
	}
	opts.applyDefaults()
	s := &MuxSender{
		opts:    opts,
		conn:    conn,
		streams: make(map[uint32]*muxStream),
	}
	if opts.Metrics != nil {
		s.cAlerts = opts.Metrics.Counter(opts.MetricsPrefix + ".alerts")
		s.cFrames = opts.Metrics.Counter(opts.MetricsPrefix + ".frames")
		s.cFlushes = opts.Metrics.Counter(opts.MetricsPrefix + ".flushes")
	}
	return s, nil
}

// Send enqueues one alert on the given stream. The alert leaves in the next
// flush — triggered by the size threshold, the deadline, an explicit Flush,
// or Close — and arrives after every alert previously sent on the same
// stream. After Close, Send returns the wrapped runtime.ErrClosed sentinel,
// matching the front links' Emit-after-Close contract.
func (s *MuxSender) Send(stream uint32, a event.Alert) error {
	body, err := wire.EncodeAlert(a)
	if err != nil {
		return err
	}
	if wire.MuxOverhead(1, len(body)) > maxFrame {
		return fmt.Errorf("transport: alert of %d bytes exceeds frame limit", len(body))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: mux Send: %w", runtime.ErrClosed)
	}
	if s.err != nil {
		return s.err
	}
	st, ok := s.streams[stream]
	if !ok {
		st = &muxStream{id: stream}
		s.streams[stream] = st
	}
	if len(st.items) == 0 {
		s.order = append(s.order, st)
	}
	st.items = append(st.items, body)
	st.bytes += len(body)
	s.pending += len(body) + 4
	s.cAlerts.Inc()
	if s.pending >= s.opts.FlushBytes {
		return s.flushLocked()
	}
	if s.timer == nil {
		s.timer = time.AfterFunc(s.opts.FlushEvery, s.deadlineFlush)
	}
	return nil
}

// deadlineFlush is the timer callback: push whatever is buffered.
func (s *MuxSender) deadlineFlush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	_ = s.flushLocked() // the error is sticky; the next Send reports it
}

// Flush writes every buffered alert out now. Useful before measuring and
// when a caller needs bounded delivery without waiting for the deadline.
func (s *MuxSender) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: mux Flush: %w", runtime.ErrClosed)
	}
	return s.flushLocked()
}

// flushLocked encodes every pending stream run into 'M' frames — splitting
// runs whose encoding would exceed maxFrame into several frames of the same
// stream, so an oversized run never resets the connection — and writes them
// with one syscall. The caller holds s.mu.
func (s *MuxSender) flushLocked() error {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if s.err != nil {
		return s.err
	}
	if len(s.order) == 0 {
		return nil
	}
	var out []byte
	frames := 0
	// An annotated frame spends wire.TraceLen of its budget on the trailer.
	frameBudget := maxFrame
	if s.opts.Annotate {
		frameBudget -= wire.TraceLen
	}
	for _, st := range s.order {
		items := st.items
		for len(items) > 0 {
			// Greedily pack items while the frame stays under the budget and
			// the 16-bit item count has room.
			n, bytes := 0, 0
			for n < len(items) && n < 1<<16-1 {
				if sz := wire.MuxOverhead(n+1, bytes+len(items[n])); sz > frameBudget && n > 0 {
					break
				}
				bytes += len(items[n])
				n++
			}
			frame := encodeMuxItems(st.id, items[:n])
			if s.opts.Annotate {
				frame = wire.AppendTrace(frame, wire.Trace{Flags: wire.TraceFlagSampled})
			}
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
			out = append(out, hdr[:]...)
			out = append(out, frame...)
			items = items[n:]
			frames++
		}
		st.items = st.items[:0]
		st.bytes = 0
	}
	s.order = s.order[:0]
	s.pending = 0
	s.cFrames.Add(int64(frames))
	s.cFlushes.Inc()
	if _, err := s.conn.Write(out); err != nil {
		s.err = fmt.Errorf("transport: mux flush: %w", err)
		return s.err
	}
	return nil
}

// encodeMuxItems assembles one 'M' frame from pre-encoded alert bodies —
// the wire.AppendMux layout without re-encoding each alert.
func encodeMuxItems(stream uint32, items [][]byte) []byte {
	size := 1 + 4 + 2
	for _, it := range items {
		size += 4 + len(it)
	}
	out := make([]byte, 0, size)
	out = append(out, 'M')
	out = binary.BigEndian.AppendUint32(out, stream)
	out = binary.BigEndian.AppendUint16(out, uint16(len(items)))
	for _, it := range items {
		out = binary.BigEndian.AppendUint32(out, uint32(len(it)))
		out = append(out, it...)
	}
	return out
}

// Close flushes buffered alerts and closes the shared connection. Later
// Sends return the wrapped runtime.ErrClosed sentinel.
func (s *MuxSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	flushErr := s.flushLocked()
	s.closed = true
	if err := s.conn.Close(); err != nil && flushErr == nil {
		return err
	}
	return flushErr
}

// StreamAlert is one demultiplexed back-link arrival: the alert plus the
// stream id its sender tagged it with. Plain 'A' frames from non-mux
// senders surface as stream 0.
type StreamAlert struct {
	Stream uint32
	Alert  event.Alert
}

// MuxListenerOptions configure the AD side of a multiplexed back link.
type MuxListenerOptions struct {
	// Metrics, if non-nil, registers listener counters under MetricsPrefix
	// (default "transport.muxrecv"): <prefix>.alerts, <prefix>.frames, and
	// <prefix>.item_errors (corrupt items skipped inside otherwise valid
	// frames).
	Metrics       *obs.Registry
	MetricsPrefix string
	// Trace, if non-nil, records a StageBacklink/arrived span for every
	// demultiplexed alert (one per history variable, labelled with the
	// alert's source replica).
	Trace *obs.Tracer
	// Health, if non-nil, registers the shared back link under "backlink"
	// and touches it on every arriving frame; /healthz reports it stale
	// after StaleAfter without traffic (obs.DefaultStaleAfter when ≤ 0).
	Health     *obs.Health
	StaleAfter time.Duration
	// Observe, if non-nil, is invoked inline from the connection handler
	// for every decoded alert with the origin timestamp carried by its
	// frame's trace trailer (0 when unannotated), before the alert is
	// enqueued — the AD-side auditor's latency anchor. It must not block.
	Observe func(a event.Alert, originNanos int64)
}

// MuxListener is the AD side of multiplexed back links: it accepts any
// number of shared connections, decodes 'M' frames (and plain 'A' frames
// from legacy senders), and merges the demultiplexed streams into one
// channel while preserving each stream's send order.
type MuxListener struct {
	ln   net.Listener
	out  chan StreamAlert
	wg   sync.WaitGroup
	done chan struct{}

	cAlerts, cFrames, cItemErrs *obs.Counter
	tr                          *obs.Tracer
	lh                          *obs.LinkHealth
	observe                     func(event.Alert, int64)
}

// ListenMux starts a multiplexed AD endpoint on addr.
func ListenMux(addr string, opts MuxListenerOptions) (*MuxListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen mux %q: %w", addr, err)
	}
	l := &MuxListener{
		ln:      ln,
		out:     make(chan StreamAlert, updateBuffer),
		done:    make(chan struct{}),
		tr:      opts.Trace,
		observe: opts.Observe,
	}
	if opts.Health != nil {
		l.lh = opts.Health.Link("backlink", opts.StaleAfter)
	}
	if opts.Metrics != nil {
		prefix := opts.MetricsPrefix
		if prefix == "" {
			prefix = "transport.muxrecv"
		}
		l.cAlerts = opts.Metrics.Counter(prefix + ".alerts")
		l.cFrames = opts.Metrics.Counter(prefix + ".frames")
		l.cItemErrs = opts.Metrics.Counter(prefix + ".item_errors")
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address.
func (l *MuxListener) Addr() string { return l.ln.Addr().String() }

// Alerts returns the merged, stream-tagged alert flow. Within one stream,
// arrival order is send order; across streams the interleaving is the
// nondeterministic merge M of the analysis model. The channel closes after
// Close once all connection handlers exit.
func (l *MuxListener) Alerts() <-chan StreamAlert { return l.out }

// Close shuts the listener and all connections down and closes Alerts.
func (l *MuxListener) Close() {
	close(l.done)
	_ = l.ln.Close()
	l.wg.Wait()
	close(l.out)
}

func (l *MuxListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go l.handle(conn)
	}
}

func (l *MuxListener) handle(conn net.Conn) {
	defer l.wg.Done()
	defer func() { _ = conn.Close() }()
	go func() {
		// Unblock reads when Close is called.
		<-l.done
		_ = conn.Close()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			return // corrupt stream: a real TCP link would reset here
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		l.cFrames.Inc()
		// Either frame kind may carry an optional trace trailer after its
		// body.
		switch body[0] {
		case 'M':
			m, itemErrs, rest, err := wire.DecodeMux(body)
			if err != nil {
				return // frame-level corruption: reset the connection
			}
			t, _, rest, terr := wire.TakeTrace(rest)
			if terr != nil || len(rest) != 0 {
				return // frame-level corruption: reset the connection
			}
			l.lh.Touch()
			// Item errors never desync the frame: the corrupt alerts are
			// dropped, the rest of the run flows on.
			l.cItemErrs.Add(int64(len(itemErrs)))
			for _, a := range m.Alerts {
				arrivalSpans(l.tr, a, t.Origin)
				if l.observe != nil {
					l.observe(a, t.Origin)
				}
				if !l.emit(StreamAlert{Stream: m.Stream, Alert: a}) {
					return
				}
			}
		case 'A':
			a, rest, err := wire.DecodeAlert(body)
			if err != nil {
				return
			}
			t, _, rest, terr := wire.TakeTrace(rest)
			if terr != nil || len(rest) != 0 {
				return
			}
			l.lh.Touch()
			arrivalSpans(l.tr, a, t.Origin)
			if l.observe != nil {
				l.observe(a, t.Origin)
			}
			if !l.emit(StreamAlert{Alert: a}) {
				return
			}
		default:
			return // unknown frame type: treat as a corrupt stream
		}
	}
}

// emit hands one arrival to the merged channel, reporting false when the
// listener is shutting down.
func (l *MuxListener) emit(sa StreamAlert) bool {
	select {
	case l.out <- sa:
		l.cAlerts.Inc()
		return true
	case <-l.done:
		return false
	}
}
