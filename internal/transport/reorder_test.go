package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
	"condmon/internal/wire"
)

// TestStripedIngestEquivalence is the acceptance gate for the multipath
// ingest plane: for every loss schedule × adversarial arrival schedule
// (bounded reorder, duplication, both), the per-condition displayed alert
// sequences of a striped N-socket run through the reorder buffer must be
// byte-identical to the pinned 1-socket baseline. The key invariant is
// that the ring releases in seqno order and drops duplicates before the
// forced-loss draw, so a variable's loss schedule depends only on its own
// update sequence — the same property the pinned plane gets for free.
func TestStripedIngestEquivalence(t *testing.T) {
	bern := func(p float64) link.Model {
		m, err := link.NewBernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	schedules := map[string]func(v event.VarName) link.Model{
		"lossless": nil,
		"bernoulli": func(v event.VarName) link.Model {
			return bern(0.2)
		},
		"burst": func(v event.VarName) link.Model {
			m, err := link.NewBurst(0.1, 0.5, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"mixed": func(v event.VarName) link.Model {
			if v == "x" {
				return bern(0.3)
			}
			return nil
		},
	}
	arrivals := []struct {
		name         string
		permute, dup bool
		legs         []int
	}{
		{"reorder", true, false, []int{4}},
		{"dup", false, true, []int{4}},
		{"reorder+dup", true, true, []int{1, 4, 8}},
	}
	for name, loss := range schedules {
		t.Run(name, func(t *testing.T) {
			want := runIngest(t, loss, ingestMode{sockets: 1})
			for _, ar := range arrivals {
				for _, sockets := range ar.legs {
					got := runIngest(t, loss, ingestMode{
						sockets: sockets, dispatch: true, stripe: true,
						reorderDepth: 32, permute: ar.permute, dup: ar.dup,
					})
					compareIngest(t, fmt.Sprintf("%s/%d-socket striped", ar.name, sockets), want, got)
				}
			}
		})
	}
}

// TestSendersClamp pins the satellite publisher option: sender-lane counts
// are validated at construction — zero and negative mean one lane, absurd
// values clamp to the maxSenders bound.
func TestSendersClamp(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	for _, tc := range []struct {
		give, want int
	}{
		{0, 1},
		{-3, 1},
		{1, 1},
		{5, 5},
		{maxSenders, maxSenders},
		{100000, maxSenders},
	} {
		pub, err := NewUDPPublisherOpts(UDPPublisherOptions{Senders: tc.give}, recv.Addr())
		if err != nil {
			t.Fatalf("NewUDPPublisherOpts(Senders=%d): %v", tc.give, err)
		}
		if pub.Senders() != tc.want {
			t.Errorf("Senders(%d) clamps to %d, want %d", tc.give, pub.Senders(), tc.want)
		}
		pub.Close()
	}
}

// TestPinnedDuplicateReplay is the satellite coverage for the pinned
// (zero-buffer) path: a replayed batch datagram must neither double-count
// accepted nor feed the dispatch callback twice — every replayed update is
// discarded by the in-order rule, and the one sitting exactly at the
// horizon is classified as a duplicate on the per-socket counter.
func TestPinnedDuplicateReplay(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var fed []int64
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		Metrics: reg,
		Dispatch: func(v event.VarName, us []event.Update) {
			mu.Lock()
			for _, u := range us {
				fed = append(fed, u.SeqNo)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	mkFrame := func(lo, hi int64) []byte {
		us := make([]event.Update, 0, hi-lo+1)
		for s := lo; s <= hi; s++ {
			us = append(us, event.U("x", s, float64(s)))
		}
		frame, err := wire.EncodeBatch("x", us)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	scratch := make([]event.Update, 0, 16)
	first := mkFrame(1, 5)
	scratch = recv.handleDatagram(0, first, scratch)
	scratch = recv.handleDatagram(0, first, scratch) // replayed datagram
	recv.handleDatagram(0, mkFrame(6, 10), scratch)

	mu.Lock()
	defer mu.Unlock()
	if len(fed) != 10 {
		t.Fatalf("dispatch fed %d updates, want 10 (replay double-fed?): %v", len(fed), fed)
	}
	for i, s := range fed {
		if s != int64(i+1) {
			t.Fatalf("dispatch stream %v out of order at %d", fed, i)
		}
	}
	if got := reg.Counter("transport.recv.accepted").Value(); got != 10 {
		t.Errorf("accepted = %d, want 10 (replay double-counted?)", got)
	}
	if got := reg.Counter("transport.recv.discarded").Value(); got != 5 {
		t.Errorf("discarded = %d, want 5 (the replayed frame)", got)
	}
	// Within the replayed frame, seqno 5 sits exactly at the horizon — a
	// provable duplicate; 1..4 are below it and indistinguishable from
	// out-of-order arrivals.
	dup := reg.Counter("transport.recv.0.dup").Value()
	reord := reg.Counter("transport.recv.0.reordered").Value()
	if dup != 1 || dup+reord != 5 {
		t.Errorf("per-socket dup=%d reordered=%d, want 1 and 4", dup, reord)
	}
}

// TestDupFrameDrop pins the duplication-safe framing fast path: a striped
// frame replayed byte-for-byte is dropped on its path trailer in O(1) —
// counted as a dup frame, never reaching per-update acceptance — while a
// re-send of the same updates under a fresh datagram seqno falls through
// to the per-update rules.
func TestDupFrameDrop(t *testing.T) {
	reg := obs.NewRegistry()
	var fed int
	var mu sync.Mutex
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		Metrics: reg,
		Dispatch: func(v event.VarName, us []event.Update) {
			mu.Lock()
			fed += len(us)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	us := make([]event.Update, 5)
	for i := range us {
		us[i] = event.U("x", int64(i+1), float64(i))
	}
	body, err := wire.EncodeBatch("x", us)
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.AppendPath(body, wire.Path{ID: 7, Seq: 1})
	scratch := make([]event.Update, 0, 16)
	scratch = recv.handleDatagram(0, frame, scratch)
	scratch = recv.handleDatagram(0, frame, scratch) // exact replay
	if got := reg.Counter("transport.recv.dup_frames").Value(); got != 1 {
		t.Errorf("dup_frames = %d, want 1", got)
	}
	if got := reg.Counter("transport.recv.discarded").Value(); got != 0 {
		t.Errorf("discarded = %d, want 0: a dup frame drops before per-update work", got)
	}
	// Same updates, fresh datagram seqno: not a frame dup, so the
	// per-update rules account for it instead.
	recv.handleDatagram(0, wire.AppendPath(body, wire.Path{ID: 7, Seq: 2}), scratch)
	if got := reg.Counter("transport.recv.discarded").Value(); got != 5 {
		t.Errorf("discarded = %d after re-send, want 5", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if fed != 5 {
		t.Errorf("dispatch fed %d updates, want 5", fed)
	}
}

// TestReorderGapTimeoutRelease drives the skew bound end to end: a missing
// seqno blocks its variable's release until the flusher declares the gap
// lost, then the buffered successors release in order and the loss shows
// up on the gap_loss counter — the paper's loss model, enforced by clock.
func TestReorderGapTimeoutRelease(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var fed []int64
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		Metrics:      reg,
		ReorderDepth: 8,
		ReorderSkew:  20 * time.Millisecond,
		Dispatch: func(v event.VarName, us []event.Update) {
			mu.Lock()
			for _, u := range us {
				fed = append(fed, u.SeqNo)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	scratch := make([]event.Update, 0, 4)
	for _, s := range []int64{2, 3} { // seqno 1 never arrives
		frame, err := wire.EncodeUpdate(event.U("x", s, float64(s)))
		if err != nil {
			t.Fatal(err)
		}
		scratch = recv.handleDatagram(0, frame, scratch)
	}
	mu.Lock()
	if len(fed) != 0 {
		t.Fatalf("released %v before the gap resolved", fed)
	}
	mu.Unlock()
	if recv.ReorderPending() != 2 {
		t.Fatalf("ReorderPending = %d, want 2", recv.ReorderPending())
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(fed)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gap never timed out: released %d of 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if fed[0] != 2 || fed[1] != 3 {
		t.Fatalf("released %v, want [2 3]", fed)
	}
	if got := reg.Counter("transport.recv.reorder.gap_loss").Value(); got != 1 {
		t.Errorf("gap_loss = %d, want 1 (seqno 1)", got)
	}
	if got := reg.Counter("transport.recv.reorder.released").Value(); got != 2 {
		t.Errorf("reorder.released = %d, want 2", got)
	}
	if got := reg.Counter("transport.recv.accepted").Value(); got != 2 {
		t.Errorf("accepted = %d, want 2", got)
	}
}

// TestReorderDispatchAllocs pins the multipath hot path at the PR 7 ~0
// band: with warm lanes, a pooled release slice, and preallocated ring
// slots, handling batch datagrams that arrive out of order at frame
// granularity (adjacent frames swapped — exactly what cross-socket
// striping produces) allocates nothing: every odd call buffers a frame,
// every even call releases two frames' worth in restored order.
func TestReorderDispatchAllocs(t *testing.T) {
	var got int64
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ReorderDepth: 32,
		ReorderSkew:  time.Second, // flusher idles during the measurement
		Dispatch:     func(v event.VarName, us []event.Update) { got += int64(len(us)) },
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	const runs = 200
	const perFrame = 16
	frames := make([][]byte, runs+4) // AllocsPerRun runs the body runs+1 times
	seq := int64(0)
	for i := range frames {
		us := make([]event.Update, perFrame)
		for j := range us {
			seq++
			us[j] = event.U("x", seq, float64(j))
		}
		frame, err := wire.EncodeBatch("x", us)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = frame
	}
	// Arrival order: frame 0 warms the lane, then every adjacent pair
	// arrives swapped (2, 1, 4, 3, ...).
	feed := make([]int, 0, runs+2)
	for k := 1; len(feed) < runs+2; k += 2 {
		feed = append(feed, k+1, k)
	}
	scratch := make([]event.Update, 0, perFrame)
	scratch = recv.handleDatagram(0, frames[0], scratch) // warm the lane
	next := 0
	if avg := testing.AllocsPerRun(runs, func() {
		scratch = recv.handleDatagram(0, frames[feed[next]], scratch)
		next++
	}); avg != 0 {
		t.Errorf("reorder dispatch path allocates %.1f per datagram, want 0", avg)
	}
	if got == 0 {
		t.Fatal("dispatch never fed: the measurement exercised nothing")
	}
}
