//go:build !linux || mips || mipsle || mips64 || mips64le

package transport

import (
	"fmt"
	"net"
)

// reusePortAvailable is false here: without SO_REUSEPORT (or where the
// syscall constant is unknown), ListenUDPGroup falls back to a single
// socket with identical acceptance semantics — only the kernel-side
// load-balancing is lost.
const reusePortAvailable = false

// listenUDPReusePort is never reached when reusePortAvailable is false;
// it exists so the group path compiles on every platform.
func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	return nil, fmt.Errorf("transport: SO_REUSEPORT unsupported on this platform (%q)", addr)
}
