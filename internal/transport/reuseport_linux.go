//go:build linux && !mips && !mipsle && !mips64 && !mips64le

package transport

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// reusePortAvailable reports whether this platform supports binding a
// group of UDP sockets to one port via SO_REUSEPORT. On Linux the kernel
// load-balances datagrams across the group by 4-tuple hash — the property
// ListenUDPGroup builds on.
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT on Linux. The syscall package's frozen API
// predates the option (kernel 3.9), so spell the constant out; it is 15 on
// every Linux port except the MIPS family, which the build tag excludes.
const soReusePort = 0xf

// listenUDPReusePort binds one UDP socket to addr with SO_REUSEPORT set
// before bind, so further sockets can join the same port.
func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("transport: listen %q: unexpected conn type %T", addr, pc)
	}
	return conn, nil
}
