package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
	"condmon/internal/runtime"
	"condmon/internal/wire"
)

// ingestConds is the mixed condition fleet the equivalence runs monitor —
// every evaluation strategy, one- and two-variable conditions.
func ingestConds() []cond.Condition {
	return []cond.Condition{
		cond.Threshold{CondName: "hot", Var: "x", Limit: 700, Above: true},
		cond.NewRiseAggressive("x"),
		cond.NewTempDiff("x", "y"),
		cond.MustParse("jump", "x[0] - x[-1] > 300 && consecutive(x)"),
		cond.GreaterThan{CondName: "A", X: "x", Y: "y"},
	}
}

var ingestVars = []event.VarName{"x", "y"}

// ingestStream is a deterministic sawtooth with a different phase per
// variable so every condition fires sometimes but not always.
func ingestStream(v event.VarName, n int) []event.Update {
	phase := int(hashVarName(v) % 37)
	out := make([]event.Update, n)
	for i := range out {
		out[i] = event.U(v, int64(i+1), float64(((i+phase)*13)%1000))
	}
	return out
}

// ingestMode selects the plane under test.
type ingestMode struct {
	sockets  int  // receive group width (and publisher sender lanes)
	dispatch bool // direct shard dispatch vs the Updates channel

	// Multipath legs: striped publishing over a reorder-buffered receiver,
	// with adversarial arrival schedules layered on top.
	stripe       bool // round-robin datagrams across sender lanes
	reorderDepth int  // receiver reorder ring depth (0 = pinned path)
	permute      bool // send each chunk's updates as single datagrams, shuffled
	dup          bool // replay a few updates of every chunk
}

// runIngest drives one fixed stream through a real loopback UDP hop in the
// given mode — publisher sender lanes, receiver socket group, forced loss,
// then a MultiSystem via Inject — and returns the per-condition displayed
// sequences. It waits for every sent update to be accounted for (accepted,
// discarded, or force-dropped) before closing, and fails on overruns, so a
// kernel-dropped datagram surfaces as a timeout rather than silent
// truncation.
func runIngest(t *testing.T, lossFor func(v event.VarName) link.Model, mode ingestMode) map[string][]event.Alert {
	t.Helper()
	conds := ingestConds()
	sys, err := runtime.NewMulti(conds, func(c cond.Condition) ad.Filter {
		return ad.NewAD1()
	}, runtime.MultiOptions{Replicas: 2, Seed: 42})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	reg := obs.NewRegistry()
	var injectErr atomic.Value
	opts := UDPReceiverOptions{
		LossFor: lossFor,
		Seed:    99,
		Metrics: reg,
	}
	if mode.reorderDepth > 0 {
		opts.ReorderDepth = mode.reorderDepth
		// A skew far beyond the lockstep round-trip: gap release must never
		// fire in these runs — every seqno eventually arrives, so the ring
		// alone restores order and the displayed streams stay byte-identical.
		opts.ReorderSkew = 2 * time.Second
	}
	if mode.dispatch {
		opts.Dispatch = func(v event.VarName, us []event.Update) {
			if err := sys.InjectBatch(v, us); err != nil {
				injectErr.Store(err)
			}
		}
	}
	recv, err := ListenUDPGroup("127.0.0.1:0", mode.sockets, opts)
	if err != nil {
		t.Fatalf("ListenUDPGroup: %v", err)
	}
	var consumerDone chan struct{}
	if !mode.dispatch {
		consumerDone = make(chan struct{})
		go func() {
			defer close(consumerDone)
			for u := range recv.Updates() {
				if err := sys.Inject(u); err != nil {
					injectErr.Store(err)
				}
			}
		}()
	}
	pub, err := NewUDPPublisherOpts(UDPPublisherOptions{Senders: mode.sockets, Stripe: mode.stripe}, recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisherOpts: %v", err)
	}

	// Lockstep publishing: wait for every update of a chunk to be accounted
	// for (accepted, discarded, or force-dropped) before sending the next.
	// Acceptance is counted after the dispatch callback (or channel send —
	// and the single channel consumer injects in FIFO order) returns, so
	// this fixes the cross-variable frame order each shard observes,
	// independent of socket count — two-variable conditions are
	// interleaving-sensitive, and only the interleaving the test controls
	// may vary between the modes under comparison.
	const n, chunk = 400, 16
	accepted := reg.Counter("transport.recv.accepted")
	overrun := reg.Counter("transport.recv.overrun")
	sent := 0
	waitAccounted := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			d, f := recv.Stats()
			if accepted.Value()+d+f == int64(sent) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("ingest incomplete: accepted=%d discarded=%d forced=%d, want total %d (loopback drop?)",
					accepted.Value(), d, f, sent)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	streams := map[event.VarName][]event.Update{}
	for _, v := range ingestVars {
		streams[v] = ingestStream(v, n)
	}
	// Deterministic per-leg arrival schedule for the permute/dup modes; the
	// point of the equivalence matrix is that the displayed streams do NOT
	// depend on this seed.
	rng := rand.New(rand.NewSource(int64(1000*mode.sockets + 7)))
	for i := 0; i < n; i += chunk {
		for _, v := range ingestVars {
			us := streams[v]
			j := i + chunk
			if j > len(us) {
				j = len(us)
			}
			switch {
			case mode.permute || mode.dup:
				// Adversarial multipath arrivals: every update of the chunk
				// travels as its own datagram (so striping scatters them
				// across sockets), shuffled within the chunk when permuting,
				// with a couple of replayed updates when duplicating.
				run := us[i:j]
				order := rng.Perm(len(run))
				if !mode.permute {
					for k := range order {
						order[k] = k
					}
				}
				for _, k := range order {
					if err := pub.Publish(run[k]); err != nil {
						t.Fatalf("Publish: %v", err)
					}
				}
				sent += len(run)
				if mode.dup {
					for _, k := range []int{0, len(run) - 1} {
						if err := pub.Publish(run[k]); err != nil {
							t.Fatalf("Publish (dup): %v", err)
						}
						sent++
					}
				}
			default:
				if err := pub.PublishBatch(v, us[i:j]); err != nil {
					t.Fatalf("PublishBatch: %v", err)
				}
				sent += j - i
			}
			waitAccounted()
		}
	}
	if v := overrun.Value(); v != 0 {
		t.Fatalf("receiver overran %d updates; the equivalence run must be lossless past acceptance", v)
	}
	pub.Close()
	recv.Close()
	if consumerDone != nil {
		<-consumerDone
	}
	if _, err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err, _ := injectErr.Load().(error); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	out := make(map[string][]event.Alert, len(conds))
	for _, c := range conds {
		out[c.Name()] = sys.Demux().DisplayedFor(c.Name())
	}
	return out
}

// compareIngest asserts got matches want per condition: same alerts, same
// values, same order.
func compareIngest(t *testing.T, label string, want, got map[string][]event.Alert) {
	t.Helper()
	for condName, wantAlerts := range want {
		gotAlerts := got[condName]
		if len(gotAlerts) != len(wantAlerts) {
			t.Fatalf("%s cond=%q: displayed %d alerts, want %d",
				label, condName, len(gotAlerts), len(wantAlerts))
		}
		for i := range wantAlerts {
			w, g := wantAlerts[i], gotAlerts[i]
			if w.Key() != g.Key() || !w.Histories.Equal(g.Histories) {
				t.Fatalf("%s cond=%q alert %d: got %v, want %v",
					label, condName, i, g, w)
			}
		}
	}
}

// TestIngestEquivalence is the acceptance gate for the parallel ingest
// plane: for every loss schedule, the per-condition displayed alert
// sequences must be identical between single-socket channel mode (the
// pre-group baseline) and N-socket direct-dispatch mode. Loss randomness
// is drawn per variable in arrival order, so the schedule a variable sees
// is independent of socket count and kernel hashing — that invariant is
// exactly what this test pins.
func TestIngestEquivalence(t *testing.T) {
	bern := func(p float64) link.Model {
		m, err := link.NewBernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	schedules := map[string]func(v event.VarName) link.Model{
		"lossless": nil,
		"bernoulli": func(v event.VarName) link.Model {
			return bern(0.2)
		},
		"burst": func(v event.VarName) link.Model {
			m, err := link.NewBurst(0.1, 0.5, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"mixed": func(v event.VarName) link.Model {
			if v == "x" {
				return bern(0.3)
			}
			return nil
		},
	}
	for name, loss := range schedules {
		t.Run(name, func(t *testing.T) {
			want := runIngest(t, loss, ingestMode{sockets: 1})
			compareIngest(t, "1-socket/dispatch", want,
				runIngest(t, loss, ingestMode{sockets: 1, dispatch: true}))
			for _, sockets := range []int{4, 8} {
				got := runIngest(t, loss, ingestMode{sockets: sockets, dispatch: true})
				compareIngest(t, fmt.Sprintf("%d-socket/dispatch", sockets), want, got)
			}
		})
	}
}

// TestUDPGroupSocketCounters checks the per-socket gauges exist and sum to
// the datagram total, and that Sockets reports the real group width
// (post-fallback on non-Linux platforms).
func TestUDPGroupSocketCounters(t *testing.T) {
	reg := obs.NewRegistry()
	recv, err := ListenUDPGroup("127.0.0.1:0", 4, UDPReceiverOptions{Metrics: reg})
	if err != nil {
		t.Fatalf("ListenUDPGroup: %v", err)
	}
	defer recv.Close()
	if reusePortAvailable && recv.Sockets() != 4 {
		t.Fatalf("Sockets() = %d, want 4", recv.Sockets())
	}
	if !reusePortAvailable && recv.Sockets() != 1 {
		t.Fatalf("Sockets() = %d, want 1 after fallback", recv.Sockets())
	}
	pub, err := NewUDPPublisherOpts(UDPPublisherOptions{Senders: 4}, recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisherOpts: %v", err)
	}
	defer pub.Close()
	const vars, perVar = 16, 5
	for i := 0; i < vars; i++ {
		v := event.VarName(fmt.Sprintf("v%02d", i))
		for s := int64(1); s <= perVar; s++ {
			if err := pub.Publish(event.U(v, s, float64(s))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
	}
	accepted := reg.Counter("transport.recv.accepted")
	deadline := time.Now().Add(10 * time.Second)
	for accepted.Value() < vars*perVar {
		if time.Now().After(deadline) {
			t.Fatalf("accepted = %d, want %d", accepted.Value(), vars*perVar)
		}
		time.Sleep(time.Millisecond)
	}
	var perSock int64
	for i := 0; i < recv.Sockets(); i++ {
		perSock += reg.Counter(fmt.Sprintf("transport.recv.%d.datagrams", i)).Value()
	}
	if perSock != vars*perVar {
		t.Fatalf("per-socket datagram counters sum to %d, want %d", perSock, vars*perVar)
	}
}

// TestUDPReceiverConcurrentStatsReaders is the -race gate for the
// satellite fix: Stats and LastOrigin are lock-free atomic reads, so
// readers hammering them concurrently with live traffic must neither race
// nor stall the read loops.
func TestUDPReceiverConcurrentStatsReaders(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		ForcedLoss: link.Bernoulli{P: 0.3},
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	pub, err := NewUDPPublisher(recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisher: %v", err)
	}
	tr := obs.NewTracer(64)
	pub.SetTrace(tr, "DM") // annotated frames exercise lastOrigin stores

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recv.Stats()
				recv.LastOrigin("x")
			}
		}()
	}
	wg.Add(1)
	go func() { // drain so the channel never overruns
		defer wg.Done()
		for range recv.Updates() {
		}
	}()

	us := ingestStream("x", 500)
	for i := 0; i < len(us); i += 20 {
		if err := pub.PublishBatch("x", us[i:i+20]); err != nil {
			t.Fatalf("PublishBatch: %v", err)
		}
	}
	// Wait until forced loss and an annotated origin have both been
	// observed, so the readers raced live stores, not a quiet receiver.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, f := recv.Stats()
		if f > 0 && recv.LastOrigin("x") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no forced loss or origin observed (forced=%d origin=%d)", f, recv.LastOrigin("x"))
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	pub.Close()
	recv.Close()
	wg.Wait()
}

// TestReceiveDispatchAllocs pins the receive hot path: with warm variable
// lanes and a reused scratch, handling a batch datagram in dispatch mode
// allocates nothing — no per-datagram buffers, no string conversions, no
// map growth.
func TestReceiveDispatchAllocs(t *testing.T) {
	var got int64
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{
		Dispatch: func(v event.VarName, us []event.Update) { got += int64(len(us)) },
	})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()

	const runs = 200
	const perFrame = 16
	frames := make([][]byte, runs+2) // AllocsPerRun runs the body runs+1 times
	seq := int64(0)
	for i := range frames {
		us := make([]event.Update, perFrame)
		for j := range us {
			seq++
			us[j] = event.U("x", seq, float64(j))
		}
		frame, err := wire.EncodeBatch("x", us)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = frame
	}
	scratch := make([]event.Update, 0, perFrame)
	scratch = recv.handleDatagram(0, frames[len(frames)-1], scratch) // warm the lane
	next := 0
	if avg := testing.AllocsPerRun(runs, func() {
		scratch = recv.handleDatagram(0, frames[next], scratch)
		next++
	}); avg != 0 {
		t.Errorf("dispatch receive path allocates %.1f per datagram, want 0", avg)
	}
}

// TestMaxDatagramClamp pins the satellite publisher option: the split
// budget is resolved once at construction and clamps to [512B, 64KB].
func TestMaxDatagramClamp(t *testing.T) {
	recv, err := ListenUDP("127.0.0.1:0", UDPReceiverOptions{})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer recv.Close()
	for _, tc := range []struct {
		give, want int
	}{
		{0, maxDatagram},
		{-5, maxDatagram},
		{100, minDatagram},
		{2048, 2048},
		{1 << 20, maxDatagram},
	} {
		pub, err := NewUDPPublisherOpts(UDPPublisherOptions{MaxDatagram: tc.give}, recv.Addr())
		if err != nil {
			t.Fatalf("NewUDPPublisherOpts(MaxDatagram=%d): %v", tc.give, err)
		}
		if pub.MaxDatagram() != tc.want {
			t.Errorf("MaxDatagram(%d) clamps to %d, want %d", tc.give, pub.MaxDatagram(), tc.want)
		}
		pub.Close()
	}

	// A small budget actually splits: 20 updates at ~16B each can't fit one
	// 512B datagram alongside the header, so the receiver must see several
	// datagrams while accepting every update in order.
	pub, err := NewUDPPublisherOpts(UDPPublisherOptions{MaxDatagram: 512}, recv.Addr())
	if err != nil {
		t.Fatalf("NewUDPPublisherOpts: %v", err)
	}
	defer pub.Close()
	us := ingestStream("split", 64)
	if err := pub.PublishBatch("split", us); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	got := collect(t, recv, len(us), 5*time.Second)
	if len(got) != len(us) {
		t.Fatalf("received %d updates, want %d", len(got), len(us))
	}
	for i, u := range got {
		if u.SeqNo != us[i].SeqNo {
			t.Fatalf("update %d arrived with seq %d, want %d", i, u.SeqNo, us[i].SeqNo)
		}
	}
}
