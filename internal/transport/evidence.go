package transport

// The audit evidence path over the wire: DMs publish CRC-framed prefix
// digests of their emitted update sequences ('G' frames) alongside the
// update stream, and CEs running with -audit forward them over the back
// links so an AD-side auditor can cross-check displayed values against
// what the source actually emitted. Evidence frames are a new optional
// frame kind — decoders that predate the tag drop them whole (front links)
// or reset the stream (back links), which is why every hop is opt-in.

import (
	"fmt"

	"condmon/internal/wire"
)

// evidenceBuffer sizes the decoded-evidence channels. Evidence frames are
// periodic digests, orders of magnitude rarer than updates; a shallow
// buffer absorbs consumer jitter and overflow drops are survivable by
// design (the next frame's tail re-covers the lost one).
const evidenceBuffer = 256

// PublishEvidence multicasts one evidence frame to every CE endpoint on
// the variable's pinned sender lane. Like Publish, per-endpoint send
// errors are ignored: evidence rides the same lossy front links as the
// updates it attests, and the overlapping tails of consecutive frames make
// individual losses survivable.
func (p *UDPPublisher) PublishEvidence(e wire.Evidence) error {
	s := p.senderFor(e.Var)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := wire.AppendEvidence(s.buf[:0], e)
	if err != nil {
		return err
	}
	if len(b) > p.maxDg {
		return fmt.Errorf("transport: evidence frame of %d bytes exceeds datagram bound", len(b))
	}
	s.buf = b
	for _, c := range s.conns {
		_, _ = c.Write(b) // best-effort: loss is part of the model
	}
	p.cDatagrams.Add(int64(len(s.conns)))
	return nil
}

// Evidence returns the stream of decoded DM evidence frames. Frames nobody
// consumes are dropped rather than backpressuring the read loops. The
// channel closes when the receiver is closed.
func (r *UDPReceiver) Evidence() <-chan wire.Evidence { return r.evidence }

// SendEvidence forwards one evidence frame over the back link as a
// length-prefixed frame — how a CE relays DM digests to the AD-side
// auditor. Like Send, it returns the wrapped runtime.ErrClosed sentinel
// after Close.
func (s *TCPSender) SendEvidence(e wire.Evidence) error {
	body, err := wire.AppendEvidence(nil, e)
	if err != nil {
		return err
	}
	return s.sendFrame(body)
}

// Evidence returns the stream of evidence frames forwarded by CEs. The
// channel closes with the listener.
func (l *ADListener) Evidence() <-chan wire.Evidence { return l.evs }
