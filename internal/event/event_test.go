package event

import (
	"math/rand"
	"testing"
	"testing/quick"

	"condmon/internal/seq"
)

func TestUpdateString(t *testing.T) {
	u := U("x", 7, 3000)
	if got, want := u.String(), "7x(3000)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSeqNosProjection(t *testing.T) {
	// Π_x⟨2x,6y,1y,3x⟩ = ⟨2,3⟩ and Π_y = ⟨6,1⟩ from Section 2.2.
	stream := []Update{U("x", 2, 0), U("y", 6, 0), U("y", 1, 0), U("x", 3, 0)}
	if got := SeqNos(stream, "x"); !got.Equal(seq.Seq{2, 3}) {
		t.Errorf("Πx = %v, want ⟨2,3⟩", got)
	}
	if got := SeqNos(stream, "y"); !got.Equal(seq.Seq{6, 1}) {
		t.Errorf("Πy = %v, want ⟨6,1⟩", got)
	}
	if got := SeqNos(stream, ""); !got.Equal(seq.Seq{2, 6, 1, 3}) {
		t.Errorf("Π (all vars) = %v, want ⟨2,6,1,3⟩", got)
	}
}

func TestVars(t *testing.T) {
	stream := []Update{U("y", 1, 0), U("x", 1, 0), U("y", 2, 0)}
	got := Vars(stream)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Vars = %v, want [x y]", got)
	}
}

func TestWindowPushAndHistory(t *testing.T) {
	w, err := NewWindow("x", 2)
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	if w.Full() {
		t.Error("fresh window should not be full")
	}
	if err := w.Push(U("x", 5, 100)); err != nil {
		t.Fatalf("Push(5x): %v", err)
	}
	if w.Full() {
		t.Error("window of degree 2 with one update should not be full")
	}
	if err := w.Push(U("x", 7, 200)); err != nil {
		t.Fatalf("Push(7x): %v", err)
	}
	if !w.Full() {
		t.Error("window should be full after two pushes")
	}

	// Section 2: immediately after 7x arrives, Hx[0] = 7x and Hx[-1] = 5x
	// (6x was lost).
	h := w.History()
	if got := h.Latest(); got.SeqNo != 7 {
		t.Errorf("Hx[0] = %v, want seqno 7", got)
	}
	prev, ok := h.At(-1)
	if !ok || prev.SeqNo != 5 {
		t.Errorf("Hx[-1] = %v (ok=%v), want seqno 5", prev, ok)
	}
	if _, ok := h.At(-2); ok {
		t.Error("Hx[-2] should be out of range for a degree-2 window")
	}
	if h.Consecutive() {
		t.Error("window ⟨7,5⟩ should not be consecutive")
	}
	if got := h.SeqNosAscending(); !got.Equal(seq.Seq{5, 7}) {
		t.Errorf("SeqNosAscending = %v, want ⟨5,7⟩", got)
	}
}

func TestWindowEviction(t *testing.T) {
	w, err := NewWindow("x", 2)
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	for i := int64(1); i <= 4; i++ {
		if err := w.Push(U("x", i, float64(i))); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	h := w.History()
	if got := h.SeqNosAscending(); !got.Equal(seq.Seq{3, 4}) {
		t.Errorf("after pushes 1..4, window = %v, want ⟨3,4⟩", got)
	}
	if !h.Consecutive() {
		t.Error("window ⟨3,4⟩ should be consecutive")
	}
}

func TestWindowRejectsBadPushes(t *testing.T) {
	w, err := NewWindow("x", 1)
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	if err := w.Push(U("y", 1, 0)); err == nil {
		t.Error("Push of wrong variable should fail")
	}
	if err := w.Push(U("x", 3, 0)); err != nil {
		t.Fatalf("Push(3x): %v", err)
	}
	if err := w.Push(U("x", 3, 0)); err == nil {
		t.Error("Push of duplicate seqno should fail")
	}
	if err := w.Push(U("x", 2, 0)); err == nil {
		t.Error("Push of smaller seqno should fail")
	}
}

func TestWindowReset(t *testing.T) {
	w, err := NewWindow("x", 1)
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	if err := w.Push(U("x", 1, 0)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	w.Reset()
	if w.Full() || w.Len() != 0 {
		t.Error("Reset should empty the window")
	}
	// After a crash the CE may legitimately see a smaller seqno than any it
	// had before the crash... it cannot (front links are in-order per link,
	// and the DM's counter only grows), but the window itself must accept a
	// fresh stream after Reset.
	if err := w.Push(U("x", 5, 0)); err != nil {
		t.Errorf("Push after Reset: %v", err)
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow("x", 0); err == nil {
		t.Error("NewWindow with degree 0 should fail")
	}
	if _, err := NewWindow("x", -1); err == nil {
		t.Error("NewWindow with negative degree should fail")
	}
}

func alertOn(cond string, hists ...History) Alert {
	hs := make(HistorySet, len(hists))
	for _, h := range hists {
		hs[h.Var] = h
	}
	return Alert{Cond: cond, Histories: hs}
}

func histOf(v VarName, seqNos ...int64) History {
	h := History{Var: v}
	for _, n := range seqNos {
		h.Recent = append(h.Recent, U(v, n, float64(n)))
	}
	return h
}

func TestAlertSeqNoAndKey(t *testing.T) {
	// The AD-1 example from Section 3: a1 triggered on 2x,3x while a2
	// triggered on 1x,3x. Both have a.seqno.x = 3 but are not identical.
	a1 := alertOn("c", histOf("x", 3, 2))
	a2 := alertOn("c", histOf("x", 3, 1))
	if n := a1.MustSeqNo("x"); n != 3 {
		t.Errorf("a1.seqno.x = %d, want 3", n)
	}
	if n := a2.MustSeqNo("x"); n != 3 {
		t.Errorf("a2.seqno.x = %d, want 3", n)
	}
	if a1.Key() == a2.Key() {
		t.Error("alerts with different histories must have different keys")
	}
	if a1.Key() != alertOn("c", histOf("x", 3, 2)).Key() {
		t.Error("alerts with equal histories must have equal keys")
	}
	if _, ok := a1.SeqNo("y"); ok {
		t.Error("SeqNo of a variable outside the alert's set should report !ok")
	}
}

func TestAlertKeyDistinguishesConditions(t *testing.T) {
	a := alertOn("c1", histOf("x", 1))
	b := alertOn("c2", histOf("x", 1))
	if a.Key() == b.Key() {
		t.Error("alerts for different conditions must have different keys")
	}
}

func TestAlertString(t *testing.T) {
	a := alertOn("cm", histOf("x", 2), histOf("y", 1))
	if got, want := a.String(), "a(2x,1y)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHistorySetEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b HistorySet
		want bool
	}{
		{
			name: "equal",
			a:    HistorySet{"x": histOf("x", 3, 2)},
			b:    HistorySet{"x": histOf("x", 3, 2)},
			want: true,
		},
		{
			name: "different seqnos",
			a:    HistorySet{"x": histOf("x", 3, 2)},
			b:    HistorySet{"x": histOf("x", 3, 1)},
			want: false,
		},
		{
			name: "different vars",
			a:    HistorySet{"x": histOf("x", 3)},
			b:    HistorySet{"y": histOf("y", 3)},
			want: false,
		},
		{
			name: "different sizes",
			a:    HistorySet{"x": histOf("x", 3)},
			b:    HistorySet{"x": histOf("x", 3), "y": histOf("y", 1)},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHistorySetEqualComparesValues(t *testing.T) {
	a := HistorySet{"x": {Var: "x", Recent: []Update{U("x", 1, 10)}}}
	b := HistorySet{"x": {Var: "x", Recent: []Update{U("x", 1, 20)}}}
	if a.Equal(b) {
		t.Error("history sets with different values should not be equal")
	}
}

func TestAlertSeqNosProjection(t *testing.T) {
	alerts := []Alert{
		alertOn("c", histOf("x", 2), histOf("y", 1)),
		alertOn("c", histOf("x", 1), histOf("y", 2)),
	}
	if got := AlertSeqNos(alerts, "x"); !got.Equal(seq.Seq{2, 1}) {
		t.Errorf("ΠxA = %v, want ⟨2,1⟩", got)
	}
	if got := AlertSeqNos(alerts, "y"); !got.Equal(seq.Seq{1, 2}) {
		t.Errorf("ΠyA = %v, want ⟨1,2⟩", got)
	}
}

func TestKeySetOps(t *testing.T) {
	a := []Alert{alertOn("c", histOf("x", 1)), alertOn("c", histOf("x", 2))}
	b := []Alert{alertOn("c", histOf("x", 2)), alertOn("c", histOf("x", 1))}
	c := []Alert{alertOn("c", histOf("x", 1))}
	if !KeySetEqual(a, b) {
		t.Error("ΦA should equal ΦB regardless of order")
	}
	if KeySetEqual(a, c) {
		t.Error("ΦA should not equal ΦC")
	}
	if !KeySetSubset(c, a) {
		t.Error("ΦC should be a subset of ΦA")
	}
	if KeySetSubset(a, c) {
		t.Error("ΦA should not be a subset of ΦC")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := alertOn("c", histOf("x", 3, 2))
	b := a.Clone()
	b.Histories["x"].Recent[0] = U("x", 9, 0)
	if a.Histories["x"].Recent[0].SeqNo != 3 {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestQuickWindowMatchesNaive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64, degIn uint8) bool {
		r := rand.New(rand.NewSource(seed))
		degree := int(degIn%4) + 1
		w, err := NewWindow("x", degree)
		if err != nil {
			return false
		}
		var pushed []Update
		next := int64(0)
		for i := 0; i < 12; i++ {
			next += int64(1 + r.Intn(3))
			u := U("x", next, float64(r.Intn(100)))
			if err := w.Push(u); err != nil {
				return false
			}
			pushed = append(pushed, u)
			// Naive reference: the last min(degree, len) pushes, newest first.
			h := w.History()
			n := len(pushed)
			k := degree
			if n < k {
				k = n
			}
			if len(h.Recent) != k {
				return false
			}
			for j := 0; j < k; j++ {
				if h.Recent[j] != pushed[n-1-j] {
					return false
				}
			}
			if w.Full() != (n >= degree) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("window does not match naive model: %v", err)
	}
}

// TestWindowGrow verifies in-place widening: contents survive, the new
// capacity fills before old entries fall off, and shrinking is a no-op.
func TestWindowGrow(t *testing.T) {
	w, err := NewWindow("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Push(U("x", 1, 10))
	w.Push(U("x", 2, 20))
	if !w.Full() {
		t.Fatal("degree-2 window not full after 2 pushes")
	}
	w.Grow(4)
	if w.Degree() != 4 {
		t.Fatalf("Degree() = %d after Grow(4)", w.Degree())
	}
	if w.Full() {
		t.Error("window reports full immediately after growing")
	}
	h := w.History()
	if len(h.Recent) != 2 || h.Recent[0].SeqNo != 2 || h.Recent[1].SeqNo != 1 {
		t.Fatalf("contents not preserved across Grow: %v", h)
	}
	w.Push(U("x", 3, 30))
	w.Push(U("x", 4, 40))
	if !w.Full() {
		t.Error("grown window not full after reaching new degree")
	}
	got := w.History().SeqNosAscending()
	want := seq.Seq{1, 2, 3, 4}
	if !got.Equal(want) {
		t.Errorf("grown window holds %v, want %v", got, want)
	}
	// Shrinking is a no-op.
	w.Grow(1)
	if w.Degree() != 4 || w.Len() != 4 {
		t.Errorf("Grow(1) shrank the window: degree=%d len=%d", w.Degree(), w.Len())
	}
}

// TestWindowHistoryPrefix pins the per-member view of a shared window: the
// prefix of length d must equal the history a private degree-d window
// would hold, and must be an independent snapshot.
func TestWindowHistoryPrefix(t *testing.T) {
	shared, _ := NewWindow("x", 3)
	private, _ := NewWindow("x", 2)
	for i := int64(1); i <= 5; i++ {
		u := U("x", i, float64(i*10))
		shared.Push(u)
		private.Push(u)
	}
	got := shared.HistoryPrefix(2)
	want := private.History()
	if len(got.Recent) != len(want.Recent) {
		t.Fatalf("prefix length %d, want %d", len(got.Recent), len(want.Recent))
	}
	for i := range want.Recent {
		if got.Recent[i] != want.Recent[i] {
			t.Fatalf("prefix[%d] = %v, want %v", i, got.Recent[i], want.Recent[i])
		}
	}
	// Clamped when the window holds fewer than d updates.
	short, _ := NewWindow("y", 5)
	short.Push(U("y", 1, 1))
	if h := short.HistoryPrefix(3); len(h.Recent) != 1 {
		t.Errorf("prefix of short window has %d entries, want 1", len(h.Recent))
	}
	// Snapshot independence: later pushes must not show through.
	before := got.Recent[0].SeqNo
	shared.Push(U("x", 6, 60))
	if got.Recent[0].SeqNo != before {
		t.Error("HistoryPrefix aliases window storage")
	}
}
