// Package event defines the data model of Section 2 of the paper: data
// updates u(varname, seqno, value), per-variable update histories Hx, and
// alerts a(condname, histories). Everything that flows between Data
// Monitors, Condition Evaluators and Alert Displayers is built from these
// types.
package event

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"condmon/internal/seq"
)

// VarName identifies a monitored real-world variable, e.g. "x" for a
// reactor's temperature sensor. Each Data Monitor tracks exactly one
// variable.
type VarName string

// Update is the tuple u(varname, seqno, value). SeqNo uniquely identifies
// this update within the variable's stream and consecutive updates from the
// same DM carry consecutive sequence numbers. Value is a full snapshot of
// the variable (never a delta), so an update remains useful even when its
// predecessor was lost.
type Update struct {
	Var   VarName
	SeqNo int64
	Value float64
}

// String renders an update in the paper's 7x(3000) notation.
func (u Update) String() string {
	return fmt.Sprintf("%d%s(%g)", u.SeqNo, u.Var, u.Value)
}

// U builds an update; it exists to keep scenario tables in tests compact.
func U(v VarName, seqNo int64, value float64) Update {
	return Update{Var: v, SeqNo: seqNo, Value: value}
}

// SeqNos returns Π_v(updates): the sequence numbers of v-updates in the
// given stream, in stream order. Passing the empty VarName projects every
// update (useful for single-variable systems, mirroring the paper's
// convention of omitting the variable when it is implied).
func SeqNos(updates []Update, v VarName) seq.Seq {
	var out seq.Seq
	for _, u := range updates {
		if v == "" || u.Var == v {
			out = append(out, u.SeqNo)
		}
	}
	return out
}

// Vars returns the distinct variable names appearing in the stream, sorted.
func Vars(updates []Update) []VarName {
	set := make(map[VarName]struct{})
	for _, u := range updates {
		set[u.Var] = struct{}{}
	}
	out := make([]VarName, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// History is Hx: the N most recently received updates of one variable,
// most recent first. Recent[0] is Hx[0], Recent[1] is Hx[-1], and so on.
type History struct {
	Var VarName
	// Recent holds the window most-recent-first.
	Recent []Update
}

// Degree returns the number of updates in the window (the paper's N).
func (h History) Degree() int { return len(h.Recent) }

// At returns Hx[i] for i ≤ 0; At(0) is the most recent update. It returns
// false when the window does not reach back that far.
func (h History) At(i int) (Update, bool) {
	idx := -i
	if i > 0 || idx >= len(h.Recent) {
		return Update{}, false
	}
	return h.Recent[idx], true
}

// Latest returns Hx[0]. It panics on an empty history, which never occurs
// for histories embedded in alerts (a CE only fires once its windows are
// full).
func (h History) Latest() Update {
	if len(h.Recent) == 0 {
		panic("event: Latest on empty history")
	}
	return h.Recent[0]
}

// SeqNosAscending returns the window's sequence numbers in increasing
// order, i.e. oldest first: ⟨Hx[-(N-1)].seqno, …, Hx[0].seqno⟩.
func (h History) SeqNosAscending() seq.Seq {
	out := make(seq.Seq, len(h.Recent))
	for i, u := range h.Recent {
		out[len(h.Recent)-1-i] = u.SeqNo
	}
	return out
}

// Consecutive reports whether the window's sequence numbers are
// consecutive. Conservative conditions evaluate to false whenever this
// fails (Section 2). The check runs directly over the window (Recent is
// most-recent-first) so the evaluation hot path never materializes a
// sequence.
func (h History) Consecutive() bool {
	for i := 0; i+1 < len(h.Recent); i++ {
		if h.Recent[i].SeqNo != h.Recent[i+1].SeqNo+1 {
			return false
		}
	}
	return true
}

// Clone deep-copies the history.
func (h History) Clone() History {
	out := History{Var: h.Var}
	if h.Recent != nil {
		out.Recent = make([]Update, len(h.Recent))
		copy(out.Recent, h.Recent)
	}
	return out
}

// String renders the history as ⟨3x,1x⟩ (most recent first), matching the
// paper's alert notation a.H = ⟨3x, 1x⟩.
func (h History) String() string {
	parts := make([]string, len(h.Recent))
	for i, u := range h.Recent {
		parts[i] = fmt.Sprintf("%d%s", u.SeqNo, u.Var)
	}
	return "⟨" + strings.Join(parts, ",") + "⟩"
}

// HistoryView is read-only access to per-variable update histories: the
// interface conditions evaluate against on the hot path. A live view (such
// as a CE's window set) may return histories that alias mutable storage;
// callers must not retain the returned History beyond the current
// evaluation. The immutable HistorySet implements HistoryView, so every
// view-based evaluator also works on materialized sets.
type HistoryView interface {
	// HistoryOf returns the history of v, or false when the view does not
	// track v.
	HistoryOf(v VarName) (History, bool)
}

// HistorySet is H: one update history per variable in the condition's
// variable set V.
type HistorySet map[VarName]History

// HistoryOf implements HistoryView.
func (hs HistorySet) HistoryOf(v VarName) (History, bool) {
	h, ok := hs[v]
	return h, ok
}

// Clone deep-copies the history set.
func (hs HistorySet) Clone() HistorySet {
	out := make(HistorySet, len(hs))
	for v, h := range hs {
		out[v] = h.Clone()
	}
	return out
}

// Vars returns the variables of the set in sorted order.
func (hs HistorySet) Vars() []VarName {
	out := make([]VarName, 0, len(hs))
	for v := range hs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two history sets cover the same variables with the
// same update windows (sequence numbers and values).
func (hs HistorySet) Equal(other HistorySet) bool {
	if len(hs) != len(other) {
		return false
	}
	for v, h := range hs {
		oh, ok := other[v]
		if !ok || len(h.Recent) != len(oh.Recent) {
			return false
		}
		for i := range h.Recent {
			if h.Recent[i] != oh.Recent[i] {
				return false
			}
		}
	}
	return true
}

// Alert is a(condname, histories): the notification a CE sends when its
// condition evaluates to true, carrying the update histories used in the
// evaluation so the AD can identify duplicates and conflicts.
type Alert struct {
	Cond      string
	Histories HistorySet
	// Source identifies the emitting CE ("CE1", "CE2", …). It is metadata
	// for diagnostics only and takes no part in alert identity.
	Source string
	// key caches the canonical identity (see Key). Alerts built through
	// NewAlert carry it precomputed so the AD filters never re-serialize
	// histories; zero-valued alerts compute it lazily on first use.
	key string
}

// NewAlert builds an alert with its canonical Key precomputed. The CE emits
// alerts through this constructor so that every downstream identity check
// (AD-1's duplicate map, AD-3's seen set) is a plain string hash instead of
// a history serialization.
func NewAlert(cond string, histories HistorySet, source string) Alert {
	a := Alert{Cond: cond, Histories: histories, Source: source}
	a.key = a.computeKey()
	return a
}

// SeqNo returns a.seqno.v = Hv[0].seqno, the sequence number of the last
// v-update received when the alert was triggered. The second result is
// false if the alert has no history for v.
func (a Alert) SeqNo(v VarName) (int64, bool) {
	h, ok := a.Histories[v]
	if !ok || len(h.Recent) == 0 {
		return 0, false
	}
	return h.Latest().SeqNo, true
}

// MustSeqNo is SeqNo for variables known to be in the alert's variable set.
func (a Alert) MustSeqNo(v VarName) int64 {
	n, ok := a.SeqNo(v)
	if !ok {
		panic(fmt.Sprintf("event: alert %s has no history for variable %q", a.Key(), v))
	}
	return n
}

// Key returns the canonical identity of the alert: its condition name plus
// the per-variable history sequence numbers. Two alerts are "identical" in
// the sense of Algorithm AD-1 exactly when their keys are equal (given a
// fixed DM stream, sequence numbers determine values). Keys are also what
// Φ ranges over in the completeness and consistency definitions.
//
// Alerts constructed with NewAlert return a precomputed key; hand-built
// alerts (tests, decoders) serialize on each call.
func (a Alert) Key() string {
	if a.key != "" {
		return a.key
	}
	return a.computeKey()
}

// computeKey serializes the canonical identity, e.g. "c2|x=⟨6,7⟩" (the
// window's sequence numbers ascending, matching seq.Seq's rendering).
func (a Alert) computeKey() string {
	b := make([]byte, 0, 64)
	b = append(b, a.Cond...)
	for _, v := range a.Histories.Vars() {
		b = append(b, '|')
		b = append(b, v...)
		b = append(b, '=')
		b = append(b, "⟨"...)
		recent := a.Histories[v].Recent
		for i := len(recent) - 1; i >= 0; i-- {
			b = strconv.AppendInt(b, recent[i].SeqNo, 10)
			if i > 0 {
				b = append(b, ',')
			}
		}
		b = append(b, "⟩"...)
	}
	return string(b)
}

// Clone deep-copies the alert. The cached key carries over: identity is
// derived from the histories, which the deep copy preserves.
func (a Alert) Clone() Alert {
	return Alert{Cond: a.Cond, Histories: a.Histories.Clone(), Source: a.Source, key: a.key}
}

// String renders the alert as a(2x,1y) in the paper's style, listing the
// latest sequence number per variable.
func (a Alert) String() string {
	vars := a.Histories.Vars()
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("%d%s", a.Histories[v].Latest().SeqNo, v)
	}
	return "a(" + strings.Join(parts, ",") + ")"
}

// AlertSeqNos returns Π_v(alerts): the sequence ⟨a.seqno.v | a ∈ alerts⟩.
// Alerts lacking a history for v are skipped.
func AlertSeqNos(alerts []Alert, v VarName) seq.Seq {
	var out seq.Seq
	for _, a := range alerts {
		if n, ok := a.SeqNo(v); ok {
			out = append(out, n)
		}
	}
	return out
}

// AlertKeys returns the canonical keys of the alerts in order.
func AlertKeys(alerts []Alert) []string {
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = a.Key()
	}
	return out
}

// KeySet returns Φ(alerts): the set of canonical alert keys.
func KeySet(alerts []Alert) map[string]struct{} {
	out := make(map[string]struct{}, len(alerts))
	for _, a := range alerts {
		out[a.Key()] = struct{}{}
	}
	return out
}

// KeySetEqual reports ΦA = ΦB on alert key sets.
func KeySetEqual(a, b []Alert) bool {
	ka, kb := KeySet(a), KeySet(b)
	if len(ka) != len(kb) {
		return false
	}
	for k := range ka {
		if _, ok := kb[k]; !ok {
			return false
		}
	}
	return true
}

// KeySetSubset reports ΦA ⊆ ΦB on alert key sets.
func KeySetSubset(a, b []Alert) bool {
	kb := KeySet(b)
	for _, al := range a {
		if _, ok := kb[al.Key()]; !ok {
			return false
		}
	}
	return true
}

// Window accumulates the update history of one variable at a CE: a ring of
// the `degree` most recently received updates. It is the stateful
// realization of Hx.
type Window struct {
	varName VarName
	degree  int
	// recent holds up to degree updates, most recent first.
	recent []Update
}

// NewWindow creates a window of the given degree (N ≥ 1) for variable v.
func NewWindow(v VarName, degree int) (*Window, error) {
	if degree < 1 {
		return nil, fmt.Errorf("event: window degree must be ≥ 1, got %d", degree)
	}
	return &Window{varName: v, degree: degree, recent: make([]Update, 0, degree)}, nil
}

// Var returns the variable the window tracks.
func (w *Window) Var() VarName { return w.varName }

// Push incorporates a newly received update as Hx[0], shifting older
// entries back and discarding the one that falls off the end. It rejects
// updates for the wrong variable and non-increasing sequence numbers (the
// front links deliver in order, so a well-formed CE never sees them).
func (w *Window) Push(u Update) error {
	if w.TryPush(u) {
		return nil
	}
	if u.Var != w.varName {
		return fmt.Errorf("event: window for %q received update for %q", w.varName, u.Var)
	}
	return fmt.Errorf("event: window for %q received out-of-order seqno %d after %d",
		w.varName, u.SeqNo, w.recent[0].SeqNo)
}

// TryPush is Push without the descriptive error: it reports whether the
// update was incorporated. The CE's hot path uses it so that discarding an
// out-of-order delivery stays allocation-free.
func (w *Window) TryPush(u Update) bool {
	if u.Var != w.varName {
		return false
	}
	if len(w.recent) > 0 && u.SeqNo <= w.recent[0].SeqNo {
		return false
	}
	if len(w.recent) < w.degree {
		w.recent = append(w.recent, Update{})
	}
	copy(w.recent[1:], w.recent)
	w.recent[0] = u
	return true
}

// Grow widens the window to the given degree in place, preserving the
// updates already held. Shared windows use it when a newly registered
// condition reads the same variable at a higher degree than any existing
// reader. Shrinking is not supported: a degree ≤ the current one is a
// no-op, so concurrent readers never observe history loss.
func (w *Window) Grow(degree int) {
	if degree <= w.degree {
		return
	}
	w.degree = degree
	if cap(w.recent) < degree {
		grown := make([]Update, len(w.recent), degree)
		copy(grown, w.recent)
		w.recent = grown
	}
}

// Degree returns the window's capacity (the paper's N).
func (w *Window) Degree() int { return w.degree }

// HistoryPrefix snapshots the most recent d updates as an immutable
// History. It is the per-member view of a shared window: a window sized to
// the maximum degree of its readers serves a degree-d reader exactly the
// history a private degree-d window would hold. d values beyond the
// current length are clamped.
func (w *Window) HistoryPrefix(d int) History {
	if d > len(w.recent) {
		d = len(w.recent)
	}
	h := History{Var: w.varName, Recent: make([]Update, d)}
	copy(h.Recent, w.recent[:d])
	return h
}

// Full reports whether the window holds `degree` updates. H is undefined —
// and the condition cannot be evaluated — until the window is full
// (Section 2: "when the system is just starting up…Hx is undefined").
func (w *Window) Full() bool { return len(w.recent) == w.degree }

// Len returns the number of updates currently held.
func (w *Window) Len() int { return len(w.recent) }

// History snapshots the window as an immutable History value.
func (w *Window) History() History {
	h := History{Var: w.varName, Recent: make([]Update, len(w.recent))}
	copy(h.Recent, w.recent)
	return h
}

// Live returns a zero-copy view of the window as a History. The returned
// History aliases the window's storage: it is valid only until the next
// Push or Reset, and callers must not retain or mutate it. The CE's
// snapshot-free evaluation path reads through Live; alerts still embed
// immutable History snapshots.
func (w *Window) Live() History {
	return History{Var: w.varName, Recent: w.recent}
}

// Reset discards all state, as when a CE crashes and restarts without
// stable storage.
func (w *Window) Reset() { w.recent = w.recent[:0] }

// Restore replaces the window's contents with updates read back from a
// durable checkpoint, given most recent first as History.Recent holds
// them. The updates must carry the window's variable, hold strictly
// decreasing sequence numbers, and fit the degree; on any violation the
// window is left empty and an error returned, so a damaged checkpoint
// degrades to the Reset (crash-without-storage) behavior rather than a
// corrupt history.
func (w *Window) Restore(recent []Update) error {
	w.recent = w.recent[:0]
	if len(recent) > w.degree {
		return fmt.Errorf("event: restore of %d updates exceeds window degree %d for %q",
			len(recent), w.degree, w.varName)
	}
	for i, u := range recent {
		if u.Var != w.varName {
			return fmt.Errorf("event: restore for %q holds update for %q", w.varName, u.Var)
		}
		if i > 0 && u.SeqNo >= recent[i-1].SeqNo {
			return fmt.Errorf("event: restore for %q not strictly decreasing at index %d", w.varName, i)
		}
	}
	w.recent = append(w.recent, recent...)
	return nil
}
