package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The /audit mount: a MuxOptions.Audit handler is served as-is, and the
// nil default keeps the endpoint present with an empty JSON object, so
// scrapers see a stable surface on audit-disabled daemons.
func TestMuxAuditMount(t *testing.T) {
	get := func(mux *http.ServeMux) (int, string, string) {
		t.Helper()
		srv := httptest.NewServer(mux)
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/audit")
		if err != nil {
			t.Fatalf("GET /audit: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get(NewMuxOpts(MuxOptions{}))
	if code != http.StatusOK {
		t.Fatalf("nil audit handler: status %d, want 200", code)
	}
	if ctype != "application/json" {
		t.Fatalf("nil audit handler: Content-Type %q", ctype)
	}
	if strings.TrimSpace(body) != "{}" {
		t.Fatalf("nil audit handler body = %q, want {}", body)
	}

	custom := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("audit-live"))
	})
	if _, _, body := get(NewMuxOpts(MuxOptions{Audit: custom})); body != "audit-live" {
		t.Fatalf("custom audit handler body = %q", body)
	}
}
