package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// The nil no-op contract on the health handles: a nil *Health hands out
// nil *LinkHealth trackers whose Touch no-ops, and reports healthy — the
// "health off" state costs nothing and fails nothing.
func TestHealthNilNoOp(t *testing.T) {
	var h *Health
	l := h.Link("front", time.Second)
	if l != nil {
		t.Errorf("nil Health.Link returned %v, want nil", l)
	}
	l.Touch() // must not panic
	h.Ready("check", func() bool { return false })
	if rep := h.Check(); !rep.Healthy || rep.Links != nil || rep.Checks != nil {
		t.Errorf("nil Check() = %+v, want empty healthy report", rep)
	}
	if got := l.Name(); got != "" {
		t.Errorf("nil LinkHealth.Name() = %q, want \"\"", got)
	}
	if !l.Stale() {
		t.Error("nil LinkHealth should report stale")
	}
	if !l.LastActivity().IsZero() {
		t.Error("nil LinkHealth.LastActivity() should be the zero time")
	}
}

// Touch on a live link — the per-delivery hot-path call — must not
// allocate.
func TestLinkHealthTouchZeroAllocs(t *testing.T) {
	l := NewHealth().Link("front", time.Second)
	if allocs := testing.AllocsPerRun(500, l.Touch); allocs != 0 {
		t.Errorf("Touch: %v allocs/op, want 0", allocs)
	}
}

// A never-touched link is stale (a registered link carrying nothing is the
// wedge /healthz exists to catch); a touched one is fresh until its
// threshold passes.
func TestLinkHealthStaleness(t *testing.T) {
	h := NewHealth()
	l := h.Link("front", time.Hour)
	if !l.Stale() {
		t.Error("never-touched link should be stale")
	}
	l.Touch()
	if l.Stale() {
		t.Error("just-touched link should be fresh")
	}
	fast := h.Link("back", time.Nanosecond)
	fast.Touch()
	time.Sleep(time.Millisecond)
	if !fast.Stale() {
		t.Error("link past its threshold should be stale")
	}
}

// Link deduplicates by name (keeping the first threshold) and Ready
// replaces a re-registered predicate.
func TestHealthRegistration(t *testing.T) {
	h := NewHealth()
	a := h.Link("front", time.Second)
	b := h.Link("front", time.Hour)
	if a != b {
		t.Error("Link(\"front\") twice returned distinct trackers")
	}
	h.Ready("r", func() bool { return false })
	h.Ready("r", func() bool { return true })
	a.Touch()
	rep := h.Check()
	if !rep.Healthy {
		t.Errorf("Check() = %+v, want healthy (replaced predicate passes)", rep)
	}
	if len(rep.Checks) != 1 {
		t.Errorf("%d checks, want 1 (re-registering replaces)", len(rep.Checks))
	}
}

// The aggregated verdict: healthy only when every link is fresh and every
// check passes, with the report naming the offender.
func TestHealthCheckVerdict(t *testing.T) {
	h := NewHealth()
	front := h.Link("front", time.Hour)
	h.Link("back", time.Hour) // never touched: stale
	ready := false
	h.Ready("received", func() bool { return ready })

	rep := h.Check()
	if rep.Healthy {
		t.Errorf("Check() healthy with a stale link and failing check: %+v", rep)
	}
	// Links and checks are sorted by name.
	if len(rep.Links) != 2 || rep.Links[0].Name != "back" || rep.Links[1].Name != "front" {
		t.Errorf("links = %+v, want [back front]", rep.Links)
	}
	if !rep.Links[0].Stale || rep.Links[0].AgeMillis != -1 {
		t.Errorf("never-touched link = %+v, want stale with age -1", rep.Links[0])
	}

	front.Touch()
	h.Link("back", 0).Touch()
	ready = true
	if rep := h.Check(); !rep.Healthy {
		t.Errorf("Check() = %+v, want healthy after touches and ready", rep)
	}
}

// The /healthz endpoint: 200 with a JSON report while healthy, 503 naming
// the stale link when not; a nil tracker always serves 200.
func TestHealthHandler(t *testing.T) {
	h := NewHealth()
	l := h.Link("front", time.Hour)

	get := func(h *Health) (int, Report) {
		t.Helper()
		req := httptest.NewRequest("GET", "/healthz", nil)
		w := httptest.NewRecorder()
		HealthHandler(h).ServeHTTP(w, req)
		var rep Report
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return w.Code, rep
	}

	if code, rep := get(h); code != 503 || rep.Healthy {
		t.Errorf("stale link: status=%d healthy=%v, want 503/false", code, rep.Healthy)
	}
	l.Touch()
	if code, rep := get(h); code != 200 || !rep.Healthy {
		t.Errorf("fresh link: status=%d healthy=%v, want 200/true", code, rep.Healthy)
	}
	if code, rep := get(nil); code != 200 || !rep.Healthy {
		t.Errorf("nil tracker: status=%d healthy=%v, want 200/true", code, rep.Healthy)
	}
}

// RegistryReady gates readiness on a counter reaching a floor; a nil or
// unpopulated registry never becomes ready.
func TestRegistryReady(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("recv.accepted")
	ready := RegistryReady(reg, "recv.accepted", 2)
	if ready() {
		t.Error("ready before the counter reached the floor")
	}
	c.Add(2)
	if !ready() {
		t.Error("not ready after the counter reached the floor")
	}
	if RegistryReady(nil, "recv.accepted", 1)() {
		t.Error("nil registry should never be ready")
	}
	if RegistryReady(reg, "missing", 1)() {
		t.Error("unregistered counter should never be ready")
	}
}
