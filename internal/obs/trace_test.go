package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// The nil no-op contract on the tracing handle: every Tracer method must
// be safe (and cheap) on a nil receiver, so pipelines thread the pointer
// unconditionally and the tracing-off state costs one nil check.
func TestTracerNilNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Var: "x", Seq: 1, Stage: StageEmit, Disp: DispEmitted})
	if got := tr.Cap(); got != 0 {
		t.Errorf("nil Cap() = %d, want 0", got)
	}
	if got := tr.Recorded(); got != 0 {
		t.Errorf("nil Recorded() = %d, want 0", got)
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil Snapshot() = %v, want nil", got)
	}
	if got := tr.Spans("x", 1); got != nil {
		t.Errorf("nil Spans() = %v, want nil", got)
	}
}

// Record on a nil tracer — the tracing-off hot path — must not allocate.
func TestTracerNilRecordZeroAllocs(t *testing.T) {
	var tr *Tracer
	s := Span{Var: "x", Seq: 1, Stage: StageFeed, Disp: DispFed, Time: 1}
	if allocs := testing.AllocsPerRun(500, func() { tr.Record(s) }); allocs != 0 {
		t.Errorf("nil Record: %v allocs/op, want 0", allocs)
	}
}

// Record on a live tracer pays exactly one small allocation — the
// immutable span copy its atomic publication hands to readers. Pinning the
// exact count documents the tracing-on cost the same way the zero pins
// document the off state.
func TestTracerRecordOneAlloc(t *testing.T) {
	tr := NewTracer(64)
	s := Span{Var: "x", Seq: 1, Stage: StageFeed, Disp: DispFed, Time: 1}
	if allocs := testing.AllocsPerRun(500, func() { tr.Record(s) }); allocs != 1 {
		t.Errorf("Record: %v allocs/op, want 1 (the published span copy)", allocs)
	}
}

func TestTracerCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultTraceCap}, {-5, DefaultTraceCap}, {1, 1}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := NewTracer(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewTracer(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// The ring keeps only the most recent Cap() spans, oldest first, and
// Recorded counts everything that was ever written.
func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(1); i <= 10; i++ {
		tr.Record(Span{Var: "x", Seq: i, Stage: StageEmit, Disp: DispEmitted, Time: i})
	}
	if got := tr.Recorded(); got != 10 {
		t.Errorf("Recorded() = %d, want 10", got)
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot() returned %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := int64(7 + i); s.Seq != want {
			t.Errorf("span %d: Seq = %d, want %d (oldest-first tail of the ring)", i, s.Seq, want)
		}
	}
}

func TestTracerSpansFilter(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Var: "x", Seq: 1, Stage: StageEmit, Disp: DispEmitted, Time: 1})
	tr.Record(Span{Var: "x", Seq: 2, Stage: StageEmit, Disp: DispEmitted, Time: 2})
	tr.Record(Span{Var: "y", Seq: 1, Stage: StageEmit, Disp: DispEmitted, Time: 3})
	if got := len(tr.Spans("x", -1)); got != 2 {
		t.Errorf("Spans(x, -1): %d spans, want 2", got)
	}
	if got := len(tr.Spans("", 1)); got != 2 {
		t.Errorf("Spans(\"\", 1): %d spans, want 2", got)
	}
	if got := len(tr.Spans("y", 1)); got != 1 {
		t.Errorf("Spans(y, 1): %d spans, want 1", got)
	}
	if got := len(tr.Spans("z", -1)); got != 0 {
		t.Errorf("Spans(z, -1): %d spans, want 0", got)
	}
}

// Record stamps the wall clock only when the caller left Time zero.
func TestTracerRecordStampsTime(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Span{Var: "x", Seq: 1, Stage: StageEmit, Disp: DispEmitted})
	tr.Record(Span{Var: "x", Seq: 2, Stage: StageEmit, Disp: DispEmitted, Time: 42})
	got := tr.Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot() returned %d spans, want 2", len(got))
	}
	if got[0].Time == 0 {
		t.Error("zero Time was not stamped by Record")
	}
	if got[1].Time != 42 {
		t.Errorf("caller-set Time overwritten: got %d, want 42", got[1].Time)
	}
}

// Concurrent writers and readers: nothing torn, nothing lost from the
// counter, and every span a reader observes is internally consistent
// (Var/Seq agree — a torn mix of two writers' spans would not).
func TestTracerConcurrentRecordSnapshot(t *testing.T) {
	tr := NewTracer(64)
	const writers, perW = 4, 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader racing the writers
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range tr.Snapshot() {
				if s.Seq != int64(s.Time) {
					t.Errorf("torn span observed: Seq=%d Time=%d", s.Seq, s.Time)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				seq := int64(w*perW + i)
				tr.Record(Span{Var: "x", Seq: seq, Stage: StageFeed, Disp: DispFed, Time: seq})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := tr.Recorded(); got != writers*perW {
		t.Errorf("Recorded() = %d, want %d", got, writers*perW)
	}
}

// The /trace endpoint: JSON shape, var/seq/stage/limit filters, and the
// nil-tracer empty response daemons rely on to mount it unconditionally.
func TestTraceHandler(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Var: "x", Seq: 1, Stage: StageEmit, Disp: DispEmitted, Time: 1})
	tr.Record(Span{Var: "x", Seq: 1, Stage: StageLink, Replica: "CE1", Disp: DispDelivered, Time: 2})
	tr.Record(Span{Var: "x", Seq: 2, Stage: StageLink, Replica: "CE1", Disp: DispLost, Time: 3})
	tr.Record(Span{Var: "y", Seq: 9, Stage: StageAD, Replica: "CE1", Disp: DispSuppressed, Rule: "AD-1", Time: 4})

	get := func(url string) traceResponse {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		TraceHandler(tr).ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s: status %d", url, w.Code)
		}
		var resp traceResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return resp
	}

	if resp := get("/trace"); len(resp.Spans) != 4 || resp.Cap != 16 || resp.Recorded != 4 {
		t.Errorf("unfiltered: %d spans cap=%d recorded=%d, want 4/16/4", len(resp.Spans), resp.Cap, resp.Recorded)
	}
	if resp := get("/trace?var=x&seq=1"); len(resp.Spans) != 2 {
		t.Errorf("var=x&seq=1: %d spans, want 2", len(resp.Spans))
	}
	if resp := get("/trace?stage=ad"); len(resp.Spans) != 1 || resp.Spans[0].Rule != "AD-1" {
		t.Errorf("stage=ad: %+v, want one suppressed span naming AD-1", resp.Spans)
	}
	if resp := get("/trace?limit=1"); len(resp.Spans) != 1 || resp.Spans[0].Var != "y" {
		t.Errorf("limit=1: %+v, want only the most recent span", resp.Spans)
	}

	// Bad parameters are rejected, not ignored.
	for _, url := range []string{"/trace?seq=no", "/trace?seq=-2", "/trace?limit=no"} {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		TraceHandler(tr).ServeHTTP(w, req)
		if w.Code != 400 {
			t.Errorf("GET %s: status %d, want 400", url, w.Code)
		}
	}

	// A nil tracer serves an empty recorder.
	req := httptest.NewRequest("GET", "/trace", nil)
	w := httptest.NewRecorder()
	TraceHandler(nil).ServeHTTP(w, req)
	var resp traceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if w.Code != 200 || resp.Cap != 0 || len(resp.Spans) != 0 {
		t.Errorf("nil tracer: status=%d cap=%d spans=%d, want 200/0/0", w.Code, resp.Cap, len(resp.Spans))
	}
}
