package obs

// Liveness for the links, readiness for the process. A metrics counter can
// tell you how many updates a link has delivered, but not whether it is
// delivering *now* — a wedged receiver and a quiet one look identical in a
// single scrape. Health tracks the last-activity instant of each named
// link (one atomic store per touch, same nil-safe off-by-default contract
// as the rest of the package) and serves /healthz: HTTP 200 while every
// link has been touched within its staleness threshold and every readiness
// check passes, 503 otherwise, with a JSON body naming the stale link or
// failing check so the operator's first curl already points at the broken
// hop.

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStaleAfter is the staleness threshold LinkHealth uses when the
// caller passes a non-positive one.
const DefaultStaleAfter = 10 * time.Second

// LinkHealth tracks one link's last-activity instant against a staleness
// threshold. Touch is one atomic store — cheap enough for per-delivery
// call sites — and all methods no-op (or report stale) on a nil receiver.
type LinkHealth struct {
	name       string
	staleAfter time.Duration
	last       atomic.Int64 // unix nanos of last Touch; 0 = never
}

// Name returns the link's registered name ("" on a nil receiver).
func (l *LinkHealth) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Touch records activity on the link now.
func (l *LinkHealth) Touch() {
	if l == nil {
		return
	}
	l.last.Store(time.Now().UnixNano())
}

// LastActivity returns the instant of the last Touch, or the zero time if
// the link was never touched (or the receiver is nil).
func (l *LinkHealth) LastActivity() time.Time {
	if l == nil {
		return time.Time{}
	}
	ns := l.last.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Stale reports whether the link has gone longer than its threshold
// without activity. A never-touched link is stale: a link that exists but
// has carried nothing is exactly the wedge /healthz is for. Nil receivers
// are stale too.
func (l *LinkHealth) Stale() bool {
	stale, _ := l.age()
	return stale
}

// age reports staleness plus the time since last activity (-1 when never
// touched).
func (l *LinkHealth) age() (stale bool, age time.Duration) {
	if l == nil {
		return true, -1
	}
	ns := l.last.Load()
	if ns == 0 {
		return true, -1
	}
	age = time.Since(time.Unix(0, ns))
	return age > l.staleAfter, age
}

// Health aggregates per-link staleness and named readiness checks into one
// verdict for the /healthz endpoint. A nil *Health is the "health off"
// state: Link returns nil, Ready is a no-op, and Check reports healthy (a
// daemon with no health tracking has nothing to be unhealthy about). All
// methods are safe for concurrent use.
type Health struct {
	mu     sync.Mutex
	links  []*LinkHealth
	checks []readinessCheck
}

// readinessCheck is one named Ready callback.
type readinessCheck struct {
	name string
	f    func() bool
}

// NewHealth returns an empty health tracker.
func NewHealth() *Health { return &Health{} }

// Link registers (or returns the existing) link tracker under name.
// staleAfter ≤ 0 means DefaultStaleAfter; on a name already registered the
// existing threshold is kept. Nil receivers return a nil *LinkHealth,
// whose Touch no-ops.
func (h *Health) Link(name string, staleAfter time.Duration) *LinkHealth {
	if h == nil {
		return nil
	}
	if staleAfter <= 0 {
		staleAfter = DefaultStaleAfter
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.links {
		if l.name == name {
			return l
		}
	}
	l := &LinkHealth{name: name, staleAfter: staleAfter}
	h.links = append(h.links, l)
	return l
}

// Ready registers a named readiness predicate, checked on every /healthz
// request (and by Check). It must be safe to call concurrently with the
// system running. No-op on a nil receiver; re-registering a name replaces
// the predicate.
func (h *Health) Ready(name string, f func() bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range h.checks {
		if c.name == name {
			h.checks[i].f = f
			return
		}
	}
	h.checks = append(h.checks, readinessCheck{name: name, f: f})
}

// LinkStatus is one link's verdict in a health report.
type LinkStatus struct {
	// Name is the link's registered name.
	Name string `json:"name"`
	// Stale is true when the link exceeded its threshold without activity
	// (or was never touched).
	Stale bool `json:"stale"`
	// AgeMillis is the time since last activity in milliseconds, -1 when
	// the link was never touched.
	AgeMillis int64 `json:"age_ms"`
	// StaleAfterMillis is the link's staleness threshold in milliseconds.
	StaleAfterMillis int64 `json:"stale_after_ms"`
}

// CheckStatus is one readiness check's verdict in a health report.
type CheckStatus struct {
	// Name is the check's registered name.
	Name string `json:"name"`
	// Ready is the predicate's result at report time.
	Ready bool `json:"ready"`
}

// Report is the full /healthz verdict.
type Report struct {
	// Healthy is true when no link is stale and every readiness check
	// passes.
	Healthy bool `json:"healthy"`
	// Links lists every registered link's status, sorted by name.
	Links []LinkStatus `json:"links,omitempty"`
	// Checks lists every readiness check's status, sorted by name.
	Checks []CheckStatus `json:"checks,omitempty"`
}

// Check evaluates every link and readiness check now. A nil receiver (or a
// tracker with nothing registered) reports healthy.
func (h *Health) Check() Report {
	if h == nil {
		return Report{Healthy: true}
	}
	h.mu.Lock()
	links := append([]*LinkHealth(nil), h.links...)
	checks := append([]readinessCheck(nil), h.checks...)
	h.mu.Unlock()

	rep := Report{Healthy: true}
	for _, l := range links {
		stale, age := l.age()
		ageMS := int64(-1)
		if age >= 0 {
			ageMS = age.Milliseconds()
		}
		rep.Links = append(rep.Links, LinkStatus{
			Name:             l.name,
			Stale:            stale,
			AgeMillis:        ageMS,
			StaleAfterMillis: l.staleAfter.Milliseconds(),
		})
		if stale {
			rep.Healthy = false
		}
	}
	for _, c := range checks {
		ok := c.f()
		rep.Checks = append(rep.Checks, CheckStatus{Name: c.name, Ready: ok})
		if !ok {
			rep.Healthy = false
		}
	}
	sort.Slice(rep.Links, func(i, j int) bool { return rep.Links[i].Name < rep.Links[j].Name })
	sort.Slice(rep.Checks, func(i, j int) bool { return rep.Checks[i].Name < rep.Checks[j].Name })
	return rep
}

// HealthHandler serves Check as JSON at any path it is mounted on: HTTP
// 200 when healthy, 503 when any link is stale or any check fails. A nil
// tracker always serves 200, so daemons mount the handler unconditionally.
func HealthHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := h.Check()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !rep.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// RegistryReady returns a readiness predicate that passes once the named
// counter in r is at least min — e.g. "the receiver has accepted one
// update" as a gate for load balancers. A nil registry (or unregistered
// name) never becomes ready, which fails loudly instead of green-lighting
// a daemon whose wiring is missing.
func RegistryReady(r *Registry, name string, min int64) func() bool {
	return func() bool {
		p, ok := r.Get(name)
		return ok && p.Value >= min
	}
}
