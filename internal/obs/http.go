package obs

// The opt-in HTTP surface: an expvar-style JSON endpoint at /metrics (plain
// text with ?format=text), plus the standard net/http/pprof handlers under
// /debug/pprof/. Nothing here is imported unless a command passes -metrics,
// so the default build path of the pipeline never starts a listener.

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the registry at any path it is mounted on: JSON by
// default (one key per metric, histograms as {count, sum, buckets}),
// plain "name value" text with ?format=text.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = r.WriteText(w)
			return
		}
		out := make(map[string]any)
		for _, p := range r.Snapshot() {
			switch p.Kind {
			case KindHistogram:
				buckets := make(map[string]int64, len(p.Buckets))
				for _, b := range p.Buckets {
					key := "+Inf"
					if b.UpperBound != InfBound {
						key = strconv.FormatInt(b.UpperBound, 10)
					}
					buckets[key] = b.Count
				}
				out[p.Name] = map[string]any{"count": p.Value, "sum": p.Sum, "buckets": buckets}
			default:
				out[p.Name] = p.Value
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out) // map keys are sorted by encoding/json: diff-friendly
	})
}

// NewMux returns a mux with the full observability surface: /metrics (see
// Handler) and the pprof profile handlers under /debug/pprof/.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (use "127.0.0.1:0" for
// an ephemeral port) and returns once the listener is bound, so Addr is
// immediately valid. The server runs until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(r)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
