package obs

// The opt-in HTTP surface: an expvar-style JSON endpoint at /metrics
// (plain text with ?format=text, Prometheus exposition with ?format=prom
// or an Accept header naming a prometheus/openmetrics media type), the
// /trace flight-recorder and /healthz endpoints when a tracer/health
// tracker is wired, plus the standard net/http/pprof handlers under
// /debug/pprof/. Nothing here is imported unless a command passes
// -metrics, so the default build path of the pipeline never starts a
// listener.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler serves the registry at any path it is mounted on: JSON by
// default (one key per metric, histograms as {count, sum, buckets,
// p50/p90/p99}), plain "name value" text with ?format=text, Prometheus
// text exposition with ?format=prom — or whenever the request's Accept
// header names a Prometheus or OpenMetrics media type, so stock scrapers
// need no URL parameters.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = r.WriteText(w)
			return
		case "prom":
			servePromText(w, r)
			return
		}
		if accept := req.Header.Get("Accept"); strings.Contains(accept, "openmetrics") ||
			strings.Contains(accept, "prometheus") {
			servePromText(w, r)
			return
		}
		out := make(map[string]any)
		for _, p := range r.Snapshot() {
			switch p.Kind {
			case KindHistogram:
				buckets := make(map[string]int64, len(p.Buckets))
				for _, b := range p.Buckets {
					key := "+Inf"
					if b.UpperBound != InfBound {
						key = strconv.FormatInt(b.UpperBound, 10)
					}
					buckets[key] = b.Count
				}
				hv := map[string]any{"count": p.Value, "sum": p.Sum, "buckets": buckets}
				for _, ql := range quantileLabels {
					if v, ok := p.Quantile(ql.q); ok {
						hv[ql.label] = v
					}
				}
				out[p.Name] = hv
			default:
				out[p.Name] = p.Value
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out) // map keys are sorted by encoding/json: diff-friendly
	})
}

// servePromText writes the Prometheus exposition with its standard
// content type.
func servePromText(w http.ResponseWriter, r *Registry) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteProm(w)
}

// MuxOptions selects what NewMuxOpts mounts. The zero value (all nil) is
// valid and yields a mux whose endpoints serve empty data — nil-safety all
// the way to the HTTP surface, so daemons build one mux unconditionally
// and wire only what their flags enabled.
type MuxOptions struct {
	// Registry backs /metrics (nil serves an empty registry).
	Registry *Registry
	// Trace backs /trace (nil serves an empty flight recorder).
	Trace *Tracer
	// Health backs /healthz (nil always reports healthy).
	Health *Health
	// Audit backs /audit. The handler lives in internal/audit (which
	// depends on this package, so obs cannot name its types); daemons pass
	// audit.Handler(auditor). Nil serves an empty JSON object, keeping the
	// endpoint present — and its shape stable for scrapers — on
	// audit-disabled daemons.
	Audit http.Handler
}

// NewMux returns a mux with the metrics observability surface: /metrics
// (see Handler) and the pprof profile handlers under /debug/pprof/.
// Equivalent to NewMuxOpts(MuxOptions{Registry: r}).
func NewMux(r *Registry) *http.ServeMux {
	return NewMuxOpts(MuxOptions{Registry: r})
}

// NewMuxOpts returns a mux with the full observability surface: /metrics,
// /trace, /healthz, and the pprof profile handlers under /debug/pprof/.
func NewMuxOpts(o MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(o.Registry))
	mux.Handle("/trace", TraceHandler(o.Trace))
	mux.Handle("/healthz", HealthHandler(o.Health))
	audit := o.Audit
	if audit == nil {
		audit = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte("{}\n"))
		})
	}
	mux.Handle("/audit", audit)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine has returned
}

// Serve starts the observability endpoint on addr (use "127.0.0.1:0" for
// an ephemeral port) and returns once the listener is bound, so Addr is
// immediately valid. The server runs until Close or Shutdown. Equivalent
// to ServeWith(addr, MuxOptions{Registry: r}).
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeWith(addr, MuxOptions{Registry: r})
}

// ServeWith starts the full observability endpoint (metrics, trace,
// health, pprof — see NewMuxOpts) on addr. It returns once the listener is
// bound, so Addr is immediately valid; the server runs until Close or
// Shutdown.
func ServeWith(addr string, o MuxOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMuxOpts(o)}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, interrupts in-flight handlers, and waits for
// the serve goroutine to exit, so tests that start and stop endpoints leak
// neither the port nor the goroutine.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// handlers to finish, up to ctx's deadline — the graceful counterpart of
// Close. The serve goroutine has exited by the time it returns.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
