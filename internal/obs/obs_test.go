package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	const goroutines, perG = 8, 10000
	c := NewRegistry().Counter("c")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("concurrent Inc lost updates: got %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Errorf("gauge = %d, want 40", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket i holds bounds[i-1] < v ≤ bounds[i]: boundary values land in
	// the bucket they bound.
	for _, v := range []int64{-1, 5, 10, 11, 20, 21, 1000} {
		h.Observe(v)
	}
	reg := NewRegistry()
	got := reg.Histogram("h", 10, 20) // fresh; re-observe through registry
	for _, v := range []int64{-1, 5, 10, 11, 20, 21, 1000} {
		got.Observe(v)
	}
	p, ok := reg.Get("h")
	if !ok {
		t.Fatal("histogram not in snapshot")
	}
	want := []Bucket{{10, 3}, {20, 2}, {InfBound, 2}}
	if len(p.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(p.Buckets), len(want))
	}
	for i, b := range want {
		if p.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, p.Buckets[i], b)
		}
	}
	if p.Value != 7 {
		t.Errorf("count = %d, want 7", p.Value)
	}
	if p.Sum != -1+5+10+11+20+21+1000 {
		t.Errorf("sum = %d, want %d", p.Sum, -1+5+10+11+20+21+1000)
	}
}

func TestHistogramRejectsUnorderedBounds(t *testing.T) {
	if _, err := NewHistogram(10, 10); err == nil {
		t.Error("equal bounds accepted")
	}
	if _, err := NewHistogram(20, 10); err == nil {
		t.Error("descending bounds accepted")
	}
}

// Snapshots taken while observers hammer the metrics must be internally
// consistent: counters monotonic across snapshots, and a histogram's bucket
// total never below its observation count.
func TestSnapshotConsistencyUnderConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h", 1, 2, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(int64(i % 6))
				}
			}
		}(g)
	}
	var lastC int64
	for i := 0; i < 200; i++ {
		pc, _ := reg.Get("c")
		if pc.Value < lastC {
			t.Fatalf("counter went backwards: %d after %d", pc.Value, lastC)
		}
		lastC = pc.Value
		ph, _ := reg.Get("h")
		var total int64
		for _, b := range ph.Buckets {
			total += b.Count
		}
		if total < ph.Value {
			t.Fatalf("histogram buckets (%d) below count (%d)", total, ph.Value)
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent: the cut is exact.
	ph, _ := reg.Get("h")
	var total int64
	for _, b := range ph.Buckets {
		total += b.Count
	}
	if total != ph.Value {
		t.Errorf("quiescent histogram buckets (%d) != count (%d)", total, ph.Value)
	}
	if h.Count() != ph.Value {
		t.Errorf("Count() = %d, snapshot value = %d", h.Count(), ph.Value)
	}
}

// The nil-safety contract: every method no-ops on nil metrics and a nil
// registry, and costs no allocations — the "metrics off" hot path.
func TestNilSafety(t *testing.T) {
	var (
		reg *Registry
		c   = reg.Counter("c")
		g   = reg.Gauge("g")
		h   = reg.Histogram("h")
	)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	reg.GaugeFunc("f", func() int64 { return 1 })
	if got := reg.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	if got := reg.Names(); got != nil {
		t.Errorf("nil registry names = %v, want nil", got)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		c.Inc()
		c.Add(3)
		_ = c.Value()
		g.Set(1)
		g.Add(1)
		_ = g.Value()
		h.Observe(5)
		h.ObserveDuration(time.Microsecond)
		_ = h.Count()
		_ = h.Sum()
	}); allocs != 0 {
		t.Errorf("nil metric methods: %v allocs/op, want 0", allocs)
	}
}

// Live counters must also stay allocation-free: they sit on the same hot
// paths when metrics are enabled.
func TestLiveUpdateZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h")
	if allocs := testing.AllocsPerRun(500, func() {
		c.Inc()
		h.Observe(700)
	}); allocs != 0 {
		t.Errorf("live metric update: %v allocs/op, want 0", allocs)
	}
}

func TestRegistryIdempotentAndOrdered(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("z.second")
	b := reg.Counter("a.first")
	if reg.Counter("z.second") != a {
		t.Error("re-registering a counter returned a different instance")
	}
	a.Inc()
	b.Add(2)
	points := reg.Snapshot()
	if len(points) != 2 || points[0].Name != "z.second" || points[1].Name != "a.first" {
		t.Errorf("snapshot not in registration order: %+v", points)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "a.first" || names[1] != "z.second" {
		t.Errorf("Names not sorted: %v", names)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter did not panic")
		}
	}()
	reg.Gauge("m")
}

func TestGaugeFuncSampledAtSnapshot(t *testing.T) {
	reg := NewRegistry()
	depth := int64(0)
	reg.GaugeFunc("queue", func() int64 { return depth })
	depth = 7
	p, ok := reg.Get("queue")
	if !ok || p.Value != 7 || p.Kind != KindGauge {
		t.Errorf("gauge func snapshot = %+v, want value 7", p)
	}
}

func TestWriteTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runtime.emitted").Add(5)
	reg.Histogram("ce.feed_ns", 100).Observe(50)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"runtime.emitted 5\n",
		"ce.feed_ns.count 1\n",
		"ce.feed_ns.sum 50\n",
		"ce.feed_ns.le.100 1\n",
		"ce.feed_ns.le.+Inf 0\n",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, sb.String())
		}
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runtime.emitted").Add(9)
	reg.Histogram("ce.feed_ns", 100).Observe(42)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) (*http.Response, error) {
		return http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
	}
	resp, err := get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if v, ok := body["runtime.emitted"].(float64); !ok || v != 9 {
		t.Errorf("JSON runtime.emitted = %v, want 9", body["runtime.emitted"])
	}
	hist, ok := body["ce.feed_ns"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Errorf("JSON histogram = %v", body["ce.feed_ns"])
	}

	text, err := get("/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = text.Body.Close() }()
	dump, err := io.ReadAll(text.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "runtime.emitted 9") {
		t.Errorf("text endpoint missing counter line:\n%s", dump)
	}

	pprofResp, err := get("/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pprofResp.Body.Close() }()
	if pprofResp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d, want 200", pprofResp.StatusCode)
	}
}
