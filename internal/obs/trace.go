package obs

// The live-tracing core: a fixed-size, lock-free flight recorder of compact
// per-stage span records, the runtime answer to "why did alert (x,17)
// display but (x,18) get suppressed?". Where the metrics half of this
// package aggregates (counters move, identities reconcile), the tracer
// remembers individual lineages: every update and alert leaves one span per
// pipeline stage it crosses — emitted at the DM, delivered or lost on each
// front link, fed/discarded/fired at each CE replica, sent and arrived on
// the back link, displayed or suppressed (with the suppressing AD rule) at
// the displayer. Spans are stitched back into causal timelines by
// (var, seq) — locally by Tracer.Spans, across processes by
// `condmon-trace follow` polling each daemon's /trace endpoint.
//
// The tracer honors the same two contracts as the metrics core:
//
//   - Nil safety. Every method no-ops on a nil *Tracer, so components
//     thread a tracer unconditionally and the tracing-off hot path pays one
//     nil check — the zero-allocation pins and the batched-pipeline
//     throughput band hold with tracing off.
//
//   - Lock-free recording. Record claims a ring slot with one atomic add
//     and publishes the span with one atomic pointer store; it never takes
//     a lock or blocks, and readers (snapshots, the /trace endpoint) can
//     never observe a torn record — a loaded span is immutable. The cost
//     is one small heap allocation per recorded span, paid only when
//     tracing is on; the tracing-off path allocates nothing.
//
// The recorder is deliberately lossy: when the ring wraps, the oldest spans
// are overwritten. It is a flight recorder, not an audit log — size it to
// the window an operator can react within (DefaultTraceCap covers a few
// seconds at typical alert rates).

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Pipeline stages a span can record, ordered along the update/alert path.
const (
	// StageEmit is the DM assigning a sequence number and publishing.
	StageEmit = "emit"
	// StageLink is a front link deciding delivery or loss per replica.
	StageLink = "link"
	// StageFeed is a CE replica consuming (or discarding) the update and
	// possibly firing.
	StageFeed = "feed"
	// StageBacklink is an alert crossing a back link (send and arrival).
	StageBacklink = "backlink"
	// StageAD is the Alert Displayer's filter verdict.
	StageAD = "ad"
)

// Dispositions a span can carry — what happened to the update or alert at
// its stage.
const (
	// DispEmitted: the DM published the update.
	DispEmitted = "emitted"
	// DispDelivered: the front link (or receiver) delivered the update.
	DispDelivered = "delivered"
	// DispLost: the link's loss model (or a forced drop) lost the update.
	DispLost = "lost"
	// DispFed: the evaluator accepted the update into its window.
	DispFed = "fed"
	// DispDiscarded: the evaluator discarded an out-of-order or
	// irrelevant-variable delivery (§2.1's in-order rule).
	DispDiscarded = "discarded"
	// DispMissedDown: the update arrived while the evaluator was failed.
	DispMissedDown = "missed_down"
	// DispFired: the evaluation raised an alert.
	DispFired = "fired"
	// DispSent: the alert was enqueued on a back link.
	DispSent = "sent"
	// DispArrived: the alert arrived at the displayer side of a back link.
	DispArrived = "arrived"
	// DispDisplayed: the AD filter passed the alert through to the user.
	DispDisplayed = "displayed"
	// DispSuppressed: the AD filter rejected the alert; Rule names the
	// innermost rejecting rule (ad.Explain).
	DispSuppressed = "suppressed"
)

// Span is one flight-recorder record: what happened to the update (or the
// alert it triggered) identified by (Var, Seq) at one pipeline stage. Time
// is stamped by Record; Origin, when non-zero, is the DM-side emit
// timestamp carried across process boundaries by the wire trace trailer,
// letting a downstream daemon relate its spans to the update's origin
// without a shared tracer.
type Span struct {
	// Var and Seq identify the update lineage the span belongs to. For
	// alert spans they name the triggering update: the alert's latest
	// history entry for Var.
	Var string `json:"var"`
	Seq int64  `json:"seq"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Replica identifies the component the span was recorded at: "DM",
	// "CE1", a station id like "c0004/CE2", or an alert's source replica
	// for displayer verdicts.
	Replica string `json:"replica,omitempty"`
	// Disp is one of the Disp* constants.
	Disp string `json:"disp"`
	// Rule names the suppressing filter rule for DispSuppressed spans (for
	// combinators like AD-4, the failing constituent — see ad.Explain).
	Rule string `json:"rule,omitempty"`
	// Time is the recording wall clock in Unix nanoseconds (stamped by
	// Record when zero).
	Time int64 `json:"time"`
	// Origin is the emit-time wall clock in Unix nanoseconds, zero when
	// unknown.
	Origin int64 `json:"origin,omitempty"`
}

// DefaultTraceCap is the flight-recorder capacity NewTracer uses when the
// requested capacity is not positive.
const DefaultTraceCap = 4096

// traceSlot is one ring entry: an atomically published pointer to an
// immutable span (nil until the slot is first written).
type traceSlot struct {
	span atomic.Pointer[Span]
}

// Tracer is the fixed-size, lock-free flight recorder. A nil *Tracer is
// the "tracing off" state: Record and every query no-op, so pipelines
// thread the pointer unconditionally at the cost of one nil check on the
// hot path. All methods are safe for concurrent use.
type Tracer struct {
	slots []traceSlot
	mask  uint64
	next  atomic.Uint64
}

// NewTracer returns a flight recorder holding the most recent `capacity`
// spans (rounded up to a power of two; DefaultTraceCap when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity (zero on a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Recorded returns how many spans were ever recorded, including those the
// ring has since overwritten (zero on a nil tracer).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Record appends one span to the ring, overwriting the oldest record once
// the ring is full. It stamps s.Time with the current wall clock when the
// caller left it zero. Record never locks or blocks; on a nil tracer it is
// a no-op and allocates nothing, which is the hot-path state the
// zero-allocation pins cover. With tracing on it pays one small heap
// allocation: the span is published as an atomic pointer to an immutable
// copy, so a reader racing a writer sees either the old record or the new
// one, never a torn mix.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Time == 0 {
		s.Time = time.Now().UnixNano()
	}
	// Copy into a fresh heap span here — not by taking &s — so the
	// parameter itself never escapes and the nil-tracer path above stays
	// allocation-free.
	sp := new(Span)
	*sp = s
	i := t.next.Add(1) - 1
	t.slots[i&t.mask].span.Store(sp)
}

// Snapshot copies the ring's current contents, oldest first. Nil tracers
// return nil.
func (t *Tracer) Snapshot() []Span {
	return t.Spans("", -1)
}

// Spans returns the recorded spans matching the filter, oldest first: an
// empty varName matches every variable, a negative seq every sequence
// number. Nil tracers return nil.
func (t *Tracer) Spans(varName string, seq int64) []Span {
	if t == nil {
		return nil
	}
	head := t.next.Load()
	n := uint64(len(t.slots))
	start := uint64(0)
	if head > n {
		start = head - n
	}
	var out []Span
	for i := start; i < head; i++ {
		sp := t.slots[i&t.mask].span.Load()
		if sp == nil {
			continue // claimed by a writer that has not published yet
		}
		s := *sp
		if varName != "" && s.Var != varName {
			continue
		}
		if seq >= 0 && s.Seq != seq {
			continue
		}
		out = append(out, s)
	}
	return out
}

// traceResponse is the JSON shape of the /trace endpoint.
type traceResponse struct {
	Cap      int    `json:"cap"`
	Recorded uint64 `json:"recorded"`
	Spans    []Span `json:"spans"`
}

// TraceHandler serves the flight recorder as JSON at any path it is
// mounted on. Query parameters filter the result: ?var=x restricts to one
// variable, ?seq=17 to one sequence number, ?stage=ad to one stage, and
// ?limit=100 keeps only the most recent matches. A nil tracer serves an
// empty recorder, so daemons mount the handler unconditionally.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		seq := int64(-1)
		if s := q.Get("seq"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil || v < 0 {
				http.Error(w, "trace: seq must be a non-negative integer", http.StatusBadRequest)
				return
			}
			seq = v
		}
		spans := t.Spans(q.Get("var"), seq)
		if stage := q.Get("stage"); stage != "" {
			kept := spans[:0]
			for _, s := range spans {
				if s.Stage == stage {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		if l := q.Get("limit"); l != "" {
			v, err := strconv.Atoi(l)
			if err != nil || v < 0 {
				http.Error(w, "trace: limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if len(spans) > v {
				spans = spans[len(spans)-v:]
			}
		}
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traceResponse{Cap: t.Cap(), Recorded: t.Recorded(), Spans: spans})
	})
}
