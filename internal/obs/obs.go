// Package obs is the observability core: a zero-dependency metrics library
// (atomic counters, gauges, fixed-bucket histograms) and a registry that
// snapshots them consistently for the HTTP endpoint and the plain-text
// dump.
//
// The package is built around two contracts the rest of the pipeline
// relies on:
//
//   - Nil safety. Every method on *Counter, *Gauge, and *Histogram is a
//     no-op on a nil receiver, and a nil *Registry hands out nil metrics.
//     Components therefore thread metric pointers unconditionally through
//     their hot paths; with metrics disabled (the default) the only cost is
//     a nil check, which is what preserves the zero-allocation and
//     throughput numbers pinned by the alloc tests and BENCH_PR3.json.
//
//   - Lock-free hot paths. Updates are single atomic adds; the registry
//     mutex is only taken at registration and snapshot time, never while a
//     DM, shard worker, or evaluator records a value.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric: updates emitted, alerts
// suppressed, datagrams lost. All methods are safe on a nil receiver and
// for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter. Negative deltas are a programming error
// but are not checked on the hot path.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value: queue depth, stations on a shard,
// connected replicas. All methods are safe on a nil receiver and for
// concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the fixed histogram bucket upper bounds used for
// Feed/FeedBatch latency, in nanoseconds: 250ns up to 100ms, roughly
// logarithmic. Observations above the last bound land in the implicit +Inf
// bucket.
var DefaultLatencyBounds = []int64{
	250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 10_000_000, 100_000_000,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Bucket i counts observations v with bounds[i-1] < v ≤ bounds[i]; one
// extra +Inf bucket catches everything above the last bound. All methods
// are safe on a nil receiver and for concurrent use.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram builds a histogram with the given strictly ascending bucket
// upper bounds. With no bounds it uses DefaultLatencyBounds.
func NewHistogram(bounds ...int64) (*Histogram, error) {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds must strictly ascend, got %d after %d", bounds[i], bounds[i-1])
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and fixed, and the common
	// latency observations land in the first few buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (zero on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Kind discriminates snapshot points.
type Kind string

// The snapshot point kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Bucket is one histogram bucket in a snapshot. UpperBound is
// math.MaxInt64 for the +Inf bucket; Count is the number of observations
// that landed in this bucket (not cumulative).
type Bucket struct {
	UpperBound int64
	Count      int64
}

// InfBound is the UpperBound of a histogram's +Inf bucket in snapshots.
const InfBound = math.MaxInt64

// Point is one metric's value at snapshot time. For histograms, Value is
// the observation count and Sum/Buckets carry the distribution.
type Point struct {
	Name    string
	Kind    Kind
	Value   int64
	Sum     int64
	Buckets []Bucket
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) of a histogram point
// from its fixed buckets, interpolating linearly within the bucket the
// quantile falls in. The estimate inherits the buckets' resolution: the
// true value is only known to lie within the bucket's (lo, hi] range, so
// the error bound is that bucket's width — with DefaultLatencyBounds,
// roughly a factor of 2–2.5 at any scale. Observations in the +Inf bucket
// clamp to the last finite bound (reported quantiles never exceed it).
// Returns ok=false for non-histogram points, empty histograms, or q out of
// range.
func (p Point) Quantile(q float64) (v int64, ok bool) {
	if p.Kind != KindHistogram || p.Value <= 0 || q <= 0 || q > 1 {
		return 0, false
	}
	// The bucket counts may total slightly more than Value (in-flight
	// observations at snapshot time); rank against the bucket total so the
	// scan always terminates inside the buckets.
	var total int64
	for _, b := range p.Buckets {
		total += b.Count
	}
	if total <= 0 {
		return 0, false
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, b := range p.Buckets {
		if b.Count == 0 {
			cum += b.Count
			continue
		}
		if cum+b.Count < rank {
			cum += b.Count
			continue
		}
		hi := b.UpperBound
		if hi == InfBound {
			// No finite upper edge to interpolate toward: clamp to the
			// last finite bound (or give up on a single +Inf bucket).
			if i == 0 {
				return 0, false
			}
			return p.Buckets[i-1].UpperBound, true
		}
		var lo int64
		if i > 0 {
			lo = p.Buckets[i-1].UpperBound
		}
		frac := float64(rank-cum) / float64(b.Count)
		return lo + int64(frac*float64(hi-lo)), true
	}
	return 0, false
}

// gaugeFunc adapts a sampling callback (e.g. a channel-depth probe) to the
// registry.
type gaugeFunc func() int64

// Registry names and snapshots a set of metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is the "metrics off" state:
// every constructor returns a nil metric whose methods no-op.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]any // *Counter | *Gauge | *Histogram | gaugeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// register adds m under name; the caller holds r.mu.
func (r *Registry) register(name string, m any) {
	r.order = append(r.order, name)
	r.metrics[name] = m
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as two different kinds panics: metric
// names are a static, documented namespace and a clash is a wiring bug.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{}
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{}
	r.register(name, g)
	return g
}

// GaugeFunc registers a sampled gauge: f is invoked at snapshot time, so
// values like channel depth are read only when an operator asks. It must be
// safe to call concurrently with the system running. No-op on a nil
// registry; re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if _, ok := m.(gaugeFunc); !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		r.metrics[name] = gaugeFunc(f)
		return
	}
	r.register(name, gaugeFunc(f))
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (DefaultLatencyBounds when none are given).
// Invalid bounds panic: they are compile-time constants in practice.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return h
	}
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	r.register(name, h)
	return h
}

// Snapshot returns every metric's current value in registration order.
// Individual values are read atomically; the snapshot as a whole is not a
// global atomic cut (counters keep moving while it is taken), but each
// histogram's Value always equals the sum of its bucket counts as of some
// moment between the call's start and return.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	metrics := make(map[string]any, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
	}
	r.mu.Unlock()

	out := make([]Point, 0, len(order))
	for _, name := range order {
		switch m := metrics[name].(type) {
		case *Counter:
			out = append(out, Point{Name: name, Kind: KindCounter, Value: m.Value()})
		case *Gauge:
			out = append(out, Point{Name: name, Kind: KindGauge, Value: m.Value()})
		case gaugeFunc:
			out = append(out, Point{Name: name, Kind: KindGauge, Value: m()})
		case *Histogram:
			p := Point{Name: name, Kind: KindHistogram, Buckets: make([]Bucket, len(m.buckets))}
			// Observe bumps the bucket before count, so reading count first
			// guarantees the bucket total is never below Value even while
			// observers are running (it may exceed it by in-flight
			// observations).
			p.Value = m.count.Load()
			p.Sum = m.sum.Load()
			for i := range m.buckets {
				bound := int64(InfBound)
				if i < len(m.bounds) {
					bound = m.bounds[i]
				}
				p.Buckets[i] = Bucket{UpperBound: bound, Count: m.buckets[i].Load()}
			}
			out = append(out, p)
		}
	}
	return out
}

// Get returns the snapshot point for one metric name.
func (r *Registry) Get(name string) (Point, bool) {
	for _, p := range r.Snapshot() {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// quantileLabels are the estimates WriteText and the JSON handler emit for
// every histogram.
var quantileLabels = []struct {
	label string
	q     float64
}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}}

// WriteText dumps the registry as plain "name value" lines, sorted by
// name — the format the RUNBOOK's command-line examples grep. Histograms
// expand to .count, .sum, per-bucket .le.<bound> lines (.le.+Inf for the
// overflow bucket), and .p50/.p90/.p99 quantile estimates (interpolated
// from the fixed buckets — see Point.Quantile for the error bound; omitted
// while the histogram is empty).
func (r *Registry) WriteText(w io.Writer) error {
	points := r.Snapshot()
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	for _, p := range points {
		switch p.Kind {
		case KindHistogram:
			if _, err := fmt.Fprintf(w, "%s.count %d\n%s.sum %d\n", p.Name, p.Value, p.Name, p.Sum); err != nil {
				return err
			}
			for _, ql := range quantileLabels {
				if v, ok := p.Quantile(ql.q); ok {
					if _, err := fmt.Fprintf(w, "%s.%s %d\n", p.Name, ql.label, v); err != nil {
						return err
					}
				}
			}
			for _, b := range p.Buckets {
				bound := "+Inf"
				if b.UpperBound != InfBound {
					bound = fmt.Sprintf("%d", b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s.le.%s %d\n", p.Name, bound, b.Count); err != nil {
					return err
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", p.Name, p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
