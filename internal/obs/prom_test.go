package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"ce.CE1.fed", "ce_CE1_fed"},
		{"multi.backlink.0.queue", "multi_backlink_0_queue"},
		{"0starts.with.digit", "_0starts_with_digit"},
		{"already_fine:ok", "already_fine:ok"},
		{"", "_"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// The exposition format: counters and gauges with the dotted name as a
// label, histograms in cumulative bucket form with _sum/_count, and the
// OpenMetrics-required # EOF terminator.
func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ce.fed").Add(7)
	reg.Gauge("backlink.queue").Set(3)
	h := reg.Histogram("lat", 10, 20)
	for _, v := range []int64{5, 15, 15, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ce_fed counter\n",
		"ce_fed{name=\"ce.fed\"} 7\n",
		"# TYPE backlink_queue gauge\n",
		"backlink_queue{name=\"backlink.queue\"} 3\n",
		"# TYPE lat histogram\n",
		"lat_bucket{name=\"lat\",le=\"10\"} 1\n",
		"lat_bucket{name=\"lat\",le=\"20\"} 3\n",
		"lat_bucket{name=\"lat\",le=\"+Inf\"} 4\n",
		"lat_sum{name=\"lat\"} 135\n",
		"lat_count{name=\"lat\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("WriteProm output must end with # EOF:\n%s", out)
	}

	// A nil registry writes only the terminator.
	b.Reset()
	if err := (*Registry)(nil).WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "# EOF\n" {
		t.Errorf("nil WriteProm = %q, want just the # EOF line", b.String())
	}
}

// The /metrics handler negotiates the exposition format: ?format=prom and
// a Prometheus/OpenMetrics Accept header both serve the text exposition,
// everything else keeps the JSON default.
func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()

	get := func(url, accept string) (string, string) {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		Handler(reg).ServeHTTP(w, req)
		return w.Body.String(), w.Header().Get("Content-Type")
	}

	if body, ct := get("/metrics?format=prom", ""); !strings.Contains(body, `c{name="c"} 1`) ||
		!strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("?format=prom: content-type %q body %q", ct, body)
	}
	if body, _ := get("/metrics", "application/openmetrics-text; version=1.0.0"); !strings.Contains(body, "# EOF") {
		t.Errorf("openmetrics Accept header did not negotiate the exposition: %q", body)
	}
	if body, ct := get("/metrics", "application/json"); !strings.Contains(ct, "application/json") ||
		!strings.Contains(body, `"c": 1`) {
		t.Errorf("default: content-type %q body %q", ct, body)
	}
}

// Quantile estimates: exact at bucket edges, interpolated inside buckets,
// clamped to the last finite bound when the rank lands in +Inf, and
// refused (ok=false) when the histogram has no data or no finite bounds.
func TestPointQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 10, 100)
	// 8 observations ≤10, 1 in (10,100], 1 in (100,+Inf).
	for i := 0; i < 8; i++ {
		h.Observe(5)
	}
	h.Observe(50)
	h.Observe(500)
	p, ok := reg.Get("lat")
	if !ok {
		t.Fatal("histogram not in snapshot")
	}
	if v, ok := p.Quantile(0.50); !ok || v > 10 {
		t.Errorf("p50 = %d/%v, want ≤ 10 (rank 5 of 10 lands in the first bucket)", v, ok)
	}
	if v, ok := p.Quantile(0.90); !ok || v <= 10 || v > 100 {
		t.Errorf("p90 = %d/%v, want in (10, 100] (rank 9 lands in the middle bucket)", v, ok)
	}
	if v, ok := p.Quantile(0.99); !ok || v != 100 {
		t.Errorf("p99 = %d/%v, want clamped to 100 (rank 10 lands in +Inf)", v, ok)
	}

	// No data, bad q, non-histogram: refused.
	reg2 := NewRegistry()
	reg2.Histogram("empty", 10)
	pe, _ := reg2.Get("empty")
	if _, ok := pe.Quantile(0.5); ok {
		t.Error("empty histogram produced a quantile")
	}
	if _, ok := p.Quantile(0); ok {
		t.Error("q=0 produced a quantile")
	}
	if _, ok := p.Quantile(1.5); ok {
		t.Error("q>1 produced a quantile")
	}
	reg2.Counter("c").Inc()
	pc, _ := reg2.Get("c")
	if _, ok := pc.Quantile(0.5); ok {
		t.Error("counter produced a quantile")
	}
}

// The text rendering gains p50/p90/p99 lines for histograms with data.
func TestWriteTextQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 10, 100)
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"lat.p50 ", "lat.p90 ", "lat.p99 "} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}
