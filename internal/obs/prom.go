package obs

// Prometheus/OpenMetrics text exposition for the registry, so standard
// scrapers work against /metrics without speaking the custom JSON. The
// mapping from the registry's dotted namespace:
//
//   - Names are sanitized to the Prometheus charset: dots and any other
//     illegal runes become underscores (`multi.backlink.0.queue` →
//     `multi_backlink_0_queue`), and a leading digit gains an underscore
//     prefix. Sanitized collisions keep distinct series because the
//     original dotted name rides along as a `name` label.
//   - Counters keep their value; sampled GaugeFuncs are evaluated at
//     scrape time like any snapshot.
//   - Histograms become native Prometheus histograms: the registry's
//     per-bucket counts are converted to the cumulative `_bucket{le=...}`
//     form (plus the mandatory le="+Inf" bucket equal to `_count`), with
//     `_sum` and `_count` series alongside. Quantile estimates are NOT
//     exported — Prometheus derives quantiles server-side via
//     histogram_quantile(), which is strictly better placed to aggregate
//     across processes.
//
// The output is the Prometheus text format (text/plain; version=0.0.4)
// with a terminating `# EOF` line, which OpenMetrics parsers require and
// classic Prometheus parsers ignore.

import (
	"fmt"
	"io"
	"strings"
)

// promName sanitizes a dotted metric name into the Prometheus identifier
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteProm writes the registry in the Prometheus/OpenMetrics text
// exposition format: one `# TYPE` line per metric, the original dotted
// name preserved as a `name` label, histograms in cumulative
// `_bucket{le=...}` form, and a final `# EOF`. Nil registries write only
// the `# EOF` terminator.
func (r *Registry) WriteProm(w io.Writer) error {
	return WritePromPoints(w, r.Snapshot())
}

// WritePromPoints writes an arbitrary point set in the same exposition
// format WriteProm uses — the escape hatch for endpoints that expose a
// filtered or synthesized subset of a registry (the audit surface serves
// only its own namespace this way).
func WritePromPoints(w io.Writer, points []Point) error {
	for _, p := range points {
		pn := promName(p.Name)
		label := fmt.Sprintf(`name=%q`, promEscape(p.Name))
		switch p.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s{%s} %d\n", pn, pn, label, p.Value); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} %d\n", pn, pn, label, p.Value); err != nil {
				return err
			}
		case KindHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			// The registry stores per-bucket counts; Prometheus buckets are
			// cumulative, and the +Inf bucket must equal _count.
			var cum int64
			for _, b := range p.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.UpperBound != InfBound {
					le = fmt.Sprintf("%d", b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", pn, label, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n", pn, label, p.Sum, pn, label, p.Value); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}
