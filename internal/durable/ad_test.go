package durable

import (
	"fmt"
	"path/filepath"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/event"
)

// adAlert builds a single-variable alert whose history lists seqNos
// most-recent-first, mirroring what a CE emits.
func adAlert(v string, seqNos ...int64) event.Alert {
	vn := event.VarName(v)
	h := event.History{Var: vn}
	for _, s := range seqNos {
		h.Recent = append(h.Recent, event.Update{Var: vn, SeqNo: s, Value: float64(s * 100)})
	}
	return event.NewAlert("c", event.HistorySet{vn: h}, "CE1")
}

// adStream is a verdict-rich alert sequence: fresh alerts, exact
// duplicates, instance-level duplicates (same window head, different
// depth), and a stale regression — with the duplicates positioned so that
// every crash point in the test splits at least one dup pair across the
// boundary.
func adStream() []event.Alert {
	return []event.Alert{
		adAlert("x", 3, 2, 1),
		adAlert("x", 3, 2, 1), // exact duplicate
		adAlert("x", 4, 3, 2),
		adAlert("x", 4, 3), // same head, shallower window
		adAlert("x", 2, 1), // stale regression
		adAlert("x", 5, 4, 3),
		adAlert("x", 4, 3, 2), // duplicate across typical crash points
		adAlert("x", 6, 5, 4),
		adAlert("x", 6, 5, 4), // duplicate in the tail
		adAlert("x", 7, 6, 5),
		adAlert("x", 5, 4, 3), // late duplicate of a pre-crash alert
		adAlert("x", 8, 7, 6),
	}
}

func TestLoggedFilterKillRestartEquivalence(t *testing.T) {
	algos := map[string]func() ad.Filter{
		"AD1":     func() ad.Filter { return ad.NewAD1() },
		"AD2":     func() ad.Filter { return ad.NewAD2("x") },
		"AD3":     func() ad.Filter { return ad.NewAD3("x") },
		"AD5":     func() ad.Filter { return ad.NewAD5("x") },
		"AD6":     func() ad.Filter { return ad.NewAD6("x") },
		"Combine": func() ad.Filter { return ad.NewCombine("both", ad.NewAD1(), ad.NewAD2("x")) },
	}
	stream := adStream()
	for name, mk := range algos {
		for _, compactEvery := range []int{0, 2} {
			for _, crashAt := range []int{1, len(stream) / 2, len(stream) - 1} {
				t.Run(fmt.Sprintf("%s/compact=%d/crash=%d", name, compactEvery, crashAt), func(t *testing.T) {
					// Baseline: the uninterrupted verdict sequence.
					base := mk()
					var want []bool
					for _, a := range stream {
						want = append(want, ad.Offer(base, a))
					}

					path := filepath.Join(t.TempDir(), "ad.wal")
					l := openT(t, path, Options{})
					lf := LogFilter(mk(), l, compactEvery)
					var got []bool
					for _, a := range stream[:crashAt] {
						got = append(got, ad.Offer(lf, a))
					}
					if err := lf.Err(); err != nil {
						t.Fatalf("pre-crash journal error: %v", err)
					}
					// Kill: drop the live filter and its log handle on the
					// floor (no Close — a SIGKILL never runs one) and restart
					// from the file alone.
					l2 := openT(t, path, Options{})
					fresh := mk()
					if _, err := RecoverFilter(l2, fresh); err != nil {
						t.Fatalf("RecoverFilter: %v", err)
					}
					lf2 := LogFilter(fresh, l2, compactEvery)
					for _, a := range stream[crashAt:] {
						got = append(got, ad.Offer(lf2, a))
					}
					if err := lf2.Err(); err != nil {
						t.Fatalf("post-crash journal error: %v", err)
					}
					defer l2.Close()

					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("verdict %d (%v): crash/restart run said %v, uninterrupted said %v",
								i, stream[i], got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestLoggedFilterRecoverAcrossCompaction pins that recovery works when the
// log holds a checkpoint plus a delta suffix (not just raw deltas).
func TestLoggedFilterRecoverAcrossCompaction(t *testing.T) {
	stream := adStream()
	path := filepath.Join(t.TempDir(), "ad.wal")
	l := openT(t, path, Options{})
	lf := LogFilter(ad.NewAD1(), l, 3)
	for _, a := range stream[:8] {
		ad.Offer(lf, a)
	}
	if err := lf.Err(); err != nil {
		t.Fatal(err)
	}
	// 8 accepted-or-rejected offers with compactEvery=3 must have compacted
	// at least once; the recovery below therefore exercises the
	// checkpoint-then-deltas path.
	hasCkpt := false
	l.Replay(func(kind byte, _ []byte) error {
		if kind == RecCheckpoint {
			hasCkpt = true
		}
		return nil
	})
	if !hasCkpt {
		t.Fatal("expected at least one checkpoint in the log")
	}

	base := ad.NewAD1()
	for _, a := range stream[:8] {
		ad.Offer(base, a)
	}

	l2 := openT(t, path, Options{})
	defer l2.Close()
	fresh := ad.NewAD1()
	if _, err := RecoverFilter(l2, fresh); err != nil {
		t.Fatal(err)
	}
	for i, a := range stream[8:] {
		if got, want := ad.Offer(fresh, a), ad.Offer(base, a); got != want {
			t.Fatalf("post-recovery verdict %d: got %v, want %v", i, got, want)
		}
	}
}

func TestFilterSnapshotterUnwraps(t *testing.T) {
	f := ad.NewAD1()
	if s, ok := FilterSnapshotter(f); !ok || s == nil {
		t.Fatal("AD1 should expose a Snapshotter directly")
	}
	path := filepath.Join(t.TempDir(), "w.wal")
	l := openT(t, path, Options{})
	defer l.Close()
	wrapped := LogFilter(f, l, 0)
	if s, ok := FilterSnapshotter(wrapped); !ok || s == nil {
		t.Fatal("LoggedFilter should unwrap to its inner Snapshotter")
	}
	if _, ok := FilterSnapshotter(ad.NewPassthrough()); ok {
		t.Fatal("the passthrough filter keeps no state and must not report a Snapshotter")
	}
}
