package durable

import (
	"bytes"
	"reflect"
	"testing"

	"condmon/internal/event"
)

func hist(v string, pairs ...[2]int64) event.History {
	h := event.History{Var: event.VarName(v)}
	for _, p := range pairs {
		h.Recent = append(h.Recent, event.Update{Var: event.VarName(v), SeqNo: p[0], Value: float64(p[1])})
	}
	return h
}

func sampleEvalState() EvalState {
	return EvalState{Windows: []event.History{
		hist("x", [2]int64{7, 700}, [2]int64{6, 650}, [2]int64{5, 600}),
		hist("y", [2]int64{4, 12}),
		hist("z"),
	}}
}

func sampleLaneState() LaneState {
	return LaneState{
		Shared: []event.History{
			hist("x", [2]int64{9, 1}, [2]int64{8, 2}),
			hist("y", [2]int64{3, 4}),
		},
		Stragglers: []StragglerState{
			{Cond: "lemma6", Windows: []event.History{hist("x", [2]int64{9, 1}), hist("y")}},
			{Cond: "odd-one", Windows: nil},
		},
	}
}

func TestEvalStateRoundTrip(t *testing.T) {
	for _, st := range []EvalState{sampleEvalState(), {}} {
		blob := AppendEvalState(nil, st)
		got, err := DecodeEvalState(blob)
		if err != nil {
			t.Fatalf("DecodeEvalState: %v", err)
		}
		// Compare via canonical re-encoding: nil vs empty slices encode
		// identically, which is the equality that matters on disk.
		if !bytes.Equal(AppendEvalState(nil, got), blob) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", st, got)
		}
	}
	st := sampleEvalState()
	got, err := DecodeEvalState(AppendEvalState(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("deep mismatch:\n in  %+v\n out %+v", st, got)
	}
}

func TestLaneStateRoundTrip(t *testing.T) {
	for _, st := range []LaneState{sampleLaneState(), {}} {
		blob := AppendLaneState(nil, st)
		got, err := DecodeLaneState(blob)
		if err != nil {
			t.Fatalf("DecodeLaneState: %v", err)
		}
		if !bytes.Equal(AppendLaneState(nil, got), blob) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", st, got)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	blob := AppendEvalState(nil, sampleEvalState())
	if _, err := DecodeEvalState(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob decoded without error")
	}
	if _, err := DecodeEvalState(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, err := DecodeEvalState(bad); err == nil {
		t.Fatal("unknown version decoded without error")
	}
	if _, err := DecodeEvalState(nil); err == nil {
		t.Fatal("empty blob decoded without error")
	}
	lane := AppendLaneState(nil, sampleLaneState())
	if _, err := DecodeLaneState(lane[:len(lane)/2]); err == nil {
		t.Fatal("truncated lane blob decoded without error")
	}
}

// FuzzCheckpointRoundTrip drives both checkpoint decoders with arbitrary
// bytes: decoding must never panic, and any blob that decodes successfully
// must survive a re-encode/re-decode cycle with an identical canonical
// encoding (torn or attacker-controlled checkpoints degrade to errors, never
// to silent state corruption).
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(AppendEvalState(nil, sampleEvalState()))
	f.Add(AppendLaneState(nil, sampleLaneState()))
	f.Add(AppendEvalState(nil, EvalState{}))
	f.Add([]byte{stateVersion})
	f.Add([]byte("garbage that is certainly not a checkpoint"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if st, err := DecodeEvalState(data); err == nil {
			re := AppendEvalState(nil, st)
			st2, err2 := DecodeEvalState(re)
			if err2 != nil {
				t.Fatalf("re-decode of valid eval state failed: %v", err2)
			}
			if !bytes.Equal(AppendEvalState(nil, st2), re) {
				t.Fatalf("eval state not canonical: %+v vs %+v", st, st2)
			}
		}
		if st, err := DecodeLaneState(data); err == nil {
			re := AppendLaneState(nil, st)
			st2, err2 := DecodeLaneState(re)
			if err2 != nil {
				t.Fatalf("re-decode of valid lane state failed: %v", err2)
			}
			if !bytes.Equal(AppendLaneState(nil, st2), re) {
				t.Fatalf("lane state not canonical: %+v vs %+v", st, st2)
			}
		}
	})
}
