// Package durable persists displayer evidence across process restarts.
//
// The paper's property guarantees (Tables 1-3) hang off exactly two pieces
// of in-memory state: the Alert Displayer's filter evidence (dedup keys,
// Received/Missed sets behind ad.Snapshotter) and the Condition Evaluators'
// per-variable history windows. This package gives both a write-ahead log
// with periodic compacting checkpoints, so a killed and restarted AD or CE
// process reloads its evidence and resumes mid-stream instead of replaying
// from genesis.
//
// The on-disk format is a single append-only file per component:
//
//	header:  "CMWL" magic, one version byte, three reserved bytes
//	record:  [1B kind][4B big-endian payload length][payload][4B CRC32-C]
//
// Record kinds are RecCheckpoint ('C', a full state snapshot) and RecDelta
// ('D', one incremental event: a displayed alert for AD logs, an accepted
// update for CE logs). The CRC is Castagnoli, computed over kind + length +
// payload. On reopen the log is scanned front to back: a damaged record
// followed by at least one valid record is skipped and counted as corrupt
// (a torn middle cannot happen under append-only writes, so this indicates
// media damage); damaged or incomplete bytes at the tail are the signature
// of a torn write during a crash and are truncated away. Replay starts at
// the newest checkpoint — everything before it is superseded.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"condmon/internal/obs"
)

const (
	walMagic   = "CMWL"
	walVersion = 1

	headerSize     = 8 // magic + version + reserved
	recHeaderSize  = 5 // kind + payload length
	recTrailerSize = 4 // CRC32-C

	// maxRecordSize bounds one payload so a corrupted length field can
	// never drive the scanner into a multi-gigabyte allocation.
	maxRecordSize = 1 << 28
)

// Record kinds stored in a WAL frame.
const (
	// RecCheckpoint carries a full serialized state snapshot; replay
	// restores it and then applies only the deltas that follow.
	RecCheckpoint byte = 'C'
	// RecDelta carries one incremental event to re-apply on top of the
	// latest checkpoint (or an empty state if none exists).
	RecDelta byte = 'D'
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Metrics holds the nil-safe counters a Log reports into. A nil *Metrics
// (or any nil field) disables that measurement without branching at call
// sites, matching the repo-wide observability contract.
type Metrics struct {
	// Appends counts delta records written (durable.wal.appends).
	Appends *obs.Counter
	// Checkpoints counts checkpoint records written, whether appended or
	// via compaction (durable.wal.checkpoints).
	Checkpoints *obs.Counter
	// Compactions counts whole-file compactions (durable.wal.compactions).
	Compactions *obs.Counter
	// Corrupt counts CRC-damaged mid-file records skipped during an open
	// scan (durable.wal.corrupt).
	Corrupt *obs.Counter
	// TornTail counts reopens that truncated an incomplete or damaged
	// tail left by a crash mid-write (durable.wal.torn).
	TornTail *obs.Counter
	// Replayed counts records delivered to Replay callbacks
	// (durable.wal.replayed).
	Replayed *obs.Counter
}

func (m *Metrics) incAppends() {
	if m != nil && m.Appends != nil {
		m.Appends.Inc()
	}
}

func (m *Metrics) incCheckpoints() {
	if m != nil && m.Checkpoints != nil {
		m.Checkpoints.Inc()
	}
}

func (m *Metrics) incCompactions() {
	if m != nil && m.Compactions != nil {
		m.Compactions.Inc()
	}
}

func (m *Metrics) addCorrupt(n int64) {
	if m != nil && m.Corrupt != nil {
		m.Corrupt.Add(n)
	}
}

func (m *Metrics) incTornTail() {
	if m != nil && m.TornTail != nil {
		m.TornTail.Inc()
	}
}

func (m *Metrics) incReplayed() {
	if m != nil && m.Replayed != nil {
		m.Replayed.Inc()
	}
}

// RegisterMetrics creates the durable.wal.* counter family on reg and
// returns a Metrics wired to it. A nil registry returns nil, which every
// Log method tolerates.
func RegisterMetrics(reg *obs.Registry, prefix string) *Metrics {
	if reg == nil {
		return nil
	}
	if prefix == "" {
		prefix = "durable.wal"
	}
	return &Metrics{
		Appends:     reg.Counter(prefix + ".appends"),
		Checkpoints: reg.Counter(prefix + ".checkpoints"),
		Compactions: reg.Counter(prefix + ".compactions"),
		Corrupt:     reg.Counter(prefix + ".corrupt"),
		TornTail:    reg.Counter(prefix + ".torn"),
		Replayed:    reg.Counter(prefix + ".replayed"),
	}
}

// Options configures a Log's durability/throughput trade-off and its
// observability hookup.
type Options struct {
	// SyncEvery is the fsync policy for delta appends: 1 fsyncs after
	// every record (strongest, slowest), N>1 after every N records, and
	// 0 leaves delta persistence to the OS page cache (a crash may lose
	// the most recent deltas, which the recovery model treats exactly
	// like front-link loss). Checkpoints, compactions, and Close always
	// fsync regardless of this setting.
	SyncEvery int
	// Metrics receives the durable.wal.* counters; nil disables them.
	Metrics *Metrics
}

// recRef locates one valid record inside the file.
type recRef struct {
	off  int64
	kind byte
	size int32
}

// Log is a single-component write-ahead log: an append-only file of
// CRC-framed checkpoint and delta records. A Log is safe for concurrent use
// by multiple goroutines — in a live system the appending side (the AD
// accept path, the CE feed loop) and the recovering side (a Replay swapping
// in rebuilt state) may run on different goroutines. Replay holds the
// log's lock for its duration, so its callback must not call back into the
// same Log.
type Log struct {
	path string
	opts Options

	mu       sync.Mutex
	f        *os.File
	end      int64    // offset one past the last valid record
	recs     []recRef // valid records in file order
	lastCkpt int      // index into recs of the newest checkpoint, -1 if none
	pending  int      // appends since the last fsync
	buf      []byte   // frame scratch, reused across appends
}

// Open opens (creating if absent) the WAL at path and scans it for valid
// records, truncating any torn tail left by a crash. The returned Log is
// positioned to append.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", path, err)
	}
	l := &Log{path: path, f: f, opts: opts, lastCkpt: -1}
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// scan validates the header, indexes every intact record, counts and skips
// mid-file corruption, and truncates a torn tail.
func (l *Log) scan() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("durable: stat %s: %w", l.path, err)
	}
	size := info.Size()
	if size < headerSize {
		// Empty file, or a crash tore even the header: start fresh.
		if err := l.writeHeader(); err != nil {
			return err
		}
		if size != 0 {
			l.opts.Metrics.incTornTail()
		}
		l.end = headerSize
		return nil
	}
	var hdr [headerSize]byte
	if _, err := l.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("durable: read header %s: %w", l.path, err)
	}
	if string(hdr[:4]) != walMagic {
		return fmt.Errorf("durable: %s is not a condmon WAL (bad magic)", l.path)
	}
	if hdr[4] != walVersion {
		return fmt.Errorf("durable: %s: unsupported WAL version %d (want %d)", l.path, hdr[4], walVersion)
	}

	l.end = headerSize
	off := int64(headerSize)
	pendingCorrupt := int64(0) // damaged records awaiting a valid successor
	var h [recHeaderSize]byte
	for off < size {
		if off+recHeaderSize+recTrailerSize > size {
			break // incomplete frame header: torn tail
		}
		if _, err := l.f.ReadAt(h[:], off); err != nil {
			return fmt.Errorf("durable: scan %s: %w", l.path, err)
		}
		kind := h[0]
		plen := int64(binary.BigEndian.Uint32(h[1:5]))
		if (kind != RecCheckpoint && kind != RecDelta) || plen > maxRecordSize {
			// Unrecognizable framing: record boundaries are lost from
			// here on, so the rest of the file is a torn tail.
			break
		}
		recEnd := off + recHeaderSize + plen + recTrailerSize
		if recEnd > size {
			break // payload runs past EOF: torn tail
		}
		frame := make([]byte, recHeaderSize+plen+recTrailerSize)
		if _, err := l.f.ReadAt(frame, off); err != nil {
			return fmt.Errorf("durable: scan %s: %w", l.path, err)
		}
		stored := binary.BigEndian.Uint32(frame[recHeaderSize+plen:])
		if crc32.Checksum(frame[:recHeaderSize+plen], castagnoli) != stored {
			// Framing is intact but the contents are damaged. Whether this
			// is mid-file corruption (skip) or a torn tail (truncate)
			// depends on whether a valid record follows.
			pendingCorrupt++
			off = recEnd
			continue
		}
		if pendingCorrupt > 0 {
			l.opts.Metrics.addCorrupt(pendingCorrupt)
			pendingCorrupt = 0
		}
		l.recs = append(l.recs, recRef{off: off, kind: kind, size: int32(plen)})
		if kind == RecCheckpoint {
			l.lastCkpt = len(l.recs) - 1
		}
		l.end = recEnd
		off = recEnd
	}
	if l.end < size {
		// Torn or trailing-damaged bytes: drop them so the next append
		// starts on a clean frame boundary.
		if err := l.f.Truncate(l.end); err != nil {
			return fmt.Errorf("durable: truncate torn tail %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("durable: sync %s: %w", l.path, err)
		}
		l.opts.Metrics.incTornTail()
	}
	return nil
}

func (l *Log) writeHeader() error {
	var hdr [headerSize]byte
	copy(hdr[:], walMagic)
	hdr[4] = walVersion
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncate %s: %w", l.path, err)
	}
	if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("durable: write header %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", l.path, err)
	}
	return nil
}

// Append writes one delta record and applies the SyncEvery policy.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(RecDelta, payload); err != nil {
		return err
	}
	l.opts.Metrics.incAppends()
	return l.maybeSync()
}

// AppendCheckpoint writes one checkpoint record in place (without
// discarding history — see Compact for that) and fsyncs unconditionally:
// a checkpoint that is not durable is worse than none, because replay
// would trust it over the deltas it supersedes.
func (l *Log) AppendCheckpoint(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(RecCheckpoint, payload); err != nil {
		return err
	}
	l.lastCkpt = len(l.recs) - 1
	l.opts.Metrics.incCheckpoints()
	return l.sync()
}

func (l *Log) append(kind byte, payload []byte) error {
	if len(payload) > maxRecordSize {
		return fmt.Errorf("durable: %s: record payload %d exceeds %d bytes", l.path, len(payload), maxRecordSize)
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, kind)
	l.buf = binary.BigEndian.AppendUint32(l.buf, uint32(len(payload)))
	l.buf = append(l.buf, payload...)
	l.buf = binary.BigEndian.AppendUint32(l.buf, crc32.Checksum(l.buf, castagnoli))
	if _, err := l.f.WriteAt(l.buf, l.end); err != nil {
		return fmt.Errorf("durable: append %s: %w", l.path, err)
	}
	l.recs = append(l.recs, recRef{off: l.end, kind: kind, size: int32(len(payload))})
	l.end += int64(len(l.buf))
	return nil
}

func (l *Log) maybeSync() error {
	if l.opts.SyncEvery <= 0 {
		return nil
	}
	l.pending++
	if l.pending >= l.opts.SyncEvery {
		return l.sync()
	}
	return nil
}

func (l *Log) sync() error {
	l.pending = 0
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", l.path, err)
	}
	return nil
}

// Compact rewrites the log as a header plus a single checkpoint record,
// discarding all prior history. The new file is written to a temporary
// sibling, fsynced, and renamed over the log path, so a crash at any point
// leaves either the complete old log or the complete new one.
func (l *Log) Compact(checkpoint []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := l.path + ".tmp"
	g, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: compact %s: %w", l.path, err)
	}
	frame := make([]byte, 0, headerSize+recHeaderSize+len(checkpoint)+recTrailerSize)
	frame = append(frame, walMagic...)
	frame = append(frame, walVersion, 0, 0, 0)
	rec := make([]byte, 0, recHeaderSize+len(checkpoint)+recTrailerSize)
	rec = append(rec, RecCheckpoint)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(checkpoint)))
	rec = append(rec, checkpoint...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.Checksum(rec, castagnoli))
	frame = append(frame, rec...)
	if _, err := g.WriteAt(frame, 0); err != nil {
		g.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: compact %s: %w", l.path, err)
	}
	if err := g.Sync(); err != nil {
		g.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: compact %s: %w", l.path, err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		g.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: compact %s: %w", l.path, err)
	}
	// Make the rename itself durable; failure here is tolerable (the
	// rename is atomic in the filesystem's journal on the platforms we
	// target), so best effort.
	if d, err := os.Open(filepath.Dir(l.path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	l.f.Close()
	l.f = g
	l.recs = l.recs[:0]
	l.recs = append(l.recs, recRef{off: headerSize, kind: RecCheckpoint, size: int32(len(checkpoint))})
	l.lastCkpt = 0
	l.end = int64(len(frame))
	l.pending = 0
	l.opts.Metrics.incCheckpoints()
	l.opts.Metrics.incCompactions()
	return nil
}

// Replay streams the log's logical contents to fn in order, starting at
// the newest checkpoint (records before it are superseded; with no
// checkpoint, every delta from the beginning). It returns the number of
// records delivered; fn's first error stops the replay and is returned.
func (l *Log) Replay(fn func(kind byte, payload []byte) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := 0
	if l.lastCkpt >= 0 {
		start = l.lastCkpt
	}
	n := 0
	for _, r := range l.recs[start:] {
		payload := make([]byte, r.size)
		if _, err := l.f.ReadAt(payload, r.off+recHeaderSize); err != nil {
			return n, fmt.Errorf("durable: replay %s: %w", l.path, err)
		}
		if err := fn(r.kind, payload); err != nil {
			return n, err
		}
		n++
		l.opts.Metrics.incReplayed()
	}
	return n, nil
}

// Records reports how many valid records the log currently holds.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Size reports the byte length of the valid portion of the log file.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Path reports the log's file path.
func (l *Log) Path() string { return l.path }

// Sync forces an fsync regardless of the SyncEvery policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sync()
}

// Close fsyncs and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return fmt.Errorf("durable: close %s: %w", l.path, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("durable: close %s: %w", l.path, closeErr)
	}
	return nil
}
