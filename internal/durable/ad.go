// Alert Displayer durability: a write-ahead wrapper around any ad.Filter
// plus the matching recovery routine. Deltas are the displayed alerts
// themselves (wire 'A' frames), checkpoints are the filter's opaque
// ad.Snapshotter blob.
package durable

import (
	"fmt"

	"condmon/internal/ad"
	"condmon/internal/event"
	"condmon/internal/wire"
)

// LoggedFilter journals every displayed alert through a WAL before the
// wrapped filter's evidence changes. The write-ahead order errs toward
// suppression: if the process dies between the append and the in-memory
// Accept, replay treats the alert as displayed, so a restart can at worst
// fail to re-show an alert the user may not have seen — indistinguishable
// from front-link loss, which the paper's properties already tolerate —
// and never re-displays a duplicate.
//
// ad.Filter.Accept has no error return, so the first WAL failure is
// stashed and exposed via Err; filtering continues in-memory-only after
// that (the operator monitors durable.wal.* and Err to notice).
type LoggedFilter struct {
	inner        ad.Filter
	snap         ad.Snapshotter // nil when inner cannot checkpoint
	log          *Log
	compactEvery int
	deltas       int
	err          error
}

// LogFilter wraps f so every displayed alert is journaled to l. When f
// (or anything it wraps, via Unwrap chains) implements ad.Snapshotter and
// compactEvery > 0, the log is compacted to a single checkpoint after
// every compactEvery displayed alerts; otherwise the log only ever grows
// by deltas.
func LogFilter(f ad.Filter, l *Log, compactEvery int) *LoggedFilter {
	snap, _ := FilterSnapshotter(f)
	return &LoggedFilter{inner: f, snap: snap, log: l, compactEvery: compactEvery}
}

// Name reports the wrapped filter's name.
func (f *LoggedFilter) Name() string { return f.inner.Name() }

// Test delegates to the wrapped filter without touching the log: testing
// changes no evidence, so there is nothing to persist.
func (f *LoggedFilter) Test(a event.Alert) bool { return f.inner.Test(a) }

// Accept journals a as a delta record, then updates the wrapped filter's
// evidence, then compacts if the checkpoint interval elapsed. The
// compact-before-accept hazard does not arise here: at compaction time the
// in-memory state already includes a, so the checkpoint supersedes the
// just-written delta rather than losing it.
func (f *LoggedFilter) Accept(a event.Alert) {
	if f.err == nil {
		payload, err := wire.EncodeAlert(a)
		if err == nil {
			err = f.log.Append(payload)
		}
		if err != nil {
			f.err = fmt.Errorf("durable: journal alert for %s: %w", f.inner.Name(), err)
		}
	}
	f.inner.Accept(a)
	f.deltas++
	if f.err == nil && f.snap != nil && f.compactEvery > 0 && f.deltas >= f.compactEvery {
		f.deltas = 0
		blob, err := f.snap.Snapshot()
		if err == nil {
			err = f.log.Compact(blob)
		}
		if err != nil {
			f.err = fmt.Errorf("durable: checkpoint %s: %w", f.inner.Name(), err)
		}
	}
}

// Err reports the first WAL failure encountered on the accept path, or
// nil while journaling is healthy.
func (f *LoggedFilter) Err() error { return f.err }

// Unwrap exposes the journaled filter so snapshot-aware callers (the
// runtime Displayer, conformance tests) can reach through the wrapper.
func (f *LoggedFilter) Unwrap() ad.Filter { return f.inner }

// Snapshot passes through to the wrapped filter's Snapshotter.
func (f *LoggedFilter) Snapshot() ([]byte, error) {
	if f.snap == nil {
		return nil, fmt.Errorf("durable: filter %s does not snapshot", f.inner.Name())
	}
	return f.snap.Snapshot()
}

// Restore passes through to the wrapped filter's Snapshotter.
func (f *LoggedFilter) Restore(data []byte) error {
	if f.snap == nil {
		return fmt.Errorf("durable: filter %s does not snapshot", f.inner.Name())
	}
	return f.snap.Restore(data)
}

// RecoverFilter replays l into f: checkpoint records restore the filter's
// snapshot, delta records re-offer the alerts that were displayed before
// the crash (re-offering reproduces the original evidence trajectory —
// each replayed alert passed Test at the same point of the same history).
// It returns the number of records applied. Call it on a freshly
// constructed filter of the same algorithm and variable set, before
// wrapping with LogFilter and before the filter sees live traffic.
func RecoverFilter(l *Log, f ad.Filter) (int, error) {
	snap, _ := FilterSnapshotter(f)
	return l.Replay(func(kind byte, payload []byte) error {
		switch kind {
		case RecCheckpoint:
			if snap == nil {
				return fmt.Errorf("durable: filter %s cannot restore a checkpoint", f.Name())
			}
			return snap.Restore(payload)
		case RecDelta:
			a, rest, err := wire.DecodeAlert(payload)
			if err != nil {
				return fmt.Errorf("durable: decode alert delta: %w", err)
			}
			if len(rest) != 0 {
				return fmt.Errorf("durable: %d trailing bytes after alert delta", len(rest))
			}
			ad.Offer(f, a)
			return nil
		default:
			return fmt.Errorf("durable: unknown record kind %q", kind)
		}
	})
}

// FilterSnapshotter finds the ad.Snapshotter behind f, following Unwrap
// chains through instrumentation and journaling wrappers.
func FilterSnapshotter(f ad.Filter) (ad.Snapshotter, bool) {
	for f != nil {
		if s, ok := f.(ad.Snapshotter); ok {
			return s, true
		}
		u, ok := f.(interface{ Unwrap() ad.Filter })
		if !ok {
			return nil, false
		}
		f = u.Unwrap()
	}
	return nil, false
}
