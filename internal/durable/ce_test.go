package durable

import (
	"fmt"
	"path/filepath"
	"testing"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
)

// ceStream builds a lossy update sequence for v: seqnos 1..n with every
// update where seq%7 == 3 dropped, values a sawtooth that crosses the test
// conditions' limits often enough to fire alerts on both sides of any
// crash point.
func ceStream(v string, n int) []event.Update {
	var us []event.Update
	for seq := int64(1); seq <= int64(n); seq++ {
		if seq%7 == 3 {
			continue
		}
		us = append(us, event.U(event.VarName(v), seq, float64((seq*137)%1000)))
	}
	return us
}

func alertKeys(as []event.Alert) []string {
	keys := make([]string, len(as))
	for i, a := range as {
		keys[i] = a.Key()
	}
	return keys
}

func TestEvaluatorJournalKillRestartEquivalence(t *testing.T) {
	mkCond := func() cond.Condition { return cond.MustParse("deep", "x[0] - x[-2] > 150") }
	stream := ceStream("x", 60)
	for _, compactEvery := range []int{0, 5} {
		t.Run(fmt.Sprintf("compact=%d", compactEvery), func(t *testing.T) {
			base, err := ce.New("CE1", mkCond())
			if err != nil {
				t.Fatal(err)
			}
			var want []event.Alert
			for _, u := range stream {
				if a, fired, err := base.Feed(u); err != nil {
					t.Fatal(err)
				} else if fired {
					want = append(want, a)
				}
			}
			if len(want) == 0 {
				t.Fatal("baseline fired no alerts; the stream is too tame to prove anything")
			}

			path := filepath.Join(t.TempDir(), "ce.wal")
			l := openT(t, path, Options{})
			eval, err := ce.New("CE1", mkCond())
			if err != nil {
				t.Fatal(err)
			}
			eval.SetJournal(EvaluatorJournal(l, eval, compactEvery))
			crashAt := len(stream) / 2
			var got []event.Alert
			for _, u := range stream[:crashAt] {
				if a, fired, err := eval.Feed(u); err != nil {
					t.Fatal(err)
				} else if fired {
					got = append(got, a)
				}
			}
			// Kill: abandon evaluator and log handle, restart from disk.
			l2 := openT(t, path, Options{})
			eval2, err := ce.New("CE1", mkCond())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RecoverEvaluator(l2, eval2); err != nil {
				t.Fatalf("RecoverEvaluator: %v", err)
			}
			eval2.SetJournal(EvaluatorJournal(l2, eval2, compactEvery))
			for _, u := range stream[crashAt:] {
				if a, fired, err := eval2.Feed(u); err != nil {
					t.Fatal(err)
				} else if fired {
					got = append(got, a)
				}
			}
			l2.Close()

			wk, gk := alertKeys(want), alertKeys(got)
			if len(wk) != len(gk) {
				t.Fatalf("crash run fired %d alerts, baseline %d", len(gk), len(wk))
			}
			for i := range wk {
				if wk[i] != gk[i] {
					t.Fatalf("alert %d: crash run %s, baseline %s", i, gk[i], wk[i])
				}
			}
		})
	}
}

// laneFleet mixes packable conditions (which share windows) with an
// unpackable straggler, so LaneState checkpoints cover both halves.
func laneFleet() []cond.Condition {
	return []cond.Condition{
		cond.Threshold{CondName: "hot", Var: "x", Limit: 700, Above: true},
		cond.MustParse("deep", "x[0] - x[-2] > 150"),
		cond.NewTempDiff("x", "y"),
		cond.NewLemma6Condition("x", "y"),
	}
}

// laneStream interleaves x and y updates so a mid-stream crash leaves both
// variables' windows partially filled.
func laneStream(n int) []event.Update {
	var us []event.Update
	for seq := int64(1); seq <= int64(n); seq++ {
		if seq%7 != 3 {
			us = append(us, event.U("x", seq, float64((seq*137)%1000)))
		}
		if seq%5 != 2 {
			us = append(us, event.U("y", seq, float64((seq*211)%1000)))
		}
	}
	return us
}

func feedLane(t *testing.T, se *ce.SharedEvaluator, us []event.Update) []ce.MemberAlert {
	t.Helper()
	var out []ce.MemberAlert
	for _, u := range us {
		ms, err := se.Feed(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ms...)
	}
	return out
}

func newLane(t *testing.T, journal func(event.Update) error) *ce.SharedEvaluator {
	t.Helper()
	se, err := ce.NewSharedEvaluator("CE1", false)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range laneFleet() {
		if _, err := se.Register(c, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if journal != nil {
		se.SetJournal(journal)
	}
	return se
}

func compareMemberAlerts(t *testing.T, got, want []ce.MemberAlert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("crash run fired %d member alerts, baseline %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Token != want[i].Token || got[i].Alert.Key() != want[i].Alert.Key() {
			t.Fatalf("member alert %d: crash run (token %d, %s), baseline (token %d, %s)",
				i, got[i].Token, got[i].Alert.Key(), want[i].Token, want[i].Alert.Key())
		}
	}
}

func TestLaneJournalKillRestartEquivalence(t *testing.T) {
	stream := laneStream(60)
	for _, compactEvery := range []int{0, 16} {
		t.Run(fmt.Sprintf("compact=%d", compactEvery), func(t *testing.T) {
			base := newLane(t, nil)
			want := feedLane(t, base, stream)
			if len(want) == 0 {
				t.Fatal("baseline fired no member alerts")
			}

			path := filepath.Join(t.TempDir(), "lane.wal")
			l := openT(t, path, Options{})
			se := newLane(t, nil)
			se.SetJournal(LaneJournal(l, se, compactEvery))
			crashAt := len(stream) / 2
			got := feedLane(t, se, stream[:crashAt])

			// Fresh-process restart: new lane, same registrations, state
			// rebuilt from the log alone.
			l2 := openT(t, path, Options{})
			se2 := newLane(t, nil)
			if _, err := RecoverLane(l2, se2); err != nil {
				t.Fatalf("RecoverLane: %v", err)
			}
			se2.SetJournal(LaneJournal(l2, se2, compactEvery))
			got = append(got, feedLane(t, se2, stream[crashAt:])...)
			l2.Close()

			compareMemberAlerts(t, got, want)
		})
	}
}

// TestLaneCrashRecoverInPlace exercises the in-place recovery path the
// engine's visit hook uses: the same lane object is crashed (windows
// cleared) and refilled from its own journal without re-registration.
func TestLaneCrashRecoverInPlace(t *testing.T) {
	stream := laneStream(60)
	base := newLane(t, nil)
	want := feedLane(t, base, stream)

	path := filepath.Join(t.TempDir(), "lane.wal")
	l := openT(t, path, Options{})
	defer l.Close()
	se := newLane(t, nil)
	se.SetJournal(LaneJournal(l, se, 16))
	crashAt := len(stream) / 2
	got := feedLane(t, se, stream[:crashAt])

	se.Crash()
	if _, err := RecoverLane(l, se); err != nil {
		t.Fatalf("RecoverLane in place: %v", err)
	}
	got = append(got, feedLane(t, se, stream[crashAt:])...)
	compareMemberAlerts(t, got, want)
}

// TestLaneCrashWithoutRecoveryDiverges is the negative control: losing the
// windows without replaying the journal must change the displayed stream,
// otherwise the equivalence tests above prove nothing.
func TestLaneCrashWithoutRecoveryDiverges(t *testing.T) {
	stream := laneStream(60)
	base := newLane(t, nil)
	want := feedLane(t, base, stream)

	se := newLane(t, nil)
	crashAt := len(stream) / 2
	got := feedLane(t, se, stream[:crashAt])
	se.Crash()
	got = append(got, feedLane(t, se, stream[crashAt:])...)

	if len(got) == len(want) {
		same := true
		for i := range want {
			if got[i].Token != want[i].Token || got[i].Alert.Key() != want[i].Alert.Key() {
				same = false
				break
			}
		}
		if same {
			t.Fatal("unrecovered crash produced the baseline stream; crash points are not observable")
		}
	}
}

func TestRestoreWindowValidation(t *testing.T) {
	eval, err := ce.New("CE1", cond.MustParse("deep", "x[0] - x[-2] > 150"))
	if err != nil {
		t.Fatal(err)
	}
	if err := eval.RestoreWindows([]event.History{hist("nope", [2]int64{1, 1})}); err == nil {
		t.Fatal("RestoreWindows accepted a window for an unknown variable")
	}
	// Non-strictly-decreasing seqnos violate the most-recent-first layout.
	if err := eval.RestoreWindows([]event.History{hist("x", [2]int64{2, 1}, [2]int64{2, 1})}); err == nil {
		t.Fatal("RestoreWindows accepted non-decreasing seqnos")
	}
	if err := eval.RestoreWindows([]event.History{
		hist("x", [2]int64{9, 1}, [2]int64{8, 2}, [2]int64{7, 3}, [2]int64{6, 4}),
	}); err == nil {
		t.Fatal("RestoreWindows accepted a window deeper than its degree")
	}
	if err := eval.RestoreWindows([]event.History{hist("x", [2]int64{9, 1}, [2]int64{7, 2})}); err != nil {
		t.Fatalf("RestoreWindows rejected a valid window: %v", err)
	}
}
