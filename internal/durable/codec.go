// CE checkpoint codec: versioned, strictly-validated binary serialization
// of evaluator window state. AD checkpoints need no codec of their own —
// ad.Snapshotter already produces an opaque self-describing blob — so this
// file only covers the CE half: plain evaluators (EvalState) and shared
// engine lanes (LaneState).
//
// Layout (all integers big-endian, counts and string lengths uvarint):
//
//	EvalState:  [1B version][uvarint nWindows] nWindows × window
//	LaneState:  [1B version][uvarint nShared] nShared × window
//	            [uvarint nStragglers] nStragglers × ([string cond] [uvarint n] n × window)
//	window:     [string var][uvarint nRecent] nRecent × ([8B seqno][8B float64 bits])
//
// Windows store updates most-recent-first, exactly as event.History.Recent
// does; each update's Var is implied by the window and re-stamped on
// decode. Decoding is strict: counts are bounded against the remaining
// bytes before allocating, and trailing bytes are an error — the contract
// FuzzCheckpointRoundTrip pins.
package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"condmon/internal/event"
)

// stateVersion is the CE checkpoint codec version byte.
const stateVersion = 1

// perUpdateSize is the encoded size of one window entry (seqno + value).
const perUpdateSize = 16

// EvalState is the durable evidence of one plain ce.Evaluator: the full
// contents of its per-variable history windows.
type EvalState struct {
	// Windows holds one history per condition variable, most recent first.
	Windows []event.History
}

// StragglerState is the durable evidence of one private (non-packable)
// evaluator riding inside a shared lane.
type StragglerState struct {
	// Cond names the straggler's condition; recovery routes the windows
	// back to the evaluator registered under the same name.
	Cond string
	// Windows holds the straggler's private history windows.
	Windows []event.History
}

// LaneState is the durable evidence of one ce.SharedEvaluator lane: the
// shared per-variable windows plus every straggler's private windows.
type LaneState struct {
	// Shared holds the lane's shared per-variable windows.
	Shared []event.History
	// Stragglers holds the private window sets, sorted by condition name.
	Stragglers []StragglerState
}

// AppendEvalState appends st's encoding to dst and returns the result.
func AppendEvalState(dst []byte, st EvalState) []byte {
	dst = append(dst, stateVersion)
	dst = appendHistories(dst, st.Windows)
	return dst
}

// DecodeEvalState decodes a checkpoint produced by AppendEvalState,
// rejecting version mismatches, malformed counts, and trailing bytes.
func DecodeEvalState(b []byte) (EvalState, error) {
	var st EvalState
	rest, err := decodeVersion(b)
	if err != nil {
		return st, err
	}
	st.Windows, rest, err = readHistories(rest)
	if err != nil {
		return st, err
	}
	if len(rest) != 0 {
		return EvalState{}, fmt.Errorf("durable: %d trailing bytes after evaluator state", len(rest))
	}
	return st, nil
}

// AppendLaneState appends st's encoding to dst and returns the result.
func AppendLaneState(dst []byte, st LaneState) []byte {
	dst = append(dst, stateVersion)
	dst = appendHistories(dst, st.Shared)
	dst = binary.AppendUvarint(dst, uint64(len(st.Stragglers)))
	for _, sg := range st.Stragglers {
		dst = appendStr(dst, sg.Cond)
		dst = appendHistories(dst, sg.Windows)
	}
	return dst
}

// DecodeLaneState decodes a checkpoint produced by AppendLaneState with
// the same strictness as DecodeEvalState.
func DecodeLaneState(b []byte) (LaneState, error) {
	var st LaneState
	rest, err := decodeVersion(b)
	if err != nil {
		return st, err
	}
	st.Shared, rest, err = readHistories(rest)
	if err != nil {
		return st, err
	}
	n, rest, err := readCount(rest, 1)
	if err != nil {
		return LaneState{}, fmt.Errorf("durable: straggler count: %w", err)
	}
	if n > 0 {
		st.Stragglers = make([]StragglerState, 0, n)
	}
	for i := 0; i < n; i++ {
		var sg StragglerState
		sg.Cond, rest, err = readStr(rest)
		if err != nil {
			return LaneState{}, fmt.Errorf("durable: straggler %d: %w", i, err)
		}
		sg.Windows, rest, err = readHistories(rest)
		if err != nil {
			return LaneState{}, fmt.Errorf("durable: straggler %q: %w", sg.Cond, err)
		}
		st.Stragglers = append(st.Stragglers, sg)
	}
	if len(rest) != 0 {
		return LaneState{}, fmt.Errorf("durable: %d trailing bytes after lane state", len(rest))
	}
	return st, nil
}

func decodeVersion(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("durable: empty checkpoint")
	}
	if b[0] != stateVersion {
		return nil, fmt.Errorf("durable: unsupported checkpoint version %d (want %d)", b[0], stateVersion)
	}
	return b[1:], nil
}

func appendHistories(dst []byte, hs []event.History) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(hs)))
	for _, h := range hs {
		dst = appendStr(dst, string(h.Var))
		dst = binary.AppendUvarint(dst, uint64(len(h.Recent)))
		for _, u := range h.Recent {
			dst = binary.BigEndian.AppendUint64(dst, uint64(u.SeqNo))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(u.Value))
		}
	}
	return dst
}

func readHistories(b []byte) ([]event.History, []byte, error) {
	// Each window needs at least a one-byte var length and a one-byte
	// update count, bounding the worst-case allocation.
	n, b, err := readCount(b, 2)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: window count: %w", err)
	}
	var hs []event.History
	if n > 0 {
		hs = make([]event.History, 0, n)
	}
	for i := 0; i < n; i++ {
		var h event.History
		var v string
		v, b, err = readStr(b)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: window %d: %w", i, err)
		}
		h.Var = event.VarName(v)
		var m int
		m, b, err = readCount(b, perUpdateSize)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: window %q: %w", v, err)
		}
		if m > 0 {
			h.Recent = make([]event.Update, 0, m)
		}
		for j := 0; j < m; j++ {
			h.Recent = append(h.Recent, event.Update{
				Var:   h.Var,
				SeqNo: int64(binary.BigEndian.Uint64(b[:8])),
				Value: math.Float64frombits(binary.BigEndian.Uint64(b[8:16])),
			})
			b = b[perUpdateSize:]
		}
		hs = append(hs, h)
	}
	return hs, b, nil
}

// readCount reads a uvarint count and rejects any value whose elements
// (minSize bytes each, at minimum) could not fit in the remaining input —
// the guard that keeps a fuzzed length field from driving allocation.
func readCount(b []byte, minSize int) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated count")
	}
	b = b[n:]
	if v > uint64(len(b))/uint64(minSize) {
		return 0, nil, fmt.Errorf("count %d exceeds remaining %d bytes", v, len(b))
	}
	return int(v), b, nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readStr(b []byte) (string, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return "", nil, fmt.Errorf("truncated string length")
	}
	b = b[n:]
	if v > uint64(len(b)) {
		return "", nil, fmt.Errorf("string length %d exceeds remaining %d bytes", v, len(b))
	}
	return string(b[:v]), b[v:], nil
}
