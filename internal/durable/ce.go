// Condition Evaluator durability: journal sinks that log every accepted
// update as a WAL delta (wire 'U' frames), checkpoint snapshots of window
// state, and the matching recovery routines for plain evaluators and
// shared engine lanes.
package durable

import (
	"fmt"

	"condmon/internal/ce"
	"condmon/internal/event"
	"condmon/internal/wire"
)

// SnapshotEvaluator serializes e's window state as a checkpoint payload.
func SnapshotEvaluator(e *ce.Evaluator) []byte {
	return AppendEvalState(nil, EvalState{Windows: e.WindowStates()})
}

// RestoreEvaluator loads a checkpoint payload produced by
// SnapshotEvaluator back into e.
func RestoreEvaluator(e *ce.Evaluator, blob []byte) error {
	st, err := DecodeEvalState(blob)
	if err != nil {
		return err
	}
	return e.RestoreWindows(st.Windows)
}

// RecoverEvaluator replays l into e — checkpoints restore window state,
// deltas re-absorb the journaled updates — and returns the number of
// records applied. Call it on an evaluator whose windows are empty (fresh
// or crashed) before it sees live traffic.
func RecoverEvaluator(l *Log, e *ce.Evaluator) (int, error) {
	return l.Replay(func(kind byte, payload []byte) error {
		switch kind {
		case RecCheckpoint:
			return RestoreEvaluator(e, payload)
		case RecDelta:
			u, err := decodeUpdateDelta(payload)
			if err != nil {
				return err
			}
			e.Absorb(u)
			return nil
		default:
			return fmt.Errorf("durable: unknown record kind %q", kind)
		}
	})
}

// EvaluatorJournal builds a ce.Evaluator journal sink backed by l: each
// accepted update is appended as a delta, and — when compactEvery > 0 —
// the log is compacted to a single checkpoint every compactEvery deltas.
// Compaction runs before the append, so the delta of the update currently
// being journaled always survives the rewrite. Attach the result with
// e.SetJournal.
func EvaluatorJournal(l *Log, e *ce.Evaluator, compactEvery int) func(event.Update) error {
	deltas := 0
	var buf []byte
	return func(u event.Update) error {
		if compactEvery > 0 && deltas >= compactEvery {
			deltas = 0
			// The evaluator has already applied u at this point, so the
			// checkpoint includes it; the delta appended below replays as
			// a harmless stale push.
			if err := l.Compact(SnapshotEvaluator(e)); err != nil {
				return err
			}
		}
		b, err := wire.AppendUpdate(buf[:0], u)
		if err != nil {
			return err
		}
		buf = b
		if err := l.Append(b); err != nil {
			return err
		}
		deltas++
		return nil
	}
}

// SnapshotLane serializes a shared lane's state — shared windows plus
// every straggler's private windows — as a checkpoint payload.
func SnapshotLane(se *ce.SharedEvaluator) []byte {
	st := LaneState{Shared: se.SharedWindowStates()}
	se.VisitStragglers(func(ev *ce.Evaluator) {
		st.Stragglers = append(st.Stragglers, StragglerState{
			Cond:    ev.Condition().Name(),
			Windows: ev.WindowStates(),
		})
	})
	return AppendLaneState(nil, st)
}

// RestoreLane loads a checkpoint payload produced by SnapshotLane back
// into se. Stragglers named in the checkpoint but no longer registered
// are skipped, matching the lane's lenient recovery contract.
func RestoreLane(se *ce.SharedEvaluator, blob []byte) error {
	st, err := DecodeLaneState(blob)
	if err != nil {
		return err
	}
	if err := se.RestoreSharedWindows(st.Shared); err != nil {
		return err
	}
	for _, sg := range st.Stragglers {
		ev := se.StragglerFor(sg.Cond)
		if ev == nil {
			continue
		}
		if err := ev.RestoreWindows(sg.Windows); err != nil {
			return err
		}
	}
	return nil
}

// RecoverLane replays l into se, the lane counterpart of
// RecoverEvaluator. The lane's registration set must match the journaled
// run for the replayed deliveries to reproduce the same windows.
func RecoverLane(l *Log, se *ce.SharedEvaluator) (int, error) {
	return l.Replay(func(kind byte, payload []byte) error {
		switch kind {
		case RecCheckpoint:
			return RestoreLane(se, payload)
		case RecDelta:
			u, err := decodeUpdateDelta(payload)
			if err != nil {
				return err
			}
			se.Absorb(u)
			return nil
		default:
			return fmt.Errorf("durable: unknown record kind %q", kind)
		}
	})
}

// LaneJournal builds a SharedEvaluator journal sink backed by l. Unlike
// EvaluatorJournal, the lane journals each delivery before applying it, so
// here the compact-before-append ordering is load-bearing: compacting
// after the append would write a checkpoint that predates the just-logged
// update while discarding its delta, silently losing it. Attach with
// se.SetJournal.
func LaneJournal(l *Log, se *ce.SharedEvaluator, compactEvery int) func(event.Update) error {
	deltas := 0
	var buf []byte
	return func(u event.Update) error {
		if compactEvery > 0 && deltas >= compactEvery {
			deltas = 0
			if err := l.Compact(SnapshotLane(se)); err != nil {
				return err
			}
		}
		b, err := wire.AppendUpdate(buf[:0], u)
		if err != nil {
			return err
		}
		buf = b
		if err := l.Append(b); err != nil {
			return err
		}
		deltas++
		return nil
	}
}

func decodeUpdateDelta(payload []byte) (event.Update, error) {
	u, rest, err := wire.DecodeUpdate(payload)
	if err != nil {
		return event.Update{}, fmt.Errorf("durable: decode update delta: %w", err)
	}
	if len(rest) != 0 {
		return event.Update{}, fmt.Errorf("durable: %d trailing bytes after update delta", len(rest))
	}
	return u, nil
}
