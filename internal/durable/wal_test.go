package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"condmon/internal/obs"
)

type recVal struct {
	kind    byte
	payload string
}

func openT(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l
}

func replayAll(t *testing.T, l *Log) []recVal {
	t.Helper()
	var out []recVal
	if _, err := l.Replay(func(kind byte, payload []byte) error {
		out = append(out, recVal{kind: kind, payload: string(payload)})
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func wantRecs(t *testing.T, got []recVal, want ...recVal) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ad.wal")
	l := openT(t, path, Options{})
	for _, p := range []string{"aaaa", "bbbb"} {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Without a checkpoint, replay starts at the first delta.
	wantRecs(t, replayAll(t, l), recVal{RecDelta, "aaaa"}, recVal{RecDelta, "bbbb"})

	if err := l.AppendCheckpoint([]byte("state1")); err != nil {
		t.Fatalf("AppendCheckpoint: %v", err)
	}
	if err := l.Append([]byte("cccc")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// With a checkpoint, earlier deltas are superseded.
	want := []recVal{{RecCheckpoint, "state1"}, {RecDelta, "cccc"}}
	wantRecs(t, replayAll(t, l), want...)
	if l.Records() != 4 {
		t.Fatalf("Records = %d, want 4", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A clean reopen sees the identical logical state.
	l2 := openT(t, path, Options{})
	defer l2.Close()
	wantRecs(t, replayAll(t, l2), want...)
}

func TestWALReplayIdempotence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l := openT(t, path, Options{})
	defer l.Close()
	if err := l.AppendCheckpoint([]byte("ck")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"d1", "d2", "d3"} {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	first := replayAll(t, l)
	second := replayAll(t, l)
	wantRecs(t, second, first...)
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l := openT(t, path, Options{})
	if err := l.Append([]byte("keep1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("keep2")); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a record header claiming 100 payload
	// bytes with only a few actually written.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{RecDelta, 0, 0, 0, 100, 'x', 'y', 'z'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	m := RegisterMetrics(reg, "")
	l2 := openT(t, path, Options{Metrics: m})
	wantRecs(t, replayAll(t, l2), recVal{RecDelta, "keep1"}, recVal{RecDelta, "keep2"})
	if l2.Size() != goodSize {
		t.Fatalf("Size after torn-tail reopen = %d, want %d", l2.Size(), goodSize)
	}
	if got := m.TornTail.Value(); got != 1 {
		t.Fatalf("torn counter = %d, want 1", got)
	}
	if got := m.Corrupt.Value(); got != 0 {
		t.Fatalf("corrupt counter = %d, want 0 (a torn tail is not mid-file corruption)", got)
	}
	// The log must be appendable again on a clean frame boundary.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatalf("Append after torn-tail recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openT(t, path, Options{})
	defer l3.Close()
	wantRecs(t, replayAll(t, l3),
		recVal{RecDelta, "keep1"}, recVal{RecDelta, "keep2"}, recVal{RecDelta, "after"})
}

// frameLen is the on-disk size of a record with an n-byte payload.
func frameLen(n int) int64 { return int64(recHeaderSize + n + recTrailerSize) }

func TestWALCorruptMiddleSkippedAndCounted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l := openT(t, path, Options{})
	for _, p := range []string{"aaaa", "bbbb", "cccc"} {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record. A valid record follows,
	// so the scanner must skip it and count durable.wal.corrupt — not
	// truncate.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(headerSize) + frameLen(4) + int64(recHeaderSize) // rec2's first payload byte
	if _, err := f.WriteAt([]byte{'X'}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	m := RegisterMetrics(reg, "")
	l2 := openT(t, path, Options{Metrics: m})
	defer l2.Close()
	wantRecs(t, replayAll(t, l2), recVal{RecDelta, "aaaa"}, recVal{RecDelta, "cccc"})
	if got := m.Corrupt.Value(); got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if got := m.TornTail.Value(); got != 0 {
		t.Fatalf("torn counter = %d, want 0", got)
	}
}

func TestWALCorruptLastRecordIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.wal")
	l := openT(t, path, Options{})
	for _, p := range []string{"aaaa", "bbbb"} {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the final record's payload: with no valid successor this is
	// indistinguishable from a torn write and must be truncated away.
	off := int64(headerSize) + frameLen(4) + int64(recHeaderSize)
	if _, err := f.WriteAt([]byte{'X'}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	m := RegisterMetrics(reg, "")
	l2 := openT(t, path, Options{Metrics: m})
	defer l2.Close()
	wantRecs(t, replayAll(t, l2), recVal{RecDelta, "aaaa"})
	if got := m.TornTail.Value(); got != 1 {
		t.Fatalf("torn counter = %d, want 1", got)
	}
	if got := m.Corrupt.Value(); got != 0 {
		t.Fatalf("corrupt counter = %d, want 0", got)
	}
}

func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	reg := obs.NewRegistry()
	m := RegisterMetrics(reg, "")
	l := openT(t, path, Options{Metrics: m})
	for i := 0; i < 10; i++ {
		if err := l.Append(bytes.Repeat([]byte{'d'}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	if err := l.Compact([]byte("snapshot")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if l.Size() >= before {
		t.Fatalf("Size after compact = %d, want < %d", l.Size(), before)
	}
	if l.Records() != 1 {
		t.Fatalf("Records after compact = %d, want 1", l.Records())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("compact left %s.tmp behind (err=%v)", path, err)
	}
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	want := []recVal{{RecCheckpoint, "snapshot"}, {RecDelta, "tail"}}
	wantRecs(t, replayAll(t, l), want...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.Compactions.Value(); got != 1 {
		t.Fatalf("compactions counter = %d, want 1", got)
	}

	l2 := openT(t, path, Options{})
	defer l2.Close()
	wantRecs(t, replayAll(t, l2), want...)
}

func TestWALSyncPolicies(t *testing.T) {
	for _, every := range []int{0, 1, 3} {
		path := filepath.Join(t.TempDir(), "sync.wal")
		l := openT(t, path, Options{SyncEvery: every})
		for i := 0; i < 7; i++ {
			if err := l.Append([]byte{'p', byte('0' + i)}); err != nil {
				t.Fatalf("SyncEvery=%d Append: %v", every, err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2 := openT(t, path, Options{})
		if got := l2.Records(); got != 7 {
			t.Fatalf("SyncEvery=%d: reopened with %d records, want 7", every, got)
		}
		l2.Close()
	}
}

func TestWALRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.wal")
	if err := os.WriteFile(junk, []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk, Options{}); err == nil {
		t.Fatal("Open accepted a file with foreign magic")
	}
	vers := filepath.Join(dir, "vers.wal")
	if err := os.WriteFile(vers, []byte{'C', 'M', 'W', 'L', 99, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(vers, Options{}); err == nil {
		t.Fatal("Open accepted an unsupported WAL version")
	}
}

func TestWALMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	m := RegisterMetrics(reg, "durable.wal")
	path := filepath.Join(t.TempDir(), "m.wal")
	l := openT(t, path, Options{Metrics: m})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendCheckpoint([]byte("ck")); err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	if got := m.Appends.Value(); got != 3 {
		t.Fatalf("appends = %d, want 3", got)
	}
	if got := m.Checkpoints.Value(); got != 1 {
		t.Fatalf("checkpoints = %d, want 1", got)
	}
	if got := m.Replayed.Value(); got != 1 {
		t.Fatalf("replayed = %d, want 1 (checkpoint only)", got)
	}
}
