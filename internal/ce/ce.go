// Package ce implements the Condition Evaluator: the component that
// receives data updates, maintains per-variable update histories, evaluates
// a condition, and emits alerts (Section 2 of the paper).
//
// The package exposes both a stateful Evaluator — the building block of
// live systems — and the pure mapping T (Section 3, Figure 2) that sends an
// update sequence to the alert sequence a CE would generate from it. The
// two are the same code path: T runs a fresh Evaluator over the sequence.
package ce

import (
	"fmt"
	"time"

	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/obs"
)

// Metrics is the evaluator's optional instrumentation. Every field may be
// nil (obs metrics no-op on nil receivers), the whole struct may be nil
// (the default — SetMetrics was never called), and one Metrics value may be
// shared by many evaluators: the fields are atomic, and sharing is how
// runtime.MultiSystem aggregates its thousands of evaluators into one set
// of counters. With a nil Metrics the evaluator's hot path pays only a nil
// check, preserving the zero-allocation invariant the alloc tests pin.
type Metrics struct {
	// Fed counts updates accepted into a window; Discarded counts
	// out-of-order, duplicate, and irrelevant-variable deliveries;
	// MissedDown counts updates missed while the evaluator was failed —
	// the same classification as Stats, but observable live.
	Fed, Discarded, MissedDown *obs.Counter
	// Fired counts evaluations that raised an alert.
	Fired *obs.Counter
	// FeedNs and FeedBatchNs record per-call latency in nanoseconds (one
	// FeedBatchNs observation covers a whole batch).
	FeedNs, FeedBatchNs *obs.Histogram
}

// The nil-receiver helpers below let the hot path record unconditionally:
// with metrics off (m == nil) each call is a single branch.

func (m *Metrics) incFed() {
	if m != nil {
		m.Fed.Inc()
	}
}

func (m *Metrics) incDiscarded() {
	if m != nil {
		m.Discarded.Inc()
	}
}

func (m *Metrics) addMissedDown(n int64) {
	if m != nil {
		m.MissedDown.Add(n)
	}
}

func (m *Metrics) incFired() {
	if m != nil {
		m.Fired.Inc()
	}
}

func (m *Metrics) feedHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.FeedNs
}

func (m *Metrics) feedBatchHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.FeedBatchNs
}

// RegisterMetrics builds a Metrics wired to counters and histograms named
// under prefix in reg: <prefix>.fed, .discarded, .missed_down, .fired,
// .feed_ns, .feed_batch_ns. A nil registry returns nil — the off state.
func RegisterMetrics(reg *obs.Registry, prefix string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Fed:         reg.Counter(prefix + ".fed"),
		Discarded:   reg.Counter(prefix + ".discarded"),
		MissedDown:  reg.Counter(prefix + ".missed_down"),
		Fired:       reg.Counter(prefix + ".fired"),
		FeedNs:      reg.Histogram(prefix + ".feed_ns"),
		FeedBatchNs: reg.Histogram(prefix + ".feed_batch_ns"),
	}
}

// Evaluator is one Condition Evaluator replica monitoring a single
// condition. It is not safe for concurrent use; the runtime package wraps
// it in a single goroutine.
type Evaluator struct {
	id      string
	cond    cond.Condition
	windows map[event.VarName]*event.Window
	// slots indexes the same windows for linear-scan lookup: with the
	// paper's one-to-few-variable conditions, a short string-compare scan
	// beats hashing the variable name on every HistoryOf/Feed (the hot
	// path's dominant map cost). Nil when the variable set is large enough
	// that the map wins.
	slots []winSlot
	down  bool

	// notFull counts windows still filling; the hot path tests it instead
	// of rescanning every window per update.
	notFull int

	// Exactly one evaluation strategy is active, chosen at construction:
	// prog for compiled DSL conditions, view for built-ins with a
	// snapshot-free evaluator, neither for legacy conditions (which get a
	// materialized HistorySet per evaluation, as before).
	prog *cond.Program
	view cond.ViewCondition

	// stats
	fed        int64
	discarded  int64
	missedDown int64

	// m is the optional live instrumentation; nil (the default) means
	// metrics are off and the hot path pays only nil checks.
	m *Metrics

	// tr is the optional flight recorder; nil (the default) means tracing
	// is off and every Feed outcome site pays one nil check.
	tr *obs.Tracer

	// journal, when set, receives every update accepted into a window
	// (after TryPush succeeds, before evaluation) so a durable layer can
	// log it; nil (the default) keeps the hot path at one nil check.
	// Replay via Absorb bypasses it.
	journal func(event.Update) error
}

// winSlot pairs a variable with its window for slice-backed lookup.
type winSlot struct {
	v event.VarName
	w *event.Window
}

// slotScanMax bounds the variable-set size for which the linear-scan index
// is used instead of the map.
const slotScanMax = 8

// window resolves the variable's update window, or nil if the evaluator
// does not subscribe to it.
func (e *Evaluator) window(v event.VarName) *event.Window {
	if e.slots != nil {
		for i := range e.slots {
			if e.slots[i].v == v {
				return e.slots[i].w
			}
		}
		return nil
	}
	return e.windows[v]
}

// HistoryOf implements event.HistoryView over the evaluator's live
// windows: the read-only view conditions evaluate against on the hot path.
// Returned histories alias window storage and are only valid until the next
// Feed.
func (e *Evaluator) HistoryOf(v event.VarName) (event.History, bool) {
	w := e.window(v)
	if w == nil {
		return event.History{}, false
	}
	return w.Live(), true
}

// New creates an evaluator with the given identity ("CE1", "CE2", …)
// monitoring condition c. One evaluator monitors exactly one condition,
// matching the paper's model.
func New(id string, c cond.Condition) (*Evaluator, error) {
	if id == "" {
		return nil, fmt.Errorf("ce: evaluator id must be non-empty")
	}
	vars := c.Vars()
	if len(vars) == 0 {
		return nil, fmt.Errorf("ce: condition %q has an empty variable set", c.Name())
	}
	windows := make(map[event.VarName]*event.Window, len(vars))
	for _, v := range vars {
		w, err := event.NewWindow(v, c.Degree(v))
		if err != nil {
			return nil, fmt.Errorf("ce: condition %q, variable %q: %w", c.Name(), v, err)
		}
		windows[v] = w
	}
	e := &Evaluator{id: id, cond: c, windows: windows, notFull: len(windows)}
	if len(vars) <= slotScanMax {
		e.slots = make([]winSlot, 0, len(vars))
		for _, v := range vars {
			e.slots = append(e.slots, winSlot{v: v, w: windows[v]})
		}
	}
	// Pick the fastest evaluation strategy the condition supports: a bound
	// compiled program (DSL expressions), a snapshot-free view evaluator
	// (built-ins), or the legacy materialized-HistorySet path.
	switch c := c.(type) {
	case cond.Binder:
		e.prog = c.Bind()
	case cond.ViewCondition:
		e.view = c
	}
	return e, nil
}

// ID returns the evaluator's identity; emitted alerts carry it as Source.
func (e *Evaluator) ID() string { return e.id }

// Condition returns the monitored condition.
func (e *Evaluator) Condition() cond.Condition { return e.cond }

// Down reports whether the evaluator is currently failed.
func (e *Evaluator) Down() bool { return e.down }

// SetDown fails or revives the evaluator. While down it silently misses
// every update — the failure mode replication exists to mask. Reviving
// keeps the histories accumulated before the failure (the process
// descheduled but did not lose memory); see Crash for the harsher variant.
func (e *Evaluator) SetDown(down bool) { e.down = down }

// Crash simulates a fail-stop restart without stable storage: the evaluator
// loses all history state and must refill its windows before it can fire
// again.
func (e *Evaluator) Crash() {
	e.notFull = 0
	for _, w := range e.windows {
		w.Reset()
		if !w.Full() {
			e.notFull++
		}
	}
}

// Stats reports how many updates were fed, discarded as out-of-order or
// irrelevant, and missed while down.
func (e *Evaluator) Stats() (fed, discarded, missedDown int64) {
	return e.fed, e.discarded, e.missedDown
}

// SetMetrics attaches (or, with nil, detaches) live instrumentation. The
// same Metrics may be shared across evaluators; see Metrics. Call it before
// feeding updates — it is not synchronized against a concurrent Feed.
func (e *Evaluator) SetMetrics(m *Metrics) { e.m = m }

// SetTracer attaches (or, with nil, detaches) the live flight recorder:
// every Feed/FeedBatch outcome records a StageFeed span (fed, discarded,
// missed_down, fired) under this evaluator's id. One tracer is typically
// shared by every component of a pipeline — its Record is lock-free. Call
// it before feeding updates — it is not synchronized against a concurrent
// Feed. The checks at the outcome sites are inline nil tests, not wrapper
// calls, so the tracing-off hot path keeps its zero-allocation pin.
func (e *Evaluator) SetTracer(t *obs.Tracer) { e.tr = t }

// SetJournal attaches (or, with nil, detaches) a durable journal sink:
// fn is called with every update the evaluator accepts into a window,
// in acceptance order, before the update can influence an evaluation.
// A journal error fails the Feed that carried the update (FeedBatch
// reports it as its first error), because an unjournaled-but-applied
// update would break crash/restart equivalence. Call it before feeding
// updates — it is not synchronized against a concurrent Feed.
func (e *Evaluator) SetJournal(fn func(event.Update) error) { e.journal = fn }

// Absorb re-applies one journaled update during recovery: the window push
// and bookkeeping of Feed with no evaluation, no journaling, no metrics,
// and no down-state handling. It reports whether the update was accepted
// (replaying onto a restored checkpoint makes re-applied prefixes
// harmless: their pushes are rejected as stale). Replay order must match
// journal order.
func (e *Evaluator) Absorb(u event.Update) bool {
	w := e.window(u.Var)
	if w == nil {
		return false
	}
	wasFull := w.Full()
	if !w.TryPush(u) {
		return false
	}
	e.fed++
	if !wasFull && w.Full() {
		e.notFull--
	}
	return true
}

// WindowStates snapshots every history window for checkpointing, in the
// condition's variable order (duplicate variables contribute once). The
// returned histories are deep copies, safe to serialize after further
// feeding.
func (e *Evaluator) WindowStates() []event.History {
	vars := e.cond.Vars()
	out := make([]event.History, 0, len(vars))
	seen := make(map[event.VarName]bool, len(vars))
	for _, v := range vars {
		if seen[v] {
			continue
		}
		seen[v] = true
		if w := e.window(v); w != nil {
			out = append(out, w.History())
		}
	}
	return out
}

// RestoreWindows loads checkpointed histories back into the evaluator's
// windows, replacing their contents, and recomputes the not-full count.
// States for variables outside the condition's set are an error: a
// checkpoint belongs to one (condition, evaluator) pair.
func (e *Evaluator) RestoreWindows(states []event.History) error {
	for _, h := range states {
		w := e.window(h.Var)
		if w == nil {
			return fmt.Errorf("ce: %s: restore for unknown variable %q", e.id, h.Var)
		}
		if err := w.Restore(h.Recent); err != nil {
			return fmt.Errorf("ce: %s: %w", e.id, err)
		}
	}
	e.notFull = 0
	for _, w := range e.windows {
		if !w.Full() {
			e.notFull++
		}
	}
	return nil
}

// feedSpan records one StageFeed span; callers nil-check e.tr first so the
// tracing-off path never pays the call.
func (e *Evaluator) feedSpan(u event.Update, disp string) {
	e.tr.Record(obs.Span{
		Var: string(u.Var), Seq: u.SeqNo,
		Stage: obs.StageFeed, Replica: e.id, Disp: disp,
	})
}

// Feed delivers one update to the evaluator. It returns the alert and true
// if the condition fired. Updates are handled per Section 2:
//
//   - While the evaluator is down, the update is missed entirely.
//   - Updates for variables outside the condition's variable set are
//     discarded (a CE only subscribes to V, but a broadcast medium may
//     deliver more).
//   - Updates that arrive out of order for their variable are discarded,
//     implementing the receiver side of the paper's in-order link
//     mechanism ("letting the receiver discard messages that arrive out of
//     order", Section 2.1).
//   - Otherwise the update becomes Hv[0] and the condition is re-evaluated;
//     it can only be evaluated once every window in V is full.
func (e *Evaluator) Feed(u event.Update) (event.Alert, bool, error) {
	// The latency observation is a conditional defer so the metrics-off
	// path — the default — pays one nil check and never reads the clock;
	// an extra wrapper function here would cost a real call on the
	// zero-allocation hot path.
	if h := e.m.feedHist(); h != nil {
		defer func(start time.Time) {
			h.ObserveDuration(time.Since(start))
		}(time.Now())
	}
	if e.down {
		e.missedDown++
		e.m.addMissedDown(1)
		if e.tr != nil {
			e.feedSpan(u, obs.DispMissedDown)
		}
		return event.Alert{}, false, nil
	}
	w := e.window(u.Var)
	if w == nil {
		e.discarded++
		e.m.incDiscarded()
		if e.tr != nil {
			e.feedSpan(u, obs.DispDiscarded)
		}
		return event.Alert{}, false, nil
	}
	wasFull := w.Full()
	if !w.TryPush(u) {
		// Out-of-order or duplicate delivery: discard, per Section 2.1.
		e.discarded++
		e.m.incDiscarded()
		if e.tr != nil {
			e.feedSpan(u, obs.DispDiscarded)
		}
		return event.Alert{}, false, nil
	}
	e.fed++
	e.m.incFed()
	if !wasFull && w.Full() {
		e.notFull--
	}
	if e.journal != nil {
		if err := e.journal(u); err != nil {
			return event.Alert{}, false, fmt.Errorf("ce: %s: journal %q: %w", e.id, e.cond.Name(), err)
		}
	}
	if e.notFull > 0 {
		if e.tr != nil {
			e.feedSpan(u, obs.DispFed)
		}
		return event.Alert{}, false, nil
	}
	// Evaluate against the live windows; the non-firing steady state never
	// copies a history or builds a HistorySet.
	fired, err := e.evalLive()
	if err != nil {
		return event.Alert{}, false, fmt.Errorf("ce: %s: evaluate %q: %w", e.id, e.cond.Name(), err)
	}
	if !fired {
		if e.tr != nil {
			e.feedSpan(u, obs.DispFed)
		}
		return event.Alert{}, false, nil
	}
	// Only a firing condition pays for the immutable snapshot embedded in
	// the alert (and for the alert's precomputed identity key).
	e.m.incFired()
	if e.tr != nil {
		e.feedSpan(u, obs.DispFired)
	}
	return event.NewAlert(e.cond.Name(), e.historySnapshot(), e.id), true, nil
}

// FeedBatch delivers a run of updates in order, appending the alert of
// every firing evaluation to dst and returning the extended slice. It is
// observationally identical to calling Feed once per update — same
// discards, same firings, same alerts in the same order — but amortizes
// the per-update overhead across the run: the window map lookup is cached
// for same-variable runs (the shape EmitBatch produces), and for compiled
// conditions the per-variable slot binding and degree checks run once per
// batch (Program.Prepare) instead of once per update. The per-update Feed
// loop is the differential oracle; equivalence tests gate this path.
//
// Evaluation errors (e.g. a DSL division by zero) do not stop the batch,
// mirroring how the runtime's replica loop continues past a failed Feed;
// the first error is returned after the whole run is processed.
func (e *Evaluator) FeedBatch(us []event.Update, dst []event.Alert) ([]event.Alert, error) {
	// Conditional defer, as in Feed: the metrics-off path pays one nil
	// check and never reads the clock.
	if h := e.m.feedBatchHist(); h != nil {
		defer func(start time.Time) {
			h.ObserveDuration(time.Since(start))
		}(time.Now())
	}
	return e.feedBatch(us, dst)
}

// feedBatch is FeedBatch without the latency observation.
func (e *Evaluator) feedBatch(us []event.Update, dst []event.Alert) ([]event.Alert, error) {
	if e.down {
		e.missedDown += int64(len(us))
		e.m.addMissedDown(int64(len(us)))
		if e.tr != nil {
			for _, u := range us {
				e.feedSpan(u, obs.DispMissedDown)
			}
		}
		return dst, nil
	}
	var (
		firstErr error
		lastVar  event.VarName
		lastWin  *event.Window
		prepared bool
	)
	for _, u := range us {
		w := lastWin
		if w == nil || u.Var != lastVar {
			w = e.window(u.Var)
			if w == nil {
				e.discarded++
				e.m.incDiscarded()
				if e.tr != nil {
					e.feedSpan(u, obs.DispDiscarded)
				}
				lastVar, lastWin = u.Var, nil
				continue
			}
			lastVar, lastWin = u.Var, w
		}
		wasFull := w.Full()
		if !w.TryPush(u) {
			e.discarded++
			e.m.incDiscarded()
			if e.tr != nil {
				e.feedSpan(u, obs.DispDiscarded)
			}
			continue
		}
		e.fed++
		e.m.incFed()
		if !wasFull && w.Full() {
			e.notFull--
		}
		if e.journal != nil {
			if err := e.journal(u); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("ce: %s: journal %q: %w", e.id, e.cond.Name(), err)
			}
		}
		if e.notFull > 0 {
			if e.tr != nil {
				e.feedSpan(u, obs.DispFed)
			}
			continue
		}
		var (
			fired bool
			err   error
		)
		if e.prog != nil {
			// Bind slots on the batch's first evaluation; every window is
			// full from here on, so the live slice headers the slots alias
			// stay valid for the rest of the run (window shifts mutate in
			// place once full).
			if !prepared {
				if err = e.prog.Prepare(e); err == nil {
					prepared = true
				}
			}
			if prepared {
				fired, err = e.prog.EvalPrepared()
			}
		} else {
			fired, err = e.evalLive()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("ce: %s: evaluate %q: %w", e.id, e.cond.Name(), err)
			}
			continue
		}
		if fired {
			e.m.incFired()
			if e.tr != nil {
				e.feedSpan(u, obs.DispFired)
			}
			dst = append(dst, event.NewAlert(e.cond.Name(), e.historySnapshot(), e.id))
		} else if e.tr != nil {
			e.feedSpan(u, obs.DispFed)
		}
	}
	return dst, firstErr
}

// evalLive evaluates the condition over the evaluator's live windows,
// using the strategy selected at construction.
func (e *Evaluator) evalLive() (bool, error) {
	switch {
	case e.prog != nil:
		return e.prog.Eval(e)
	case e.view != nil:
		return e.view.EvalView(e)
	default:
		return e.cond.Eval(e.historySnapshot())
	}
}

// historySnapshot builds the immutable H handed to the condition and
// embedded in alerts.
func (e *Evaluator) historySnapshot() event.HistorySet {
	h := make(event.HistorySet, len(e.windows))
	for v, w := range e.windows {
		h[v] = w.History()
	}
	return h
}

// T is the paper's mapping T: it returns the alert sequence a single fresh
// CE generates when fed the update sequence in order (Figure 2). The
// updates may interleave multiple variables; per-variable subsequences must
// be in increasing seqno order (out-of-order entries are discarded exactly
// as Feed does).
func T(c cond.Condition, updates []event.Update) ([]event.Alert, error) {
	e, err := New("T", c)
	if err != nil {
		return nil, err
	}
	var alerts []event.Alert
	for _, u := range updates {
		a, fired, err := e.Feed(u)
		if err != nil {
			return nil, err
		}
		if fired {
			alerts = append(alerts, a)
		}
	}
	return alerts, nil
}
