// Package ce implements the Condition Evaluator: the component that
// receives data updates, maintains per-variable update histories, evaluates
// a condition, and emits alerts (Section 2 of the paper).
//
// The package exposes both a stateful Evaluator — the building block of
// live systems — and the pure mapping T (Section 3, Figure 2) that sends an
// update sequence to the alert sequence a CE would generate from it. The
// two are the same code path: T runs a fresh Evaluator over the sequence.
package ce

import (
	"fmt"

	"condmon/internal/cond"
	"condmon/internal/event"
)

// Evaluator is one Condition Evaluator replica monitoring a single
// condition. It is not safe for concurrent use; the runtime package wraps
// it in a single goroutine.
type Evaluator struct {
	id      string
	cond    cond.Condition
	windows map[event.VarName]*event.Window
	down    bool

	// stats
	fed        int64
	discarded  int64
	missedDown int64
}

// New creates an evaluator with the given identity ("CE1", "CE2", …)
// monitoring condition c. One evaluator monitors exactly one condition,
// matching the paper's model.
func New(id string, c cond.Condition) (*Evaluator, error) {
	if id == "" {
		return nil, fmt.Errorf("ce: evaluator id must be non-empty")
	}
	vars := c.Vars()
	if len(vars) == 0 {
		return nil, fmt.Errorf("ce: condition %q has an empty variable set", c.Name())
	}
	windows := make(map[event.VarName]*event.Window, len(vars))
	for _, v := range vars {
		w, err := event.NewWindow(v, c.Degree(v))
		if err != nil {
			return nil, fmt.Errorf("ce: condition %q, variable %q: %w", c.Name(), v, err)
		}
		windows[v] = w
	}
	return &Evaluator{id: id, cond: c, windows: windows}, nil
}

// ID returns the evaluator's identity; emitted alerts carry it as Source.
func (e *Evaluator) ID() string { return e.id }

// Condition returns the monitored condition.
func (e *Evaluator) Condition() cond.Condition { return e.cond }

// Down reports whether the evaluator is currently failed.
func (e *Evaluator) Down() bool { return e.down }

// SetDown fails or revives the evaluator. While down it silently misses
// every update — the failure mode replication exists to mask. Reviving
// keeps the histories accumulated before the failure (the process
// descheduled but did not lose memory); see Crash for the harsher variant.
func (e *Evaluator) SetDown(down bool) { e.down = down }

// Crash simulates a fail-stop restart without stable storage: the evaluator
// loses all history state and must refill its windows before it can fire
// again.
func (e *Evaluator) Crash() {
	for _, w := range e.windows {
		w.Reset()
	}
}

// Stats reports how many updates were fed, discarded as out-of-order or
// irrelevant, and missed while down.
func (e *Evaluator) Stats() (fed, discarded, missedDown int64) {
	return e.fed, e.discarded, e.missedDown
}

// Feed delivers one update to the evaluator. It returns the alert and true
// if the condition fired. Updates are handled per Section 2:
//
//   - While the evaluator is down, the update is missed entirely.
//   - Updates for variables outside the condition's variable set are
//     discarded (a CE only subscribes to V, but a broadcast medium may
//     deliver more).
//   - Updates that arrive out of order for their variable are discarded,
//     implementing the receiver side of the paper's in-order link
//     mechanism ("letting the receiver discard messages that arrive out of
//     order", Section 2.1).
//   - Otherwise the update becomes Hv[0] and the condition is re-evaluated;
//     it can only be evaluated once every window in V is full.
func (e *Evaluator) Feed(u event.Update) (event.Alert, bool, error) {
	if e.down {
		e.missedDown++
		return event.Alert{}, false, nil
	}
	w, ok := e.windows[u.Var]
	if !ok {
		e.discarded++
		return event.Alert{}, false, nil
	}
	if err := w.Push(u); err != nil {
		// Out-of-order or duplicate delivery: discard, per Section 2.1.
		e.discarded++
		return event.Alert{}, false, nil
	}
	e.fed++
	for _, win := range e.windows {
		if !win.Full() {
			return event.Alert{}, false, nil
		}
	}
	h := e.historySnapshot()
	fired, err := e.cond.Eval(h)
	if err != nil {
		return event.Alert{}, false, fmt.Errorf("ce: %s: evaluate %q: %w", e.id, e.cond.Name(), err)
	}
	if !fired {
		return event.Alert{}, false, nil
	}
	return event.Alert{Cond: e.cond.Name(), Histories: h, Source: e.id}, true, nil
}

// historySnapshot builds the immutable H handed to the condition and
// embedded in alerts.
func (e *Evaluator) historySnapshot() event.HistorySet {
	h := make(event.HistorySet, len(e.windows))
	for v, w := range e.windows {
		h[v] = w.History()
	}
	return h
}

// T is the paper's mapping T: it returns the alert sequence a single fresh
// CE generates when fed the update sequence in order (Figure 2). The
// updates may interleave multiple variables; per-variable subsequences must
// be in increasing seqno order (out-of-order entries are discarded exactly
// as Feed does).
func T(c cond.Condition, updates []event.Update) ([]event.Alert, error) {
	e, err := New("T", c)
	if err != nil {
		return nil, err
	}
	var alerts []event.Alert
	for _, u := range updates {
		a, fired, err := e.Feed(u)
		if err != nil {
			return nil, err
		}
		if fired {
			alerts = append(alerts, a)
		}
	}
	return alerts, nil
}
