package ce

import (
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
)

// The zero-allocation invariant of the evaluation hot path: a non-firing
// Feed — the steady state of a healthy monitored system — must not allocate,
// for built-in conditions and compiled DSL conditions alike. These tests
// pin the invariant so a future change can't silently reintroduce per-update
// garbage.

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(500, f); allocs != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, allocs)
	}
}

func TestFeedNonFiringZeroAllocsBuiltin(t *testing.T) {
	e, err := New("CE1", cond.NewRiseAggressive("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Constant values: c2 (rise > 200) never fires.
	var n int64
	requireZeroAllocs(t, "Feed/builtin", func() {
		n++
		a, fired, err := e.Feed(event.U("x", n, 100))
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatalf("condition unexpectedly fired: %v", a)
		}
	})
}

func TestFeedNonFiringZeroAllocsCompiledDSL(t *testing.T) {
	c := cond.MustParse("c3", "x[0] - x[-1] > 200 && consecutive(x)")
	e, err := New("CE1", c)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	requireZeroAllocs(t, "Feed/compiled", func() {
		n++
		a, fired, err := e.Feed(event.U("x", n, 100))
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatalf("condition unexpectedly fired: %v", a)
		}
	})
}

func TestFeedDiscardZeroAllocs(t *testing.T) {
	e, err := New("CE1", cond.NewOverheat("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Feed(event.U("x", 10, 0)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order and irrelevant-variable discards are also steady-state
	// work under a lossy broadcast medium.
	requireZeroAllocs(t, "Feed/out-of-order", func() {
		if _, fired, _ := e.Feed(event.U("x", 5, 0)); fired {
			t.Fatal("discarded update fired")
		}
	})
	requireZeroAllocs(t, "Feed/other-var", func() {
		if _, fired, _ := e.Feed(event.U("y", 99, 0)); fired {
			t.Fatal("irrelevant update fired")
		}
	})
}
