package ce

import (
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/obs"
)

// The tracing-off contract: an evaluator with no tracer (the default, or
// an explicit SetTracer(nil)) pays one nil check per Feed and still makes
// zero allocations on the non-firing hot path — the PR 2 pin holds with
// the tracing hooks compiled in.
func TestFeedTracingOffZeroAllocs(t *testing.T) {
	e, err := New("CE1", cond.NewRiseAggressive("x"))
	if err != nil {
		t.Fatal(err)
	}
	e.SetTracer(nil)
	var n int64
	requireZeroAllocs(t, "Feed/tracing-off", func() {
		n++
		if _, fired, err := e.Feed(event.U("x", n, 100)); err != nil || fired {
			t.Fatalf("fired=%v err=%v", fired, err)
		}
	})
}

// With a tracer attached, Feed leaves one StageFeed span per update with
// the disposition that actually happened: fed, fired, discarded, or
// missed_down.
func TestFeedSpans(t *testing.T) {
	tr := obs.NewTracer(64)
	e, err := New("CE1", cond.NewOverheat("x")) // fires on x[0] > 3000
	if err != nil {
		t.Fatal(err)
	}
	e.SetTracer(tr)

	if _, fired, _ := e.Feed(event.U("x", 1, 100)); fired {
		t.Fatal("low value fired")
	}
	if _, fired, _ := e.Feed(event.U("x", 2, 3200)); !fired {
		t.Fatal("high value did not fire")
	}
	if _, fired, _ := e.Feed(event.U("x", 1, 0)); fired { // stale: discarded
		t.Fatal("stale update fired")
	}
	e.SetDown(true)
	if _, fired, _ := e.Feed(event.U("x", 3, 0)); fired {
		t.Fatal("down evaluator fired")
	}
	e.SetDown(false)

	want := []struct {
		seq  int64
		disp string
	}{
		{1, obs.DispFed},
		{2, obs.DispFired},
		{1, obs.DispDiscarded},
		{3, obs.DispMissedDown},
	}
	spans := tr.Spans("x", -1)
	if len(spans) != len(want) {
		t.Fatalf("%d spans, want %d: %+v", len(spans), len(want), spans)
	}
	for i, w := range want {
		s := spans[i]
		if s.Stage != obs.StageFeed || s.Replica != "CE1" || s.Seq != w.seq || s.Disp != w.disp {
			t.Errorf("span %d = %+v, want feed/CE1 seq=%d disp=%s", i, s, w.seq, w.disp)
		}
	}
}

// FeedBatch records the same spans the per-update path would.
func TestFeedBatchSpans(t *testing.T) {
	tr := obs.NewTracer(64)
	e, err := New("CE1", cond.NewOverheat("x"))
	if err != nil {
		t.Fatal(err)
	}
	e.SetTracer(tr)
	us := []event.Update{
		event.U("x", 1, 100),
		event.U("x", 2, 3200),
	}
	alerts, err := e.FeedBatch(us, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 {
		t.Fatalf("%d alerts, want 1", len(alerts))
	}
	spans := tr.Spans("x", -1)
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0].Disp != obs.DispFed || spans[1].Disp != obs.DispFired {
		t.Errorf("dispositions = %s, %s, want fed, fired", spans[0].Disp, spans[1].Disp)
	}
}
