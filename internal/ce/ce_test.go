package ce

import (
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/seq"
)

func feedAll(t *testing.T, e *Evaluator, updates []event.Update) []event.Alert {
	t.Helper()
	var out []event.Alert
	for _, u := range updates {
		a, fired, err := e.Feed(u)
		if err != nil {
			t.Fatalf("Feed(%v): %v", u, err)
		}
		if fired {
			out = append(out, a)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", cond.NewOverheat("x")); err == nil {
		t.Error("New with empty id should fail")
	}
	bad := cond.Func{CondName: "novars", VarDegrees: map[event.VarName]int{}}
	if _, err := New("CE1", bad); err == nil {
		t.Error("New with an empty variable set should fail")
	}
}

func TestPaperExample1CE1(t *testing.T) {
	// Example 1: U = ⟨1x(2900), 2x(3100), 3x(3200)⟩ under c1; CE1 receives
	// all: A1 = ⟨a1, a2⟩ with a1.H = ⟨2x⟩ and a2.H = ⟨3x⟩.
	alerts, err := T(cond.NewOverheat("x"), []event.Update{
		event.U("x", 1, 2900), event.U("x", 2, 3100), event.U("x", 3, 3200),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 2 {
		t.Fatalf("T(U1) produced %d alerts, want 2", len(alerts))
	}
	if got := alerts[0].MustSeqNo("x"); got != 2 {
		t.Errorf("a1 triggered on %d, want 2", got)
	}
	if got := alerts[1].MustSeqNo("x"); got != 3 {
		t.Errorf("a2 triggered on %d, want 3", got)
	}
}

func TestPaperExample1CE2(t *testing.T) {
	// CE2 misses 2x: U2 = ⟨1x, 3x⟩ → single alert with H = ⟨3x⟩.
	alerts, err := T(cond.NewOverheat("x"), []event.Update{
		event.U("x", 1, 2900), event.U("x", 3, 3200),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 1 {
		t.Fatalf("T(U2) produced %d alerts, want 1", len(alerts))
	}
	if got := alerts[0].MustSeqNo("x"); got != 3 {
		t.Errorf("a3 triggered on %d, want 3", got)
	}
}

func TestHistoricalWindowWarmup(t *testing.T) {
	// A degree-2 condition cannot fire on the first update: H is undefined
	// until the CE has received N x-updates.
	alerts, err := T(cond.NewRiseAggressive("x"), []event.Update{
		event.U("x", 1, 0),
		event.U("x", 2, 300), // rise of 300 but only now is the window full
		event.U("x", 3, 301),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 1 || alerts[0].MustSeqNo("x") != 2 {
		t.Errorf("alerts = %v, want exactly one alert at 2x", alerts)
	}
}

func TestConservativeVsAggressiveAcrossGap(t *testing.T) {
	// Theorem 4's scenario: U2 = ⟨1(400), 3(720)⟩. c2 (aggressive) fires on
	// 3x; c3 (conservative) must not.
	stream := []event.Update{event.U("x", 1, 400), event.U("x", 3, 720)}

	aggr, err := T(cond.NewRiseAggressive("x"), stream)
	if err != nil {
		t.Fatalf("T(c2): %v", err)
	}
	if len(aggr) != 1 || aggr[0].MustSeqNo("x") != 3 {
		t.Errorf("c2 alerts = %v, want one alert at 3x", aggr)
	}

	cons, err := T(cond.NewRiseConservative("x"), stream)
	if err != nil {
		t.Fatalf("T(c3): %v", err)
	}
	if len(cons) != 0 {
		t.Errorf("c3 alerts = %v, want none across the gap", cons)
	}
}

func TestAlertCarriesHistories(t *testing.T) {
	alerts, err := T(cond.NewRiseAggressive("x"), []event.Update{
		event.U("x", 1, 400), event.U("x", 3, 720),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 1 {
		t.Fatalf("want one alert, got %d", len(alerts))
	}
	h := alerts[0].Histories["x"]
	if got := h.SeqNosAscending(); !got.Equal(seq.Seq{1, 3}) {
		t.Errorf("alert history = %v, want ⟨1,3⟩", got)
	}
	if alerts[0].Source != "T" || alerts[0].Cond != "c2" {
		t.Errorf("alert metadata = %q/%q", alerts[0].Source, alerts[0].Cond)
	}
}

func TestMultiVariableEvaluation(t *testing.T) {
	// Theorem 10's CE1: U1 = ⟨1x,2x,1y,2y⟩ under cm → one alert a(2x,1y).
	cm := cond.NewTempDiff("x", "y")
	alerts, err := T(cm, []event.Update{
		event.U("x", 1, 1000), event.U("x", 2, 1200),
		event.U("y", 1, 1050), event.U("y", 2, 1150),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 1 {
		t.Fatalf("CE1 produced %d alerts, want 1: %v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.MustSeqNo("x") != 2 || a.MustSeqNo("y") != 1 {
		t.Errorf("alert = %v, want a(2x,1y)", a)
	}

	// CE2 sees the other interleaving: U2 = ⟨1y,2y,1x,2x⟩ → a(1x,2y).
	alerts, err = T(cm, []event.Update{
		event.U("y", 1, 1050), event.U("y", 2, 1150),
		event.U("x", 1, 1000), event.U("x", 2, 1200),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 1 || alerts[0].MustSeqNo("x") != 1 || alerts[0].MustSeqNo("y") != 2 {
		t.Errorf("CE2 alerts = %v, want a(1x,2y)", alerts)
	}
}

func TestDownMissesUpdates(t *testing.T) {
	e, err := New("CE1", cond.NewOverheat("x"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.SetDown(true)
	if _, fired, err := e.Feed(event.U("x", 1, 3200)); err != nil || fired {
		t.Errorf("down evaluator must miss updates (fired=%v, err=%v)", fired, err)
	}
	e.SetDown(false)
	if _, fired, err := e.Feed(event.U("x", 2, 3200)); err != nil || !fired {
		t.Errorf("revived evaluator should fire (fired=%v, err=%v)", fired, err)
	}
	_, _, missed := e.Stats()
	if missed != 1 {
		t.Errorf("missedDown = %d, want 1", missed)
	}
}

func TestCrashLosesHistory(t *testing.T) {
	e, err := New("CE1", cond.NewRiseAggressive("x"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	feedAll(t, e, []event.Update{event.U("x", 1, 0), event.U("x", 2, 100)})
	e.Crash()
	// After the crash the window is empty; a big rise right after restart
	// cannot fire until the window refills.
	_, fired, err := e.Feed(event.U("x", 3, 1000))
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if fired {
		t.Error("evaluator must not fire with an under-filled window after Crash")
	}
	_, fired, err = e.Feed(event.U("x", 4, 2000))
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if !fired {
		t.Error("evaluator should fire once the window refills after Crash")
	}
}

func TestDiscardsIrrelevantAndOutOfOrder(t *testing.T) {
	e, err := New("CE1", cond.NewOverheat("x"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, fired, err := e.Feed(event.U("y", 1, 9999)); err != nil || fired {
		t.Errorf("update for foreign variable should be discarded (fired=%v, err=%v)", fired, err)
	}
	feedAll(t, e, []event.Update{event.U("x", 5, 2000)})
	if _, fired, err := e.Feed(event.U("x", 4, 9999)); err != nil || fired {
		t.Errorf("out-of-order update should be discarded (fired=%v, err=%v)", fired, err)
	}
	if _, fired, err := e.Feed(event.U("x", 5, 9999)); err != nil || fired {
		t.Errorf("duplicate update should be discarded (fired=%v, err=%v)", fired, err)
	}
	fed, discarded, _ := e.Stats()
	if fed != 1 || discarded != 3 {
		t.Errorf("stats fed=%d discarded=%d, want 1 and 3", fed, discarded)
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	c := cond.NewOverheat("x")
	e, err := New("CE7", c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.ID() != "CE7" {
		t.Errorf("ID = %q", e.ID())
	}
	if e.Condition().Name() != "c1" {
		t.Errorf("Condition = %q", e.Condition().Name())
	}
	if e.Down() {
		t.Error("fresh evaluator should be up")
	}
}

func TestAlertHistoriesAreSnapshots(t *testing.T) {
	// The histories embedded in an alert must not change as the evaluator
	// keeps running.
	e, err := New("CE1", cond.NewOverheat("x"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a1, fired, err := e.Feed(event.U("x", 1, 3100))
	if err != nil || !fired {
		t.Fatalf("first feed: fired=%v err=%v", fired, err)
	}
	if _, _, err := e.Feed(event.U("x", 2, 3300)); err != nil {
		t.Fatalf("second feed: %v", err)
	}
	if got := a1.MustSeqNo("x"); got != 1 {
		t.Errorf("first alert mutated: seqno now %d, want 1", got)
	}
}
