package ce

import (
	"math/rand"
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
)

// sharedFleet is a mixed registration: threshold-index members, CSE-shared
// expression members, multi-variable pack members, and an unpackable
// straggler.
func sharedFleet() []cond.Condition {
	return []cond.Condition{
		cond.Threshold{CondName: "hot", Var: "x", Limit: 700, Above: true},
		cond.Threshold{CondName: "cold", Var: "x", Limit: 150, Above: false},
		cond.NewRiseAggressive("x"),
		cond.NewRiseConservative("x"),
		cond.MustParse("jump", "x[0] - x[-1] > 300 && consecutive(x)"),
		cond.MustParse("deep", "x[0] - x[-2] > 150"),
		cond.NewTempDiff("x", "y"),
		cond.GreaterThan{CondName: "A", X: "x", Y: "y"},
		cond.NewLemma6Condition("x", "y"), // unpackable: straggler path
		cond.Threshold{CondName: "wet", Var: "y", Limit: 400, Above: true},
	}
}

// gappyStream builds a deterministic interleaved x/y stream with seqno
// gaps, the shape a lossy front link delivers.
func gappyStream(n int, seed int64) []event.Update {
	rng := rand.New(rand.NewSource(seed))
	seqs := map[event.VarName]int64{}
	out := make([]event.Update, 0, n)
	for i := 0; i < n; i++ {
		v := event.VarName("x")
		if rng.Intn(3) == 0 {
			v = "y"
		}
		seqs[v] += int64(1 + rng.Intn(3))
		out = append(out, event.U(v, seqs[v], float64(rng.Intn(1000))))
	}
	return out
}

// runShared feeds the stream to a fresh SharedEvaluator over the fleet and
// returns the per-condition alert sequences.
func runShared(t *testing.T, noPacks bool, stream []event.Update) map[string][]event.Alert {
	t.Helper()
	se, err := NewSharedEvaluator("CE1", noPacks)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sharedFleet() {
		if _, err := se.Register(c, 1); err != nil {
			t.Fatalf("Register(%s): %v", c.Name(), err)
		}
	}
	out := make(map[string][]event.Alert)
	var buf []MemberAlert
	for _, u := range stream {
		buf, err = se.Feed(u, buf[:0])
		if err != nil {
			t.Fatalf("Feed(%v): %v", u, err)
		}
		for _, ma := range buf {
			out[ma.Alert.Cond] = append(out[ma.Alert.Cond], ma.Alert)
		}
	}
	return out
}

// TestSharedEvaluatorEquivalence is the package-level acceptance gate for
// shared evaluation: per condition, the pack-evaluated alert stream must
// be byte-identical (keys, histories, order) to the per-condition
// baseline, over a gappy interleaved stream.
func TestSharedEvaluatorEquivalence(t *testing.T) {
	stream := gappyStream(600, 17)
	want := runShared(t, true, stream)
	got := runShared(t, false, stream)
	if len(want) == 0 {
		t.Fatal("baseline displayed nothing; stream too tame")
	}
	for name, wa := range want {
		ga := got[name]
		if len(ga) != len(wa) {
			t.Fatalf("cond %q: %d alerts packed vs %d baseline", name, len(ga), len(wa))
		}
		for i := range wa {
			if wa[i].Key() != ga[i].Key() || !wa[i].Histories.Equal(ga[i].Histories) {
				t.Fatalf("cond %q alert %d: packed %v, baseline %v", name, i, ga[i], wa[i])
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Fatalf("packed mode fired unknown condition %q", name)
		}
	}
}

// TestSharedEvaluatorGrouping pins the structural claim: the fleet
// collapses into per-variable-set packs with exactly one straggler.
func TestSharedEvaluatorGrouping(t *testing.T) {
	se, err := NewSharedEvaluator("CE1", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sharedFleet() {
		if _, err := se.Register(c, 1); err != nil {
			t.Fatal(err)
		}
	}
	if se.Packs() != 3 { // {x}, {x,y}, {y}
		t.Errorf("Packs() = %d, want 3", se.Packs())
	}
	if se.PackMembers() != 9 {
		t.Errorf("PackMembers() = %d, want 9", se.PackMembers())
	}
	if se.Stragglers() != 1 {
		t.Errorf("Stragglers() = %d, want 1", se.Stragglers())
	}
	if se.Windows().Len() != 2 {
		t.Errorf("shared windows track %d variables, want 2", se.Windows().Len())
	}
	// deep (degree 3) dominates the x window's size.
	if d := se.Windows().Window("x").Degree(); d != 3 {
		t.Errorf("shared x window degree = %d, want 3", d)
	}
}

// TestSharedEvaluatorUnregister checks immediate removal: an unregistered
// condition stops firing, siblings keep firing, and a second Unregister is
// a no-op.
func TestSharedEvaluatorUnregister(t *testing.T) {
	se, err := NewSharedEvaluator("CE1", false)
	if err != nil {
		t.Fatal(err)
	}
	refHot, err := se.Register(cond.Threshold{CondName: "hot", Var: "x", Limit: 100, Above: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Register(cond.Threshold{CondName: "warm", Var: "x", Limit: 50, Above: true}, 1); err != nil {
		t.Fatal(err)
	}
	refL6, err := se.Register(cond.NewLemma6Condition("x", "y"), 1)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := se.Feed(event.U("x", 1, 500), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 2 {
		t.Fatalf("before unregister: %d alerts, want 2", len(buf))
	}
	se.Unregister(refHot)
	se.Unregister(refHot)
	se.Unregister(refL6)
	se.Unregister(Ref{})
	if se.PackMembers() != 1 || se.Stragglers() != 0 {
		t.Fatalf("after unregister: members=%d stragglers=%d", se.PackMembers(), se.Stragglers())
	}
	buf, err = se.Feed(event.U("x", 2, 600), buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1 || buf[0].Alert.Cond != "warm" {
		t.Fatalf("after unregister: alerts %v, want just warm", buf)
	}
}

// TestSharedEvaluatorWarmStart documents live registration's semantics: a
// member joining mid-traffic evaluates against the lane's already-warm
// windows and can fire on the very next update.
func TestSharedEvaluatorWarmStart(t *testing.T) {
	se, err := NewSharedEvaluator("CE1", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Register(cond.NewRiseAggressive("x"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Feed(event.U("x", 1, 100), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Feed(event.U("x", 2, 150), nil); err != nil {
		t.Fatal(err)
	}
	// A late-joining degree-2 member sees the warm window.
	if _, err := se.Register(cond.MustParse("late", "x[0] - x[-1] > 100"), 2); err != nil {
		t.Fatal(err)
	}
	buf, err := se.Feed(event.U("x", 3, 400), nil)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]uint64{}
	for _, ma := range buf {
		names[ma.Alert.Cond] = ma.Token
	}
	if names["late"] != 2 {
		t.Fatalf("late member did not fire with its token on first post-registration update: %v", buf)
	}
	if names["c2"] != 1 {
		t.Fatalf("c2 should fire (rise 250 > 200): %v", buf)
	}
}

// TestSharedEvaluatorTokens: alerts carry the member's registration token,
// the engine's fencing epoch.
func TestSharedEvaluatorTokens(t *testing.T) {
	se, _ := NewSharedEvaluator("CE2", false)
	if _, err := se.Register(cond.Threshold{CondName: "a", Var: "x", Limit: 0, Above: true}, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Register(cond.NewLemma6Condition("x", "y"), 9); err != nil {
		t.Fatal(err)
	}
	buf, err := se.Feed(event.U("x", 1, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1 || buf[0].Token != 7 || buf[0].Alert.Source != "CE2" {
		t.Fatalf("alert = %+v, want token 7 source CE2", buf)
	}
}
