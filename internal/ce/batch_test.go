package ce

import (
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"

	"math/rand"
)

// FeedBatch must be observationally identical to the per-update Feed loop:
// same alerts (keys, sources, order), same stats, same error behavior. Feed
// is the differential oracle for every strategy the evaluator can run —
// compiled DSL programs, view built-ins, and legacy snapshot conditions.

// feedOracle runs the per-update loop and collects fired alerts plus the
// first evaluation error, mirroring FeedBatch's contract.
func feedOracle(e *Evaluator, us []event.Update) ([]event.Alert, error) {
	var (
		out      []event.Alert
		firstErr error
	)
	for _, u := range us {
		a, fired, err := e.Feed(u)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if fired {
			out = append(out, a)
		}
	}
	return out, firstErr
}

// randomStream builds an update stream with in-order, gappy per-variable
// subsequences plus injected duplicates, stale deliveries, and updates for
// variables outside the condition's set.
func randomStream(r *rand.Rand, vars []event.VarName, n int) []event.Update {
	seqs := make(map[event.VarName]int64, len(vars))
	var out []event.Update
	for i := 0; i < n; i++ {
		v := vars[r.Intn(len(vars))]
		switch k := r.Intn(10); {
		case k == 0 && seqs[v] > 0:
			// Stale or duplicate delivery: seqno at or below the horizon.
			out = append(out, event.U(v, seqs[v]-r.Int63n(seqs[v]+1), r.Float64()*1000))
		case k == 1:
			out = append(out, event.U("unknown", int64(i+1), 1))
		default:
			seqs[v] += 1 + r.Int63n(3) // occasional gaps, like a lossy link
			out = append(out, event.U(v, seqs[v], r.Float64()*1000))
		}
	}
	return out
}

func diffConditions(t *testing.T) []cond.Condition {
	t.Helper()
	return []cond.Condition{
		cond.NewRiseAggressive("x"),                                    // view built-in, degree 2
		cond.NewTempDiff("x", "y"),                                     // view built-in, two variables
		cond.MustParse("dsl", "x[0] - x[-1] > 200 && consecutive(x)"),  // compiled program
		cond.MustParse("dslerr", "1000 / (x[0] - y[0]) > 2 || y[0]>1"), // compiled, can divide by zero
		cond.Func{ // legacy snapshot path: neither Binder nor ViewCondition
			CondName:   "legacy",
			VarDegrees: map[event.VarName]int{"x": 2, "y": 1},
			Fn: func(h event.HistorySet) bool {
				return h["x"].Latest().Value > h["y"].Latest().Value
			},
		},
	}
}

func TestFeedBatchMatchesFeedOracle(t *testing.T) {
	for _, c := range diffConditions(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for trial := 0; trial < 50; trial++ {
				stream := randomStream(r, c.Vars(), 40)
				oracleEval, err := New("CE1", c)
				if err != nil {
					t.Fatal(err)
				}
				batchEval, err := New("CE1", c)
				if err != nil {
					t.Fatal(err)
				}
				want, wantErr := feedOracle(oracleEval, stream)
				// Split the stream into random-size batches so coverage
				// includes size-1, mid-stream, and whole-stream batches.
				var got []event.Alert
				var gotErr error
				for i := 0; i < len(stream); {
					j := i + 1 + r.Intn(8)
					if j > len(stream) {
						j = len(stream)
					}
					var err error
					got, err = batchEval.FeedBatch(stream[i:j], got)
					if err != nil && gotErr == nil {
						gotErr = err
					}
					i = j
				}
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("trial %d: error mismatch: oracle %v, batch %v", trial, wantErr, gotErr)
				}
				if len(want) != len(got) {
					t.Fatalf("trial %d: oracle fired %d, batch fired %d", trial, len(want), len(got))
				}
				for i := range want {
					if want[i].Key() != got[i].Key() || want[i].Source != got[i].Source {
						t.Fatalf("trial %d alert %d: oracle %v, batch %v", trial, i, want[i], got[i])
					}
					if !want[i].Histories.Equal(got[i].Histories) {
						t.Fatalf("trial %d alert %d: history mismatch", trial, i)
					}
				}
				of, od, om := oracleEval.Stats()
				bf, bd, bm := batchEval.Stats()
				if of != bf || od != bd || om != bm {
					t.Fatalf("trial %d: stats mismatch: oracle (%d,%d,%d), batch (%d,%d,%d)",
						trial, of, od, om, bf, bd, bm)
				}
			}
		})
	}
}

func TestFeedBatchWhileDown(t *testing.T) {
	e, err := New("CE1", cond.NewRiseAggressive("x"))
	if err != nil {
		t.Fatal(err)
	}
	e.SetDown(true)
	out, err := e.FeedBatch([]event.Update{event.U("x", 1, 0), event.U("x", 2, 1000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("down evaluator fired %d alerts", len(out))
	}
	if _, _, missed := e.Stats(); missed != 2 {
		t.Errorf("missedDown = %d, want 2", missed)
	}
	e.SetDown(false)
	out, err = e.FeedBatch([]event.Update{event.U("x", 3, 0), event.U("x", 4, 1000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("revived evaluator fired %d alerts, want 1", len(out))
	}
}

func TestFeedBatchAppendsToDst(t *testing.T) {
	e, err := New("CE1", cond.Threshold{CondName: "hot", Var: "x", Limit: 0, Above: true})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]event.Alert, 0, 8)
	out, err := e.FeedBatch([]event.Update{event.U("x", 1, 5), event.U("x", 2, 6)}, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("fired %d, want 2", len(out))
	}
	// The returned slice extends dst: reusing the same backing array across
	// calls is the runtime's scratch-buffer pattern.
	if cap(scratch) >= 2 && &out[0] != &scratch[:1][0] {
		t.Error("FeedBatch did not append into the provided scratch buffer")
	}
}

// BenchmarkFeedBatch measures the amortization: one compiled condition fed
// the same stream per-update vs in one batch call.
func BenchmarkFeedBatch(b *testing.B) {
	c := cond.MustParse("c3", "x[0] - x[-1] > 200 && consecutive(x)")
	const n = 256
	for _, mode := range []string{"single", "batch"} {
		b.Run(mode, func(b *testing.B) {
			e, err := New("CE1", c)
			if err != nil {
				b.Fatal(err)
			}
			us := make([]event.Update, n)
			var scratch []event.Alert
			seq := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := range us {
					seq++
					us[k] = event.U("x", seq, float64(k%500))
				}
				if mode == "single" {
					for _, u := range us {
						if _, _, err := e.Feed(u); err != nil {
							b.Fatal(err)
						}
					}
					continue
				}
				scratch = scratch[:0]
				scratch, err = e.FeedBatch(us, scratch)
				if err != nil {
					b.Fatal(err)
				}
				if len(scratch) > 0 {
					b.Fatal("unexpected firing")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/update")
		})
	}
}
