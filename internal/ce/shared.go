package ce

// Shared evaluation: one CE lane monitoring MANY conditions over ONE set of
// per-variable history windows, instead of one Evaluator (with private
// windows) per condition. Conditions are grouped by variable set into
// cond.Packs — evaluated in one pass per update with a fired-member set —
// and conditions the pack compiler cannot absorb fall back to private
// per-condition Evaluators (the heterogeneous stragglers), fed from the
// same update stream.
//
// The displayed-stream contract: for conditions registered before traffic
// starts, a SharedEvaluator fed a delivery sequence produces, per
// condition, exactly the alerts the per-condition Evaluators would produce
// from the same sequence — same histories, same order. (A condition
// registered mid-traffic instead sees the lane's warm shared windows and
// may fire immediately, where a cold private evaluator would first have to
// refill its windows; the registry documents this as a feature of live
// registration.) Two mechanisms preserve the contract:
//
//   - Gating: a pack member is evaluated only once every shared window
//     holds at least the member's own degree — the moment a private
//     evaluator's windows would have filled.
//
//   - Truncation: a firing member's alert embeds each window's
//     HistoryPrefix at the member's own degree, so alert identities match
//     the private-window baseline even though the shared window is sized
//     to the maximum degree of its readers.

import (
	"fmt"
	"sort"
	"strconv"

	"condmon/internal/cond"
	"condmon/internal/event"
)

// SharedWindows is one shard-lane's update history store: a single
// event.Window per variable, shared by every co-sharded condition reading
// that variable, each sized to the maximum degree any reader requires.
type SharedWindows struct {
	wins map[event.VarName]*event.Window
}

// NewSharedWindows creates an empty store.
func NewSharedWindows() *SharedWindows {
	return &SharedWindows{wins: make(map[event.VarName]*event.Window)}
}

// Ensure creates the variable's window at the given degree, or widens an
// existing one (Window.Grow) when a new reader needs deeper history.
func (s *SharedWindows) Ensure(v event.VarName, degree int) error {
	if w, ok := s.wins[v]; ok {
		w.Grow(degree)
		return nil
	}
	w, err := event.NewWindow(v, degree)
	if err != nil {
		return err
	}
	s.wins[v] = w
	return nil
}

// Window returns the variable's window, or nil when untracked.
func (s *SharedWindows) Window(v event.VarName) *event.Window { return s.wins[v] }

// Push incorporates an update into the variable's shared window. It
// reports false — one discard, observed by every reader at once — when the
// variable is untracked or the delivery is out of order.
func (s *SharedWindows) Push(u event.Update) bool {
	w := s.wins[u.Var]
	if w == nil {
		return false
	}
	return w.TryPush(u)
}

// HistoryOf implements event.HistoryView over the live windows. Returned
// histories alias window storage and are valid only until the next Push.
func (s *SharedWindows) HistoryOf(v event.VarName) (event.History, bool) {
	w := s.wins[v]
	if w == nil {
		return event.History{}, false
	}
	return w.Live(), true
}

// Len returns the number of tracked variables.
func (s *SharedWindows) Len() int { return len(s.wins) }

// MemberAlert is one fired condition from a shared evaluation pass. Token
// echoes the registration token (the registry's epoch), letting the alert
// fan-in fence alerts that were in flight when their condition was
// unregistered.
type MemberAlert struct {
	Token uint64
	Alert event.Alert
}

// Ref identifies a registered condition within a SharedEvaluator, for
// Unregister.
type Ref struct {
	ps *packState
	st *straggler
	id int32
}

// packState is one cond.Pack plus the per-member metadata the evaluator
// needs to emit alerts: registration tokens and per-variable degrees for
// history truncation.
type packState struct {
	pack *cond.Pack
	vars []event.VarName
	meta map[int32]memberMeta
}

type memberMeta struct {
	token uint64
	// degs is the member's degree per pack variable, in vars order, used
	// to truncate alert histories to the member's own view.
	degs []int
	// key is the canonical form of degs: the per-pack snapshot-cache key.
	key string
}

// straggler is a condition outside the pack compiler's reach, evaluated by
// a private per-condition Evaluator fed the same deliveries.
type straggler struct {
	ev    *Evaluator
	token uint64
	live  bool
}

// SharedEvaluator is one CE lane of one shard: it owns the lane's shared
// windows and evaluates every registered condition — pack members in one
// pass per pack, stragglers individually — against each delivered update.
// Like Evaluator, it is not safe for concurrent use; the runtime wraps it
// in a single goroutine.
type SharedEvaluator struct {
	id   string
	wins *SharedWindows
	// noPacks disables grouping: every condition becomes a straggler with
	// private windows. It is the per-condition baseline the equivalence
	// suite compares pack evaluation against.
	noPacks bool

	packs  map[string]*packState // keyed by variable-set signature
	byVarP map[event.VarName][]*packState
	byVarS map[event.VarName][]*straggler

	nMembers    int
	nStragglers int

	fired []int32 // scratch for Pack.EvalAppend
	m     *Metrics

	// journal, when set, receives every update delivered to the lane (in
	// delivery order, before any window mutates) so a durable layer can
	// log it; nil keeps the hot path at one nil check. Replay via Absorb
	// bypasses it.
	journal func(event.Update) error
}

// NewSharedEvaluator creates an empty lane evaluator with the given
// identity ("CE1", "CE2", …); emitted alerts carry it as Source. noPacks
// selects the per-condition baseline mode (see SharedEvaluator).
func NewSharedEvaluator(id string, noPacks bool) (*SharedEvaluator, error) {
	if id == "" {
		return nil, fmt.Errorf("ce: shared evaluator id must be non-empty")
	}
	return &SharedEvaluator{
		id:      id,
		wins:    NewSharedWindows(),
		noPacks: noPacks,
		packs:   make(map[string]*packState),
		byVarP:  make(map[event.VarName][]*packState),
		byVarS:  make(map[event.VarName][]*straggler),
	}, nil
}

// ID returns the lane identity.
func (s *SharedEvaluator) ID() string { return s.id }

// SetMetrics attaches (or detaches) shared instrumentation; straggler
// evaluators receive the same Metrics. Call before feeding updates.
func (s *SharedEvaluator) SetMetrics(m *Metrics) { s.m = m }

// Packs returns the number of live packs.
func (s *SharedEvaluator) Packs() int { return len(s.packs) }

// PackMembers returns the number of live pack-member conditions.
func (s *SharedEvaluator) PackMembers() int { return s.nMembers }

// Stragglers returns the number of live per-condition fallback evaluators.
func (s *SharedEvaluator) Stragglers() int { return s.nStragglers }

// Windows returns the lane's shared window store.
func (s *SharedEvaluator) Windows() *SharedWindows { return s.wins }

// varsSig is the pack key: the sorted, deduplicated variable set.
func varsSig(vars []event.VarName) string {
	n := 0
	for _, v := range vars {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for _, v := range vars {
		b = append(b, v...)
		b = append(b, 0)
	}
	return string(b)
}

// Register adds a condition to the lane under the given token. Packable
// conditions join (or create) the pack for their variable set; everything
// else gets a private straggler Evaluator. The returned Ref is the handle
// for Unregister.
func (s *SharedEvaluator) Register(c cond.Condition, token uint64) (Ref, error) {
	if !s.noPacks && cond.Packable(c) {
		vars := c.Vars()
		sig := varsSig(vars)
		ps, ok := s.packs[sig]
		if !ok {
			ps = &packState{
				pack: cond.NewPack(vars...),
				vars: vars,
				meta: make(map[int32]memberMeta),
			}
		}
		if id, added := ps.pack.Add(c); added {
			// Size the shared windows before the pack can be evaluated.
			for _, v := range ps.vars {
				if err := s.wins.Ensure(v, ps.pack.Degree(v)); err != nil {
					ps.pack.Remove(id)
					return Ref{}, fmt.Errorf("ce: %s: register %q: %w", s.id, c.Name(), err)
				}
			}
			degs := make([]int, len(ps.vars))
			key := make([]byte, 0, 2*len(ps.vars))
			for i, v := range ps.vars {
				degs[i] = c.Degree(v)
				key = strconv.AppendInt(key, int64(degs[i]), 10)
				key = append(key, ',')
			}
			ps.meta[id] = memberMeta{token: token, degs: degs, key: string(key)}
			if !ok {
				s.packs[sig] = ps
				for _, v := range ps.vars {
					s.byVarP[v] = append(s.byVarP[v], ps)
				}
			}
			s.nMembers++
			return Ref{ps: ps, id: id}, nil
		}
		// The pack declined (e.g. duplicated variables in the set); fall
		// through to a straggler.
	}
	ev, err := New(s.id, c)
	if err != nil {
		return Ref{}, err
	}
	ev.SetMetrics(s.m)
	st := &straggler{ev: ev, token: token, live: true}
	for _, v := range c.Vars() {
		s.byVarS[v] = append(s.byVarS[v], st)
	}
	s.nStragglers++
	return Ref{st: st}, nil
}

// Unregister removes a previously registered condition. The lane stops
// evaluating it immediately; its shared windows persist (degrees never
// shrink) so remaining readers are unaffected. Unregistering a zero or
// stale Ref is a no-op.
func (s *SharedEvaluator) Unregister(r Ref) {
	switch {
	case r.ps != nil:
		if _, ok := r.ps.meta[r.id]; !ok {
			return
		}
		r.ps.pack.Remove(r.id)
		delete(r.ps.meta, r.id)
		s.nMembers--
	case r.st != nil && r.st.live:
		r.st.live = false
		for _, v := range r.st.ev.Condition().Vars() {
			list := s.byVarS[v]
			for i, st := range list {
				if st == r.st {
					s.byVarS[v] = append(list[:i], list[i+1:]...)
					break
				}
			}
		}
		s.nStragglers--
	}
}

// Feed delivers one update to the lane: one shared-window push, one
// evaluation pass per pack reading the variable, one private Feed per
// straggler reading it. Alerts of every firing condition are appended to
// out in registration order (per pack, then stragglers). Evaluation errors
// do not stop the pass; the first is returned at the end.
func (s *SharedEvaluator) Feed(u event.Update, out []MemberAlert) ([]MemberAlert, error) {
	var firstErr error
	if s.journal != nil {
		// Journal the delivery itself, not its effects: the replayed
		// sequence re-derives every window (shared and straggler) exactly,
		// as long as the registration set matches the journaled run.
		if err := s.journal(u); err != nil {
			firstErr = fmt.Errorf("ce: %s: journal: %w", s.id, err)
		}
	}
	if w := s.wins.Window(u.Var); w != nil {
		if w.TryPush(u) {
			s.m.incFed()
			for _, ps := range s.byVarP[u.Var] {
				// snaps caches one truncated HistorySet per distinct degree
				// signature within this (update, pack); members of equal
				// degrees share the same immutable snapshot (alerts never
				// mutate histories).
				var snaps map[string]event.HistorySet
				var err error
				s.fired, err = ps.pack.EvalAppend(s.wins, s.fired[:0])
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("ce: %s: %w", s.id, err)
				}
				for _, id := range s.fired {
					meta, ok := ps.meta[id]
					if !ok {
						continue
					}
					if snaps == nil {
						snaps = make(map[string]event.HistorySet, 1)
					}
					hs, ok := snaps[meta.key]
					if !ok {
						hs = make(event.HistorySet, len(ps.vars))
						for i, v := range ps.vars {
							hs[v] = s.wins.Window(v).HistoryPrefix(meta.degs[i])
						}
						snaps[meta.key] = hs
					}
					s.m.incFired()
					out = append(out, MemberAlert{
						Token: meta.token,
						Alert: event.NewAlert(ps.pack.MemberName(id), hs, s.id),
					})
				}
			}
		} else {
			s.m.incDiscarded()
		}
	}
	for _, st := range s.byVarS[u.Var] {
		a, fired, err := st.ev.Feed(u)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if fired {
			out = append(out, MemberAlert{Token: st.token, Alert: a})
		}
	}
	return out, firstErr
}

// SetJournal attaches (or, with nil, detaches) a durable journal sink: fn
// is called with every update Feed delivers, in delivery order, before
// any window mutates. A journal error surfaces as the Feed's first error.
// Call before feeding updates — not synchronized against a concurrent
// Feed.
func (s *SharedEvaluator) SetJournal(fn func(event.Update) error) { s.journal = fn }

// Absorb re-applies one journaled delivery during recovery: shared-window
// push plus straggler pushes, with no evaluation, no journaling, and no
// metrics. Replay order must match journal order; re-applied prefixes
// (a delta also covered by a later checkpoint) are rejected as stale by
// the windows and harmless.
func (s *SharedEvaluator) Absorb(u event.Update) {
	if w := s.wins.Window(u.Var); w != nil {
		w.TryPush(u)
	}
	for _, st := range s.byVarS[u.Var] {
		st.ev.Absorb(u)
	}
}

// Crash simulates a fail-stop restart of the whole lane without stable
// storage: shared windows and every straggler's private windows empty, as
// Evaluator.Crash does for a single condition.
func (s *SharedEvaluator) Crash() {
	for _, w := range s.wins.wins {
		w.Reset()
	}
	s.visitStragglers(func(ev *Evaluator) { ev.Crash() })
}

// SharedWindowStates snapshots every shared window for checkpointing, in
// sorted variable order so the encoding is deterministic. The histories
// are deep copies.
func (s *SharedEvaluator) SharedWindowStates() []event.History {
	vars := make([]string, 0, len(s.wins.wins))
	for v := range s.wins.wins {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	out := make([]event.History, 0, len(vars))
	for _, v := range vars {
		out = append(out, s.wins.wins[event.VarName(v)].History())
	}
	return out
}

// RestoreSharedWindows loads checkpointed shared histories back into the
// lane. It is deliberately lenient about registration drift: states for
// variables no longer tracked are skipped, and states deeper than the
// current window degree keep only their most recent entries — a restarted
// lane with a changed condition set recovers what still applies.
func (s *SharedEvaluator) RestoreSharedWindows(states []event.History) error {
	for _, h := range states {
		w := s.wins.Window(h.Var)
		if w == nil {
			continue
		}
		recent := h.Recent
		if len(recent) > w.Degree() {
			recent = recent[:w.Degree()]
		}
		if err := w.Restore(recent); err != nil {
			return fmt.Errorf("ce: %s: %w", s.id, err)
		}
	}
	return nil
}

// VisitStragglers calls fn once per live straggler evaluator, in condition
// name order (deterministic for checkpoint encoding).
func (s *SharedEvaluator) VisitStragglers(fn func(ev *Evaluator)) { s.visitStragglers(fn) }

func (s *SharedEvaluator) visitStragglers(fn func(ev *Evaluator)) {
	seen := make(map[*straggler]bool, s.nStragglers)
	evs := make([]*Evaluator, 0, s.nStragglers)
	for _, list := range s.byVarS {
		for _, st := range list {
			if st.live && !seen[st] {
				seen[st] = true
				evs = append(evs, st.ev)
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		return evs[i].Condition().Name() < evs[j].Condition().Name()
	})
	for _, ev := range evs {
		fn(ev)
	}
}

// StragglerFor returns the live straggler evaluator monitoring the named
// condition, or nil — the recovery router for checkpointed straggler
// window sets.
func (s *SharedEvaluator) StragglerFor(name string) *Evaluator {
	for _, list := range s.byVarS {
		for _, st := range list {
			if st.live && st.ev.Condition().Name() == name {
				return st.ev
			}
		}
	}
	return nil
}
