package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"condmon/internal/event"
)

func muxAlerts() []event.Alert {
	return []event.Alert{
		{Cond: "hot", Source: "CE1", Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 100), event.U("x", 1, 50)}},
		}},
		{Cond: "hot", Source: "CE2", Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 100)}},
		}},
		{Cond: "diff", Source: "CE1", Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", 7, 700)}},
			"y": {Var: "y", Recent: []event.Update{event.U("y", 2, 400)}},
		}},
	}
}

func TestMuxRoundTrip(t *testing.T) {
	alerts := muxAlerts()
	b, err := EncodeMux(42, alerts)
	if err != nil {
		t.Fatalf("EncodeMux: %v", err)
	}
	m, itemErrs, rest, err := DecodeMux(b)
	if err != nil {
		t.Fatalf("DecodeMux: %v", err)
	}
	if len(itemErrs) != 0 {
		t.Fatalf("clean frame produced item errors: %v", itemErrs)
	}
	if len(rest) != 0 {
		t.Fatalf("clean frame left %d trailing bytes", len(rest))
	}
	if m.Stream != 42 {
		t.Errorf("stream = %d, want 42", m.Stream)
	}
	if len(m.Alerts) != len(alerts) {
		t.Fatalf("decoded %d alerts, want %d", len(m.Alerts), len(alerts))
	}
	for i := range alerts {
		w, g := alerts[i], m.Alerts[i]
		if g.Cond != w.Cond || g.Source != w.Source || !g.Histories.Equal(w.Histories) {
			t.Errorf("alert %d = %v, want %v", i, g, w)
		}
	}
}

func TestMuxEmptyRun(t *testing.T) {
	b, err := EncodeMux(7, nil)
	if err != nil {
		t.Fatalf("EncodeMux: %v", err)
	}
	m, itemErrs, rest, err := DecodeMux(b)
	if err != nil || len(itemErrs) != 0 || len(rest) != 0 {
		t.Fatalf("DecodeMux = (%v, %v, %d trailing, %v)", m, itemErrs, len(rest), err)
	}
	if m.Stream != 7 || len(m.Alerts) != 0 {
		t.Errorf("decoded %v, want empty stream-7 run", m)
	}
}

// TestMuxCorruptItemSkipped is the desync contract: flipping bytes inside
// one item's body must cost only that item, with every other alert of the
// run still decoding in order.
func TestMuxCorruptItemSkipped(t *testing.T) {
	alerts := muxAlerts()
	b, err := EncodeMux(3, alerts)
	if err != nil {
		t.Fatalf("EncodeMux: %v", err)
	}
	// Corrupt the second item's body: its length prefix sits right after
	// item 0. Walk the frame to find it.
	off := muxHeaderLen
	off += muxItemOverhead + int(binary.BigEndian.Uint32(b[off:])) // past item 0
	b[off+muxItemOverhead] = 'Z'                                   // item 1's tag byte: no longer an alert

	m, itemErrs, rest, err := DecodeMux(b)
	if err != nil {
		t.Fatalf("DecodeMux after corruption: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("corrupted item desynced the frame: %d trailing bytes", len(rest))
	}
	if len(itemErrs) != 1 || itemErrs[0].Index != 1 {
		t.Fatalf("itemErrs = %v, want exactly item 1", itemErrs)
	}
	if len(m.Alerts) != 2 {
		t.Fatalf("decoded %d alerts, want the 2 intact ones", len(m.Alerts))
	}
	if m.Alerts[0].Source != "CE1" || m.Alerts[1].Cond != "diff" {
		t.Errorf("surviving alerts = %v, want items 0 and 2 in order", m.Alerts)
	}
}

func TestMuxTruncationIsFrameError(t *testing.T) {
	alerts := muxAlerts()
	b, err := EncodeMux(1, alerts)
	if err != nil {
		t.Fatalf("EncodeMux: %v", err)
	}
	for _, cut := range []int{1, muxHeaderLen - 1, muxHeaderLen + 2, len(b) - 1} {
		if _, _, _, err := DecodeMux(b[:cut]); err == nil {
			t.Errorf("DecodeMux of %d/%d bytes succeeded, want frame error", cut, len(b))
		}
	}
}

func TestMuxOverheadMatchesEncoding(t *testing.T) {
	alerts := muxAlerts()
	body := 0
	for _, a := range alerts {
		e, err := EncodeAlert(a)
		if err != nil {
			t.Fatalf("EncodeAlert: %v", err)
		}
		body += len(e)
	}
	b, err := EncodeMux(9, alerts)
	if err != nil {
		t.Fatalf("EncodeMux: %v", err)
	}
	if got, want := len(b), MuxOverhead(len(alerts), body); got != want {
		t.Errorf("encoded %d bytes, MuxOverhead predicts %d", got, want)
	}
}

func TestMuxTrailingBytesReturned(t *testing.T) {
	b, err := EncodeMux(5, muxAlerts()[:1])
	if err != nil {
		t.Fatalf("EncodeMux: %v", err)
	}
	tail := []byte{0xde, 0xad}
	m, itemErrs, rest, err := DecodeMux(append(append([]byte(nil), b...), tail...))
	if err != nil || len(itemErrs) != 0 {
		t.Fatalf("DecodeMux: %v %v", itemErrs, err)
	}
	if m.Stream != 5 || !bytes.Equal(rest, tail) {
		t.Errorf("rest = %x, want %x", rest, tail)
	}
}
