package wire

// The trace trailer: a tiny optional annotation appended after a frame
// body ('U', 'B', 'A', or 'M') so that live-tracing spans survive process
// boundaries — a CE daemon that receives an annotated update knows the
// DM-side emit timestamp, and an AD daemon that receives an annotated
// alert frame can relate its displayer verdicts to the update's origin.
//
// Layout: tag byte 'T', one flag byte, and a big-endian 8-byte origin
// timestamp in Unix nanoseconds — 10 bytes total, flat cost per frame (not
// per item), so an annotated 64KB batch datagram pays the same 10 bytes as
// a single update.
//
// Backward and forward compatibility fall out of the existing decode
// convention: every frame decoder returns its trailing bytes, and
// receivers historically required len(rest) == 0. New receivers instead
// call TakeTrace on the rest — an empty rest or one that does not start
// with 'T' is simply "no annotation" (ok=false), so frames from old
// senders decode unchanged; old receivers reject annotated frames the
// same way they reject any other trailing garbage, which is why tracing
// annotation is opt-in per sender and off by default.

import "encoding/binary"

// tagTrace marks a trace trailer after a frame body.
const tagTrace byte = 'T'

// TraceFlagSampled marks a frame whose lineage the sender is tracing; it
// is the only flag currently assigned, the remaining bits are reserved.
const TraceFlagSampled byte = 1 << 0

// TraceLen is the encoded size of a trace trailer in bytes.
const TraceLen = 1 + 1 + 8

// Trace is the decoded trailer annotation.
type Trace struct {
	// Flags carries TraceFlag* bits.
	Flags byte
	// Origin is the sender-side emit timestamp in Unix nanoseconds (zero
	// when the sender did not know it).
	Origin int64
}

// Sampled reports whether the TraceFlagSampled bit is set.
func (t Trace) Sampled() bool { return t.Flags&TraceFlagSampled != 0 }

// AppendTrace appends the trailer encoding of t to dst.
func AppendTrace(dst []byte, t Trace) []byte {
	dst = append(dst, tagTrace, t.Flags)
	return binary.BigEndian.AppendUint64(dst, uint64(t.Origin))
}

// TakeTrace consumes an optional trace trailer from the front of b
// (normally a frame decoder's trailing bytes). An empty b, or one that
// does not start with the trailer tag, is not an error — it returns
// ok=false with rest=b untouched, which is how frames from senders that
// do not annotate keep decoding. A buffer that starts the trailer but
// truncates it is corrupt and returns an error.
func TakeTrace(b []byte) (t Trace, ok bool, rest []byte, err error) {
	if len(b) == 0 || b[0] != tagTrace {
		return Trace{}, false, b, nil
	}
	if len(b) < TraceLen {
		return Trace{}, false, nil, errf("truncated trace trailer (want %d bytes, have %d)", TraceLen, len(b))
	}
	t.Flags = b[1]
	t.Origin = int64(binary.BigEndian.Uint64(b[2:]))
	return t, true, b[TraceLen:], nil
}
