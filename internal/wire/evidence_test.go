package wire

import (
	"testing"

	"condmon/internal/event"
)

func evidenceFixture() Evidence {
	e := Evidence{Var: "reactor", Base: 0, UpTo: 9, Vals: []float64{600, 700, 800, 3000}}
	h := EvidenceHashSeed
	for s := int64(1); s <= e.UpTo; s++ {
		h = EvidenceHashStep(h, s, float64(s*100))
	}
	e.PrefixHash = h
	return e
}

func TestEvidenceRoundTrip(t *testing.T) {
	cases := []Evidence{
		evidenceFixture(),
		{Var: "x", Base: 0, UpTo: 1, PrefixHash: 7, Vals: []float64{42}},
		{Var: "x", Base: 40, UpTo: 45, PrefixHash: 9, Vals: []float64{1, 2, 3}},
		{Var: "", Base: 2, UpTo: 5, PrefixHash: 0, Vals: []float64{-1.5, 0, 2.25}},
	}
	for _, want := range cases {
		buf, err := AppendEvidence(nil, want)
		if err != nil {
			t.Fatalf("AppendEvidence(%+v): %v", want, err)
		}
		got, rest, err := DecodeEvidence(buf)
		if err != nil {
			t.Fatalf("DecodeEvidence(%+v): %v", want, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeEvidence left %d trailing bytes", len(rest))
		}
		if got.Var != want.Var || got.Base != want.Base || got.UpTo != want.UpTo || got.PrefixHash != want.PrefixHash {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if len(got.Vals) != len(want.Vals) {
			t.Fatalf("round trip tail: got %v want %v", got.Vals, want.Vals)
		}
		for i := range got.Vals {
			if got.Vals[i] != want.Vals[i] {
				t.Fatalf("round trip tail[%d]: got %v want %v", i, got.Vals[i], want.Vals[i])
			}
		}
		if got.First() != want.UpTo-int64(len(want.Vals))+1 {
			t.Fatalf("First() = %d, want %d", got.First(), want.UpTo-int64(len(want.Vals))+1)
		}
	}
}

func TestEvidenceTrailingBytesReturned(t *testing.T) {
	buf, err := AppendEvidence(nil, evidenceFixture())
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xDE, 0xAD)
	_, rest, err := DecodeEvidence(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != 0xDE || rest[1] != 0xAD {
		t.Fatalf("rest = %x, want dead", rest)
	}
}

func TestEvidenceCRCRejectsCorruption(t *testing.T) {
	buf, err := AppendEvidence(nil, evidenceFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte in turn: each single-bit-of-a-byte corruption must be
	// detected either by the structural checks or by the CRC.
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x01
		if _, _, err := DecodeEvidence(bad); err == nil {
			t.Fatalf("corruption at byte %d decoded cleanly", i)
		}
	}
	// Truncation at every length must also fail.
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeEvidence(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
}

func TestEvidenceRejectsBadRanges(t *testing.T) {
	cases := []Evidence{
		{Var: "x", Base: 5, UpTo: 4, Vals: nil},                   // inverted range
		{Var: "x", Base: 0, UpTo: 3, Vals: []float64{1, 2, 3, 4}}, // tail escapes base
	}
	for _, e := range cases {
		if _, err := AppendEvidence(nil, e); err == nil {
			t.Fatalf("AppendEvidence(%+v) succeeded, want range error", e)
		}
	}
}

func TestEvidenceHashChainMatchesIncremental(t *testing.T) {
	// A builder hashing updates one at a time and a verifier re-deriving the
	// chain from a replayed stream must agree.
	us := []event.Update{
		event.U("x", 1, 600), event.U("x", 2, 700), event.U("x", 3, 3000),
	}
	h1 := EvidenceHashSeed
	for _, u := range us {
		h1 = EvidenceHashStep(h1, u.SeqNo, u.Value)
	}
	h2 := EvidenceHashSeed
	for _, u := range us {
		h2 = EvidenceHashStep(h2, u.SeqNo, u.Value)
	}
	if h1 != h2 {
		t.Fatalf("hash chain not deterministic: %x vs %x", h1, h2)
	}
	// Any difference in value or order must change the hash.
	h3 := EvidenceHashSeed
	h3 = EvidenceHashStep(h3, 1, 600)
	h3 = EvidenceHashStep(h3, 3, 3000)
	h3 = EvidenceHashStep(h3, 2, 700)
	if h3 == h1 {
		t.Fatal("hash chain insensitive to order")
	}
}

func FuzzDecodeEvidence(f *testing.F) {
	seed, err := AppendEvidence(nil, evidenceFixture())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'G'})
	f.Add([]byte{'G', 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeEvidence(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the exact consumed bytes.
		if len(e.Vals) > maxEvidenceTail {
			t.Fatalf("decoded oversize tail: %d", len(e.Vals))
		}
		buf, err := AppendEvidence(nil, e)
		if err != nil {
			t.Fatalf("re-encode of decoded evidence failed: %v", err)
		}
		consumed := data[:len(data)-len(rest)]
		if string(buf) != string(consumed) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", buf, consumed)
		}
	})
}
