package wire

import (
	"bytes"
	"testing"
)

func TestPathRoundTrip(t *testing.T) {
	for _, p := range []Path{
		{},
		{ID: 1, Seq: 1},
		{ID: 0xdeadbeef, Seq: 1<<63 + 7},
	} {
		b := AppendPath(nil, p)
		if len(b) != PathLen {
			t.Fatalf("encoded %d bytes, want %d", len(b), PathLen)
		}
		got, ok, rest, err := TakePath(b)
		if err != nil || !ok {
			t.Fatalf("TakePath: ok=%v err=%v", ok, err)
		}
		if got != p {
			t.Fatalf("round trip %+v -> %+v", p, got)
		}
		if len(rest) != 0 {
			t.Fatalf("rest = %d bytes, want 0", len(rest))
		}
	}
}

func TestPathAbsentAndTruncated(t *testing.T) {
	// Absent: empty rest and foreign tags pass through untouched.
	for _, b := range [][]byte{nil, {}, {'T', 1}, {'X'}} {
		p, ok, rest, err := TakePath(b)
		if err != nil || ok || (p != Path{}) {
			t.Fatalf("TakePath(%q): p=%+v ok=%v err=%v, want absent", b, p, ok, err)
		}
		if !bytes.Equal(rest, b) {
			t.Fatalf("TakePath(%q) consumed bytes: rest=%q", b, rest)
		}
	}
	// Truncated: a started trailer that cannot complete is corrupt.
	full := AppendPath(nil, Path{ID: 9, Seq: 9})
	for n := 1; n < PathLen; n++ {
		if _, _, _, err := TakePath(full[:n]); err == nil {
			t.Fatalf("TakePath of %d/%d bytes: want error", n, PathLen)
		}
	}
}

// TestPathBeforeTraceComposition pins the trailer order striped publishers
// use: frame body, then 'P', then 'T' — a receiver takes the path trailer
// first, the trace trailer second, and must end with an empty rest.
func TestPathBeforeTraceComposition(t *testing.T) {
	b := AppendPath(nil, Path{ID: 3, Seq: 44})
	b = AppendTrace(b, Trace{Flags: TraceFlagSampled, Origin: 12345})
	p, ok, rest, err := TakePath(b)
	if err != nil || !ok || p.ID != 3 || p.Seq != 44 {
		t.Fatalf("TakePath: %+v ok=%v err=%v", p, ok, err)
	}
	tr, ok, rest, err := TakeTrace(rest)
	if err != nil || !ok || tr.Origin != 12345 {
		t.Fatalf("TakeTrace after path: %+v ok=%v err=%v", tr, ok, err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes after both trailers", len(rest))
	}
}
