package wire

// The audit evidence frame: a compact, CRC-framed prefix digest of one
// variable's emitted update sequence, published periodically by a DM (or an
// in-process emit path) so a downstream auditor can check displayed alerts
// against what the source actually sent — without replaying full histories.
//
// Layout: tag byte 'G', the variable name, the base and upper sequence
// numbers the chained prefix hash covers, the hash itself, a tail of the
// most recent values (consecutive seqnos ending at the upper bound), and an
// IEEE CRC-32 over everything before it. The CRC makes a truncated or
// bit-flipped frame fail closed — evidence is only ever used to *confirm*
// or *refute* a verdict, so a damaged frame must be dropped rather than
// half-trusted.
//
// Compatibility follows the 'T' trailer precedent: receivers from before
// this frame existed reject the unknown tag as a corrupt datagram (UDP) or
// a corrupt stream (TCP), which is why evidence publishing and forwarding
// are opt-in per daemon and off by default.

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"condmon/internal/event"
)

// maxEvidenceTail bounds the value tail of one evidence frame; longer tails
// indicate a corrupt frame (and would not fit a datagram anyway).
const maxEvidenceTail = 2048

// EvidenceHashSeed is the FNV-1a offset basis the chained prefix hash
// starts from at its base sequence number.
const EvidenceHashSeed uint64 = 14695981039346656037

// evidenceHashPrime is the FNV-1a prime.
const evidenceHashPrime uint64 = 1099511628211

// Evidence is one decoded prefix-digest frame: the claim "variable Var's
// updates (Base, UpTo] hash-chain to PrefixHash, and the most recent
// len(Vals) of them carried these values". The tail's sequence numbers are
// implicit: Vals[i] is the value of update UpTo-len(Vals)+1+i.
type Evidence struct {
	// Var is the variable the digest describes.
	Var event.VarName
	// Base anchors the prefix hash: the hash covers updates with sequence
	// numbers in (Base, UpTo]. A DM that has emitted from seqno 1 uses
	// Base 0; one restarted with an overlap uses the seqno before its first.
	Base int64
	// UpTo is the highest emitted sequence number the digest covers.
	UpTo int64
	// PrefixHash is the chained FNV-1a hash over (seqno, value) pairs for
	// Base+1 … UpTo in emission order, starting from EvidenceHashSeed.
	PrefixHash uint64
	// Vals carries the values of the tail run ending at UpTo. Overlapping
	// tails across consecutive frames are what let a receiver rebuild a
	// contiguous evidence prefix even when individual frames are lost.
	Vals []float64
}

// First returns the sequence number of the first tail value, or UpTo+1 for
// an empty tail.
func (e Evidence) First() int64 { return e.UpTo - int64(len(e.Vals)) + 1 }

// EvidenceHashStep folds one update into a chained prefix hash: the FNV-1a
// absorption of its sequence number and value bits. Builders and verifiers
// must apply it in emission order starting from EvidenceHashSeed.
func EvidenceHashStep(h uint64, seqNo int64, value float64) uint64 {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seqNo))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(value))
	for _, b := range buf {
		h ^= uint64(b)
		h *= evidenceHashPrime
	}
	return h
}

// AppendEvidence appends the encoding of e, CRC included, to dst.
func AppendEvidence(dst []byte, e Evidence) ([]byte, error) {
	if len(e.Var) > maxStringLen {
		return nil, errf("evidence variable name of %d bytes exceeds limit", len(e.Var))
	}
	if len(e.Vals) > maxEvidenceTail {
		return nil, errf("evidence tail of %d values exceeds limit %d", len(e.Vals), maxEvidenceTail)
	}
	if e.UpTo < e.Base || e.First() <= e.Base {
		return nil, errf("evidence tail %d..%d escapes its hash range (%d, %d]", e.First(), e.UpTo, e.Base, e.UpTo)
	}
	start := len(dst)
	dst = append(dst, tagEvidence)
	dst = appendString(dst, string(e.Var))
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.Base))
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.UpTo))
	dst = binary.BigEndian.AppendUint64(dst, e.PrefixHash)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Vals)))
	for _, v := range e.Vals {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// DecodeEvidence decodes an evidence frame, verifying its CRC, and returns
// any trailing bytes. A frame whose CRC does not match its content is
// corrupt: evidence must fail closed, never half-decode.
func DecodeEvidence(b []byte) (Evidence, []byte, error) {
	if len(b) == 0 || b[0] != tagEvidence {
		return Evidence{}, nil, errf("not an evidence frame")
	}
	full := b
	b = b[1:]
	name, b, err := readString(b)
	if err != nil {
		return Evidence{}, nil, err
	}
	if len(b) < 8+8+8+2 {
		return Evidence{}, nil, errf("truncated evidence header")
	}
	e := Evidence{
		Var:        event.VarName(name),
		Base:       int64(binary.BigEndian.Uint64(b)),
		UpTo:       int64(binary.BigEndian.Uint64(b[8:])),
		PrefixHash: binary.BigEndian.Uint64(b[16:]),
	}
	n := int(binary.BigEndian.Uint16(b[24:]))
	b = b[26:]
	if n > maxEvidenceTail {
		return Evidence{}, nil, errf("evidence tail of %d values exceeds limit %d", n, maxEvidenceTail)
	}
	if len(b) < 8*n+4 {
		return Evidence{}, nil, errf("truncated evidence tail (want %d values)", n)
	}
	e.Vals = make([]float64, n)
	for i := 0; i < n; i++ {
		e.Vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	body := len(full) - len(b) // bytes covered by the CRC
	want := binary.BigEndian.Uint32(b)
	if got := crc32.ChecksumIEEE(full[:body]); got != want {
		return Evidence{}, nil, errf("evidence CRC mismatch (frame %08x, content %08x)", want, got)
	}
	if e.UpTo < e.Base || e.First() <= e.Base {
		return Evidence{}, nil, errf("evidence tail %d..%d escapes its hash range (%d, %d]", e.First(), e.UpTo, e.Base, e.UpTo)
	}
	return e, b[4:], nil
}
