package wire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"condmon/internal/event"
)

func sampleAlert() event.Alert {
	return event.Alert{
		Cond:   "c2",
		Source: "CE1",
		Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{
				event.U("x", 7, 700.5), event.U("x", 5, 400),
			}},
			"y": {Var: "y", Recent: []event.Update{event.U("y", 3, -12.25)}},
		},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := event.U("reactor_x", 42, 3000.75)
	b, err := EncodeUpdate(u)
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	got, rest, err := DecodeUpdate(b)
	if err != nil {
		t.Fatalf("DecodeUpdate: %v", err)
	}
	if got != u {
		t.Errorf("round trip = %v, want %v", got, u)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
}

func TestUpdateDecodeTrailing(t *testing.T) {
	b, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	b = append(b, 0xEE)
	_, rest, err := DecodeUpdate(b)
	if err != nil {
		t.Fatalf("DecodeUpdate: %v", err)
	}
	if len(rest) != 1 || rest[0] != 0xEE {
		t.Errorf("trailing = %v, want [0xEE]", rest)
	}
}

func TestAlertRoundTrip(t *testing.T) {
	a := sampleAlert()
	b, err := EncodeAlert(a)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	got, rest, err := DecodeAlert(b)
	if err != nil {
		t.Fatalf("DecodeAlert: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if got.Cond != a.Cond || got.Source != a.Source {
		t.Errorf("metadata = %q/%q, want %q/%q", got.Cond, got.Source, a.Cond, a.Source)
	}
	if !got.Histories.Equal(a.Histories) {
		t.Errorf("histories = %v, want %v", got.Histories, a.Histories)
	}
	if got.Key() != a.Key() {
		t.Errorf("keys differ after round trip")
	}
}

func TestDecodeRejectsWrongTag(t *testing.T) {
	b, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	if _, _, err := DecodeAlert(b); err == nil {
		t.Error("DecodeAlert of an update should fail")
	}
	if _, _, err := DecodeDigest(b); err == nil {
		t.Error("DecodeDigest of an update should fail")
	}
	a, err := EncodeAlert(sampleAlert())
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	if _, _, err := DecodeUpdate(a); err == nil {
		t.Error("DecodeUpdate of an alert should fail")
	}
	if _, _, err := DecodeUpdate(nil); err == nil {
		t.Error("DecodeUpdate of empty input should fail")
	}
}

func TestDecodeRejectsNegativeSeqNo(t *testing.T) {
	b, err := EncodeUpdate(event.Update{Var: "x", SeqNo: -1, Value: 0})
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	if _, _, err := DecodeUpdate(b); err == nil {
		t.Error("negative seqno should be rejected at decode")
	}
}

func TestTruncationErrors(t *testing.T) {
	full, err := EncodeAlert(sampleAlert())
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeAlert(full[:cut]); err == nil {
			t.Fatalf("DecodeAlert of %d/%d bytes should fail", cut, len(full))
		}
	}
	u, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	for cut := 1; cut < len(u); cut++ {
		if _, _, err := DecodeUpdate(u[:cut]); err == nil {
			t.Fatalf("DecodeUpdate of %d/%d bytes should fail", cut, len(u))
		}
	}
}

func TestEncodeRejectsOversizedNames(t *testing.T) {
	long := strings.Repeat("v", 70000)
	if _, err := EncodeUpdate(event.U(event.VarName(long), 1, 2)); err == nil {
		t.Error("oversized variable name should be rejected")
	}
	a := sampleAlert()
	a.Cond = long
	if _, err := EncodeAlert(a); err == nil {
		t.Error("oversized condition name should be rejected")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := DigestOf(sampleAlert())
	b, err := AppendDigest(nil, d)
	if err != nil {
		t.Fatalf("AppendDigest: %v", err)
	}
	got, rest, err := DecodeDigest(b)
	if err != nil {
		t.Fatalf("DecodeDigest: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if got.Cond != d.Cond || got.Source != d.Source || got.Sum != d.Sum {
		t.Errorf("digest = %+v, want %+v", got, d)
	}
	if got.Latest["x"] != 7 || got.Latest["y"] != 3 {
		t.Errorf("latest = %v, want x:7 y:3", got.Latest)
	}
}

func TestDigestEqualityTracksAlertIdentity(t *testing.T) {
	a := sampleAlert()
	b := sampleAlert()
	if DigestOf(a).Key() != DigestOf(b).Key() {
		t.Error("identical alerts must have identical digest keys")
	}
	// Change one history seqno: key must change.
	c := sampleAlert()
	c.Histories["x"].Recent[1] = event.U("x", 4, 400)
	if DigestOf(a).Key() == DigestOf(c).Key() {
		t.Error("different histories must produce different digest keys")
	}
	// Same trigger seqno but different condition: key must change.
	d := sampleAlert()
	d.Cond = "other"
	if DigestOf(a).Key() == DigestOf(d).Key() {
		t.Error("different conditions must produce different digest keys")
	}
}

func TestDigestDistinguishesWindowsWithSameLatest(t *testing.T) {
	// The Section 3 pair: a1 on (3,2), a2 on (3,1): same a.seqno.x, and a
	// naive latest-only summary would conflate them; the checksum must
	// not.
	mk := func(prev int64) event.Alert {
		return event.Alert{Cond: "c", Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 0), event.U("x", prev, 0)}},
		}}
	}
	if DigestOf(mk(2)).Key() == DigestOf(mk(1)).Key() {
		t.Error("digest must distinguish different windows with the same latest seqno")
	}
}

func TestQuickUpdateRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(30))}
	prop := func(nameBytes []byte, seqIn int64, value float64) bool {
		if len(nameBytes) > 100 {
			nameBytes = nameBytes[:100]
		}
		seq := seqIn
		if seq < 0 {
			seq = -seq
		}
		u := event.Update{Var: event.VarName(nameBytes), SeqNo: seq, Value: value}
		b, err := EncodeUpdate(u)
		if err != nil {
			return false
		}
		got, rest, err := DecodeUpdate(b)
		if err != nil || len(rest) != 0 {
			return false
		}
		// NaN compares unequal to itself; compare bit patterns via key
		// fields separately.
		if got.Var != u.Var || got.SeqNo != u.SeqNo {
			return false
		}
		return got.Value == u.Value || (got.Value != got.Value && u.Value != u.Value)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("update round trip property failed: %v", err)
	}
}

func TestDecodeAlertRejectsDuplicateVariable(t *testing.T) {
	a := sampleAlert()
	b, err := EncodeAlert(a)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	// Craft a payload with the same variable twice by decoding structure
	// knowledge: simplest is to encode an alert with one variable and then
	// duplicate its history section manually.
	one := event.Alert{Cond: "c", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 1, 0)}},
	}}
	ob, err := EncodeAlert(one)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	// Variable section starts after tag + cond + source + count. Bump the
	// count to 2 and append the section again.
	histStart := 1 + 2 + len("c") + 2 + 0 + 2
	section := append([]byte(nil), ob[histStart:]...)
	ob[histStart-1] = 2 // count low byte
	ob = append(ob, section...)
	if _, _, err := DecodeAlert(ob); err == nil {
		t.Error("duplicate variable section should be rejected")
	}
	_ = b
}
