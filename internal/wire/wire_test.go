package wire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"condmon/internal/event"
)

func sampleAlert() event.Alert {
	return event.Alert{
		Cond:   "c2",
		Source: "CE1",
		Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{
				event.U("x", 7, 700.5), event.U("x", 5, 400),
			}},
			"y": {Var: "y", Recent: []event.Update{event.U("y", 3, -12.25)}},
		},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := event.U("reactor_x", 42, 3000.75)
	b, err := EncodeUpdate(u)
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	got, rest, err := DecodeUpdate(b)
	if err != nil {
		t.Fatalf("DecodeUpdate: %v", err)
	}
	if got != u {
		t.Errorf("round trip = %v, want %v", got, u)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
}

func TestUpdateDecodeTrailing(t *testing.T) {
	b, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	b = append(b, 0xEE)
	_, rest, err := DecodeUpdate(b)
	if err != nil {
		t.Fatalf("DecodeUpdate: %v", err)
	}
	if len(rest) != 1 || rest[0] != 0xEE {
		t.Errorf("trailing = %v, want [0xEE]", rest)
	}
}

func TestAlertRoundTrip(t *testing.T) {
	a := sampleAlert()
	b, err := EncodeAlert(a)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	got, rest, err := DecodeAlert(b)
	if err != nil {
		t.Fatalf("DecodeAlert: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if got.Cond != a.Cond || got.Source != a.Source {
		t.Errorf("metadata = %q/%q, want %q/%q", got.Cond, got.Source, a.Cond, a.Source)
	}
	if !got.Histories.Equal(a.Histories) {
		t.Errorf("histories = %v, want %v", got.Histories, a.Histories)
	}
	if got.Key() != a.Key() {
		t.Errorf("keys differ after round trip")
	}
}

func TestDecodeRejectsWrongTag(t *testing.T) {
	b, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	if _, _, err := DecodeAlert(b); err == nil {
		t.Error("DecodeAlert of an update should fail")
	}
	if _, _, err := DecodeDigest(b); err == nil {
		t.Error("DecodeDigest of an update should fail")
	}
	a, err := EncodeAlert(sampleAlert())
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	if _, _, err := DecodeUpdate(a); err == nil {
		t.Error("DecodeUpdate of an alert should fail")
	}
	if _, _, err := DecodeUpdate(nil); err == nil {
		t.Error("DecodeUpdate of empty input should fail")
	}
}

func TestDecodeRejectsNegativeSeqNo(t *testing.T) {
	b, err := EncodeUpdate(event.Update{Var: "x", SeqNo: -1, Value: 0})
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	if _, _, err := DecodeUpdate(b); err == nil {
		t.Error("negative seqno should be rejected at decode")
	}
}

func TestTruncationErrors(t *testing.T) {
	full, err := EncodeAlert(sampleAlert())
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeAlert(full[:cut]); err == nil {
			t.Fatalf("DecodeAlert of %d/%d bytes should fail", cut, len(full))
		}
	}
	u, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	for cut := 1; cut < len(u); cut++ {
		if _, _, err := DecodeUpdate(u[:cut]); err == nil {
			t.Fatalf("DecodeUpdate of %d/%d bytes should fail", cut, len(u))
		}
	}
}

func TestEncodeRejectsOversizedNames(t *testing.T) {
	long := strings.Repeat("v", 70000)
	if _, err := EncodeUpdate(event.U(event.VarName(long), 1, 2)); err == nil {
		t.Error("oversized variable name should be rejected")
	}
	a := sampleAlert()
	a.Cond = long
	if _, err := EncodeAlert(a); err == nil {
		t.Error("oversized condition name should be rejected")
	}
}

func sampleBatch() []event.Update {
	return []event.Update{
		event.U("x", 3, 2900), event.U("x", 4, 3000.5), event.U("x", 6, -12),
	}
}

func TestBatchRoundTrip(t *testing.T) {
	us := sampleBatch()
	b, err := EncodeBatch("x", us)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	got, itemErrs, rest, err := DecodeBatch(b)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(itemErrs) != 0 {
		t.Errorf("item errors on a clean frame: %v", itemErrs)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if got.Var != "x" || len(got.Updates) != len(us) {
		t.Fatalf("batch = %+v, want 3 x-updates", got)
	}
	for i, u := range got.Updates {
		if u != us[i] {
			t.Errorf("update %d = %v, want %v", i, u, us[i])
		}
	}
}

func TestBatchEmptyRoundTrip(t *testing.T) {
	b, err := EncodeBatch("x", nil)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	got, itemErrs, rest, err := DecodeBatch(b)
	if err != nil || len(itemErrs) != 0 || len(rest) != 0 {
		t.Fatalf("DecodeBatch: %v %v rest=%d", err, itemErrs, len(rest))
	}
	if got.Var != "x" || len(got.Updates) != 0 {
		t.Errorf("batch = %+v, want empty x batch", got)
	}
}

func TestBatchHeaderAmortization(t *testing.T) {
	// The point of the frame: n updates cost one header plus 16 bytes each,
	// versus n full per-update encodings.
	us := make([]event.Update, 64)
	for i := range us {
		us[i] = event.U("reactor_temp", int64(i+1), float64(i))
	}
	batched, err := EncodeBatch("reactor_temp", us)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	var single int
	for _, u := range us {
		b, err := EncodeUpdate(u)
		if err != nil {
			t.Fatalf("EncodeUpdate: %v", err)
		}
		single += len(b)
	}
	if want := 1 + 2 + len("reactor_temp") + 2 + 16*len(us); len(batched) != want {
		t.Errorf("batched frame = %d bytes, want %d", len(batched), want)
	}
	if len(batched) >= single {
		t.Errorf("batched frame (%d bytes) not smaller than %d per-update frames (%d bytes)", len(batched), len(us), single)
	}
}

func TestBatchEncodeRejectsContractViolations(t *testing.T) {
	cases := []struct {
		name string
		us   []event.Update
	}{
		{"wrong variable", []event.Update{event.U("y", 1, 0)}},
		{"negative seqno", []event.Update{{Var: "x", SeqNo: -1}}},
		{"non-increasing", []event.Update{event.U("x", 2, 0), event.U("x", 2, 1)}},
		{"decreasing", []event.Update{event.U("x", 5, 0), event.U("x", 3, 1)}},
	}
	for _, tc := range cases {
		if _, err := EncodeBatch("x", tc.us); err == nil {
			t.Errorf("%s: EncodeBatch should fail", tc.name)
		}
	}
	long := strings.Repeat("v", 70000)
	if _, err := EncodeBatch(event.VarName(long), nil); err == nil {
		t.Error("oversized variable name should be rejected")
	}
}

func TestBatchDecodeSkipsCorruptItemsKeepsRest(t *testing.T) {
	us := sampleBatch()
	b, err := EncodeBatch("x", us)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	// Corrupt the middle item's seqno in place: set the sign bit (negative)
	// — item 1 must be reported bad, items 0 and 2 must survive.
	itemStart := 1 + 2 + len("x") + 2 + 16*1
	b[itemStart] |= 0x80
	got, itemErrs, rest, err := DecodeBatch(b)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if len(itemErrs) != 1 || itemErrs[0].Index != 1 {
		t.Fatalf("itemErrs = %v, want exactly item 1", itemErrs)
	}
	if len(got.Updates) != 2 || got.Updates[0] != us[0] || got.Updates[1] != us[2] {
		t.Errorf("kept updates = %v, want items 0 and 2 of %v", got.Updates, us)
	}

	// Rewind the seqno of the middle item instead (stale duplicate): same
	// recovery, different item error.
	b2, err := EncodeBatch("x", us)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	copy(b2[itemStart:], make([]byte, 8)) // seqno 0 ≤ predecessor 3
	got2, itemErrs2, _, err := DecodeBatch(b2)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(itemErrs2) != 1 || itemErrs2[0].Index != 1 {
		t.Fatalf("itemErrs = %v, want exactly item 1", itemErrs2)
	}
	if len(got2.Updates) != 2 {
		t.Errorf("kept %d updates, want 2", len(got2.Updates))
	}
}

func TestBatchTruncationErrors(t *testing.T) {
	full, err := EncodeBatch("x", sampleBatch())
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := DecodeBatch(full[:cut]); err == nil {
			t.Fatalf("DecodeBatch of %d/%d bytes should fail", cut, len(full))
		}
	}
	if _, _, _, err := DecodeBatch(full); err != nil {
		t.Fatalf("DecodeBatch of the full frame: %v", err)
	}
	u, err := EncodeUpdate(event.U("x", 1, 2))
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	if _, _, _, err := DecodeBatch(u); err == nil {
		t.Error("DecodeBatch of an update frame should fail")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := DigestOf(sampleAlert())
	b, err := AppendDigest(nil, d)
	if err != nil {
		t.Fatalf("AppendDigest: %v", err)
	}
	got, rest, err := DecodeDigest(b)
	if err != nil {
		t.Fatalf("DecodeDigest: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if got.Cond != d.Cond || got.Source != d.Source || got.Sum != d.Sum {
		t.Errorf("digest = %+v, want %+v", got, d)
	}
	if got.Latest["x"] != 7 || got.Latest["y"] != 3 {
		t.Errorf("latest = %v, want x:7 y:3", got.Latest)
	}
}

func TestDigestEqualityTracksAlertIdentity(t *testing.T) {
	a := sampleAlert()
	b := sampleAlert()
	if DigestOf(a).Key() != DigestOf(b).Key() {
		t.Error("identical alerts must have identical digest keys")
	}
	// Change one history seqno: key must change.
	c := sampleAlert()
	c.Histories["x"].Recent[1] = event.U("x", 4, 400)
	if DigestOf(a).Key() == DigestOf(c).Key() {
		t.Error("different histories must produce different digest keys")
	}
	// Same trigger seqno but different condition: key must change.
	d := sampleAlert()
	d.Cond = "other"
	if DigestOf(a).Key() == DigestOf(d).Key() {
		t.Error("different conditions must produce different digest keys")
	}
}

func TestDigestDistinguishesWindowsWithSameLatest(t *testing.T) {
	// The Section 3 pair: a1 on (3,2), a2 on (3,1): same a.seqno.x, and a
	// naive latest-only summary would conflate them; the checksum must
	// not.
	mk := func(prev int64) event.Alert {
		return event.Alert{Cond: "c", Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", 3, 0), event.U("x", prev, 0)}},
		}}
	}
	if DigestOf(mk(2)).Key() == DigestOf(mk(1)).Key() {
		t.Error("digest must distinguish different windows with the same latest seqno")
	}
}

func TestQuickUpdateRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(30))}
	prop := func(nameBytes []byte, seqIn int64, value float64) bool {
		if len(nameBytes) > 100 {
			nameBytes = nameBytes[:100]
		}
		seq := seqIn
		if seq < 0 {
			seq = -seq
		}
		u := event.Update{Var: event.VarName(nameBytes), SeqNo: seq, Value: value}
		b, err := EncodeUpdate(u)
		if err != nil {
			return false
		}
		got, rest, err := DecodeUpdate(b)
		if err != nil || len(rest) != 0 {
			return false
		}
		// NaN compares unequal to itself; compare bit patterns via key
		// fields separately.
		if got.Var != u.Var || got.SeqNo != u.SeqNo {
			return false
		}
		return got.Value == u.Value || (got.Value != got.Value && u.Value != u.Value)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("update round trip property failed: %v", err)
	}
}

func TestDecodeAlertRejectsDuplicateVariable(t *testing.T) {
	a := sampleAlert()
	b, err := EncodeAlert(a)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	// Craft a payload with the same variable twice by decoding structure
	// knowledge: simplest is to encode an alert with one variable and then
	// duplicate its history section manually.
	one := event.Alert{Cond: "c", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 1, 0)}},
	}}
	ob, err := EncodeAlert(one)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	// Variable section starts after tag + cond + source + count. Bump the
	// count to 2 and append the section again.
	histStart := 1 + 2 + len("c") + 2 + 0 + 2
	section := append([]byte(nil), ob[histStart:]...)
	ob[histStart-1] = 2 // count low byte
	ob = append(ob, section...)
	if _, _, err := DecodeAlert(ob); err == nil {
		t.Error("duplicate variable section should be rejected")
	}
	_ = b
}
