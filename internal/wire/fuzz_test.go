package wire

import (
	"bytes"
	"testing"

	"condmon/internal/event"
)

// FuzzDecodeUpdate ensures the update decoder never panics and that every
// successful decode re-encodes to the same bytes it consumed.
func FuzzDecodeUpdate(f *testing.F) {
	seed, err := EncodeUpdate(event.U("x", 7, 3000))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'U'})
	f.Add([]byte{'U', 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, rest, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		re, err := EncodeUpdate(u)
		if err != nil {
			t.Fatalf("decoded update %v does not re-encode: %v", u, err)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %v", u)
		}
	})
}

// FuzzDecodeAlert ensures the alert decoder never panics and round-trips.
func FuzzDecodeAlert(f *testing.F) {
	a := event.Alert{Cond: "c2", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 7, 700), event.U("x", 5, 400)}},
	}}
	seed, err := EncodeAlert(a)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{'A'})
	f.Add([]byte{'A', 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, rest, err := DecodeAlert(data)
		if err != nil {
			return
		}
		re, err := EncodeAlert(got)
		if err != nil {
			t.Fatalf("decoded alert %v does not re-encode: %v", got, err)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %v", got)
		}
	})
}

// FuzzDecodeDigest ensures the digest decoder never panics.
func FuzzDecodeDigest(f *testing.F) {
	d := DigestOf(event.Alert{Cond: "c", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 1, 0)}},
	}})
	seed, err := AppendDigest(nil, d)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{'D'})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, rest, err := DecodeDigest(data)
		if err != nil {
			return
		}
		re, err := AppendDigest(nil, got)
		if err != nil {
			t.Fatalf("decoded digest %+v does not re-encode: %v", got, err)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %+v", got)
		}
	})
}
