package wire

import (
	"bytes"
	"testing"

	"condmon/internal/event"
)

// FuzzDecodeUpdate ensures the update decoder never panics and that every
// successful decode re-encodes to the same bytes it consumed.
func FuzzDecodeUpdate(f *testing.F) {
	seed, err := EncodeUpdate(event.U("x", 7, 3000))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'U'})
	f.Add([]byte{'U', 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, rest, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		re, err := EncodeUpdate(u)
		if err != nil {
			t.Fatalf("decoded update %v does not re-encode: %v", u, err)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %v", u)
		}
	})
}

// FuzzDecodeAlert ensures the alert decoder never panics and round-trips.
func FuzzDecodeAlert(f *testing.F) {
	a := event.Alert{Cond: "c2", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 7, 700), event.U("x", 5, 400)}},
	}}
	seed, err := EncodeAlert(a)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{'A'})
	f.Add([]byte{'A', 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, rest, err := DecodeAlert(data)
		if err != nil {
			return
		}
		re, err := EncodeAlert(got)
		if err != nil {
			t.Fatalf("decoded alert %v does not re-encode: %v", got, err)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %v", got)
		}
	})
}

// FuzzBatchRoundTrip asserts decode(encode(x)) == x for every batch the
// encoder accepts: the contract-checked encoder and the item-tolerant
// decoder must agree exactly on clean frames.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte("x"), int64(1), 10.0, int64(2), 20.0, int64(9), -1.5)
	f.Add([]byte(""), int64(0), 0.0, int64(0), 0.0, int64(0), 0.0)
	f.Add([]byte("reactor"), int64(5), 3000.0, int64(4), 2000.0, int64(-3), 1.0)
	f.Fuzz(func(t *testing.T, name []byte, s1 int64, v1 float64, s2 int64, v2 float64, s3 int64, v3 float64) {
		v := event.VarName(name)
		us := []event.Update{
			{Var: v, SeqNo: s1, Value: v1},
			{Var: v, SeqNo: s2, Value: v2},
			{Var: v, SeqNo: s3, Value: v3},
		}
		b, err := AppendBatch(nil, v, us)
		if err != nil {
			return // encoder rejected a contract violation: nothing to check
		}
		got, itemErrs, rest, err := DecodeBatch(b)
		if err != nil {
			t.Fatalf("clean frame failed to decode: %v", err)
		}
		if len(itemErrs) != 0 {
			t.Fatalf("clean frame produced item errors: %v", itemErrs)
		}
		if len(rest) != 0 {
			t.Fatalf("clean frame left %d trailing bytes", len(rest))
		}
		if got.Var != v || len(got.Updates) != len(us) {
			t.Fatalf("round trip = %+v, want %d updates of %q", got, len(us), v)
		}
		for i := range us {
			g, w := got.Updates[i], us[i]
			if g.Var != w.Var || g.SeqNo != w.SeqNo {
				t.Fatalf("update %d = %v, want %v", i, g, w)
			}
			if g.Value != w.Value && (g.Value == g.Value || w.Value == w.Value) {
				t.Fatalf("update %d value = %v, want %v", i, g.Value, w.Value)
			}
		}
	})
}

// FuzzDecodeBatch ensures the batch decoder never panics on arbitrary
// bytes, and that whatever it accepts re-encodes to the bytes it consumed
// (modulo items it rejected, which a clean re-encode cannot reproduce).
func FuzzDecodeBatch(f *testing.F) {
	seed, err := EncodeBatch("x", []event.Update{event.U("x", 1, 10), event.U("x", 3, 30)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'B'})
	f.Add([]byte{'B', 0, 1, 'x'})
	f.Add([]byte{'B', 0, 1, 'x', 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, itemErrs, rest, err := DecodeBatch(data)
		if err != nil {
			return
		}
		re, err := AppendBatch(nil, got.Var, got.Updates)
		if err != nil {
			t.Fatalf("decoded batch %+v does not re-encode: %v", got, err)
		}
		if len(itemErrs) == 0 && !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %+v", got)
		}
	})
}

// FuzzMuxRoundTrip asserts decode(encode(x)) == x for every mux frame the
// encoder accepts: stream id, run length, order, and every alert's fields
// must survive the trip with no item errors.
func FuzzMuxRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte("hot"), []byte("CE1"), int64(1), 10.0, int64(2), 20.0)
	f.Add(uint32(7), []byte(""), []byte(""), int64(0), 0.0, int64(0), 0.0)
	f.Add(uint32(1<<31), []byte("c"), []byte("CE2"), int64(9), -1.5, int64(3), 3000.0)
	f.Fuzz(func(t *testing.T, stream uint32, condName, source []byte, s1 int64, v1 float64, s2 int64, v2 float64) {
		alerts := []event.Alert{
			{Cond: string(condName), Source: string(source), Histories: event.HistorySet{
				"x": {Var: "x", Recent: []event.Update{event.U("x", s1, v1)}},
			}},
			{Cond: string(condName), Source: string(source), Histories: event.HistorySet{
				"x": {Var: "x", Recent: []event.Update{event.U("x", s2, v2), event.U("x", s1, v1)}},
			}},
		}
		b, err := EncodeMux(stream, alerts)
		if err != nil {
			return // encoder rejected the inputs: nothing to check
		}
		m, itemErrs, rest, err := DecodeMux(b)
		if err != nil {
			t.Fatalf("clean mux frame failed to decode: %v", err)
		}
		if len(itemErrs) != 0 {
			t.Fatalf("clean mux frame produced item errors: %v", itemErrs)
		}
		if len(rest) != 0 {
			t.Fatalf("clean mux frame left %d trailing bytes", len(rest))
		}
		if m.Stream != stream || len(m.Alerts) != len(alerts) {
			t.Fatalf("round trip = stream %d with %d alerts, want stream %d with %d", m.Stream, len(m.Alerts), stream, len(alerts))
		}
		for i := range alerts {
			w, g := alerts[i], m.Alerts[i]
			if g.Cond != w.Cond || g.Source != w.Source {
				t.Fatalf("alert %d = (%q, %q), want (%q, %q)", i, g.Cond, g.Source, w.Cond, w.Source)
			}
			if !g.Histories.Equal(w.Histories) {
				t.Fatalf("alert %d histories = %v, want %v", i, g.Histories, w.Histories)
			}
		}
	})
}

// FuzzDecodeMux ensures the mux decoder never panics on arbitrary bytes and
// that every alert it does accept is itself re-encodable — the frame never
// hands garbage downstream.
func FuzzDecodeMux(f *testing.F) {
	a := event.Alert{Cond: "c", Source: "CE1", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 2, 20), event.U("x", 1, 10)}},
	}}
	seed, err := EncodeMux(3, []event.Alert{a, a})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'M'})
	f.Add([]byte{'M', 0, 0, 0, 1, 0, 2})
	f.Add([]byte{'M', 0, 0, 0, 1, 0, 1, 0, 0, 0, 1, 'A'})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, _, _, err := DecodeMux(data)
		if err != nil {
			return
		}
		if _, err := EncodeMux(m.Stream, m.Alerts); err != nil {
			t.Fatalf("decoded mux frame %+v does not re-encode: %v", m, err)
		}
	})
}

// FuzzDecodeDigest ensures the digest decoder never panics.
func FuzzDecodeDigest(f *testing.F) {
	d := DigestOf(event.Alert{Cond: "c", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 1, 0)}},
	}})
	seed, err := AppendDigest(nil, d)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{'D'})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, rest, err := DecodeDigest(data)
		if err != nil {
			return
		}
		re, err := AppendDigest(nil, got)
		if err != nil {
			t.Fatalf("decoded digest %+v does not re-encode: %v", got, err)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch for %+v", got)
		}
	})
}
