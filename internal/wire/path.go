package wire

// The path trailer: a tiny optional annotation striped publishers append
// after a frame body ('U' or 'B', before any trace trailer) that makes a
// datagram self-identifying on a multipath front link. It carries the
// sending lane's random instance id and a per-lane datagram sequence
// number, so a receiver can (a) attribute traffic to paths and (b) drop an
// exact duplicate of a lane's most recent datagram in O(1), before any
// per-update work — the duplication-safe framing that lets duplicating
// transports (retransmitting middleboxes, redundant multipath send) feed
// the reorder layer without inflating its duplicate accounting.
//
// Correctness never depends on the trailer: update-level dedup in the
// reorder ring (and the pinned path's in-order rule) catches every
// duplicate the frame check misses. Compatibility follows the trace
// trailer's convention — TakePath returns ok=false on frames without the
// tag, and receivers that predate it reject annotated frames as trailing
// garbage, which is why striping is opt-in per publisher.

import "encoding/binary"

// tagPath marks a path trailer after a frame body.
const tagPath byte = 'P'

// PathLen is the encoded size of a path trailer in bytes.
const PathLen = 1 + 4 + 8

// Path identifies the datagram's position on its sending lane.
type Path struct {
	// ID is the sending lane's instance id, drawn at random when the lane
	// is built so concurrent publishers never share one.
	ID uint32
	// Seq numbers this lane's datagrams from 1, independent of the update
	// seqnos inside: two frames with the same (ID, Seq) are byte-identical
	// duplicates of one datagram.
	Seq uint64
}

// AppendPath appends the trailer encoding of p to dst.
func AppendPath(dst []byte, p Path) []byte {
	dst = append(dst, tagPath)
	dst = binary.BigEndian.AppendUint32(dst, p.ID)
	return binary.BigEndian.AppendUint64(dst, p.Seq)
}

// TakePath consumes an optional path trailer from the front of b (a frame
// decoder's trailing bytes, before TakeTrace). An empty b or one that does
// not start with the path tag returns ok=false with rest=b untouched — the
// frame simply was not striped. A buffer that starts the trailer but
// truncates it is corrupt and returns an error.
func TakePath(b []byte) (p Path, ok bool, rest []byte, err error) {
	if len(b) == 0 || b[0] != tagPath {
		return Path{}, false, b, nil
	}
	if len(b) < PathLen {
		return Path{}, false, nil, errf("truncated path trailer (want %d bytes, have %d)", PathLen, len(b))
	}
	p.ID = binary.BigEndian.Uint32(b[1:])
	p.Seq = binary.BigEndian.Uint64(b[5:])
	return p, true, b[PathLen:], nil
}
