package wire

import (
	"bytes"
	"testing"

	"condmon/internal/event"
)

func TestTraceRoundTrip(t *testing.T) {
	want := Trace{Flags: TraceFlagSampled, Origin: 1700000000123456789}
	b := AppendTrace(nil, want)
	if len(b) != TraceLen {
		t.Fatalf("encoded trailer is %d bytes, want %d", len(b), TraceLen)
	}
	got, ok, rest, err := TakeTrace(b)
	if err != nil || !ok {
		t.Fatalf("TakeTrace: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if len(rest) != 0 {
		t.Errorf("trailing bytes: %d", len(rest))
	}
	if !got.Sampled() {
		t.Error("Sampled() = false on a sampled trailer")
	}
}

// The opt-in contract: bytes that do not start a trailer are "no
// annotation", returned untouched — this is how frames from senders that
// do not annotate keep decoding through TakeTrace.
func TestTakeTraceAbsent(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {0xEE, 0x01}, []byte("U...")} {
		tr, ok, rest, err := TakeTrace(b)
		if err != nil {
			t.Errorf("TakeTrace(%v): unexpected error %v", b, err)
		}
		if ok || tr != (Trace{}) {
			t.Errorf("TakeTrace(%v): ok=%v trace=%+v, want absent", b, ok, tr)
		}
		if !bytes.Equal(rest, b) {
			t.Errorf("TakeTrace(%v): rest=%v, want input untouched", b, rest)
		}
	}
}

// A buffer that starts a trailer but truncates it is corrupt, not absent.
func TestTakeTraceTruncated(t *testing.T) {
	full := AppendTrace(nil, Trace{Flags: TraceFlagSampled, Origin: 42})
	for cut := 1; cut < TraceLen; cut++ {
		if _, ok, _, err := TakeTrace(full[:cut]); err == nil || ok {
			t.Errorf("TakeTrace(%d-byte prefix): ok=%v err=%v, want error", cut, ok, err)
		}
	}
}

// Mixed old/new decoding of annotated frames. Every frame decoder returns
// its trailing bytes, so:
//
//   - an annotated frame decodes identically through the old decoder, which
//     surfaces the 10 trailer bytes as rest — an old receiver that requires
//     len(rest) == 0 rejects it (annotation is opt-in per sender for
//     exactly this reason), while a new receiver hands rest to TakeTrace;
//   - an un-annotated frame flows through TakeTrace as "no annotation".
func TestAnnotatedFrameDecoding(t *testing.T) {
	origin := int64(1234567890)
	ann := Trace{Flags: TraceFlagSampled, Origin: origin}

	t.Run("update", func(t *testing.T) {
		u := event.U("x", 7, 2500)
		plain, err := EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		framed := AppendTrace(plain, ann)
		got, rest, err := DecodeUpdate(framed)
		if err != nil {
			t.Fatalf("DecodeUpdate(annotated): %v", err)
		}
		if got != u {
			t.Errorf("decoded %v, want %v", got, u)
		}
		if len(rest) != TraceLen { // what an old strict receiver would reject
			t.Fatalf("rest is %d bytes, want the %d-byte trailer", len(rest), TraceLen)
		}
		tr, ok, rest, err := TakeTrace(rest)
		if err != nil || !ok || tr.Origin != origin || len(rest) != 0 {
			t.Errorf("TakeTrace: trace=%+v ok=%v rest=%d err=%v", tr, ok, len(rest), err)
		}
	})

	t.Run("batch", func(t *testing.T) {
		us := []event.Update{event.U("x", 1, 10), event.U("x", 2, 20)}
		plain, err := EncodeBatch("x", us)
		if err != nil {
			t.Fatal(err)
		}
		framed := AppendTrace(plain, ann)
		batch, itemErrs, rest, err := DecodeBatch(framed)
		if err != nil || len(itemErrs) != 0 {
			t.Fatalf("DecodeBatch(annotated): %v %v", err, itemErrs)
		}
		if len(batch.Updates) != 2 {
			t.Errorf("decoded %d updates, want 2", len(batch.Updates))
		}
		tr, ok, rest, err := TakeTrace(rest)
		if err != nil || !ok || tr.Origin != origin || len(rest) != 0 {
			t.Errorf("TakeTrace: trace=%+v ok=%v rest=%d err=%v", tr, ok, len(rest), err)
		}
	})

	t.Run("alert", func(t *testing.T) {
		a := sampleAlert()
		plain, err := EncodeAlert(a)
		if err != nil {
			t.Fatal(err)
		}
		framed := AppendTrace(plain, ann)
		_, rest, err := DecodeAlert(framed)
		if err != nil {
			t.Fatalf("DecodeAlert(annotated): %v", err)
		}
		tr, ok, rest, err := TakeTrace(rest)
		if err != nil || !ok || tr.Origin != origin || len(rest) != 0 {
			t.Errorf("TakeTrace: trace=%+v ok=%v rest=%d err=%v", tr, ok, len(rest), err)
		}
	})

	t.Run("mux", func(t *testing.T) {
		plain, err := EncodeMux(3, []event.Alert{sampleAlert()})
		if err != nil {
			t.Fatal(err)
		}
		framed := AppendTrace(plain, Trace{Flags: TraceFlagSampled}) // mux frames carry no origin
		m, itemErrs, rest, err := DecodeMux(framed)
		if err != nil || len(itemErrs) != 0 {
			t.Fatalf("DecodeMux(annotated): %v %v", err, itemErrs)
		}
		if m.Stream != 3 || len(m.Alerts) != 1 {
			t.Errorf("decoded stream=%d alerts=%d, want 3/1", m.Stream, len(m.Alerts))
		}
		tr, ok, rest, err := TakeTrace(rest)
		if err != nil || !ok || !tr.Sampled() || tr.Origin != 0 || len(rest) != 0 {
			t.Errorf("TakeTrace: trace=%+v ok=%v rest=%d err=%v", tr, ok, len(rest), err)
		}
	})

	t.Run("un-annotated", func(t *testing.T) {
		plain, err := EncodeUpdate(event.U("x", 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		_, rest, err := DecodeUpdate(plain)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, rest, err := TakeTrace(rest); err != nil || ok || len(rest) != 0 {
			t.Errorf("un-annotated frame through TakeTrace: ok=%v rest=%d err=%v", ok, len(rest), err)
		}
	})
}
