package wire

import (
	"testing"

	"condmon/internal/event"
)

// sameErrs compares two ItemError lists by index and message.
func sameErrs(a, b []ItemError) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Err.Error() != b[i].Err.Error() {
			return false
		}
	}
	return true
}

// sameBatch compares decoded batches field by field (NaN-tolerant values).
func sameBatch(a, b Batch) bool {
	if a.Var != b.Var || len(a.Updates) != len(b.Updates) {
		return false
	}
	for i := range a.Updates {
		x, y := a.Updates[i], b.Updates[i]
		if x.Var != y.Var || x.SeqNo != y.SeqNo {
			return false
		}
		if x.Value != y.Value && (x.Value == x.Value || y.Value == y.Value) {
			return false
		}
	}
	return true
}

// FuzzDecodeBatchInto is the differential gate for the pooled decoder: on
// every input, DecodeBatchInto (with and without an interner, with and
// without scratch) must agree with DecodeBatch exactly — same batch, same
// item errors, same trailing bytes, same error disposition.
func FuzzDecodeBatchInto(f *testing.F) {
	seed, err := EncodeBatch("x", []event.Update{event.U("x", 1, 10), event.U("x", 3, 30)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'B'})
	f.Add([]byte{'B', 0, 1, 'x'})
	f.Add([]byte{'B', 0, 1, 'x', 0, 2})
	interned := map[string]event.VarName{}
	intern := func(b []byte) event.VarName {
		if v, ok := interned[string(b)]; ok {
			return v
		}
		v := event.VarName(b)
		interned[string(b)] = v
		return v
	}
	scratch := make([]event.Update, 0, 64)
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErrs, wantRest, wantErr := DecodeBatch(data)
		for _, leg := range []struct {
			name    string
			scratch []event.Update
			intern  Intern
		}{
			{"nil/nil", nil, nil},
			{"scratch/nil", scratch, nil},
			{"scratch/intern", scratch, intern},
		} {
			got, gotErrs, gotRest, gotErr := DecodeBatchInto(data, leg.scratch, leg.intern)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: err = %v, DecodeBatch err = %v", leg.name, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !sameBatch(got, want) {
				t.Fatalf("%s: batch = %+v, DecodeBatch = %+v", leg.name, got, want)
			}
			if !sameErrs(gotErrs, wantErrs) {
				t.Fatalf("%s: itemErrs = %v, DecodeBatch = %v", leg.name, gotErrs, wantErrs)
			}
			if string(gotRest) != string(wantRest) {
				t.Fatalf("%s: rest = %q, DecodeBatch = %q", leg.name, gotRest, wantRest)
			}
		}
	})
}

// TestDecodeBatchIntoReusesScratch pins the memory contract: the decoded
// updates live in the caller's scratch (no fresh slice while capacity
// lasts), which is exactly why a second decode into the same scratch
// invalidates the first result — callers must consume or copy per call.
func TestDecodeBatchIntoReusesScratch(t *testing.T) {
	b1, err := EncodeBatch("x", []event.Update{event.U("x", 1, 10), event.U("x", 2, 20)})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeBatch("x", []event.Update{event.U("x", 3, 33), event.U("x", 4, 44)})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]event.Update, 0, 8)
	first, _, _, err := DecodeBatchInto(b1, scratch, nil)
	if err != nil {
		t.Fatalf("DecodeBatchInto: %v", err)
	}
	if &first.Updates[0] != &scratch[:1][0] {
		t.Fatalf("decoded updates do not alias the caller's scratch")
	}
	copied := append([]event.Update(nil), first.Updates...)
	second, _, _, err := DecodeBatchInto(b2, scratch, nil)
	if err != nil {
		t.Fatalf("DecodeBatchInto: %v", err)
	}
	// The copy taken before reuse is intact; the aliased first result now
	// shows the second frame's records.
	if copied[0].SeqNo != 1 || copied[1].SeqNo != 2 {
		t.Fatalf("copied first result corrupted: %v", copied)
	}
	if first.Updates[0].SeqNo != 3 {
		t.Fatalf("aliased first result = %v, want it overwritten by the second decode", first.Updates)
	}
	if second.Updates[0].SeqNo != 3 || second.Updates[1].SeqNo != 4 {
		t.Fatalf("second decode = %v", second.Updates)
	}
}

// TestDecodeBatchIntoAllocs pins the pooled hot path at zero allocations:
// warm scratch, warm interner, clean frames.
func TestDecodeBatchIntoAllocs(t *testing.T) {
	us := make([]event.Update, 256)
	for i := range us {
		us[i] = event.U("x", int64(i+1), float64(i))
	}
	frame, err := EncodeBatch("x", us)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]event.VarName{}
	intern := func(b []byte) event.VarName {
		if v, ok := names[string(b)]; ok {
			return v
		}
		v := event.VarName(b)
		names[string(b)] = v
		return v
	}
	scratch := make([]event.Update, 0, len(us))
	if _, _, _, err := DecodeBatchInto(frame, scratch, intern); err != nil {
		t.Fatal(err) // warm the interner before pinning
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, _, err := DecodeBatchInto(frame, scratch, intern); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeBatchInto allocates %.1f per frame, want 0", avg)
	}
	single, err := EncodeUpdate(event.U("x", 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeUpdateInto(single, intern); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeUpdateInto allocates %.1f per datagram, want 0", avg)
	}
}

// TestDecodeUpdateIntoMatchesDecodeUpdate spot-checks the interned
// single-update decoder against the allocating one, including error cases.
func TestDecodeUpdateIntoMatchesDecodeUpdate(t *testing.T) {
	good, err := EncodeUpdate(event.U("temp", 9, 321.5))
	if err != nil {
		t.Fatal(err)
	}
	intern := func(b []byte) event.VarName { return event.VarName(string(b)) }
	for _, data := range [][]byte{good, {}, {'U'}, {'U', 0, 1, 'x'}, {'U', 0, 1, 'x', 0, 0, 0, 0, 0, 0, 0, 0}} {
		wantU, wantRest, wantErr := DecodeUpdate(data)
		gotU, gotRest, gotErr := DecodeUpdateInto(data, intern)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("data %v: err = %v, DecodeUpdate err = %v", data, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if gotU != wantU || string(gotRest) != string(wantRest) {
			t.Fatalf("data %v: got (%v, %q), want (%v, %q)", data, gotU, gotRest, wantU, wantRest)
		}
	}
}
