// Package wire encodes updates and alerts for transmission over real
// links (internal/transport) and trace files (internal/workload). The
// format is a compact, explicit big-endian binary layout with no reflection
// and no versioned schema — a deliberate match for the paper's
// low-capability Data Monitor devices.
//
// The package also implements the optimization noted in Section 2: filters
// that only compare histories for equality (duplicate detection) do not
// need full histories on the wire — a Digest carrying the per-variable
// latest sequence numbers plus a checksum of the full histories suffices.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"condmon/internal/event"
)

// Message type tags.
const (
	tagUpdate   byte = 'U'
	tagAlert    byte = 'A'
	tagDigest   byte = 'D'
	tagBatch    byte = 'B'
	tagMux      byte = 'M'
	tagEvidence byte = 'G'
)

// maxStringLen bounds encoded names; longer inputs are rejected rather
// than truncated.
const maxStringLen = math.MaxUint16

// DecodeError reports malformed wire data.
type DecodeError struct {
	Msg string
}

// Error implements error.
func (e *DecodeError) Error() string { return "wire: " + e.Msg }

func errf(format string, args ...any) error {
	return &DecodeError{Msg: fmt.Sprintf(format, args...)}
}

// AppendUpdate appends the encoding of u to dst and returns the extended
// slice.
func AppendUpdate(dst []byte, u event.Update) ([]byte, error) {
	if len(u.Var) > maxStringLen {
		return nil, fmt.Errorf("wire: variable name of %d bytes exceeds limit", len(u.Var))
	}
	dst = append(dst, tagUpdate)
	dst = appendString(dst, string(u.Var))
	dst = binary.BigEndian.AppendUint64(dst, uint64(u.SeqNo))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(u.Value))
	return dst, nil
}

// EncodeUpdate encodes a single update.
func EncodeUpdate(u event.Update) ([]byte, error) {
	return AppendUpdate(nil, u)
}

// DecodeUpdate decodes an update, returning any trailing bytes.
func DecodeUpdate(b []byte) (event.Update, []byte, error) {
	if len(b) == 0 || b[0] != tagUpdate {
		return event.Update{}, nil, errf("not an update message")
	}
	b = b[1:]
	name, b, err := readString(b)
	if err != nil {
		return event.Update{}, nil, err
	}
	if len(b) < 16 {
		return event.Update{}, nil, errf("truncated update body")
	}
	u := event.Update{
		Var:   event.VarName(name),
		SeqNo: int64(binary.BigEndian.Uint64(b)),
		Value: math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
	}
	if u.SeqNo < 0 {
		return event.Update{}, nil, errf("negative sequence number %d", u.SeqNo)
	}
	return u, b[16:], nil
}

// Batch is a batched update frame: a run of in-order updates for a single
// variable sharing one header. It is the wire realization of the runtime's
// EmitBatch — one tag and one variable name amortized over the whole run,
// with each update contributing only its 16-byte (seqno, value) record.
type Batch struct {
	Var event.VarName
	// Updates carry Var and strictly increasing sequence numbers, oldest
	// first — the order a front link delivers them in.
	Updates []event.Update
}

// ItemError reports one undecodable item inside an otherwise well-formed
// multi-item frame ('B' batches, 'M' mux runs). Because batch items are
// fixed-size records and mux items carry length prefixes, a bad item never
// desynchronizes its frame: the decoders skip it and keep decoding.
type ItemError struct {
	// Index is the item's position in the encoded frame.
	Index int
	Err   error
}

// Error implements error.
func (e ItemError) Error() string { return fmt.Sprintf("wire: frame item %d: %v", e.Index, e.Err) }

// AppendBatch appends the encoding of a batch frame for variable v to dst.
// It enforces the frame contract — every update is for v with a
// non-negative, strictly increasing sequence number — so that any frame it
// produces decodes with no item errors.
func AppendBatch(dst []byte, v event.VarName, updates []event.Update) ([]byte, error) {
	if len(v) > maxStringLen {
		return nil, fmt.Errorf("wire: variable name of %d bytes exceeds limit", len(v))
	}
	if len(updates) > maxStringLen {
		return nil, fmt.Errorf("wire: batch of %d updates exceeds limit", len(updates))
	}
	last := int64(-1)
	for i, u := range updates {
		if u.Var != v {
			return nil, fmt.Errorf("wire: batch for %q contains update %d for %q", v, i, u.Var)
		}
		if u.SeqNo < 0 {
			return nil, fmt.Errorf("wire: batch update %d has negative sequence number %d", i, u.SeqNo)
		}
		if u.SeqNo <= last {
			return nil, fmt.Errorf("wire: batch update %d seqno %d does not exceed predecessor %d", i, u.SeqNo, last)
		}
		last = u.SeqNo
	}
	dst = append(dst, tagBatch)
	dst = appendString(dst, string(v))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(updates)))
	for _, u := range updates {
		dst = binary.BigEndian.AppendUint64(dst, uint64(u.SeqNo))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(u.Value))
	}
	return dst, nil
}

// EncodeBatch encodes a batch frame.
func EncodeBatch(v event.VarName, updates []event.Update) ([]byte, error) {
	return AppendBatch(nil, v, updates)
}

// DecodeBatch decodes a batch frame, returning trailing bytes. Frame-level
// corruption (bad tag, truncated header or body) fails the whole frame;
// per-item violations of the batch contract — a negative or non-increasing
// sequence number — are reported in itemErrs while the remaining items
// still decode, so one corrupt record never costs the rest of the frame.
func DecodeBatch(b []byte) (batch Batch, itemErrs []ItemError, rest []byte, err error) {
	if len(b) == 0 || b[0] != tagBatch {
		return Batch{}, nil, nil, errf("not a batch message")
	}
	b = b[1:]
	name, b, err := readString(b)
	if err != nil {
		return Batch{}, nil, nil, err
	}
	if len(b) < 2 {
		return Batch{}, nil, nil, errf("truncated batch count")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < 16*n {
		return Batch{}, nil, nil, errf("truncated batch body (want %d items, have %d bytes)", n, len(b))
	}
	batch = Batch{Var: event.VarName(name)}
	if n > 0 {
		batch.Updates = make([]event.Update, 0, n)
	}
	last := int64(-1)
	for i := 0; i < n; i++ {
		seqNo := int64(binary.BigEndian.Uint64(b))
		value := math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
		b = b[16:]
		switch {
		case seqNo < 0:
			itemErrs = append(itemErrs, ItemError{Index: i, Err: errf("negative sequence number %d", seqNo)})
			continue
		case seqNo <= last:
			itemErrs = append(itemErrs, ItemError{Index: i, Err: errf("sequence number %d does not exceed predecessor %d", seqNo, last)})
			continue
		}
		last = seqNo
		batch.Updates = append(batch.Updates, event.Update{Var: batch.Var, SeqNo: seqNo, Value: value})
	}
	return batch, itemErrs, b, nil
}

// Intern resolves an encoded variable name to its VarName. The receive hot
// path passes an interning function so that decoding a datagram for a
// variable it has seen before allocates nothing: the map lookup
// m[string(name)] compiles without a conversion allocation, and the
// returned VarName shares the map key's backing. The name slice aliases
// the input buffer and is only valid during the call — an implementation
// that retains it must copy.
type Intern func(name []byte) event.VarName

// DecodeBatchInto is DecodeBatch with caller-owned memory: decoded updates
// are appended to scratch[:0] (whose backing array the returned
// Batch.Updates aliases — reuse invalidates earlier results), and the
// variable name is resolved through intern instead of allocating a fresh
// string. A nil intern falls back to allocating; a nil scratch grows one.
// Frame acceptance, item tolerance, and results are otherwise byte-for-byte
// identical to DecodeBatch, which FuzzDecodeBatchInto pins.
func DecodeBatchInto(b []byte, scratch []event.Update, intern Intern) (batch Batch, itemErrs []ItemError, rest []byte, err error) {
	if len(b) == 0 || b[0] != tagBatch {
		return Batch{}, nil, nil, errf("not a batch message")
	}
	b = b[1:]
	name, b, err := readStringBytes(b)
	if err != nil {
		return Batch{}, nil, nil, err
	}
	if len(b) < 2 {
		return Batch{}, nil, nil, errf("truncated batch count")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < 16*n {
		return Batch{}, nil, nil, errf("truncated batch body (want %d items, have %d bytes)", n, len(b))
	}
	if intern != nil {
		batch = Batch{Var: intern(name)}
	} else {
		batch = Batch{Var: event.VarName(name)}
	}
	if n > 0 {
		batch.Updates = scratch[:0]
	}
	last := int64(-1)
	for i := 0; i < n; i++ {
		seqNo := int64(binary.BigEndian.Uint64(b))
		value := math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
		b = b[16:]
		switch {
		case seqNo < 0:
			itemErrs = append(itemErrs, ItemError{Index: i, Err: errf("negative sequence number %d", seqNo)})
			continue
		case seqNo <= last:
			itemErrs = append(itemErrs, ItemError{Index: i, Err: errf("sequence number %d does not exceed predecessor %d", seqNo, last)})
			continue
		}
		last = seqNo
		batch.Updates = append(batch.Updates, event.Update{Var: batch.Var, SeqNo: seqNo, Value: value})
	}
	return batch, itemErrs, b, nil
}

// DecodeUpdateInto is DecodeUpdate with the variable name resolved through
// intern instead of allocating a fresh string — the single-datagram analog
// of DecodeBatchInto. A nil intern falls back to allocating.
func DecodeUpdateInto(b []byte, intern Intern) (event.Update, []byte, error) {
	if intern == nil {
		return DecodeUpdate(b)
	}
	if len(b) == 0 || b[0] != tagUpdate {
		return event.Update{}, nil, errf("not an update message")
	}
	b = b[1:]
	name, b, err := readStringBytes(b)
	if err != nil {
		return event.Update{}, nil, err
	}
	if len(b) < 16 {
		return event.Update{}, nil, errf("truncated update body")
	}
	u := event.Update{
		Var:   intern(name),
		SeqNo: int64(binary.BigEndian.Uint64(b)),
		Value: math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
	}
	if u.SeqNo < 0 {
		return event.Update{}, nil, errf("negative sequence number %d", u.SeqNo)
	}
	return u, b[16:], nil
}

// Mux is a multiplexed back-link frame: one stream's coalesced run of
// alerts, in send order. Streams let many CE replicas share a single TCP
// connection — the frame tags each run with the 32-bit stream id the sender
// chose (a replica index, a shard index), and the receiver demultiplexes by
// it. Each item inside the frame is an independently length-prefixed alert
// encoding, so a corrupt item is skipped by its prefix and never
// desynchronizes the rest of the frame — the same tolerance contract as the
// 'B' batch frames.
type Mux struct {
	Stream uint32
	Alerts []event.Alert
}

// muxHeaderLen is the fixed frame overhead of a mux frame: tag byte,
// 32-bit stream id, 16-bit item count.
const muxHeaderLen = 1 + 4 + 2

// muxItemOverhead is the per-item overhead inside a mux frame: the 32-bit
// length prefix preceding each encoded alert.
const muxItemOverhead = 4

// MuxOverhead reports the encoded size of a mux frame carrying items whose
// alert encodings total bodyBytes across n items. Senders use it to pack
// coalesced runs under a frame-size limit without encoding twice.
func MuxOverhead(n, bodyBytes int) int {
	return muxHeaderLen + n*muxItemOverhead + bodyBytes
}

// AppendMux appends the encoding of one stream's coalesced alert run to
// dst. The run order is preserved on the wire; an empty run encodes to a
// valid (if pointless) frame.
func AppendMux(dst []byte, stream uint32, alerts []event.Alert) ([]byte, error) {
	if len(alerts) > maxStringLen {
		return nil, fmt.Errorf("wire: mux run of %d alerts exceeds limit", len(alerts))
	}
	dst = append(dst, tagMux)
	dst = binary.BigEndian.AppendUint32(dst, stream)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(alerts)))
	for i, a := range alerts {
		at := len(dst)
		dst = binary.BigEndian.AppendUint32(dst, 0) // patched after encoding
		var err error
		dst, err = AppendAlert(dst, a)
		if err != nil {
			return nil, fmt.Errorf("wire: mux item %d: %w", i, err)
		}
		binary.BigEndian.PutUint32(dst[at:], uint32(len(dst)-at-muxItemOverhead))
	}
	return dst, nil
}

// EncodeMux encodes a mux frame.
func EncodeMux(stream uint32, alerts []event.Alert) ([]byte, error) {
	return AppendMux(nil, stream, alerts)
}

// DecodeMux decodes a mux frame, returning trailing bytes. Frame-level
// corruption (bad tag, truncated header, an item length running past the
// buffer) fails the whole frame; an item whose body does not decode as an
// alert is reported in itemErrs and skipped via its length prefix, so one
// corrupt alert never costs the rest of the run.
func DecodeMux(b []byte) (m Mux, itemErrs []ItemError, rest []byte, err error) {
	if len(b) == 0 || b[0] != tagMux {
		return Mux{}, nil, nil, errf("not a mux message")
	}
	b = b[1:]
	if len(b) < 6 {
		return Mux{}, nil, nil, errf("truncated mux header")
	}
	m.Stream = binary.BigEndian.Uint32(b)
	n := int(binary.BigEndian.Uint16(b[4:]))
	b = b[6:]
	if n > 0 {
		m.Alerts = make([]event.Alert, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(b) < muxItemOverhead {
			return Mux{}, nil, nil, errf("truncated mux item %d length", i)
		}
		ln := int(binary.BigEndian.Uint32(b))
		b = b[muxItemOverhead:]
		if len(b) < ln {
			return Mux{}, nil, nil, errf("truncated mux item %d body (want %d bytes, have %d)", i, ln, len(b))
		}
		item := b[:ln]
		b = b[ln:]
		a, itemRest, err := DecodeAlert(item)
		if err != nil {
			itemErrs = append(itemErrs, ItemError{Index: i, Err: err})
			continue
		}
		if len(itemRest) != 0 {
			itemErrs = append(itemErrs, ItemError{Index: i, Err: errf("mux item has %d trailing bytes", len(itemRest))})
			continue
		}
		m.Alerts = append(m.Alerts, a)
	}
	return m, itemErrs, b, nil
}

// AppendAlert appends the encoding of a full alert — condition, source and
// complete histories — to dst.
func AppendAlert(dst []byte, a event.Alert) ([]byte, error) {
	if len(a.Cond) > maxStringLen || len(a.Source) > maxStringLen {
		return nil, fmt.Errorf("wire: alert name fields exceed length limit")
	}
	vars := a.Histories.Vars()
	if len(vars) > maxStringLen {
		return nil, fmt.Errorf("wire: %d history variables exceed limit", len(vars))
	}
	dst = append(dst, tagAlert)
	dst = appendString(dst, a.Cond)
	dst = appendString(dst, a.Source)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(vars)))
	for _, v := range vars {
		h := a.Histories[v]
		if len(h.Recent) > maxStringLen {
			return nil, fmt.Errorf("wire: history for %q exceeds window limit", v)
		}
		dst = appendString(dst, string(v))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(h.Recent)))
		for _, u := range h.Recent {
			dst = binary.BigEndian.AppendUint64(dst, uint64(u.SeqNo))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(u.Value))
		}
	}
	return dst, nil
}

// EncodeAlert encodes a full alert.
func EncodeAlert(a event.Alert) ([]byte, error) {
	return AppendAlert(nil, a)
}

// DecodeAlert decodes a full alert, returning trailing bytes.
func DecodeAlert(b []byte) (event.Alert, []byte, error) {
	if len(b) == 0 || b[0] != tagAlert {
		return event.Alert{}, nil, errf("not an alert message")
	}
	b = b[1:]
	condName, b, err := readString(b)
	if err != nil {
		return event.Alert{}, nil, err
	}
	source, b, err := readString(b)
	if err != nil {
		return event.Alert{}, nil, err
	}
	if len(b) < 2 {
		return event.Alert{}, nil, errf("truncated alert variable count")
	}
	nvars := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	a := event.Alert{Cond: condName, Source: source, Histories: make(event.HistorySet, nvars)}
	for i := 0; i < nvars; i++ {
		name, rest, err := readString(b)
		if err != nil {
			return event.Alert{}, nil, err
		}
		b = rest
		if len(b) < 2 {
			return event.Alert{}, nil, errf("truncated history length for %q", name)
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < 16*n {
			return event.Alert{}, nil, errf("truncated history body for %q", name)
		}
		h := event.History{Var: event.VarName(name), Recent: make([]event.Update, n)}
		for j := 0; j < n; j++ {
			h.Recent[j] = event.Update{
				Var:   event.VarName(name),
				SeqNo: int64(binary.BigEndian.Uint64(b)),
				Value: math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
			}
			b = b[16:]
		}
		if _, dup := a.Histories[h.Var]; dup {
			return event.Alert{}, nil, errf("duplicate history for variable %q", name)
		}
		a.Histories[h.Var] = h
	}
	return a, b, nil
}

// Digest is the compact alert representation of Section 2: the fields an
// equality-only filter needs (per-variable latest sequence numbers drive
// AD-2/AD-5; the checksum stands in for full-history equality in
// AD-1-style duplicate removal).
type Digest struct {
	Cond   string
	Source string
	// Latest maps each variable to a.seqno.v.
	Latest map[event.VarName]int64
	// Sum is an FNV-1a checksum over the condition name and the full
	// history sequence numbers.
	Sum uint64
}

// DigestOf summarizes an alert.
func DigestOf(a event.Alert) Digest {
	d := Digest{
		Cond:   a.Cond,
		Source: a.Source,
		Latest: make(map[event.VarName]int64, len(a.Histories)),
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(a.Cond))
	for _, v := range a.Histories.Vars() {
		hist := a.Histories[v]
		d.Latest[v] = hist.Latest().SeqNo
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(v))
		var buf [8]byte
		for _, u := range hist.Recent {
			binary.BigEndian.PutUint64(buf[:], uint64(u.SeqNo))
			_, _ = h.Write(buf[:])
		}
	}
	d.Sum = h.Sum64()
	return d
}

// Key returns a duplicate-detection key: equal for alerts with equal
// condition and histories (up to checksum collision).
func (d Digest) Key() string {
	return fmt.Sprintf("%s#%016x", d.Cond, d.Sum)
}

// AppendDigest appends the encoding of d to dst.
func AppendDigest(dst []byte, d Digest) ([]byte, error) {
	if len(d.Cond) > maxStringLen || len(d.Source) > maxStringLen || len(d.Latest) > maxStringLen {
		return nil, fmt.Errorf("wire: digest fields exceed length limit")
	}
	dst = append(dst, tagDigest)
	dst = appendString(dst, d.Cond)
	dst = appendString(dst, d.Source)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Latest)))
	vars := make([]event.VarName, 0, len(d.Latest))
	for v := range d.Latest {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		dst = appendString(dst, string(v))
		dst = binary.BigEndian.AppendUint64(dst, uint64(d.Latest[v]))
	}
	dst = binary.BigEndian.AppendUint64(dst, d.Sum)
	return dst, nil
}

// DecodeDigest decodes a digest, returning trailing bytes.
func DecodeDigest(b []byte) (Digest, []byte, error) {
	if len(b) == 0 || b[0] != tagDigest {
		return Digest{}, nil, errf("not a digest message")
	}
	b = b[1:]
	condName, b, err := readString(b)
	if err != nil {
		return Digest{}, nil, err
	}
	source, b, err := readString(b)
	if err != nil {
		return Digest{}, nil, err
	}
	if len(b) < 2 {
		return Digest{}, nil, errf("truncated digest variable count")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	d := Digest{Cond: condName, Source: source, Latest: make(map[event.VarName]int64, n)}
	for i := 0; i < n; i++ {
		name, rest, err := readString(b)
		if err != nil {
			return Digest{}, nil, err
		}
		b = rest
		if len(b) < 8 {
			return Digest{}, nil, errf("truncated digest entry for %q", name)
		}
		d.Latest[event.VarName(name)] = int64(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) < 8 {
		return Digest{}, nil, errf("truncated digest checksum")
	}
	d.Sum = binary.BigEndian.Uint64(b)
	return d, b[8:], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	s, rest, err := readStringBytes(b)
	if err != nil {
		return "", nil, err
	}
	return string(s), rest, nil
}

// readStringBytes is readString without the string allocation: the returned
// slice aliases b and is only valid while b is.
func readStringBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, errf("truncated string length")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, nil, errf("truncated string body (want %d bytes, have %d)", n, len(b))
	}
	return b[:n], b[n:], nil
}
