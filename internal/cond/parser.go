package cond

import (
	"fmt"

	"condmon/internal/event"
)

// The DSL grammar, lowest to highest precedence:
//
//	expr    := or
//	or      := and   ('||' and)*
//	and     := unary ('&&' unary)*
//	unary   := '!' unary | cmp
//	cmp     := sum (('<'|'>'|'<='|'>='|'=='|'!=') sum)?
//	sum     := prod (('+'|'-') prod)*
//	prod    := neg  (('*'|'/') neg)*
//	neg     := '-' neg | primary
//	primary := number | varref | call | '(' expr ')'
//	varref  := ident '[' ['-'] integer ']'          // x[0], x[-1]: value of var at offset
//	call    := ident '(' expr (',' expr)* ')'       // abs, min, max
//	        |  'seqno' '(' ident ',' offset ')'     // sequence number at offset
//	        |  'consecutive' '(' ident ')'          // window of var has no gap
//
// Variable references use the value snapshot; conditions over sequence
// numbers use seqno(v, off). consecutive(v) is the conservative-triggering
// guard: true iff v's history window (to the condition's degree in v) has
// consecutive sequence numbers.

// exprType is the DSL's two-valued type system.
type exprType int

const (
	typeNum exprType = iota + 1
	typeBool
)

func (t exprType) String() string {
	if t == typeNum {
		return "number"
	}
	return "boolean"
}

// expr is a typed DSL syntax tree node.
type expr interface {
	typ() exprType
}

type (
	numLit struct{ val float64 }

	// varRef is v[offset].value with offset ≤ 0.
	varRef struct {
		varName event.VarName
		offset  int
	}

	// seqnoRef is seqno(v, offset).
	seqnoRef struct {
		varName event.VarName
		offset  int
	}

	// consecutiveRef is consecutive(v).
	consecutiveRef struct {
		varName event.VarName
	}

	// call is abs/min/max over numeric arguments.
	call struct {
		fn   string
		args []expr
	}

	// binary covers arithmetic (+ - * /), comparison, and boolean (&& ||).
	binary struct {
		op   tokenKind
		l, r expr
	}

	// unary covers numeric negation and boolean not.
	unary struct {
		op tokenKind
		x  expr
	}
)

func (numLit) typ() exprType         { return typeNum }
func (varRef) typ() exprType         { return typeNum }
func (seqnoRef) typ() exprType       { return typeNum }
func (consecutiveRef) typ() exprType { return typeBool }
func (call) typ() exprType           { return typeNum }

func (b binary) typ() exprType {
	switch b.op {
	case tokPlus, tokMinus, tokStar, tokSlash:
		return typeNum
	default:
		return typeBool
	}
}

func (u unary) typ() exprType {
	if u.op == tokMinus {
		return typeNum
	}
	return typeBool
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected %v, found %v", k, t.kind)}
	}
	return p.next(), nil
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf(format, args...)}
}

func parseExpr(src string) (expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected %v after expression", t.kind)
	}
	if e.typ() != typeBool {
		return nil, &SyntaxError{Pos: 0, Msg: "condition must be a boolean expression, found a numeric one"}
	}
	return e, nil
}

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		op := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if l.typ() != typeBool || r.typ() != typeBool {
			return nil, p.errf(op, "'||' requires boolean operands")
		}
		l = binary{op: tokOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseUnaryBool()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		op := p.next()
		r, err := p.parseUnaryBool()
		if err != nil {
			return nil, err
		}
		if l.typ() != typeBool || r.typ() != typeBool {
			return nil, p.errf(op, "'&&' requires boolean operands")
		}
		l = binary{op: tokAnd, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnaryBool() (expr, error) {
	if p.peek().kind == tokNot {
		op := p.next()
		x, err := p.parseUnaryBool()
		if err != nil {
			return nil, err
		}
		if x.typ() != typeBool {
			return nil, p.errf(op, "'!' requires a boolean operand")
		}
		return unary{op: tokNot, x: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	switch k := p.peek().kind; k {
	case tokLT, tokGT, tokLE, tokGE, tokEQ, tokNE:
		op := p.next()
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if l.typ() != typeNum || r.typ() != typeNum {
			return nil, p.errf(op, "comparison requires numeric operands")
		}
		return binary{op: k, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseSum() (expr, error) {
	l, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokPlus && k != tokMinus {
			return l, nil
		}
		op := p.next()
		r, err := p.parseProd()
		if err != nil {
			return nil, err
		}
		if l.typ() != typeNum || r.typ() != typeNum {
			return nil, p.errf(op, "%v requires numeric operands", op.kind)
		}
		l = binary{op: k, l: l, r: r}
	}
}

func (p *parser) parseProd() (expr, error) {
	l, err := p.parseNeg()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokStar && k != tokSlash {
			return l, nil
		}
		op := p.next()
		r, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		if l.typ() != typeNum || r.typ() != typeNum {
			return nil, p.errf(op, "%v requires numeric operands", op.kind)
		}
		l = binary{op: k, l: l, r: r}
	}
}

func (p *parser) parseNeg() (expr, error) {
	if p.peek().kind == tokMinus {
		op := p.next()
		x, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		if x.typ() != typeNum {
			return nil, p.errf(op, "unary '-' requires a numeric operand")
		}
		return unary{op: tokMinus, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return numLit{val: t.num}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		return p.parseIdent()
	default:
		return nil, p.errf(t, "expected a number, variable reference, function call or '(', found %v", t.kind)
	}
}

func (p *parser) parseIdent() (expr, error) {
	name := p.next()
	switch p.peek().kind {
	case tokLBracket:
		p.next()
		off, err := p.parseOffset()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return varRef{varName: event.VarName(name.text), offset: off}, nil
	case tokLParen:
		return p.parseCall(name)
	default:
		return nil, p.errf(name, "bare identifier %q: variables are referenced as %s[0], %s[-1], …",
			name.text, name.text, name.text)
	}
}

// parseOffset parses the history index inside brackets or a seqno() call:
// zero or a negative integer.
func (p *parser) parseOffset() (int, error) {
	neg := false
	if p.peek().kind == tokMinus {
		p.next()
		neg = true
	}
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n := int(t.num)
	if float64(n) != t.num {
		return 0, p.errf(t, "history index must be an integer, found %s", t.text)
	}
	if neg {
		n = -n
	}
	if n > 0 {
		return 0, p.errf(t, "history index must be ≤ 0 (0 is the most recent update)")
	}
	return n, nil
}

func (p *parser) parseCall(name token) (expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	switch name.text {
	case "consecutive":
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return consecutiveRef{varName: event.VarName(v.text)}, nil
	case "seqno":
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		off, err := p.parseOffset()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return seqnoRef{varName: event.VarName(v.text), offset: off}, nil
	case "abs", "min", "max":
		var args []expr
		for {
			a, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			if a.typ() != typeNum {
				return nil, p.errf(name, "%s() requires numeric arguments", name.text)
			}
			args = append(args, a)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		want := 2
		if name.text == "abs" {
			want = 1
		}
		if len(args) != want {
			return nil, p.errf(name, "%s() takes %d argument(s), found %d", name.text, want, len(args))
		}
		return call{fn: name.text, args: args}, nil
	default:
		return nil, p.errf(name, "unknown function %q (known: abs, min, max, seqno, consecutive)", name.text)
	}
}
