package cond

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the compiled expression back to canonical DSL source:
// minimal parentheses, single spaces around binary operators. The output
// re-parses to an expression with identical evaluation behavior, variable
// set, degrees, and classification (see TestFormatRoundTrip). Tools use it
// to display normalized conditions in alerts and reports.
func (c *Expr) Format() string {
	return formatExpr(c.root, precLowest)
}

// Operator precedence levels, loosest to tightest, mirroring the parser.
const (
	precLowest = iota
	precOr
	precAnd
	precNot
	precCmp
	precSum
	precProd
	precNeg
)

func opPrecedence(op tokenKind) int {
	switch op {
	case tokOr:
		return precOr
	case tokAnd:
		return precAnd
	case tokLT, tokGT, tokLE, tokGE, tokEQ, tokNE:
		return precCmp
	case tokPlus, tokMinus:
		return precSum
	case tokStar, tokSlash:
		return precProd
	default:
		return precLowest
	}
}

func opToken(op tokenKind) string {
	switch op {
	case tokOr:
		return "||"
	case tokAnd:
		return "&&"
	case tokLT:
		return "<"
	case tokGT:
		return ">"
	case tokLE:
		return "<="
	case tokGE:
		return ">="
	case tokEQ:
		return "=="
	case tokNE:
		return "!="
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	default:
		return "?"
	}
}

// formatExpr renders e, parenthesizing when its precedence is below the
// context's.
func formatExpr(e expr, ctx int) string {
	switch n := e.(type) {
	case numLit:
		return strconv.FormatFloat(n.val, 'g', -1, 64)
	case varRef:
		return fmt.Sprintf("%s[%d]", n.varName, n.offset)
	case seqnoRef:
		return fmt.Sprintf("seqno(%s, %d)", n.varName, n.offset)
	case consecutiveRef:
		return fmt.Sprintf("consecutive(%s)", n.varName)
	case call:
		args := make([]string, len(n.args))
		for i, a := range n.args {
			args[i] = formatExpr(a, precLowest)
		}
		return fmt.Sprintf("%s(%s)", n.fn, strings.Join(args, ", "))
	case binary:
		p := opPrecedence(n.op)
		// Binary operators associate left: the right operand needs parens
		// at equal precedence (a - (b - c)), the left does not.
		s := formatExpr(n.l, p) + " " + opToken(n.op) + " " + formatExpr(n.r, p+1)
		if p < ctx {
			return "(" + s + ")"
		}
		return s
	case unary:
		if n.op == tokMinus {
			return "-" + formatExpr(n.x, precNeg)
		}
		return "!" + formatExpr(n.x, precNot)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
