package cond

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"condmon/internal/event"
)

// Differential tests: the compiled program (program.go) against the
// tree-walking interpreter (compile.go), which is retained as the oracle.
// The two must agree on (fired, error) for every expression and history.

// hist builds a history with the given values, most recent first, with
// consecutive seqnos descending from len(values).
func hist(v event.VarName, values ...float64) event.History {
	h := event.History{Var: v}
	for i, val := range values {
		h.Recent = append(h.Recent, event.U(v, int64(len(values)-i), val))
	}
	return h
}

// gappedHist is hist with a seqno gap between Recent[0] and Recent[1].
func gappedHist(v event.VarName, values ...float64) event.History {
	h := hist(v, values...)
	if len(h.Recent) > 0 {
		h.Recent[0].SeqNo += 5
	}
	return h
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	cases := []struct {
		src string
		h   event.HistorySet
	}{
		// Plain firing / non-firing.
		{"x[0] > 3000", event.HistorySet{"x": hist("x", 3500)}},
		{"x[0] > 3000", event.HistorySet{"x": hist("x", 100)}},
		{"x[0] - x[-1] > 200", event.HistorySet{"x": hist("x", 400, 100)}},
		{"x[0] - x[-1] > 200 && consecutive(x)", event.HistorySet{"x": hist("x", 400, 100)}},
		{"x[0] - x[-1] > 200 && consecutive(x)", event.HistorySet{"x": gappedHist("x", 400, 100)}},
		// Multi-variable, calls, unary.
		{"abs(x[0] - y[0]) > 100", event.HistorySet{"x": hist("x", 50), "y": hist("y", 300)}},
		{"min(x[0], y[0]) >= max(x[-1], 0)", event.HistorySet{"x": hist("x", 5, 3), "y": hist("y", 4)}},
		{"!(x[0] == 0) || x[-1] < -2", event.HistorySet{"x": hist("x", 0, -7)}},
		{"seqno(x, 0) == seqno(x, -1) + 1", event.HistorySet{"x": hist("x", 1, 2)}},
		{"seqno(x, 0) == seqno(x, -1) + 1", event.HistorySet{"x": gappedHist("x", 1, 2)}},
		// Constant subexpressions (exercise folding).
		{"1 + 2 * 3 > 6 && x[0] > 0", event.HistorySet{"x": hist("x", 1)}},
		{"1 > 2 && x[0] / 0 > 1", event.HistorySet{"x": hist("x", 1)}},
		{"0 > 1 || x[0] > 2", event.HistorySet{"x": hist("x", 3)}},
		{"-(3 - 5) == 2 && x[0] >= 0", event.HistorySet{"x": hist("x", 0)}},
		{"x[0] / 4 > 1", event.HistorySet{"x": hist("x", 8)}},
		// Runtime errors: both sides must error.
		{"x[0] / x[-1] > 2", event.HistorySet{"x": hist("x", 8, 0)}},
		{"x[0] / (x[0] - x[0]) > 2", event.HistorySet{"x": hist("x", 8)}},
		// Validation errors: missing variable, short history.
		{"x[0] > 0 && y[0] > 0", event.HistorySet{"x": hist("x", 1)}},
		{"x[0] - x[-1] > 200", event.HistorySet{"x": hist("x", 400)}},
	}
	for _, tc := range cases {
		c, err := Parse("diff", tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		fired, ierr := c.Eval(tc.h)
		p := c.Bind()
		cfired, cerr := p.Eval(tc.h)
		if cfired != fired || (cerr == nil) != (ierr == nil) {
			t.Errorf("%q: interpreted (%v, %v), compiled (%v, %v)", tc.src, fired, ierr, cfired, cerr)
		}
		// A bound program is reusable: a second Eval on the same histories
		// must not be affected by sticky state from the first.
		cfired2, cerr2 := p.Eval(tc.h)
		if cfired2 != cfired || (cerr2 == nil) != (cerr == nil) {
			t.Errorf("%q: program not reusable: first (%v, %v), second (%v, %v)",
				tc.src, cfired, cerr, cfired2, cerr2)
		}
	}
}

// TestConstantFolding is a white-box check that lowering actually folds:
// constant subtrees must compile to literals, not closures.
func TestConstantFolding(t *testing.T) {
	folded := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3 > 6", 1},
		{"1 + 2 * 3 > 7", 0},
		{"abs(3 - 5) == 2", 1},
		{"min(2, 3) + max(2, 3) == 5", 1},
		{"1 > 2 && 1 / 0 > 0", 0}, // short-circuit folds away the bad right side
		{"2 > 1 || 1 / 0 > 0", 1},
		{"-(3 - 5) == 2", 1},
		{"!(1 > 2)", 1},
		{"8 / 4 == 2", 1},
	}
	for _, tc := range folded {
		root, err := parseExpr(tc.src)
		if err != nil {
			t.Fatalf("parseExpr(%q): %v", tc.src, err)
		}
		got := compileExpr(root, &compileCtx{})
		if !got.lit {
			t.Errorf("%q: compiled to a closure, want folded constant", tc.src)
			continue
		}
		if got.val != tc.want {
			t.Errorf("%q: folded to %v, want %v", tc.src, got.val, tc.want)
		}
	}

	// Division by a constant zero must NOT fold: it stays a runtime error,
	// exactly as the interpreter treats it.
	root, err := parseExpr("1 / 0 > 0")
	if err != nil {
		t.Fatalf("parseExpr: %v", err)
	}
	if c := compileExpr(root, &compileCtx{}); c.lit {
		t.Error("1 / 0 > 0 folded to a constant; must stay a runtime error")
	}
	c := MustParse("dz", "x[0] > 0 && 1 / 0 > 0")
	if _, err := c.Eval(event.HistorySet{"x": hist("x", 1)}); err == nil {
		t.Error("interpreter: constant division by zero should error at eval time")
	}
	if _, err := c.Bind().Eval(event.HistorySet{"x": hist("x", 1)}); err == nil {
		t.Error("compiled: constant division by zero should error at eval time")
	}
}

// genNum emits a random numeric DSL expression over variables x and y with
// history offsets in [-2, 0]. depth bounds recursion. The generator mirrors
// the parser's type discipline: genNum produces numeric expressions, genBool
// boolean ones.
func genNum(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(21)-10)
		case 1:
			return fmt.Sprintf("x[%d]", -rng.Intn(3))
		case 2:
			return fmt.Sprintf("y[%d]", -rng.Intn(2))
		default:
			return fmt.Sprintf("seqno(x, %d)", -rng.Intn(3))
		}
	}
	switch rng.Intn(4) {
	case 0:
		ops := []string{"+", "-", "*", "/"}
		return fmt.Sprintf("(%s %s %s)",
			genNum(rng, depth-1), ops[rng.Intn(len(ops))], genNum(rng, depth-1))
	case 1:
		return fmt.Sprintf("abs(%s)", genNum(rng, depth-1))
	case 2:
		fn := "min"
		if rng.Intn(2) == 0 {
			fn = "max"
		}
		return fmt.Sprintf("%s(%s, %s)", fn, genNum(rng, depth-1), genNum(rng, depth-1))
	default:
		return "-" + genNum(rng, depth-1)
	}
}

func genBool(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			ops := []string{"<", ">", "<=", ">=", "==", "!="}
			return fmt.Sprintf("(%s %s %s)",
				genNum(rng, depth), ops[rng.Intn(len(ops))], genNum(rng, depth))
		case 1:
			return "consecutive(x)"
		case 2:
			return "consecutive(y)"
		default:
			ops := []string{"==", "!="}
			return fmt.Sprintf("(seqno(x, %d) %s seqno(x, %d) + 1)",
				-rng.Intn(3), ops[rng.Intn(2)], -rng.Intn(3))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s && %s)", genBool(rng, depth-1), genBool(rng, depth-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", genBool(rng, depth-1), genBool(rng, depth-1))
	default:
		return "!" + genBool(rng, depth-1)
	}
}

// genHistory builds a random history for v: n updates, values in [-10, 10]
// (small integers so constant comparisons hit equality sometimes), seqnos
// descending with occasional gaps.
func genHistory(rng *rand.Rand, v event.VarName, n int) event.History {
	h := event.History{Var: v}
	seq := int64(100)
	for i := 0; i < n; i++ {
		h.Recent = append(h.Recent, event.U(v, seq, float64(rng.Intn(21)-10)))
		seq -= 1 + int64(rng.Intn(2)) // gap with probability 1/2
	}
	return h
}

// TestCompiledMatchesInterpreterRandom is the property test: on thousands of
// seeded random (expression, history) pairs, compiled and interpreted
// evaluation agree on (fired, error).
func TestCompiledMatchesInterpreterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		src := genBool(rng, 1+rng.Intn(4))
		c, err := Parse("prop", src)
		if err != nil {
			// Expressions with no variable reference are rejected; skip.
			if strings.Contains(err.Error(), "references no variables") {
				continue
			}
			t.Fatalf("Parse(%q): %v", src, err)
		}
		h := make(event.HistorySet, len(c.Vars()))
		for _, v := range c.Vars() {
			d := c.Degree(v)
			// Sometimes under-fill or omit the variable to exercise the
			// validation-error paths; usually satisfy the degree.
			switch rng.Intn(10) {
			case 0:
				continue // missing variable
			case 1:
				if d > 1 {
					h[v] = genHistory(rng, v, d-1) // short history
					continue
				}
				fallthrough
			default:
				h[v] = genHistory(rng, v, d+rng.Intn(2))
			}
		}
		fired, ierr := c.Eval(h)
		cfired, cerr := c.Bind().Eval(h)
		if cfired != fired || (cerr == nil) != (ierr == nil) {
			t.Fatalf("divergence on %q (iteration %d):\n  histories   %v\n  interpreted (%v, %v)\n  compiled    (%v, %v)",
				src, i, h, fired, ierr, cfired, cerr)
		}
	}
}
