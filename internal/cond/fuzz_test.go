package cond

import (
	"testing"

	"condmon/internal/event"
)

// FuzzParse ensures the DSL front end never panics and that every
// expression it accepts can actually be evaluated on a sufficient history
// set without internal errors (other than the documented runtime division
// by zero).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"x[0] > 3000",
		"x[0] - x[-1] > 200 && consecutive(x)",
		"abs(x[0] - y[0]) > 100",
		"seqno(x, 0) == seqno(x, -1) + 1",
		"min(x[0], y[0]) >= max(x[-1], 0) || !(x[0] == 0)",
		"x[0] / x[-1] > 2",
		"((x[0]))>((0))",
		"x[0] >",
		"x[0] > 3..0",
		"x > 3",
		"🎉[0] > 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		// Build a history set deep enough for every variable and evaluate;
		// the only acceptable evaluation error is division by zero (values
		// here are all non-zero, so even that should not occur... except
		// through subtraction producing zero denominators).
		h := make(event.HistorySet, len(c.Vars()))
		for _, v := range c.Vars() {
			d := c.Degree(v)
			hist := event.History{Var: v}
			for i := 0; i < d; i++ {
				hist.Recent = append(hist.Recent, event.U(v, int64(d-i+1), float64(3+i)))
			}
			h[v] = hist
		}
		fired, err := c.Eval(h)
		if err != nil {
			if _, ok := err.(*SyntaxError); ok {
				t.Fatalf("syntax error surfaced at eval time: %v", err)
			}
			// Runtime errors (division by zero) are allowed.
		}
		// The compiled program is a differential oracle pair with the
		// tree-walking interpreter: both must agree on (fired, error).
		cfired, cerr := c.Bind().Eval(h)
		if cfired != fired || (cerr == nil) != (err == nil) {
			t.Fatalf("compiled/interpreted divergence on %q:\n  interpreted (%v, %v)\n  compiled    (%v, %v)",
				src, fired, err, cfired, cerr)
		}
		// Gapped seqnos exercise consecutive() and the degree-based
		// validation differently; the evaluators must still agree.
		gapped := make(event.HistorySet, len(h))
		for v, hist := range h {
			g := event.History{Var: v, Recent: make([]event.Update, len(hist.Recent))}
			for i, u := range hist.Recent {
				g.Recent[i] = event.U(v, u.SeqNo*2, u.Value)
			}
			gapped[v] = g
		}
		gfired, gerr := c.Eval(gapped)
		cgfired, cgerr := c.Bind().Eval(gapped)
		if cgfired != gfired || (cgerr == nil) != (gerr == nil) {
			t.Fatalf("compiled/interpreted divergence on %q (gapped seqnos):\n  interpreted (%v, %v)\n  compiled    (%v, %v)",
				src, gfired, gerr, cgfired, cgerr)
		}
		// Metadata must be coherent.
		for _, v := range c.Vars() {
			if c.Degree(v) < 1 {
				t.Fatalf("variable %q has degree %d", v, c.Degree(v))
			}
		}
		if !Historical(c) && !c.Conservative() {
			t.Fatal("non-historical conditions must classify conservative")
		}
	})
}
