package cond

import (
	"strings"
	"testing"

	"condmon/internal/event"
)

func TestParseC1Equivalent(t *testing.T) {
	c, err := Parse("c1", "x[0] > 3000")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := c.Vars(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Vars = %v, want [x]", got)
	}
	if got := c.Degree("x"); got != 1 {
		t.Errorf("Degree(x) = %d, want 1", got)
	}
	if Historical(c) {
		t.Error("x[0] > 3000 must be non-historical")
	}
	if !c.Conservative() {
		t.Error("non-historical DSL conditions must classify conservative")
	}
	// Agrees with the built-in on a sweep of values.
	builtin := NewOverheat("x")
	for _, v := range []float64{2900, 3000, 3000.5, 3200} {
		h := hs(histOf("x", [2]float64{1, v}))
		if mustEval(t, c, h) != mustEval(t, builtin, h) {
			t.Errorf("DSL c1 disagrees with built-in at value %g", v)
		}
	}
}

func TestParseC2C3Equivalents(t *testing.T) {
	c2, err := Parse("c2", "x[0] - x[-1] > 200")
	if err != nil {
		t.Fatalf("Parse c2: %v", err)
	}
	if c2.Conservative() || !Historical(c2) || c2.Degree("x") != 2 {
		t.Errorf("c2 classification wrong: cons=%v hist=%v deg=%d",
			c2.Conservative(), Historical(c2), c2.Degree("x"))
	}

	c3, err := Parse("c3", "x[0] - x[-1] > 200 && consecutive(x)")
	if err != nil {
		t.Fatalf("Parse c3: %v", err)
	}
	if !c3.Conservative() {
		t.Error("c3 with consecutive(x) guard must classify conservative")
	}

	// Both agree with the built-ins on a grid of windows.
	windows := []event.HistorySet{
		hs(histOf("x", [2]float64{7, 700}, [2]float64{6, 400})),
		hs(histOf("x", [2]float64{7, 700}, [2]float64{5, 400})),
		hs(histOf("x", [2]float64{7, 500}, [2]float64{6, 400})),
		hs(histOf("x", [2]float64{3, 720}, [2]float64{1, 400})),
	}
	bc2, bc3 := NewRiseAggressive("x"), NewRiseConservative("x")
	for i, h := range windows {
		if mustEval(t, c2, h) != mustEval(t, bc2, h) {
			t.Errorf("window %d: DSL c2 disagrees with built-in", i)
		}
		if mustEval(t, c3, h) != mustEval(t, bc3, h) {
			t.Errorf("window %d: DSL c3 disagrees with built-in", i)
		}
	}
}

func TestParseMultiVariable(t *testing.T) {
	cm, err := Parse("cm", "abs(x[0] - y[0]) > 100")
	if err != nil {
		t.Fatalf("Parse cm: %v", err)
	}
	if got := cm.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Vars = %v, want [x y]", got)
	}
	builtin := NewTempDiff("x", "y")
	cases := [][2]float64{{1200, 1050}, {1000, 1050}, {1000, 1150}, {900, 1050}}
	for _, c := range cases {
		h := hs(histOf("x", [2]float64{1, c[0]}), histOf("y", [2]float64{1, c[1]}))
		if mustEval(t, cm, h) != mustEval(t, builtin, h) {
			t.Errorf("DSL cm disagrees with built-in at %v", c)
		}
	}
}

func TestParseDegreeThreeSkippingOffsets(t *testing.T) {
	// "a condition that uses only Hx[0] and Hx[−2] is of degree 3 to x".
	c, err := Parse("deg3", "x[0] - x[-2] > 10")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := c.Degree("x"); got != 3 {
		t.Errorf("Degree(x) = %d, want 3", got)
	}
}

func TestParseSeqnoFunction(t *testing.T) {
	c, err := Parse("manual-consecutive", "x[0] - x[-1] > 200 && seqno(x, 0) == seqno(x, -1) + 1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Semantically conservative, but the syntactic analysis only recognizes
	// the consecutive() guard — documents the sound under-approximation.
	if c.Conservative() {
		t.Error("seqno-based guard is not recognized by the syntactic analysis")
	}
	// Behaves exactly like c3 nonetheless.
	bc3 := NewRiseConservative("x")
	windows := []event.HistorySet{
		hs(histOf("x", [2]float64{7, 700}, [2]float64{6, 400})),
		hs(histOf("x", [2]float64{7, 700}, [2]float64{5, 400})),
	}
	for i, h := range windows {
		if mustEval(t, c, h) != mustEval(t, bc3, h) {
			t.Errorf("window %d: seqno guard disagrees with c3", i)
		}
	}
}

func TestParseOperatorsAndPrecedence(t *testing.T) {
	tests := []struct {
		name string
		src  string
		h    event.HistorySet
		want bool
	}{
		{
			name: "mul before add",
			src:  "x[0] + 2 * 3 == 10",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "parens",
			src:  "(x[0] + 2) * 3 == 18",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "unary minus",
			src:  "-x[0] < 0",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "not",
			src:  "!(x[0] > 5)",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "and or precedence",
			src:  "x[0] > 5 && x[0] > 6 || x[0] > 3",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "division",
			src:  "x[0] / 2 >= 2",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "min max",
			src:  "min(x[0], 10) == 4 && max(x[0], 10) == 10",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
		{
			name: "ne le ge",
			src:  "x[0] != 5 && x[0] <= 4 && x[0] >= 4",
			h:    hs(histOf("x", [2]float64{1, 4})),
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Parse(tt.name, tt.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.src, err)
			}
			if got := mustEval(t, c, tt.h); got != tt.want {
				t.Errorf("eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantSub string
	}{
		{name: "empty", src: "", wantSub: "expected"},
		{name: "numeric result", src: "x[0] + 1", wantSub: "boolean"},
		{name: "bare identifier", src: "x > 3", wantSub: "bare identifier"},
		{name: "positive offset", src: "x[1] > 3", wantSub: "history index"},
		{name: "fractional offset", src: "x[0.5] > 3", wantSub: "integer"},
		{name: "single equals", src: "x[0] = 3", wantSub: "'=='"},
		{name: "single amp", src: "x[0] > 1 & x[0] > 2", wantSub: "'&&'"},
		{name: "single pipe", src: "x[0] > 1 | x[0] > 2", wantSub: "'||'"},
		{name: "unknown function", src: "sqrt(x[0]) > 2", wantSub: "unknown function"},
		{name: "abs arity", src: "abs(x[0], x[0]) > 2", wantSub: "argument"},
		{name: "min arity", src: "min(x[0]) > 2", wantSub: "argument"},
		{name: "unclosed paren", src: "(x[0] > 2", wantSub: "expected ')'"},
		{name: "trailing garbage", src: "x[0] > 2 )", wantSub: "unexpected"},
		{name: "and type error", src: "x[0] && x[0] > 1", wantSub: "boolean"},
		{name: "comparison type error", src: "(x[0] > 1) > 2", wantSub: "numeric"},
		{name: "double dot", src: "x[0] > 3.4.5", wantSub: "decimal"},
		{name: "bad character", src: "x[0] > #3", wantSub: "unexpected character"},
		{name: "no variables", src: "1 > 0", wantSub: "no variables"},
		{name: "not on bare number", src: "!3", wantSub: "boolean"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.name, tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tt.src, tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("Parse(%q) error = %q, want it to contain %q", tt.src, err, tt.wantSub)
			}
		})
	}
}

func TestParseDivisionByZeroAtEval(t *testing.T) {
	c, err := Parse("div", "x[0] / x[-1] > 2")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	h := hs(histOf("x", [2]float64{2, 10}, [2]float64{1, 0}))
	if _, err := c.Eval(h); err == nil {
		t.Error("division by zero should surface as an evaluation error")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of an invalid expression should panic")
		}
	}()
	MustParse("bad", "x[0] +")
}

func TestExprSourceAccessor(t *testing.T) {
	src := "x[0] > 3000"
	c := MustParse("c1", src)
	if c.Source() != src {
		t.Errorf("Source() = %q, want %q", c.Source(), src)
	}
}

func TestConsecutiveGuardUsesConditionDegree(t *testing.T) {
	// The guard must check the window only to the condition's degree: if
	// the CE hands a deeper history than needed, extra old entries must not
	// affect the verdict.
	c := MustParse("g", "x[0] - x[-1] > 0 && consecutive(x)")
	h := hs(event.History{Var: "x", Recent: []event.Update{
		event.U("x", 7, 10),
		event.U("x", 6, 5),
		event.U("x", 3, 1), // gap below the condition's degree-2 window
	}})
	if !mustEval(t, c, h) {
		t.Error("gap below the condition's window must not trip the guard")
	}
}

func TestParseWhitespaceAndIdentifiers(t *testing.T) {
	c, err := Parse("w", "\t temp_1[0]\n > 3000 ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := c.Vars(); len(got) != 1 || got[0] != "temp_1" {
		t.Errorf("Vars = %v, want [temp_1]", got)
	}
}
