package cond

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind enumerates DSL token types.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokLT
	tokGT
	tokLE
	tokGE
	tokEQ
	tokNE
	tokAnd
	tokOr
	tokNot
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokLT:
		return "'<'"
	case tokGT:
		return "'>'"
	case tokLE:
		return "'<='"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'=='"
	case tokNE:
		return "'!='"
	case tokAnd:
		return "'&&'"
	case tokOr:
		return "'||'"
	case tokNot:
		return "'!'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit of a DSL expression.
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// SyntaxError reports a lexical or grammatical problem in a DSL expression,
// with the byte offset at which it was detected.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cond: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lex tokenizes a DSL expression.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			out = append(out, token{kind: tokRParen, pos: i})
			i++
		case c == '[':
			out = append(out, token{kind: tokLBracket, pos: i})
			i++
		case c == ']':
			out = append(out, token{kind: tokRBracket, pos: i})
			i++
		case c == ',':
			out = append(out, token{kind: tokComma, pos: i})
			i++
		case c == '+':
			out = append(out, token{kind: tokPlus, pos: i})
			i++
		case c == '-':
			out = append(out, token{kind: tokMinus, pos: i})
			i++
		case c == '*':
			out = append(out, token{kind: tokStar, pos: i})
			i++
		case c == '/':
			out = append(out, token{kind: tokSlash, pos: i})
			i++
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, token{kind: tokLE, pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokLT, pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, token{kind: tokGE, pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokGT, pos: i})
				i++
			}
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, token{kind: tokEQ, pos: i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "expected '==' (single '=' is not an operator)"}
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, token{kind: tokNE, pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokNot, pos: i})
				i++
			}
		case c == '&':
			if i+1 < len(src) && src[i+1] == '&' {
				out = append(out, token{kind: tokAnd, pos: i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "expected '&&'"}
			}
		case c == '|':
			if i+1 < len(src) && src[i+1] == '|' {
				out = append(out, token{kind: tokOr, pos: i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "expected '||'"}
			}
		case c >= '0' && c <= '9' || c == '.':
			start := i
			seenDot := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' {
					if seenDot {
						return nil, &SyntaxError{Pos: i, Msg: "number with two decimal points"}
					}
					seenDot = true
				}
				i++
			}
			text := src[start:i]
			n, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, &SyntaxError{Pos: start, Msg: fmt.Sprintf("bad number %q", text)}
			}
			out = append(out, token{kind: tokNumber, text: text, num: n, pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
			}
			out = append(out, token{kind: tokIdent, text: src[start:i], pos: start})
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(src)})
	return out, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
