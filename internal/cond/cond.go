// Package cond implements the condition model of Section 2 of the paper.
//
// A condition is a boolean expression over the update histories H of its
// variable set V. Each condition has a degree per variable (how far back
// into Hx it looks), is historical if any degree exceeds one, and is either
// conservatively or aggressively triggered: a conservative condition
// evaluates to false whenever the sequence numbers in a relevant history
// window are not consecutive (i.e. it detects that an update was lost),
// while an aggressive condition silently substitutes older received values.
//
// The package provides the built-in conditions used throughout the paper
// (c1, c2, c3, cm and friends) plus a small text DSL — see Parse — that
// compiles expressions such as
//
//	x[0] - x[-1] > 200 && consecutive(x)
//
// into Condition values with automatically derived variable sets, degrees,
// and triggering classification.
package cond

import (
	"fmt"
	"sort"

	"condmon/internal/event"
)

// Condition is a monitorable condition c. Implementations must be pure:
// Eval may not retain or mutate the history set, and must depend only on
// it. This is what makes the paper's analysis (and our property checkers)
// possible; conditions needing extra state, infinite degree, or real time
// are out of scope exactly as in Section 2.
type Condition interface {
	// Name identifies the condition; it becomes Alert.Cond.
	Name() string
	// Vars returns the variable set V, sorted by name.
	Vars() []event.VarName
	// Degree returns the condition's degree with respect to v: the minimum
	// history length needed to evaluate it. Degree of a variable outside V
	// is 0.
	Degree(v event.VarName) int
	// Conservative reports whether the condition is conservatively
	// triggered: guaranteed false whenever any history window it inspects
	// has non-consecutive sequence numbers.
	Conservative() bool
	// Eval evaluates the condition on a history set. Every variable in V
	// must be present with a full window of at least Degree(v) updates;
	// Eval returns an error otherwise.
	Eval(h event.HistorySet) (bool, error)
}

// Historical reports whether c is a historical condition: of degree > 1
// with respect to at least one of its variables (Section 2).
func Historical(c Condition) bool {
	for _, v := range c.Vars() {
		if c.Degree(v) > 1 {
			return true
		}
	}
	return false
}

// MaxDegree returns the largest per-variable degree of c.
func MaxDegree(c Condition) int {
	max := 0
	for _, v := range c.Vars() {
		if d := c.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Validate checks that a history set is sufficient to evaluate c and
// returns a descriptive error if not. Eval implementations use it as their
// first step.
func Validate(c Condition, h event.HistorySet) error {
	for _, v := range c.Vars() {
		hv, ok := h[v]
		if !ok {
			return errMissingVar(c.Name(), v)
		}
		if hv.Degree() < c.Degree(v) {
			return errShortHistory(c.Name(), v, hv.Degree(), c.Degree(v))
		}
	}
	return nil
}

// errMissingVar and errShortHistory are the canonical insufficient-history
// errors, shared by Validate, the compiled Program, and the built-ins' view
// evaluators so every evaluation path reports identically.
func errMissingVar(name string, v event.VarName) error {
	return fmt.Errorf("cond: %s: history set missing variable %q", name, v)
}

func errShortHistory(name string, v event.VarName, have, need int) error {
	return fmt.Errorf("cond: %s: history for %q has %d updates, need %d", name, v, have, need)
}

// validateView is Validate against a read-only view, checking vs's aligned
// degrees without copying the variable slice.
func validateView(name string, h event.HistoryView, vars []event.VarName, degree func(event.VarName) int) error {
	for _, v := range vars {
		hv, ok := h.HistoryOf(v)
		if !ok {
			return errMissingVar(name, v)
		}
		if len(hv.Recent) < degree(v) {
			return errShortHistory(name, v, len(hv.Recent), degree(v))
		}
	}
	return nil
}

// Scenario classifies a (links, condition) combination into the rows of
// Tables 1–3.
type Scenario int

const (
	// ScenarioLossless: front links deliver every update (any condition).
	ScenarioLossless Scenario = iota + 1
	// ScenarioNonHistorical: lossy front links, non-historical condition.
	ScenarioNonHistorical
	// ScenarioConservative: lossy front links, historical conservative.
	ScenarioConservative
	// ScenarioAggressive: lossy front links, historical aggressive.
	ScenarioAggressive
)

// String names the scenario as in the tables' row labels.
func (s Scenario) String() string {
	switch s {
	case ScenarioLossless:
		return "Lossless"
	case ScenarioNonHistorical:
		return "Lossy Non-historical"
	case ScenarioConservative:
		return "Lossy Historical Conservative"
	case ScenarioAggressive:
		return "Lossy Historical Aggressive"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ClassifyScenario returns the table row for a condition under the given
// link assumption.
func ClassifyScenario(c Condition, lossless bool) Scenario {
	switch {
	case lossless:
		return ScenarioLossless
	case !Historical(c):
		return ScenarioNonHistorical
	case c.Conservative():
		return ScenarioConservative
	default:
		return ScenarioAggressive
	}
}

// sortedVars sorts a variable slice in place and returns it.
func sortedVars(vs []event.VarName) []event.VarName {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}
