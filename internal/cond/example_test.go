package cond_test

import (
	"fmt"

	"condmon/internal/cond"
	"condmon/internal/event"
)

// ExampleParse shows how classification is derived from the expression.
func ExampleParse() {
	c3, err := cond.Parse("c3", "x[0] - x[-1] > 200 && consecutive(x)")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("vars:", c3.Vars())
	fmt.Println("degree in x:", c3.Degree("x"))
	fmt.Println("historical:", cond.Historical(c3))
	fmt.Println("conservative:", c3.Conservative())
	// Output:
	// vars: [x]
	// degree in x: 2
	// historical: true
	// conservative: true
}

// ExampleExpr_Format shows canonical re-rendering of a parsed condition.
func ExampleExpr_Format() {
	c, err := cond.Parse("c", "(x[0]+2)*3==18||consecutive(x)")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(c.Format())
	// Output:
	// (x[0] + 2) * 3 == 18 || consecutive(x)
}

// ExampleExpr_Eval evaluates a compiled condition on a history window.
func ExampleExpr_Eval() {
	c2, err := cond.Parse("c2", "x[0] - x[-1] > 200")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	h := event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{
			event.U("x", 7, 700), // Hx[0]
			event.U("x", 6, 400), // Hx[-1]
		}},
	}
	fired, err := c2.Eval(h)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fired:", fired)
	// Output:
	// fired: true
}
