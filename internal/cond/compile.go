package cond

import (
	"fmt"
	"math"

	"condmon/internal/event"
)

// Expr is a condition compiled from a DSL expression by Parse. Its variable
// set, per-variable degrees, and triggering classification are derived from
// the expression itself.
type Expr struct {
	name    string
	src     string
	root    expr
	degrees map[event.VarName]int
	vars    []event.VarName
	degs    []int // degrees aligned with vars (slot order)
	cons    bool
	code    evalFn // compiled program (see program.go)
}

var _ Condition = (*Expr)(nil)

// Parse compiles a DSL expression into a condition. Examples, with their
// derived classification:
//
//	Parse("c1", "x[0] > 3000")                                  // degree 1, non-historical
//	Parse("c2", "x[0] - x[-1] > 200")                           // degree 2, aggressive
//	Parse("c3", "x[0] - x[-1] > 200 && consecutive(x)")         // degree 2, conservative
//	Parse("cm", "abs(x[0] - y[0]) > 100")                       // two variables, degree 1 each
//
// A condition is classified conservative when, for every variable of degree
// greater than one, the top-level conjunction contains a consecutive(v)
// guard (this is a sound, syntactic under-approximation: such a condition
// is always false when a window has a gap). Non-historical conditions are
// trivially conservative.
func Parse(name, src string) (*Expr, error) {
	root, err := parseExpr(src)
	if err != nil {
		return nil, err
	}
	c := &Expr{name: name, src: src, root: root, degrees: make(map[event.VarName]int)}
	collectDegrees(root, c.degrees)
	if len(c.degrees) == 0 {
		return nil, fmt.Errorf("cond: %s: expression references no variables", name)
	}
	for v := range c.degrees {
		c.vars = append(c.vars, v)
	}
	c.vars = sortedVars(c.vars)
	c.cons = analyzeConservative(root, c.degrees)

	// Lower the AST into the compiled closure program (program.go): slot
	// indices follow the sorted variable order, degrees are final here.
	slot := make(map[event.VarName]int, len(c.vars))
	c.degs = make([]int, len(c.vars))
	for i, v := range c.vars {
		slot[v] = i
		c.degs[i] = c.degrees[v]
	}
	c.code = compileExpr(root, &compileCtx{slot: slot, degrees: c.degrees}).eval()
	return c, nil
}

// MustParse is Parse for expressions known to be valid; it panics on error.
// Intended for package-level condition tables in tests and examples.
func MustParse(name, src string) *Expr {
	c, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Condition.
func (c *Expr) Name() string { return c.name }

// Source returns the DSL text the condition was compiled from.
func (c *Expr) Source() string { return c.src }

// Vars implements Condition.
func (c *Expr) Vars() []event.VarName {
	out := make([]event.VarName, len(c.vars))
	copy(out, c.vars)
	return out
}

// Degree implements Condition.
func (c *Expr) Degree(v event.VarName) int { return c.degrees[v] }

// Conservative implements Condition.
func (c *Expr) Conservative() bool { return c.cons }

// Eval implements Condition by walking the tree. It is retained as the
// differential-testing oracle for the compiled program (see program.go);
// hot paths should Bind the expression and use Program.Eval instead.
func (c *Expr) Eval(h event.HistorySet) (bool, error) {
	if err := Validate(c, h); err != nil {
		return false, err
	}
	v, err := evalExpr(c, c.root, h)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// collectDegrees records, per variable, 1 + the deepest history offset the
// expression reaches. A reference v[-2] (or seqno(v,-2)) forces degree 3,
// matching the paper's note that a condition using only Hx[0] and Hx[-2] is
// of degree 3 in x.
func collectDegrees(e expr, degrees map[event.VarName]int) {
	bump := func(v event.VarName, offset int) {
		if d := 1 - offset; d > degrees[v] {
			degrees[v] = d
		}
	}
	switch n := e.(type) {
	case numLit:
	case varRef:
		bump(n.varName, n.offset)
	case seqnoRef:
		bump(n.varName, n.offset)
	case consecutiveRef:
		// The guard inspects the window at whatever degree the rest of the
		// expression forces; on its own it needs at least the latest update.
		bump(n.varName, 0)
	case call:
		for _, a := range n.args {
			collectDegrees(a, degrees)
		}
	case binary:
		collectDegrees(n.l, degrees)
		collectDegrees(n.r, degrees)
	case unary:
		collectDegrees(n.x, degrees)
	}
}

// analyzeConservative reports whether every historical variable is guarded
// by a consecutive(v) conjunct at the top level of the expression.
func analyzeConservative(root expr, degrees map[event.VarName]int) bool {
	guarded := make(map[event.VarName]bool)
	var walk func(e expr)
	walk = func(e expr) {
		switch n := e.(type) {
		case binary:
			if n.op == tokAnd {
				walk(n.l)
				walk(n.r)
			}
		case consecutiveRef:
			guarded[n.varName] = true
		}
	}
	walk(root)
	for v, d := range degrees {
		if d > 1 && !guarded[v] {
			return false
		}
	}
	return true
}

// evalExpr interprets the expression; booleans are represented as 1 and 0.
func evalExpr(c *Expr, e expr, h event.HistorySet) (float64, error) {
	switch n := e.(type) {
	case numLit:
		return n.val, nil
	case varRef:
		u, err := histAt(c, h, n.varName, n.offset)
		if err != nil {
			return 0, err
		}
		return u.Value, nil
	case seqnoRef:
		u, err := histAt(c, h, n.varName, n.offset)
		if err != nil {
			return 0, err
		}
		return float64(u.SeqNo), nil
	case consecutiveRef:
		hv, ok := h[n.varName]
		if !ok {
			return 0, fmt.Errorf("cond: %s: history set missing variable %q", c.name, n.varName)
		}
		// The guard checks the window to the condition's degree in v, the
		// amount of history the CE stores for it.
		win := hv.Recent
		if d := c.degrees[n.varName]; len(win) > d {
			win = win[:d]
		}
		trimmed := event.History{Var: n.varName, Recent: win}
		return boolToNum(trimmed.Consecutive()), nil
	case call:
		args := make([]float64, len(n.args))
		for i, a := range n.args {
			v, err := evalExpr(c, a, h)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		switch n.fn {
		case "abs":
			return math.Abs(args[0]), nil
		case "min":
			return math.Min(args[0], args[1]), nil
		case "max":
			return math.Max(args[0], args[1]), nil
		default:
			return 0, fmt.Errorf("cond: %s: unknown function %q", c.name, n.fn)
		}
	case binary:
		l, err := evalExpr(c, n.l, h)
		if err != nil {
			return 0, err
		}
		// Short-circuit the boolean operators.
		switch n.op {
		case tokAnd:
			if l == 0 {
				return 0, nil
			}
			return evalExpr(c, n.r, h)
		case tokOr:
			if l != 0 {
				return 1, nil
			}
			return evalExpr(c, n.r, h)
		}
		r, err := evalExpr(c, n.r, h)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case tokPlus:
			return l + r, nil
		case tokMinus:
			return l - r, nil
		case tokStar:
			return l * r, nil
		case tokSlash:
			if r == 0 {
				return 0, fmt.Errorf("cond: %s: division by zero", c.name)
			}
			return l / r, nil
		case tokLT:
			return boolToNum(l < r), nil
		case tokGT:
			return boolToNum(l > r), nil
		case tokLE:
			return boolToNum(l <= r), nil
		case tokGE:
			return boolToNum(l >= r), nil
		case tokEQ:
			return boolToNum(l == r), nil
		case tokNE:
			return boolToNum(l != r), nil
		default:
			return 0, fmt.Errorf("cond: %s: unknown binary operator %v", c.name, n.op)
		}
	case unary:
		x, err := evalExpr(c, n.x, h)
		if err != nil {
			return 0, err
		}
		if n.op == tokMinus {
			return -x, nil
		}
		return boolToNum(x == 0), nil
	default:
		return 0, fmt.Errorf("cond: %s: unknown expression node %T", c.name, e)
	}
}

func histAt(c *Expr, h event.HistorySet, v event.VarName, offset int) (event.Update, error) {
	hv, ok := h[v]
	if !ok {
		return event.Update{}, fmt.Errorf("cond: %s: history set missing variable %q", c.name, v)
	}
	u, ok := hv.At(offset)
	if !ok {
		return event.Update{}, fmt.Errorf("cond: %s: history for %q does not reach offset %d", c.name, v, offset)
	}
	return u, nil
}

func boolToNum(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
