package cond

import (
	"testing"

	"condmon/internal/event"
)

// histOf builds a history with the given seqno/value pairs, most recent
// first.
func histOf(v event.VarName, pairs ...[2]float64) event.History {
	h := event.History{Var: v}
	for _, p := range pairs {
		h.Recent = append(h.Recent, event.U(v, int64(p[0]), p[1]))
	}
	return h
}

func hs(hists ...event.History) event.HistorySet {
	out := make(event.HistorySet, len(hists))
	for _, h := range hists {
		out[h.Var] = h
	}
	return out
}

func mustEval(t *testing.T, c Condition, h event.HistorySet) bool {
	t.Helper()
	got, err := c.Eval(h)
	if err != nil {
		t.Fatalf("%s.Eval: %v", c.Name(), err)
	}
	return got
}

func TestThresholdC1(t *testing.T) {
	c1 := NewOverheat("x")
	if c1.Name() != "c1" || Historical(c1) || !c1.Conservative() {
		t.Errorf("c1 metadata wrong: name=%s historical=%v conservative=%v",
			c1.Name(), Historical(c1), c1.Conservative())
	}
	if d := c1.Degree("x"); d != 1 {
		t.Errorf("c1 degree(x) = %d, want 1", d)
	}
	if d := c1.Degree("y"); d != 0 {
		t.Errorf("c1 degree(y) = %d, want 0", d)
	}

	tests := []struct {
		value float64
		want  bool
	}{
		{2900, false},
		{3000, false},
		{3100, true},
	}
	for _, tt := range tests {
		got := mustEval(t, c1, hs(histOf("x", [2]float64{1, tt.value})))
		if got != tt.want {
			t.Errorf("c1(%g) = %v, want %v", tt.value, got, tt.want)
		}
	}
}

func TestThresholdBelow(t *testing.T) {
	floor := Threshold{CondName: "floor", Var: "s", Limit: 50}
	if mustEval(t, floor, hs(histOf("s", [2]float64{1, 60}))) {
		t.Error("floor should not trigger above the limit")
	}
	if !mustEval(t, floor, hs(histOf("s", [2]float64{1, 40}))) {
		t.Error("floor should trigger below the limit")
	}
}

func TestRiseC2Aggressive(t *testing.T) {
	c2 := NewRiseAggressive("x")
	if c2.Name() != "c2" || !Historical(c2) || c2.Conservative() {
		t.Errorf("c2 metadata wrong: historical=%v conservative=%v", Historical(c2), c2.Conservative())
	}
	// Consecutive window 6,7 with a 300-degree rise: triggers.
	if !mustEval(t, c2, hs(histOf("x", [2]float64{7, 700}, [2]float64{6, 400}))) {
		t.Error("c2 should trigger on a 300-degree rise")
	}
	// Gap in the window (5 then 7): c2 does not care, still triggers.
	if !mustEval(t, c2, hs(histOf("x", [2]float64{7, 700}, [2]float64{5, 400}))) {
		t.Error("c2 is aggressive and should trigger across a gap")
	}
	// Rise of exactly Delta does not trigger (strict inequality).
	if mustEval(t, c2, hs(histOf("x", [2]float64{7, 600}, [2]float64{6, 400}))) {
		t.Error("c2 should not trigger on a rise of exactly 200")
	}
}

func TestRiseC3Conservative(t *testing.T) {
	c3 := NewRiseConservative("x")
	if !c3.Conservative() || !Historical(c3) {
		t.Error("c3 should be historical and conservative")
	}
	// Same rise, consecutive: triggers.
	if !mustEval(t, c3, hs(histOf("x", [2]float64{7, 700}, [2]float64{6, 400}))) {
		t.Error("c3 should trigger on a consecutive 300-degree rise")
	}
	// Same rise across a gap: conservative, must be false.
	if mustEval(t, c3, hs(histOf("x", [2]float64{7, 700}, [2]float64{5, 400}))) {
		t.Error("c3 must be false when an update was missed")
	}
}

func TestSharpDrop(t *testing.T) {
	// The Section 1 stock scenario: quotes 100, 50 → >20% drop triggers;
	// quotes 100, 52 (update 2 lost) also triggers aggressively.
	d := NewSharpDrop("s")
	if !mustEval(t, d, hs(histOf("s", [2]float64{2, 50}, [2]float64{1, 100}))) {
		t.Error("drop 100→50 should trigger")
	}
	if !mustEval(t, d, hs(histOf("s", [2]float64{3, 52}, [2]float64{1, 100}))) {
		t.Error("aggressive drop 100→52 across a gap should trigger")
	}
	if mustEval(t, d, hs(histOf("s", [2]float64{2, 90}, [2]float64{1, 100}))) {
		t.Error("10%% drop should not trigger")
	}
	cons := Drop{CondName: "drop-cons", Var: "s", Frac: 0.20, Consecutive: true}
	if mustEval(t, cons, hs(histOf("s", [2]float64{3, 52}, [2]float64{1, 100}))) {
		t.Error("conservative drop must not trigger across a gap")
	}
	// Division-by-zero guard.
	if mustEval(t, d, hs(histOf("s", [2]float64{2, 50}, [2]float64{1, 0}))) {
		t.Error("drop from zero should not trigger")
	}
}

func TestAbsDiffCm(t *testing.T) {
	cm := NewTempDiff("x", "y")
	if got := cm.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("cm.Vars() = %v, want [x y]", got)
	}
	if Historical(cm) {
		t.Error("cm is degree 1 per variable and must be non-historical")
	}
	h := hs(histOf("x", [2]float64{2, 1200}), histOf("y", [2]float64{1, 1050}))
	if !mustEval(t, cm, h) {
		t.Error("cm(|1200−1050| > 100) should trigger")
	}
	h = hs(histOf("x", [2]float64{1, 1000}), histOf("y", [2]float64{1, 1050}))
	if mustEval(t, cm, h) {
		t.Error("cm(|1000−1050| > 100) should not trigger")
	}
	// Symmetric.
	h = hs(histOf("x", [2]float64{1, 1000}), histOf("y", [2]float64{2, 1150}))
	if !mustEval(t, cm, h) {
		t.Error("cm should be symmetric in its variables")
	}
}

func TestGreaterThan(t *testing.T) {
	a := GreaterThan{CondName: "A", X: "x", Y: "y"}
	h := hs(histOf("x", [2]float64{2, 2100}), histOf("y", [2]float64{1, 2000}))
	if !mustEval(t, a, h) {
		t.Error("A(x=2100, y=2000) should trigger")
	}
	h = hs(histOf("x", [2]float64{1, 2000}), histOf("y", [2]float64{1, 2000}))
	if mustEval(t, a, h) {
		t.Error("A(equal temperatures) should not trigger")
	}
}

func TestPairSetLemma6(t *testing.T) {
	c := NewLemma6Condition("x", "y")
	tests := []struct {
		x, y int64
		want bool
	}{
		{8, 2, true},
		{8, 3, true},
		{8, 4, true},
		{8, 5, false},
		{7, 2, false},
		{9, 3, false},
	}
	for _, tt := range tests {
		h := hs(histOf("x", [2]float64{float64(tt.x), 0}), histOf("y", [2]float64{float64(tt.y), 0}))
		if got := mustEval(t, c, h); got != tt.want {
			t.Errorf("lemma6(%dx,%dy) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestOrCombination(t *testing.T) {
	a := GreaterThan{CondName: "A", X: "x", Y: "y"}
	b := GreaterThan{CondName: "B", X: "y", Y: "x"}
	c := NewOr(a, b)
	if got := c.Name(); got != "A∨B" {
		t.Errorf("Or name = %q, want A∨B", got)
	}
	if got := c.Vars(); len(got) != 2 {
		t.Errorf("Or vars = %v, want two", got)
	}
	if !c.Conservative() {
		t.Error("Or of two conservative conditions should be conservative")
	}
	h := hs(histOf("x", [2]float64{1, 2100}), histOf("y", [2]float64{1, 2000}))
	if !mustEval(t, c, h) {
		t.Error("A∨B should trigger when A does")
	}
	h = hs(histOf("x", [2]float64{1, 2000}), histOf("y", [2]float64{1, 2100}))
	if !mustEval(t, c, h) {
		t.Error("A∨B should trigger when B does")
	}
	h = hs(histOf("x", [2]float64{1, 2000}), histOf("y", [2]float64{1, 2000}))
	if mustEval(t, c, h) {
		t.Error("A∨B should not trigger when neither does")
	}
}

func TestOrAggressiveInfects(t *testing.T) {
	c := NewOr(NewOverheat("x"), NewRiseAggressive("x"))
	if c.Conservative() {
		t.Error("Or with an aggressive operand must be aggressive")
	}
	if got := c.Degree("x"); got != 2 {
		t.Errorf("Or degree = %d, want max of operands (2)", got)
	}
}

func TestConservativizeWrapper(t *testing.T) {
	c := Conservativize{Inner: NewRiseAggressive("x")}
	if !c.Conservative() {
		t.Error("Conservativize must report conservative")
	}
	// Behaves like c3: false across gaps, same as c2 otherwise.
	if mustEval(t, c, hs(histOf("x", [2]float64{7, 700}, [2]float64{5, 400}))) {
		t.Error("conservativized c2 must be false across a gap")
	}
	if !mustEval(t, c, hs(histOf("x", [2]float64{7, 700}, [2]float64{6, 400}))) {
		t.Error("conservativized c2 should trigger on consecutive rise")
	}
}

func TestFuncCondition(t *testing.T) {
	c := Func{
		CondName:       "even",
		VarDegrees:     map[event.VarName]int{"x": 1},
		IsConservative: true,
		Fn: func(h event.HistorySet) bool {
			return h["x"].Latest().SeqNo%2 == 0
		},
	}
	if !mustEval(t, c, hs(histOf("x", [2]float64{4, 0}))) {
		t.Error("even(4) should trigger")
	}
	if mustEval(t, c, hs(histOf("x", [2]float64{3, 0}))) {
		t.Error("even(3) should not trigger")
	}
}

func TestEvalValidation(t *testing.T) {
	c2 := NewRiseAggressive("x")
	if _, err := c2.Eval(hs()); err == nil {
		t.Error("Eval with missing variable should fail")
	}
	if _, err := c2.Eval(hs(histOf("x", [2]float64{1, 0}))); err == nil {
		t.Error("Eval with an under-filled window should fail")
	}
}

func TestClassifyScenario(t *testing.T) {
	tests := []struct {
		name     string
		cond     Condition
		lossless bool
		want     Scenario
	}{
		{name: "lossless any", cond: NewRiseAggressive("x"), lossless: true, want: ScenarioLossless},
		{name: "lossy non-historical", cond: NewOverheat("x"), want: ScenarioNonHistorical},
		{name: "lossy conservative", cond: NewRiseConservative("x"), want: ScenarioConservative},
		{name: "lossy aggressive", cond: NewRiseAggressive("x"), want: ScenarioAggressive},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyScenario(tt.cond, tt.lossless); got != tt.want {
				t.Errorf("ClassifyScenario = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestScenarioString(t *testing.T) {
	for _, s := range []Scenario{ScenarioLossless, ScenarioNonHistorical, ScenarioConservative, ScenarioAggressive} {
		if s.String() == "" {
			t.Errorf("Scenario(%d) has empty name", s)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	if got := MaxDegree(NewTempDiff("x", "y")); got != 1 {
		t.Errorf("MaxDegree(cm) = %d, want 1", got)
	}
	if got := MaxDegree(NewRiseAggressive("x")); got != 2 {
		t.Errorf("MaxDegree(c2) = %d, want 2", got)
	}
}
