package cond

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"condmon/internal/event"
)

// packBaseline is the per-condition oracle: a private window per variable
// at the condition's own degree, evaluated only once all windows are full
// — exactly the gating a dedicated ce.Evaluator applies.
type packBaseline struct {
	c    Condition
	wins map[event.VarName]*event.Window
}

func newPackBaseline(t *testing.T, c Condition) *packBaseline {
	t.Helper()
	b := &packBaseline{c: c, wins: make(map[event.VarName]*event.Window)}
	for _, v := range c.Vars() {
		w, err := event.NewWindow(v, c.Degree(v))
		if err != nil {
			t.Fatal(err)
		}
		b.wins[v] = w
	}
	return b
}

// feed pushes the update (if relevant) and reports whether the condition
// fired, mirroring one evaluator step.
func (b *packBaseline) feed(t *testing.T, u event.Update) bool {
	t.Helper()
	w, ok := b.wins[u.Var]
	if !ok {
		return false
	}
	w.TryPush(u)
	hs := make(event.HistorySet, len(b.wins))
	for v, win := range b.wins {
		if !win.Full() {
			return false
		}
		hs[v] = win.History()
	}
	fired, err := b.c.Eval(hs)
	if err != nil {
		t.Fatalf("baseline %s: %v", b.c.Name(), err)
	}
	return fired
}

// firedNames maps a sorted fired-id slice to member names.
func firedNames(p *Pack, ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = p.MemberName(id)
	}
	return out
}

// TestPackThresholdIndexDifferential drives a churning threshold
// population (above and below, random limits, removals crossing the
// tombstone-compaction threshold, additions crossing the pending-merge
// threshold) and checks every update's fired set against brute-force
// per-condition evaluation.
func TestPackThresholdIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPack("x")
	type member struct {
		id  int32
		c   Threshold
		out bool
	}
	var members []member
	add := func() {
		c := Threshold{
			CondName: fmt.Sprintf("t%04d", len(members)),
			Var:      "x",
			Limit:    float64(rng.Intn(2000)) - 1000,
			Above:    rng.Intn(2) == 0,
		}
		id, ok := p.Add(c)
		if !ok {
			t.Fatalf("Add(%v) rejected", c)
		}
		members = append(members, member{id: id, c: c})
	}
	for i := 0; i < 2500; i++ {
		add()
	}
	w, _ := event.NewWindow("x", 1)
	seq := int64(0)
	check := func() {
		seq++
		val := float64(rng.Intn(2200)) - 1100
		w.TryPush(event.U("x", seq, val))
		fired, err := p.EvalAppend(event.HistorySet{"x": w.History()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool, len(fired))
		for _, id := range fired {
			got[p.MemberName(id)] = true
		}
		want := 0
		for _, m := range members {
			if m.out {
				continue
			}
			fires := val > m.c.Limit
			if !m.c.Above {
				fires = val < m.c.Limit
			}
			if fires {
				want++
			}
			if fires != got[m.c.CondName] {
				t.Fatalf("seq %d val %g: member %s fired=%v, want %v",
					seq, val, m.c.CondName, got[m.c.CondName], fires)
			}
		}
		if len(got) != want {
			t.Fatalf("seq %d: %d distinct fired members, want %d", seq, len(got), want)
		}
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 5; i++ {
			check()
		}
		// Churn: remove a third of the live members, add a fresh batch.
		for i := range members {
			if !members[i].out && rng.Intn(3) == 0 {
				p.Remove(members[i].id)
				members[i].out = true
			}
		}
		for i := 0; i < 400; i++ {
			add()
		}
	}
	if p.Len() == 0 {
		t.Fatal("no live members left; churn schedule broken")
	}
}

// TestPackMixedDifferential runs a single-variable pack holding every
// packable built-in plus parsed expressions against per-condition
// baselines over a lossy-looking (gappy) update stream.
func TestPackMixedDifferential(t *testing.T) {
	conds := []Condition{
		Threshold{CondName: "hot", Var: "x", Limit: 700, Above: true},
		Threshold{CondName: "cold", Var: "x", Limit: 120, Above: false},
		NewRiseAggressive("x"),
		NewRiseConservative("x"),
		Drop{CondName: "dip", Var: "x", Frac: 0.3},
		Drop{CondName: "dipc", Var: "x", Frac: 0.3, Consecutive: true},
		MustParse("jump", "x[0] - x[-1] > 300 && consecutive(x)"),
		MustParse("deep", "x[0] - x[-2] > 100"),
		MustParse("thr", "x[0] > 500"),           // threshold-shaped: joins the index
		MustParse("rthr", "250 > x[0]"),          // reversed threshold shape
		MustParse("ge", "x[0] >= 900"),           // inclusive: stays an expr member
		MustParse("risey", "x[0] - x[-1] > 200"), // shares CSE nodes with c2
	}
	p := NewPack("x")
	baselines := make(map[string]*packBaseline, len(conds))
	for _, c := range conds {
		if _, ok := p.Add(c); !ok {
			t.Fatalf("Add(%s) rejected", c.Name())
		}
		baselines[c.Name()] = newPackBaseline(t, c)
	}
	maxDeg := p.Degree("x")
	if maxDeg != 3 {
		t.Fatalf("pack Degree(x) = %d, want 3 (from deep)", maxDeg)
	}
	w, _ := event.NewWindow("x", maxDeg)
	rng := rand.New(rand.NewSource(11))
	seq := int64(0)
	for i := 0; i < 500; i++ {
		seq += int64(1 + rng.Intn(3)) // gaps exercise consecutive() members
		u := event.U("x", seq, float64(rng.Intn(1000)))
		w.TryPush(u)
		want := make(map[string]bool, len(conds))
		for name, b := range baselines {
			want[name] = b.feed(t, u)
		}
		fired, err := p.EvalAppend(event.HistorySet{"x": w.History()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool, len(fired))
		for _, id := range fired {
			got[p.MemberName(id)] = true
		}
		for name, wantFired := range want {
			if got[name] != wantFired {
				t.Fatalf("update %v: member %s fired=%v, want %v", u, name, got[name], wantFired)
			}
		}
		if len(got) > len(want) {
			t.Fatalf("update %v: unknown members fired: %v", u, got)
		}
	}
}

// TestPackMultiVarDifferential covers two-variable packs: the synthesized
// built-in ASTs (AbsDiff, GreaterThan) and a parsed expression share one
// pack keyed by the {x,y} variable set.
func TestPackMultiVarDifferential(t *testing.T) {
	conds := []Condition{
		NewTempDiff("x", "y"),
		GreaterThan{CondName: "A", X: "x", Y: "y"},
		GreaterThan{CondName: "B", X: "y", Y: "x"},
		MustParse("gap", "abs(x[0] - y[0]) > 100 || x[0] > 950"),
	}
	p := NewPack("x", "y")
	baselines := make(map[string]*packBaseline, len(conds))
	for _, c := range conds {
		if _, ok := p.Add(c); !ok {
			t.Fatalf("Add(%s) rejected", c.Name())
		}
		baselines[c.Name()] = newPackBaseline(t, c)
	}
	wx, _ := event.NewWindow("x", 1)
	wy, _ := event.NewWindow("y", 1)
	rng := rand.New(rand.NewSource(13))
	seqs := map[event.VarName]int64{}
	for i := 0; i < 400; i++ {
		v := event.VarName("x")
		if rng.Intn(2) == 0 {
			v = "y"
		}
		seqs[v]++
		u := event.U(v, seqs[v], float64(rng.Intn(1000)))
		if v == "x" {
			wx.TryPush(u)
		} else {
			wy.TryPush(u)
		}
		want := make(map[string]bool, len(conds))
		for name, b := range baselines {
			want[name] = b.feed(t, u)
		}
		if !wx.Full() || !wy.Full() {
			continue
		}
		hs := event.HistorySet{"x": wx.History(), "y": wy.History()}
		fired, err := p.EvalAppend(hs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool, len(fired))
		for _, id := range fired {
			got[p.MemberName(id)] = true
		}
		for name, wantFired := range want {
			if got[name] != wantFired {
				t.Fatalf("update %v: member %s fired=%v, want %v", u, name, got[name], wantFired)
			}
		}
	}
}

// TestPackCSEInterning pins the sharing: a built-in Rise and the same
// expression parsed from text lower to identical canonical keys, so the
// intern table holds each distinct interior node once.
func TestPackCSEInterning(t *testing.T) {
	p := NewPack("x")
	if _, ok := p.Add(NewRiseAggressive("x")); !ok {
		t.Fatal("Add(Rise) rejected")
	}
	if len(p.intern) != 2 { // (x[0] - x[-1]) and the > comparison
		t.Fatalf("intern table has %d entries after first member, want 2", len(p.intern))
	}
	if _, ok := p.Add(MustParse("same", "x[0] - x[-1] > 200")); !ok {
		t.Fatal("Add(parsed) rejected")
	}
	if len(p.intern) != 2 {
		t.Fatalf("intern table has %d entries after identical member, want still 2", len(p.intern))
	}
	// A conservative variant shares the comparison subtree and adds the
	// conjunction + guard.
	if _, ok := p.Add(NewRiseConservative("x")); !ok {
		t.Fatal("Add(conservative Rise) rejected")
	}
	if len(p.intern) != 3 { // the && conjunction is new; consecutive(x) is a leaf
		t.Fatalf("intern table has %d entries after conservative member, want 3", len(p.intern))
	}
}

// TestPackMemberErrorsAreIsolated checks that one member's runtime error
// (division by zero) neither halts the pass nor suppresses other members.
func TestPackMemberErrorsAreIsolated(t *testing.T) {
	p := NewPack("x")
	if _, ok := p.Add(MustParse("bad", "1 / x[0] > 0")); !ok {
		t.Fatal("Add(bad) rejected")
	}
	okID, ok := p.Add(Threshold{CondName: "zero", Var: "x", Limit: -1, Above: true})
	if !ok {
		t.Fatal("Add(zero) rejected")
	}
	w, _ := event.NewWindow("x", 1)
	w.TryPush(event.U("x", 1, 0)) // x[0]=0 → bad divides by zero, zero fires
	fired, err := p.EvalAppend(event.HistorySet{"x": w.History()}, nil)
	if err == nil {
		t.Fatal("expected division-by-zero error")
	}
	if len(fired) != 1 || fired[0] != okID {
		t.Fatalf("fired = %v, want just the threshold member %d", fired, okID)
	}
}

// TestPackRejections pins the fallback contract: unpackable conditions and
// variable-set mismatches return ok=false and leave the pack unchanged.
func TestPackRejections(t *testing.T) {
	p := NewPack("x")
	if _, ok := p.Add(NewLemma6Condition("x", "y")); ok {
		t.Error("PairSet should not be packable")
	}
	if _, ok := p.Add(Threshold{CondName: "wrongvar", Var: "y", Limit: 1}); ok {
		t.Error("variable-set mismatch should be rejected")
	}
	if _, ok := p.Add(NewTempDiff("x", "y")); ok {
		t.Error("two-variable condition should not join a one-variable pack")
	}
	if p.Len() != 0 || len(p.members) != 0 {
		t.Errorf("rejected Adds changed the pack: len=%d members=%d", p.Len(), len(p.members))
	}
	if !Packable(NewRiseAggressive("x")) || Packable(NewLemma6Condition("x", "y")) {
		t.Error("Packable misclassifies")
	}
}

// TestPackNaNThreshold: a NaN limit cannot live in the sorted index and a
// NaN value must fire nothing, matching strict-comparison semantics.
func TestPackNaNThreshold(t *testing.T) {
	p := NewPack("x")
	if _, ok := p.Add(Threshold{CondName: "nan", Var: "x", Limit: math.NaN(), Above: true}); !ok {
		t.Fatal("NaN-limit threshold rejected; should fall back to an expr member")
	}
	if _, ok := p.Add(Threshold{CondName: "hot", Var: "x", Limit: 10, Above: true}); !ok {
		t.Fatal("Add rejected")
	}
	w, _ := event.NewWindow("x", 1)
	w.TryPush(event.U("x", 1, math.NaN()))
	fired, err := p.EvalAppend(event.HistorySet{"x": w.History()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("NaN value fired %v, want nothing", firedNames(p, fired))
	}
	w.TryPush(event.U("x", 2, 50))
	fired, err = p.EvalAppend(event.HistorySet{"x": w.History()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || p.MemberName(fired[0]) != "hot" {
		t.Fatalf("fired %v, want just hot", firedNames(p, fired))
	}
}

// TestPackRemoveIdempotent pins Remove semantics: unknown ids and double
// removals are no-ops, and removed members never fire again.
func TestPackRemoveIdempotent(t *testing.T) {
	p := NewPack("x")
	id, _ := p.Add(Threshold{CondName: "a", Var: "x", Limit: 0, Above: true})
	id2, _ := p.Add(MustParse("b", "x[0] - x[-1] > 0"))
	p.Remove(id)
	p.Remove(id)
	p.Remove(99)
	p.Remove(-1)
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	if p.MemberName(id) != "" || p.MemberName(id2) != "b" {
		t.Fatal("MemberName after removal wrong")
	}
	w, _ := event.NewWindow("x", 2)
	w.TryPush(event.U("x", 1, 1))
	w.TryPush(event.U("x", 2, 5))
	fired, err := p.EvalAppend(event.HistorySet{"x": w.History()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != id2 {
		t.Fatalf("fired %v, want just member b", fired)
	}
}
