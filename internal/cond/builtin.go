package cond

import (
	"fmt"

	"condmon/internal/event"
)

// Threshold is the paper's condition c1 generalized: "value of Var exceeds
// Limit" (or falls below it, with Above=false). It is non-historical
// (degree 1) and trivially conservative — a degree-1 window has no gaps to
// detect, so the conservative/aggressive distinction is vacuous; we follow
// the paper and treat non-historical conditions as conservative.
type Threshold struct {
	CondName string
	Var      event.VarName
	Limit    float64
	// Above selects "value > Limit" when true and "value < Limit" when
	// false (e.g. a stock-price floor alarm).
	Above bool
}

var _ Condition = Threshold{}

// NewOverheat returns c1 from the paper: "reactor temperature is over 3000
// degrees" for variable v.
func NewOverheat(v event.VarName) Threshold {
	return Threshold{CondName: "c1", Var: v, Limit: 3000, Above: true}
}

// Name implements Condition.
func (c Threshold) Name() string { return c.CondName }

// Vars implements Condition.
func (c Threshold) Vars() []event.VarName { return []event.VarName{c.Var} }

// Degree implements Condition.
func (c Threshold) Degree(v event.VarName) int {
	if v == c.Var {
		return 1
	}
	return 0
}

// Conservative implements Condition.
func (c Threshold) Conservative() bool { return true }

// Eval implements Condition: c1(H) = (Hx[0].value > Limit).
func (c Threshold) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition without touching a HistorySet.
func (c Threshold) EvalView(h event.HistoryView) (bool, error) {
	hv, ok := h.HistoryOf(c.Var)
	if !ok {
		return false, errMissingVar(c.CondName, c.Var)
	}
	if len(hv.Recent) < 1 {
		return false, errShortHistory(c.CondName, c.Var, len(hv.Recent), 1)
	}
	v := hv.Recent[0].Value
	if c.Above {
		return v > c.Limit, nil
	}
	return v < c.Limit, nil
}

// Rise is the paper's c2/c3 family: "value of Var has risen by more than
// Delta since the last reading". With Consecutive=false it is c2
// (aggressive: compares against the last reading *received*); with
// Consecutive=true it is c3 (conservative: additionally requires
// Hx[0].seqno = Hx[-1].seqno + 1, i.e. the last reading *taken at the DM*).
// Degree 2, historical.
type Rise struct {
	CondName    string
	Var         event.VarName
	Delta       float64
	Consecutive bool
}

var _ Condition = Rise{}

// NewRiseAggressive returns c2: "temperature has risen more than 200
// degrees since last reading received".
func NewRiseAggressive(v event.VarName) Rise {
	return Rise{CondName: "c2", Var: v, Delta: 200}
}

// NewRiseConservative returns c3: "temperature has risen more than 200
// degrees since last reading taken at the DM".
func NewRiseConservative(v event.VarName) Rise {
	return Rise{CondName: "c3", Var: v, Delta: 200, Consecutive: true}
}

// Name implements Condition.
func (c Rise) Name() string { return c.CondName }

// Vars implements Condition.
func (c Rise) Vars() []event.VarName { return []event.VarName{c.Var} }

// Degree implements Condition.
func (c Rise) Degree(v event.VarName) int {
	if v == c.Var {
		return 2
	}
	return 0
}

// Conservative implements Condition.
func (c Rise) Conservative() bool { return c.Consecutive }

// Eval implements Condition:
//
//	c2(H) = Hx[0].value − Hx[−1].value > Delta
//	c3(H) = c2(H) AND Hx[0].seqno = Hx[−1].seqno + 1
func (c Rise) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition without touching a HistorySet.
func (c Rise) EvalView(h event.HistoryView) (bool, error) {
	hv, ok := h.HistoryOf(c.Var)
	if !ok {
		return false, errMissingVar(c.CondName, c.Var)
	}
	if len(hv.Recent) < 2 {
		return false, errShortHistory(c.CondName, c.Var, len(hv.Recent), 2)
	}
	cur, prev := hv.Recent[0], hv.Recent[1]
	if c.Consecutive && cur.SeqNo != prev.SeqNo+1 {
		return false, nil
	}
	return cur.Value-prev.Value > c.Delta, nil
}

// Drop mirrors Rise in the other direction: the introduction's "sharp
// price drop" condition, "price dropped more than Frac (e.g. 0.20) between
// two quotes". Aggressive by default (between two *received* quotes, the
// exact scenario of the Section 1 confusion example); set Consecutive for
// the conservative variant.
type Drop struct {
	CondName    string
	Var         event.VarName
	Frac        float64
	Consecutive bool
}

var _ Condition = Drop{}

// NewSharpDrop returns the introduction's condition: a greater than twenty
// percent drop between two consecutive quotes of v, aggressively triggered
// (which is what makes the a1/a2 confusion of Section 1 possible).
func NewSharpDrop(v event.VarName) Drop {
	return Drop{CondName: "sharp-drop", Var: v, Frac: 0.20}
}

// Name implements Condition.
func (c Drop) Name() string { return c.CondName }

// Vars implements Condition.
func (c Drop) Vars() []event.VarName { return []event.VarName{c.Var} }

// Degree implements Condition.
func (c Drop) Degree(v event.VarName) int {
	if v == c.Var {
		return 2
	}
	return 0
}

// Conservative implements Condition.
func (c Drop) Conservative() bool { return c.Consecutive }

// Eval implements Condition: (prev − cur) / prev > Frac.
func (c Drop) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition without touching a HistorySet.
func (c Drop) EvalView(h event.HistoryView) (bool, error) {
	hv, ok := h.HistoryOf(c.Var)
	if !ok {
		return false, errMissingVar(c.CondName, c.Var)
	}
	if len(hv.Recent) < 2 {
		return false, errShortHistory(c.CondName, c.Var, len(hv.Recent), 2)
	}
	cur, prev := hv.Recent[0], hv.Recent[1]
	if c.Consecutive && cur.SeqNo != prev.SeqNo+1 {
		return false, nil
	}
	if prev.Value == 0 {
		return false, nil
	}
	return (prev.Value-cur.Value)/prev.Value > c.Frac, nil
}

// AbsDiff is the paper's cm (Section 5, proof of Theorem 10): "the absolute
// difference between the latest values of X and Y exceeds Limit", e.g. two
// reactors' temperatures diverging. Degree 1 in each variable.
type AbsDiff struct {
	CondName string
	X, Y     event.VarName
	Limit    float64
}

var _ Condition = AbsDiff{}

// NewTempDiff returns cm: |Hx[0].value − Hy[0].value| > 100.
func NewTempDiff(x, y event.VarName) AbsDiff {
	return AbsDiff{CondName: "cm", X: x, Y: y, Limit: 100}
}

// Name implements Condition.
func (c AbsDiff) Name() string { return c.CondName }

// Vars implements Condition.
func (c AbsDiff) Vars() []event.VarName {
	return sortedVars([]event.VarName{c.X, c.Y})
}

// Degree implements Condition.
func (c AbsDiff) Degree(v event.VarName) int {
	if v == c.X || v == c.Y {
		return 1
	}
	return 0
}

// Conservative implements Condition.
func (c AbsDiff) Conservative() bool { return true }

// Eval implements Condition.
func (c AbsDiff) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition without touching a HistorySet.
func (c AbsDiff) EvalView(h event.HistoryView) (bool, error) {
	x, y, err := latestPair(c.CondName, h, c.X, c.Y)
	if err != nil {
		return false, err
	}
	d := x.Value - y.Value
	if d < 0 {
		d = -d
	}
	return d > c.Limit, nil
}

// GreaterThan is Appendix D's condition A/B shape: "X has a higher latest
// value than Y". Degree 1 in each variable. Two GreaterThan conditions with
// swapped variables are the interdependent pair of Example 4.
type GreaterThan struct {
	CondName string
	X, Y     event.VarName
}

var _ Condition = GreaterThan{}

// Name implements Condition.
func (c GreaterThan) Name() string { return c.CondName }

// Vars implements Condition.
func (c GreaterThan) Vars() []event.VarName {
	return sortedVars([]event.VarName{c.X, c.Y})
}

// Degree implements Condition.
func (c GreaterThan) Degree(v event.VarName) int {
	if v == c.X || v == c.Y {
		return 1
	}
	return 0
}

// Conservative implements Condition.
func (c GreaterThan) Conservative() bool { return true }

// Eval implements Condition.
func (c GreaterThan) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition without touching a HistorySet.
func (c GreaterThan) EvalView(h event.HistoryView) (bool, error) {
	x, y, err := latestPair(c.CondName, h, c.X, c.Y)
	if err != nil {
		return false, err
	}
	return x.Value > y.Value, nil
}

// latestPair fetches the latest update of two degree-1 variables from a
// view, sharing the two-variable built-ins' validation.
func latestPair(name string, h event.HistoryView, x, y event.VarName) (event.Update, event.Update, error) {
	hx, ok := h.HistoryOf(x)
	if !ok {
		return event.Update{}, event.Update{}, errMissingVar(name, x)
	}
	if len(hx.Recent) < 1 {
		return event.Update{}, event.Update{}, errShortHistory(name, x, 0, 1)
	}
	hy, ok := h.HistoryOf(y)
	if !ok {
		return event.Update{}, event.Update{}, errMissingVar(name, y)
	}
	if len(hy.Recent) < 1 {
		return event.Update{}, event.Update{}, errShortHistory(name, y, 0, 1)
	}
	return hx.Recent[0], hy.Recent[0], nil
}

// PairSet is a scripted two-variable condition satisfied exactly by an
// enumerated set of (x seqno, y seqno) pairs. It reproduces the proof of
// Lemma 6, whose counter-example needs a condition "satisfied by only three
// pairs of updates: (8x,2y), (8x,3y), (8x,4y)". Degree 1 in each variable.
type PairSet struct {
	CondName string
	X, Y     event.VarName
	// Pairs holds the satisfying (x seqno, y seqno) combinations.
	Pairs map[[2]int64]bool
}

var _ Condition = PairSet{}

// NewLemma6Condition returns the exact condition used in the proof of
// Lemma 6.
func NewLemma6Condition(x, y event.VarName) PairSet {
	return PairSet{
		CondName: "lemma6",
		X:        x,
		Y:        y,
		Pairs: map[[2]int64]bool{
			{8, 2}: true,
			{8, 3}: true,
			{8, 4}: true,
		},
	}
}

// Name implements Condition.
func (c PairSet) Name() string { return c.CondName }

// Vars implements Condition.
func (c PairSet) Vars() []event.VarName {
	return sortedVars([]event.VarName{c.X, c.Y})
}

// Degree implements Condition.
func (c PairSet) Degree(v event.VarName) int {
	if v == c.X || v == c.Y {
		return 1
	}
	return 0
}

// Conservative implements Condition.
func (c PairSet) Conservative() bool { return true }

// Eval implements Condition.
func (c PairSet) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition without touching a HistorySet.
func (c PairSet) EvalView(h event.HistoryView) (bool, error) {
	x, y, err := latestPair(c.CondName, h, c.X, c.Y)
	if err != nil {
		return false, err
	}
	return c.Pairs[[2]int64{x.SeqNo, y.SeqNo}], nil
}

// Or is the disjunction C = A ∨ B of Appendix D, used to reduce a system
// with two co-located conditions to a single-condition system
// (Figure D-8). Its variable set is the union, its degree per variable the
// maximum, and it is conservative only if both operands are (if either
// operand is aggressive, the disjunction can fire across a gap).
type Or struct {
	CondName string
	A, B     Condition
}

var _ Condition = Or{}

// NewOr builds the combined condition with a derived name when none given.
func NewOr(a, b Condition) Or {
	return Or{CondName: a.Name() + "∨" + b.Name(), A: a, B: b}
}

// Name implements Condition.
func (c Or) Name() string { return c.CondName }

// Vars implements Condition.
func (c Or) Vars() []event.VarName {
	set := make(map[event.VarName]struct{})
	for _, v := range c.A.Vars() {
		set[v] = struct{}{}
	}
	for _, v := range c.B.Vars() {
		set[v] = struct{}{}
	}
	out := make([]event.VarName, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return sortedVars(out)
}

// Degree implements Condition.
func (c Or) Degree(v event.VarName) int {
	da, db := c.A.Degree(v), c.B.Degree(v)
	if da > db {
		return da
	}
	return db
}

// Conservative implements Condition.
func (c Or) Conservative() bool {
	return c.A.Conservative() && c.B.Conservative()
}

// Eval implements Condition. Both operands see the same history set; an
// operand only inspects the variables and depths it declares.
func (c Or) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition. Operands that are themselves
// ViewConditions evaluate directly against the view; others fall back to a
// materialized per-operand HistorySet.
func (c Or) EvalView(h event.HistoryView) (bool, error) {
	if err := validateView(c.CondName, h, c.Vars(), c.Degree); err != nil {
		return false, err
	}
	a, err := evalOperand(c.A, h)
	if err != nil {
		return false, fmt.Errorf("cond: %s: left operand: %w", c.CondName, err)
	}
	if a {
		return true, nil
	}
	b, err := evalOperand(c.B, h)
	if err != nil {
		return false, fmt.Errorf("cond: %s: right operand: %w", c.CondName, err)
	}
	return b, nil
}

// evalOperand evaluates a wrapped condition against a view, materializing a
// history set only for conditions lacking a view evaluator (e.g. Func).
// Materialized histories alias the view's storage; the Condition contract
// (no retention, no mutation) makes that safe.
func evalOperand(op Condition, h event.HistoryView) (bool, error) {
	if vc, ok := op.(ViewCondition); ok {
		return vc.EvalView(h)
	}
	vars := op.Vars()
	hs := make(event.HistorySet, len(vars))
	for _, v := range vars {
		if hv, ok := h.HistoryOf(v); ok {
			hs[v] = hv
		}
	}
	return op.Eval(hs)
}

// Func is an escape hatch for tests and experiments: a condition defined by
// an arbitrary evaluation function with explicitly declared metadata. The
// caller is responsible for the declared conservativeness actually holding
// for Fn; the property checkers will expose a lie.
type Func struct {
	CondName       string
	VarDegrees     map[event.VarName]int
	IsConservative bool
	Fn             func(event.HistorySet) bool
}

var _ Condition = Func{}

// Name implements Condition.
func (c Func) Name() string { return c.CondName }

// Vars implements Condition.
func (c Func) Vars() []event.VarName {
	out := make([]event.VarName, 0, len(c.VarDegrees))
	for v := range c.VarDegrees {
		out = append(out, v)
	}
	return sortedVars(out)
}

// Degree implements Condition.
func (c Func) Degree(v event.VarName) int { return c.VarDegrees[v] }

// Conservative implements Condition.
func (c Func) Conservative() bool { return c.IsConservative }

// Eval implements Condition.
func (c Func) Eval(h event.HistorySet) (bool, error) {
	if err := Validate(c, h); err != nil {
		return false, err
	}
	return c.Fn(h), nil
}

// Conservativize wraps any condition with the consecutiveness guard,
// turning an aggressive condition into its conservative variant (the c2 →
// c3 construction of Section 2 applied generically).
type Conservativize struct {
	Inner Condition
}

var _ Condition = Conservativize{}

// Name implements Condition.
func (c Conservativize) Name() string { return c.Inner.Name() + "-conservative" }

// Vars implements Condition.
func (c Conservativize) Vars() []event.VarName { return c.Inner.Vars() }

// Degree implements Condition.
func (c Conservativize) Degree(v event.VarName) int { return c.Inner.Degree(v) }

// Conservative implements Condition.
func (c Conservativize) Conservative() bool { return true }

// Eval implements Condition: false whenever any inspected window has a gap,
// otherwise the inner condition.
func (c Conservativize) Eval(h event.HistorySet) (bool, error) { return c.EvalView(h) }

// EvalView implements ViewCondition.
func (c Conservativize) EvalView(h event.HistoryView) (bool, error) {
	if err := validateView(c.Name(), h, c.Vars(), c.Degree); err != nil {
		return false, err
	}
	for _, v := range c.Vars() {
		if c.Degree(v) > 1 {
			if hv, ok := h.HistoryOf(v); !ok || !hv.Consecutive() {
				return false, nil
			}
		}
	}
	return evalOperand(c.Inner, h)
}

// Every built-in except Func (whose Fn signature requires a HistorySet)
// supports snapshot-free evaluation.
var (
	_ ViewCondition = Threshold{}
	_ ViewCondition = Rise{}
	_ ViewCondition = Drop{}
	_ ViewCondition = AbsDiff{}
	_ ViewCondition = GreaterThan{}
	_ ViewCondition = PairSet{}
	_ ViewCondition = Or{}
	_ ViewCondition = Conservativize{}
)
