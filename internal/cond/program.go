package cond

// Compiled evaluation: Parse lowers the typed AST once into a flat closure
// program so the per-update hot path never walks the tree, never allocates,
// and never re-derives metadata. The lowering
//
//   - resolves every variable reference to a fixed history slot, so
//     evaluation indexes a slice instead of hashing a map per reference;
//   - folds constant subexpressions (arithmetic, comparisons, abs/min/max,
//     and short-circuit operands) at compile time;
//   - specializes call nodes to their fixed arity, removing the per-call
//     argument slice the interpreter allocates;
//   - moves Validate to bind/eval setup: a single degree check per variable
//     replaces the interpreter's per-Eval Vars() copy and map walks.
//
// The tree-walking interpreter in compile.go is retained verbatim as the
// differential-testing oracle (Expr.Eval); fuzz and property tests assert
// the two agree on (fired, error) for every expression.

import (
	"fmt"
	"math"
	"strconv"

	"condmon/internal/event"
)

// ViewCondition is a Condition that can additionally evaluate against a
// read-only event.HistoryView without requiring an immutable HistorySet.
// The CE uses it to evaluate directly over its live windows and only
// materialize a snapshot when the condition actually fires.
type ViewCondition interface {
	Condition
	// EvalView is Eval over a read-only view. Implementations must not
	// retain the view or any History obtained from it.
	EvalView(h event.HistoryView) (bool, error)
}

// Binder is a Condition that can lower itself into a bound Program: a
// reusable, allocation-free evaluator owned by a single goroutine.
type Binder interface {
	Condition
	Bind() *Program
}

// env is the mutable evaluation state threaded through compiled closures.
// Slots are indexed by the condition's sorted variable order. Errors are
// sticky: the first failing node records err and every enclosing node
// unwinds with a zero value.
type env struct {
	name  string
	slots []event.History
	err   error
	// round is the shared-evaluation epoch used by memoized CSE nodes
	// (see Pack): a memo cell is valid only for the round it was computed
	// in. Plain Programs never memoize, so the zero value is inert.
	round uint64
}

// evalFn is one compiled node: booleans are 1 and 0, as in the interpreter.
type evalFn func(*env) float64

// Program is a compiled condition bound to a private environment. Eval is
// allocation-free on the non-error path. A Program is NOT safe for
// concurrent use — each CE replica binds its own (Bind is cheap).
type Program struct {
	name string
	vars []event.VarName
	degs []int
	code evalFn
	env  env
}

// Bind implements Binder: it attaches a fresh environment to the Expr's
// compiled code. The program shares the immutable code with its Expr, so
// binding per replica costs two small allocations, once.
func (c *Expr) Bind() *Program {
	p := &Program{name: c.name, vars: c.vars, degs: c.degs, code: c.code}
	p.env.name = c.name
	p.env.slots = make([]event.History, len(c.vars))
	return p
}

var _ Binder = (*Expr)(nil)
var _ ViewCondition = (*Expr)(nil)

// EvalView implements ViewCondition. It binds a throwaway program per call;
// long-lived evaluators should Bind once and reuse the Program.
func (c *Expr) EvalView(h event.HistoryView) (bool, error) {
	return c.Bind().Eval(h)
}

// Eval runs the compiled program against a history view. The per-variable
// degree check subsumes Validate; it is the only per-call overhead beyond
// the compiled expression itself.
func (p *Program) Eval(h event.HistoryView) (bool, error) {
	if err := p.Prepare(h); err != nil {
		return false, err
	}
	return p.EvalPrepared()
}

// Prepare binds every variable's history from the view and validates
// degrees, priming the program for EvalPrepared. It is the vectorization
// hook: a caller evaluating the program over a run of updates binds once,
// then calls EvalPrepared per update, paying the per-variable lookups and
// degree checks a single time for the whole run.
//
// The bound histories alias the view's storage. Reuse across EvalPrepared
// calls is sound only while each history's slice header is unchanged —
// which holds for ce's live windows once full, since an in-place window
// shift mutates contents but not the header. Any caller whose storage
// moves must re-Prepare.
func (p *Program) Prepare(h event.HistoryView) error {
	for i, v := range p.vars {
		hv, ok := h.HistoryOf(v)
		if !ok {
			return errMissingVar(p.name, v)
		}
		if len(hv.Recent) < p.degs[i] {
			return errShortHistory(p.name, v, len(hv.Recent), p.degs[i])
		}
		p.env.slots[i] = hv
	}
	return nil
}

// EvalPrepared runs the compiled code over the histories bound by the last
// Prepare, skipping the per-variable rebinding entirely.
func (p *Program) EvalPrepared() (bool, error) {
	p.env.err = nil
	got := p.code(&p.env)
	if p.env.err != nil {
		return false, p.env.err
	}
	return got != 0, nil
}

// compiled is a lowering result: either a foldable constant or a closure.
type compiled struct {
	fn  evalFn
	lit bool
	val float64
}

func constC(v float64) compiled { return compiled{lit: true, val: v} }

// eval materializes the node as a closure (constants become trivial loads).
func (c compiled) eval() evalFn {
	if c.lit {
		v := c.val
		return func(*env) float64 { return v }
	}
	return c.fn
}

// compileCtx carries the lowering inputs: slot maps each variable to its
// index in the sorted variable order, degrees is the final per-variable
// degree map (lowering runs after collectDegrees), and intern — when
// non-nil — enables cross-expression common-subexpression elimination:
// interior nodes with the same canonical key compile once and evaluate
// once per round (see Pack).
type compileCtx struct {
	slot    map[event.VarName]int
	degrees map[event.VarName]int
	intern  map[string]compiled
}

// memoCell caches one interned node's value for the current evaluation
// round. Stamps start at zero and rounds at one, so a fresh cell never
// reads as valid.
type memoCell struct {
	stamp uint64
	val   float64
}

// memoize wraps an interned node so that co-compiled expressions sharing
// it evaluate it at most once per round. Values computed under a sticky
// error are not cached: the next reader re-evaluates and reports the
// error under its own condition name, exactly as an unshared compile
// would.
func memoize(c compiled) compiled {
	if c.lit {
		return c
	}
	inner := c.fn
	cell := &memoCell{}
	return compiled{fn: func(e *env) float64 {
		if cell.stamp == e.round {
			return cell.val
		}
		v := inner(e)
		if e.err == nil {
			cell.stamp, cell.val = e.round, v
		}
		return v
	}}
}

// canonKey serializes a subtree into its canonical identity for CSE
// interning. consecutive(v) embeds the resolved degree — its compiled
// code trims the window to the owning condition's degree in v, so two
// conditions of different degree must not share the node.
func canonKey(e expr, degrees map[event.VarName]int) string {
	return string(appendCanonKey(make([]byte, 0, 64), e, degrees))
}

func appendCanonKey(b []byte, e expr, degrees map[event.VarName]int) []byte {
	switch n := e.(type) {
	case numLit:
		b = append(b, 'n')
		b = strconv.AppendFloat(b, n.val, 'g', -1, 64)
	case varRef:
		b = append(b, 'v')
		b = append(b, n.varName...)
		b = append(b, '@')
		b = strconv.AppendInt(b, int64(n.offset), 10)
	case seqnoRef:
		b = append(b, 's')
		b = append(b, n.varName...)
		b = append(b, '@')
		b = strconv.AppendInt(b, int64(n.offset), 10)
	case consecutiveRef:
		b = append(b, 'c')
		b = append(b, n.varName...)
		b = append(b, '#')
		b = strconv.AppendInt(b, int64(degrees[n.varName]), 10)
	case call:
		b = append(b, 'f')
		b = append(b, n.fn...)
		b = append(b, '(')
		for _, a := range n.args {
			b = appendCanonKey(b, a, degrees)
			b = append(b, ',')
		}
		b = append(b, ')')
	case binary:
		b = append(b, '(')
		b = strconv.AppendInt(b, int64(n.op), 10)
		b = append(b, ' ')
		b = appendCanonKey(b, n.l, degrees)
		b = append(b, ' ')
		b = appendCanonKey(b, n.r, degrees)
		b = append(b, ')')
	case unary:
		b = append(b, 'u')
		b = strconv.AppendInt(b, int64(n.op), 10)
		b = appendCanonKey(b, n.x, degrees)
	}
	return b
}

// compileExpr lowers the AST into a closure program. With interning
// enabled, interior nodes (calls, binaries, unaries) are deduplicated by
// canonical key and memoized; leaves stay direct — a slot load is cheaper
// than a memo probe.
func compileExpr(e expr, cx *compileCtx) compiled {
	if cx.intern == nil {
		return compileNode(e, cx)
	}
	switch e.(type) {
	case call, binary, unary:
	default:
		return compileNode(e, cx)
	}
	key := canonKey(e, cx.degrees)
	if c, ok := cx.intern[key]; ok {
		return c
	}
	c := memoize(compileNode(e, cx))
	cx.intern[key] = c
	return c
}

// compileNode lowers one AST node, dispatching children back through
// compileExpr so interning applies at every interior level.
func compileNode(e expr, cx *compileCtx) compiled {
	switch n := e.(type) {
	case numLit:
		return constC(n.val)
	case varRef:
		idx, pos := cx.slot[n.varName], -n.offset
		v := n.varName
		return compiled{fn: func(e *env) float64 {
			recent := e.slots[idx].Recent
			if pos >= len(recent) {
				e.err = fmt.Errorf("cond: %s: history for %q does not reach offset %d", e.name, v, -pos)
				return 0
			}
			return recent[pos].Value
		}}
	case seqnoRef:
		idx, pos := cx.slot[n.varName], -n.offset
		v := n.varName
		return compiled{fn: func(e *env) float64 {
			recent := e.slots[idx].Recent
			if pos >= len(recent) {
				e.err = fmt.Errorf("cond: %s: history for %q does not reach offset %d", e.name, v, -pos)
				return 0
			}
			return float64(recent[pos].SeqNo)
		}}
	case consecutiveRef:
		idx, d := cx.slot[n.varName], cx.degrees[n.varName]
		return compiled{fn: func(e *env) float64 {
			win := e.slots[idx].Recent
			if len(win) > d {
				win = win[:d]
			}
			for i := 0; i+1 < len(win); i++ {
				if win[i].SeqNo != win[i+1].SeqNo+1 {
					return 0
				}
			}
			return 1
		}}
	case call:
		return compileCall(n, cx)
	case binary:
		return compileBinary(n, cx)
	case unary:
		x := compileExpr(n.x, cx)
		if n.op == tokMinus {
			if x.lit {
				return constC(-x.val)
			}
			xf := x.fn
			return compiled{fn: func(e *env) float64 { return -xf(e) }}
		}
		if x.lit {
			return constC(boolToNum(x.val == 0))
		}
		xf := x.fn
		return compiled{fn: func(e *env) float64 { return boolToNum(xf(e) == 0) }}
	default:
		// Unreachable for parser-produced trees; mirror the interpreter's
		// defensive error.
		return compiled{fn: func(e *env) float64 {
			e.err = fmt.Errorf("cond: %s: unknown expression node %T", e.name, e)
			return 0
		}}
	}
}

// compileCall specializes abs/min/max to their fixed arity — no argument
// slice — and folds constant arguments.
func compileCall(n call, cx *compileCtx) compiled {
	switch n.fn {
	case "abs":
		x := compileExpr(n.args[0], cx)
		if x.lit {
			return constC(math.Abs(x.val))
		}
		xf := x.fn
		return compiled{fn: func(e *env) float64 { return math.Abs(xf(e)) }}
	case "min", "max":
		a := compileExpr(n.args[0], cx)
		b := compileExpr(n.args[1], cx)
		pick := math.Min
		if n.fn == "max" {
			pick = math.Max
		}
		if a.lit && b.lit {
			return constC(pick(a.val, b.val))
		}
		af, bf := a.eval(), b.eval()
		return compiled{fn: func(e *env) float64 {
			x := af(e)
			if e.err != nil {
				return 0
			}
			return pick(x, bf(e))
		}}
	default:
		name := n.fn
		return compiled{fn: func(e *env) float64 {
			e.err = fmt.Errorf("cond: %s: unknown function %q", e.name, name)
			return 0
		}}
	}
}

// compileBinary lowers one binary node, folding constant operands and
// preserving the interpreter's short-circuit and error-ordering semantics
// exactly (left operand first; a constant-false && never evaluates its
// right side, matching the interpreter's short circuit).
func compileBinary(n binary, cx *compileCtx) compiled {
	l := compileExpr(n.l, cx)

	// Short-circuit operators fold on their left operand only: the
	// interpreter never evaluates the right side when the left decides.
	switch n.op {
	case tokAnd:
		if l.lit {
			if l.val == 0 {
				return constC(0)
			}
			r := compileExpr(n.r, cx)
			if r.lit {
				return constC(boolToNum(r.val != 0))
			}
			return r
		}
		lf := l.fn
		rf := compileExpr(n.r, cx).eval()
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil || v == 0 {
				return 0
			}
			return rf(e)
		}}
	case tokOr:
		if l.lit {
			if l.val != 0 {
				return constC(1)
			}
			r := compileExpr(n.r, cx)
			if r.lit {
				return constC(boolToNum(r.val != 0))
			}
			return r
		}
		lf := l.fn
		rf := compileExpr(n.r, cx).eval()
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			if v != 0 {
				return 1
			}
			return rf(e)
		}}
	}

	r := compileExpr(n.r, cx)

	// Division folds only when the divisor is a non-zero constant; a
	// constant zero divisor must stay a runtime error to match the
	// interpreter (Parse still succeeds, Eval errors).
	if n.op == tokSlash {
		if r.lit && r.val != 0 {
			if l.lit {
				return constC(l.val / r.val)
			}
			lf, rv := l.fn, r.val
			return compiled{fn: func(e *env) float64 { return lf(e) / rv }}
		}
		lf, rf := l.eval(), r.eval()
		return compiled{fn: func(e *env) float64 {
			lv := lf(e)
			if e.err != nil {
				return 0
			}
			rv := rf(e)
			if e.err != nil {
				return 0
			}
			if rv == 0 {
				e.err = fmt.Errorf("cond: %s: division by zero", e.name)
				return 0
			}
			return lv / rv
		}}
	}

	if l.lit && r.lit {
		if v, ok := foldArith(n.op, l.val, r.val); ok {
			return constC(v)
		}
	}
	lf, rf := l.eval(), r.eval()
	switch n.op {
	case tokPlus:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return v + rf(e)
		}}
	case tokMinus:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return v - rf(e)
		}}
	case tokStar:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return v * rf(e)
		}}
	case tokLT:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return boolToNum(v < rf(e))
		}}
	case tokGT:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return boolToNum(v > rf(e))
		}}
	case tokLE:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return boolToNum(v <= rf(e))
		}}
	case tokGE:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return boolToNum(v >= rf(e))
		}}
	case tokEQ:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return boolToNum(v == rf(e))
		}}
	case tokNE:
		return compiled{fn: func(e *env) float64 {
			v := lf(e)
			if e.err != nil {
				return 0
			}
			return boolToNum(v != rf(e))
		}}
	default:
		op := n.op
		return compiled{fn: func(e *env) float64 {
			e.err = fmt.Errorf("cond: %s: unknown binary operator %v", e.name, op)
			return 0
		}}
	}
}

// foldArith evaluates a constant binary node at compile time. Division is
// handled separately (zero divisors stay runtime errors).
func foldArith(op tokenKind, l, r float64) (float64, bool) {
	switch op {
	case tokPlus:
		return l + r, true
	case tokMinus:
		return l - r, true
	case tokStar:
		return l * r, true
	case tokLT:
		return boolToNum(l < r), true
	case tokGT:
		return boolToNum(l > r), true
	case tokLE:
		return boolToNum(l <= r), true
	case tokGE:
		return boolToNum(l >= r), true
	case tokEQ:
		return boolToNum(l == r), true
	case tokNE:
		return boolToNum(l != r), true
	}
	return 0, false
}
