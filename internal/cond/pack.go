package cond

// Pack is the shared-evaluation engine's compilation unit: a dynamic group
// of conditions over the same variable set, evaluated together in one pass
// per update instead of one pass per condition. It generalizes the
// Appendix D disjunction trick (multicond.Reduce) from "evaluate the OR
// once" to "evaluate the whole group once and report WHICH members fired",
// and adds two sublinearity levers:
//
//   - Threshold members (Threshold values and threshold-shaped DSL
//     expressions like "x[0] > 5") are folded into a sorted limit index.
//     One binary search per update finds every fired member, so per-update
//     cost is O(log n + fired) in the number of threshold members rather
//     than O(n).
//
//   - Expression members are lowered through the CSE-interning compiler
//     (see compileCtx): syntactically identical interior subexpressions
//     compile once and evaluate once per round, shared across members via
//     memo cells.
//
// A Pack is NOT safe for concurrent use: like a bound Program, it is owned
// by a single evaluation goroutine (one CE lane of one shard).

import (
	"math"
	"slices"
	"sort"

	"condmon/internal/event"
)

// thrMergeLimit bounds the unsorted pending buffer of a threshold index.
// Registrations append to pending in O(1); when the buffer fills it is
// sort-merged into the main run, amortizing bulk registration to
// O(n log n) total instead of O(n²) for naive sorted insertion.
const thrMergeLimit = 1024

// thrEntry is one threshold member: fire when the latest value passes
// limit in the index's direction.
type thrEntry struct {
	limit float64
	id    int32
}

// thrIndex is a sorted threshold index for one comparison direction.
// Removal is tombstoned: dead ids are skipped during evaluation and
// physically dropped when they outnumber the live entries.
type thrIndex struct {
	// above selects "value > limit" members; false selects "value < limit".
	above   bool
	sorted  []thrEntry // ascending by limit
	pending []thrEntry // recent additions, unsorted
	dead    map[int32]struct{}
}

func (t *thrIndex) add(limit float64, id int32) {
	t.pending = append(t.pending, thrEntry{limit: limit, id: id})
	if len(t.pending) >= thrMergeLimit {
		t.merge()
	}
}

// merge folds the pending buffer into the sorted run.
func (t *thrIndex) merge() {
	if len(t.pending) == 0 {
		return
	}
	sort.Slice(t.pending, func(i, j int) bool { return t.pending[i].limit < t.pending[j].limit })
	merged := make([]thrEntry, 0, len(t.sorted)+len(t.pending))
	i, j := 0, 0
	for i < len(t.sorted) && j < len(t.pending) {
		if t.sorted[i].limit <= t.pending[j].limit {
			merged = append(merged, t.sorted[i])
			i++
		} else {
			merged = append(merged, t.pending[j])
			j++
		}
	}
	merged = append(merged, t.sorted[i:]...)
	merged = append(merged, t.pending[j:]...)
	t.sorted = merged
	t.pending = t.pending[:0]
}

func (t *thrIndex) remove(id int32) {
	if t.dead == nil {
		t.dead = make(map[int32]struct{})
	}
	t.dead[id] = struct{}{}
	if len(t.dead)*2 > len(t.sorted)+len(t.pending) {
		t.compact()
	}
}

// compact physically drops tombstoned entries.
func (t *thrIndex) compact() {
	keepS := t.sorted[:0]
	for _, e := range t.sorted {
		if _, gone := t.dead[e.id]; !gone {
			keepS = append(keepS, e)
		}
	}
	t.sorted = keepS
	keepP := t.pending[:0]
	for _, e := range t.pending {
		if _, gone := t.dead[e.id]; !gone {
			keepP = append(keepP, e)
		}
	}
	t.pending = keepP
	t.dead = nil
}

// appendFired appends the ids of every member triggered by val. The sorted
// run contributes a binary-searched prefix (above) or suffix (below); the
// pending buffer is scanned linearly, bounded by thrMergeLimit.
func (t *thrIndex) appendFired(val float64, fired []int32) []int32 {
	if math.IsNaN(val) {
		// No strict comparison against NaN holds; the search below would
		// misclassify it, so short-circuit to "nothing fires".
		return fired
	}
	checkDead := len(t.dead) > 0
	emit := func(id int32) []int32 {
		if checkDead {
			if _, gone := t.dead[id]; gone {
				return fired
			}
		}
		return append(fired, id)
	}
	if t.above {
		n := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i].limit >= val })
		for _, e := range t.sorted[:n] {
			fired = emit(e.id)
		}
		for _, e := range t.pending {
			if e.limit < val {
				fired = emit(e.id)
			}
		}
	} else {
		n := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i].limit > val })
		for _, e := range t.sorted[n:] {
			fired = emit(e.id)
		}
		for _, e := range t.pending {
			if e.limit > val {
				fired = emit(e.id)
			}
		}
	}
	return fired
}

// len reports live + tombstoned entries (capacity accounting only).
func (t *thrIndex) size() int { return len(t.sorted) + len(t.pending) }

// packMember is one registered condition inside a Pack.
type packMember struct {
	name string
	// degs is the member's per-variable degree, aligned with Pack.vars; a
	// member is evaluated only once every slot holds at least its degree,
	// mirroring a private evaluator's not-yet-full gating.
	degs []int
	// code is the compiled expression; nil for threshold-index members.
	code evalFn
	// thr is the index holding the member, nil for expression members.
	thr  *thrIndex
	live bool
}

// Pack evaluates a dynamic group of same-variable-set conditions in one
// pass per update. Member ids are monotonically increasing and never
// reused, so ascending id order is registration order.
type Pack struct {
	vars    []event.VarName
	slot    map[event.VarName]int
	maxDegs []int
	env     env
	intern  map[string]compiled
	members []packMember
	// exprIDs lists live expression members in arbitrary order (removal is
	// swap-delete); EvalAppend sorts fired ids so evaluation order never
	// shows through.
	exprIDs []int32
	above   thrIndex
	below   thrIndex
	liveN   int
}

// NewPack creates an empty pack over the given variable set. The set is
// sorted and deduplicated; it is fixed for the pack's lifetime and every
// member's variable set must equal it exactly.
func NewPack(vars ...event.VarName) *Pack {
	vs := make([]event.VarName, len(vars))
	copy(vs, vars)
	vs = sortedVars(vs)
	vs = slices.Compact(vs)
	p := &Pack{
		vars:    vs,
		slot:    make(map[event.VarName]int, len(vs)),
		maxDegs: make([]int, len(vs)),
		intern:  make(map[string]compiled),
		above:   thrIndex{above: true},
		below:   thrIndex{above: false},
	}
	for i, v := range vs {
		p.slot[v] = i
	}
	p.env.slots = make([]event.History, len(vs))
	return p
}

// Vars returns the pack's variable set, sorted.
func (p *Pack) Vars() []event.VarName {
	out := make([]event.VarName, len(p.vars))
	copy(out, p.vars)
	return out
}

// Len returns the number of live members.
func (p *Pack) Len() int { return p.liveN }

// Degree returns the widest degree any member (past or present) has
// required for v — the size the shared window must keep. It never shrinks
// on removal, so a window sized from it stays valid without coordination.
func (p *Pack) Degree(v event.VarName) int {
	i, ok := p.slot[v]
	if !ok {
		return 0
	}
	return p.maxDegs[i]
}

// MemberName returns the condition name registered under id, or "" if the
// id is out of range or the member was removed.
func (p *Pack) MemberName(id int32) string {
	if id < 0 || int(id) >= len(p.members) || !p.members[id].live {
		return ""
	}
	return p.members[id].name
}

// Packable reports whether Add accepts the condition. Unpackable
// conditions (opaque Funcs, scripted PairSets, Or-combinations, …) fall
// back to per-condition evaluation — the heterogeneous-straggler path.
func Packable(c Condition) bool {
	switch c.(type) {
	case Threshold, Rise, Drop, AbsDiff, GreaterThan, *Expr:
		return true
	default:
		return false
	}
}

// packAST lowers a packable condition to a DSL syntax tree equivalent to
// its EvalView. Built-ins are synthesized (Rise's guard becomes
// consecutive(v), Drop's zero-divisor guard becomes a short-circuit
// conjunct), so CSE applies uniformly across built-in and parsed members.
func packAST(c Condition) (expr, bool) {
	switch t := c.(type) {
	case Threshold:
		return thresholdAST(t.Var, t.Limit, t.Above), true
	case Rise:
		cmp := binary{
			op: tokGT,
			l:  binary{op: tokMinus, l: varRef{varName: t.Var}, r: varRef{varName: t.Var, offset: -1}},
			r:  numLit{val: t.Delta},
		}
		if t.Consecutive {
			return binary{op: tokAnd, l: cmp, r: consecutiveRef{varName: t.Var}}, true
		}
		return cmp, true
	case Drop:
		prev := varRef{varName: t.Var, offset: -1}
		ratio := binary{
			op: tokGT,
			l: binary{op: tokSlash,
				l: binary{op: tokMinus, l: prev, r: varRef{varName: t.Var}},
				r: prev},
			r: numLit{val: t.Frac},
		}
		guarded := binary{op: tokAnd, l: binary{op: tokNE, l: prev, r: numLit{}}, r: ratio}
		if t.Consecutive {
			return binary{op: tokAnd, l: consecutiveRef{varName: t.Var}, r: guarded}, true
		}
		return guarded, true
	case AbsDiff:
		return binary{
			op: tokGT,
			l:  call{fn: "abs", args: []expr{binary{op: tokMinus, l: varRef{varName: t.X}, r: varRef{varName: t.Y}}}},
			r:  numLit{val: t.Limit},
		}, true
	case GreaterThan:
		return binary{op: tokGT, l: varRef{varName: t.X}, r: varRef{varName: t.Y}}, true
	case *Expr:
		return t.root, true
	default:
		return nil, false
	}
}

// thresholdAST is the expression form of a Threshold, used when the limit
// cannot live in the index (NaN).
func thresholdAST(v event.VarName, limit float64, above bool) expr {
	op := tokLT
	if above {
		op = tokGT
	}
	return binary{op: op, l: varRef{varName: v}, r: numLit{val: limit}}
}

// thresholdShape recognizes index-eligible comparisons: a strict
// comparison between the latest value of a variable and a constant, in
// either operand order. Inclusive comparisons stay expression members —
// the index implements strict semantics only.
func thresholdShape(root expr) (limit float64, above bool, ok bool) {
	b, isBin := root.(binary)
	if !isBin {
		return 0, false, false
	}
	if v, okL := b.l.(varRef); okL && v.offset == 0 {
		if n, okR := b.r.(numLit); okR {
			switch b.op {
			case tokGT:
				return n.val, true, true
			case tokLT:
				return n.val, false, true
			}
		}
	}
	if n, okL := b.l.(numLit); okL {
		if v, okR := b.r.(varRef); okR && v.offset == 0 {
			switch b.op {
			case tokLT: // limit < x[0]  ≡  x[0] > limit
				return n.val, true, true
			case tokGT: // limit > x[0]  ≡  x[0] < limit
				return n.val, false, true
			}
		}
	}
	return 0, false, false
}

// Add registers a condition with the pack and returns its member id. It
// returns ok=false — leaving the pack unchanged — when the condition is
// not packable or its variable set differs from the pack's; the caller
// then falls back to a private per-condition evaluator.
func (p *Pack) Add(c Condition) (int32, bool) {
	root, ok := packAST(c)
	if !ok {
		return 0, false
	}
	cv := c.Vars()
	if len(cv) != len(p.vars) {
		return 0, false
	}
	for i, v := range cv {
		if v != p.vars[i] {
			return 0, false
		}
	}
	id := int32(len(p.members))
	m := packMember{name: c.Name(), live: true, degs: make([]int, len(p.vars))}
	degrees := make(map[event.VarName]int, len(p.vars))
	for i, v := range p.vars {
		m.degs[i] = c.Degree(v)
		degrees[v] = m.degs[i]
	}
	if limit, above, thr := thresholdShape(root); thr && !math.IsNaN(limit) {
		idx := &p.below
		if above {
			idx = &p.above
		}
		idx.add(limit, id)
		m.thr = idx
	} else {
		cx := &compileCtx{slot: p.slot, degrees: degrees, intern: p.intern}
		m.code = compileExpr(root, cx).eval()
		p.exprIDs = append(p.exprIDs, id)
	}
	for i := range m.degs {
		if m.degs[i] > p.maxDegs[i] {
			p.maxDegs[i] = m.degs[i]
		}
	}
	p.members = append(p.members, m)
	p.liveN++
	return id, true
}

// Remove unregisters a member. Removing an unknown or already-removed id
// is a no-op. Ids are never reused.
func (p *Pack) Remove(id int32) {
	if id < 0 || int(id) >= len(p.members) || !p.members[id].live {
		return
	}
	m := &p.members[id]
	m.live = false
	if m.thr != nil {
		m.thr.remove(id)
		m.thr = nil
	} else {
		for i, eid := range p.exprIDs {
			if eid == id {
				last := len(p.exprIDs) - 1
				p.exprIDs[i] = p.exprIDs[last]
				p.exprIDs = p.exprIDs[:last]
				break
			}
		}
		m.code = nil
	}
	m.degs = nil
	p.liveN--
}

// EvalAppend evaluates every member against the view and appends the ids
// of those that fired, sorted ascending (= registration order). A member
// whose per-variable degree is not yet met is skipped, exactly as a
// private evaluator would skip evaluation while its windows fill. Member
// evaluation errors do not stop the pass: remaining members still
// evaluate, and the first error is returned alongside the fired set.
func (p *Pack) EvalAppend(h event.HistoryView, fired []int32) ([]int32, error) {
	for i, v := range p.vars {
		hv, ok := h.HistoryOf(v)
		if !ok {
			return fired, errMissingVar("pack", v)
		}
		p.env.slots[i] = hv
	}
	p.env.round++
	start := len(fired)
	if len(p.vars) == 1 && (p.above.size() > 0 || p.below.size() > 0) {
		if len(p.env.slots[0].Recent) > 0 {
			val := p.env.slots[0].Recent[0].Value
			fired = p.above.appendFired(val, fired)
			fired = p.below.appendFired(val, fired)
		}
	}
	var firstErr error
	for _, id := range p.exprIDs {
		m := &p.members[id]
		ready := true
		for i, d := range m.degs {
			if len(p.env.slots[i].Recent) < d {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		p.env.name = m.name
		p.env.err = nil
		got := m.code(&p.env)
		if p.env.err != nil {
			if firstErr == nil {
				firstErr = p.env.err
			}
			continue
		}
		if got != 0 {
			fired = append(fired, id)
		}
	}
	tail := fired[start:]
	slices.Sort(tail)
	return fired, firstErr
}
