package cond

import (
	"math/rand"
	"testing"

	"condmon/internal/event"
)

func TestFormatCanonicalOutput(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"x[0]>3000", "x[0] > 3000"},
		{"x[0] - x[-1] > 200 && consecutive(x)", "x[0] - x[-1] > 200 && consecutive(x)"},
		{"abs(x[0] - y[0]) > 100", "abs(x[0] - y[0]) > 100"},
		{"(x[0] + 2) * 3 == 18", "(x[0] + 2) * 3 == 18"},
		{"x[0] + 2 * 3 == 10", "x[0] + 2 * 3 == 10"},
		{"!(x[0] > 5)", "!x[0] > 5"}, // '!' binds looser than comparison in this DSL
		{"!(x[0] > 1 && x[-1] > 2)", "!(x[0] > 1 && x[-1] > 2)"},
		{"seqno(x, 0) == seqno(x, -1) + 1", "seqno(x, 0) == seqno(x, -1) + 1"},
		{"min(x[0], max(y[0], 1)) >= 0", "min(x[0], max(y[0], 1)) >= 0"},
		{"-x[0] < 0", "-x[0] < 0"},
		{"x[0] - (x[-1] - x[-2]) > 0", "x[0] - (x[-1] - x[-2]) > 0"},
		{"x[0] > 1 && x[0] > 2 || x[0] > 3", "x[0] > 1 && x[0] > 2 || x[0] > 3"},
		{"x[0] > 1 && (x[0] > 2 || x[0] > 3)", "x[0] > 1 && (x[0] > 2 || x[0] > 3)"},
	}
	for _, tt := range tests {
		c, err := Parse("fmt", tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if got := c.Format(); got != tt.want {
			t.Errorf("Format(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	// Formatting then re-parsing must preserve evaluation behavior,
	// metadata, and be idempotent.
	sources := []string{
		"x[0] > 3000",
		"x[0] - x[-1] > 200 && consecutive(x)",
		"x[0] - x[-2] > 200",
		"abs(x[0] - y[0]) > 100 || y[0] / 2 >= x[0]",
		"!(x[0] > 1 && x[-1] > 2) || seqno(x, 0) != 5",
		"min(x[0], y[0]) == max(x[0], -y[0])",
		"(x[0] - 1) * (x[0] + 1) > x[0] * x[0] - 2",
	}
	r := rand.New(rand.NewSource(61))
	for _, src := range sources {
		orig, err := Parse("orig", src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		formatted := orig.Format()
		re, err := Parse("re", formatted)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", formatted, err)
		}
		if re.Format() != formatted {
			t.Errorf("Format not idempotent: %q → %q", formatted, re.Format())
		}
		if re.Conservative() != orig.Conservative() || Historical(re) != Historical(orig) {
			t.Errorf("%q: classification changed after round trip", src)
		}
		for _, v := range orig.Vars() {
			if re.Degree(v) != orig.Degree(v) {
				t.Errorf("%q: degree of %s changed after round trip", src, v)
			}
		}
		// Behavioral equivalence on random histories.
		for trial := 0; trial < 50; trial++ {
			h := make(event.HistorySet)
			for _, v := range orig.Vars() {
				d := orig.Degree(v)
				hist := event.History{Var: v}
				seqNo := int64(10)
				for i := 0; i < d; i++ {
					hist.Recent = append(hist.Recent, event.U(v, seqNo, float64(r.Intn(21)-10)))
					seqNo -= int64(1 + r.Intn(2))
				}
				h[v] = hist
			}
			got, gotErr := re.Eval(h)
			want, wantErr := orig.Eval(h)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%q: eval error mismatch: %v vs %v", src, gotErr, wantErr)
			}
			if gotErr == nil && got != want {
				t.Fatalf("%q: behavior changed after round trip on %v", src, h)
			}
		}
	}
}
