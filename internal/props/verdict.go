package props

import (
	"fmt"

	"condmon/internal/ad"
	"condmon/internal/event"
	"condmon/internal/sim"
)

// Verdict records which of the three properties held for every alert
// sequence a system configuration produced. A property "holds" for a system
// only if it holds on all runs and all arrival orders; a single
// counterexample refutes it (Section 3.1: "R is said to have each of the
// following properties if every alert sequence A it produces satisfies the
// corresponding criterion").
type Verdict struct {
	Ordered    bool
	Complete   bool
	Consistent bool
}

// String renders the verdict as the paper's ✓/✗ triple (Ord, Comp, Cons).
func (v Verdict) String() string {
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "✗"
	}
	return fmt.Sprintf("ord=%s comp=%s cons=%s", mark(v.Ordered), mark(v.Complete), mark(v.Consistent))
}

// And intersects two verdicts (property holds only if it held in both).
func (v Verdict) And(o Verdict) Verdict {
	return Verdict{
		Ordered:    v.Ordered && o.Ordered,
		Complete:   v.Complete && o.Complete,
		Consistent: v.Consistent && o.Consistent,
	}
}

// AllVerdict is the identity for And.
func AllVerdict() Verdict { return Verdict{Ordered: true, Complete: true, Consistent: true} }

// Counterexample captures an output that violated a property, for
// diagnostics and for EXPERIMENTS.md.
type Counterexample struct {
	Property string
	// Arrival is the merged alert stream the AD observed.
	Arrival []event.Alert
	// Output is the filtered sequence A that violates the property.
	Output []event.Alert
}

// FilterFactory produces a fresh filter instance; verdict checks need one
// per arrival order since filters are stateful.
type FilterFactory func() ad.Filter

// CheckSingleVarRun evaluates the three properties of a single-variable
// run under the given AD algorithm, quantifying over every arrival order of
// the two alert streams. It returns the verdict plus one counterexample per
// violated property.
func CheckSingleVarRun(run *sim.SingleVarRun, newFilter FilterFactory) (Verdict, []Counterexample, error) {
	var (
		v       = AllVerdict()
		exs     []Counterexample
		vars    = run.Cond.Vars()
		wantSet = event.KeySet(run.NOutput)
	)
	err := sim.ForEachArrival(run.A1, run.A2, func(merged []event.Alert) bool {
		out := ad.Run(newFilter(), merged)
		if v.Ordered && !Ordered(out, vars) {
			v.Ordered = false
			exs = append(exs, Counterexample{Property: "orderedness", Arrival: merged, Output: out})
		}
		if v.Complete {
			if !keySetEqualTo(out, wantSet) {
				v.Complete = false
				exs = append(exs, Counterexample{Property: "completeness", Arrival: merged, Output: out})
			}
		}
		if v.Consistent && !ConsistentSingle(out) {
			v.Consistent = false
			exs = append(exs, Counterexample{Property: "consistency", Arrival: merged, Output: out})
		}
		return v.Ordered || v.Complete || v.Consistent
	})
	if err != nil {
		return Verdict{}, nil, err
	}
	return v, exs, nil
}

// CheckMultiVarRun evaluates the three properties of a multi-variable run
// under the given AD algorithm, quantifying over arrival orders. The
// completeness and consistency criteria are the Appendix C definitions over
// the combined per-variable streams.
func CheckMultiVarRun(run *sim.MultiVarRun, newFilter FilterFactory) (Verdict, []Counterexample, error) {
	combined, err := run.CombinedStreams()
	if err != nil {
		return Verdict{}, nil, err
	}
	var (
		v    = AllVerdict()
		exs  []Counterexample
		vars = run.Cond.Vars()
	)
	var checkErr error
	err = sim.ForEachArrival(run.A1, run.A2, func(merged []event.Alert) bool {
		out := ad.Run(newFilter(), merged)
		if v.Ordered && !Ordered(out, vars) {
			v.Ordered = false
			exs = append(exs, Counterexample{Property: "orderedness", Arrival: merged, Output: out})
		}
		if v.Complete {
			complete, cerr := CompleteMulti(out, run.Cond, combined)
			if cerr != nil {
				checkErr = cerr
				return false
			}
			if !complete {
				v.Complete = false
				exs = append(exs, Counterexample{Property: "completeness", Arrival: merged, Output: out})
			}
		}
		if v.Consistent {
			consistent, cerr := ConsistentMulti(out, run.Cond, combined)
			if cerr != nil {
				checkErr = cerr
				return false
			}
			if !consistent {
				v.Consistent = false
				exs = append(exs, Counterexample{Property: "consistency", Arrival: merged, Output: out})
			}
		}
		return v.Ordered || v.Complete || v.Consistent
	})
	if err != nil {
		return Verdict{}, nil, err
	}
	if checkErr != nil {
		return Verdict{}, nil, checkErr
	}
	return v, exs, nil
}

// keySetEqualTo compares Φ(alerts) against a precomputed key set.
func keySetEqualTo(alerts []event.Alert, want map[string]struct{}) bool {
	got := event.KeySet(alerts)
	if len(got) != len(want) {
		return false
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return false
		}
	}
	return true
}
