package props

import (
	"math/rand"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/sim"
)

func alert1(v event.VarName, n int64) event.Alert {
	return event.Alert{Cond: "c", Histories: event.HistorySet{
		v: {Var: v, Recent: []event.Update{event.U(v, n, 0)}},
	}}
}

func alertWin(v event.VarName, seqNos ...int64) event.Alert {
	h := event.History{Var: v}
	for _, n := range seqNos {
		h.Recent = append(h.Recent, event.U(v, n, float64(n)))
	}
	return event.Alert{Cond: "c", Histories: event.HistorySet{v: h}}
}

func alert2(x, y int64) event.Alert {
	return event.Alert{Cond: "cm", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", x, 0)}},
		"y": {Var: "y", Recent: []event.Update{event.U("y", y, 0)}},
	}}
}

func TestOrdered(t *testing.T) {
	vars := []event.VarName{"x"}
	if !Ordered([]event.Alert{alert1("x", 1), alert1("x", 1), alert1("x", 3)}, vars) {
		t.Error("non-decreasing sequence should be ordered")
	}
	if Ordered([]event.Alert{alert1("x", 2), alert1("x", 1)}, vars) {
		t.Error("⟨2,1⟩ should be unordered")
	}
	if !Ordered(nil, vars) {
		t.Error("empty output is trivially ordered")
	}
	// Multi-variable: ordered must hold per variable.
	mv := []event.VarName{"x", "y"}
	if Ordered([]event.Alert{alert2(2, 1), alert2(1, 2)}, mv) {
		t.Error("x-inversion should be unordered")
	}
	if !Ordered([]event.Alert{alert2(1, 1), alert2(2, 1), alert2(2, 2)}, mv) {
		t.Error("per-variable non-decreasing should be ordered")
	}
}

func TestAlertsSubsequence(t *testing.T) {
	a, b, c := alert1("x", 1), alert1("x", 2), alert1("x", 3)
	all := []event.Alert{a, b, c}
	if !AlertsSubsequence([]event.Alert{a, c}, all) {
		t.Error("⟨a,c⟩ ⊑ ⟨a,b,c⟩")
	}
	if AlertsSubsequence([]event.Alert{c, a}, all) {
		t.Error("⟨c,a⟩ must not be a subsequence (order matters)")
	}
	if !AlertsSubsequence(nil, all) {
		t.Error("empty is a subsequence of anything")
	}
	if AlertsSubsequence(all, []event.Alert{a}) {
		t.Error("longer sequence cannot be a subsequence")
	}
}

func TestConsistentSingleOnPaperTheorem4(t *testing.T) {
	// Theorem 4 counter-example: A = {alert(2 on window 1,2), alert(3 on
	// window 1,3)} — update 2 is asserted received by the first and missed
	// by the second. Inconsistent.
	a2 := alertWin("x", 2, 1)
	a3 := alertWin("x", 3, 1)
	if ConsistentSingle([]event.Alert{a2, a3}) {
		t.Error("Theorem 4's A must be inconsistent")
	}
	// Each alone is consistent.
	if !ConsistentSingle([]event.Alert{a2}) || !ConsistentSingle([]event.Alert{a3}) {
		t.Error("each alert alone is consistent")
	}
}

func TestConsistentSingleMatchesExhaustive(t *testing.T) {
	// Randomized cross-check of the linear checker against brute force on
	// c2 (aggressive, degree 2) scenarios.
	c := cond.NewRiseAggressive("x")
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		u := randomStream(r, 5)
		run, err := sim.RunSingleVar(c, u, link.Bernoulli{P: 0.4}, link.Bernoulli{P: 0.4}, r)
		if err != nil {
			t.Fatalf("RunSingleVar: %v", err)
		}
		merged := sim.RandomArrival(run.A1, run.A2, r)
		out := ad.Run(ad.NewAD1(), merged)

		got := ConsistentSingle(out)
		want, err := ConsistentSingleExhaustive(out, c, run.U1, run.U2)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: linear checker says %v, exhaustive says %v\nU1=%v\nU2=%v\nA=%v",
				trial, got, want, run.U1, run.U2, out)
		}
	}
}

func TestCompleteSingle(t *testing.T) {
	c := cond.NewOverheat("x")
	u := []event.Update{event.U("x", 1, 2900), event.U("x", 2, 3100), event.U("x", 3, 3200)}
	run, err := sim.RunSingleVar(c, u, link.None{}, link.NewDropSeqNos("x", 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	// AD-1 passes a1(2x), a3(3x), filtering duplicate a2: complete.
	complete, err := CompleteSingle([]event.Alert{run.A1[0], run.A2[0]}, c, run.U1, run.U2)
	if err != nil {
		t.Fatalf("CompleteSingle: %v", err)
	}
	if !complete {
		t.Error("{a(2x), a(3x)} should be complete for Example 1")
	}
	// Dropping a(2x) makes it incomplete.
	complete, err = CompleteSingle([]event.Alert{run.A2[0]}, c, run.U1, run.U2)
	if err != nil {
		t.Fatalf("CompleteSingle: %v", err)
	}
	if complete {
		t.Error("{a(3x)} alone must be incomplete")
	}
}

func TestCheckSingleVarRunLossless(t *testing.T) {
	// Theorem 1: lossless links, any condition, AD-1 → ordered and
	// complete.
	c := cond.NewRiseAggressive("x")
	u := rampStream(6, 250) // every step rises 250 → alerts at 2..6
	run, err := sim.RunSingleVar(c, u, link.None{}, link.None{}, nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	v, _, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
	if err != nil {
		t.Fatalf("CheckSingleVarRun: %v", err)
	}
	if !v.Ordered || !v.Complete || !v.Consistent {
		t.Errorf("lossless AD-1 verdict = %v, want all ✓", v)
	}
}

func TestCheckSingleVarRunTheorem2(t *testing.T) {
	// Theorem 2's proof example: c1, U = ⟨1(3100), 2(3500)⟩, CE2 misses 1.
	// Complete but unordered under AD-1.
	c := cond.NewOverheat("x")
	u := []event.Update{event.U("x", 1, 3100), event.U("x", 2, 3500)}
	run, err := sim.RunSingleVar(c, u, link.None{}, link.NewDropSeqNos("x", 1), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	v, exs, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
	if err != nil {
		t.Fatalf("CheckSingleVarRun: %v", err)
	}
	if v.Ordered {
		t.Error("Theorem 2: system must be unordered")
	}
	if !v.Complete || !v.Consistent {
		t.Errorf("Theorem 2: system must be complete and consistent, got %v", v)
	}
	if len(exs) == 0 {
		t.Error("expected an orderedness counterexample")
	}
}

func TestCheckSingleVarRunTheorem3(t *testing.T) {
	// Theorem 3's proof example: c3, U1 = ⟨1(1000), 2(1500)⟩,
	// U2 = ⟨3(2000), 4(2500)⟩ → consistent, not ordered, not complete.
	c := cond.NewRiseConservative("x")
	u := []event.Update{
		event.U("x", 1, 1000), event.U("x", 2, 1500),
		event.U("x", 3, 2000), event.U("x", 4, 2500),
	}
	run, err := sim.RunSingleVar(c, u,
		link.NewDropSeqNos("x", 3, 4), link.NewDropSeqNos("x", 1, 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	v, _, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
	if err != nil {
		t.Fatalf("CheckSingleVarRun: %v", err)
	}
	if v.Ordered || v.Complete || !v.Consistent {
		t.Errorf("Theorem 3 verdict = %v, want ✗✗✓", v)
	}
}

func TestCheckSingleVarRunTheorem4(t *testing.T) {
	// Theorem 4's proof example: c2, U = ⟨1(400),2(700),3(720)⟩, CE2
	// misses 2 → inconsistent under AD-1.
	c := cond.NewRiseAggressive("x")
	u := []event.Update{event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)}
	run, err := sim.RunSingleVar(c, u, link.None{}, link.NewDropSeqNos("x", 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	v, _, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
	if err != nil {
		t.Fatalf("CheckSingleVarRun: %v", err)
	}
	if v.Ordered || v.Consistent {
		t.Errorf("Theorem 4 verdict = %v, want unordered and inconsistent", v)
	}
}

func TestCheckSingleVarRunAD2RestoresOrder(t *testing.T) {
	// Same Theorem 4 scenario under AD-4: ordered and consistent.
	c := cond.NewRiseAggressive("x")
	u := []event.Update{event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)}
	run, err := sim.RunSingleVar(c, u, link.None{}, link.NewDropSeqNos("x", 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	v, _, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD4("x") })
	if err != nil {
		t.Fatalf("CheckSingleVarRun: %v", err)
	}
	if !v.Ordered || !v.Consistent {
		t.Errorf("AD-4 verdict = %v, want ordered and consistent", v)
	}
}

func TestTheorem10CounterExample(t *testing.T) {
	// Theorem 10: two-variable AD-1 system is neither ordered nor
	// consistent. Exact scenario from the proof.
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 1000), event.U("x", 2, 1200)},
		"y": {event.U("y", 1, 1050), event.U("y", 2, 1150)},
	}
	run, err := sim.RunMultiVar(cond.NewTempDiff("x", "y"), streams,
		[2]map[event.VarName]link.Model{},
		[2]sim.Interleaver{sim.Sequential, sim.SequentialReverse}, nil)
	if err != nil {
		t.Fatalf("RunMultiVar: %v", err)
	}
	v, _, err := CheckMultiVarRun(run, func() ad.Filter { return ad.NewAD1() })
	if err != nil {
		t.Fatalf("CheckMultiVarRun: %v", err)
	}
	if v.Ordered {
		t.Error("Theorem 10: system must be unordered")
	}
	if v.Consistent {
		t.Error("Theorem 10: system must be inconsistent")
	}
	if v.Complete {
		t.Error("Theorem 10: system must be incomplete")
	}
}

func TestTheorem10UnderAD5(t *testing.T) {
	// The same scenario under AD-5 is ordered and consistent (Table 3,
	// lossless row) but incomplete (Lemma 6 in general; here the second
	// alert is dropped).
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 1000), event.U("x", 2, 1200)},
		"y": {event.U("y", 1, 1050), event.U("y", 2, 1150)},
	}
	run, err := sim.RunMultiVar(cond.NewTempDiff("x", "y"), streams,
		[2]map[event.VarName]link.Model{},
		[2]sim.Interleaver{sim.Sequential, sim.SequentialReverse}, nil)
	if err != nil {
		t.Fatalf("RunMultiVar: %v", err)
	}
	v, _, err := CheckMultiVarRun(run, func() ad.Filter { return ad.NewAD5("x", "y") })
	if err != nil {
		t.Fatalf("CheckMultiVarRun: %v", err)
	}
	if !v.Ordered || !v.Consistent {
		t.Errorf("AD-5 verdict = %v, want ordered and consistent", v)
	}
}

func TestLemma6CounterExample(t *testing.T) {
	// Lemma 6: condition satisfied only by (8x,2y), (8x,3y), (8x,4y).
	// CE1 sees ⟨8x,2y,9x,3y,4y⟩ → a(8x,2y); CE2 sees ⟨2y,3y,7x,4y,8x⟩ →
	// a(8x,4y). No interleaving UV yields exactly these two alerts, so the
	// output {a(8x,2y), a(8x,4y)} is incomplete.
	c := cond.NewLemma6Condition("x", "y")
	a1, err := ce.T(c, []event.Update{
		event.U("x", 8, 0), event.U("y", 2, 0), event.U("x", 9, 0),
		event.U("y", 3, 0), event.U("y", 4, 0),
	})
	if err != nil {
		t.Fatalf("T(CE1): %v", err)
	}
	a2, err := ce.T(c, []event.Update{
		event.U("y", 2, 0), event.U("y", 3, 0), event.U("x", 7, 0),
		event.U("y", 4, 0), event.U("x", 8, 0),
	})
	if err != nil {
		t.Fatalf("T(CE2): %v", err)
	}
	if len(a1) != 1 || a1[0].MustSeqNo("x") != 8 || a1[0].MustSeqNo("y") != 2 {
		t.Fatalf("A1 = %v, want ⟨a(8x,2y)⟩", a1)
	}
	if len(a2) != 1 || a2[0].MustSeqNo("x") != 8 || a2[0].MustSeqNo("y") != 4 {
		t.Fatalf("A2 = %v, want ⟨a(8x,4y)⟩", a2)
	}

	combined := map[event.VarName][]event.Update{
		"x": {event.U("x", 7, 0), event.U("x", 8, 0), event.U("x", 9, 0)},
		"y": {event.U("y", 2, 0), event.U("y", 3, 0), event.U("y", 4, 0)},
	}
	got, err := CompleteMulti([]event.Alert{a1[0], a2[0]}, c, combined)
	if err != nil {
		t.Fatalf("CompleteMulti: %v", err)
	}
	if got {
		t.Error("Lemma 6: {a(8x,2y), a(8x,4y)} must be incomplete")
	}
	// But including the middle alert a(8x,3y) IS achievable.
	a3 := event.Alert{Cond: c.Name(), Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 8, 0)}},
		"y": {Var: "y", Recent: []event.Update{event.U("y", 3, 0)}},
	}}
	got, err = CompleteMulti([]event.Alert{a1[0], a3, a2[0]}, c, combined)
	if err != nil {
		t.Fatalf("CompleteMulti: %v", err)
	}
	if !got {
		t.Error("with a(8x,3y) included the set should be achievable")
	}
}

func TestConsistentMultiMatchesExhaustive(t *testing.T) {
	// Randomized cross-check on the two-variable degree-1 condition cm.
	c := cond.NewTempDiff("x", "y")
	r := rand.New(rand.NewSource(12))
	interleavers := []sim.Interleaver{sim.Sequential, sim.SequentialReverse, sim.RoundRobin, sim.RandomInterleave}
	for trial := 0; trial < 60; trial++ {
		streams := map[event.VarName][]event.Update{
			"x": randomValuedStream(r, "x", 3),
			"y": randomValuedStream(r, "y", 3),
		}
		loss := [2]map[event.VarName]link.Model{
			{"x": link.Bernoulli{P: 0.3}, "y": link.Bernoulli{P: 0.3}},
			{"x": link.Bernoulli{P: 0.3}, "y": link.Bernoulli{P: 0.3}},
		}
		run, err := sim.RunMultiVar(c, streams, loss,
			[2]sim.Interleaver{interleavers[trial%4], interleavers[(trial+1)%4]}, r)
		if err != nil {
			t.Fatalf("RunMultiVar: %v", err)
		}
		merged := sim.RandomArrival(run.A1, run.A2, r)
		out := ad.Run(ad.NewAD1(), merged)
		combined, err := run.CombinedStreams()
		if err != nil {
			t.Fatalf("CombinedStreams: %v", err)
		}
		got, err := ConsistentMulti(out, c, combined)
		if err != nil {
			t.Fatalf("ConsistentMulti: %v", err)
		}
		want, err := ConsistentMultiExhaustive(out, c, combined)
		if err != nil {
			t.Fatalf("ConsistentMultiExhaustive: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: graph checker says %v, exhaustive says %v\nA=%v\ncombined=%v",
				trial, got, want, out, combined)
		}
	}
}

func TestVerdictHelpers(t *testing.T) {
	v := AllVerdict()
	if !v.Ordered || !v.Complete || !v.Consistent {
		t.Error("AllVerdict should be all true")
	}
	w := v.And(Verdict{Ordered: true})
	if w.Ordered != true || w.Complete || w.Consistent {
		t.Errorf("And = %+v", w)
	}
	if v.String() == "" || w.String() == "" {
		t.Error("String should render")
	}
}

// randomStream builds a short reactor-style stream with consecutive seqnos
// and random temperatures around the c2/c3 trigger threshold.
func randomStream(r *rand.Rand, n int) []event.Update {
	out := make([]event.Update, n)
	val := 300.0
	for i := range out {
		val += float64(r.Intn(500) - 150)
		out[i] = event.U("x", int64(i+1), val)
	}
	return out
}

// rampStream builds a stream rising by step each update.
func rampStream(n int, step float64) []event.Update {
	out := make([]event.Update, n)
	for i := range out {
		out[i] = event.U("x", int64(i+1), float64(i)*step)
	}
	return out
}

// randomValuedStream builds a stream for variable v with values that make
// cm trigger roughly half the time.
func randomValuedStream(r *rand.Rand, v event.VarName, n int) []event.Update {
	out := make([]event.Update, n)
	for i := range out {
		out[i] = event.U(v, int64(i+1), 1000+float64(r.Intn(300)))
	}
	return out
}
