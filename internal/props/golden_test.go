package props

// Golden scenario corpus: hand-constructed loss patterns with exact
// expected per-CE alert streams and property verdicts under each AD
// algorithm. These pin the end-to-end behavior of the CE + AD + checker
// pipeline against regressions, covering corners the randomized suites
// reach only probabilistically: losses at stream boundaries, identical
// losses at both CEs, overlapping gaps, and degree-3 conditions (the
// paper's "uses only Hx[0] and Hx[−2]" case).

import (
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/seq"
	"condmon/internal/sim"
)

// deg3 fires when the value rose by more than 200 since two readings
// before the current one (inspects Hx[0] and Hx[-2]: degree 3, aggressive).
func deg3() cond.Condition {
	return cond.MustParse("deg3", "x[0] - x[-2] > 200")
}

// deg3cons is the conservative variant.
func deg3cons() cond.Condition {
	return cond.MustParse("deg3-cons", "x[0] - x[-2] > 200 && consecutive(x)")
}

func TestGoldenScenarios(t *testing.T) {
	ramp := []event.Update{
		event.U("x", 1, 100), event.U("x", 2, 250), event.U("x", 3, 400),
		event.U("x", 4, 550), event.U("x", 5, 700),
	}
	tests := []struct {
		name   string
		cond   cond.Condition
		u      []event.Update
		drop1  []int64
		drop2  []int64
		wantA1 seq.Seq // trigger seqnos per CE
		wantA2 seq.Seq
		// property verdicts under AD-1 and AD-4 (single variable)
		wantAD1 Verdict
		wantAD4 Verdict
	}{
		{
			name:    "no loss ramp c2",
			cond:    cond.NewRiseAggressive("x"),
			u:       []event.Update{event.U("x", 1, 0), event.U("x", 2, 300), event.U("x", 3, 350)},
			wantA1:  seq.Seq{2},
			wantA2:  seq.Seq{2},
			wantAD1: Verdict{Ordered: true, Complete: true, Consistent: true},
			wantAD4: Verdict{Ordered: true, Complete: true, Consistent: true},
		},
		{
			name:    "first update lost at CE2",
			cond:    cond.NewOverheat("x"),
			u:       []event.Update{event.U("x", 1, 3100), event.U("x", 2, 3200)},
			drop2:   []int64{1},
			wantA1:  seq.Seq{1, 2},
			wantA2:  seq.Seq{2},
			wantAD1: Verdict{Ordered: false, Complete: true, Consistent: true},
			wantAD4: Verdict{Ordered: true, Complete: false, Consistent: true},
		},
		{
			name:    "last update lost at CE1",
			cond:    cond.NewOverheat("x"),
			u:       []event.Update{event.U("x", 1, 3100), event.U("x", 2, 3200)},
			drop1:   []int64{2},
			wantA1:  seq.Seq{1},
			wantA2:  seq.Seq{1, 2},
			wantAD1: Verdict{Ordered: true, Complete: true, Consistent: true},
			wantAD4: Verdict{Ordered: true, Complete: true, Consistent: true},
		},
		{
			name:    "same update lost at both CEs",
			cond:    cond.NewRiseAggressive("x"),
			u:       []event.Update{event.U("x", 1, 0), event.U("x", 2, 300), event.U("x", 3, 350)},
			drop1:   []int64{2},
			drop2:   []int64{2},
			wantA1:  seq.Seq{3}, // 350 − 0 > 200 across the shared gap
			wantA2:  seq.Seq{3},
			wantAD1: Verdict{Ordered: true, Complete: true, Consistent: true},
			wantAD4: Verdict{Ordered: true, Complete: true, Consistent: true},
		},
		{
			name:    "overlapping different gaps aggressive",
			cond:    cond.NewRiseAggressive("x"),
			u:       []event.Update{event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)},
			drop2:   []int64{2},
			wantA1:  seq.Seq{2},
			wantA2:  seq.Seq{3},
			wantAD1: Verdict{Ordered: false, Complete: false, Consistent: false},
			wantAD4: Verdict{Ordered: true, Complete: false, Consistent: true},
		},
		{
			name:    "degree-3 aggressive lossless",
			cond:    deg3(),
			u:       ramp,
			wantA1:  seq.Seq{3, 4, 5}, // each rose 300 over two steps
			wantA2:  seq.Seq{3, 4, 5},
			wantAD1: Verdict{Ordered: true, Complete: true, Consistent: true},
			wantAD4: Verdict{Ordered: true, Complete: true, Consistent: true},
		},
		{
			name:  "degree-3 aggressive with disjoint gaps",
			cond:  deg3(),
			u:     ramp,
			drop1: []int64{2},
			drop2: []int64{4},
			// CE1 windows after warmup: (1,3,4) fires at 4 (550−100>200),
			// (3,4,5) fires at 5. CE2: (1,2,3) fires at 3, (2,3,5) fires at
			// 5 (700−250>200).
			wantA1:  seq.Seq{4, 5},
			wantA2:  seq.Seq{3, 5},
			wantAD1: Verdict{Ordered: false, Complete: false, Consistent: false},
			wantAD4: Verdict{Ordered: true, Complete: false, Consistent: true},
		},
		{
			name:    "degree-3 conservative with gap stays silent",
			cond:    deg3cons(),
			u:       ramp[:4],
			drop1:   []int64{2},
			drop2:   []int64{1},
			wantA1:  nil,        // windows (1,3,4) not consecutive
			wantA2:  seq.Seq{4}, // (2,3,4) consecutive, 550−250>200
			wantAD1: Verdict{Ordered: true, Complete: false, Consistent: true},
			wantAD4: Verdict{Ordered: true, Complete: false, Consistent: true},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			run, err := sim.RunSingleVar(tt.cond, tt.u,
				link.NewDropSeqNos("x", tt.drop1...), link.NewDropSeqNos("x", tt.drop2...), nil)
			if err != nil {
				t.Fatalf("RunSingleVar: %v", err)
			}
			if got := event.AlertSeqNos(run.A1, "x"); !got.Equal(tt.wantA1) {
				t.Errorf("A1 triggers = %v, want %v", got, tt.wantA1)
			}
			if got := event.AlertSeqNos(run.A2, "x"); !got.Equal(tt.wantA2) {
				t.Errorf("A2 triggers = %v, want %v", got, tt.wantA2)
			}
			v1, _, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
			if err != nil {
				t.Fatalf("CheckSingleVarRun(AD-1): %v", err)
			}
			if v1 != tt.wantAD1 {
				t.Errorf("AD-1 verdict = %v, want %v", v1, tt.wantAD1)
			}
			v4, _, err := CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD4("x") })
			if err != nil {
				t.Fatalf("CheckSingleVarRun(AD-4): %v", err)
			}
			if v4 != tt.wantAD4 {
				t.Errorf("AD-4 verdict = %v, want %v", v4, tt.wantAD4)
			}
		})
	}
}

func TestDegree3ConsistencyConstraints(t *testing.T) {
	// A degree-3 alert with window (1,3,5) asserts 1,3,5 received and 2,4
	// missed. A later alert asserting 4 received must conflict.
	mk := func(seqNos ...int64) event.Alert {
		h := event.History{Var: "x"}
		for i := len(seqNos) - 1; i >= 0; i-- {
			h.Recent = append(h.Recent, event.U("x", seqNos[i], 0))
		}
		return event.Alert{Cond: "deg3", Histories: event.HistorySet{"x": h}}
	}
	gappy := mk(1, 3, 5)
	conflicting := mk(3, 4, 6)
	compatible := mk(5, 6, 7)

	if !ConsistentSingle([]event.Alert{gappy}) {
		t.Error("single degree-3 alert is consistent")
	}
	if ConsistentSingle([]event.Alert{gappy, conflicting}) {
		t.Error("window (3,4,6) asserts 4 received; (1,3,5) asserts it missed — inconsistent")
	}
	if !ConsistentSingle([]event.Alert{gappy, compatible}) {
		t.Error("windows (1,3,5) and (5,6,7) are compatible")
	}

	// AD-3 must make exactly the same calls.
	f := ad.NewAD3("x")
	if !ad.Offer(f, gappy) {
		t.Fatal("gappy alert should pass a fresh AD-3")
	}
	if ad.Offer(f, conflicting) {
		t.Error("AD-3 must reject the conflicting degree-3 alert")
	}
	if !ad.Offer(f, compatible) {
		t.Error("AD-3 should pass the compatible degree-3 alert")
	}
}
