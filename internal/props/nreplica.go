package props

import (
	"condmon/internal/ad"
	"condmon/internal/event"
	"condmon/internal/sim"
)

// CheckNReplicaRun evaluates the three properties of an N-replica
// single-variable run under the given AD algorithm, quantifying over every
// N-way arrival order. It generalizes CheckSingleVarRun exactly as the
// paper's Section 2.1 note ("analysis for systems with more than two CEs
// can be easily extended") anticipates: completeness compares against the
// ordered union of all N delivered streams, and consistency uses the same
// per-alert constraint sets (an alert's evidence is independent of how
// many replicas exist).
func CheckNReplicaRun(run *sim.NReplicaRun, newFilter FilterFactory) (Verdict, []Counterexample, error) {
	var (
		v       = AllVerdict()
		exs     []Counterexample
		vars    = run.Cond.Vars()
		wantSet = event.KeySet(run.NOutput)
	)
	err := sim.ForEachArrivalN(run.As, func(merged []event.Alert) bool {
		out := ad.Run(newFilter(), merged)
		if v.Ordered && !Ordered(out, vars) {
			v.Ordered = false
			exs = append(exs, Counterexample{Property: "orderedness", Arrival: merged, Output: out})
		}
		if v.Complete && !keySetEqualTo(out, wantSet) {
			v.Complete = false
			exs = append(exs, Counterexample{Property: "completeness", Arrival: merged, Output: out})
		}
		if v.Consistent && !ConsistentSingle(out) {
			v.Consistent = false
			exs = append(exs, Counterexample{Property: "consistency", Arrival: merged, Output: out})
		}
		return v.Ordered || v.Complete || v.Consistent
	})
	if err != nil {
		return Verdict{}, nil, err
	}
	return v, exs, nil
}
