package props

// The paper's multi-variable pseudo-code is written for two variables and
// notes it "can be easily extended for conditions with more than two
// variables". These tests exercise three-variable conditions through the
// full pipeline: AD-5/AD-6 generalization, the precedence-graph
// consistency checker, and interleaving-based completeness.

import (
	"math/rand"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/sim"
)

// spread3 triggers when the max-min spread of the three variables' latest
// values exceeds the limit: degree 1 in each of x, y, z.
func spread3() cond.Condition {
	return cond.MustParse("spread3", "max(x[0], max(y[0], z[0])) - min(x[0], min(y[0], z[0])) > 100")
}

func stream3(v event.VarName, vals ...float64) []event.Update {
	out := make([]event.Update, len(vals))
	for i, val := range vals {
		out[i] = event.U(v, int64(i+1), val)
	}
	return out
}

func TestThreeVariableConditionMetadata(t *testing.T) {
	c := spread3()
	if got := len(c.Vars()); got != 3 {
		t.Fatalf("vars = %d, want 3", got)
	}
	for _, v := range c.Vars() {
		if c.Degree(v) != 1 {
			t.Errorf("degree(%s) = %d, want 1", v, c.Degree(v))
		}
	}
}

func TestAD5ThreeVariables(t *testing.T) {
	c := spread3()
	mk := func(x, y, z int64) event.Alert {
		return event.Alert{Cond: c.Name(), Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", x, 0)}},
			"y": {Var: "y", Recent: []event.Update{event.U("y", y, 0)}},
			"z": {Var: "z", Recent: []event.Update{event.U("z", z, 0)}},
		}}
	}
	f := ad.NewAD5("x", "y", "z")
	if !ad.Offer(f, mk(2, 1, 1)) {
		t.Fatal("first alert should pass")
	}
	// Inversion on z only.
	if ad.Offer(f, mk(3, 2, 0)) {
		t.Error("z-order inversion must be dropped")
	}
	// Progress on all three.
	if !ad.Offer(f, mk(3, 2, 1)) {
		t.Error("monotone alert should pass")
	}
	// All-equal duplicate.
	if ad.Offer(f, mk(3, 2, 1)) {
		t.Error("all-equal alert is a duplicate")
	}
}

func TestThreeVariableEndToEnd(t *testing.T) {
	// Lossless three-variable run with opposite interleavings at the two
	// CEs, checked under AD-1 (expected unordered/inconsistent, the
	// Theorem 10 phenomenon generalized) and AD-5 (ordered, consistent).
	c := spread3()
	streams := map[event.VarName][]event.Update{
		"x": stream3("x", 1000, 1200),
		"y": stream3("y", 1050, 1080),
		"z": stream3("z", 1060, 190),
	}
	run, err := sim.RunMultiVar(c, streams,
		[2]map[event.VarName]link.Model{},
		[2]sim.Interleaver{sim.Sequential, sim.SequentialReverse}, nil)
	if err != nil {
		t.Fatalf("RunMultiVar: %v", err)
	}
	if len(run.A1) == 0 || len(run.A2) == 0 {
		t.Fatalf("both CEs should alert: %d, %d", len(run.A1), len(run.A2))
	}
	v5, _, err := CheckMultiVarRun(run, func() ad.Filter { return ad.NewAD5("x", "y", "z") })
	if err != nil {
		t.Fatalf("CheckMultiVarRun(AD-5): %v", err)
	}
	if !v5.Ordered {
		t.Error("AD-5 must keep the three-variable output ordered")
	}
	if !v5.Consistent {
		t.Error("AD-5 must keep the lossless three-variable output consistent (Lemma 5 generalized)")
	}
	v1, _, err := CheckMultiVarRun(run, func() ad.Filter { return ad.NewAD1() })
	if err != nil {
		t.Fatalf("CheckMultiVarRun(AD-1): %v", err)
	}
	if v1.Ordered {
		t.Error("AD-1 should be unordered with opposite interleavings (Theorem 10 generalized)")
	}
}

func TestConsistentMultiThreeVariablesMatchesExhaustive(t *testing.T) {
	c := spread3()
	r := rand.New(rand.NewSource(41))
	interleavers := []sim.Interleaver{sim.Sequential, sim.SequentialReverse, sim.RoundRobin, sim.RandomInterleave}
	for trial := 0; trial < 25; trial++ {
		streams := map[event.VarName][]event.Update{
			"x": stream3("x", 1000+float64(r.Intn(300)), 1000+float64(r.Intn(300))),
			"y": stream3("y", 1000+float64(r.Intn(300))),
			"z": stream3("z", 1000+float64(r.Intn(300))),
		}
		run, err := sim.RunMultiVar(c, streams,
			[2]map[event.VarName]link.Model{
				{"x": link.Bernoulli{P: 0.3}},
				{"x": link.Bernoulli{P: 0.3}},
			},
			[2]sim.Interleaver{interleavers[trial%4], interleavers[(trial+3)%4]}, r)
		if err != nil {
			t.Fatalf("RunMultiVar: %v", err)
		}
		merged := sim.RandomArrival(run.A1, run.A2, r)
		out := ad.Run(ad.NewAD1(), merged)
		combined, err := run.CombinedStreams()
		if err != nil {
			t.Fatalf("CombinedStreams: %v", err)
		}
		got, err := ConsistentMulti(out, c, combined)
		if err != nil {
			t.Fatalf("ConsistentMulti: %v", err)
		}
		want, err := ConsistentMultiExhaustive(out, c, combined)
		if err != nil {
			t.Fatalf("ConsistentMultiExhaustive: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: graph checker %v, exhaustive %v\nA=%v", trial, got, want, out)
		}
	}
}

func TestThreeVariableTEvaluation(t *testing.T) {
	c := spread3()
	alerts, err := ce.T(c, []event.Update{
		event.U("x", 1, 1000),
		event.U("y", 1, 1050),
		event.U("z", 1, 1150), // spread 150 > 100 → fires on warmup completion
		event.U("x", 2, 1100), // spread 100, not > 100 → silent
		event.U("y", 2, 900),  // spread 250 → fires
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 2 {
		t.Fatalf("T raised %d alerts, want 2: %v", len(alerts), alerts)
	}
	if alerts[0].MustSeqNo("z") != 1 || alerts[1].MustSeqNo("y") != 2 {
		t.Errorf("alerts = %v", alerts)
	}
}
