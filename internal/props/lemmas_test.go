package props

// Machine checks for the paper's supporting lemmas (Appendix B). Lemma 2
// (U ⊔ U = U) is covered in internal/seq; this file verifies the lemmas
// that involve T and the AD-1 merge M.

import (
	"math/rand"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/sim"
)

// randomDelivered returns a random delivered subsequence pair (U1, U2) of
// a random c1-style stream.
func randomDelivered(t *testing.T, r *rand.Rand) (cond.Condition, *sim.SingleVarRun) {
	t.Helper()
	c := cond.NewOverheat("x")
	u := make([]event.Update, 5)
	for i := range u {
		u[i] = event.U("x", int64(i+1), 2800+float64(r.Intn(500)))
	}
	run, err := sim.RunSingleVar(c, u, link.Bernoulli{P: 0.35}, link.Bernoulli{P: 0.35}, r)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	return c, run
}

func TestLemma1Phi(t *testing.T) {
	// Lemma 1: ΦM(A1, A2) = ΦA1 ∪ ΦA2 for AD-1, for every interleaving.
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		_, run := randomDelivered(t, r)
		want := event.KeySet(append(append([]event.Alert(nil), run.A1...), run.A2...))
		err := sim.ForEachArrival(run.A1, run.A2, func(merged []event.Alert) bool {
			got := event.KeySet(ad.Run(ad.NewAD1(), merged))
			if len(got) != len(want) {
				t.Errorf("trial %d: |ΦM| = %d, want %d", trial, len(got), len(want))
				return false
			}
			for k := range got {
				if _, ok := want[k]; !ok {
					t.Errorf("trial %d: ΦM contains foreign alert %s", trial, k)
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatalf("ForEachArrival: %v", err)
		}
	}
}

func TestCorollary1MergeOfEqualStreams(t *testing.T) {
	// Corollary 1: M(A, A) = A for ordered A — merging a stream with an
	// identical copy under AD-1 reproduces the stream exactly, in every
	// interleaving.
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 60; trial++ {
		c := cond.NewOverheat("x")
		u := make([]event.Update, 5)
		for i := range u {
			u[i] = event.U("x", int64(i+1), 2800+float64(r.Intn(500)))
		}
		a, err := ce.T(c, u)
		if err != nil {
			t.Fatalf("T: %v", err)
		}
		wantKeys := event.AlertKeys(a)
		err = sim.ForEachArrival(a, a, func(merged []event.Alert) bool {
			got := event.AlertKeys(ad.Run(ad.NewAD1(), merged))
			if len(got) != len(wantKeys) {
				t.Errorf("trial %d: M(A,A) has %d alerts, want %d", trial, len(got), len(wantKeys))
				return false
			}
			for i := range got {
				if got[i] != wantKeys[i] {
					t.Errorf("trial %d: M(A,A)[%d] = %s, want %s", trial, i, got[i], wantKeys[i])
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatalf("ForEachArrival: %v", err)
		}
	}
}

func TestLemma3NonHistoricalTDistributesOverUnion(t *testing.T) {
	// Lemma 3: for non-historical T, T(U1 ⊔ U2) = T(U1) ⊔ T(U2) — equal
	// as ordered sequences of alert identities.
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 100; trial++ {
		c, run := randomDelivered(t, r)
		left, err := ce.T(c, run.NInput)
		if err != nil {
			t.Fatalf("T(U1⊔U2): %v", err)
		}
		// Ordered union of the alert streams: merge by trigger seqno,
		// dropping duplicates — both streams are ordered and duplicate-free.
		right := orderedAlertUnion(run.A1, run.A2)
		if len(left) != len(right) {
			t.Fatalf("trial %d: |T(U1⊔U2)| = %d, |T(U1) ⊔ T(U2)| = %d", trial, len(left), len(right))
		}
		for i := range left {
			if left[i].Key() != right[i].Key() {
				t.Fatalf("trial %d: position %d differs: %s vs %s",
					trial, i, left[i].Key(), right[i].Key())
			}
		}
	}
}

func TestCorollary2PhiUnion(t *testing.T) {
	// Corollary 2: ΦT(U1 ⊔ U2) = ΦT(U1) ∪ ΦT(U2) for non-historical T.
	r := rand.New(rand.NewSource(74))
	for trial := 0; trial < 100; trial++ {
		_, run := randomDelivered(t, r)
		got := event.KeySet(run.NOutput)
		want := event.KeySet(append(append([]event.Alert(nil), run.A1...), run.A2...))
		if len(got) != len(want) {
			t.Fatalf("trial %d: |ΦT(U1⊔U2)| = %d, |ΦT(U1) ∪ ΦT(U2)| = %d", trial, len(got), len(want))
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				t.Fatalf("trial %d: key %s missing from the union", trial, k)
			}
		}
	}
}

func TestLemma3FailsForHistoricalT(t *testing.T) {
	// The lemma's non-historical hypothesis is necessary: the Theorem 4
	// scenario gives a historical T where ΦT(U1⊔U2) ≠ ΦT(U1) ∪ ΦT(U2).
	c := cond.NewRiseAggressive("x")
	u := []event.Update{event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)}
	run, err := sim.RunSingleVar(c, u, link.None{}, link.NewDropSeqNos("x", 2), nil)
	if err != nil {
		t.Fatalf("RunSingleVar: %v", err)
	}
	got := event.KeySet(run.NOutput)
	union := event.KeySet(append(append([]event.Alert(nil), run.A1...), run.A2...))
	if len(got) == len(union) {
		t.Error("historical T should break the Lemma 3 equality in this scenario")
	}
}

// orderedAlertUnion merges two ordered duplicate-free alert streams by
// trigger sequence number, removing duplicates — the alert-level ⊔.
func orderedAlertUnion(a1, a2 []event.Alert) []event.Alert {
	var out []event.Alert
	i, j := 0, 0
	push := func(a event.Alert) {
		if len(out) == 0 || out[len(out)-1].Key() != a.Key() {
			out = append(out, a)
		}
	}
	for i < len(a1) && j < len(a2) {
		ni, nj := a1[i].MustSeqNo("x"), a2[j].MustSeqNo("x")
		switch {
		case ni < nj:
			push(a1[i])
			i++
		case ni > nj:
			push(a2[j])
			j++
		default:
			push(a1[i])
			i++
			j++
		}
	}
	for ; i < len(a1); i++ {
		push(a1[i])
	}
	for ; j < len(a2); j++ {
		push(a2[j])
	}
	return out
}
