package props

// Guard-rail tests: the exhaustive cross-checkers and search-based
// deciders must refuse inputs beyond their enumeration bounds rather than
// silently burning CPU or returning wrong answers.

import (
	"testing"

	"condmon/internal/cond"
	"condmon/internal/event"
)

func bigUpdateStream(v event.VarName, n int) []event.Update {
	out := make([]event.Update, n)
	for i := range out {
		out[i] = event.U(v, int64(i+1), 3100)
	}
	return out
}

func TestConsistentSingleExhaustiveBound(t *testing.T) {
	c := cond.NewOverheat("x")
	u := bigUpdateStream("x", 17) // union of 17 > the 16-update bound
	if _, err := ConsistentSingleExhaustive(nil, c, u, nil); err == nil {
		t.Error("exhaustive single-variable check must reject >16 combined updates")
	}
}

func TestConsistentMultiExhaustiveBound(t *testing.T) {
	c := cond.NewTempDiff("x", "y")
	combined := map[event.VarName][]event.Update{
		"x": bigUpdateStream("x", 7),
		"y": bigUpdateStream("y", 7),
	}
	if _, err := ConsistentMultiExhaustive(nil, c, combined); err == nil {
		t.Error("exhaustive multi-variable check must reject >12 combined updates")
	}
}

func TestConsistentMultiOptionalBound(t *testing.T) {
	// One degree-1 two-variable alert leaves every other combined update
	// optional; 17 optional updates exceed the search bound.
	c := cond.NewTempDiff("x", "y")
	a := event.Alert{Cond: "cm", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 100, 0)}},
		"y": {Var: "y", Recent: []event.Update{event.U("y", 100, 0)}},
	}}
	combined := map[event.VarName][]event.Update{
		"x": bigUpdateStream("x", 9),
		"y": bigUpdateStream("y", 9),
	}
	if _, err := ConsistentMulti([]event.Alert{a}, c, combined); err == nil {
		t.Error("consistency search must reject >16 optional updates")
	}
}

func TestConsistentMultiEmptyOutput(t *testing.T) {
	c := cond.NewTempDiff("x", "y")
	ok, err := ConsistentMulti(nil, c, nil)
	if err != nil || !ok {
		t.Errorf("empty output is trivially consistent (ok=%v err=%v)", ok, err)
	}
}

func TestJointlyConsistentOptionalBound(t *testing.T) {
	a := event.Alert{Cond: "p", Histories: event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", 100, 0)}},
		"y": {Var: "y", Recent: []event.Update{event.U("y", 100, 0)}},
	}}
	combined := map[event.VarName][]event.Update{
		"x": bigUpdateStream("x", 9),
		"y": bigUpdateStream("y", 9),
	}
	if _, err := JointlyConsistent(map[string][]event.Alert{"p": {a}}, combined); err == nil {
		t.Error("joint consistency search must reject >16 optional updates")
	}
}
