package props

import (
	"testing"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
)

func example4Outputs(t *testing.T) (map[string][]event.Alert, map[event.VarName][]event.Update) {
	t.Helper()
	condA := cond.GreaterThan{CondName: "A", X: "x", Y: "y"}
	condB := cond.GreaterThan{CondName: "B", X: "y", Y: "x"}
	seenByA := []event.Update{
		event.U("x", 1, 2000), event.U("y", 1, 2000),
		event.U("x", 2, 2100), event.U("y", 2, 2100),
	}
	seenByB := []event.Update{
		event.U("x", 1, 2000), event.U("y", 1, 2000),
		event.U("y", 2, 2100), event.U("x", 2, 2100),
	}
	alertsA, err := ce.T(condA, seenByA)
	if err != nil {
		t.Fatalf("T(A): %v", err)
	}
	alertsB, err := ce.T(condB, seenByB)
	if err != nil {
		t.Fatalf("T(B): %v", err)
	}
	if len(alertsA) != 1 || len(alertsB) != 1 {
		t.Fatalf("want one alert per condition, got %d and %d", len(alertsA), len(alertsB))
	}
	combined := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 2000), event.U("x", 2, 2100)},
		"y": {event.U("y", 1, 2000), event.U("y", 2, 2100)},
	}
	return map[string][]event.Alert{"A": alertsA, "B": alertsB}, combined
}

func TestExample4IsJointlyInconsistent(t *testing.T) {
	// The Appendix D anomaly, formalized: A's alert requires the x change
	// to precede the y change; B's alert requires the reverse. No single
	// co-located evaluator could have produced both.
	outputs, combined := example4Outputs(t)
	ok, err := JointlyConsistent(outputs, combined)
	if err != nil {
		t.Fatalf("JointlyConsistent: %v", err)
	}
	if ok {
		t.Error("Example 4's conflicting alerts must be jointly inconsistent")
	}
	// Each output alone IS consistent — the anomaly is strictly
	// cross-condition.
	for name, alerts := range outputs {
		single := map[string][]event.Alert{name: alerts}
		ok, err := JointlyConsistent(single, combined)
		if err != nil {
			t.Fatalf("JointlyConsistent(%s): %v", name, err)
		}
		if !ok {
			t.Errorf("%s's output alone should be consistent", name)
		}
	}
}

func TestCoLocatedReductionIsJointlyConsistent(t *testing.T) {
	// Figure D-8: the co-located evaluator sees one interleaving; its
	// C = A ∨ B alerts are jointly consistent by construction.
	condA := cond.GreaterThan{CondName: "A", X: "x", Y: "y"}
	condB := cond.GreaterThan{CondName: "B", X: "y", Y: "x"}
	combinedCond := cond.NewOr(condA, condB)
	alerts, err := ce.T(combinedCond, []event.Update{
		event.U("x", 1, 2000), event.U("y", 1, 2000),
		event.U("x", 2, 2100), event.U("y", 2, 2100),
	})
	if err != nil {
		t.Fatalf("T(C): %v", err)
	}
	combined := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 2000), event.U("x", 2, 2100)},
		"y": {event.U("y", 1, 2000), event.U("y", 2, 2100)},
	}
	ok, err := JointlyConsistent(map[string][]event.Alert{combinedCond.Name(): alerts}, combined)
	if err != nil {
		t.Fatalf("JointlyConsistent: %v", err)
	}
	if !ok {
		t.Error("co-located C = A ∨ B output must be jointly consistent")
	}
}

func TestJointlyConsistentTrivialCases(t *testing.T) {
	ok, err := JointlyConsistent(nil, nil)
	if err != nil || !ok {
		t.Errorf("empty output set should be jointly consistent (ok=%v err=%v)", ok, err)
	}
	// Single variable: reduces to received/missed disjointness.
	a1 := alertWin("x", 2, 1)
	a2 := alertWin("x", 3, 1) // asserts 2 missed: conflicts with a1
	ok, err = JointlyConsistent(map[string][]event.Alert{"p": {a1}, "q": {a2}}, nil)
	if err != nil {
		t.Fatalf("JointlyConsistent: %v", err)
	}
	if ok {
		t.Error("window conflict across conditions must be jointly inconsistent")
	}
}

func TestJointlyConsistentDisjointVariableSets(t *testing.T) {
	// Conditions over disjoint variables impose no cross constraints.
	p := alertWin("x", 2, 1)
	q := alertWin("y", 5, 4)
	combined := map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 0), event.U("x", 2, 0)},
		"y": {event.U("y", 4, 0), event.U("y", 5, 0)},
	}
	ok, err := JointlyConsistent(map[string][]event.Alert{"p": {p}, "q": {q}}, combined)
	if err != nil {
		t.Fatalf("JointlyConsistent: %v", err)
	}
	if !ok {
		t.Error("disjoint-variable outputs are trivially jointly consistent")
	}
}
