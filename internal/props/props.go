// Package props machine-checks the three properties of Section 3.1 — and
// their multi-variable extensions from Appendix C — on concrete system
// outputs:
//
//	Orderedness:  A is ordered (Π_v A non-decreasing for every variable v).
//	Completeness: ΦA = ΦT(U1 ⊔ U2) (single variable); ∃ interleaving UV of
//	              the combined per-variable streams with ΦA = ΦT(UV)
//	              (multi-variable).
//	Consistency:  ∃U′ ⊑ U1 ⊔ U2 with ΦA ⊆ ΦT(U′) (single variable);
//	              ∃U′ whose projections are subsequences of the combined
//	              streams with ΦA ⊆ ΦT(U′) (multi-variable).
//
// The single-variable consistency checker is exact and linear: an alert a
// with history window w is in T(U′) iff w ⊆ U′ and no gap of w's spanning
// set is in U′, so A is consistent iff the union of asserted-received and
// asserted-missed update sets are disjoint — precisely the Received/Missed
// construction in the proof of Theorem 7.
//
// The multi-variable checkers additionally quantify over cross-variable
// interleavings: consistency reduces to acyclicity of the precedence graph
// from the proof of Lemma 5 (searched over the small set of optional
// updates), and completeness enumerates interleavings exhaustively. Both
// are exact on the paper-scale scenarios used by the experiment harness.
package props

import (
	"fmt"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/seq"
	"condmon/internal/sim"
)

// Ordered reports whether the alert sequence is ordered with respect to
// every one of the given variables (Section 2.2: Π_v A non-decreasing).
func Ordered(alerts []event.Alert, vars []event.VarName) bool {
	for _, v := range vars {
		if !event.AlertSeqNos(alerts, v).IsOrdered() {
			return false
		}
	}
	return true
}

// AlertsSubsequence reports whether sub ⊑ super as sequences of alert
// identities: sub can be obtained from super by deleting alerts. It is the
// order the domination relation of Section 4.1 compares filter outputs by.
func AlertsSubsequence(sub, super []event.Alert) bool {
	i := 0
	for _, a := range super {
		if i < len(sub) && sub[i].Key() == a.Key() {
			i++
		}
	}
	return i == len(sub)
}

// CompleteSingle reports ΦA = ΦT(U1 ⊔ U2) for a single-variable system.
func CompleteSingle(alerts []event.Alert, c cond.Condition, u1, u2 []event.Update) (bool, error) {
	union, err := sim.OrderedUnionUpdates(u1, u2)
	if err != nil {
		return false, err
	}
	want, err := ce.T(c, union)
	if err != nil {
		return false, err
	}
	return event.KeySetEqual(alerts, want), nil
}

// assertions collects, per variable, the update sets that a displayed alert
// sequence asserts were received (history windows) and missed (gaps in the
// windows' spanning sets).
type assertions struct {
	received map[event.VarName]seq.Set
	missed   map[event.VarName]seq.Set
}

func collectAssertions(alerts []event.Alert) assertions {
	as := assertions{
		received: make(map[event.VarName]seq.Set),
		missed:   make(map[event.VarName]seq.Set),
	}
	for _, a := range alerts {
		for v, h := range a.Histories {
			if as.received[v] == nil {
				as.received[v] = make(seq.Set)
				as.missed[v] = make(seq.Set)
			}
			win := h.SeqNosAscending()
			as.received[v].AddSeq(win)
			for s := range seq.Gaps(win) {
				as.missed[v].Add(s)
			}
		}
	}
	return as
}

// conflictFree reports whether no update is asserted both received and
// missed.
func (as assertions) conflictFree() bool {
	for v, rec := range as.received {
		if len(rec.Intersect(as.missed[v])) != 0 {
			return false
		}
	}
	return true
}

// ConsistentSingle reports consistency of a single-variable output: the
// constraint-satisfiability criterion. The witness U′, when one exists, is
// the union of all asserted-received updates.
//
// Exactness: alert a (window w) ∈ T(U′) ⇔ w ⊆ U′ ∧ gaps(w) ∩ U′ = ∅, so a
// satisfying U′ exists iff ⋃windows and ⋃gaps are disjoint. Every window
// element was genuinely delivered to some CE, so U′ ⊑ U1 ⊔ U2 holds by
// construction.
func ConsistentSingle(alerts []event.Alert) bool {
	return collectAssertions(alerts).conflictFree()
}

// ConsistentSingleExhaustive is a brute-force cross-check of
// ConsistentSingle for tests: it enumerates every subsequence U′ of
// U1 ⊔ U2 and looks for one with ΦA ⊆ ΦT(U′). Exponential; inputs must be
// short.
func ConsistentSingleExhaustive(alerts []event.Alert, c cond.Condition, u1, u2 []event.Update) (bool, error) {
	union, err := sim.OrderedUnionUpdates(u1, u2)
	if err != nil {
		return false, err
	}
	if len(union) > 16 {
		return false, fmt.Errorf("props: exhaustive consistency check over %d updates is too large", len(union))
	}
	for mask := 0; mask < 1<<len(union); mask++ {
		var sub []event.Update
		for i, u := range union {
			if mask&(1<<i) != 0 {
				sub = append(sub, u)
			}
		}
		out, err := ce.T(c, sub)
		if err != nil {
			return false, err
		}
		if event.KeySetSubset(alerts, out) {
			return true, nil
		}
	}
	return false, nil
}

// CompleteMulti reports multi-variable completeness (Appendix C): some
// interleaving UV of the combined per-variable streams satisfies
// ΦA = ΦT(UV). For a single variable it degenerates to CompleteSingle.
func CompleteMulti(alerts []event.Alert, c cond.Condition, combined map[event.VarName][]event.Update) (bool, error) {
	found := false
	err := sim.ForEachInterleaving(combined, func(uv []event.Update) bool {
		out, terr := ce.T(c, uv)
		if terr != nil {
			return true // skip; T never errors on well-formed streams
		}
		if event.KeySetEqual(alerts, out) {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// ConsistentMulti reports multi-variable consistency (Appendix C): does
// some update sequence U′ — any interleaving of any per-variable
// subsequences of the combined streams — satisfy ΦA ⊆ ΦT(U′)?
//
// Per variable, the window/gap constraints fix which updates must be in U′
// (asserted received) and must not be (asserted missed); updates asserted
// neither way are optional. For each assignment of the optional updates the
// cross-variable arrival constraints of Lemma 5 form a precedence graph
// (per-variable chains plus, per alert, "the alert's latest v-update
// precedes the next chosen w-update after the alert's latest w-update");
// U′ exists for that assignment iff the graph is acyclic. The search is
// exponential only in the number of optional updates that appear in some
// alert's variable set, which the paper-scale scenarios keep tiny.
func ConsistentMulti(alerts []event.Alert, c cond.Condition, combined map[event.VarName][]event.Update) (bool, error) {
	if len(alerts) == 0 {
		return true, nil
	}
	as := collectAssertions(alerts)
	if !as.conflictFree() {
		return false, nil
	}
	vars := c.Vars()
	if len(vars) == 1 {
		return true, nil // single variable: disjointness is sufficient
	}

	// Optional updates: in the combined streams, not asserted either way.
	type optional struct {
		v event.VarName
		n int64
	}
	var opts []optional
	for _, v := range vars {
		rec, miss := as.received[v], as.missed[v]
		for _, u := range combined[v] {
			if (rec == nil || !rec.Contains(u.SeqNo)) && (miss == nil || !miss.Contains(u.SeqNo)) {
				opts = append(opts, optional{v: v, n: u.SeqNo})
			}
		}
	}
	const maxOptional = 16
	if len(opts) > maxOptional {
		return false, fmt.Errorf("props: consistency search over %d optional updates is too large", len(opts))
	}

	for mask := 0; mask < 1<<len(opts); mask++ {
		chosen := make(map[event.VarName]seq.Set, len(vars))
		for _, v := range vars {
			chosen[v] = make(seq.Set)
			if rec := as.received[v]; rec != nil {
				for s := range rec {
					chosen[v].Add(s)
				}
			}
		}
		for i, o := range opts {
			if mask&(1<<i) != 0 {
				chosen[o.v].Add(o.n)
			}
		}
		if precedenceFeasible(alerts, vars, chosen) {
			return true, nil
		}
	}
	return false, nil
}

// nodeID identifies an update node in the precedence graph.
type nodeID struct {
	v event.VarName
	n int64
}

// precedenceFeasible builds the Lemma 5 precedence graph for the chosen
// update sets and reports acyclicity.
func precedenceFeasible(alerts []event.Alert, vars []event.VarName, chosen map[event.VarName]seq.Set) bool {
	adj := make(map[nodeID][]nodeID)

	// Per-variable chains.
	sorted := make(map[event.VarName]seq.Seq, len(vars))
	for _, v := range vars {
		s := chosen[v].Sorted()
		sorted[v] = s
		for i := 1; i < len(s); i++ {
			from := nodeID{v: v, n: s[i-1]}
			adj[from] = append(adj[from], nodeID{v: v, n: s[i]})
		}
	}

	// succ(v, n): the smallest chosen v-update strictly greater than n.
	succ := func(v event.VarName, n int64) (int64, bool) {
		for _, s := range sorted[v] {
			if s > n {
				return s, true
			}
		}
		return 0, false
	}

	// Per-alert cross-variable constraints: for the alert to be live at
	// some instant, each variable's latest must arrive before any other
	// variable advances past the alert's snapshot.
	for _, a := range alerts {
		for _, v := range vars {
			hv, ok := a.Histories[v]
			if !ok {
				continue
			}
			lv := hv.Latest().SeqNo
			if !chosen[v].Contains(lv) {
				return false // required update excluded (cannot happen after collectAssertions)
			}
			for _, w := range vars {
				if w == v {
					continue
				}
				hw, ok := a.Histories[w]
				if !ok {
					continue
				}
				if next, ok := succ(w, hw.Latest().SeqNo); ok {
					from := nodeID{v: v, n: lv}
					adj[from] = append(adj[from], nodeID{v: w, n: next})
				}
			}
		}
	}

	return acyclic(adj)
}

// acyclic reports whether the directed graph has no cycle (iterative
// three-color DFS).
func acyclic(adj map[nodeID][]nodeID) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[nodeID]int, len(adj))
	type frame struct {
		node nodeID
		next int
	}
	for start := range adj {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				child := adj[f.node][f.next]
				f.next++
				switch color[child] {
				case gray:
					return false
				case white:
					color[child] = gray
					stack = append(stack, frame{node: child})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}

// ConsistentMultiExhaustive is the brute-force cross-check of
// ConsistentMulti: enumerate per-variable subsequences of the combined
// streams, then all interleavings of each choice, and test
// ΦA ⊆ ΦT(U′) directly. Strictly for tests on tiny inputs.
func ConsistentMultiExhaustive(alerts []event.Alert, c cond.Condition, combined map[event.VarName][]event.Update) (bool, error) {
	vars := c.Vars()
	total := 0
	for _, us := range combined {
		total += len(us)
	}
	if total > 12 {
		return false, fmt.Errorf("props: exhaustive multi-variable consistency over %d updates is too large", total)
	}
	// Enumerate per-variable subsets via one global bitmask.
	flat := make([]event.Update, 0, total)
	for _, v := range vars {
		flat = append(flat, combined[v]...)
	}
	for mask := 0; mask < 1<<len(flat); mask++ {
		streams := make(map[event.VarName][]event.Update, len(vars))
		for i, u := range flat {
			if mask&(1<<i) != 0 {
				streams[u.Var] = append(streams[u.Var], u)
			}
		}
		found := false
		err := sim.ForEachInterleaving(streams, func(uv []event.Update) bool {
			out, terr := ce.T(c, uv)
			if terr != nil {
				return true
			}
			if event.KeySetSubset(alerts, out) {
				found = true
				return false
			}
			return true
		})
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}
