// Package stats provides the small statistical toolkit the experiment
// harness uses to report its measured curves honestly: sample moments and
// binomial (Wilson) confidence intervals for the recall and display-rate
// proportions.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// Proportion is an estimated binomial proportion with its 95% Wilson score
// interval — the appropriate interval for success rates near 0 or 1, where
// the naive normal interval misbehaves.
type Proportion struct {
	// Successes of Trials observed.
	Successes, Trials int
	// P is the point estimate successes/trials.
	P float64
	// Lo and Hi bound the 95% confidence interval.
	Lo, Hi float64
}

// NewProportion computes the Wilson interval for k successes in n trials.
// n must be positive.
func NewProportion(k, n int) (Proportion, error) {
	if n <= 0 {
		return Proportion{}, fmt.Errorf("stats: proportion needs positive trials, got %d", n)
	}
	if k < 0 || k > n {
		return Proportion{}, fmt.Errorf("stats: successes %d outside [0,%d]", k, n)
	}
	p := float64(k) / float64(n)
	z2 := z95 * z95
	nf := float64(n)
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z95 * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi := center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Proportion{Successes: k, Trials: n, P: p, Lo: lo, Hi: hi}, nil
}

// String renders "0.897 [0.885, 0.908]".
func (p Proportion) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", p.P, p.Lo, p.Hi)
}

// Overlaps reports whether two proportions' intervals intersect — the
// harness's quick test for "statistically indistinguishable".
func (p Proportion) Overlaps(q Proportion) bool {
	return p.Lo <= q.Hi && q.Lo <= p.Hi
}
