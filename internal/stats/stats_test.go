package stats

import (
	"math"
	"testing"
)

func TestMeanAndStdDev(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of one sample = %g", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %g, want ≈2.138", got)
	}
}

func TestProportionValidation(t *testing.T) {
	if _, err := NewProportion(1, 0); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := NewProportion(-1, 10); err == nil {
		t.Error("negative successes should fail")
	}
	if _, err := NewProportion(11, 10); err == nil {
		t.Error("successes > trials should fail")
	}
}

func TestProportionWilsonProperties(t *testing.T) {
	p, err := NewProportion(90, 100)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if p.P != 0.9 {
		t.Errorf("P = %g", p.P)
	}
	if p.Lo >= p.P || p.Hi <= p.P {
		t.Errorf("interval [%g, %g] must bracket the estimate", p.Lo, p.Hi)
	}
	// Known Wilson values for 90/100: approximately [0.825, 0.944].
	if math.Abs(p.Lo-0.8251) > 0.005 || math.Abs(p.Hi-0.9437) > 0.005 {
		t.Errorf("Wilson interval = [%g, %g], want ≈[0.825, 0.944]", p.Lo, p.Hi)
	}
}

func TestProportionExtremes(t *testing.T) {
	zero, err := NewProportion(0, 50)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if zero.Lo != 0 || zero.Hi <= 0 {
		t.Errorf("zero-success interval = [%g, %g]", zero.Lo, zero.Hi)
	}
	all, err := NewProportion(50, 50)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if all.Hi != 1 || all.Lo >= 1 {
		t.Errorf("all-success interval = [%g, %g]", all.Lo, all.Hi)
	}
}

func TestProportionIntervalNarrowsWithN(t *testing.T) {
	small, err := NewProportion(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewProportion(900, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if (big.Hi - big.Lo) >= (small.Hi - small.Lo) {
		t.Error("interval must narrow as trials grow")
	}
}

func TestOverlaps(t *testing.T) {
	a, _ := NewProportion(50, 100)
	b, _ := NewProportion(55, 100)
	c, _ := NewProportion(95, 100)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("close proportions should overlap")
	}
	if a.Overlaps(c) {
		t.Error("distant proportions should not overlap")
	}
}

func TestProportionString(t *testing.T) {
	p, _ := NewProportion(897, 1000)
	if got := p.String(); got == "" || got[0] != '0' {
		t.Errorf("String = %q", got)
	}
}
