package exp

import (
	"fmt"
	"strings"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/sim"

	"math/rand"
)

// MaximalityRow reports, for one filtering algorithm, how many of its
// drops across randomized runs were *forced* — i.e. displaying the dropped
// alert would have violated the algorithm's guarantee given what was
// already displayed. Theorems 5, 7 and 9 state that every drop is forced
// (the algorithms are maximal); the experiment verifies it empirically and
// quantifies the drop mix.
type MaximalityRow struct {
	Algorithm string
	// Displayed and Dropped total the alert dispositions.
	Displayed, Dropped int
	// Duplicates counts drops that were exact duplicates of displayed
	// alerts (always justified — the non-replicated system N shows one
	// copy).
	Duplicates int
	// Forced counts non-duplicate drops where display would violate the
	// guarantee.
	Forced int
	// Unjustified counts drops with no justification — any non-zero value
	// refutes the corresponding maximality theorem.
	Unjustified int
}

// MaximalityResult aggregates the three maximality theorems.
type MaximalityResult struct {
	Rows   []MaximalityRow
	Trials int
}

// Matches reports whether every drop of every algorithm was justified.
func (m *MaximalityResult) Matches() bool {
	for _, r := range m.Rows {
		if r.Unjustified != 0 {
			return false
		}
	}
	return true
}

// Format renders the maximality table.
func (m *MaximalityResult) Format() string {
	var b strings.Builder
	b.WriteString("Maximality (Theorems 5, 7, 9): every drop must be forced by the guarantee\n")
	fmt.Fprintf(&b, "%-10s %-10s %-9s %-11s %-8s %-12s\n",
		"algorithm", "displayed", "dropped", "duplicates", "forced", "unjustified")
	for _, r := range m.Rows {
		fmt.Fprintf(&b, "%-10s %-10d %-9d %-11d %-8d %-12d\n",
			r.Algorithm, r.Displayed, r.Dropped, r.Duplicates, r.Forced, r.Unjustified)
	}
	return b.String()
}

// RunMaximality audits every drop decision of AD-2, AD-3 and AD-4 on
// randomized aggressive-condition runs.
func RunMaximality(cfg Config) (*MaximalityResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	res := &MaximalityResult{
		Rows: []MaximalityRow{
			{Algorithm: "AD-2"},
			{Algorithm: "AD-3"},
			{Algorithm: "AD-4"},
		},
		Trials: cfg.Trials,
	}
	c := cond.NewRiseAggressive("x")
	for trial := 0; trial < cfg.Trials; trial++ {
		run, err := sim.RunSingleVar(c, volatileStream(r, cfg.StreamLen),
			link.Bernoulli{P: cfg.LossP}, link.Bernoulli{P: cfg.LossP}, r)
		if err != nil {
			return nil, err
		}
		merged := sim.RandomArrival(run.A1, run.A2, r)
		auditAD2(&res.Rows[0], merged)
		auditAD3(&res.Rows[1], merged)
		auditAD4(&res.Rows[2], merged)
	}
	return res, nil
}

// auditAD2 classifies each AD-2 drop: forced iff the alert's sequence
// number does not exceed the last displayed one (Theorem 5; the boundary
// equality case counts as duplicate suppression of the trigger position).
func auditAD2(row *MaximalityRow, merged []event.Alert) {
	f := ad.NewAD2("x")
	var last int64 = -1
	for _, a := range merged {
		if ad.Offer(f, a) {
			row.Displayed++
			last = a.MustSeqNo("x")
			continue
		}
		row.Dropped++
		switch n := a.MustSeqNo("x"); {
		case n < last:
			row.Forced++ // displaying would invert order
		case n == last:
			row.Duplicates++ // same trigger position as the last display
		default:
			row.Unjustified++
		}
	}
}

// auditAD3 classifies each AD-3 drop: duplicates, or forced because the
// displayed prefix plus the dropped alert is inconsistent (Theorem 7,
// checked with the exact consistency decider).
func auditAD3(row *MaximalityRow, merged []event.Alert) {
	f := ad.NewAD3("x")
	var displayed []event.Alert
	seen := make(map[string]bool)
	for _, a := range merged {
		if ad.Offer(f, a) {
			row.Displayed++
			displayed = append(displayed, a)
			seen[a.Key()] = true
			continue
		}
		row.Dropped++
		if seen[a.Key()] {
			row.Duplicates++
			continue
		}
		hypothetical := append(append([]event.Alert(nil), displayed...), a)
		if !props.ConsistentSingle(hypothetical) {
			row.Forced++
		} else {
			row.Unjustified++
		}
	}
}

// auditAD4 classifies each AD-4 drop by either parent justification
// (Theorem 9).
func auditAD4(row *MaximalityRow, merged []event.Alert) {
	f := ad.NewAD4("x")
	var (
		displayed []event.Alert
		last      int64 = -1
	)
	seen := make(map[string]bool)
	for _, a := range merged {
		if ad.Offer(f, a) {
			row.Displayed++
			displayed = append(displayed, a)
			seen[a.Key()] = true
			last = a.MustSeqNo("x")
			continue
		}
		row.Dropped++
		if seen[a.Key()] {
			row.Duplicates++
			continue
		}
		n := a.MustSeqNo("x")
		hypothetical := append(append([]event.Alert(nil), displayed...), a)
		switch {
		case n < last:
			row.Forced++
		case n == last:
			row.Duplicates++
		case !props.ConsistentSingle(hypothetical):
			row.Forced++
		default:
			row.Unjustified++
		}
	}
}
