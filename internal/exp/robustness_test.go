package exp

// Robustness checks: the property matrices are theorems, so they must hold
// for every seed, not just the default. Skipped under -short.

import (
	"testing"
)

func TestTable1StableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Seed: seed, Trials: 60, StreamLen: 6, LossP: 0.3}
		tbl, err := RunTable1(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !tbl.Matches() {
			t.Errorf("seed %d: Table 1 deviates from the paper:\n%s", seed, tbl.Format())
		}
	}
}

func TestTable2StableAcrossLossRates(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep skipped in -short mode")
	}
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7} {
		cfg := Config{Seed: 2, Trials: 60, StreamLen: 6, LossP: p}
		tbl, err := RunTable2(cfg)
		if err != nil {
			t.Fatalf("loss %g: %v", p, err)
		}
		if !tbl.Matches() {
			t.Errorf("loss %g: Table 2 deviates from the paper:\n%s", p, tbl.Format())
		}
	}
}

func TestDominationStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Seed: seed, Trials: 100, StreamLen: 6, LossP: 0.3}
		res, err := RunDomination(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Matches() {
			t.Errorf("seed %d: domination violated:\n%s", seed, res.Format())
		}
	}
}
