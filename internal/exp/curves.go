package exp

import (
	"fmt"
	"strings"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/sim"
	"condmon/internal/stats"

	"math/rand"
)

// DominationPair measures one claimed domination relation G1 ≥ G2 from
// Section 4.1 over randomized runs: on every run and arrival order, G2's
// output must be a subsequence of G1's; strictness (Theorems 6 and 8)
// requires at least one run where it is strictly shorter.
type DominationPair struct {
	Better, Worse string
	// HoldsOnAll is true when the subsequence relation held on every trial.
	HoldsOnAll bool
	// StrictTrials counts trials where the dominant algorithm passed
	// strictly more alerts.
	StrictTrials int
	Trials       int
	// PassedBetter/PassedWorse total the alerts each algorithm displayed.
	PassedBetter, PassedWorse int
}

// DominationResult aggregates all measured pairs.
type DominationResult struct {
	Pairs []DominationPair
}

// Matches reports whether every claimed domination held and was witnessed
// strictly.
func (d *DominationResult) Matches() bool {
	for _, p := range d.Pairs {
		if !p.HoldsOnAll || p.StrictTrials == 0 {
			return false
		}
	}
	return true
}

// Format renders the domination table.
func (d *DominationResult) Format() string {
	var b strings.Builder
	b.WriteString("Domination (Theorems 6 and 8): G1 > G2 means G2's output ⊑ G1's on every run, strictly on some\n")
	fmt.Fprintf(&b, "%-14s %-10s %-12s %-14s %-14s\n", "pair", "holds", "strict runs", "alerts (G1)", "alerts (G2)")
	for _, p := range d.Pairs {
		fmt.Fprintf(&b, "%-4s > %-7s %-10v %4d/%-7d %-14d %-14d\n",
			p.Better, p.Worse, p.HoldsOnAll, p.StrictTrials, p.Trials, p.PassedBetter, p.PassedWorse)
	}
	return b.String()
}

// RunDomination measures the domination relations among AD-1…AD-4 on
// randomized aggressive-condition runs (the condition class where the
// algorithms differ most).
func RunDomination(cfg Config) (*DominationResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	type pairSpec struct {
		better, worse string
		newBetter     func() ad.Filter
		newWorse      func() ad.Filter
	}
	// Theorem 6 (AD-1 > AD-2) and Theorem 8 (AD-1 > AD-3), plus the derived
	// AD-1 > AD-4 (AD-4 passes a subset of first-occurrence alerts, which
	// is exactly AD-1's output). Note the paper does NOT claim AD-2 ≥ AD-4
	// or AD-3 ≥ AD-4, and those relations are in fact false: an alert
	// rejected by one half of AD-4 leaves the other half's state behind,
	// which can let AD-4 display an alert the standalone filter would have
	// rejected.
	specs := []pairSpec{
		{"AD-1", "AD-2", func() ad.Filter { return ad.NewAD1() }, func() ad.Filter { return ad.NewAD2("x") }},
		{"AD-1", "AD-3", func() ad.Filter { return ad.NewAD1() }, func() ad.Filter { return ad.NewAD3("x") }},
		{"AD-1", "AD-4", func() ad.Filter { return ad.NewAD1() }, func() ad.Filter { return ad.NewAD4("x") }},
	}
	pairs := make([]DominationPair, len(specs))
	for i, s := range specs {
		pairs[i] = DominationPair{Better: s.better, Worse: s.worse, HoldsOnAll: true}
	}
	c := cond.NewRiseAggressive("x")
	for trial := 0; trial < cfg.Trials; trial++ {
		run, err := sim.RunSingleVar(c, volatileStream(r, cfg.StreamLen),
			link.Bernoulli{P: cfg.LossP}, link.Bernoulli{P: cfg.LossP}, r)
		if err != nil {
			return nil, err
		}
		merged := sim.RandomArrival(run.A1, run.A2, r)
		for i, s := range specs {
			outBetter := ad.Run(s.newBetter(), merged)
			outWorse := ad.Run(s.newWorse(), merged)
			pairs[i].Trials++
			pairs[i].PassedBetter += len(outBetter)
			pairs[i].PassedWorse += len(outWorse)
			if !props.AlertsSubsequence(outWorse, outBetter) {
				pairs[i].HoldsOnAll = false
			}
			if len(outBetter) > len(outWorse) {
				pairs[i].StrictTrials++
			}
		}
	}
	return &DominationResult{Pairs: pairs}, nil
}

// BenefitPoint is one sweep point of the replication-benefit experiment:
// the fraction of the alerts that a perfectly informed CE (fed the full DM
// stream U) would raise that actually reach the user.
type BenefitPoint struct {
	LossP float64
	// RecallOneCE is the delivered fraction with a single CE.
	RecallOneCE float64
	// RecallTwoCE is the delivered fraction with two CEs and AD-1.
	RecallTwoCE float64
	// OneCI and TwoCI are 95% Wilson intervals for the two recalls.
	OneCI, TwoCI stats.Proportion
}

// BenefitResult quantifies Section 1's motivation: "the redundancy in the
// system reduces the probability that a critical alert will not be
// delivered".
type BenefitResult struct {
	Points []BenefitPoint
	Trials int
}

// Matches reports the expected shape: replication never hurts recall and
// strictly helps somewhere in the lossy region.
func (b *BenefitResult) Matches() bool {
	helped := false
	for _, p := range b.Points {
		if p.RecallTwoCE < p.RecallOneCE-1e-9 {
			return false
		}
		if p.RecallTwoCE > p.RecallOneCE+1e-9 {
			helped = true
		}
	}
	return helped
}

// Format renders the benefit curve with 95% confidence intervals.
func (b *BenefitResult) Format() string {
	var s strings.Builder
	s.WriteString("Replication benefit (condition c1, AD-1, alert recall vs. loss rate, 95% CI)\n")
	fmt.Fprintf(&s, "%-8s %-24s %-24s\n", "loss p", "1 CE", "2 CEs")
	for _, p := range b.Points {
		fmt.Fprintf(&s, "%-8.2f %-24s %-24s\n", p.LossP, p.OneCI, p.TwoCI)
	}
	return s.String()
}

// RunBenefit sweeps the front-link loss rate and measures alert recall with
// one versus two CEs (non-historical condition, AD-1 at the AD).
func RunBenefit(cfg Config) (*BenefitResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	c := cond.NewOverheat("x")
	res := &BenefitResult{Trials: cfg.Trials}
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		var ideal, one, two int
		for trial := 0; trial < cfg.Trials; trial++ {
			u := volatileStream(r, cfg.StreamLen)
			run, err := sim.RunSingleVar(c, u, link.Bernoulli{P: p}, link.Bernoulli{P: p}, r)
			if err != nil {
				return nil, err
			}
			want, err := idealAlerts(c, u)
			if err != nil {
				return nil, err
			}
			ideal += len(want)
			one += countRecall(want, event.KeySet(run.A1))
			merged := sim.RandomArrival(run.A1, run.A2, r)
			out := ad.Run(ad.NewAD1(), merged)
			two += countRecall(want, event.KeySet(out))
		}
		pt := BenefitPoint{LossP: p}
		if ideal > 0 {
			pt.RecallOneCE = float64(one) / float64(ideal)
			pt.RecallTwoCE = float64(two) / float64(ideal)
			var err error
			if pt.OneCI, err = stats.NewProportion(one, ideal); err != nil {
				return nil, err
			}
			if pt.TwoCI, err = stats.NewProportion(two, ideal); err != nil {
				return nil, err
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// idealAlerts returns T(U): what a loss-free CE would raise.
func idealAlerts(c cond.Condition, u []event.Update) ([]event.Alert, error) {
	run, err := sim.RunSingleVar(c, u, link.None{}, link.None{}, nil)
	if err != nil {
		return nil, err
	}
	return run.NOutput, nil
}

func countRecall(want []event.Alert, got map[string]struct{}) int {
	n := 0
	for _, a := range want {
		if _, ok := got[a.Key()]; ok {
			n++
		}
	}
	return n
}

// TradeoffPoint is one sweep point of the filter-strength tradeoff: the
// mean fraction of offered alerts each AD algorithm displays.
type TradeoffPoint struct {
	LossP     float64
	Displayed map[string]float64
}

// TradeoffResult captures the Section 4 narrative: each property gained
// costs displayed alerts (AD-1 ≥ AD-2/AD-3 ≥ AD-4).
type TradeoffResult struct {
	Algorithms []string
	Points     []TradeoffPoint
	Trials     int
}

// Matches reports the monotonicity the theorems imply: AD-1 displays at
// least as much as each stronger filter at every sweep point. (AD-2 vs
// AD-4 and AD-3 vs AD-4 are not ordered by the paper and can cross — see
// RunDomination.)
func (t *TradeoffResult) Matches() bool {
	for _, p := range t.Points {
		d := p.Displayed
		if d["AD-1"] < d["AD-2"]-1e-9 || d["AD-1"] < d["AD-3"]-1e-9 || d["AD-1"] < d["AD-4"]-1e-9 {
			return false
		}
	}
	return true
}

// Format renders the tradeoff curves.
func (t *TradeoffResult) Format() string {
	var b strings.Builder
	b.WriteString("Filter-strength tradeoff (condition c2, fraction of offered alerts displayed)\n")
	fmt.Fprintf(&b, "%-8s", "loss p")
	for _, a := range t.Algorithms {
		fmt.Fprintf(&b, " %-8s", a)
	}
	b.WriteString("\n")
	for _, p := range t.Points {
		fmt.Fprintf(&b, "%-8.2f", p.LossP)
		for _, a := range t.Algorithms {
			fmt.Fprintf(&b, " %-8.3f", p.Displayed[a])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunTradeoff sweeps loss and measures, per AD algorithm, the fraction of
// alerts offered to the AD that reach the user.
func RunTradeoff(cfg Config) (*TradeoffResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	algorithms := []string{"AD-1", "AD-2", "AD-3", "AD-4"}
	factories := map[string]func() ad.Filter{
		"AD-1": func() ad.Filter { return ad.NewAD1() },
		"AD-2": func() ad.Filter { return ad.NewAD2("x") },
		"AD-3": func() ad.Filter { return ad.NewAD3("x") },
		"AD-4": func() ad.Filter { return ad.NewAD4("x") },
	}
	c := cond.NewRiseAggressive("x")
	res := &TradeoffResult{Algorithms: algorithms, Trials: cfg.Trials}
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		offered := 0
		displayed := make(map[string]int, len(algorithms))
		for trial := 0; trial < cfg.Trials; trial++ {
			run, err := sim.RunSingleVar(c, volatileStream(r, cfg.StreamLen),
				link.Bernoulli{P: p}, link.Bernoulli{P: p}, r)
			if err != nil {
				return nil, err
			}
			merged := sim.RandomArrival(run.A1, run.A2, r)
			offered += len(merged)
			for _, a := range algorithms {
				displayed[a] += len(ad.Run(factories[a](), merged))
			}
		}
		pt := TradeoffPoint{LossP: p, Displayed: make(map[string]float64, len(algorithms))}
		for _, a := range algorithms {
			if offered > 0 {
				pt.Displayed[a] = float64(displayed[a]) / float64(offered)
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// CSV renders the benefit curve as comma-separated values for plotting.
func (b *BenefitResult) CSV() string {
	var s strings.Builder
	s.WriteString("loss_p,recall_1ce,recall_1ce_lo,recall_1ce_hi,recall_2ce,recall_2ce_lo,recall_2ce_hi\n")
	for _, p := range b.Points {
		fmt.Fprintf(&s, "%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			p.LossP, p.RecallOneCE, p.OneCI.Lo, p.OneCI.Hi, p.RecallTwoCE, p.TwoCI.Lo, p.TwoCI.Hi)
	}
	return s.String()
}

// CSV renders the tradeoff curves as comma-separated values.
func (t *TradeoffResult) CSV() string {
	var b strings.Builder
	b.WriteString("loss_p")
	for _, a := range t.Algorithms {
		fmt.Fprintf(&b, ",%s", strings.ToLower(strings.ReplaceAll(a, "-", "")))
	}
	b.WriteString("\n")
	for _, p := range t.Points {
		fmt.Fprintf(&b, "%.2f", p.LossP)
		for _, a := range t.Algorithms {
			fmt.Fprintf(&b, ",%.4f", p.Displayed[a])
		}
		b.WriteString("\n")
	}
	return b.String()
}
