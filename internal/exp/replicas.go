package exp

import (
	"fmt"
	"strings"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/sim"

	"math/rand"
)

// This file extends the paper's two-CE evaluation to N replicas — the
// generalization Section 2.1 asserts is straightforward — and adds the CE
// downtime experiment implied by the Section 1 motivation ("the CE can go
// down, causing it to miss updates").

// RunTableReplicas regenerates Table 1's property matrix for a system with
// `replicas` CEs under AD-1. The paper's theorems are stated independently
// of the replica count, so the expected matrix is exactly Table 1's; this
// experiment validates the "easily extended" claim. Canonical 2-CE
// counterexamples are embedded by adding replicas whose front links lost
// everything (a partitioned replica contributes no alerts and no combined
// input, so each witness carries over verbatim).
func RunTableReplicas(cfg Config, replicas int) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if replicas < 2 {
		return nil, fmt.Errorf("exp: replica table needs ≥ 2 replicas, got %d", replicas)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	paper := paperTable1()
	table := &Table{Name: fmt.Sprintf("Table 1 with %d replicas", replicas), Algorithm: "AD-1"}
	factory := func() ad.Filter { return ad.NewAD1() }
	for _, s := range scenarioOrder {
		row := Row{Scenario: s, Verdict: props.AllVerdict(), Paper: paper[s]}

		canonical, err := canonicalSingleVarRuns(s)
		if err != nil {
			return nil, err
		}
		for _, two := range canonical {
			nrun, err := widenRun(two, replicas)
			if err != nil {
				return nil, err
			}
			if err := accumulateNReplica(&row, nrun, factory); err != nil {
				return nil, err
			}
		}

		c := singleVarConditionFor(s)
		// N-way arrival enumeration is multinomial in the per-CE alert
		// counts; keep streams short enough that even the worst case — a
		// non-historical condition firing on every delivered update at
		// every replica — stays under sim.MaxArrivals. For 3 replicas a
		// length of 4 bounds the count at 12!/(4!)³ = 34650.
		streamLen := cfg.StreamLen
		if maxLen := 12 / replicas; streamLen > maxLen {
			streamLen = maxLen
		}
		trials := cfg.Trials/4 + 1
		for trial := 0; trial < trials; trial++ {
			losses := make([]link.Model, replicas)
			for i := range losses {
				if s == cond.ScenarioLossless {
					losses[i] = link.None{}
				} else {
					losses[i] = link.Bernoulli{P: cfg.LossP}
				}
			}
			run, err := sim.RunSingleVarN(c, volatileStream(r, streamLen), losses, r)
			if err != nil {
				return nil, err
			}
			if err := accumulateNReplica(&row, run, factory); err != nil {
				return nil, err
			}
			row.Trials++
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// widenRun lifts a canonical two-CE run to N replicas by appending
// replicas that received nothing.
func widenRun(two *sim.SingleVarRun, replicas int) (*sim.NReplicaRun, error) {
	run := &sim.NReplicaRun{
		Cond:    two.Cond,
		U:       two.U,
		Us:      [][]event.Update{two.U1, two.U2},
		As:      [][]event.Alert{two.A1, two.A2},
		NInput:  two.NInput,
		NOutput: two.NOutput,
	}
	for i := 2; i < replicas; i++ {
		run.Us = append(run.Us, nil)
		run.As = append(run.As, nil)
	}
	return run, nil
}

func accumulateNReplica(row *Row, run *sim.NReplicaRun, factory func() ad.Filter) error {
	v, exs, err := props.CheckNReplicaRun(run, props.FilterFactory(factory))
	if err != nil {
		return err
	}
	before := row.Verdict
	row.Verdict = row.Verdict.And(v)
	if before != row.Verdict {
		row.Counterexamples = append(row.Counterexamples, exs...)
	}
	return nil
}

// ReplicaBenefitPoint is one point of the replica-count sweep.
type ReplicaBenefitPoint struct {
	Replicas int
	// Recall is the fraction of T(U)'s alerts that reached the user.
	Recall float64
}

// ReplicaBenefitResult quantifies diminishing returns of replication at a
// fixed loss rate.
type ReplicaBenefitResult struct {
	LossP  float64
	Points []ReplicaBenefitPoint
	Trials int
}

// Matches reports the expected shape: recall is non-decreasing in the
// replica count and strictly improves from one to two replicas.
func (b *ReplicaBenefitResult) Matches() bool {
	for i := 1; i < len(b.Points); i++ {
		if b.Points[i].Recall < b.Points[i-1].Recall-1e-9 {
			return false
		}
	}
	return len(b.Points) >= 2 && b.Points[1].Recall > b.Points[0].Recall+1e-9
}

// Format renders the sweep.
func (b *ReplicaBenefitResult) Format() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Replica-count benefit (condition c1, AD-1, loss p=%.2f, alert recall)\n", b.LossP)
	fmt.Fprintf(&s, "%-10s %-10s\n", "replicas", "recall")
	for _, p := range b.Points {
		fmt.Fprintf(&s, "%-10d %-10.3f\n", p.Replicas, p.Recall)
	}
	return s.String()
}

// RunReplicaBenefit sweeps the number of CE replicas (1..5) at the
// configured loss rate and measures alert recall under AD-1.
func RunReplicaBenefit(cfg Config) (*ReplicaBenefitResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	c := cond.NewOverheat("x")
	res := &ReplicaBenefitResult{LossP: cfg.LossP, Trials: cfg.Trials}
	for replicas := 1; replicas <= 5; replicas++ {
		var ideal, got int
		for trial := 0; trial < cfg.Trials; trial++ {
			u := volatileStream(r, cfg.StreamLen)
			losses := make([]link.Model, replicas)
			for i := range losses {
				losses[i] = link.Bernoulli{P: cfg.LossP}
			}
			run, err := sim.RunSingleVarN(c, u, losses, r)
			if err != nil {
				return nil, err
			}
			want, err := idealAlerts(c, u)
			if err != nil {
				return nil, err
			}
			ideal += len(want)
			merged := sim.RandomArrivalN(run.As, r)
			out := ad.Run(ad.NewAD1(), merged)
			got += countRecall(want, event.KeySet(out))
		}
		p := ReplicaBenefitPoint{Replicas: replicas}
		if ideal > 0 {
			p.Recall = float64(got) / float64(ideal)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// DowntimePoint is one point of the CE-downtime sweep.
type DowntimePoint struct {
	// DownFrac is the fraction of the stream each CE independently missed
	// during its outage window.
	DownFrac float64
	// RecallOneCE / RecallTwoCE as in BenefitPoint.
	RecallOneCE, RecallTwoCE float64
}

// DowntimeResult quantifies the other failure mode of Section 1: the CE
// itself going down and missing updates, independent of link loss.
type DowntimeResult struct {
	Points []DowntimePoint
	Trials int
}

// Matches reports the expected shape: two CEs never do worse and strictly
// better somewhere.
func (d *DowntimeResult) Matches() bool {
	helped := false
	for _, p := range d.Points {
		if p.RecallTwoCE < p.RecallOneCE-1e-9 {
			return false
		}
		if p.RecallTwoCE > p.RecallOneCE+1e-9 {
			helped = true
		}
	}
	return helped
}

// Format renders the sweep.
func (d *DowntimeResult) Format() string {
	var s strings.Builder
	s.WriteString("CE downtime benefit (condition c1, AD-1, alert recall vs. outage length)\n")
	fmt.Fprintf(&s, "%-10s %-10s %-10s\n", "down frac", "1 CE", "2 CEs")
	for _, p := range d.Points {
		fmt.Fprintf(&s, "%-10.2f %-10.3f %-10.3f\n", p.DownFrac, p.RecallOneCE, p.RecallTwoCE)
	}
	return s.String()
}

// RunDowntime sweeps the length of a contiguous CE outage (each CE gets an
// independently placed outage window during which it misses every update)
// and measures alert recall with one vs. two CEs, lossless links.
func RunDowntime(cfg Config) (*DowntimeResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	c := cond.NewOverheat("x")
	res := &DowntimeResult{Trials: cfg.Trials}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		var ideal, one, two int
		for trial := 0; trial < cfg.Trials; trial++ {
			u := volatileStream(r, cfg.StreamLen)
			outage := func() link.Model {
				n := int(float64(len(u)) * frac)
				if n == 0 {
					return link.None{}
				}
				start := r.Intn(len(u) - n + 1)
				var seqNos []int64
				for i := start; i < start+n; i++ {
					seqNos = append(seqNos, u[i].SeqNo)
				}
				return link.NewDropSeqNos("x", seqNos...)
			}
			run, err := sim.RunSingleVarN(c, u, []link.Model{outage(), outage()}, r)
			if err != nil {
				return nil, err
			}
			want, err := idealAlerts(c, u)
			if err != nil {
				return nil, err
			}
			ideal += len(want)
			one += countRecall(want, event.KeySet(run.As[0]))
			merged := sim.RandomArrivalN(run.As, r)
			out := ad.Run(ad.NewAD1(), merged)
			two += countRecall(want, event.KeySet(out))
		}
		p := DowntimePoint{DownFrac: frac}
		if ideal > 0 {
			p.RecallOneCE = float64(one) / float64(ideal)
			p.RecallTwoCE = float64(two) / float64(ideal)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// CSV renders the replica-count sweep as comma-separated values.
func (b *ReplicaBenefitResult) CSV() string {
	var s strings.Builder
	s.WriteString("replicas,recall\n")
	for _, p := range b.Points {
		fmt.Fprintf(&s, "%d,%.4f\n", p.Replicas, p.Recall)
	}
	return s.String()
}

// CSV renders the downtime sweep as comma-separated values.
func (d *DowntimeResult) CSV() string {
	var s strings.Builder
	s.WriteString("down_frac,recall_1ce,recall_2ce\n")
	for _, p := range d.Points {
		fmt.Fprintf(&s, "%.2f,%.4f,%.4f\n", p.DownFrac, p.RecallOneCE, p.RecallTwoCE)
	}
	return s.String()
}
