package exp

import (
	"strings"
	"testing"
)

func TestTableReplicas3MatchesTable1(t *testing.T) {
	cfg := testConfig()
	cfg.Trials = 40
	tbl, err := RunTableReplicas(cfg, 3)
	if err != nil {
		t.Fatalf("RunTableReplicas: %v", err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	assertMatchesPaper(t, tbl)
	if !strings.Contains(tbl.Name, "3 replicas") {
		t.Errorf("table name = %q", tbl.Name)
	}
}

func TestTableReplicasValidation(t *testing.T) {
	if _, err := RunTableReplicas(testConfig(), 1); err == nil {
		t.Error("1 replica should be rejected")
	}
	bad := testConfig()
	bad.Trials = 0
	if _, err := RunTableReplicas(bad, 3); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestReplicaBenefit(t *testing.T) {
	res, err := RunReplicaBenefit(testConfig())
	if err != nil {
		t.Fatalf("RunReplicaBenefit: %v", err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points, want 5 (replicas 1..5)", len(res.Points))
	}
	if !res.Matches() {
		t.Errorf("replica benefit shape violated:\n%s", res.Format())
	}
	// Diminishing returns: the 1→2 gain should exceed the 4→5 gain.
	gain12 := res.Points[1].Recall - res.Points[0].Recall
	gain45 := res.Points[4].Recall - res.Points[3].Recall
	if gain12 <= gain45 {
		t.Errorf("expected diminishing returns: 1→2 gain %.3f vs 4→5 gain %.3f", gain12, gain45)
	}
	if !strings.Contains(res.Format(), "replicas") {
		t.Error("Format should render a header")
	}
}

func TestDowntime(t *testing.T) {
	res, err := RunDowntime(testConfig())
	if err != nil {
		t.Fatalf("RunDowntime: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4", len(res.Points))
	}
	if !res.Matches() {
		t.Errorf("downtime benefit shape violated:\n%s", res.Format())
	}
	if p := res.Points[0]; p.RecallOneCE < 0.999 || p.RecallTwoCE < 0.999 {
		t.Errorf("zero downtime should give full recall: %+v", p)
	}
	// Recall must degrade with outage length for the single CE.
	if res.Points[3].RecallOneCE >= res.Points[0].RecallOneCE {
		t.Error("single-CE recall should degrade with downtime")
	}
	if !strings.Contains(res.Format(), "down frac") {
		t.Error("Format should render a header")
	}
}

func TestDowntimeDeterministicBySeed(t *testing.T) {
	a, err := RunDowntime(testConfig())
	if err != nil {
		t.Fatalf("RunDowntime: %v", err)
	}
	b, err := RunDowntime(testConfig())
	if err != nil {
		t.Fatalf("RunDowntime: %v", err)
	}
	if a.Format() != b.Format() {
		t.Error("same seed must reproduce identical downtime results")
	}
}

func TestMaximality(t *testing.T) {
	res, err := RunMaximality(testConfig())
	if err != nil {
		t.Fatalf("RunMaximality: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Unjustified != 0 {
			t.Errorf("%s: %d unjustified drops — maximality theorem refuted?!", r.Algorithm, r.Unjustified)
		}
		if r.Displayed == 0 || r.Dropped == 0 {
			t.Errorf("%s: degenerate audit (displayed=%d dropped=%d)", r.Algorithm, r.Displayed, r.Dropped)
		}
		if r.Duplicates+r.Forced != r.Dropped {
			t.Errorf("%s: drop classification does not add up", r.Algorithm)
		}
	}
	if !res.Matches() {
		t.Errorf("maximality violated:\n%s", res.Format())
	}
	if !strings.Contains(res.Format(), "AD-4") {
		t.Error("Format should list every algorithm")
	}
}
