package exp

// The paper's theorems constrain only *which* updates are lost, never the
// loss process: the property matrix must be identical under independent
// (Bernoulli) and correlated (Gilbert–Elliott burst) loss. This test
// re-runs the Table 1 rows with bursty front links and checks the matrix
// still matches the paper.

import (
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/sim"

	"math/rand"
)

func TestTable1HoldsUnderBurstLoss(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	paper := paperTable1()
	for _, s := range []cond.Scenario{
		cond.ScenarioNonHistorical, cond.ScenarioConservative, cond.ScenarioAggressive,
	} {
		verdict := props.AllVerdict()

		// Canonical counterexamples are loss-pattern facts; they refute the
		// same cells regardless of the loss process generating them.
		canonical, err := canonicalSingleVarRuns(s)
		if err != nil {
			t.Fatalf("canonical runs: %v", err)
		}
		for _, run := range canonical {
			v, _, err := props.CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
			if err != nil {
				t.Fatalf("CheckSingleVarRun: %v", err)
			}
			verdict = verdict.And(v)
		}

		c := singleVarConditionFor(s)
		for trial := 0; trial < 60; trial++ {
			mk := func() link.Model {
				m, err := link.NewBurst(0.2, 0.4, 0.9)
				if err != nil {
					t.Fatalf("NewBurst: %v", err)
				}
				return m
			}
			run, err := sim.RunSingleVar(c, volatileStream(r, 6), mk(), mk(), r)
			if err != nil {
				t.Fatalf("RunSingleVar: %v", err)
			}
			v, _, err := props.CheckSingleVarRun(run, func() ad.Filter { return ad.NewAD1() })
			if err != nil {
				t.Fatalf("CheckSingleVarRun: %v", err)
			}
			verdict = verdict.And(v)
		}
		if verdict != paper[s] {
			t.Errorf("%v under burst loss: measured %v, paper says %v", s, verdict, paper[s])
		}
	}
}
