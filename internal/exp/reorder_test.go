package exp

import (
	"strings"
	"testing"

	"condmon/internal/event"
)

// reorderConfig keeps the per-schedule regeneration fast: five schedules
// each regenerate three tables, and every verdict runs the streaming
// auditor over every arrival order.
func reorderConfig() Config {
	return Config{Seed: 1, Trials: 12, StreamLen: 6, LossP: 0.3}
}

func gapFreeStream(n int) []event.Update {
	out := make([]event.Update, n)
	for i := range out {
		out[i] = event.U("x", int64(i+1), float64(3000+i))
	}
	return out
}

func TestDefaultReorderSchedulesWithinWindow(t *testing.T) {
	for _, s := range DefaultReorderSchedules() {
		if !s.WithinWindow() {
			t.Errorf("default schedule %v displaces %d beyond depth %d", s, s.MaxDisplacement(), s.depth())
		}
	}
}

// The acceptance window must hand the CE the original stream whenever the
// schedule stays within its depth: scramble and duplication are invisible
// downstream, which is exactly why the paper's tables keep applying.
func TestReorderAcceptRestoresGapFreeStream(t *testing.T) {
	u := gapFreeStream(12)
	for _, s := range DefaultReorderSchedules() {
		got := s.Accept(u)
		if len(got) != len(u) {
			t.Fatalf("%v: accepted %d of %d updates", s, len(got), len(u))
		}
		for i := range u {
			if got[i] != u[i] {
				t.Fatalf("%v: accepted[%d] = %v, want %v", s, i, got[i], u[i])
			}
		}
	}
}

// A lossy delivered stream stays a strictly seqno-increasing subsequence
// of itself after the window: the schedule never un-drops or reorders what
// the CE finally sees, so the composite is a legal paper front link.
func TestReorderAcceptKeepsInOrderSubsequence(t *testing.T) {
	u := gapFreeStream(12)
	lossy := []event.Update{u[0], u[4], u[5], u[6], u[10], u[11]}
	for _, s := range DefaultReorderSchedules() {
		got := s.Accept(lossy)
		delivered := make(map[int64]bool, len(lossy))
		for _, d := range lossy {
			delivered[d.SeqNo] = true
		}
		last := int64(0)
		for _, g := range got {
			if !delivered[g.SeqNo] {
				t.Fatalf("%v: accepted seqno %d was never delivered", s, g.SeqNo)
			}
			if g.SeqNo <= last {
				t.Fatalf("%v: accepted stream out of order at seqno %d after %d", s, g.SeqNo, last)
			}
			last = g.SeqNo
		}
	}
}

// The headline claim: every cell of Tables 1–3 matches the paper under
// every within-window schedule, with the streaming auditor producing the
// verdicts.
func TestReorderTablesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates 15 tables with the streaming checker")
	}
	ms, err := RunReorderTables(reorderConfig(), nil)
	if err != nil {
		t.Fatalf("RunReorderTables: %v", err)
	}
	if len(ms) != len(DefaultReorderSchedules()) {
		t.Fatalf("got %d matrices, want %d", len(ms), len(DefaultReorderSchedules()))
	}
	for _, m := range ms {
		if len(m.Tables) != 3 {
			t.Fatalf("schedule %v: %d tables, want 3", m.Schedule, len(m.Tables))
		}
		for _, tbl := range m.Tables {
			for _, row := range tbl.Rows {
				if !row.Matches() {
					t.Errorf("%s / %s under %v: measured %v, paper says %v",
						tbl.Name, row.Scenario, m.Schedule, row.Verdict, row.Paper)
				}
			}
		}
		if !m.Matches() || !strings.Contains(m.Format(), m.Schedule.Name) {
			t.Errorf("matrix for %v inconsistent with its rows", m.Schedule)
		}
	}
}

// Beyond the window the schedule is not a reorder table at all: depth
// evictions are the paper's loss model. RunReorderTables refuses it, and
// Accept shows the mapping — induced drops, but still an in-order
// subsequence.
func TestReorderOverDepthMapsToLoss(t *testing.T) {
	over := ReorderSchedule{Name: "over-depth", Rotate: 4, Depth: 2}
	if over.WithinWindow() {
		t.Fatal("rotate-4/depth-2 must be outside the window")
	}
	if _, err := RunReorderTables(reorderConfig(), []ReorderSchedule{over}); err == nil {
		t.Fatal("RunReorderTables must reject an over-depth schedule")
	}
	u := gapFreeStream(12)
	got := over.Accept(u)
	if len(got) >= len(u) {
		t.Fatalf("over-depth schedule accepted %d of %d updates; expected induced loss", len(got), len(u))
	}
	last := int64(0)
	for _, g := range got {
		if g.SeqNo <= last {
			t.Fatalf("accepted stream out of order at seqno %d after %d", g.SeqNo, last)
		}
		last = g.SeqNo
	}
}

// Equal seeds reproduce identical matrices, schedules included.
func TestReorderTablesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the schedule matrices twice")
	}
	cfg := reorderConfig()
	cfg.Trials = 6
	one := []ReorderSchedule{{Name: "swap-adjacent", Swap: 1, Depth: 2}}
	a, err := RunReorderTables(cfg, one)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunReorderTables(cfg, one)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a[0].Format() != b[0].Format() {
		t.Errorf("same seed produced different matrices:\n%s\nvs\n%s", a[0].Format(), b[0].Format())
	}
}
