package exp

// Per-reorder-schedule property matrices: the experiment-layer counterpart
// of the transport layer's striped-ingest equivalence suite. PR 9 relaxed
// the paper's in-order front-link assumption to bounded out-of-order
// delivery re-serialized by seq.Reorder; the claim there was proved as
// byte-identical displayed streams. Here the same claim is re-verified in
// the paper's own vocabulary: for every reorder/duplication schedule the
// acceptance window tolerates, regenerate Tables 1–3 and require every
// cell to match the paper — because what the window hands the CE is a
// lossy in-order front link, exactly the model the tables quantify over.
//
// Verdicts are produced by the streaming auditor
// (audit.CheckSingleVarRunStreaming / CheckMultiVarRunStreaming), not the
// offline props checkers, so the matrices double as an end-to-end exercise
// of the online guarantee auditor over every scheduled run.

import (
	"fmt"
	"strings"

	"condmon/internal/ad"
	"condmon/internal/audit"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/seq"
	"condmon/internal/sim"

	"math/rand"
)

// ReorderSchedule is one deterministic wire-arrival discipline applied to
// each front link, plus the acceptance window that re-serializes it. The
// zero value is the in-order passthrough control.
type ReorderSchedule struct {
	// Name labels the schedule in tables and JSON.
	Name string
	// Rotate > 1 reverses the arrival order inside consecutive blocks of
	// this size (a burst whose datagrams took paths of opposing latency);
	// a tail shorter than one block arrives unpermuted.
	Rotate int
	// Swap > 0 swaps every Swap-th adjacent datagram pair in flight
	// (Swap = 1 swaps every pair — the classic two-path stripe).
	Swap int
	// DupEvery > 0 repeats every DupEvery-th datagram immediately after
	// itself (an at-least-once retransmit path).
	DupEvery int
	// Depth is the acceptance window depth handed to seq.NewReorder.
	Depth int
}

// String renders the schedule name with its parameters.
func (s ReorderSchedule) String() string {
	return fmt.Sprintf("%s (rotate=%d swap=%d dup=%d depth=%d)",
		s.Name, s.Rotate, s.Swap, s.DupEvery, s.Depth)
}

// MaxDisplacement bounds how far the schedule moves any datagram from its
// emission position: the window restores order without declaring loss
// exactly when Depth exceeds this bound (and the stream has no real gaps).
func (s ReorderSchedule) MaxDisplacement() int {
	d := 0
	if s.Rotate > 1 {
		d += s.Rotate - 1
	}
	if s.Swap > 0 {
		d++
	}
	return d
}

// WithinWindow reports whether the acceptance window provably restores
// every schedule arrival of a gap-free stream without induced loss.
func (s ReorderSchedule) WithinWindow() bool { return s.MaxDisplacement() < s.depth() }

func (s ReorderSchedule) depth() int {
	if s.Depth < 1 {
		return 1
	}
	return s.Depth
}

// arrivalOrder applies the schedule's deterministic scramble: rotation
// first (path-latency bursts), then adjacent swaps (striping), then
// duplication (retransmits). The input is not modified.
func (s ReorderSchedule) arrivalOrder(us []event.Update) []event.Update {
	out := append([]event.Update(nil), us...)
	if s.Rotate > 1 {
		for i := 0; i+s.Rotate <= len(out); i += s.Rotate {
			for a, b := i, i+s.Rotate-1; a < b; a, b = a+1, b-1 {
				out[a], out[b] = out[b], out[a]
			}
		}
	}
	if s.Swap > 0 {
		for p := 0; 2*p+1 < len(out); p++ {
			if p%s.Swap == 0 {
				out[2*p], out[2*p+1] = out[2*p+1], out[2*p]
			}
		}
	}
	if s.DupEvery > 0 {
		dup := make([]event.Update, 0, len(out)+len(out)/s.DupEvery)
		for i, u := range out {
			dup = append(dup, u)
			if (i+1)%s.DupEvery == 0 {
				dup = append(dup, u)
			}
		}
		out = dup
	}
	return out
}

// Accept runs the delivered (post-loss, in-order) stream through the
// schedule's wire scramble and acceptance window and returns what the CE
// sees: a strictly seqno-increasing subsequence — a paper front link.
func (s ReorderSchedule) Accept(us []event.Update) []event.Update {
	if len(us) == 0 {
		return nil
	}
	base := us[0].SeqNo
	for _, u := range us {
		if u.SeqNo < base {
			base = u.SeqNo
		}
	}
	r := seq.NewReorder[event.Update](base-1, s.depth(), 0)
	var out []event.Update
	for i, u := range s.arrivalOrder(us) {
		out, _ = r.Offer(u.SeqNo, u, int64(i), out)
	}
	return r.FlushAll(out)
}

// scheduledLink realizes (loss ∘ schedule ∘ window) for one front link as
// a deterministic per-seqno drop model over the emitted stream u, so sim
// replays exactly the delivered stream the acceptance window produced.
// Depth evictions and dup-shadowed gaps surface as extra dropped seqnos —
// the paper's loss model, which lossy scenario rows already admit.
func (s ReorderSchedule) scheduledLink(v event.VarName, u []event.Update, loss link.Model, r *rand.Rand) (link.Model, int) {
	delivered := s.Accept(link.Apply(u, loss, r))
	kept := seq.NewSet()
	for _, d := range delivered {
		kept.Add(d.SeqNo)
	}
	var dropped []int64
	for _, uu := range u {
		if uu.Var == v && !kept.Contains(uu.SeqNo) {
			dropped = append(dropped, uu.SeqNo)
		}
	}
	return link.NewDropSeqNos(v, dropped...), len(dropped)
}

// ReorderMatrix is Tables 1–3 regenerated under one schedule.
type ReorderMatrix struct {
	Schedule ReorderSchedule
	Tables   []*Table
}

// Matches reports whether every cell of every table equals the paper's.
func (m *ReorderMatrix) Matches() bool {
	for _, t := range m.Tables {
		if !t.Matches() {
			return false
		}
	}
	return true
}

// Format renders the schedule header and each table.
func (m *ReorderMatrix) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== schedule %v ==\n", m.Schedule)
	for _, t := range m.Tables {
		b.WriteString(t.Format())
	}
	return b.String()
}

// String is Format, satisfying fmt.Stringer for the bench harness.
func (m *ReorderMatrix) String() string { return m.Format() }

// DefaultReorderSchedules are the wire disciplines the acceptance window
// tolerates losslessly: the in-order control, two-path striping, a
// path-latency burst reversal, retransmit duplication, and all three at
// once behind a deep window.
func DefaultReorderSchedules() []ReorderSchedule {
	return []ReorderSchedule{
		{Name: "in-order", Depth: 1},
		{Name: "swap-adjacent", Swap: 1, Depth: 2},
		{Name: "block-reverse-4", Rotate: 4, Depth: 4},
		{Name: "dup-every-2", DupEvery: 2, Depth: 2},
		{Name: "storm", Rotate: 4, Swap: 1, DupEvery: 3, Depth: 8},
	}
}

// RunReorderTables regenerates Tables 1–3 under each schedule, with every
// verdict produced by the streaming auditor. Schedules must be within the
// acceptance window: a schedule that induces loss on a gap-free stream
// would make the Lossless rows unfaithful to the paper's model, and the
// run double-checks that invariant per trial.
func RunReorderTables(cfg Config, schedules []ReorderSchedule) ([]*ReorderMatrix, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(schedules) == 0 {
		schedules = DefaultReorderSchedules()
	}
	out := make([]*ReorderMatrix, 0, len(schedules))
	for _, s := range schedules {
		if !s.WithinWindow() {
			return nil, fmt.Errorf("exp: schedule %v displaces up to %d, beyond its window depth %d — that is the loss model, not a reorder table",
				s, s.MaxDisplacement(), s.depth())
		}
		t1, err := runReorderSingleVarTable(fmt.Sprintf("Table 1 / %s", s.Name), "AD-1", cfg, s,
			func() ad.Filter { return ad.NewAD1() }, paperTable1())
		if err != nil {
			return nil, err
		}
		t2, err := runReorderSingleVarTable(fmt.Sprintf("Table 2 / %s", s.Name), "AD-2", cfg, s,
			func() ad.Filter { return ad.NewAD2("x") }, paperTable2())
		if err != nil {
			return nil, err
		}
		t3, err := runReorderMultiVarTable(fmt.Sprintf("Table 3 / %s", s.Name), "AD-5", cfg, s,
			func() ad.Filter { return ad.NewAD5("x", "y") }, paperTable3())
		if err != nil {
			return nil, err
		}
		out = append(out, &ReorderMatrix{Schedule: s, Tables: []*Table{t1, t2, t3}})
	}
	return out, nil
}

// runReorderSingleVarTable mirrors runSingleVarTable with two changes: the
// randomized trials route each front link through the schedule's scramble
// and acceptance window, and verdicts come from the streaming auditor.
// Canonical proof runs are kept verbatim — in-order delivery with specific
// drops is admissible under every schedule, and they pin the ✗ cells.
func runReorderSingleVarTable(name, algo string, cfg Config, sched ReorderSchedule, factory func() ad.Filter, paper map[cond.Scenario]props.Verdict) (*Table, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	table := &Table{Name: name, Algorithm: algo}
	for _, s := range scenarioOrder {
		row := Row{Scenario: s, Verdict: props.AllVerdict(), Paper: paper[s]}

		canonical, err := canonicalSingleVarRuns(s)
		if err != nil {
			return nil, err
		}
		for _, run := range canonical {
			if err := accumulateStreamingSingleVar(&row, run, factory); err != nil {
				return nil, err
			}
		}

		c := singleVarConditionFor(s)
		for trial := 0; trial < cfg.Trials; trial++ {
			loss1, loss2 := link.Model(link.None{}), link.Model(link.None{})
			if s != cond.ScenarioLossless {
				loss1, loss2 = link.Bernoulli{P: cfg.LossP}, link.Bernoulli{P: cfg.LossP}
			}
			u := volatileStream(r, cfg.StreamLen)
			m1, d1 := sched.scheduledLink("x", u, loss1, r)
			m2, d2 := sched.scheduledLink("x", u, loss2, r)
			if s == cond.ScenarioLossless && d1+d2 > 0 {
				return nil, fmt.Errorf("exp: schedule %v induced %d drops on a lossless link", sched, d1+d2)
			}
			run, err := sim.RunSingleVar(c, u, m1, m2, nil)
			if err != nil {
				return nil, err
			}
			if err := accumulateStreamingSingleVar(&row, run, factory); err != nil {
				return nil, err
			}
			row.Trials++
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

func accumulateStreamingSingleVar(row *Row, run *sim.SingleVarRun, factory func() ad.Filter) error {
	v, err := audit.CheckSingleVarRunStreaming(run, props.FilterFactory(factory))
	if err != nil {
		return err
	}
	row.Verdict = row.Verdict.And(v)
	return nil
}

// runReorderMultiVarTable is the Table 3 counterpart: each variable's
// front link gets its own scramble and acceptance window, matching the
// transport's per-variable reorder rings.
func runReorderMultiVarTable(name, algo string, cfg Config, sched ReorderSchedule, factory func() ad.Filter, paper map[cond.Scenario]props.Verdict) (*Table, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	interleavers := []sim.Interleaver{sim.RandomInterleave, sim.RoundRobin, sim.Sequential, sim.SequentialReverse}
	table := &Table{Name: name, Algorithm: algo}
	for _, s := range scenarioOrder {
		row := Row{Scenario: s, Verdict: props.AllVerdict(), Paper: paper[s]}

		canonical, err := canonicalMultiVarRuns(s)
		if err != nil {
			return nil, err
		}
		for _, run := range canonical {
			if err := accumulateStreamingMultiVar(&row, run, factory); err != nil {
				return nil, err
			}
		}

		c := multiVarConditionFor(s)
		n := cfg.StreamLen / 2
		if n < 2 {
			n = 2
		}
		if n > 3 {
			n = 3
		}
		mvTrials := cfg.Trials/10 + 1
		for trial := 0; trial < mvTrials; trial++ {
			streams := multiVolatileStreams(r, n)
			var loss [2]map[event.VarName]link.Model
			for i := range loss {
				loss[i] = make(map[event.VarName]link.Model, len(streams))
				for v, u := range streams {
					base := link.Model(link.None{})
					if s != cond.ScenarioLossless {
						base = link.Bernoulli{P: cfg.LossP}
					}
					m, drops := sched.scheduledLink(v, u, base, r)
					if s == cond.ScenarioLossless && drops > 0 {
						return nil, fmt.Errorf("exp: schedule %v induced %d drops on lossless %s", sched, drops, v)
					}
					loss[i][v] = m
				}
			}
			inter := [2]sim.Interleaver{
				interleavers[r.Intn(len(interleavers))],
				interleavers[r.Intn(len(interleavers))],
			}
			run, err := sim.RunMultiVar(c, streams, loss, inter, r)
			if err != nil {
				return nil, err
			}
			if err := accumulateStreamingMultiVar(&row, run, factory); err != nil {
				return nil, err
			}
			row.Trials++
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

func accumulateStreamingMultiVar(row *Row, run *sim.MultiVarRun, factory func() ad.Filter) error {
	v, err := audit.CheckMultiVarRunStreaming(run, props.FilterFactory(factory))
	if err != nil {
		return err
	}
	row.Verdict = row.Verdict.And(v)
	return nil
}
