package exp

import (
	"strings"
	"testing"

	"condmon/internal/cond"
	"condmon/internal/props"
)

// testConfig keeps unit-test runtime modest; the full defaults run in the
// benchmark harness.
func testConfig() Config {
	return Config{Seed: 1, Trials: 60, StreamLen: 6, LossP: 0.3}
}

func requireTable(t *testing.T, gen func(Config) (*Table, error), cfg Config) *Table {
	t.Helper()
	tbl, err := gen(cfg)
	if err != nil {
		t.Fatalf("table generation failed: %v", err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%s has %d rows, want 4", tbl.Name, len(tbl.Rows))
	}
	return tbl
}

func assertMatchesPaper(t *testing.T, tbl *Table) {
	t.Helper()
	for _, row := range tbl.Rows {
		if !row.Matches() {
			t.Errorf("%s / %s: measured %v, paper says %v",
				tbl.Name, row.Scenario, row.Verdict, row.Paper)
		}
	}
}

func TestTable1(t *testing.T) {
	tbl := requireTable(t, RunTable1, testConfig())
	assertMatchesPaper(t, tbl)
	if !tbl.Matches() {
		t.Error("Table 1 does not match the paper")
	}
}

func TestTable2(t *testing.T) {
	tbl := requireTable(t, RunTable2, testConfig())
	assertMatchesPaper(t, tbl)
}

func TestTableAD3(t *testing.T) {
	tbl := requireTable(t, RunTableAD3, testConfig())
	assertMatchesPaper(t, tbl)
}

func TestTableAD4(t *testing.T) {
	tbl := requireTable(t, RunTableAD4, testConfig())
	assertMatchesPaper(t, tbl)
}

func TestTable3(t *testing.T) {
	tbl := requireTable(t, RunTable3, testConfig())
	assertMatchesPaper(t, tbl)
}

func TestTableAD6(t *testing.T) {
	tbl := requireTable(t, RunTableAD6, testConfig())
	assertMatchesPaper(t, tbl)
}

func TestRefutedCellsHaveCounterexamples(t *testing.T) {
	tbl := requireTable(t, RunTable1, testConfig())
	for _, row := range tbl.Rows {
		refuted := 0
		if !row.Verdict.Ordered {
			refuted++
		}
		if !row.Verdict.Complete {
			refuted++
		}
		if !row.Verdict.Consistent {
			refuted++
		}
		if refuted > 0 && len(row.Counterexamples) == 0 {
			t.Errorf("%s: %d refuted cells but no counterexample recorded", row.Scenario, refuted)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := requireTable(t, RunTable1, testConfig())
	s := tbl.Format()
	for _, want := range []string{"Table 1", "AD-1", "Lossless", "Aggressive", "match"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "MISMATCH") {
		t.Errorf("Format() reports a mismatch:\n%s", s)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Trials: 0, StreamLen: 6, LossP: 0.3},
		{Trials: 10, StreamLen: 1, LossP: 0.3},
		{Trials: 10, StreamLen: 40, LossP: 0.3},
		{Trials: 10, StreamLen: 6, LossP: -0.1},
		{Trials: 10, StreamLen: 6, LossP: 1.5},
	}
	for _, cfg := range bad {
		if _, err := RunTable1(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestDomination(t *testing.T) {
	res, err := RunDomination(testConfig())
	if err != nil {
		t.Fatalf("RunDomination: %v", err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("measured %d pairs, want 3", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if !p.HoldsOnAll {
			t.Errorf("%s > %s: subsequence relation violated", p.Better, p.Worse)
		}
		if p.StrictTrials == 0 {
			t.Errorf("%s > %s: no strict witness in %d trials", p.Better, p.Worse, p.Trials)
		}
		if p.PassedBetter < p.PassedWorse {
			t.Errorf("%s passed fewer alerts (%d) than %s (%d)",
				p.Better, p.PassedBetter, p.Worse, p.PassedWorse)
		}
	}
	if !res.Matches() {
		t.Error("domination result does not match the theorems")
	}
	if !strings.Contains(res.Format(), "AD-1") {
		t.Error("Format() should mention the algorithms")
	}
}

func TestBenefit(t *testing.T) {
	res, err := RunBenefit(testConfig())
	if err != nil {
		t.Fatalf("RunBenefit: %v", err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("measured %d points, want 6", len(res.Points))
	}
	if p := res.Points[0]; p.LossP != 0 || p.RecallOneCE < 0.999 || p.RecallTwoCE < 0.999 {
		t.Errorf("lossless recall should be 1.0, got %+v", p)
	}
	if !res.Matches() {
		t.Errorf("replication should never hurt and should help somewhere:\n%s", res.Format())
	}
	// Monotone-ish: recall at p=0.5 below recall at p=0 for one CE.
	if res.Points[5].RecallOneCE >= res.Points[0].RecallOneCE {
		t.Error("single-CE recall should degrade with loss")
	}
}

func TestTradeoff(t *testing.T) {
	res, err := RunTradeoff(testConfig())
	if err != nil {
		t.Fatalf("RunTradeoff: %v", err)
	}
	if !res.Matches() {
		t.Errorf("tradeoff monotonicity violated:\n%s", res.Format())
	}
	if !strings.Contains(res.Format(), "loss p") {
		t.Error("Format() should render the header")
	}
}

func TestAllTables(t *testing.T) {
	cfg := testConfig()
	cfg.Trials = 25
	tables, err := AllTables(cfg)
	if err != nil {
		t.Fatalf("AllTables: %v", err)
	}
	if len(tables) != 6 {
		t.Fatalf("AllTables returned %d tables, want 6", len(tables))
	}
	for _, tbl := range tables {
		assertMatchesPaper(t, tbl)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := testConfig()
	cfg.Trials = 20
	a, err := RunTable1(cfg)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	b, err := RunTable1(cfg)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if a.Format() != b.Format() {
		t.Error("same seed must reproduce the identical table")
	}
}

func TestScenarioConditionsClassifyCorrectly(t *testing.T) {
	// The conditions used per row must land in that row's scenario class.
	rows := []struct {
		s        cond.Scenario
		lossless bool
	}{
		{cond.ScenarioNonHistorical, false},
		{cond.ScenarioConservative, false},
		{cond.ScenarioAggressive, false},
	}
	for _, row := range rows {
		c := singleVarConditionFor(row.s)
		if got := cond.ClassifyScenario(c, row.lossless); got != row.s {
			t.Errorf("single-var condition for %v classifies as %v", row.s, got)
		}
		mc := multiVarConditionFor(row.s)
		if got := cond.ClassifyScenario(mc, row.lossless); got != row.s {
			t.Errorf("multi-var condition for %v classifies as %v", row.s, got)
		}
	}
}

func TestPaperVerdictTablesInternallyConsistent(t *testing.T) {
	// Completeness implies consistency in every paper-stated cell
	// ("Trivially, completeness implies consistency").
	all := []map[cond.Scenario]props.Verdict{
		paperTable1(), paperTable2(), paperTableAD3(), paperTableAD4(), paperTable3(), paperTableAD6(),
	}
	for i, tbl := range all {
		for s, v := range tbl {
			if v.Complete && !v.Consistent {
				t.Errorf("paper table %d, %v: complete but inconsistent is impossible", i, s)
			}
		}
	}
}

func TestCurveCSVOutputs(t *testing.T) {
	cfg := testConfig()
	cfg.Trials = 20
	benefit, err := RunBenefit(cfg)
	if err != nil {
		t.Fatalf("RunBenefit: %v", err)
	}
	csv := benefit.CSV()
	if !strings.HasPrefix(csv, "loss_p,recall_1ce") || strings.Count(csv, "\n") != 7 {
		t.Errorf("benefit CSV malformed:\n%s", csv)
	}
	tradeoff, err := RunTradeoff(cfg)
	if err != nil {
		t.Fatalf("RunTradeoff: %v", err)
	}
	csv = tradeoff.CSV()
	if !strings.Contains(csv, "ad1") || strings.Count(csv, "\n") != 7 {
		t.Errorf("tradeoff CSV malformed:\n%s", csv)
	}
	replicas, err := RunReplicaBenefit(cfg)
	if err != nil {
		t.Fatalf("RunReplicaBenefit: %v", err)
	}
	if got := strings.Count(replicas.CSV(), "\n"); got != 6 {
		t.Errorf("replica CSV has %d lines", got)
	}
	downtime, err := RunDowntime(cfg)
	if err != nil {
		t.Fatalf("RunDowntime: %v", err)
	}
	if got := strings.Count(downtime.CSV(), "\n"); got != 5 {
		t.Errorf("downtime CSV has %d lines", got)
	}
}
