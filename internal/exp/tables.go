// Package exp is the experiment harness: it regenerates every table in the
// paper (Tables 1–3 plus the AD-3/AD-4/AD-6 variants the text describes),
// measures the domination tradeoffs of Theorems 6 and 8, and quantifies the
// replication benefit that motivates the paper. Verdicts are produced by
// simulation — canonical scenarios lifted from the paper's proofs guarantee
// that every ✗ cell is refuted by a concrete counterexample, and randomized
// runs (all arrival orders checked exhaustively) probe every ✓ cell.
package exp

import (
	"fmt"
	"strings"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/sim"

	"math/rand"
)

// Config parameterizes table regeneration.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce identical tables.
	Seed int64
	// Trials is the number of randomized runs per scenario row.
	Trials int
	// StreamLen is the number of updates per DM per randomized run. Kept
	// small so arrival orders can be enumerated exhaustively.
	StreamLen int
	// LossP is the per-update front-link drop probability in lossy rows.
	LossP float64
}

// DefaultConfig returns the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: 1, Trials: 400, StreamLen: 6, LossP: 0.3}
}

func (c Config) validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("exp: trials must be ≥ 1, got %d", c.Trials)
	}
	if c.StreamLen < 2 || c.StreamLen > 10 {
		return fmt.Errorf("exp: stream length %d outside [2,10] (arrival enumeration bound)", c.StreamLen)
	}
	if c.LossP < 0 || c.LossP > 1 {
		return fmt.Errorf("exp: loss probability %g outside [0,1]", c.LossP)
	}
	return nil
}

// Row is one scenario row of a property table.
type Row struct {
	Scenario cond.Scenario
	Verdict  props.Verdict
	// Paper is the verdict the paper states for this cell.
	Paper props.Verdict
	// Trials counts the randomized runs behind the verdict.
	Trials int
	// Counterexamples holds one witness per refuted property.
	Counterexamples []props.Counterexample
}

// Matches reports whether the measured verdict equals the paper's.
func (r Row) Matches() bool { return r.Verdict == r.Paper }

// Table is a regenerated property table.
type Table struct {
	Name      string
	Algorithm string
	Rows      []Row
}

// Matches reports whether every cell equals the paper's.
func (t *Table) Matches() bool {
	for _, r := range t.Rows {
		if !r.Matches() {
			return false
		}
	}
	return true
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: systems under Algorithm %s\n", t.Name, t.Algorithm)
	fmt.Fprintf(&b, "%-32s %-6s %-6s %-6s %-8s\n", "Scenario", "Ord.", "Comp.", "Cons.", "paper?")
	mark := func(v bool) string {
		if v {
			return "✓"
		}
		return "✗"
	}
	for _, r := range t.Rows {
		agree := "match"
		if !r.Matches() {
			agree = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-32s %-6s %-6s %-6s %-8s\n",
			r.Scenario, mark(r.Verdict.Ordered), mark(r.Verdict.Complete), mark(r.Verdict.Consistent), agree)
	}
	return b.String()
}

// Paper-stated verdicts. Table 1 (single variable, AD-1).
func paperTable1() map[cond.Scenario]props.Verdict {
	return map[cond.Scenario]props.Verdict{
		cond.ScenarioLossless:      {Ordered: true, Complete: true, Consistent: true},
		cond.ScenarioNonHistorical: {Ordered: false, Complete: true, Consistent: true},
		cond.ScenarioConservative:  {Ordered: false, Complete: false, Consistent: true},
		cond.ScenarioAggressive:    {Ordered: false, Complete: false, Consistent: false},
	}
}

// Table 2 (single variable, AD-2).
func paperTable2() map[cond.Scenario]props.Verdict {
	return map[cond.Scenario]props.Verdict{
		cond.ScenarioLossless:      {Ordered: true, Complete: true, Consistent: true},
		cond.ScenarioNonHistorical: {Ordered: true, Complete: false, Consistent: true},
		cond.ScenarioConservative:  {Ordered: true, Complete: false, Consistent: true},
		cond.ScenarioAggressive:    {Ordered: true, Complete: false, Consistent: false},
	}
}

// Section 4.3: AD-3 is "very similar to Table 1 except that the last row
// (Aggressive Triggering) is also consistent".
func paperTableAD3() map[cond.Scenario]props.Verdict {
	m := paperTable1()
	m[cond.ScenarioAggressive] = props.Verdict{Ordered: false, Complete: false, Consistent: true}
	return m
}

// Section 4.4: AD-4 is Table 2 with Aggressive also consistent.
func paperTableAD4() map[cond.Scenario]props.Verdict {
	m := paperTable2()
	m[cond.ScenarioAggressive] = props.Verdict{Ordered: true, Complete: false, Consistent: true}
	return m
}

// Table 3 (multi-variable, AD-5).
func paperTable3() map[cond.Scenario]props.Verdict {
	return map[cond.Scenario]props.Verdict{
		cond.ScenarioLossless:      {Ordered: true, Complete: false, Consistent: true},
		cond.ScenarioNonHistorical: {Ordered: true, Complete: false, Consistent: true},
		cond.ScenarioConservative:  {Ordered: true, Complete: false, Consistent: true},
		cond.ScenarioAggressive:    {Ordered: true, Complete: false, Consistent: false},
	}
}

// Section 5.2: AD-6 is Table 3 with Aggressive also consistent.
func paperTableAD6() map[cond.Scenario]props.Verdict {
	m := paperTable3()
	m[cond.ScenarioAggressive] = props.Verdict{Ordered: true, Complete: false, Consistent: true}
	return m
}

// scenarios in table order.
var scenarioOrder = []cond.Scenario{
	cond.ScenarioLossless,
	cond.ScenarioNonHistorical,
	cond.ScenarioConservative,
	cond.ScenarioAggressive,
}

// singleVarConditionFor returns the representative condition for a
// single-variable scenario row: the paper's own c1/c2/c3.
func singleVarConditionFor(s cond.Scenario) cond.Condition {
	switch s {
	case cond.ScenarioNonHistorical:
		return cond.NewOverheat("x")
	case cond.ScenarioConservative:
		return cond.NewRiseConservative("x")
	default: // Lossless row exercises the hardest condition; Aggressive row.
		return cond.NewRiseAggressive("x")
	}
}

// canonicalSingleVarRuns returns the proof scenarios of the paper for a
// row, guaranteeing that every ✗ cell has a deterministic witness.
func canonicalSingleVarRuns(s cond.Scenario) ([]*sim.SingleVarRun, error) {
	switch s {
	case cond.ScenarioLossless:
		// No loss: nothing to witness; randomized runs confirm the ✓s.
		return nil, nil
	case cond.ScenarioNonHistorical:
		// Theorem 2's proof: U = ⟨1(3100), 2(3500)⟩, CE2 misses 1.
		u := []event.Update{event.U("x", 1, 3100), event.U("x", 2, 3500)}
		run, err := sim.RunSingleVar(cond.NewOverheat("x"), u, link.None{}, link.NewDropSeqNos("x", 1), nil)
		if err != nil {
			return nil, err
		}
		return []*sim.SingleVarRun{run}, nil
	case cond.ScenarioConservative:
		// Theorem 3's proof: U1 = ⟨1(1000),2(1500)⟩, U2 = ⟨3(2000),4(2500)⟩.
		u := []event.Update{
			event.U("x", 1, 1000), event.U("x", 2, 1500),
			event.U("x", 3, 2000), event.U("x", 4, 2500),
		}
		run, err := sim.RunSingleVar(cond.NewRiseConservative("x"), u,
			link.NewDropSeqNos("x", 3, 4), link.NewDropSeqNos("x", 1, 2), nil)
		if err != nil {
			return nil, err
		}
		return []*sim.SingleVarRun{run}, nil
	case cond.ScenarioAggressive:
		// Theorem 4's proof: U = ⟨1(400),2(700),3(720)⟩, CE2 misses 2 —
		// plus Theorem 3's shape for un-orderedness/incompleteness.
		u := []event.Update{event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)}
		run1, err := sim.RunSingleVar(cond.NewRiseAggressive("x"), u, link.None{}, link.NewDropSeqNos("x", 2), nil)
		if err != nil {
			return nil, err
		}
		u2 := []event.Update{
			event.U("x", 1, 1000), event.U("x", 2, 1500),
			event.U("x", 3, 2000), event.U("x", 4, 2500),
		}
		run2, err := sim.RunSingleVar(cond.NewRiseAggressive("x"), u2,
			link.NewDropSeqNos("x", 3, 4), link.NewDropSeqNos("x", 1, 2), nil)
		if err != nil {
			return nil, err
		}
		return []*sim.SingleVarRun{run1, run2}, nil
	default:
		return nil, fmt.Errorf("exp: unknown scenario %v", s)
	}
}

// volatileStream generates a stream whose values swing widely so that c1,
// c2 and c3 all trigger frequently.
func volatileStream(r *rand.Rand, n int) []event.Update {
	out := make([]event.Update, n)
	val := 2900.0
	for i := range out {
		val += float64(r.Intn(700) - 250)
		out[i] = event.U("x", int64(i+1), val)
	}
	return out
}

// runSingleVarTable regenerates one of the single-variable tables for the
// given filter factory (fresh filter per arrival order).
func runSingleVarTable(name, algo string, cfg Config, factory func() ad.Filter, paper map[cond.Scenario]props.Verdict) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	table := &Table{Name: name, Algorithm: algo}
	for _, s := range scenarioOrder {
		row := Row{Scenario: s, Verdict: props.AllVerdict(), Paper: paper[s]}

		// Canonical proof scenarios first: they pin down the ✗ cells.
		canonical, err := canonicalSingleVarRuns(s)
		if err != nil {
			return nil, err
		}
		for _, run := range canonical {
			if err := accumulateSingleVar(&row, run, factory); err != nil {
				return nil, err
			}
		}

		// Randomized trials probe all cells.
		c := singleVarConditionFor(s)
		for trial := 0; trial < cfg.Trials; trial++ {
			loss1, loss2 := link.Model(link.None{}), link.Model(link.None{})
			if s != cond.ScenarioLossless {
				loss1, loss2 = link.Bernoulli{P: cfg.LossP}, link.Bernoulli{P: cfg.LossP}
			}
			run, err := sim.RunSingleVar(c, volatileStream(r, cfg.StreamLen), loss1, loss2, r)
			if err != nil {
				return nil, err
			}
			if err := accumulateSingleVar(&row, run, factory); err != nil {
				return nil, err
			}
			row.Trials++
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

func accumulateSingleVar(row *Row, run *sim.SingleVarRun, factory func() ad.Filter) error {
	v, exs, err := props.CheckSingleVarRun(run, props.FilterFactory(factory))
	if err != nil {
		return err
	}
	before := row.Verdict
	row.Verdict = row.Verdict.And(v)
	if before != row.Verdict {
		row.Counterexamples = append(row.Counterexamples, exs...)
	}
	return nil
}

// RunTable1 regenerates Table 1: single-variable systems under AD-1.
func RunTable1(cfg Config) (*Table, error) {
	return runSingleVarTable("Table 1", "AD-1", cfg, func() ad.Filter { return ad.NewAD1() }, paperTable1())
}

// RunTable2 regenerates Table 2: single-variable systems under AD-2.
func RunTable2(cfg Config) (*Table, error) {
	return runSingleVarTable("Table 2", "AD-2", cfg, func() ad.Filter { return ad.NewAD2("x") }, paperTable2())
}

// RunTableAD3 regenerates the Section 4.3 variant: Table 1 under AD-3.
func RunTableAD3(cfg Config) (*Table, error) {
	return runSingleVarTable("Table 1' (Section 4.3)", "AD-3", cfg, func() ad.Filter { return ad.NewAD3("x") }, paperTableAD3())
}

// RunTableAD4 regenerates the Section 4.4 variant: Table 2 under AD-4.
func RunTableAD4(cfg Config) (*Table, error) {
	return runSingleVarTable("Table 2' (Section 4.4)", "AD-4", cfg, func() ad.Filter { return ad.NewAD4("x") }, paperTableAD4())
}

// Multi-variable conditions per scenario row. The non-historical rows use
// the paper's cm; the historical rows extend it with a degree-2 term in x,
// conservatively guarded or not.
func multiVarConditionFor(s cond.Scenario) cond.Condition {
	switch s {
	case cond.ScenarioConservative:
		return cond.MustParse("cm-cons", "x[0] - x[-1] > 200 && y[0] > 0 && consecutive(x)")
	case cond.ScenarioAggressive:
		return cond.MustParse("cm-aggr", "x[0] - x[-1] > 200 && y[0] > 0")
	default:
		return cond.NewTempDiff("x", "y")
	}
}

// canonicalMultiVarRuns returns deterministic witnesses for the ✗ cells of
// Table 3 rows.
func canonicalMultiVarRuns(s cond.Scenario) ([]*sim.MultiVarRun, error) {
	switch s {
	case cond.ScenarioLossless, cond.ScenarioNonHistorical:
		// Theorem 10's scenario (lossless, cm, opposite interleavings) plus
		// the Lemma 6 incompleteness scenario.
		t10, err := sim.RunMultiVar(cond.NewTempDiff("x", "y"),
			map[event.VarName][]event.Update{
				"x": {event.U("x", 1, 1000), event.U("x", 2, 1200)},
				"y": {event.U("y", 1, 1050), event.U("y", 2, 1150)},
			},
			[2]map[event.VarName]link.Model{},
			[2]sim.Interleaver{sim.Sequential, sim.SequentialReverse}, nil)
		if err != nil {
			return nil, err
		}
		l6, err := lemma6Run()
		if err != nil {
			return nil, err
		}
		return []*sim.MultiVarRun{t10, l6}, nil
	case cond.ScenarioConservative:
		run, err := sim.RunMultiVar(multiVarConditionFor(s),
			map[event.VarName][]event.Update{
				"x": {event.U("x", 1, 1000), event.U("x", 2, 1500), event.U("x", 3, 2000), event.U("x", 4, 2500)},
				"y": {event.U("y", 1, 1)},
			},
			[2]map[event.VarName]link.Model{
				{"x": link.NewDropSeqNos("x", 3, 4)},
				{"x": link.NewDropSeqNos("x", 1, 2)},
			},
			[2]sim.Interleaver{sim.Sequential, sim.Sequential}, nil)
		if err != nil {
			return nil, err
		}
		return []*sim.MultiVarRun{run}, nil
	case cond.ScenarioAggressive:
		// Theorem 4's inconsistency scenario lifted to two variables.
		run, err := sim.RunMultiVar(multiVarConditionFor(s),
			map[event.VarName][]event.Update{
				"x": {event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)},
				"y": {event.U("y", 1, 1)},
			},
			[2]map[event.VarName]link.Model{
				nil,
				{"x": link.NewDropSeqNos("x", 2)},
			},
			[2]sim.Interleaver{yFirst, yFirst}, nil)
		if err != nil {
			return nil, err
		}
		return []*sim.MultiVarRun{run}, nil
	default:
		return nil, fmt.Errorf("exp: unknown scenario %v", s)
	}
}

// yFirst delivers the whole y stream before the x stream so degree-2
// x-conditions with a y term can fire.
func yFirst(streams map[event.VarName][]event.Update, _ *rand.Rand) []event.Update {
	var out []event.Update
	out = append(out, streams["y"]...)
	out = append(out, streams["x"]...)
	return out
}

// lemma6Run reproduces the Lemma 6 counter-example as a MultiVarRun.
func lemma6Run() (*sim.MultiVarRun, error) {
	c := cond.NewLemma6Condition("x", "y")
	streams := map[event.VarName][]event.Update{
		"x": {event.U("x", 7, 0), event.U("x", 8, 0), event.U("x", 9, 0)},
		"y": {event.U("y", 2, 0), event.U("y", 3, 0), event.U("y", 4, 0)},
	}
	ce1 := func(map[event.VarName][]event.Update, *rand.Rand) []event.Update {
		return []event.Update{
			event.U("x", 8, 0), event.U("y", 2, 0), event.U("x", 9, 0),
			event.U("y", 3, 0), event.U("y", 4, 0),
		}
	}
	ce2 := func(map[event.VarName][]event.Update, *rand.Rand) []event.Update {
		return []event.Update{
			event.U("y", 2, 0), event.U("y", 3, 0), event.U("x", 7, 0),
			event.U("y", 4, 0), event.U("x", 8, 0),
		}
	}
	// CE1 misses 7x; CE2 misses 9x — matching the interleavings above.
	return sim.RunMultiVar(c, streams,
		[2]map[event.VarName]link.Model{
			{"x": link.NewDropSeqNos("x", 7)},
			{"x": link.NewDropSeqNos("x", 9)},
		},
		[2]sim.Interleaver{ce1, ce2}, nil)
}

// multiVolatileStreams generates two short per-variable streams with values
// that exercise the multi-variable conditions.
func multiVolatileStreams(r *rand.Rand, n int) map[event.VarName][]event.Update {
	xs := make([]event.Update, n)
	val := 1000.0
	for i := range xs {
		val += float64(r.Intn(700) - 250)
		xs[i] = event.U("x", int64(i+1), val)
	}
	ys := make([]event.Update, n)
	val = 1050.0
	for i := range ys {
		val += float64(r.Intn(200) - 100)
		ys[i] = event.U("y", int64(i+1), val)
	}
	return map[event.VarName][]event.Update{"x": xs, "y": ys}
}

// runMultiVarTable regenerates a multi-variable table for a filter factory.
func runMultiVarTable(name, algo string, cfg Config, factory func() ad.Filter, paper map[cond.Scenario]props.Verdict) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	interleavers := []sim.Interleaver{sim.RandomInterleave, sim.RoundRobin, sim.Sequential, sim.SequentialReverse}
	table := &Table{Name: name, Algorithm: algo}
	for _, s := range scenarioOrder {
		row := Row{Scenario: s, Verdict: props.AllVerdict(), Paper: paper[s]}

		canonical, err := canonicalMultiVarRuns(s)
		if err != nil {
			return nil, err
		}
		for _, run := range canonical {
			if err := accumulateMultiVar(&row, run, factory); err != nil {
				return nil, err
			}
		}

		c := multiVarConditionFor(s)
		// Multi-variable streams stay very short and trials are scaled
		// down: the completeness checker enumerates update interleavings
		// inside an enumeration of alert arrival orders.
		n := cfg.StreamLen / 2
		if n < 2 {
			n = 2
		}
		if n > 3 {
			n = 3
		}
		mvTrials := cfg.Trials/10 + 1
		for trial := 0; trial < mvTrials; trial++ {
			var loss [2]map[event.VarName]link.Model
			if s != cond.ScenarioLossless {
				loss = [2]map[event.VarName]link.Model{
					{"x": link.Bernoulli{P: cfg.LossP}, "y": link.Bernoulli{P: cfg.LossP}},
					{"x": link.Bernoulli{P: cfg.LossP}, "y": link.Bernoulli{P: cfg.LossP}},
				}
			}
			inter := [2]sim.Interleaver{
				interleavers[r.Intn(len(interleavers))],
				interleavers[r.Intn(len(interleavers))],
			}
			run, err := sim.RunMultiVar(c, multiVolatileStreams(r, n), loss, inter, r)
			if err != nil {
				return nil, err
			}
			if err := accumulateMultiVar(&row, run, factory); err != nil {
				return nil, err
			}
			row.Trials++
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

func accumulateMultiVar(row *Row, run *sim.MultiVarRun, factory func() ad.Filter) error {
	v, exs, err := props.CheckMultiVarRun(run, props.FilterFactory(factory))
	if err != nil {
		return err
	}
	before := row.Verdict
	row.Verdict = row.Verdict.And(v)
	if before != row.Verdict {
		row.Counterexamples = append(row.Counterexamples, exs...)
	}
	return nil
}

// RunTable3 regenerates Table 3: multi-variable systems under AD-5.
func RunTable3(cfg Config) (*Table, error) {
	return runMultiVarTable("Table 3", "AD-5", cfg, func() ad.Filter { return ad.NewAD5("x", "y") }, paperTable3())
}

// RunTableAD6 regenerates the Section 5.2 variant: Table 3 under AD-6.
func RunTableAD6(cfg Config) (*Table, error) {
	return runMultiVarTable("Table 3' (Section 5.2)", "AD-6", cfg, func() ad.Filter { return ad.NewAD6("x", "y") }, paperTableAD6())
}

// AllTables regenerates every property table in paper order.
func AllTables(cfg Config) ([]*Table, error) {
	runs := []func(Config) (*Table, error){
		RunTable1, RunTable2, RunTableAD3, RunTableAD4, RunTable3, RunTableAD6,
	}
	out := make([]*Table, 0, len(runs))
	for _, run := range runs {
		t, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
