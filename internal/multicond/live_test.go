package multicond

import (
	"testing"

	"condmon/internal/ad"
	"condmon/internal/event"
)

func liveAlert(name string, seq int64) event.Alert {
	return event.NewAlert(name, event.HistorySet{
		"x": {Var: "x", Recent: []event.Update{event.U("x", seq, float64(seq))}},
	}, "CE1")
}

// TestLiveDemuxEpochFencing pins the fencing contract: stale-epoch alerts
// and alerts for unregistered names are counted, never displayed, and a
// re-registered name starts a fresh filter under its new epoch.
func TestLiveDemuxEpochFencing(t *testing.T) {
	d := NewLiveDemux()
	if err := d.Register("c", 1, ad.NewAD1()); err != nil {
		t.Fatal(err)
	}
	if !d.Offer(liveAlert("c", 1), 1) {
		t.Fatal("live alert not displayed")
	}
	// Duplicate: suppressed by the filter, not fenced.
	if d.Offer(liveAlert("c", 1), 1) {
		t.Fatal("duplicate displayed")
	}
	if d.Suppressed() != 1 || d.Fenced() != 0 {
		t.Fatalf("suppressed=%d fenced=%d, want 1,0", d.Suppressed(), d.Fenced())
	}
	// Wrong epoch while live: fenced.
	if d.Offer(liveAlert("c", 2), 99) {
		t.Fatal("stale-epoch alert displayed")
	}
	// Unregister: everything for the name is fenced from now on.
	d.Unregister("c")
	if d.Offer(liveAlert("c", 3), 1) {
		t.Fatal("post-unregister alert displayed")
	}
	if d.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", d.Live())
	}
	before := len(d.DisplayedFor("c"))
	// Re-register under a new epoch: old-epoch stragglers stay fenced, the
	// new incarnation starts a fresh duplicate filter.
	if err := d.Register("c", 2, ad.NewAD1()); err != nil {
		t.Fatal(err)
	}
	if d.Offer(liveAlert("c", 4), 1) {
		t.Fatal("old-epoch straggler displayed after re-registration")
	}
	if !d.Offer(liveAlert("c", 1), 2) {
		t.Fatal("new incarnation should re-display the seqno-1 alert: fresh filter")
	}
	if got := len(d.DisplayedFor("c")); got != before+1 {
		t.Fatalf("DisplayedFor = %d alerts, want %d", got, before+1)
	}
	if d.Fenced() != 3 {
		t.Fatalf("Fenced() = %d, want 3", d.Fenced())
	}
}

// TestLiveDemuxDuplicateRegistration: a live name cannot be registered
// twice; the registry must unregister first.
func TestLiveDemuxDuplicateRegistration(t *testing.T) {
	d := NewLiveDemux()
	if err := d.Register("c", 1, ad.NewAD1()); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("c", 2, ad.NewAD1()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	d.Unregister("c")
	if err := d.Register("c", 2, ad.NewAD1()); err != nil {
		t.Fatalf("re-registration after unregister: %v", err)
	}
}
