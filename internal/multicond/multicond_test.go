package multicond

import (
	"testing"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
)

func conditionA() cond.Condition { return cond.GreaterThan{CondName: "A", X: "x", Y: "y"} }
func conditionB() cond.Condition { return cond.GreaterThan{CondName: "B", X: "y", Y: "x"} }

func perCondAD2(c cond.Condition) ad.Filter {
	// Single-variable AD-2 keyed on the condition's first variable is
	// enough for routing tests; real systems would pick AD-5/AD-6.
	return ad.NewAD5(c.Vars()...)
}

func TestNewDemuxValidation(t *testing.T) {
	if _, err := NewDemux(perCondAD2); err == nil {
		t.Error("empty condition set should fail")
	}
	if _, err := NewDemux(perCondAD2, conditionA(), conditionA()); err == nil {
		t.Error("duplicate condition names should fail")
	}
}

func TestDemuxRoutesPerCondition(t *testing.T) {
	d, err := NewDemux(perCondAD2, conditionA(), conditionB())
	if err != nil {
		t.Fatalf("NewDemux: %v", err)
	}
	mk := func(name string, x, y int64) event.Alert {
		return event.Alert{Cond: name, Histories: event.HistorySet{
			"x": {Var: "x", Recent: []event.Update{event.U("x", x, 0)}},
			"y": {Var: "y", Recent: []event.Update{event.U("y", y, 0)}},
		}}
	}
	// A's stream goes out of order — its own AD-5 instance drops the
	// second alert — while B's stream is unaffected by A's state.
	if ok, err := d.Offer(mk("A", 2, 2)); err != nil || !ok {
		t.Fatalf("A(2,2): ok=%v err=%v", ok, err)
	}
	if ok, err := d.Offer(mk("A", 1, 3)); err != nil || ok {
		t.Fatalf("A(1,3) inverts x-order and must be dropped: ok=%v err=%v", ok, err)
	}
	if ok, err := d.Offer(mk("B", 1, 1)); err != nil || !ok {
		t.Fatalf("B(1,1) must pass through B's own filter: ok=%v err=%v", ok, err)
	}
	if got := len(d.DisplayedFor("A")); got != 1 {
		t.Errorf("A displayed %d alerts, want 1", got)
	}
	if got := len(d.DisplayedFor("B")); got != 1 {
		t.Errorf("B displayed %d alerts, want 1", got)
	}
	if d.Suppressed() != 1 {
		t.Errorf("suppressed = %d, want 1", d.Suppressed())
	}
	if got := len(d.Displayed()); got != 2 {
		t.Errorf("total displayed = %d, want 2", got)
	}
}

func TestDemuxRejectsUnknownCondition(t *testing.T) {
	d, err := NewDemux(perCondAD2, conditionA())
	if err != nil {
		t.Fatalf("NewDemux: %v", err)
	}
	a := event.Alert{Cond: "nosuch", Histories: event.HistorySet{}}
	if _, err := d.Offer(a); err == nil {
		t.Error("alert for unknown condition should error")
	}
}

func TestPaperExample4ConflictingAlerts(t *testing.T) {
	// Example 4: conditions A ("x hotter than y") and B ("y hotter than
	// x") on separate CEs. Both reactors go 2000 → 2100, but A's CE sees
	// the x change first while B's CE sees the y change first. Each
	// triggers sensibly in isolation; together the user receives
	// contradictory alerts — with no replication anywhere.
	updatesA := []event.Update{
		event.U("x", 1, 2000), event.U("y", 1, 2000),
		event.U("x", 2, 2100), // A evaluates: x=2100 > y=2000 → trigger
		event.U("y", 2, 2100),
	}
	updatesB := []event.Update{
		event.U("x", 1, 2000), event.U("y", 1, 2000),
		event.U("y", 2, 2100), // B evaluates: y=2100 > x=2000 → trigger
		event.U("x", 2, 2100),
	}
	alertsA, err := ce.T(conditionA(), updatesA)
	if err != nil {
		t.Fatalf("T(A): %v", err)
	}
	alertsB, err := ce.T(conditionB(), updatesB)
	if err != nil {
		t.Fatalf("T(B): %v", err)
	}
	if len(alertsA) != 1 || len(alertsB) != 1 {
		t.Fatalf("want one alert per condition, got %d and %d", len(alertsA), len(alertsB))
	}

	// The demux AD faithfully displays both: the conflict is architectural
	// (Appendix D motivates, but does not solve, the multi-condition
	// consistency problem).
	d, err := NewDemux(perCondAD2, conditionA(), conditionB())
	if err != nil {
		t.Fatalf("NewDemux: %v", err)
	}
	for _, a := range []event.Alert{alertsA[0], alertsB[0]} {
		if ok, err := d.Offer(a); err != nil || !ok {
			t.Fatalf("Offer(%v): ok=%v err=%v", a, ok, err)
		}
	}
	if got := len(d.Displayed()); got != 2 {
		t.Errorf("displayed %d alerts, want the conflicting pair", got)
	}
}

func TestReduceDisjunction(t *testing.T) {
	c, err := Reduce(conditionA(), conditionB())
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got := c.Name(); got != "A∨B" {
		t.Errorf("name = %q, want A∨B", got)
	}
	// With co-located evaluation (one interleaving), the combined
	// condition sees x change first and fires as A; when y catches up the
	// values tie and nothing fires — no contradiction is possible.
	alerts, err := ce.T(c, []event.Update{
		event.U("x", 1, 2000), event.U("y", 1, 2000),
		event.U("x", 2, 2100), event.U("y", 2, 2100),
	})
	if err != nil {
		t.Fatalf("T: %v", err)
	}
	if len(alerts) != 1 {
		t.Fatalf("co-located C=A∨B should fire once, got %v", alerts)
	}
	if alerts[0].Cond != "A∨B" {
		t.Errorf("alert condition = %q", alerts[0].Cond)
	}
}

func TestReduceValidation(t *testing.T) {
	if _, err := Reduce(); err == nil {
		t.Error("empty reduce should fail")
	}
	c, err := Reduce(conditionA())
	if err != nil || c.Name() != "A" {
		t.Errorf("single-condition reduce should be identity, got %v/%v", c, err)
	}
}

func TestReduceThreeConditions(t *testing.T) {
	c3 := cond.Threshold{CondName: "hot", Var: "x", Limit: 2050, Above: true}
	c, err := Reduce(conditionA(), conditionB(), c3)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got := c.Name(); got != "A∨B∨hot" {
		t.Errorf("name = %q", got)
	}
	if got := len(c.Vars()); got != 2 {
		t.Errorf("vars = %d, want 2 (x, y)", got)
	}
}
