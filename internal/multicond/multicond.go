// Package multicond implements the multi-condition systems of Appendix D.
//
// Two architectures are covered:
//
//   - Separate CEs (Figures D-7(a)/(c)): each condition has its own
//     (replicated) evaluators, and the single AD demultiplexes the merged
//     alert stream by condition name, running an independent instance of
//     the chosen filtering algorithm per condition — reducing each stream
//     to the single-condition analysis of the paper's body.
//
//   - Co-located CEs (Figures D-7(b)/(d) and D-8): all conditions are
//     evaluated by one CE over one update interleaving. This is modeled by
//     reducing the condition set to the single disjunction C = A ∨ B ∨ …,
//     after which the system is an ordinary single-condition system.
//
// As Example 4 shows, interdependent conditions with separate CEs can
// present conflicting alerts even without replication; the Demux simply
// inherits whatever guarantees its per-condition filters provide — the
// cross-condition anomaly is fundamental to the separate-CE architecture.
package multicond

import (
	"fmt"
	"sync"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
)

// Demux is the multi-condition Alert Displayer for the separate-CE
// architecture: one filter instance per condition, displayed alerts merged
// in arrival order.
type Demux struct {
	mu        sync.Mutex
	filters   map[string]ad.Filter
	displayed []event.Alert
	suppress  int
}

// NewDemux builds a demultiplexing AD. newFilter is invoked once per
// condition to create that stream's filter instance (e.g. a fresh AD-4 per
// condition).
func NewDemux(newFilter func(c cond.Condition) ad.Filter, conds ...cond.Condition) (*Demux, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("multicond: demux needs at least one condition")
	}
	d := &Demux{filters: make(map[string]ad.Filter, len(conds))}
	for _, c := range conds {
		if _, dup := d.filters[c.Name()]; dup {
			return nil, fmt.Errorf("multicond: duplicate condition name %q", c.Name())
		}
		d.filters[c.Name()] = newFilter(c)
	}
	return d, nil
}

// Offer routes the alert to its condition's filter instance and reports
// whether it was displayed. Alerts for unknown conditions are an error:
// they indicate mis-wiring, not a filtering decision.
func (d *Demux) Offer(a event.Alert) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.filters[a.Cond]
	if !ok {
		return false, fmt.Errorf("multicond: alert for unknown condition %q", a.Cond)
	}
	if ad.Offer(f, a) {
		d.displayed = append(d.displayed, a)
		return true, nil
	}
	d.suppress++
	return false, nil
}

// ReplaceFilter swaps one condition's filter instance, keeping the merged
// displayed history — the recovery hook for installing a filter rebuilt
// from a durable log (durable.RecoverFilter) into a running demux.
func (d *Demux) ReplaceFilter(name string, f ad.Filter) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.filters[name]; !ok {
		return fmt.Errorf("multicond: condition %q not registered", name)
	}
	d.filters[name] = f
	return nil
}

// Displayed returns a copy of the merged displayed sequence.
func (d *Demux) Displayed() []event.Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]event.Alert, len(d.displayed))
	copy(out, d.displayed)
	return out
}

// DisplayedFor returns the displayed subsequence of one condition.
func (d *Demux) DisplayedFor(name string) []event.Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []event.Alert
	for _, a := range d.displayed {
		if a.Cond == name {
			out = append(out, a)
		}
	}
	return out
}

// Suppressed returns the number of filtered alerts across all conditions.
func (d *Demux) Suppressed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suppress
}

// Reduce folds a co-located condition set into the single disjunction
// C = c1 ∨ c2 ∨ … of Figure D-8. The result is an ordinary Condition: its
// variable set is the union, per-variable degree the maximum, and it is
// conservative only if every operand is.
func Reduce(conds ...cond.Condition) (cond.Condition, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("multicond: reduce needs at least one condition")
	}
	out := conds[0]
	for _, c := range conds[1:] {
		out = cond.NewOr(out, c)
	}
	return out, nil
}
