package multicond

import (
	"fmt"
	"sync"

	"condmon/internal/ad"
	"condmon/internal/event"
)

// LiveDemux is the dynamic counterpart of Demux: the Alert Displayer of a
// system whose condition set changes while alerts are in flight. Each
// entry carries the registration epoch assigned by the condition registry;
// an alert is accepted only when its epoch matches the live entry, so
// alerts that were queued in the multiplexed back link when their
// condition was unregistered — or that belong to an earlier incarnation of
// a re-registered name — are fenced off instead of displayed. Fencing is
// what makes Unregister clean: the moment it returns, the condition's
// displayed stream is final.
type LiveDemux struct {
	mu        sync.Mutex
	entries   map[string]liveEntry
	displayed []event.Alert
	suppress  int
	fenced    int
}

// liveEntry pairs a per-condition filter instance with its epoch.
type liveEntry struct {
	epoch  uint64
	filter ad.Filter
}

// NewLiveDemux builds an empty dynamic demultiplexing AD; conditions join
// and leave through Register/Unregister.
func NewLiveDemux() *LiveDemux {
	return &LiveDemux{entries: make(map[string]liveEntry)}
}

// Register installs a fresh filter instance for the condition under the
// given epoch. Registering a name that is still live is an error: the
// registry must Unregister the old incarnation first (which fences its
// stragglers), then re-register with a higher epoch.
func (d *LiveDemux) Register(name string, epoch uint64, f ad.Filter) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.entries[name]; dup {
		return fmt.Errorf("multicond: condition %q already registered", name)
	}
	d.entries[name] = liveEntry{epoch: epoch, filter: f}
	return nil
}

// ReplaceFilter swaps the condition's filter instance while keeping its
// epoch and displayed history — the recovery hook for installing a filter
// rebuilt from a durable log (durable.RecoverFilter) into a live demux.
func (d *LiveDemux) ReplaceFilter(name string, f ad.Filter) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("multicond: condition %q not registered", name)
	}
	e.filter = f
	d.entries[name] = e
	return nil
}

// Unregister removes the condition's entry immediately. Alerts for the
// name that arrive afterwards — regardless of epoch — are fenced. The
// condition's already-displayed subsequence remains queryable.
func (d *LiveDemux) Unregister(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, name)
}

// Offer routes the alert to its condition's filter if the condition is
// live at the same epoch, and reports whether it was displayed. Epoch
// mismatches and unknown conditions are fenced — counted, never displayed,
// never an error: with live unregistration they are expected traffic, not
// mis-wiring.
func (d *LiveDemux) Offer(a event.Alert, epoch uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[a.Cond]
	if !ok || e.epoch != epoch {
		d.fenced++
		return false
	}
	if ad.Offer(e.filter, a) {
		d.displayed = append(d.displayed, a)
		return true
	}
	d.suppress++
	return false
}

// Displayed returns a copy of the merged displayed sequence.
func (d *LiveDemux) Displayed() []event.Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]event.Alert, len(d.displayed))
	copy(out, d.displayed)
	return out
}

// DisplayedCount returns the length of the displayed sequence without
// copying it — the cheap form for gauges sampled at snapshot time.
func (d *LiveDemux) DisplayedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.displayed)
}

// DisplayedFor returns the displayed subsequence of one condition,
// including alerts displayed before the condition was unregistered.
func (d *LiveDemux) DisplayedFor(name string) []event.Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []event.Alert
	for _, a := range d.displayed {
		if a.Cond == name {
			out = append(out, a)
		}
	}
	return out
}

// Suppressed returns the number of alerts filtered by live entries.
func (d *LiveDemux) Suppressed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suppress
}

// Fenced returns the number of alerts dropped by epoch fencing.
func (d *LiveDemux) Fenced() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fenced
}

// Live returns the number of registered conditions.
func (d *LiveDemux) Live() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
