// Package audit is the online guarantee auditor: a streaming, incremental
// version of the internal/props checkers that attaches to a live displayed
// stream and continuously renders the paper's property matrix
// (orderedness, completeness, consistency per condition — the shape of
// Tables 1–3) as observability.
//
// The offline checkers in internal/props decide the properties exactly,
// but need the full recorded run: every delivered stream and every
// displayed alert. A deployed AD has none of that — it sees its own output
// and, optionally, compact DM-side evidence (wire.Evidence prefix
// digests). The auditor therefore works in three verdict strengths:
//
//	VIOLATED  — the property is refuted by what was observed. Sound: a
//	            violation is only ever declared from a check that is a
//	            necessary condition of the property (or of the AD filter
//	            contract standing in for it — see Complete below).
//	PLAUSIBLE — nothing observed refutes the property, but the available
//	            evidence cannot confirm it either. The auditor prefers
//	            PLAUSIBLE over guessing: insufficient evidence must never
//	            false-alarm.
//	CONFIRMED — the property provably holds on the observed output (and,
//	            at Finalize time, against the accumulated evidence).
//
// Orderedness and single-variable consistency are decided exactly while
// streaming: Π_v monotonicity is incremental by construction, and the
// Theorem 7 conflict-freedom criterion (asserted-received vs
// asserted-missed disjointness) needs only per-variable sets. Completeness
// is PLAUSIBLE while streaming — ΦA = ΦT(U1 ⊔ U2) quantifies over streams
// the AD never saw — and becomes decisive at Finalize when delivery or
// source evidence suffices. The one deliberate surrogate: a duplicate
// displayed alert key flips Complete to VIOLATED. Φ is a set, so offline
// completeness is blind to duplicates, but a duplicate display is exactly
// the AD-1 contract breach an operator wants surfaced, and the injected
// negative controls prove the mapping fires.
package audit

import "condmon/internal/props"

// Verdict is the tri-state strength of one property's audit result. The
// zero value is Violated so that the ordering Violated < Plausible <
// Confirmed makes And a plain min; fresh matrices are built by
// NewMatrix, never by zero-valuing.
type Verdict int

// The verdict strengths, ordered weakest first.
const (
	// Violated: the observed output refutes the property. Sticky — once a
	// stream has violated a property, no suffix restores it (Section 3.1
	// quantifies over every produced alert sequence).
	Violated Verdict = iota
	// Plausible: not refuted, not confirmable from available evidence.
	Plausible
	// Confirmed: provably holds on the observed output.
	Confirmed
)

// String renders the verdict mark used in the live matrix: ✗ for
// Violated, ? for Plausible, ✓ for Confirmed.
func (v Verdict) String() string {
	switch v {
	case Violated:
		return "✗"
	case Plausible:
		return "?"
	default:
		return "✓"
	}
}

// Label renders the verdict word used in JSON reports.
func (v Verdict) Label() string {
	switch v {
	case Violated:
		return "VIOLATED"
	case Plausible:
		return "PLAUSIBLE"
	default:
		return "CONFIRMED"
	}
}

// And combines verdicts across conditions or processes: a property holds
// for a fleet only at the strength of its weakest member.
func (v Verdict) And(o Verdict) Verdict {
	if o < v {
		return o
	}
	return v
}

// Matrix is one row of the paper's property tables: the three verdicts for
// one condition (or the And across a whole fleet).
type Matrix struct {
	Ordered    Verdict `json:"-"`
	Complete   Verdict `json:"-"`
	Consistent Verdict `json:"-"`
}

// NewMatrix is the streaming starting point: orderedness and consistency
// hold vacuously on the empty output (and are checked exactly from the
// first alert on), completeness cannot be confirmed without evidence.
func NewMatrix() Matrix {
	return Matrix{Ordered: Confirmed, Complete: Plausible, Consistent: Confirmed}
}

// And combines two matrices property-wise.
func (m Matrix) And(o Matrix) Matrix {
	return Matrix{
		Ordered:    m.Ordered.And(o.Ordered),
		Complete:   m.Complete.And(o.Complete),
		Consistent: m.Consistent.And(o.Consistent),
	}
}

// String renders the matrix as the paper's three-mark row.
func (m Matrix) String() string {
	return "ord=" + m.Ordered.String() + " comp=" + m.Complete.String() + " cons=" + m.Consistent.String()
}

// PropsVerdict collapses the matrix to the offline checkers' boolean
// verdict: a property "holds" unless the auditor refuted it. This is the
// bridge the equivalence tests cross — on a finalized run with full
// delivery evidence every verdict is decisive, so the collapse is exact.
func (m Matrix) PropsVerdict() props.Verdict {
	return props.Verdict{
		Ordered:    m.Ordered != Violated,
		Complete:   m.Complete != Violated,
		Consistent: m.Consistent != Violated,
	}
}

// Decisive reports whether no verdict is PLAUSIBLE: the matrix is a full
// answer, not a partial one.
func (m Matrix) Decisive() bool {
	return m.Ordered != Plausible && m.Complete != Plausible && m.Consistent != Plausible
}
