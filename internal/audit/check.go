package audit

// The bridge between the streaming auditor and the offline internal/props
// checkers: run the same recorded simulation runs through a fresh Auditor
// per arrival order, with full delivery evidence, and collapse the
// finalized matrices to props verdicts. On these inputs every verdict is
// decisive, so CheckSingleVarRunStreaming must agree bit-for-bit with
// props.CheckSingleVarRun — the equivalence the CI gate pins — and the
// experiment layer reuses the same entry points to regenerate the Tables
// 1–3 matrices per reorder schedule.

import (
	"fmt"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/props"
	"condmon/internal/sim"
)

// CheckSingleVarRunStreaming evaluates the three properties of a recorded
// single-variable run with the streaming auditor, quantifying over every
// arrival order like props.CheckSingleVarRun. Each arrival gets a fresh
// filter and a fresh Auditor primed with the run's delivery evidence; the
// verdict is the conjunction across arrivals.
func CheckSingleVarRunStreaming(run *sim.SingleVarRun, newFilter props.FilterFactory) (props.Verdict, error) {
	v := props.AllVerdict()
	var checkErr error
	err := sim.ForEachArrival(run.A1, run.A2, func(merged []event.Alert) bool {
		m, err := auditArrival(merged, newFilter(), func(a *Auditor) {
			for _, u := range run.U1 {
				a.ObserveDelivered(0, u)
			}
			for _, u := range run.U2 {
				a.ObserveDelivered(1, u)
			}
		}, Options{Conds: []cond.Condition{run.Cond}})
		if err != nil {
			checkErr = err
			return false
		}
		v = v.And(m.PropsVerdict())
		return v.Ordered || v.Complete || v.Consistent
	})
	if err != nil {
		return props.Verdict{}, err
	}
	if checkErr != nil {
		return props.Verdict{}, checkErr
	}
	return v, nil
}

// CheckMultiVarRunStreaming is the multi-variable counterpart of
// CheckSingleVarRunStreaming, matching props.CheckMultiVarRun.
func CheckMultiVarRunStreaming(run *sim.MultiVarRun, newFilter props.FilterFactory) (props.Verdict, error) {
	v := props.AllVerdict()
	var checkErr error
	err := sim.ForEachArrival(run.A1, run.A2, func(merged []event.Alert) bool {
		m, err := auditArrival(merged, newFilter(), func(a *Auditor) {
			for i := 0; i < 2; i++ {
				for _, u := range run.Inputs[i] {
					a.ObserveDelivered(i, u)
				}
			}
		}, Options{Conds: []cond.Condition{run.Cond}})
		if err != nil {
			checkErr = err
			return false
		}
		v = v.And(m.PropsVerdict())
		return v.Ordered || v.Complete || v.Consistent
	})
	if err != nil {
		return props.Verdict{}, err
	}
	if checkErr != nil {
		return props.Verdict{}, checkErr
	}
	return v, nil
}

// auditArrival streams one merged arrival through the filter into a fresh
// Auditor, requiring the finalized matrix to be decisive — an equivalence
// check that came back PLAUSIBLE would compare unknowns against answers.
func auditArrival(merged []event.Alert, f ad.Filter, evidence func(*Auditor), opts Options) (Matrix, error) {
	a := New(opts)
	evidence(a)
	for _, al := range merged {
		if ad.Offer(f, al) {
			a.ObserveDisplayed(al, 0)
		} else {
			a.ObserveSuppressed(al)
		}
	}
	m := a.Finalize()
	if !m.Decisive() {
		return Matrix{}, fmt.Errorf("audit: arrival left a non-decisive matrix %v despite full delivery evidence", m)
	}
	return m, nil
}
