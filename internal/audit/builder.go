package audit

// The publisher side of the evidence path: EvidenceBuilder runs next to an
// emit loop (condmon-dm's send loop, or a runtime System's Emit path) and
// maintains the chained prefix hash plus a bounded tail of recent values,
// ready to be framed as wire.Evidence at whatever cadence the publisher
// chooses. Consecutive frames carry overlapping tails, so a receiver that
// loses individual evidence frames can still rebuild a contiguous prefix.

import (
	"sync"

	"condmon/internal/event"
	"condmon/internal/wire"
)

// DefaultEvidenceTail is the tail length used when NewEvidenceBuilder is
// given a non-positive one: long enough that a receiver survives several
// consecutive lost evidence frames at typical publish cadences, short
// enough that a frame always fits a datagram.
const DefaultEvidenceTail = 64

// EvidenceBuilder accumulates one variable's emitted updates into
// publishable evidence frames. Safe for concurrent use; Observe is O(1).
type EvidenceBuilder struct {
	mu   sync.Mutex
	v    event.VarName
	base int64
	upTo int64
	hash uint64
	some bool
	// tail is a ring of the most recent values; tail[(upTo-i) % len] holds
	// the value of seqno upTo-i while upTo-i > base.
	tail []float64
}

// NewEvidenceBuilder returns a builder for v whose first observed update
// will carry sequence number startSeq (1 for a fresh stream; the redelivery
// start for a restarted DM — the hash chain is anchored at startSeq-1, so
// digests never claim a prefix the publisher did not itself emit).
func NewEvidenceBuilder(v event.VarName, startSeq int64, tailLen int) *EvidenceBuilder {
	if tailLen <= 0 {
		tailLen = DefaultEvidenceTail
	}
	return &EvidenceBuilder{
		v:    v,
		base: startSeq - 1,
		upTo: startSeq - 1,
		hash: wire.EvidenceHashSeed,
		tail: make([]float64, tailLen),
	}
}

// Observe folds one emitted update into the chain. Updates must arrive in
// emission order; a sequence jump re-anchors the chain at the jump (the
// builder never claims a prefix it did not see).
func (b *EvidenceBuilder) Observe(u event.Update) {
	if b == nil || u.Var != b.v {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if u.SeqNo != b.upTo+1 {
		if u.SeqNo <= b.upTo {
			return // replayed duplicate: already folded in
		}
		b.base = u.SeqNo - 1
		b.hash = wire.EvidenceHashSeed
	}
	b.some = true
	b.upTo = u.SeqNo
	b.hash = wire.EvidenceHashStep(b.hash, u.SeqNo, u.Value)
	b.tail[u.SeqNo%int64(len(b.tail))] = u.Value
}

// Frame snapshots the current chain as a publishable evidence frame. ok is
// false until at least one update has been observed.
func (b *EvidenceBuilder) Frame() (e wire.Evidence, ok bool) {
	if b == nil {
		return wire.Evidence{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.some {
		return wire.Evidence{}, false
	}
	n := b.upTo - b.base
	if m := int64(len(b.tail)); n > m {
		n = m
	}
	e = wire.Evidence{Var: b.v, Base: b.base, UpTo: b.upTo, PrefixHash: b.hash, Vals: make([]float64, n)}
	for i := int64(0); i < n; i++ {
		s := e.First() + i
		e.Vals[i] = b.tail[s%int64(len(b.tail))]
	}
	return e, true
}
