package audit

// The receiver side of the evidence path: varEvidence accumulates
// wire.Evidence prefix digests (or trusted in-process emitted updates)
// into a compact per-variable store the verdict checks read.
//
// The store's invariants:
//
//   - It only ever holds a contiguous run of values [minHeld, maxHeld]. A
//     frame (or in-process update) that lands beyond the run's tail opens
//     a hole; the store re-anchors on the new frame rather than keeping a
//     fragmented map, because every consumer (value contradiction checks,
//     full-stream reconstruction) wants contiguity.
//   - The chained prefix hash is advanced only over values the store
//     actually holds, so chainOK means "the DM's PrefixHash claims have
//     been re-derived and matched from (base, hashedTo]". After a hole the
//     chain can only restart if the new frame's tail reaches back to its
//     own Base.
//   - A frame whose hash claim contradicts the store is rejected whole:
//     evidence is advisory, so a divergent frame must not poison the
//     values already verified.

import "condmon/internal/wire"

type varEvidence struct {
	vals             map[int64]float64
	haveAny          bool
	minHeld, maxHeld int64
	base             int64 // hash anchor: chain covers (base, hashedTo]
	hash             uint64
	hashedTo         int64
	chainOK          bool
	holes            int64
	frames, rejected int64
	// maxVals bounds the value map; 0 keeps everything (needed for
	// full-stream reconstruction under AssumeNoFrontLoss).
	maxVals int
}

func newVarEvidence(maxVals int) *varEvidence {
	return &varEvidence{vals: make(map[int64]float64), maxVals: maxVals}
}

// valueAt returns the evidenced value of seqno s, if held.
func (e *varEvidence) valueAt(s int64) (float64, bool) {
	if e == nil || !e.haveAny || s < e.minHeld || s > e.maxHeld {
		return 0, false
	}
	v, ok := e.vals[s]
	return v, ok
}

// absorbUpdate folds one in-process emitted update into the store. The
// emit path is trusted (no CRC, no hash claim to cross-check), so the
// chain is authoritative as long as the updates arrive consecutively.
func (e *varEvidence) absorbUpdate(seqNo int64, value float64) {
	switch {
	case !e.haveAny:
		e.haveAny = true
		e.anchor(seqNo-1, seqNo, seqNo)
	case seqNo <= e.maxHeld:
		return // duplicate or replayed overlap: already held (or evicted)
	case seqNo == e.maxHeld+1:
		e.maxHeld = seqNo
	default:
		e.holes++
		e.clearVals()
		e.anchor(seqNo-1, seqNo, seqNo)
	}
	if seqNo == e.minHeld {
		e.hash = wire.EvidenceHashSeed
		e.chainOK = true
	}
	e.vals[seqNo] = value
	e.hash = wire.EvidenceHashStep(e.hash, seqNo, value)
	e.hashedTo = seqNo
	e.evict()
}

// absorbFrame folds one decoded evidence frame into the store, returning
// false when the frame was rejected (hash contradiction or value
// disagreement on the overlap).
func (e *varEvidence) absorbFrame(ev wire.Evidence) bool {
	e.frames++
	if !e.haveAny {
		return e.reanchor(ev)
	}
	if ev.UpTo <= e.maxHeld {
		return true // stale duplicate of evidence already absorbed
	}
	if ev.First() > e.maxHeld+1 {
		// The tail does not reach back to our run: frames were lost past
		// the overlap the tails provide. Re-anchor on the new frame.
		e.holes++
		e.clearVals()
		e.haveAny = false
		return e.reanchor(ev)
	}
	// Overlapping extension. Verify the overlap and the hash claim before
	// mutating anything.
	for s := ev.First(); s <= e.maxHeld; s++ {
		if held, ok := e.vals[s]; ok && held != frameVal(ev, s) {
			e.rejected++
			return false
		}
	}
	verify := e.chainOK && ev.Base == e.base
	if verify {
		h := e.hash
		for s := e.hashedTo + 1; s <= ev.UpTo; s++ {
			var v float64
			if s <= e.maxHeld {
				var ok bool
				if v, ok = e.vals[s]; !ok {
					verify = false // evicted below the overlap; cannot re-derive
					break
				}
			} else {
				v = frameVal(ev, s)
			}
			h = wire.EvidenceHashStep(h, s, v)
		}
		if verify {
			if h != ev.PrefixHash {
				e.rejected++
				return false
			}
			e.hash = h
			e.hashedTo = ev.UpTo
		}
	}
	if !verify {
		e.chainOK = false
	}
	for s := e.maxHeld + 1; s <= ev.UpTo; s++ {
		e.vals[s] = frameVal(ev, s)
	}
	e.maxHeld = ev.UpTo
	e.evict()
	return true
}

// reanchor starts the store fresh from one frame. The chain is only
// trusted when the frame's tail reaches back to its own hash base, so the
// full claimed prefix can be re-derived and matched.
func (e *varEvidence) reanchor(ev wire.Evidence) bool {
	if ev.First() == ev.Base+1 {
		h := wire.EvidenceHashSeed
		for s := ev.First(); s <= ev.UpTo; s++ {
			h = wire.EvidenceHashStep(h, s, frameVal(ev, s))
		}
		if h != ev.PrefixHash {
			e.rejected++
			return false
		}
		e.haveAny = true
		e.anchor(ev.Base, ev.First(), ev.UpTo)
		e.hash = h
		e.hashedTo = ev.UpTo
		e.chainOK = true
	} else {
		e.haveAny = true
		e.anchor(ev.Base, ev.First(), ev.UpTo)
		e.chainOK = false
	}
	for s := ev.First(); s <= ev.UpTo; s++ {
		e.vals[s] = frameVal(ev, s)
	}
	e.evict()
	return true
}

func (e *varEvidence) anchor(base, minHeld, maxHeld int64) {
	e.base, e.minHeld, e.maxHeld = base, minHeld, maxHeld
}

func (e *varEvidence) clearVals() {
	e.vals = make(map[int64]float64)
}

// evict trims the value map to maxVals entries, keeping the newest. The
// hash chain survives eviction (it never re-reads absorbed values), but
// full-stream reconstruction stops being possible once minHeld rises.
func (e *varEvidence) evict() {
	if e.maxVals <= 0 {
		return
	}
	for e.maxHeld-e.minHeld+1 > int64(e.maxVals) {
		delete(e.vals, e.minHeld)
		e.minHeld++
	}
}

// fullStream reports whether the store holds the variable's entire emitted
// value stream — a verified chain from sequence number 1 with no eviction
// or holes — and if so returns the values of 1..maxHeld in order. This is
// what makes completeness decisive under AssumeNoFrontLoss.
func (e *varEvidence) fullStream() ([]float64, bool) {
	if e == nil || !e.haveAny || !e.chainOK || e.base != 0 || e.minHeld != 1 {
		return nil, false
	}
	out := make([]float64, e.maxHeld)
	for s := int64(1); s <= e.maxHeld; s++ {
		v, ok := e.vals[s]
		if !ok {
			return nil, false
		}
		out[s-1] = v
	}
	return out, true
}

// frameVal reads the tail value of seqno s from a frame; the caller
// guarantees First() ≤ s ≤ UpTo.
func frameVal(ev wire.Evidence, s int64) float64 {
	return ev.Vals[s-ev.First()]
}
