package audit

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/obs"
	"condmon/internal/props"
	"condmon/internal/seq"
	"condmon/internal/sim"
	"condmon/internal/wire"
)

// DefaultMaxStoredAlerts bounds the per-condition displayed-alert store
// used by Finalize's exact checks. Past the bound, streaming verdicts keep
// running on O(window) state but Finalize can no longer replay the output,
// so completeness stays at its streaming strength.
const DefaultMaxStoredAlerts = 4096

// defaultMaxEvidenceVals bounds each variable's evidence value store when
// full-stream reconstruction is not requested.
const defaultMaxEvidenceVals = 4096

// Options configures an Auditor. The zero value is usable: exact
// incremental checks only, no metrics, no SLO.
type Options struct {
	// Conds names the monitored conditions. A condition the auditor knows
	// is eligible for decisive completeness/consistency at Finalize (the
	// checks re-evaluate it over evidence streams); alerts for unknown
	// conditions still get the full streaming treatment.
	Conds []cond.Condition
	// AssumeNoFrontLoss asserts the deployment's front links are lossless
	// (or the auditor is attached in-process before any link). Under the
	// assumption, source evidence alone makes completeness decisive at
	// Finalize: U1 = U2 = U, so ΦA = ΦT(U) is checkable from the
	// reconstructed emitted stream. It also lifts the evidence value-store
	// bound, since reconstruction needs every value.
	AssumeNoFrontLoss bool
	// LatencySLO, when positive, is the end-to-end alert latency objective:
	// alerts whose origin-to-display latency exceeds it bump the breach
	// counter and drop the slo_ok gauge.
	LatencySLO time.Duration
	// MaxStoredAlerts caps the per-condition displayed store Finalize
	// replays (DefaultMaxStoredAlerts when 0; negative = unlimited).
	MaxStoredAlerts int
	// Metrics registers the audit.* metrics (nil: metrics off — verdicts
	// are still served through Report and the HTTP handler).
	Metrics *obs.Registry
	// MetricsPrefix overrides the "audit" metric namespace.
	MetricsPrefix string
	// Now overrides the wall clock (unix nanoseconds) for tests.
	Now func() int64
}

// Auditor is the online guarantee auditor: it ingests one AD's displayed
// and suppressed alerts (plus optional DM-side evidence and delivery
// observations) and maintains the per-condition property matrix, latency
// histogram, and staleness gauges. All methods are safe on a nil receiver
// and for concurrent use; a nil *Auditor is the audit-off state and costs
// one nil check.
type Auditor struct {
	mu           sync.Mutex
	conds        map[string]cond.Condition
	assumeNoLoss bool
	slo          int64
	maxStored    int
	maxEvVals    int
	now          func() int64

	state     map[string]*condState
	order     []string // condition names in first-seen order
	ev        map[event.VarName]*varEvidence
	delivered map[int]map[event.VarName][]event.Update

	aggregate     Matrix
	violations    int64
	lastViolation string

	reg    *obs.Registry
	prefix string

	gOrdered, gComplete, gConsistent *obs.Gauge
	cViolations                      *obs.Counter
	cDisplayed, cSuppressed          *obs.Counter
	cEvFrames, cEvRejected           *obs.Counter
	hLatency                         *obs.Histogram
	cSLOBreaches                     *obs.Counter
	gSLOOK                           *obs.Gauge
}

// condState is the streaming state of one condition's property row.
type condState struct {
	name      string
	m         Matrix
	lastSeq   map[event.VarName]int64
	seen      map[string]struct{}
	received  map[event.VarName]seq.Set
	missed    map[event.VarName]seq.Set
	displayed []event.Alert
	truncated bool
	multiVar  bool

	nDisplayed, nSuppressed int64
	lastDisplayNanos        int64
	lastLatencyNanos        int64 // -1 until an alert carries an origin
	sloOK                   bool
}

// New builds an Auditor.
func New(o Options) *Auditor {
	a := &Auditor{
		conds:        make(map[string]cond.Condition, len(o.Conds)),
		assumeNoLoss: o.AssumeNoFrontLoss,
		slo:          int64(o.LatencySLO),
		maxStored:    o.MaxStoredAlerts,
		maxEvVals:    defaultMaxEvidenceVals,
		now:          o.Now,
		state:        make(map[string]*condState),
		ev:           make(map[event.VarName]*varEvidence),
		delivered:    make(map[int]map[event.VarName][]event.Update),
		aggregate:    NewMatrix(),
	}
	if a.maxStored == 0 {
		a.maxStored = DefaultMaxStoredAlerts
	}
	if a.assumeNoLoss {
		a.maxEvVals = 0 // reconstruction needs every value
	}
	if a.now == nil {
		a.now = func() int64 { return time.Now().UnixNano() }
	}
	for _, c := range o.Conds {
		a.conds[c.Name()] = c
	}
	a.prefix = o.MetricsPrefix
	if a.prefix == "" {
		a.prefix = "audit"
	}
	if r := o.Metrics; r != nil {
		a.reg = r
		p := a.prefix
		a.gOrdered = r.Gauge(p + ".ordered")
		a.gComplete = r.Gauge(p + ".complete")
		a.gConsistent = r.Gauge(p + ".consistent")
		a.cViolations = r.Counter(p + ".violations")
		a.cDisplayed = r.Counter(p + ".displayed")
		a.cSuppressed = r.Counter(p + ".suppressed")
		a.cEvFrames = r.Counter(p + ".evidence_frames")
		a.cEvRejected = r.Counter(p + ".evidence_rejected")
		a.hLatency = r.Histogram(p + ".latency_ns")
		a.cSLOBreaches = r.Counter(p + ".slo_breaches")
		a.gSLOOK = r.Gauge(p + ".slo_ok")
		a.gSLOOK.Set(1)
		r.GaugeFunc(p+".staleness_ns", a.stalenessNanos)
		a.publishAggregate()
	}
	return a
}

// ObserveDisplayed folds one displayed alert into the matrix.
// originNanos, when positive, is the alert's origin timestamp (the PR 5
// trace-trailer anchor: the freshest contributing update's emit time) and
// drives the end-to-end latency histogram and the SLO gauge.
func (a *Auditor) ObserveDisplayed(al event.Alert, originNanos int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.condState(al.Cond)
	st.nDisplayed++
	a.cDisplayed.Inc()
	now := a.now()
	st.lastDisplayNanos = now

	if originNanos > 0 {
		lat := now - originNanos
		a.hLatency.Observe(lat)
		st.lastLatencyNanos = lat
		st.sloOK = a.slo <= 0 || lat <= a.slo
		if !st.sloOK {
			a.cSLOBreaches.Inc()
		}
		a.publishSLO()
	}

	// Orderedness: Π_v monotone, incrementally.
	for v, h := range al.Histories {
		if len(h.Recent) == 0 {
			continue
		}
		n := h.Latest().SeqNo
		if last, ok := st.lastSeq[v]; ok && n < last {
			a.violate(st, &st.m.Ordered, fmt.Sprintf("orderedness: %s seqno %d displayed after %d", v, n, last))
		} else if !ok || n > last {
			st.lastSeq[v] = n
		}
	}
	if len(al.Histories) > 1 && !st.multiVar {
		st.multiVar = true
		// Multi-variable consistency needs the Lemma 5 precedence search;
		// conflict-freedom alone can only refute, so the streaming verdict
		// weakens to PLAUSIBLE until Finalize decides it.
		if st.m.Consistent == Confirmed {
			st.m.Consistent = Plausible
			a.republish()
		}
	}

	// Completeness surrogate: the AD-1 contract. Φ is a set, so offline
	// completeness cannot see duplicates — but a duplicate display is a
	// filter breach and exactly what the negative controls inject.
	k := al.Key()
	if _, dup := st.seen[k]; dup {
		a.violate(st, &st.m.Complete, "completeness: duplicate displayed alert "+k)
	} else {
		st.seen[k] = struct{}{}
	}

	// Consistency (Theorem 7): asserted-received and asserted-missed must
	// stay disjoint. Checking each new assertion against the opposite set
	// keeps the pass O(window) per alert.
	for v, h := range al.Histories {
		rec, miss := st.received[v], st.missed[v]
		if rec == nil {
			rec, miss = make(seq.Set), make(seq.Set)
			st.received[v], st.missed[v] = rec, miss
		}
		win := h.SeqNosAscending()
		for _, s := range win {
			if miss.Contains(s) {
				a.violate(st, &st.m.Consistent, fmt.Sprintf("consistency: %s seqno %d asserted both received and missed", v, s))
			}
			rec.Add(s)
		}
		for s := range seq.Gaps(win) {
			if rec.Contains(s) {
				a.violate(st, &st.m.Consistent, fmt.Sprintf("consistency: %s seqno %d asserted both received and missed", v, s))
			}
			miss.Add(s)
		}
		// Source evidence value check: a window claiming a value the DM
		// never emitted is not in T(U′) for any U′ ⊑ U — it refutes both
		// evidence-backed properties.
		if e := a.ev[v]; e != nil {
			for _, u := range h.Recent {
				if val, ok := e.valueAt(u.SeqNo); ok && val != u.Value {
					detail := fmt.Sprintf("%s seqno %d displayed value %g contradicts evidenced %g", v, u.SeqNo, u.Value, val)
					a.violate(st, &st.m.Complete, "completeness: "+detail)
					a.violate(st, &st.m.Consistent, "consistency: "+detail)
					break
				}
			}
		}
	}

	if a.maxStored < 0 || len(st.displayed) < a.maxStored {
		st.displayed = append(st.displayed, al.Clone())
	} else {
		st.truncated = true
	}
}

// ObserveSuppressed counts one suppressed offer for the condition.
func (a *Auditor) ObserveSuppressed(al event.Alert) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.condState(al.Cond).nSuppressed++
	a.mu.Unlock()
	a.cSuppressed.Inc()
}

// ObserveEmitted folds one source-side emitted update into the evidence
// store — the in-process equivalent of a DM's published digest, with the
// chain trusted rather than re-derived.
func (a *Auditor) ObserveEmitted(u event.Update) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.varEvidence(u.Var).absorbUpdate(u.SeqNo, u.Value)
	a.mu.Unlock()
}

// ObserveDelivered records that the given CE replica (0-based) received u.
// Delivery evidence is what makes every verdict decisive at Finalize; it
// is available in-process, in simulation, and at the experiment layer —
// never over the wire.
func (a *Auditor) ObserveDelivered(replica int, u event.Update) {
	if a == nil {
		return
	}
	a.mu.Lock()
	m := a.delivered[replica]
	if m == nil {
		m = make(map[event.VarName][]event.Update)
		a.delivered[replica] = m
	}
	m[u.Var] = append(m[u.Var], u)
	a.mu.Unlock()
}

// ObserveEvidence folds one decoded DM evidence frame into the store.
func (a *Auditor) ObserveEvidence(e wire.Evidence) {
	if a == nil {
		return
	}
	a.mu.Lock()
	ok := a.varEvidence(e.Var).absorbFrame(e)
	a.mu.Unlock()
	a.cEvFrames.Inc()
	if !ok {
		a.cEvRejected.Inc()
	}
}

// Verdicts returns the current streaming aggregate: the And across every
// condition observed so far.
func (a *Auditor) Verdicts() Matrix {
	if a == nil {
		return NewMatrix()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.aggregate
}

// CondVerdicts returns the current streaming matrix of one condition (the
// starting matrix if it has not been observed).
func (a *Auditor) CondVerdicts(name string) Matrix {
	if a == nil {
		return NewMatrix()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.state[name]; ok {
		return st.m
	}
	return NewMatrix()
}

// Finalize runs the decisive end-of-run checks over everything observed —
// the retroactive evidence value pass, then exact completeness and
// consistency wherever delivery or source evidence suffices — and returns
// the resulting aggregate. Verdicts only move between Plausible and a
// decisive state: a streaming VIOLATED stays violated, a CONFIRMED stays
// confirmed. Finalize may be called repeatedly (each /audit request could
// call it); it recomputes from retained state.
func (a *Auditor) Finalize() Matrix {
	if a == nil {
		return NewMatrix()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Registered conditions that never displayed still have a row: an empty
	// output is itself a completeness claim (ΦA = ∅) the evidence can decide.
	names := make([]string, 0, len(a.conds))
	for name := range a.conds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a.condState(name)
	}
	for _, name := range a.order {
		a.finalizeCond(a.state[name])
	}
	a.recomputeAggregate()
	return a.aggregate
}

// finalizeCond applies the decisive checks to one condition; the caller
// holds a.mu.
func (a *Auditor) finalizeCond(st *condState) {
	// Retroactive value pass: evidence that arrived after an alert was
	// displayed still refutes it.
	for _, al := range st.displayed {
		for v, h := range al.Histories {
			e := a.ev[v]
			if e == nil {
				continue
			}
			for _, u := range h.Recent {
				if val, ok := e.valueAt(u.SeqNo); ok && val != u.Value {
					detail := fmt.Sprintf("%s seqno %d displayed value %g contradicts evidenced %g", v, u.SeqNo, u.Value, val)
					a.violate(st, &st.m.Complete, "completeness: "+detail)
					a.violate(st, &st.m.Consistent, "consistency: "+detail)
				}
			}
		}
	}
	if st.truncated {
		return // the stored output is partial: no exact replay possible
	}
	c := a.conds[st.name]
	if c == nil {
		return
	}
	vars := c.Vars()

	// Prefer delivery evidence: it decides the real (lossy-link) property.
	if combined, ok := a.combinedStreams(vars); ok {
		if st.m.Complete == Plausible {
			a.decideComplete(st, c, vars, combined)
		}
		if st.m.Consistent == Plausible && st.multiVar {
			if consistent, err := props.ConsistentMulti(st.displayed, c, combined); err == nil {
				if consistent {
					st.m.Consistent = Confirmed
				} else {
					a.violate(st, &st.m.Consistent, "consistency: no feasible U′ over delivered streams")
				}
			}
		}
		return
	}

	// Source evidence under the no-front-loss assumption: U1 = U2 = U, so
	// the reconstructed emitted stream plays the role of both deliveries.
	if a.assumeNoLoss && st.m.Complete == Plausible {
		combined := make(map[event.VarName][]event.Update, len(vars))
		for _, v := range vars {
			vals, ok := a.ev[v].fullStream()
			if !ok {
				return
			}
			us := make([]event.Update, len(vals))
			for i, val := range vals {
				us[i] = event.Update{Var: v, SeqNo: int64(i + 1), Value: val}
			}
			combined[v] = us
		}
		a.decideComplete(st, c, vars, combined)
	}
}

// decideComplete runs the exact completeness check against combined
// per-variable streams; errors (enumeration bounds) leave PLAUSIBLE.
func (a *Auditor) decideComplete(st *condState, c cond.Condition, vars []event.VarName, combined map[event.VarName][]event.Update) {
	var complete bool
	var err error
	if len(vars) == 1 {
		var want []event.Alert
		want, err = ce.T(c, combined[vars[0]])
		if err == nil {
			complete = event.KeySetEqual(st.displayed, want)
		}
	} else {
		complete, err = props.CompleteMulti(st.displayed, c, combined)
	}
	if err != nil {
		return
	}
	if complete {
		st.m.Complete = Confirmed
	} else {
		a.violate(st, &st.m.Complete, "completeness: ΦA ≠ ΦT over evidenced streams")
	}
}

// combinedStreams builds the per-variable ordered union of the delivered
// streams; the caller holds a.mu. Delivery evidence is all-or-nothing by
// contract (a caller wiring ObserveDelivered must report every delivery),
// so once any observation exists, a variable with no recorded deliveries
// is evidence of an empty delivered stream — on a lossy run a variable
// really can lose every update, and bailing there would leave exactly
// those runs undecided.
func (a *Auditor) combinedStreams(vars []event.VarName) (map[event.VarName][]event.Update, bool) {
	if len(a.delivered) == 0 {
		return nil, false
	}
	out := make(map[event.VarName][]event.Update, len(vars))
	for _, v := range vars {
		var merged []event.Update
		first := true
		for _, m := range a.delivered {
			us := m[v]
			if first {
				merged = append([]event.Update(nil), us...)
				first = false
				continue
			}
			u, err := sim.OrderedUnionUpdates(merged, us)
			if err != nil {
				return nil, false
			}
			merged = u
		}
		out[v] = merged
	}
	return out, true
}

// condState returns (creating on first sight) one condition's state; the
// caller holds a.mu.
func (a *Auditor) condState(name string) *condState {
	st, ok := a.state[name]
	if !ok {
		st = &condState{
			name:             name,
			m:                NewMatrix(),
			lastSeq:          make(map[event.VarName]int64),
			seen:             make(map[string]struct{}),
			received:         make(map[event.VarName]seq.Set),
			missed:           make(map[event.VarName]seq.Set),
			lastLatencyNanos: -1,
			sloOK:            true,
		}
		a.state[name] = st
		a.order = append(a.order, name)
	}
	return st
}

// varEvidence returns (creating on first sight) one variable's evidence
// store; the caller holds a.mu.
func (a *Auditor) varEvidence(v event.VarName) *varEvidence {
	e, ok := a.ev[v]
	if !ok {
		e = newVarEvidence(a.maxEvVals)
		a.ev[v] = e
	}
	return e
}

// violate flips one verdict to VIOLATED (sticky), records the detail, and
// bumps the violation counter; the caller holds a.mu.
func (a *Auditor) violate(st *condState, v *Verdict, detail string) {
	if *v == Violated {
		return
	}
	*v = Violated
	a.violations++
	a.cViolations.Inc()
	a.lastViolation = st.name + ": " + detail
	a.republish()
}

// republish folds the changed condition into the aggregate and pushes the
// gauges; streaming verdicts only ever weaken, so min-folding the current
// states is exact. The caller holds a.mu.
func (a *Auditor) republish() {
	a.recomputeAggregate()
}

// recomputeAggregate rebuilds the aggregate matrix from every condition's
// current state and pushes the verdict gauges; the caller holds a.mu. The
// fold seed is all-CONFIRMED (the identity of And); NewMatrix's starting
// PLAUSIBLE completeness would otherwise cap the aggregate below what every
// condition proved.
func (a *Auditor) recomputeAggregate() {
	if len(a.state) == 0 {
		a.aggregate = NewMatrix()
		a.publishAggregate()
		return
	}
	m := Matrix{Ordered: Confirmed, Complete: Confirmed, Consistent: Confirmed}
	for _, st := range a.state {
		m = m.And(st.m)
	}
	a.aggregate = m
	a.publishAggregate()
}

// publishAggregate pushes the aggregate verdicts to the gauges (encoded
// 0=VIOLATED, 1=PLAUSIBLE, 2=CONFIRMED); the caller holds a.mu.
func (a *Auditor) publishAggregate() {
	a.gOrdered.Set(int64(a.aggregate.Ordered))
	a.gComplete.Set(int64(a.aggregate.Complete))
	a.gConsistent.Set(int64(a.aggregate.Consistent))
}

// publishSLO pushes the fleet slo_ok gauge: 1 only while every condition's
// most recent latencied alert met the objective. The caller holds a.mu.
func (a *Auditor) publishSLO() {
	ok := int64(1)
	for _, st := range a.state {
		if !st.sloOK {
			ok = 0
			break
		}
	}
	a.gSLOOK.Set(ok)
}

// stalenessNanos is the sampled staleness gauge: the age of the oldest
// condition's last display (0 before any display).
func (a *Auditor) stalenessNanos() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	oldest := int64(0)
	now := a.now()
	for _, st := range a.state {
		if st.lastDisplayNanos == 0 {
			continue
		}
		if age := now - st.lastDisplayNanos; age > oldest {
			oldest = age
		}
	}
	return oldest
}

// CondReport is one condition's row in a Report.
type CondReport struct {
	Cond       string `json:"cond"`
	Ordered    string `json:"ordered"`
	Complete   string `json:"complete"`
	Consistent string `json:"consistent"`
	Displayed  int64  `json:"displayed"`
	Suppressed int64  `json:"suppressed"`
	MultiVar   bool   `json:"multi_var,omitempty"`
	// LastLatencyNanos is -1 until an alert carried an origin timestamp.
	LastLatencyNanos int64 `json:"last_latency_ns"`
	StalenessNanos   int64 `json:"staleness_ns"`
	SLOOK            bool  `json:"slo_ok"`
}

// EvidenceReport is one variable's evidence-store summary in a Report.
type EvidenceReport struct {
	Var      string `json:"var"`
	Frames   int64  `json:"frames"`
	Rejected int64  `json:"rejected"`
	Holes    int64  `json:"holes"`
	UpTo     int64  `json:"up_to"`
	ChainOK  bool   `json:"chain_ok"`
}

// Report is the full audit snapshot served at /audit and consumed by
// condmon-trace audit.
type Report struct {
	NowNanos      int64            `json:"now_ns"`
	Ordered       string           `json:"ordered"`
	Complete      string           `json:"complete"`
	Consistent    string           `json:"consistent"`
	Violations    int64            `json:"violations"`
	LastViolation string           `json:"last_violation,omitempty"`
	Conds         []CondReport     `json:"conds"`
	Evidence      []EvidenceReport `json:"evidence,omitempty"`
}

// Report snapshots the auditor, running Finalize's decisive checks first
// so the served matrix is as strong as the accumulated evidence allows.
func (a *Auditor) Report() Report {
	if a == nil {
		m := NewMatrix()
		return Report{Ordered: m.Ordered.Label(), Complete: m.Complete.Label(), Consistent: m.Consistent.Label()}
	}
	a.Finalize()
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	r := Report{
		NowNanos:      now,
		Ordered:       a.aggregate.Ordered.Label(),
		Complete:      a.aggregate.Complete.Label(),
		Consistent:    a.aggregate.Consistent.Label(),
		Violations:    a.violations,
		LastViolation: a.lastViolation,
	}
	for _, name := range a.order {
		st := a.state[name]
		cr := CondReport{
			Cond:             name,
			Ordered:          st.m.Ordered.Label(),
			Complete:         st.m.Complete.Label(),
			Consistent:       st.m.Consistent.Label(),
			Displayed:        st.nDisplayed,
			Suppressed:       st.nSuppressed,
			MultiVar:         st.multiVar,
			LastLatencyNanos: st.lastLatencyNanos,
			SLOOK:            st.sloOK,
		}
		if st.lastDisplayNanos > 0 {
			cr.StalenessNanos = now - st.lastDisplayNanos
		}
		r.Conds = append(r.Conds, cr)
	}
	vars := make([]string, 0, len(a.ev))
	for v := range a.ev {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	for _, v := range vars {
		e := a.ev[event.VarName(v)]
		r.Evidence = append(r.Evidence, EvidenceReport{
			Var: v, Frames: e.frames, Rejected: e.rejected, Holes: e.holes,
			UpTo: e.maxHeld, ChainOK: e.chainOK,
		})
	}
	return r
}
