package audit

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/obs"
	"condmon/internal/wire"
)

// mkAlert builds a displayed alert whose per-variable windows are given
// oldest-first (the natural reading order) and converted to the
// most-recent-first layout History uses.
func mkAlert(name string, hists map[event.VarName][]event.Update) event.Alert {
	hs := make(event.HistorySet, len(hists))
	for v, asc := range hists {
		recent := make([]event.Update, len(asc))
		for i, u := range asc {
			recent[len(asc)-1-i] = u
		}
		hs[v] = event.History{Var: v, Recent: recent}
	}
	return event.NewAlert(name, hs, "test")
}

func xAlert(name string, seqs ...int64) event.Alert {
	us := make([]event.Update, len(seqs))
	for i, s := range seqs {
		us[i] = event.U("x", s, float64(s)*100)
	}
	return mkAlert(name, map[event.VarName][]event.Update{"x": us})
}

// The negative control the e2e smoke injects: a broken dedup filter that
// displays the same alert twice must flip completeness to VIOLATED and
// bump the violation counter.
func TestAuditDuplicateDisplayFlipsComplete(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Metrics: reg})
	al := xAlert("c1", 1, 2)

	a.ObserveDisplayed(al, 0)
	if m := a.Verdicts(); m.Complete != Plausible || m.Ordered != Confirmed {
		t.Fatalf("after one display: %v", m)
	}
	a.ObserveDisplayed(al, 0)
	m := a.Verdicts()
	if m.Complete != Violated {
		t.Fatalf("duplicate display: Complete = %v, want VIOLATED", m.Complete)
	}
	if m.Ordered == Violated || m.Consistent == Violated {
		t.Fatalf("duplicate display must only hit completeness: %v", m)
	}
	r := a.Report()
	if r.Violations != 1 {
		t.Fatalf("violations = %d, want 1", r.Violations)
	}
	if !strings.Contains(r.LastViolation, "duplicate displayed alert") {
		t.Fatalf("last violation %q lacks detail", r.LastViolation)
	}
	if p, ok := reg.Get("audit.violations"); !ok || p.Value != 1 {
		t.Fatalf("audit.violations = %+v", p)
	}
	if p, ok := reg.Get("audit.complete"); !ok || p.Value != int64(Violated) {
		t.Fatalf("audit.complete gauge = %+v", p)
	}
}

// The reorder negative control: a window whose Π_v regresses must flip
// orderedness and nothing else.
func TestAuditReorderFlipsOrdered(t *testing.T) {
	a := New(Options{})
	a.ObserveDisplayed(xAlert("c1", 2, 3), 0)
	a.ObserveDisplayed(xAlert("c1", 1, 2), 0)
	m := a.Verdicts()
	if m.Ordered != Violated {
		t.Fatalf("regressing seqno: Ordered = %v, want VIOLATED", m.Ordered)
	}
	if m.Consistent == Violated {
		t.Fatalf("reorder alone must not refute consistency: %v", m)
	}
}

// Theorem 7's conflict: a seqno asserted missed by one window and received
// by another refutes consistency incrementally.
func TestAuditConsistencyConflictIncremental(t *testing.T) {
	a := New(Options{})
	a.ObserveDisplayed(xAlert("c1", 1, 2, 3), 0)
	// Window ⟨1,3⟩ asserts 2 missed; the first window asserted it received.
	a.ObserveDisplayed(xAlert("c1", 1, 3), 0)
	m := a.Verdicts()
	if m.Consistent != Violated {
		t.Fatalf("conflicting assertion: Consistent = %v, want VIOLATED", m.Consistent)
	}
	if m.Ordered == Violated {
		t.Fatalf("Π_v never regressed: %v", m)
	}
}

// A displayed value the DM evidence contradicts is outside T(U′) for every
// U′ ⊑ U: both evidence-backed properties flip, whether the evidence
// arrived before (streaming pass) or after (Finalize retroactive pass).
func TestAuditEvidenceValueContradiction(t *testing.T) {
	for _, order := range []string{"evidence-first", "alert-first"} {
		a := New(Options{})
		feed := func() {
			a.ObserveEmitted(event.U("x", 1, 100))
			a.ObserveEmitted(event.U("x", 2, 200))
		}
		bogus := mkAlert("c1", map[event.VarName][]event.Update{
			"x": {event.U("x", 1, 100), event.U("x", 2, 999)},
		})
		if order == "evidence-first" {
			feed()
			a.ObserveDisplayed(bogus, 0)
		} else {
			a.ObserveDisplayed(bogus, 0)
			feed()
		}
		m := a.Finalize()
		if m.Complete != Violated || m.Consistent != Violated {
			t.Fatalf("%s: contradicted value left %v", order, m)
		}
	}
}

// Clean emitted evidence under AssumeNoFrontLoss makes completeness
// decisive at Finalize: displaying exactly ΦT(U) confirms, omitting an
// alert violates.
func TestAuditNoFrontLossCompleteness(t *testing.T) {
	c := cond.NewRiseAggressive("x")
	stream := []event.Update{
		event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720),
		event.U("x", 4, 1300), event.U("x", 5, 1250),
	}
	want, err := ce.T(c, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("test stream too quiet: ΦT has %d alerts", len(want))
	}

	t.Run("exact output confirms", func(t *testing.T) {
		a := New(Options{Conds: []cond.Condition{c}, AssumeNoFrontLoss: true})
		for _, u := range stream {
			a.ObserveEmitted(u)
		}
		for _, al := range want {
			a.ObserveDisplayed(al, 0)
		}
		m := a.Finalize()
		if m.Complete != Confirmed {
			t.Fatalf("exact ΦT display: Complete = %v, want CONFIRMED", m.Complete)
		}
		if !m.Decisive() {
			t.Fatalf("full evidence left a non-decisive matrix %v", m)
		}
	})

	t.Run("missing alert violates", func(t *testing.T) {
		a := New(Options{Conds: []cond.Condition{c}, AssumeNoFrontLoss: true})
		for _, u := range stream {
			a.ObserveEmitted(u)
		}
		for _, al := range want[:len(want)-1] {
			a.ObserveDisplayed(al, 0)
		}
		if m := a.Finalize(); m.Complete != Violated {
			t.Fatalf("dropped alert: Complete = %v, want VIOLATED", m.Complete)
		}
	})

	t.Run("silent displayer with empty T confirms", func(t *testing.T) {
		quiet := cond.NewOverheat("x")
		a := New(Options{Conds: []cond.Condition{quiet}, AssumeNoFrontLoss: true})
		for _, u := range stream {
			a.ObserveEmitted(u)
		}
		// Nothing displayed, and ΦT(U) for overheat on this stream is ∅.
		if m := a.Finalize(); m.Complete != Confirmed {
			t.Fatalf("empty output vs empty ΦT: Complete = %v, want CONFIRMED", m.Complete)
		}
	})
}

// Evidence frames from a builder absorb cleanly; a frame claiming a hash
// the values do not support is rejected whole and counted.
func TestAuditEvidenceFrameAbsorption(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Metrics: reg})
	b := NewEvidenceBuilder("x", 1, 8)
	for s := int64(1); s <= 10; s++ {
		b.Observe(event.U("x", s, float64(s)*10))
	}
	f, ok := b.Frame()
	if !ok {
		t.Fatal("builder with observations returned no frame")
	}
	a.ObserveEvidence(f)
	r := a.Report()
	if len(r.Evidence) != 1 || r.Evidence[0].UpTo != 10 || r.Evidence[0].Rejected != 0 {
		t.Fatalf("evidence report = %+v", r.Evidence)
	}

	// A corrupted frame (values mutated after hashing) must be rejected
	// without disturbing the store.
	bad := f
	bad.Vals = append([]float64(nil), f.Vals...)
	bad.Vals[0] += 1
	bad.UpTo += 1 // pretend it extends the chain
	bad.PrefixHash = 12345
	a.ObserveEvidence(bad)
	r = a.Report()
	if r.Evidence[0].Rejected != 1 {
		t.Fatalf("corrupted frame not rejected: %+v", r.Evidence[0])
	}
	if r.Evidence[0].UpTo != 10 {
		t.Fatalf("rejected frame mutated the store: %+v", r.Evidence[0])
	}
	if p, _ := reg.Get("audit.evidence_frames"); p.Value != 2 {
		t.Fatalf("audit.evidence_frames = %d, want 2", p.Value)
	}
	if p, _ := reg.Get("audit.evidence_rejected"); p.Value != 1 {
		t.Fatalf("audit.evidence_rejected = %d, want 1", p.Value)
	}
}

// Overlapping tails let the receiver survive a lost evidence frame: frame
// 2's tail re-covers what frame 1 carried, so skipping frame 1 entirely
// still yields a verified chain.
func TestAuditEvidenceSurvivesLostFrame(t *testing.T) {
	b := NewEvidenceBuilder("x", 1, 64)
	for s := int64(1); s <= 3; s++ {
		b.Observe(event.U("x", s, float64(s)))
	}
	if _, ok := b.Frame(); !ok { // frame 1: published but "lost"
		t.Fatal("no frame 1")
	}
	for s := int64(4); s <= 6; s++ {
		b.Observe(event.U("x", s, float64(s)))
	}
	f2, _ := b.Frame()

	a := New(Options{AssumeNoFrontLoss: true})
	a.ObserveEvidence(f2)
	a.mu.Lock()
	vals, ok := a.ev["x"].fullStream()
	a.mu.Unlock()
	if !ok || len(vals) != 6 {
		t.Fatalf("fullStream after lost frame: ok=%v len=%d", ok, len(vals))
	}
	for i, v := range vals {
		if v != float64(i+1) {
			t.Fatalf("vals[%d] = %g", i, v)
		}
	}
}

// A genuine gap (tail shorter than the hole) re-anchors: the chain is no
// longer a verified prefix from seqno 1, so reconstruction refuses.
func TestAuditEvidenceHoleReanchors(t *testing.T) {
	b := NewEvidenceBuilder("x", 1, 2) // tail of 2: frames cover little
	for s := int64(1); s <= 2; s++ {
		b.Observe(event.U("x", s, float64(s)))
	}
	f1, _ := b.Frame()
	for s := int64(3); s <= 8; s++ {
		b.Observe(event.U("x", s, float64(s)))
	}
	f2, _ := b.Frame() // covers only ⟨7,8⟩: hole after f1's ⟨1,2⟩

	a := New(Options{AssumeNoFrontLoss: true})
	a.ObserveEvidence(f1)
	a.ObserveEvidence(f2)
	r := a.Report()
	if len(r.Evidence) != 1 || r.Evidence[0].Holes != 1 {
		t.Fatalf("expected one hole: %+v", r.Evidence)
	}
	a.mu.Lock()
	_, ok := a.ev["x"].fullStream()
	a.mu.Unlock()
	if ok {
		t.Fatal("fullStream reconstructed across a hole")
	}
	// Values in the surviving run still answer point queries.
	a.mu.Lock()
	v, have := a.ev["x"].valueAt(8)
	a.mu.Unlock()
	if !have || v != 8 {
		t.Fatalf("valueAt(8) = %g,%v", v, have)
	}
}

// The latency/SLO surface: origin timestamps drive the histogram, breach
// counter, slo_ok gauge, and the sampled staleness gauge.
func TestAuditLatencySLO(t *testing.T) {
	now := int64(1_000_000)
	reg := obs.NewRegistry()
	a := New(Options{
		Metrics:    reg,
		LatencySLO: 100 * time.Nanosecond,
		Now:        func() int64 { return now },
	})

	a.ObserveDisplayed(xAlert("c1", 1), now-50) // 50ns: within SLO
	r := a.Report()
	if !r.Conds[0].SLOOK || r.Conds[0].LastLatencyNanos != 50 {
		t.Fatalf("within-SLO alert: %+v", r.Conds[0])
	}
	if p, _ := reg.Get("audit.slo_ok"); p.Value != 1 {
		t.Fatalf("audit.slo_ok = %d, want 1", p.Value)
	}

	a.ObserveDisplayed(xAlert("c1", 2), now-500) // 500ns: breach
	if p, _ := reg.Get("audit.slo_breaches"); p.Value != 1 {
		t.Fatalf("audit.slo_breaches = %d, want 1", p.Value)
	}
	if p, _ := reg.Get("audit.slo_ok"); p.Value != 0 {
		t.Fatalf("audit.slo_ok = %d, want 0", p.Value)
	}
	if p, _ := reg.Get("audit.latency_ns"); p.Value != 2 {
		t.Fatalf("latency histogram count = %d, want 2", p.Value)
	}

	// Staleness: sampled as now - lastDisplay.
	now += 700
	if p, _ := reg.Get("audit.staleness_ns"); p.Value != 700 {
		t.Fatalf("audit.staleness_ns = %d, want 700", p.Value)
	}
	r = a.Report()
	if r.Conds[0].StalenessNanos != 700 {
		t.Fatalf("report staleness = %d, want 700", r.Conds[0].StalenessNanos)
	}
}

// Every method is a no-op on a nil auditor, and the handler still serves
// the empty starting report — the audit-off contract.
func TestAuditNilSafe(t *testing.T) {
	var a *Auditor
	a.ObserveDisplayed(xAlert("c1", 1), 1)
	a.ObserveSuppressed(xAlert("c1", 1))
	a.ObserveEmitted(event.U("x", 1, 1))
	a.ObserveDelivered(0, event.U("x", 1, 1))
	a.ObserveEvidence(wire.Evidence{Var: "x", UpTo: 1, Vals: []float64{1}})
	if m := a.Verdicts(); m != NewMatrix() {
		t.Fatalf("nil Verdicts = %v", m)
	}
	if m := a.Finalize(); m != NewMatrix() {
		t.Fatalf("nil Finalize = %v", m)
	}
	if r := a.Report(); r.Ordered != "CONFIRMED" || r.Complete != "PLAUSIBLE" {
		t.Fatalf("nil Report = %+v", r)
	}

	rec := httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, httptest.NewRequest("GET", "/audit", nil))
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("nil handler JSON: %v", err)
	}
	rec = httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, httptest.NewRequest("GET", "/audit?format=prom", nil))
	if !strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatalf("nil handler prom output: %q", rec.Body.String())
	}
}

// The HTTP surface: JSON by default, the audit namespace in Prometheus
// exposition with ?format=prom or a scraper Accept header.
func TestAuditHandler(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Metrics: reg})
	al := xAlert("c1", 1, 2)
	a.ObserveDisplayed(al, 0)
	a.ObserveDisplayed(al, 0) // duplicate: Complete → VIOLATED

	rec := httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, httptest.NewRequest("GET", "/audit", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Complete != "VIOLATED" || rep.Violations != 1 || len(rep.Conds) != 1 {
		t.Fatalf("report = %+v", rep)
	}

	rec = httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, httptest.NewRequest("GET", "/audit?format=prom", nil))
	body := rec.Body.String()
	for _, want := range []string{"audit_ordered", "audit_complete", "audit_violations", "# EOF"} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom body lacks %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "\naudit_complete{") && !strings.Contains(body, `audit_complete{name="audit.complete"} 0`) {
		t.Fatalf("violated gauge not 0 in prom body:\n%s", body)
	}

	req := httptest.NewRequest("GET", "/audit", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	rec = httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "audit_ordered") {
		t.Fatalf("Accept negotiation failed:\n%s", rec.Body.String())
	}

	// Without a registry the handler synthesizes the core point set.
	bare := New(Options{})
	bare.ObserveDisplayed(al, 0)
	rec = httptest.NewRecorder()
	Handler(bare).ServeHTTP(rec, httptest.NewRequest("GET", "/audit?format=prom", nil))
	if body := rec.Body.String(); !strings.Contains(body, `audit_displayed{name="audit.displayed"} 1`) {
		t.Fatalf("synthesized prom body:\n%s", body)
	}
}

// Suppressed offers count per condition without touching verdicts.
func TestAuditSuppressedCounting(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Metrics: reg})
	a.ObserveDisplayed(xAlert("c1", 1), 0)
	a.ObserveSuppressed(xAlert("c1", 1))
	a.ObserveSuppressed(xAlert("c1", 1))
	r := a.Report()
	if r.Conds[0].Displayed != 1 || r.Conds[0].Suppressed != 2 {
		t.Fatalf("counts = %+v", r.Conds[0])
	}
	if p, _ := reg.Get("audit.suppressed"); p.Value != 2 {
		t.Fatalf("audit.suppressed = %d", p.Value)
	}
	if m := a.Verdicts(); m.Ordered == Violated || m.Complete == Violated || m.Consistent == Violated {
		t.Fatalf("suppression flipped a verdict: %v", m)
	}
}

// Multi-variable displays weaken streaming consistency to PLAUSIBLE (the
// Lemma 5 search is Finalize's job) and aggregate across conditions by And.
func TestAuditMultiVarPlausibleAndAggregate(t *testing.T) {
	a := New(Options{})
	a.ObserveDisplayed(mkAlert("cm", map[event.VarName][]event.Update{
		"x": {event.U("x", 1, 1000)},
		"y": {event.U("y", 1, 1050)},
	}), 0)
	if m := a.CondVerdicts("cm"); m.Consistent != Plausible {
		t.Fatalf("multi-var streaming Consistent = %v, want PLAUSIBLE", m.Consistent)
	}
	// A second, single-var condition stays Confirmed; the aggregate is min.
	a.ObserveDisplayed(xAlert("c1", 1), 0)
	if m := a.CondVerdicts("c1"); m.Consistent != Confirmed {
		t.Fatalf("single-var Consistent = %v", m.Consistent)
	}
	if m := a.Verdicts(); m.Consistent != Plausible {
		t.Fatalf("aggregate Consistent = %v, want PLAUSIBLE", m.Consistent)
	}
}
