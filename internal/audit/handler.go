package audit

// The HTTP surface: Handler serves the audit Report as JSON (the default)
// or as a Prometheus exposition restricted to the audit namespace with
// ?format=prom — mirroring the obs /metrics content negotiation so the
// same scrapers work against /audit.

import (
	"encoding/json"
	"net/http"
	"strings"

	"condmon/internal/obs"
)

// Handler serves the auditor at any path it is mounted on (by convention
// /audit on the obs mux). A nil auditor serves the empty starting report —
// nil-safety all the way to the HTTP surface, matching the rest of the
// observability stack.
func Handler(a *Auditor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = obs.WritePromPoints(w, a.promPoints())
			return
		}
		if accept := req.Header.Get("Accept"); strings.Contains(accept, "openmetrics") ||
			strings.Contains(accept, "prometheus") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = obs.WritePromPoints(w, a.promPoints())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Report())
	})
}

// promPoints returns the audit namespace as snapshot points: the metric
// registry's audit.* entries when metrics are wired (full data, including
// the latency histogram), or a synthesized core set from the auditor's own
// state when they are not — /audit?format=prom works either way.
func (a *Auditor) promPoints() []obs.Point {
	if a == nil {
		return nil
	}
	a.Finalize()
	a.mu.Lock()
	reg, prefix := a.reg, a.prefix
	a.mu.Unlock()
	if reg != nil {
		var out []obs.Point
		for _, p := range reg.Snapshot() {
			if strings.HasPrefix(p.Name, prefix+".") {
				out = append(out, p)
			}
		}
		return out
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var nDisp, nSupp int64
	for _, st := range a.state {
		nDisp += st.nDisplayed
		nSupp += st.nSuppressed
	}
	return []obs.Point{
		{Name: prefix + ".ordered", Kind: obs.KindGauge, Value: int64(a.aggregate.Ordered)},
		{Name: prefix + ".complete", Kind: obs.KindGauge, Value: int64(a.aggregate.Complete)},
		{Name: prefix + ".consistent", Kind: obs.KindGauge, Value: int64(a.aggregate.Consistent)},
		{Name: prefix + ".violations", Kind: obs.KindCounter, Value: a.violations},
		{Name: prefix + ".displayed", Kind: obs.KindCounter, Value: nDisp},
		{Name: prefix + ".suppressed", Kind: obs.KindCounter, Value: nSupp},
	}
}
