package audit

// The streaming-vs-offline equivalence gate: over the paper's canonical
// proof scenarios and seeded random lossy runs, the streaming auditor's
// finalized verdicts must agree bit-for-bit with the offline
// internal/props checkers on the same recorded run. CI runs these tests
// under -race (the auditor is a concurrent structure even when driven
// sequentially here).

import (
	"math/rand"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/sim"
)

var singleVarFactories = []struct {
	name string
	f    props.FilterFactory
}{
	{"AD-1", func() ad.Filter { return ad.NewAD1() }},
	{"AD-2", func() ad.Filter { return ad.NewAD2("x") }},
	{"AD-3", func() ad.Filter { return ad.NewAD3("x") }},
	{"AD-4", func() ad.Filter { return ad.NewAD4("x") }},
}

var multiVarFactories = []struct {
	name string
	f    props.FilterFactory
}{
	{"AD-5", func() ad.Filter { return ad.NewAD5("x", "y") }},
	{"AD-6", func() ad.Filter { return ad.NewAD6("x", "y") }},
}

// canonicalSingleVarRuns reconstructs the theorem-proof scenarios behind
// Tables 1 and 2: the deterministic witnesses for every ✗ cell.
func canonicalSingleVarRuns(t *testing.T) []*sim.SingleVarRun {
	t.Helper()
	mk := func(c cond.Condition, u []event.Update, l1, l2 link.Model) *sim.SingleVarRun {
		run, err := sim.RunSingleVar(c, u, l1, l2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	theorem3 := []event.Update{
		event.U("x", 1, 1000), event.U("x", 2, 1500),
		event.U("x", 3, 2000), event.U("x", 4, 2500),
	}
	return []*sim.SingleVarRun{
		// Theorem 2: overheat, CE2 misses seqno 1.
		mk(cond.NewOverheat("x"),
			[]event.Update{event.U("x", 1, 3100), event.U("x", 2, 3500)},
			link.None{}, link.NewDropSeqNos("x", 1)),
		// Theorem 3: conservative rise, disjoint halves lost.
		mk(cond.NewRiseConservative("x"), theorem3,
			link.NewDropSeqNos("x", 3, 4), link.NewDropSeqNos("x", 1, 2)),
		// Theorem 4: aggressive rise, CE2 misses seqno 2.
		mk(cond.NewRiseAggressive("x"),
			[]event.Update{event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)},
			link.None{}, link.NewDropSeqNos("x", 2)),
		// Theorem 3's shape under the aggressive condition.
		mk(cond.NewRiseAggressive("x"), theorem3,
			link.NewDropSeqNos("x", 3, 4), link.NewDropSeqNos("x", 1, 2)),
		// Lossless control: every property should hold.
		mk(cond.NewRiseAggressive("x"), theorem3, link.None{}, link.None{}),
	}
}

func volatileStream(r *rand.Rand, n int) []event.Update {
	out := make([]event.Update, n)
	val := 2900.0
	for i := range out {
		val += float64(r.Intn(700) - 250)
		out[i] = event.U("x", int64(i+1), val)
	}
	return out
}

func TestAuditEquivalenceSingleVar(t *testing.T) {
	runs := canonicalSingleVarRuns(t)

	// Seeded random lossy runs widen the net beyond the proof scenarios.
	r := rand.New(rand.NewSource(11))
	conds := []cond.Condition{
		cond.NewOverheat("x"), cond.NewRiseConservative("x"), cond.NewRiseAggressive("x"),
	}
	for trial := 0; trial < 25; trial++ {
		c := conds[trial%len(conds)]
		loss1, loss2 := link.Model(link.None{}), link.Model(link.None{})
		if trial%4 != 0 {
			loss1, loss2 = link.Bernoulli{P: 0.3}, link.Bernoulli{P: 0.3}
		}
		run, err := sim.RunSingleVar(c, volatileStream(r, 5), loss1, loss2, r)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}

	for i, run := range runs {
		for _, fac := range singleVarFactories {
			want, _, err := props.CheckSingleVarRun(run, fac.f)
			if err != nil {
				t.Fatalf("run %d %s offline: %v", i, fac.name, err)
			}
			got, err := CheckSingleVarRunStreaming(run, fac.f)
			if err != nil {
				t.Fatalf("run %d %s streaming: %v", i, fac.name, err)
			}
			if got != want {
				t.Errorf("run %d (%s) under %s: streaming %+v ≠ offline %+v",
					i, run.Cond.Name(), fac.name, got, want)
			}
		}
	}
}

// canonicalMultiVarRuns reconstructs the Table 3 witnesses: Theorem 10's
// opposite interleavings and Theorem 4 lifted to two variables.
func canonicalMultiVarRuns(t *testing.T) []*sim.MultiVarRun {
	t.Helper()
	t10, err := sim.RunMultiVar(cond.NewTempDiff("x", "y"),
		map[event.VarName][]event.Update{
			"x": {event.U("x", 1, 1000), event.U("x", 2, 1200)},
			"y": {event.U("y", 1, 1050), event.U("y", 2, 1150)},
		},
		[2]map[event.VarName]link.Model{},
		[2]sim.Interleaver{sim.Sequential, sim.SequentialReverse}, nil)
	if err != nil {
		t.Fatal(err)
	}
	yFirst := func(streams map[event.VarName][]event.Update, _ *rand.Rand) []event.Update {
		var out []event.Update
		out = append(out, streams["y"]...)
		out = append(out, streams["x"]...)
		return out
	}
	t4, err := sim.RunMultiVar(cond.MustParse("cm-aggr", "x[0] - x[-1] > 200 && y[0] > 0"),
		map[event.VarName][]event.Update{
			"x": {event.U("x", 1, 400), event.U("x", 2, 700), event.U("x", 3, 720)},
			"y": {event.U("y", 1, 1)},
		},
		[2]map[event.VarName]link.Model{
			nil,
			{"x": link.NewDropSeqNos("x", 2)},
		},
		[2]sim.Interleaver{yFirst, yFirst}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []*sim.MultiVarRun{t10, t4}
}

func multiVolatileStreams(r *rand.Rand, n int) map[event.VarName][]event.Update {
	xs := make([]event.Update, n)
	val := 1000.0
	for i := range xs {
		val += float64(r.Intn(700) - 250)
		xs[i] = event.U("x", int64(i+1), val)
	}
	ys := make([]event.Update, n)
	val = 1050.0
	for i := range ys {
		val += float64(r.Intn(200) - 100)
		ys[i] = event.U("y", int64(i+1), val)
	}
	return map[event.VarName][]event.Update{"x": xs, "y": ys}
}

func TestAuditEquivalenceMultiVar(t *testing.T) {
	runs := canonicalMultiVarRuns(t)

	r := rand.New(rand.NewSource(13))
	conds := []cond.Condition{
		cond.NewTempDiff("x", "y"),
		cond.MustParse("cm-cons", "x[0] - x[-1] > 200 && y[0] > 0 && consecutive(x)"),
		cond.MustParse("cm-aggr", "x[0] - x[-1] > 200 && y[0] > 0"),
	}
	interleavers := []sim.Interleaver{sim.RandomInterleave, sim.RoundRobin, sim.Sequential, sim.SequentialReverse}
	for trial := 0; trial < 12; trial++ {
		c := conds[trial%len(conds)]
		var loss [2]map[event.VarName]link.Model
		if trial%3 != 0 {
			loss = [2]map[event.VarName]link.Model{
				{"x": link.Bernoulli{P: 0.3}, "y": link.Bernoulli{P: 0.3}},
				{"x": link.Bernoulli{P: 0.3}, "y": link.Bernoulli{P: 0.3}},
			}
		}
		inter := [2]sim.Interleaver{
			interleavers[r.Intn(len(interleavers))],
			interleavers[r.Intn(len(interleavers))],
		}
		run, err := sim.RunMultiVar(c, multiVolatileStreams(r, 2), loss, inter, r)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}

	for i, run := range runs {
		for _, fac := range multiVarFactories {
			want, _, err := props.CheckMultiVarRun(run, fac.f)
			if err != nil {
				t.Fatalf("run %d %s offline: %v", i, fac.name, err)
			}
			got, err := CheckMultiVarRunStreaming(run, fac.f)
			if err != nil {
				t.Fatalf("run %d %s streaming: %v", i, fac.name, err)
			}
			if got != want {
				t.Errorf("run %d (%s) under %s: streaming %+v ≠ offline %+v",
					i, run.Cond.Name(), fac.name, got, want)
			}
		}
	}
}
