package link

import (
	"math/rand"
	"testing"

	"condmon/internal/event"
	"condmon/internal/seq"
)

func stream(n int) []event.Update {
	out := make([]event.Update, n)
	for i := range out {
		out[i] = event.U("x", int64(i+1), float64(i))
	}
	return out
}

func TestNoneDeliversEverything(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	got := Apply(stream(10), None{}, r)
	if len(got) != 10 {
		t.Errorf("None delivered %d of 10", len(got))
	}
}

func TestBernoulliValidation(t *testing.T) {
	if _, err := NewBernoulli(-0.1); err == nil {
		t.Error("negative probability should be rejected")
	}
	if _, err := NewBernoulli(1.1); err == nil {
		t.Error("probability > 1 should be rejected")
	}
	if _, err := NewBernoulli(0.5); err != nil {
		t.Errorf("valid probability rejected: %v", err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if got := Apply(stream(50), Bernoulli{P: 0}, r); len(got) != 50 {
		t.Errorf("P=0 delivered %d of 50", len(got))
	}
	if got := Apply(stream(50), Bernoulli{P: 1}, r); len(got) != 0 {
		t.Errorf("P=1 delivered %d of 50, want 0", len(got))
	}
}

func TestBernoulliRateAndOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := stream(10000)
	got := Apply(in, Bernoulli{P: 0.3}, r)
	rate := 1 - float64(len(got))/float64(len(in))
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("observed drop rate %.3f, want ≈0.30", rate)
	}
	if !event.SeqNos(got, "x").IsOrdered() {
		t.Error("delivered subsequence must preserve order")
	}
	if !event.SeqNos(got, "x").SubsequenceOf(event.SeqNos(in, "x")) {
		t.Error("delivered stream must be a subsequence of the input")
	}
}

func TestBernoulliDeterministicPerSeed(t *testing.T) {
	a := Apply(stream(100), Bernoulli{P: 0.5}, rand.New(rand.NewSource(7)))
	b := Apply(stream(100), Bernoulli{P: 0.5}, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("same seed produced different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at index %d", i)
		}
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := NewBurst(2, 0.5, 0.5); err == nil {
		t.Error("invalid transition probability should be rejected")
	}
	if _, err := NewBurst(0.1, 0.5, 0.9); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestBurstProducesCorrelatedLoss(t *testing.T) {
	// With certain transitions the model is deterministic: first update
	// flips to bad (always drops), second flips back to good.
	m := &Burst{PGoodToBad: 1, PBadToGood: 1, PDropBad: 1}
	r := rand.New(rand.NewSource(4))
	got := Apply(stream(6), m, r)
	// Pattern: drop, keep, drop, keep, …
	if !event.SeqNos(got, "x").Equal(seq.Seq{2, 4, 6}) {
		t.Errorf("deterministic burst pattern = %v, want ⟨2,4,6⟩", event.SeqNos(got, "x"))
	}
}

func TestBurstLongRunLossy(t *testing.T) {
	m, err := NewBurst(0.05, 0.2, 1.0)
	if err != nil {
		t.Fatalf("NewBurst: %v", err)
	}
	r := rand.New(rand.NewSource(5))
	got := Apply(stream(10000), m, r)
	if len(got) == 10000 || len(got) == 0 {
		t.Errorf("burst model delivered %d of 10000, want partial loss", len(got))
	}
}

func TestDropSeqNosScripted(t *testing.T) {
	// The Example 1 loss pattern: 2x lost.
	m := NewDropSeqNos("x", 2)
	got := Apply(stream(3), m, nil)
	if !event.SeqNos(got, "x").Equal(seq.Seq{1, 3}) {
		t.Errorf("delivered %v, want ⟨1,3⟩", event.SeqNos(got, "x"))
	}
}

func TestDropSeqNosOtherVariableUnaffected(t *testing.T) {
	m := NewDropSeqNos("x", 1)
	in := []event.Update{event.U("y", 1, 0), event.U("x", 1, 0)}
	got := Apply(in, m, nil)
	if len(got) != 1 || got[0].Var != "y" {
		t.Errorf("delivered %v, want only 1y", got)
	}
}
