// Package link models the communication links of Section 2.1: front links
// (DM → CE) deliver updates in order but may lose them; back links
// (CE → AD) are lossless and ordered. Loss is expressed as a Model that
// decides, per update, whether the link delivers it. Because delivery
// preserves order, a lossy front link maps an update stream U to a
// subsequence of U — exactly the U1, U2 ⊑ U of Figure 2(a).
//
// All randomness is injected through *rand.Rand so every run is
// reproducible from a seed. The channel-level plumbing for live systems
// lives in the runtime package; this package is pure.
package link

import (
	"fmt"

	"condmon/internal/event"
	"condmon/internal/obs"
	"condmon/internal/seq"

	"math/rand"
)

// Model decides the fate of each update carried by a front link.
// Implementations may be stateful (e.g. bursty loss); use a fresh Model per
// link.
type Model interface {
	// Deliver reports whether the link delivers u. It may consume
	// randomness from r and update internal state.
	Deliver(u event.Update, r *rand.Rand) bool
}

// None is a lossless link: the Table 1 "Lossless" scenario and every back
// link.
type None struct{}

var _ Model = None{}

// Deliver implements Model.
func (None) Deliver(event.Update, *rand.Rand) bool { return true }

// Bernoulli drops each update independently with probability P.
type Bernoulli struct {
	// P is the per-update drop probability in [0, 1].
	P float64
}

var _ Model = Bernoulli{}

// NewBernoulli validates p and returns the model.
func NewBernoulli(p float64) (Bernoulli, error) {
	if p < 0 || p > 1 {
		return Bernoulli{}, fmt.Errorf("link: drop probability %g outside [0,1]", p)
	}
	return Bernoulli{P: p}, nil
}

// Deliver implements Model.
func (m Bernoulli) Deliver(_ event.Update, r *rand.Rand) bool {
	return r.Float64() >= m.P
}

// Burst is a two-state Gilbert–Elliott loss model: the link alternates
// between a good state (lossless) and a bad state (drops with probability
// PDropBad), capturing correlated loss such as a router outage or a fading
// radio channel.
type Burst struct {
	// PGoodToBad is the per-update probability of entering the bad state.
	PGoodToBad float64
	// PBadToGood is the per-update probability of recovering.
	PBadToGood float64
	// PDropBad is the drop probability while in the bad state.
	PDropBad float64

	bad bool
}

var _ Model = (*Burst)(nil)

// NewBurst validates the parameters and returns a fresh model starting in
// the good state.
func NewBurst(pGoodToBad, pBadToGood, pDropBad float64) (*Burst, error) {
	for _, p := range []float64{pGoodToBad, pBadToGood, pDropBad} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("link: burst probability %g outside [0,1]", p)
		}
	}
	return &Burst{PGoodToBad: pGoodToBad, PBadToGood: pBadToGood, PDropBad: pDropBad}, nil
}

// Deliver implements Model.
func (m *Burst) Deliver(_ event.Update, r *rand.Rand) bool {
	if m.bad {
		if r.Float64() < m.PBadToGood {
			m.bad = false
		}
	} else if r.Float64() < m.PGoodToBad {
		m.bad = true
	}
	if !m.bad {
		return true
	}
	return r.Float64() >= m.PDropBad
}

// DropSeqNos drops an explicit per-variable set of sequence numbers and
// delivers everything else. It is how tests and the experiment harness
// script the exact loss patterns of the paper's examples (e.g. "2x is lost
// at CE2").
type DropSeqNos struct {
	// Drops maps each variable to the sequence numbers the link loses.
	Drops map[event.VarName]seq.Set
}

var _ Model = DropSeqNos{}

// NewDropSeqNos builds a scripted model dropping the given seqnos of one
// variable.
func NewDropSeqNos(v event.VarName, seqNos ...int64) DropSeqNos {
	return DropSeqNos{Drops: map[event.VarName]seq.Set{v: seq.NewSet(seqNos...)}}
}

// Deliver implements Model.
func (m DropSeqNos) Deliver(u event.Update, _ *rand.Rand) bool {
	drops, ok := m.Drops[u.Var]
	return !ok || !drops.Contains(u.SeqNo)
}

// Counted wraps a Model with per-link delivered/lost counters, making a
// front link's loss observable without changing its schedule: the inner
// model consumes exactly the randomness it would unwrapped. Either counter
// may be nil (obs counters no-op on nil receivers), and Counted is the
// package's unit of observability — the runtime and the CLI tools wrap
// whichever links an operator asked to meter.
type Counted struct {
	// Model is the wrapped loss model deciding each update's fate.
	Model Model
	// Delivered and Lost count the updates the link delivered and dropped.
	Delivered, Lost *obs.Counter
}

var _ Model = Counted{}

// NewCounted wraps m with counters named <prefix>.delivered and
// <prefix>.lost in reg. With a nil registry the counters are nil and the
// wrapper only forwards.
func NewCounted(reg *obs.Registry, prefix string, m Model) Counted {
	return Counted{
		Model:     m,
		Delivered: reg.Counter(prefix + ".delivered"),
		Lost:      reg.Counter(prefix + ".lost"),
	}
}

// Deliver implements Model.
func (m Counted) Deliver(u event.Update, r *rand.Rand) bool {
	if m.Model.Deliver(u, r) {
		m.Delivered.Inc()
		return true
	}
	m.Lost.Inc()
	return false
}

// Apply runs a stream through a front link, returning the delivered
// subsequence. The result preserves order: U' ⊑ U.
func Apply(updates []event.Update, m Model, r *rand.Rand) []event.Update {
	var out []event.Update
	for _, u := range updates {
		if m.Deliver(u, r) {
			out = append(out, u)
		}
	}
	return out
}
