package workload

import (
	"bytes"
	"strings"
	"testing"

	"condmon/internal/event"
)

func TestReactorTempShape(t *testing.T) {
	src := NewReactorTemp(1)
	var crossed bool
	prev := 0.0
	for i := 0; i < 500; i++ {
		v, ok := src.Next()
		if !ok {
			t.Fatal("reactor source exhausted")
		}
		if v > 3000 {
			crossed = true
		}
		if i > 0 && v == prev {
			// extremely unlikely with continuous noise
			t.Logf("flat step at %d", i)
		}
		prev = v
	}
	if !crossed {
		t.Error("reactor temperature never exceeded 3000 in 500 steps; excursions broken")
	}
}

func TestReactorTempDeterministicBySeed(t *testing.T) {
	a, b := NewReactorTemp(7), NewReactorTemp(7)
	for i := 0; i < 50; i++ {
		va, _ := a.Next()
		vb, _ := b.Next()
		if va != vb {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestStockQuotesShape(t *testing.T) {
	src := NewStockQuotes(2)
	var sharpDrop bool
	prev := 100.0
	for i := 0; i < 500; i++ {
		v, ok := src.Next()
		if !ok {
			t.Fatal("stock source exhausted")
		}
		if v <= 0 {
			t.Fatalf("price went non-positive: %g", v)
		}
		if (prev-v)/prev > 0.2 {
			sharpDrop = true
		}
		prev = v
	}
	if !sharpDrop {
		t.Error("no sharp (>20%) drop in 500 steps; crash model broken")
	}
}

func TestSineCrossesThreshold(t *testing.T) {
	src := &Sine{Base: 3000, Amplitude: 200, Period: 10}
	above, below := false, false
	for i := 0; i < 20; i++ {
		v, _ := src.Next()
		if v > 3000 {
			above = true
		}
		if v < 3000 {
			below = true
		}
	}
	if !above || !below {
		t.Error("sine should cross its base both ways within two periods")
	}
}

func TestScriptExhausts(t *testing.T) {
	src := &Script{Values: []float64{1, 2}}
	if v, ok := src.Next(); !ok || v != 1 {
		t.Errorf("first = %g/%v", v, ok)
	}
	if v, ok := src.Next(); !ok || v != 2 {
		t.Errorf("second = %g/%v", v, ok)
	}
	if _, ok := src.Next(); ok {
		t.Error("script should exhaust after its values")
	}
}

func TestGenerateNumbering(t *testing.T) {
	got := Generate("x", &Script{Values: []float64{10, 20, 30}}, 5)
	if len(got) != 3 {
		t.Fatalf("generated %d updates, want 3", len(got))
	}
	for i, u := range got {
		if u.Var != "x" || u.SeqNo != int64(i+1) {
			t.Errorf("update %d = %v", i, u)
		}
	}
	if got := Generate("x", NewReactorTemp(1), 4); len(got) != 4 {
		t.Errorf("max should cap an unlimited source, got %d", len(got))
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := []event.Update{
		event.U("x", 1, 2900.5),
		event.U("x", 2, 3100),
		event.U("y", 1, -0.125),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("read %d updates, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("update %d = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nx,1,100\n# mid comment\nx,2,200\n"
	got, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("read %d updates, want 2", len(got))
	}
}

func TestTraceErrors(t *testing.T) {
	bad := []string{
		"x,1",            // missing field
		"x,one,100",      // bad seqno
		"x,-1,100",       // negative seqno
		"x,1,not-number", // bad value
	}
	for _, line := range bad {
		if _, err := ReadTrace(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ReadTrace(%q) should fail", line)
		}
	}
	if err := WriteTrace(&bytes.Buffer{}, []event.Update{event.U("a,b", 1, 0)}); err == nil {
		t.Error("variable name with delimiter should be rejected")
	}
}
