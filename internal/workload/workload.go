// Package workload generates the synthetic sensor streams the experiments
// and examples run on — reactor temperatures, stock quotes, battlefield
// telemetry — and records/replays them as trace files. The paper's analysis
// depends only on sequence numbers and loss patterns, never on where the
// values come from, so seeded synthetic sources preserve every behaviour
// of interest while keeping runs reproducible.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"condmon/internal/event"

	"math/rand"
)

// Source produces a stream of readings for one real-world variable.
type Source interface {
	// Next returns the next reading; ok is false when the source is
	// exhausted.
	Next() (value float64, ok bool)
}

// ReactorTemp models a reactor core temperature: a mean-reverting random
// walk around Base with occasional excursion events that push readings
// past typical alarm thresholds (the paper's 3000-degree c1 limit).
type ReactorTemp struct {
	rng *rand.Rand
	// Base is the nominal operating temperature.
	Base float64
	// Noise is the per-step random perturbation amplitude.
	Noise float64
	// ExcursionP is the per-step probability of an excursion starting.
	ExcursionP float64
	// ExcursionMag is how far an excursion overshoots Base.
	ExcursionMag float64

	cur       float64
	excursion int
}

// NewReactorTemp returns a reactor source with the defaults used by the
// examples (base 2800, noise 60, 8% excursions of +400).
func NewReactorTemp(seed int64) *ReactorTemp {
	return &ReactorTemp{
		rng:          rand.New(rand.NewSource(seed)),
		Base:         2800,
		Noise:        60,
		ExcursionP:   0.08,
		ExcursionMag: 400,
		cur:          2800,
	}
}

// Next implements Source; reactor sources never exhaust.
func (s *ReactorTemp) Next() (float64, bool) {
	if s.excursion > 0 {
		s.excursion--
	} else if s.rng.Float64() < s.ExcursionP {
		s.excursion = 2 + s.rng.Intn(3)
	}
	target := s.Base
	if s.excursion > 0 {
		target = s.Base + s.ExcursionMag
	}
	// Mean-revert toward the target with noise.
	s.cur += 0.5*(target-s.cur) + (s.rng.Float64()*2-1)*s.Noise
	return s.cur, true
}

// StockQuotes models a stock price: a geometric random walk with occasional
// sharp crashes — the Section 1 "sharp price drop" scenario generator.
type StockQuotes struct {
	rng *rand.Rand
	// Drift is the per-step multiplicative drift (e.g. 0.001).
	Drift float64
	// Vol is the per-step volatility (e.g. 0.02).
	Vol float64
	// CrashP is the per-step probability of a crash.
	CrashP float64
	// CrashFrac is the fraction of value lost in a crash (e.g. 0.3).
	CrashFrac float64

	cur float64
}

// NewStockQuotes returns a stock source starting at price 100.
func NewStockQuotes(seed int64) *StockQuotes {
	return &StockQuotes{
		rng:       rand.New(rand.NewSource(seed)),
		Drift:     0.001,
		Vol:       0.02,
		CrashP:    0.05,
		CrashFrac: 0.3,
		cur:       100,
	}
}

// Next implements Source; stock sources never exhaust.
func (s *StockQuotes) Next() (float64, bool) {
	if s.rng.Float64() < s.CrashP {
		s.cur *= 1 - s.CrashFrac
	} else {
		s.cur *= 1 + s.Drift + (s.rng.Float64()*2-1)*s.Vol
	}
	// Quotes are rounded to cents.
	s.cur = math.Round(s.cur*100) / 100
	if s.cur < 0.01 {
		s.cur = 0.01
	}
	return s.cur, true
}

// Sine is a deterministic sinusoidal source: useful for examples that need
// predictable threshold crossings.
type Sine struct {
	// Base, Amplitude and Period define the waveform.
	Base, Amplitude float64
	Period          int

	step int
}

// Next implements Source; sine sources never exhaust.
func (s *Sine) Next() (float64, bool) {
	if s.Period <= 0 {
		s.Period = 20
	}
	v := s.Base + s.Amplitude*math.Sin(2*math.Pi*float64(s.step)/float64(s.Period))
	s.step++
	return v, true
}

// Script replays a fixed list of values, then exhausts.
type Script struct {
	Values []float64
	next   int
}

// Next implements Source.
func (s *Script) Next() (float64, bool) {
	if s.next >= len(s.Values) {
		return 0, false
	}
	v := s.Values[s.next]
	s.next++
	return v, true
}

// Generate draws up to max readings from the source and numbers them as
// updates 1..n of variable v — the DM's output stream U.
func Generate(v event.VarName, src Source, max int) []event.Update {
	var out []event.Update
	for i := 0; i < max; i++ {
		val, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, event.U(v, int64(i+1), val))
	}
	return out
}

// WriteTrace writes updates as a line-oriented text trace:
// "var,seqno,value" per line with a header. Text keeps traces diffable and
// hand-editable; the wire package handles binary transport.
func WriteTrace(w io.Writer, updates []event.Update) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# condmon trace v1: var,seqno,value"); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	for _, u := range updates {
		if strings.ContainsAny(string(u.Var), ",\n") {
			return fmt.Errorf("workload: variable name %q contains a delimiter", u.Var)
		}
		if _, err := fmt.Fprintf(bw, "%s,%d,%s\n", u.Var, u.SeqNo,
			strconv.FormatFloat(u.Value, 'g', -1, 64)); err != nil {
			return fmt.Errorf("workload: write update: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("workload: flush trace: %w", err)
	}
	return nil
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]event.Update, error) {
	var out []event.Update
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: trace line %d: want var,seqno,value", lineNo)
		}
		seqNo, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad seqno: %w", lineNo, err)
		}
		if seqNo < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative seqno %d", lineNo, seqNo)
		}
		val, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad value: %w", lineNo, err)
		}
		out = append(out, event.U(event.VarName(parts[0]), seqNo, val))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	return out, nil
}
