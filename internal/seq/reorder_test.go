package seq

import (
	"math/rand"
	"testing"
)

// offerAll feeds seqnos (value = seqno) and returns everything released.
func offerAll(t *testing.T, r *Reorder[int64], now int64, seqs ...int64) []int64 {
	t.Helper()
	var out []int64
	for _, s := range seqs {
		out, _ = r.Offer(s, s, now, out)
	}
	return out
}

func TestReorderInOrderPassthrough(t *testing.T) {
	r := NewReorder[int64](-1, 8, 1000)
	out := offerAll(t, r, 0, 0, 1, 2, 3, 4)
	if len(out) != 5 {
		t.Fatalf("released %d, want 5 (in-order input releases immediately)", len(out))
	}
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
	if r.Pending() != 0 || r.Base() != 4 {
		t.Fatalf("pending=%d base=%d, want 0/4", r.Pending(), r.Base())
	}
}

func TestReorderRestoresOrder(t *testing.T) {
	r := NewReorder[int64](0, 8, 1000)
	out := offerAll(t, r, 0, 3, 1, 4, 2, 5)
	want := []int64{1, 2, 3, 4, 5}
	if len(out) != len(want) {
		t.Fatalf("released %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("released %v, want %v", out, want)
		}
	}
	if st := r.Stats(); st.Reordered != 2 { // 1 after 3, 2 after 4
		t.Fatalf("Reordered = %d, want 2", st.Reordered)
	}
}

func TestReorderDuplicates(t *testing.T) {
	r := NewReorder[int64](0, 8, 1000)
	var out []int64
	out, v := r.Offer(1, 1, 0, out)
	if v != 0 || len(out) != 1 {
		t.Fatalf("first offer: verdict %v released %v", v, out)
	}
	// Behind the horizon.
	if _, v = r.Offer(1, 1, 0, nil); v&OfferDup == 0 {
		t.Fatalf("replayed released seqno: verdict %v, want dup", v)
	}
	// Already buffered (3 waits on 2).
	if _, v = r.Offer(3, 3, 0, nil); v != 0 {
		t.Fatalf("buffering 3: verdict %v, want 0", v)
	}
	if _, v = r.Offer(3, 3, 0, nil); v&OfferDup == 0 {
		t.Fatalf("re-offered buffered seqno: verdict %v, want dup", v)
	}
	if st := r.Stats(); st.Dups != 2 {
		t.Fatalf("Dups = %d, want 2", st.Dups)
	}
}

func TestReorderSkewTimeout(t *testing.T) {
	r := NewReorder[int64](0, 8, 100)
	out := offerAll(t, r, 50, 2, 3) // 1 missing: nothing releases
	if len(out) != 0 {
		t.Fatalf("released %v before the gap resolved", out)
	}
	if got := r.FlushExpired(149, nil); len(got) != 0 {
		t.Fatalf("gap released at 99 elapsed, inside the 100 bound: %v", got)
	}
	got := r.FlushExpired(150, nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("expired flush released %v, want [2 3]", got)
	}
	if st := r.Stats(); st.GapLost != 1 {
		t.Fatalf("GapLost = %d, want 1 (seqno 1)", st.GapLost)
	}
	// A late arrival of the lost seqno is now a duplicate — the paper's
	// loss semantics: lost means never delivered, forever.
	if _, v := r.Offer(1, 1, 200, nil); v&OfferDup == 0 {
		t.Fatalf("arrival of a declared-lost seqno must be a dup, got %v", v)
	}
}

func TestReorderGapClockRestartsOnProgress(t *testing.T) {
	r := NewReorder[int64](0, 16, 100)
	offerAll(t, r, 0, 2)     // gap at 1, clock starts at 0
	offerAll(t, r, 90, 1, 4) // 1,2 release; new gap at 3 starts at 90
	if got := r.FlushExpired(120, nil); len(got) != 0 {
		t.Fatalf("fresh gap (30 elapsed) must not release, got %v", got)
	}
	if got := r.FlushExpired(191, nil); len(got) != 1 || got[0] != 4 {
		t.Fatalf("expired second gap released %v, want [4]", got)
	}
}

func TestReorderExpirySweepsLossBurst(t *testing.T) {
	// A loss burst leaves many interleaved gaps that share one arrival
	// window; one expired flush must sweep them all, not one per skew.
	r := NewReorder[int64](0, 64, 100)
	out := offerAll(t, r, 10, 2, 4, 6, 8) // gaps at 1, 3, 5, 7
	if len(out) != 0 {
		t.Fatalf("released %v with the head gap open", out)
	}
	got := r.FlushExpired(110, nil)
	want := []int64{2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("one expired flush released %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("one expired flush released %v, want %v", got, want)
		}
	}
	if st := r.Stats(); st.GapLost != 4 {
		t.Fatalf("GapLost = %d, want 4", st.GapLost)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after full sweep, want 0", r.Pending())
	}
}

func TestReorderExpirySweepStopsAtFreshArrival(t *testing.T) {
	// The sweep releases only gaps whose successors out-waited the skew:
	// an element that arrived recently keeps its gap open until its own
	// deadline (arrival + skew), not a full skew from the sweep.
	r := NewReorder[int64](0, 64, 100)
	offerAll(t, r, 10, 2) // gap at 1, old
	offerAll(t, r, 95, 4) // gap at 3, fresh
	got := r.FlushExpired(110, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("sweep released %v, want [2] (4 arrived 15 ago)", got)
	}
	if got := r.FlushExpired(194, nil); len(got) != 0 {
		t.Fatalf("gap at 3 released at 99 elapsed since 4 arrived: %v", got)
	}
	if got := r.FlushExpired(195, nil); len(got) != 1 || got[0] != 4 {
		t.Fatalf("gap at 3 expired flush released %v, want [4]", got)
	}
}

func TestReorderDepthEviction(t *testing.T) {
	r := NewReorder[int64](0, 4, 1000)
	offerAll(t, r, 0, 2, 3) // 1 missing
	// 8 is 8 ahead of base 0 with depth 4: window slides to (4, 8],
	// releasing 2 and 3, declaring 1 and 4 lost.
	out, _ := r.Offer(8, 8, 0, nil)
	if len(out) != 2 || out[0] != 2 || out[1] != 3 {
		t.Fatalf("eviction released %v, want [2 3]", out)
	}
	if st := r.Stats(); st.GapLost != 2 {
		t.Fatalf("GapLost = %d, want 2 (seqnos 1 and 4)", st.GapLost)
	}
	if r.Base() != 4 || r.Pending() != 1 {
		t.Fatalf("base=%d pending=%d, want 4/1", r.Base(), r.Pending())
	}
}

func TestReorderHugeJumpBounded(t *testing.T) {
	// A forged or wildly corrupt seqno must not make the ring scan its
	// whole numeric span; it releases the window and moves on.
	r := NewReorder[int64](0, 8, 1000)
	offerAll(t, r, 0, 1, 3)
	out, _ := r.Offer(1<<60, 0, 0, nil)
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("jump released %v, want [3]", out)
	}
	if r.Base() != 1<<60-8 {
		t.Fatalf("base = %d, want %d", r.Base(), int64(1<<60-8))
	}
	// Everything sane is now behind the horizon.
	if _, v := r.Offer(4, 4, 0, nil); v&OfferDup == 0 {
		t.Fatalf("post-jump sane seqno: verdict %v, want dup", v)
	}
}

func TestReorderFlushAll(t *testing.T) {
	r := NewReorder[int64](0, 16, 1000)
	offerAll(t, r, 0, 2, 5, 9)
	out := r.FlushAll(nil)
	want := []int64{2, 5, 9}
	if len(out) != len(want) {
		t.Fatalf("FlushAll released %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("FlushAll released %v, want %v", out, want)
		}
	}
	if st := r.Stats(); st.GapLost != 6 { // 1,3,4,6,7,8
		t.Fatalf("GapLost = %d, want 6", st.GapLost)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after FlushAll", r.Pending())
	}
}

// TestReorderPermutationsExhaustive releases every bounded permutation of
// a short stream in exact seqno order with nothing lost — the property
// the ingest-equivalence suite relies on, checked exhaustively here.
func TestReorderPermutationsExhaustive(t *testing.T) {
	seqs := []int64{1, 2, 3, 4, 5, 6}
	var permute func([]int64, int)
	check := func(p []int64) {
		r := NewReorder[int64](0, len(p), 1000)
		var out []int64
		for _, s := range p {
			out, _ = r.Offer(s, s, 0, out)
		}
		if len(out) != len(p) {
			t.Fatalf("perm %v released %d of %d", p, len(out), len(p))
		}
		for i, v := range out {
			if v != int64(i+1) {
				t.Fatalf("perm %v released %v out of order", p, out)
			}
		}
		if st := r.Stats(); st.GapLost != 0 || st.Dups != 0 {
			t.Fatalf("perm %v: lost=%d dups=%d", p, st.GapLost, st.Dups)
		}
	}
	permute = func(p []int64, i int) {
		if i == len(p) {
			check(p)
			return
		}
		for j := i; j < len(p); j++ {
			p[i], p[j] = p[j], p[i]
			permute(p, i+1)
			p[i], p[j] = p[j], p[i]
		}
	}
	permute(seqs, 0)
}

// FuzzReorderRelease drives the ring with arbitrary arrival schedules —
// permuted, duplicated, gapped, with interleaved expiry flushes — and
// checks the two invariants everything downstream depends on: releases
// come out in strictly increasing seqno order (never twice), and after a
// final flush every offered seqno was either released exactly once or
// accounted as a duplicate, with lost gaps only where the schedule
// actually left gaps.
func FuzzReorderRelease(f *testing.F) {
	f.Add(int64(1), uint8(8), []byte{3, 1, 0, 2, 5, 4})
	f.Add(int64(7), uint8(3), []byte{0, 0, 255, 1, 9, 9, 2})
	f.Add(int64(42), uint8(1), []byte{250, 251, 252, 1, 2, 3})
	f.Fuzz(func(t *testing.T, seed int64, depth uint8, schedule []byte) {
		d := int(depth%64) + 1
		rng := rand.New(rand.NewSource(seed))
		r := NewReorder[int64](0, d, 50)
		released := make(map[int64]bool)
		lastReleased := int64(0)
		now := int64(0)
		var out []int64
		account := func(vs []int64) {
			for _, v := range vs {
				if v <= lastReleased {
					t.Fatalf("released %d after %d: order violated", v, lastReleased)
				}
				if released[v] {
					t.Fatalf("seqno %d released twice", v)
				}
				released[v] = true
				lastReleased = v
			}
		}
		offered := make(map[int64]int)
		for _, b := range schedule {
			now += int64(b % 16)
			switch {
			case b%16 == 15:
				out = r.FlushExpired(now, out[:0])
				account(out)
			default:
				// Arrivals near the current horizon, spread ±2·depth so the
				// schedule exercises buffering, dups, and evictions alike.
				s := r.Base() + 1 + rng.Int63n(int64(2*d)) - int64(d)/2
				if s < 1 {
					s = 1
				}
				offered[s]++
				out, _ = r.Offer(s, s, now, out[:0])
				account(out)
			}
		}
		out = r.FlushAll(out[:0])
		account(out)
		if r.Pending() != 0 {
			t.Fatalf("pending %d after FlushAll", r.Pending())
		}
		// Conservation: every offered seqno is released at most once, and
		// offered copies beyond the released one are dups or losses.
		st := r.Stats()
		var totalOffered, uniqueReleased int64
		for s, n := range offered {
			totalOffered += int64(n)
			if released[s] {
				uniqueReleased++
			}
		}
		if st.Released != int64(len(released)) || uniqueReleased != int64(len(released)) {
			t.Fatalf("released count %d, map %d, offered-and-released %d",
				st.Released, len(released), uniqueReleased)
		}
		if st.Released+st.Dups != totalOffered {
			// Anything offered is either released once or dropped as a dup:
			// lost seqnos are ones that were never offered before the
			// horizon passed them — if offered later they count as dups.
			t.Fatalf("released %d + dups %d != offered %d", st.Released, st.Dups, totalOffered)
		}
	})
}
