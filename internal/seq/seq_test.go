package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsOrdered(t *testing.T) {
	tests := []struct {
		name string
		give Seq
		want bool
	}{
		{name: "empty", give: nil, want: true},
		{name: "single", give: Seq{7}, want: true},
		{name: "paper ordered", give: Seq{3, 8, 100}, want: true},
		{name: "paper duplicate", give: Seq{2, 2}, want: true},
		{name: "paper unordered", give: Seq{2, 1, 6}, want: false},
		{name: "descending", give: Seq{9, 3}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.IsOrdered(); got != tt.want {
				t.Errorf("IsOrdered(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestIsStrictlyOrdered(t *testing.T) {
	tests := []struct {
		give Seq
		want bool
	}{
		{nil, true},
		{Seq{1}, true},
		{Seq{1, 2, 9}, true},
		{Seq{1, 1}, false},
		{Seq{2, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.give.IsStrictlyOrdered(); got != tt.want {
			t.Errorf("IsStrictlyOrdered(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestIsConsecutive(t *testing.T) {
	tests := []struct {
		give Seq
		want bool
	}{
		{nil, true},
		{Seq{4}, true},
		{Seq{4, 5, 6}, true},
		{Seq{4, 6}, false},
		{Seq{4, 4}, false},
		{Seq{5, 4}, false},
	}
	for _, tt := range tests {
		if got := tt.give.IsConsecutive(); got != tt.want {
			t.Errorf("IsConsecutive(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestSetFromSeq(t *testing.T) {
	// Φ(⟨2,1,2,6⟩) = {1,2,6} from Section 2.2.
	got := Seq{2, 1, 2, 6}.Set()
	want := NewSet(1, 2, 6)
	if !got.Equal(want) {
		t.Errorf("Φ⟨2,1,2,6⟩ = %v, want %v", got, want)
	}
}

func TestSubsequenceOf(t *testing.T) {
	tests := []struct {
		name string
		s, t Seq
		want bool
	}{
		{name: "empty in empty", s: nil, t: nil, want: true},
		{name: "empty in any", s: nil, t: Seq{1, 2}, want: true},
		{name: "identity", s: Seq{1, 2, 3}, t: Seq{1, 2, 3}, want: true},
		{name: "gaps allowed", s: Seq{1, 3}, t: Seq{1, 2, 3}, want: true},
		{name: "order matters", s: Seq{3, 1}, t: Seq{1, 2, 3}, want: false},
		{name: "multiplicity", s: Seq{2, 2}, t: Seq{2}, want: false},
		{name: "longer not sub", s: Seq{1, 2}, t: Seq{1}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.SubsequenceOf(tt.t); got != tt.want {
				t.Errorf("%v ⊑ %v = %v, want %v", tt.s, tt.t, got, tt.want)
			}
		})
	}
}

func TestOrderedUnion(t *testing.T) {
	// S1 = ⟨1,4,8⟩, S2 = ⟨2,4,5⟩ → ⟨1,2,4,5,8⟩ from Section 2.2.
	got, err := OrderedUnion(Seq{1, 4, 8}, Seq{2, 4, 5})
	if err != nil {
		t.Fatalf("OrderedUnion returned error: %v", err)
	}
	if want := (Seq{1, 2, 4, 5, 8}); !got.Equal(want) {
		t.Errorf("⟨1,4,8⟩ ⊔ ⟨2,4,5⟩ = %v, want %v", got, want)
	}
}

func TestOrderedUnionRemovesDuplicates(t *testing.T) {
	got := MustOrderedUnion(Seq{1, 1, 2}, Seq{2, 2, 3})
	if want := (Seq{1, 2, 3}); !got.Equal(want) {
		t.Errorf("⊔ with duplicates = %v, want %v", got, want)
	}
}

func TestOrderedUnionRejectsUnordered(t *testing.T) {
	if _, err := OrderedUnion(Seq{2, 1}, nil); err == nil {
		t.Error("OrderedUnion(⟨2,1⟩, ∅) should fail on unordered left operand")
	}
	if _, err := OrderedUnion(nil, Seq{2, 1}); err == nil {
		t.Error("OrderedUnion(∅, ⟨2,1⟩) should fail on unordered right operand")
	}
}

func TestOrderedUnionEmpty(t *testing.T) {
	if got := MustOrderedUnion(nil, nil); got != nil {
		t.Errorf("∅ ⊔ ∅ = %v, want nil", got)
	}
	if got := MustOrderedUnion(Seq{3}, nil); !got.Equal(Seq{3}) {
		t.Errorf("⟨3⟩ ⊔ ∅ = %v, want ⟨3⟩", got)
	}
}

func TestMergeCountsAndValidity(t *testing.T) {
	s, u := Seq{1, 3}, Seq{2, 4, 6}
	merges := Merge(s, u)
	// C(5,2) = 10 interleavings.
	if len(merges) != 10 {
		t.Fatalf("Merge produced %d interleavings, want 10", len(merges))
	}
	seen := make(map[string]bool)
	for _, m := range merges {
		if len(m) != len(s)+len(u) {
			t.Errorf("interleaving %v has wrong length", m)
		}
		if !s.SubsequenceOf(m) || !u.SubsequenceOf(m) {
			t.Errorf("interleaving %v does not preserve input order", m)
		}
		if seen[m.String()] {
			t.Errorf("duplicate interleaving %v", m)
		}
		seen[m.String()] = true
	}
}

func TestMergeEmpty(t *testing.T) {
	merges := Merge(nil, Seq{1})
	if len(merges) != 1 || !merges[0].Equal(Seq{1}) {
		t.Errorf("Merge(∅,⟨1⟩) = %v, want [⟨1⟩]", merges)
	}
	merges = Merge(nil, nil)
	if len(merges) != 1 || merges[0] != nil {
		t.Errorf("Merge(∅,∅) = %v, want [∅]", merges)
	}
}

func TestSubsequencesEnumeration(t *testing.T) {
	subs := Subsequences(Seq{1, 2, 3})
	if len(subs) != 8 {
		t.Fatalf("Subsequences(⟨1,2,3⟩) returned %d results, want 8", len(subs))
	}
	for _, sub := range subs {
		if !sub.SubsequenceOf(Seq{1, 2, 3}) {
			t.Errorf("%v is not a subsequence of ⟨1,2,3⟩", sub)
		}
	}
}

func TestSpanningSet(t *testing.T) {
	// SpanningSet({1,2,5}) = {1,2,3,4,5} from Appendix A.
	got := SpanningSet(NewSet(1, 2, 5))
	want := NewSet(1, 2, 3, 4, 5)
	if !got.Equal(want) {
		t.Errorf("SpanningSet({1,2,5}) = %v, want %v", got, want)
	}
	if got := SpanningSet(make(Set)); len(got) != 0 {
		t.Errorf("SpanningSet(∅) = %v, want ∅", got)
	}
	if got := SpanningSet(NewSet(7)); !got.Equal(NewSet(7)) {
		t.Errorf("SpanningSet({7}) = %v, want {7}", got)
	}
}

func TestGaps(t *testing.T) {
	got := Gaps(Seq{1, 3, 6})
	want := NewSet(2, 4, 5)
	if !got.Equal(want) {
		t.Errorf("Gaps(⟨1,3,6⟩) = %v, want %v", got, want)
	}
	if got := Gaps(Seq{4, 5}); len(got) != 0 {
		t.Errorf("Gaps(⟨4,5⟩) = %v, want ∅", got)
	}
}

func TestSetOperations(t *testing.T) {
	a, b := NewSet(1, 2, 3), NewSet(3, 4)
	if got := a.Union(b); !got.Equal(NewSet(1, 2, 3, 4)) {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet(3)) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewSet(1, 2)) {
		t.Errorf("diff = %v", got)
	}
	if !NewSet(1, 2).SubsetOf(a) {
		t.Error("{1,2} should be a subset of {1,2,3}")
	}
	if NewSet(1, 9).SubsetOf(a) {
		t.Error("{1,9} should not be a subset of {1,2,3}")
	}
}

func TestSortedRoundTrip(t *testing.T) {
	s := NewSet(5, 1, 3)
	if got := s.Sorted(); !got.Equal(Seq{1, 3, 5}) {
		t.Errorf("Sorted() = %v, want ⟨1,3,5⟩", got)
	}
	if got := (Set{}).Sorted(); got != nil {
		t.Errorf("Sorted(∅) = %v, want nil", got)
	}
}

// randomOrdered draws a short ordered duplicate-free sequence, the shape of
// every real update stream in the system.
func randomOrdered(r *rand.Rand, maxLen int) Seq {
	n := r.Intn(maxLen + 1)
	var (
		out Seq
		v   int64
	)
	for i := 0; i < n; i++ {
		v += int64(1 + r.Intn(3))
		out = append(out, v)
	}
	return out
}

func TestQuickOrderedUnionLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 500, Rand: r}

	commutative := func(aSeed, bSeed int64) bool {
		ra := rand.New(rand.NewSource(aSeed))
		rb := rand.New(rand.NewSource(bSeed))
		a, b := randomOrdered(ra, 8), randomOrdered(rb, 8)
		return MustOrderedUnion(a, b).Equal(MustOrderedUnion(b, a))
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("⊔ not commutative: %v", err)
	}

	idempotent := func(seed int64) bool {
		a := randomOrdered(rand.New(rand.NewSource(seed)), 8)
		// Lemma 2: U ⊔ U = U for ordered duplicate-free U.
		u := MustOrderedUnion(a, a)
		if a == nil {
			return u == nil
		}
		return u.Equal(a)
	}
	if err := quick.Check(idempotent, cfg); err != nil {
		t.Errorf("Lemma 2 (U ⊔ U = U) violated: %v", err)
	}

	associative := func(sa, sb, sc int64) bool {
		a := randomOrdered(rand.New(rand.NewSource(sa)), 6)
		b := randomOrdered(rand.New(rand.NewSource(sb)), 6)
		c := randomOrdered(rand.New(rand.NewSource(sc)), 6)
		l := MustOrderedUnion(MustOrderedUnion(a, b), c)
		r := MustOrderedUnion(a, MustOrderedUnion(b, c))
		return l.Equal(r)
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Errorf("⊔ not associative: %v", err)
	}

	containsBoth := func(sa, sb int64) bool {
		a := randomOrdered(rand.New(rand.NewSource(sa)), 8)
		b := randomOrdered(rand.New(rand.NewSource(sb)), 8)
		u := MustOrderedUnion(a, b)
		return u.IsOrdered() &&
			u.Set().Equal(a.Set().Union(b.Set())) &&
			a.SubsequenceOf(u) == a.IsStrictlyOrdered()
	}
	if err := quick.Check(containsBoth, cfg); err != nil {
		t.Errorf("⊔ element/order law violated: %v", err)
	}
}

func TestQuickSubsequencePartialOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}

	reflexive := func(seed int64) bool {
		a := randomOrdered(rand.New(rand.NewSource(seed)), 10)
		return a.SubsequenceOf(a)
	}
	if err := quick.Check(reflexive, cfg); err != nil {
		t.Errorf("⊑ not reflexive: %v", err)
	}

	transitiveViaMerge := func(sa, sb int64) bool {
		a := randomOrdered(rand.New(rand.NewSource(sa)), 4)
		b := randomOrdered(rand.New(rand.NewSource(sb)), 4)
		// Every interleaving m of a and b satisfies a ⊑ m and b ⊑ m.
		for _, m := range Merge(a, b) {
			if !a.SubsequenceOf(m) || !b.SubsequenceOf(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(transitiveViaMerge, cfg); err != nil {
		t.Errorf("Merge/⊑ law violated: %v", err)
	}
}

func TestQuickGapsDisjointFromElements(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64) bool {
		a := randomOrdered(rand.New(rand.NewSource(seed)), 10)
		gaps := Gaps(a)
		for _, v := range a {
			if gaps.Contains(v) {
				return false
			}
		}
		// Elements ∪ gaps must equal the spanning set.
		return a.Set().Union(gaps).Equal(SpanningSet(a.Set()))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("Gaps law violated: %v", err)
	}
}

func TestSubsequencesGuardsAgainstExplosion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Subsequences of a 21-element sequence should panic")
		}
	}()
	big := make(Seq, 21)
	Subsequences(big)
}
