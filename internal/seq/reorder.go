package seq

// The bounded reorder/dedup buffer: the acceptance-layer core that relaxes
// the paper's in-order front-link assumption (Section 2.1) to the bounded
// out-of-order delivery real multipath transports provide, in the style of
// POLIMON's skew-windowed monitors. Arrivals are keyed by sequence number
// into a fixed ring of slots; releases come out in strictly increasing
// seqno order. Three rules bound the buffer:
//
//   - Duplicates drop: a seqno at or behind the release horizon, or one
//     already buffered, is dropped and counted — at-least-once and
//     duplicated-path transports become safe.
//   - Depth evicts: an arrival more than `depth` ahead of the horizon
//     slides the window forward, releasing everything it passes; seqnos
//     skipped over are declared lost.
//   - Skew times out: when a missing seqno blocks the head of the ring
//     longer than the skew bound, the gap is declared lost and the
//     buffered successors release.
//
// Declaring a gap lost is exactly the paper's front-link loss model: the
// update is treated as never delivered, later arrivals of it are
// duplicates, and every downstream property (Tables 1-3) already accounts
// for it. That mapping is why the reorder layer composes with the rest of
// the pipeline unchanged — see DESIGN.md §14.
//
// The ring is deliberately clock-free: callers pass `now` timestamps in,
// so tests and fuzzers drive it deterministically, and the zero value of
// time never sneaks into release decisions.

// OfferVerdict reports what happened to one offered element, as a bit set:
// zero means it was buffered (and possibly released by the same call).
type OfferVerdict uint8

const (
	// OfferDup marks an element dropped as a duplicate: its seqno was at
	// or behind the release horizon, or already occupied its ring slot.
	OfferDup OfferVerdict = 1 << iota
	// OfferReordered marks an element that arrived below the highest
	// seqno seen so far — it was overtaken in flight. Informational: a
	// reordered element may still be buffered and released normally.
	OfferReordered
)

// ReorderStats are cumulative counts over a ring's lifetime.
type ReorderStats struct {
	// Released elements left the ring in seqno order.
	Released int64
	// Dups were dropped (behind the horizon or already buffered).
	Dups int64
	// Reordered arrivals came in below the highest seqno seen.
	Reordered int64
	// GapLost counts missing seqnos declared lost — skipped over by a
	// depth eviction, a skew timeout, or a final flush.
	GapLost int64
}

// reorderSlot is one ring position: the buffered element, its seqno, and
// the caller-clock reading at which it arrived (so an expiry sweep can
// release every gap whose successors have already out-waited the skew).
type reorderSlot[T any] struct {
	seq int64
	at  int64
	val T
	set bool
}

// Reorder is a bounded reorder/dedup buffer over elements keyed by int64
// sequence numbers. It is not safe for concurrent use; callers serialize
// access per stream (the transport layer holds one per variable under a
// per-variable lock).
type Reorder[T any] struct {
	depth   int64
	skew    int64 // gap-release bound in the caller's `now` units
	base    int64 // release horizon: highest seqno released so far
	maxSeen int64 // highest seqno ever offered
	slots   []reorderSlot[T]
	pending int
	// gapSince is the `now` at which the current head gap started blocking
	// release; zero means no gap is pending.
	gapSince int64
	stats    ReorderStats
}

// NewReorder builds a ring whose release horizon starts at base (elements
// with seqno ≤ base are duplicates from the start), holding up to depth
// out-of-order elements, with gaps declared lost after skew units of the
// caller's clock. A depth below 1 is clamped to 1; a negative skew is
// clamped to 0 (gaps release on the first flush after they appear).
func NewReorder[T any](base int64, depth int, skew int64) *Reorder[T] {
	if depth < 1 {
		depth = 1
	}
	if skew < 0 {
		skew = 0
	}
	return &Reorder[T]{
		depth:   int64(depth),
		skew:    skew,
		base:    base,
		maxSeen: base,
		slots:   make([]reorderSlot[T], depth),
	}
}

// Pending returns the number of buffered elements awaiting release.
func (r *Reorder[T]) Pending() int { return r.pending }

// Base returns the release horizon: the highest seqno released so far.
func (r *Reorder[T]) Base() int64 { return r.base }

// Stats returns the cumulative counters.
func (r *Reorder[T]) Stats() ReorderStats { return r.stats }

// Offer feeds one element into the ring. Elements released by this call —
// in strictly increasing seqno order, possibly including earlier buffered
// elements the new arrival unblocked — are appended to out, which is
// returned (pass a pooled slice to keep the hot path allocation-free).
// now is the caller's clock reading, used only to start the gap timer.
func (r *Reorder[T]) Offer(s int64, v T, now int64, out []T) ([]T, OfferVerdict) {
	var verdict OfferVerdict
	if s < r.maxSeen {
		verdict |= OfferReordered
		r.stats.Reordered++
	} else if s > r.maxSeen {
		r.maxSeen = s
	}
	if s <= r.base {
		r.stats.Dups++
		return out, verdict | OfferDup
	}
	base0 := r.base
	if s > r.base+r.depth {
		// Depth eviction: the window slides so (s-depth, s] fits; every
		// slot it passes releases, every missing seqno it passes is lost.
		out = r.slide(s-r.depth, out)
	}
	sl := &r.slots[s%r.depth]
	if sl.set {
		// The window invariant (occupied slots hold seqnos in
		// (base, base+depth]) means an occupied slot is this exact seqno.
		r.gapClock(now, r.base != base0)
		r.stats.Dups++
		return out, verdict | OfferDup
	}
	sl.seq, sl.at, sl.val, sl.set = s, now, v, true
	r.pending++
	out = r.drain(out)
	r.gapClock(now, r.base != base0)
	return out, verdict
}

// FlushExpired releases past every expired gap: once the head gap has been
// blocking longer than the skew bound, the missing seqnos are declared lost
// and the run behind them is appended to out — and so is every further gap
// whose buffered successors have themselves been waiting at least the skew.
// A loss burst (a dropped datagram run, a kernel buffer overflow) shares
// one arrival window, so its gaps expire together; sweeping them in one
// call keeps recovery at one skew total rather than one skew per gap. A
// ring with no pending gap (or one still inside the bound) returns out
// unchanged.
func (r *Reorder[T]) FlushExpired(now int64, out []T) []T {
	if r.pending == 0 || r.gapSince == 0 || now-r.gapSince < r.skew {
		return out
	}
	out = r.skipHeadGap(out)
	for r.pending > 0 {
		at := r.headArrival()
		if now-at < r.skew {
			// The remaining head element has not out-waited the skew yet;
			// its gap expires at at+skew, not a full skew from now.
			r.gapSince = at
			return out
		}
		out = r.skipHeadGap(out)
	}
	r.gapSince = 0
	return out
}

// headArrival returns the arrival clock of the first buffered element past
// the horizon. Requires pending > 0.
func (r *Reorder[T]) headArrival() int64 {
	for s := r.base + 1; ; s++ {
		if sl := &r.slots[s%r.depth]; sl.set && sl.seq == s {
			return sl.at
		}
	}
}

// FlushAll releases every buffered element in seqno order, declaring all
// interior gaps lost — the shutdown path.
func (r *Reorder[T]) FlushAll(out []T) []T {
	for r.pending > 0 {
		out = r.skipHeadGap(out)
	}
	r.gapSince = 0
	return out
}

// skipHeadGap advances the horizon to the first occupied slot, counting
// the missing seqnos it passes as lost, then drains the contiguous run.
// Requires pending > 0.
func (r *Reorder[T]) skipHeadGap(out []T) []T {
	s := r.base + 1
	for {
		if sl := &r.slots[s%r.depth]; sl.set && sl.seq == s {
			break
		}
		s++
	}
	r.stats.GapLost += s - 1 - r.base
	r.base = s - 1
	return r.drain(out)
}

// drain releases the contiguous run at the head of the window.
func (r *Reorder[T]) drain(out []T) []T {
	for r.pending > 0 {
		s := r.base + 1
		sl := &r.slots[s%r.depth]
		if !sl.set || sl.seq != s {
			break
		}
		out = append(out, sl.val)
		var zero T
		sl.val, sl.set = zero, false
		r.pending--
		r.base = s
		r.stats.Released++
	}
	return out
}

// slide force-advances the horizon to newBase: occupied slots at or below
// it release in seqno order, missing seqnos below it are lost.
func (r *Reorder[T]) slide(newBase int64, out []T) []T {
	span := newBase - r.base
	var released int64
	hi := r.base + r.depth
	if newBase < hi {
		hi = newBase
	}
	for s := r.base + 1; s <= hi && r.pending > 0; s++ {
		sl := &r.slots[s%r.depth]
		if sl.set && sl.seq == s {
			out = append(out, sl.val)
			var zero T
			sl.val, sl.set = zero, false
			r.pending--
			r.stats.Released++
			released++
		}
	}
	r.stats.GapLost += span - released
	r.base = newBase
	return out
}

// gapClock restarts or clears the head-gap timer after any state change:
// an empty ring has no gap; a ring whose horizon just moved (progressed)
// has a fresh gap; an unmoved, already-timed gap keeps its start.
func (r *Reorder[T]) gapClock(now int64, progressed bool) {
	switch {
	case r.pending == 0:
		r.gapSince = 0
	case progressed || r.gapSince == 0:
		r.gapSince = now
	}
}
