// Package seq implements the sequence algebra of Section 2.2 of the paper:
// ordered sequences of natural numbers, the subsequence relation ⊑, the
// element set Φ, the ordered union ⊔, and spanning sets. All property
// definitions (orderedness, completeness, consistency) and the AD filtering
// algorithms are stated in terms of these operators, so this package is the
// foundation of both the implementation and the machine checkers.
package seq

import (
	"fmt"
	"sort"
	"strings"
)

// Seq is a sequence of sequence numbers. The paper ranges over natural
// numbers; we use int64 and treat negative values as invalid.
type Seq []int64

// IsOrdered reports whether s's elements appear in non-decreasing order.
// The paper calls such a sequence "ordered"; ⟨3,8,100⟩ and ⟨2,2⟩ are
// ordered, ⟨2,1,6⟩ is not.
func (s Seq) IsOrdered() bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// IsStrictlyOrdered reports whether s's elements appear in strictly
// increasing order (ordered with no duplicates).
func (s Seq) IsStrictlyOrdered() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// IsConsecutive reports whether s is a run of consecutive integers
// (s[i+1] == s[i]+1 for all i). Conservative conditions require their
// history windows to be consecutive.
func (s Seq) IsConsecutive() bool {
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1]+1 {
			return false
		}
	}
	return true
}

// Set returns Φ(s): the unordered set of s's elements.
func (s Seq) Set() Set {
	set := make(Set, len(s))
	for _, v := range s {
		set[v] = struct{}{}
	}
	return set
}

// Clone returns a copy of s. A nil receiver yields a nil result.
func (s Seq) Clone() Seq {
	if s == nil {
		return nil
	}
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Equal reports element-wise equality of two sequences (same length, same
// elements in the same positions). Note this is stronger than the paper's
// "=" on ordered sequences, which it coincides with for duplicate-free
// ordered sequences.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsequenceOf reports s ⊑ t: s can be obtained from t by removing zero or
// more of t's elements.
func (s Seq) SubsequenceOf(t Seq) bool {
	i := 0
	for _, v := range t {
		if i < len(s) && s[i] == v {
			i++
		}
	}
	return i == len(s)
}

// String renders the sequence in the paper's angle-bracket notation.
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "⟨" + strings.Join(parts, ",") + "⟩"
}

// OrderedUnion returns s ⊔ t: the ordered, duplicate-free sequence whose
// element set is Φs ∪ Φt. It returns an error if either input is unordered,
// since ⊔ is defined only on ordered sequences.
func OrderedUnion(s, t Seq) (Seq, error) {
	if !s.IsOrdered() {
		return nil, fmt.Errorf("seq: ordered union: left operand %v is not ordered", s)
	}
	if !t.IsOrdered() {
		return nil, fmt.Errorf("seq: ordered union: right operand %v is not ordered", t)
	}
	return mergeOrdered(s, t), nil
}

// MustOrderedUnion is OrderedUnion for inputs known to be ordered; it panics
// on unordered input. Intended for tests and internal call sites that have
// already validated their operands.
func MustOrderedUnion(s, t Seq) Seq {
	u, err := OrderedUnion(s, t)
	if err != nil {
		panic(err)
	}
	return u
}

func mergeOrdered(s, t Seq) Seq {
	out := make(Seq, 0, len(s)+len(t))
	i, j := 0, 0
	push := func(v int64) {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			push(s[i])
			i++
		case s[i] > t[j]:
			push(t[j])
			j++
		default:
			push(s[i])
			i++
			j++
		}
	}
	for ; i < len(s); i++ {
		push(s[i])
	}
	for ; j < len(t); j++ {
		push(t[j])
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Merge returns every interleaving of s and t that preserves the internal
// order of each input, i.e. all sequences m with s ⊑ m, t ⊑ m and
// len(m) == len(s)+len(t). The AD receives the two CE alert streams in an
// arbitrary such interleaving, so property checkers quantify over Merge.
// The number of results is C(len(s)+len(t), len(s)); callers must keep
// inputs short.
func Merge(s, t Seq) []Seq {
	var (
		out []Seq
		cur = make(Seq, 0, len(s)+len(t))
	)
	var rec func(i, j int)
	rec = func(i, j int) {
		if i == len(s) && j == len(t) {
			if len(cur) == 0 {
				out = append(out, nil)
			} else {
				out = append(out, cur.Clone())
			}
			return
		}
		if i < len(s) {
			cur = append(cur, s[i])
			rec(i+1, j)
			cur = cur[:len(cur)-1]
		}
		if j < len(t) {
			cur = append(cur, t[j])
			rec(i, j+1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)
	return out
}

// Subsequences returns all 2^len(s) subsequences of s, including the empty
// sequence (returned as nil). Used by exhaustive cross-checks of the
// consistency checker on small inputs.
func Subsequences(s Seq) []Seq {
	if len(s) > 20 {
		panic(fmt.Sprintf("seq: Subsequences of length %d would allocate 2^%d sequences", len(s), len(s)))
	}
	n := 1 << len(s)
	out := make([]Seq, 0, n)
	for mask := 0; mask < n; mask++ {
		var sub Seq
		for i, v := range s {
			if mask&(1<<i) != 0 {
				sub = append(sub, v)
			}
		}
		out = append(out, sub)
	}
	return out
}

// Set is Φ: an unordered set of sequence numbers.
type Set map[int64]struct{}

// NewSet builds a set from the given elements.
func NewSet(vs ...int64) Set {
	s := make(Set, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

// Contains reports whether v ∈ s.
func (s Set) Contains(v int64) bool {
	_, ok := s[v]
	return ok
}

// Add inserts v into s.
func (s Set) Add(v int64) { s[v] = struct{}{} }

// AddSeq inserts every element of q into s.
func (s Set) AddSeq(q Seq) {
	for _, v := range q {
		s.Add(v)
	}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	out := make(Set, len(s)+len(t))
	for v := range s {
		out[v] = struct{}{}
	}
	for v := range t {
		out[v] = struct{}{}
	}
	return out
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	out := make(Set)
	for v := range s {
		if t.Contains(v) {
			out[v] = struct{}{}
		}
	}
	return out
}

// Diff returns s \ t as a new set.
func (s Set) Diff(t Set) Set {
	out := make(Set)
	for v := range s {
		if !t.Contains(v) {
			out[v] = struct{}{}
		}
	}
	return out
}

// Equal reports whether s and t contain exactly the same elements.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for v := range s {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for v := range s {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// Sorted returns the elements of s as an ordered sequence.
func (s Set) Sorted() Seq {
	if len(s) == 0 {
		return nil
	}
	out := make(Seq, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set in sorted order.
func (s Set) String() string {
	q := s.Sorted()
	parts := make([]string, len(q))
	for i, v := range q {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SpanningSet returns the set of consecutive integers between the smallest
// and largest elements of s, inclusive; e.g. SpanningSet({1,2,5}) =
// {1,2,3,4,5}. It is used by Algorithm AD-3 (Appendix A). The spanning set
// of an empty set is empty.
func SpanningSet(s Set) Set {
	if len(s) == 0 {
		return make(Set)
	}
	var (
		first = true
		lo    int64
		hi    int64
	)
	for v := range s {
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make(Set, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out[v] = struct{}{}
	}
	return out
}

// Gaps returns SpanningSet(Φs) \ Φs for a sequence: the sequence numbers
// that fall strictly inside s's span but are missing from it. For a history
// window this is exactly the set of updates the CE must have missed.
func Gaps(s Seq) Set {
	set := s.Set()
	return SpanningSet(set).Diff(set)
}
