package runtime

// Soak test: a long randomized session with lossy links, concurrent
// emitters, random display disconnects, and a mid-run snapshot/restore,
// asserting the AD-4 guarantees at the end. Skipped under -short.

import (
	"math/rand"
	"sync"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
)

func TestSoakLossyAD4WithDisconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	const (
		emitters = 4
		perEmit  = 200
	)
	sys, err := New(cond.NewRiseAggressive("x"), ad.NewAD4("x"), Options{
		Replicas: 3,
		Seed:     99,
		Loss: func(replica int, v event.VarName) link.Model {
			return link.Bernoulli{P: 0.25}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// One goroutine toggles the display connection while others emit.
	stop := make(chan struct{})
	var togglerDone sync.WaitGroup
	togglerDone.Add(1)
	go func() {
		defer togglerDone.Done()
		r := rand.New(rand.NewSource(7))
		connected := true
		for {
			select {
			case <-stop:
				sys.Displayer().SetConnected(true)
				return
			default:
			}
			connected = !connected
			sys.Displayer().SetConnected(connected)
			// Busy-toggle a few times then yield via a channel recv with
			// default; the scheduler interleaves this with the emitters.
			for i := 0; i < r.Intn(50); i++ {
				_ = i
			}
		}
	}()

	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(e)))
			for i := 0; i < perEmit; i++ {
				// Values swing so the rise condition fires often.
				if _, err := sys.Emit("x", float64(r.Intn(1000))); err != nil {
					t.Errorf("Emit: %v", err)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	close(stop)
	togglerDone.Wait()
	sys.Displayer().SetConnected(true)
	displayed := sys.Close()

	if len(displayed) == 0 {
		t.Fatal("soak produced no alerts; workload or loss misconfigured")
	}
	if !props.Ordered(displayed, []event.VarName{"x"}) {
		t.Error("AD-4 output must be ordered even under disconnect churn")
	}
	if !props.ConsistentSingle(displayed) {
		t.Error("AD-4 output must be consistent even under disconnect churn")
	}
}
