package runtime

import (
	"fmt"
	"path/filepath"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/ce"
	"condmon/internal/cond"
	"condmon/internal/durable"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/wire"
)

// wireUpdate encodes u as the delta payload durable.RecoverEvaluator
// replays; encoding only fails on absurd variable names, so panic is fine
// in a test helper.
func wireUpdate(u event.Update) []byte {
	b, err := wire.EncodeUpdate(u)
	if err != nil {
		panic(err)
	}
	return b
}

// The kill-and-restart acceptance gate: a run whose displayer state (AD
// filter + CE history windows) is crashed mid-stream and rebuilt from the
// durable WAL must display exactly what the uninterrupted run displays —
// per condition, same alerts, same order — under every loss schedule, for
// per-update and batched emission. Crashes happen in place (windows cleared
// on the live objects, state replayed from the log) so the per-link RNGs
// keep their position: a whole-process restart would reseed the loss
// schedule and make the comparison meaningless. Disk-truth reopen of the
// same WAL files is covered by the durable package tests and the restart
// smoke script.

// crashHalf selects which displayer state is lost at the midpoint.
type crashHalf struct {
	ce, adf bool
	// recover false is the negative control: state is lost and NOT
	// rebuilt, which must change the displayed stream.
	recover bool
}

// emitEngineHalf interleaves x and y updates over index range [from, to) so
// a midpoint crash leaves every window — shared, straggler, and both
// variables — partially filled.
func emitEngineHalf(t *testing.T, ng *Engine, from, to, batch int) {
	t.Helper()
	vals := func(v event.VarName, i int) float64 {
		phase := int(hashVar(v) % 37)
		return float64(((i + phase) * 13) % 1000)
	}
	if batch <= 1 {
		for i := from; i < to; i++ {
			for _, v := range []event.VarName{"x", "y"} {
				if _, err := ng.Emit(v, vals(v, i)); err != nil {
					t.Fatalf("Emit: %v", err)
				}
			}
		}
		return
	}
	for i := from; i < to; i += batch {
		j := i + batch
		if j > to {
			j = to
		}
		for _, v := range []event.VarName{"x", "y"} {
			chunk := make([]float64, 0, j-i)
			for k := i; k < j; k++ {
				chunk = append(chunk, vals(v, k))
			}
			if _, err := ng.EmitBatch(v, chunk); err != nil {
				t.Fatalf("EmitBatch: %v", err)
			}
		}
	}
}

// runEngineDurable drives one journaled Engine over the interleaved stream,
// optionally crashing displayer state at the midpoint, and returns the
// per-condition displayed sequences.
func runEngineDurable(t *testing.T, loss func(int, int, event.VarName) link.Model, batch int, crash *crashHalf) map[string][]event.Alert {
	t.Helper()
	const (
		n              = 400
		adCompactEvery = 8
		laneCompact    = 64
	)
	dir := t.TempDir()
	adLogs := make(map[string]*durable.Log)
	laneLogs := make(map[string]*durable.Log)
	openLog := func(name string) *durable.Log {
		l, err := durable.Open(filepath.Join(dir, name+".wal"), durable.Options{})
		if err != nil {
			t.Fatalf("durable.Open(%s): %v", name, err)
		}
		return l
	}
	ng, err := NewEngine(func(c cond.Condition) ad.Filter {
		l := openLog("ad-" + c.Name())
		adLogs[c.Name()] = l
		return durable.LogFilter(ad.NewAD1(), l, adCompactEvery)
	}, EngineOptions{
		Replicas: 2, Workers: 4, Seed: 42, Loss: loss,
		Journal: func(shard, replica int, se *ce.SharedEvaluator) func(event.Update) error {
			key := fmt.Sprintf("lane-%d-%d", shard, replica)
			l := openLog(key)
			laneLogs[key] = l
			return durable.LaneJournal(l, se, laneCompact)
		},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	conds := engineFleet()
	for _, c := range conds {
		if _, err := ng.Register(c); err != nil {
			t.Fatalf("Register(%s): %v", c.Name(), err)
		}
	}

	emitEngineHalf(t, ng, 0, n/2, batch)
	// Drain so the crash point is quiescent and totally ordered after the
	// first half — the same barrier the baseline run crosses.
	if err := ng.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if crash != nil {
		if crash.ce {
			err := ng.VisitLanes(func(shard, replica int, se *ce.SharedEvaluator) error {
				se.Crash()
				if !crash.recover {
					return nil
				}
				key := fmt.Sprintf("lane-%d-%d", shard, replica)
				_, err := durable.RecoverLane(laneLogs[key], se)
				return err
			})
			if err != nil {
				t.Fatalf("VisitLanes crash/recover: %v", err)
			}
		}
		if crash.adf {
			for _, c := range conds {
				l := adLogs[c.Name()]
				raw := ad.NewAD1()
				if crash.recover {
					if _, err := durable.RecoverFilter(l, raw); err != nil {
						t.Fatalf("RecoverFilter(%s): %v", c.Name(), err)
					}
				}
				if err := ng.ReplaceFilter(c.Name(), durable.LogFilter(raw, l, adCompactEvery)); err != nil {
					t.Fatalf("ReplaceFilter(%s): %v", c.Name(), err)
				}
			}
		}
	}
	emitEngineHalf(t, ng, n/2, n, batch)
	if _, err := ng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out := make(map[string][]event.Alert, len(conds))
	for _, c := range conds {
		out[c.Name()] = ng.Demux().DisplayedFor(c.Name())
	}
	for _, l := range adLogs {
		l.Close()
	}
	for _, l := range laneLogs {
		l.Close()
	}
	return out
}

// TestEngineKillRestartEquivalence is the durability acceptance gate at the
// engine level: for every loss schedule, crashing and recovering the CE
// half, the AD half, or both at the midpoint must leave the displayed
// streams identical to the uninterrupted journaled run — which itself must
// display something, or the gate proves nothing.
func TestEngineKillRestartEquivalence(t *testing.T) {
	bern := func(p float64) link.Model {
		m, err := link.NewBernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	schedules := map[string]func(int, int, event.VarName) link.Model{
		"lossless": nil,
		"bernoulli": func(shard, replica int, v event.VarName) link.Model {
			return bern(0.2)
		},
		"burst": func(shard, replica int, v event.VarName) link.Model {
			m, err := link.NewBurst(0.1, 0.5, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"mixed": func(shard, replica int, v event.VarName) link.Model {
			if replica == 0 {
				return bern(0.3)
			}
			return nil
		},
	}
	halves := map[string]crashHalf{
		"ce":   {ce: true, recover: true},
		"ad":   {adf: true, recover: true},
		"both": {ce: true, adf: true, recover: true},
	}
	for name, loss := range schedules {
		t.Run(name, func(t *testing.T) {
			want := runEngineDurable(t, loss, 1, nil)
			fired := 0
			for _, alerts := range want {
				fired += len(alerts)
			}
			if fired == 0 {
				t.Fatal("baseline displayed nothing; stream too tame")
			}
			for half, ch := range halves {
				ch := ch
				got := runEngineDurable(t, loss, 1, &ch)
				compareDisplayed(t, "crash="+half+"/per-update", want, got)
			}
			// Batched emission with the full crash.
			both := halves["both"]
			wantB := runEngineDurable(t, loss, 64, nil)
			compareDisplayed(t, "crash=both/batch=64", wantB,
				runEngineDurable(t, loss, 64, &both))
		})
	}
}

// TestEngineCrashWithoutRecoveryDiverges is the negative control for the
// gate above: losing the CE windows at the midpoint WITHOUT replaying the
// journal must change the displayed stream under the lossless schedule,
// proving the crash point is observable.
func TestEngineCrashWithoutRecoveryDiverges(t *testing.T) {
	want := runEngineDurable(t, nil, 1, nil)
	got := runEngineDurable(t, nil, 1, &crashHalf{ce: true, recover: false})
	for name, wantAlerts := range want {
		gotAlerts := got[name]
		if len(gotAlerts) != len(wantAlerts) {
			return // diverged, as required
		}
		for i := range wantAlerts {
			if wantAlerts[i].Key() != gotAlerts[i].Key() {
				return
			}
		}
	}
	t.Fatal("unrecovered crash displayed the baseline stream; the equivalence gate proves nothing")
}

// TestSystemKillRestartEquivalence covers the single-condition System's
// hooks: Options.CEJournal, Drain + VisitReplica as the ordered crash
// point, and Displayer.ReplaceFilter for the AD half. The System merges
// per-variable front links nondeterministically, so only a
// single-variable condition with Replicas=1 yields a deterministic
// displayed stream to compare; the multi-variable and multi-replica cases
// are covered by the MultiSystem and Engine tests, whose per-shard
// channels deliver deterministically.
func TestSystemKillRestartEquivalence(t *testing.T) {
	c := cond.MustParse("deep", "x[0] - x[-2] > 150")
	loss := func(replica int, v event.VarName) link.Model {
		m, err := link.NewBernoulli(0.2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	const n = 600
	emitHalf := func(s *System, from, to int) {
		for i := from; i < to; i++ {
			if _, err := s.Emit("x", float64((i*137)%1000)); err != nil {
				t.Fatalf("Emit: %v", err)
			}
		}
	}

	run := func(crash bool) []event.Alert {
		dir := t.TempDir()
		ceLog, err := durable.Open(filepath.Join(dir, "ce.wal"), durable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		adLog, err := durable.Open(filepath.Join(dir, "ad.wal"), durable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer ceLog.Close()
		defer adLog.Close()
		sys, err := New(c, durable.LogFilter(ad.NewAD1(), adLog, 8), Options{
			Replicas: 1, Seed: 7, Loss: loss,
			CEJournal: func(replica int) func(event.Update) error {
				return func(u event.Update) error { return ceLog.Append(wireUpdate(u)) }
			},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		emitHalf(sys, 0, n/2)
		// Drain makes the crash point quiescent end to end: every first-half
		// alert has passed the AD filter, so replaying its log races with
		// nothing. Both runs cross the same barrier.
		if err := sys.Drain(); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		err = sys.VisitReplica(0, func(ev *ce.Evaluator) error {
			if !crash {
				return nil
			}
			ev.Crash()
			_, err := durable.RecoverEvaluator(ceLog, ev)
			return err
		})
		if err != nil {
			t.Fatalf("VisitReplica: %v", err)
		}
		if crash {
			raw := ad.NewAD1()
			if _, err := durable.RecoverFilter(adLog, raw); err != nil {
				t.Fatalf("RecoverFilter: %v", err)
			}
			sys.Displayer().ReplaceFilter(durable.LogFilter(raw, adLog, 8))
		}
		emitHalf(sys, n/2, n)
		return sys.Close()
	}

	want := run(false)
	if len(want) == 0 {
		t.Fatal("baseline displayed nothing")
	}
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("crash run displayed %d alerts, baseline %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("alert %d: crash run %s, baseline %s", i, got[i].Key(), want[i].Key())
		}
	}
}

// TestMultiSystemKillRestartEquivalence covers the pooled MultiSystem's
// hooks: MultiOptions.CEJournal per station, Drain + VisitStations as the
// ordered crash point, and ReplaceFilter for the AD half, with two replicas
// per condition under a mixed loss schedule.
func TestMultiSystemKillRestartEquivalence(t *testing.T) {
	loss := func(condName string, replica int, v event.VarName) link.Model {
		if replica == 0 {
			m, err := link.NewBernoulli(0.25)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		return nil
	}
	conds := equivConds()
	const n = 300
	emitHalf := func(sys *MultiSystem, from, to int) {
		for i := from; i < to; i++ {
			for _, v := range []event.VarName{"x", "y"} {
				phase := int(hashVar(v) % 37)
				if _, err := sys.Emit(v, float64(((i+phase)*13)%1000)); err != nil {
					t.Fatalf("Emit: %v", err)
				}
			}
		}
	}

	run := func(crash bool) map[string][]event.Alert {
		dir := t.TempDir()
		ceLogs := make(map[string]*durable.Log)
		adLogs := make(map[string]*durable.Log)
		openLog := func(m map[string]*durable.Log, name string) *durable.Log {
			l, err := durable.Open(filepath.Join(dir, name+".wal"), durable.Options{})
			if err != nil {
				t.Fatalf("durable.Open(%s): %v", name, err)
			}
			m[name] = l
			return l
		}
		sys, err := NewMulti(conds, func(c cond.Condition) ad.Filter {
			return durable.LogFilter(ad.NewAD1(), openLog(adLogs, "ad-"+c.Name()), 8)
		}, MultiOptions{
			Replicas: 2, Seed: 42, Loss: loss,
			CEJournal: func(condName string, replica int) func(event.Update) error {
				l := openLog(ceLogs, fmt.Sprintf("ce-%s-%d", condName, replica))
				return func(u event.Update) error { return l.Append(wireUpdate(u)) }
			},
		})
		if err != nil {
			t.Fatalf("NewMulti: %v", err)
		}
		emitHalf(sys, 0, n/2)
		if err := sys.Drain(); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		if crash {
			err := sys.VisitStations(func(condName string, replica int, ev *ce.Evaluator) error {
				ev.Crash()
				l := ceLogs[fmt.Sprintf("ce-%s-%d", condName, replica)]
				_, err := durable.RecoverEvaluator(l, ev)
				return err
			})
			if err != nil {
				t.Fatalf("VisitStations crash/recover: %v", err)
			}
			for _, c := range conds {
				l := adLogs["ad-"+c.Name()]
				raw := ad.NewAD1()
				if _, err := durable.RecoverFilter(l, raw); err != nil {
					t.Fatalf("RecoverFilter(%s): %v", c.Name(), err)
				}
				if err := sys.ReplaceFilter(c.Name(), durable.LogFilter(raw, l, 8)); err != nil {
					t.Fatalf("ReplaceFilter(%s): %v", c.Name(), err)
				}
			}
		}
		emitHalf(sys, n/2, n)
		if _, err := sys.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		out := make(map[string][]event.Alert, len(conds))
		for _, c := range conds {
			out[c.Name()] = sys.Demux().DisplayedFor(c.Name())
		}
		for _, l := range ceLogs {
			l.Close()
		}
		for _, l := range adLogs {
			l.Close()
		}
		return out
	}

	want := run(false)
	fired := 0
	for _, alerts := range want {
		fired += len(alerts)
	}
	if fired == 0 {
		t.Fatal("baseline displayed nothing")
	}
	compareDisplayed(t, "multisystem/crash", want, run(true))
}
