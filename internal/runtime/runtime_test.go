package runtime

import (
	"sync"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/props"
	"condmon/internal/seq"
)

func TestLosslessReplicatedSystemEndToEnd(t *testing.T) {
	// Figure 1(b) live: two replicas, lossless links, c1, AD-1. Exactly
	// the distinct alerts of T(U) must be displayed, in order (Theorem 1).
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	values := []float64{2900, 3100, 3200, 2800, 3050}
	for _, v := range values {
		if _, err := sys.Emit("x", v); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	displayed := sys.Close()
	if got := event.AlertSeqNos(displayed, "x"); !got.Equal(seq.Seq{2, 3, 5}) {
		t.Errorf("displayed = %v, want alerts at ⟨2,3,5⟩", got)
	}
	if !props.Ordered(displayed, []event.VarName{"x"}) {
		t.Errorf("lossless AD-1 output must be ordered, got %v", displayed)
	}
	if sys.Displayer().Suppressed() != 3 {
		t.Errorf("suppressed = %d, want 3 duplicates", sys.Displayer().Suppressed())
	}
}

func TestNonReplicatedSystem(t *testing.T) {
	// Replicas=1 is the non-replicated system of Figure 1(a): no
	// duplicates arise at all.
	sys, err := New(cond.NewOverheat("x"), ad.NewPassthrough(), Options{Replicas: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, v := range []float64{3100, 2900, 3300} {
		if _, err := sys.Emit("x", v); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	displayed := sys.Close()
	if got := event.AlertSeqNos(displayed, "x"); !got.Equal(seq.Seq{1, 3}) {
		t.Errorf("displayed = %v, want ⟨1,3⟩", got)
	}
}

func TestLossyLinksProduceSubsequenceAndAD4Consistency(t *testing.T) {
	// With lossy front links and the aggressive c2, AD-4 must keep the
	// displayed sequence ordered and consistent in every schedule.
	sys, err := New(cond.NewRiseAggressive("x"), ad.NewAD4("x"), Options{
		Replicas: 2,
		Seed:     42,
		Loss: func(replica int, v event.VarName) link.Model {
			return link.Bernoulli{P: 0.4}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	val := 100.0
	for i := 0; i < 40; i++ {
		val += float64((i%3)*260 - 200)
		if _, err := sys.Emit("x", val); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	displayed := sys.Close()
	if !props.Ordered(displayed, []event.VarName{"x"}) {
		t.Errorf("AD-4 output must be ordered: %v", displayed)
	}
	if !props.ConsistentSingle(displayed) {
		t.Errorf("AD-4 output must be consistent: %v", displayed)
	}
}

func TestMultiVariableLiveSystem(t *testing.T) {
	// Figure 3 live: two variables under cm with AD-6; the displayed
	// sequence must be ordered per variable.
	sys, err := New(cond.NewTempDiff("x", "y"), ad.NewAD6("x", "y"), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.Emit("x", 1000+float64(i*40)); err != nil {
			t.Fatalf("Emit x: %v", err)
		}
		if _, err := sys.Emit("y", 1050); err != nil {
			t.Fatalf("Emit y: %v", err)
		}
	}
	displayed := sys.Close()
	if !props.Ordered(displayed, []event.VarName{"x", "y"}) {
		t.Errorf("AD-6 output must be ordered per variable: %v", displayed)
	}
}

func TestEmitValidation(t *testing.T) {
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.Emit("nosuch", 1); err == nil {
		t.Error("Emit of unknown variable should fail")
	}
	sys.Close()
	if _, err := sys.Emit("x", 1); err == nil {
		t.Error("Emit after Close should fail")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.Emit("x", 3100); err != nil {
		t.Fatalf("Emit: %v", err)
	}
	a := sys.Close()
	b := sys.Close()
	if len(a) != len(b) {
		t.Errorf("second Close returned %d alerts, first %d", len(b), len(a))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: -1}); err == nil {
		t.Error("negative replica count should fail")
	}
	bad := cond.Func{CondName: "novars", VarDegrees: map[event.VarName]int{}}
	if _, err := New(bad, ad.NewAD1(), Options{}); err == nil {
		t.Error("empty variable set should fail")
	}
}

func TestDisconnectedDisplayerBuffers(t *testing.T) {
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := sys.Displayer()
	d.SetConnected(false)
	for _, v := range []float64{3100, 3200} {
		if _, err := sys.Emit("x", v); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	// Close drains the pipeline; alerts end up buffered, not displayed.
	sys.Close()
	if got := len(sys.Displayer().Displayed()); got != 0 {
		t.Fatalf("disconnected AD displayed %d alerts, want 0", got)
	}
	if d.PendingCount() != 4 { // 2 alerts × 2 replicas
		t.Fatalf("pending = %d, want 4", d.PendingCount())
	}
	// Reconnect: buffered alerts flow through the filter.
	d.SetConnected(true)
	displayed := d.Displayed()
	if got := event.AlertSeqNos(displayed, "x"); !got.Set().Equal(seq.NewSet(1, 2)) {
		t.Errorf("after reconnect displayed = %v, want alerts 1 and 2", got)
	}
	if d.PendingCount() != 0 {
		t.Errorf("pending = %d after reconnect, want 0", d.PendingCount())
	}
	if d.Suppressed() != 2 {
		t.Errorf("suppressed = %d, want 2 duplicates", d.Suppressed())
	}
}

func TestSetConnectedIdempotent(t *testing.T) {
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	d := sys.Displayer()
	d.SetConnected(true) // already connected: no-op
	d.SetConnected(false)
	d.SetConnected(false) // no-op
	d.SetConnected(true)
}

func TestConcurrentEmitters(t *testing.T) {
	// Concurrent Emit calls on both variables must neither race nor
	// produce out-of-order per-variable streams (which the CEs would
	// discard); every update must reach both replicas.
	sys, err := New(cond.NewTempDiff("x", "y"), ad.NewPassthrough(), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const perVar = 50
	var wg sync.WaitGroup
	for _, v := range []event.VarName{"x", "y"} {
		wg.Add(1)
		go func(v event.VarName) {
			defer wg.Done()
			base := 1000.0
			if v == "y" {
				base = 2000.0 // keep |x−y| > 100 so every update fires
			}
			for i := 0; i < perVar; i++ {
				if _, err := sys.Emit(v, base); err != nil {
					t.Errorf("Emit(%s): %v", v, err)
					return
				}
			}
		}(v)
	}
	wg.Wait()
	displayed := sys.Close()
	// Each replica fires on every update once both its windows are full.
	// Depending on how the two variables interleave at a replica, between
	// perVar (all of one variable first) and 2·perVar−1 (immediate
	// alternation) alerts fire, so the passthrough total lies in
	// [2·perVar, 2·(2·perVar−1)].
	lo, hi := 2*perVar, 2*(2*perVar-1)
	if len(displayed) < lo || len(displayed) > hi {
		t.Errorf("displayed %d alerts, want between %d and %d", len(displayed), lo, hi)
	}
}

func TestDisplayerSnapshotAcrossRestart(t *testing.T) {
	// First system session: display some alerts, snapshot the filter.
	sys1, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, v := range []float64{3100, 3200} {
		if _, err := sys1.Emit("x", v); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	sys1.Close()
	blob, err := sys1.Displayer().Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// Restarted session with restored state: the same alerts re-sent by
	// the CEs (same seqnos) must be recognized as duplicates.
	sys2, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys2.Displayer().RestoreFilter(blob); err != nil {
		t.Fatalf("RestoreFilter: %v", err)
	}
	for _, v := range []float64{3100, 3200} {
		if _, err := sys2.Emit("x", v); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	displayed := sys2.Close()
	if len(displayed) != 0 {
		t.Errorf("restored AD re-displayed %d alerts, want 0", len(displayed))
	}
	if got := sys2.Displayer().Suppressed(); got != 4 {
		t.Errorf("suppressed = %d, want 4", got)
	}
}

func TestDisplayerSnapshotUnsupportedFilter(t *testing.T) {
	sys, err := New(cond.NewOverheat("x"), ad.NewPassthrough(), Options{Replicas: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	if _, err := sys.Displayer().Snapshot(); err == nil {
		t.Error("snapshot of a non-snapshottable filter should fail")
	}
	if err := sys.Displayer().RestoreFilter(nil); err == nil {
		t.Error("restore into a non-snapshottable filter should fail")
	}
}

func TestEmitBatchMatchesSingleEmits(t *testing.T) {
	// A batch frame must be observationally identical to the same readings
	// emitted one at a time: same seqnos, same displayed alerts.
	run := func(batch bool) ([]event.Alert, int64) {
		sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 2})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		values := []float64{2900, 3100, 3200, 2800, 3050}
		var last int64
		if batch {
			if last, err = sys.EmitBatch("x", values); err != nil {
				t.Fatalf("EmitBatch: %v", err)
			}
		} else {
			for _, v := range values {
				if last, err = sys.Emit("x", v); err != nil {
					t.Fatalf("Emit: %v", err)
				}
			}
		}
		return sys.Close(), last
	}
	single, sLast := run(false)
	batched, bLast := run(true)
	if sLast != bLast {
		t.Errorf("last seqno: single %d, batched %d", sLast, bLast)
	}
	sk, bk := event.AlertKeys(single), event.AlertKeys(batched)
	if len(sk) != len(bk) {
		t.Fatalf("single displayed %d alerts %v, batched %d %v", len(sk), sk, len(bk), bk)
	}
	for i := range sk {
		if sk[i] != bk[i] {
			t.Errorf("alert %d: single %q, batched %q", i, sk[i], bk[i])
		}
	}
}

func TestEmitBatchLossDeterminism(t *testing.T) {
	// Lossy links draw from the same seeded stream whether updates arrive
	// singly or batched, so the two runs see identical loss schedules and
	// must display identical alerts. One replica keeps the run fully
	// deterministic: with several replicas under independent loss the AD's
	// cross-replica merge order is scheduler-dependent, so an order-exact
	// comparison would be flaky (the MultiSystem batch-equivalence tests
	// cover the replicated case, whose shard layer merges replicas
	// deterministically).
	run := func(batch bool) []string {
		sys, err := New(cond.NewRiseAggressive("x"), ad.NewAD4("x"), Options{
			Replicas: 1,
			Seed:     42,
			Loss: func(replica int, v event.VarName) link.Model {
				return link.Bernoulli{P: 0.4}
			},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		values := make([]float64, 40)
		val := 100.0
		for i := range values {
			val += float64((i%3)*260 - 200)
			values[i] = val
		}
		if batch {
			if _, err := sys.EmitBatch("x", values); err != nil {
				t.Fatalf("EmitBatch: %v", err)
			}
		} else {
			for _, v := range values {
				if _, err := sys.Emit("x", v); err != nil {
					t.Fatalf("Emit: %v", err)
				}
			}
		}
		return event.AlertKeys(sys.Close())
	}
	single := run(false)
	batched := run(true)
	if len(single) != len(batched) {
		t.Fatalf("single displayed %d alerts %v, batched %d %v",
			len(single), single, len(batched), batched)
	}
	for i := range single {
		if single[i] != batched[i] {
			t.Errorf("alert %d: single %q, batched %q", i, single[i], batched[i])
		}
	}
}

func TestEmitBatchEmpty(t *testing.T) {
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.Emit("x", 3100); err != nil {
		t.Fatalf("Emit: %v", err)
	}
	n, err := sys.EmitBatch("x", nil)
	if err != nil {
		t.Fatalf("EmitBatch(nil): %v", err)
	}
	if n != 1 {
		t.Errorf("empty batch returned seqno %d, want current seqno 1", n)
	}
	if _, err := sys.EmitBatch("z", []float64{1}); err == nil {
		t.Error("EmitBatch on unknown variable should fail")
	}
	if got := len(sys.Close()); got != 1 {
		t.Errorf("displayed %d alerts, want 1", got)
	}
}
