package runtime

import (
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/event"
	"condmon/internal/link"
	"condmon/internal/obs"
)

// indexSpans groups one lineage's spans by stage for assertion.
func indexSpans(spans []obs.Span) map[string][]obs.Span {
	byStage := make(map[string][]obs.Span)
	for _, s := range spans {
		byStage[s.Stage] = append(byStage[s.Stage], s)
	}
	return byStage
}

// A traced in-process System records the full lineage of every update:
// emit at the DM, a delivery-or-loss link span per replica, a feed span
// per delivery, and displayer verdicts naming the suppressing rule — the
// single-process version of what `condmon-trace follow` stitches from a
// live fleet.
func TestSystemTraceStitch(t *testing.T) {
	tr := obs.NewTracer(4096)
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{
		Replicas: 2,
		Seed:     3,
		Loss: func(replica int, v event.VarName) link.Model {
			if replica == 1 { // CE2 lossy, CE1 lossless
				return link.Bernoulli{P: 0.5}
			}
			return nil
		},
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		v := 100.0
		if i%4 == 3 {
			v = 3200 // over the overheat threshold: fires on every replica that got it
		}
		if _, err := sys.Emit("x", v); err != nil {
			t.Fatal(err)
		}
	}
	displayed := sys.Close()
	if len(displayed) == 0 {
		t.Fatal("run displayed nothing; the trace assertions below would be vacuous")
	}

	spans := tr.Spans("x", -1)
	byStage := indexSpans(spans)
	if got := len(byStage[obs.StageEmit]); got != n {
		t.Errorf("%d emit spans, want %d", got, n)
	}
	// Every emitted update gets exactly one link span per replica.
	if got := len(byStage[obs.StageLink]); got != 2*n {
		t.Errorf("%d link spans, want %d (one per update per replica)", got, 2*n)
	}
	delivered := 0
	for _, s := range byStage[obs.StageLink] {
		switch s.Disp {
		case obs.DispDelivered:
			delivered++
		case obs.DispLost:
			if s.Replica != "CE2" {
				t.Errorf("lossless replica lost an update: %+v", s)
			}
		default:
			t.Errorf("unexpected link disposition: %+v", s)
		}
	}
	// Every delivery reaches Feed; front links preserve order, so nothing
	// is discarded.
	if got := len(byStage[obs.StageFeed]); got != delivered {
		t.Errorf("%d feed spans, want %d (one per delivery)", got, delivered)
	}
	// Displayer verdicts: one AD span per offer; each is displayed or
	// suppressed, and suppressions name the rule.
	if len(byStage[obs.StageAD]) == 0 {
		t.Fatal("no AD spans recorded")
	}
	displayedSpans, suppressed := 0, 0
	for _, s := range byStage[obs.StageAD] {
		switch s.Disp {
		case obs.DispDisplayed:
			displayedSpans++
			if s.Rule != "" {
				t.Errorf("displayed span carries a rule: %+v", s)
			}
		case obs.DispSuppressed:
			suppressed++
			if s.Rule != "AD-1" {
				t.Errorf("suppressed span rule = %q, want AD-1: %+v", s.Rule, s)
			}
		default:
			t.Errorf("unexpected AD disposition: %+v", s)
		}
	}
	if displayedSpans != len(displayed) {
		t.Errorf("%d displayed spans, want %d (one per displayed alert)", displayedSpans, len(displayed))
	}
	if suppressed == 0 {
		t.Error("two replicas firing on shared triggers suppressed nothing; duplicate filtering broken?")
	}
}

// The traced System still snapshots and restores its filter state: the
// Traced wrapper must not hide ad.Snapshotter from the fault-injection
// path (snapshotter unwraps observability wrappers).
func TestTracedSystemFilterSnapshot(t *testing.T) {
	tr := obs.NewTracer(256)
	sys, err := New(cond.NewOverheat("x"), ad.NewAD1(), Options{Replicas: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Emit("x", 3200); err != nil {
		t.Fatal(err)
	}
	d := sys.Displayer()
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot on a traced displayer: %v", err)
	}
	if err := d.RestoreFilter(snap); err != nil {
		t.Fatalf("RestoreFilter on a traced displayer: %v", err)
	}
	sys.Close()
}

// A traced MultiSystem records the same lineage per station, with the
// station id as the replica label and sent spans on the multiplexed back
// link.
func TestMultiSystemTraceStitch(t *testing.T) {
	tr := obs.NewTracer(8192)
	condHot := cond.MustParse("hot", "x[0] > 3000")
	sys, err := NewMulti([]cond.Condition{condHot}, func(c cond.Condition) ad.Filter {
		return ad.NewAD1()
	}, MultiOptions{Replicas: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		v := 100.0
		if i%5 == 4 {
			v = 3200
		}
		if _, err := sys.Emit("x", v); err != nil {
			t.Fatal(err)
		}
	}
	displayed, err := sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(displayed) == 0 {
		t.Fatal("run displayed nothing")
	}

	byStage := indexSpans(tr.Spans("x", -1))
	if got := len(byStage[obs.StageEmit]); got != n {
		t.Errorf("%d emit spans, want %d", got, n)
	}
	if got := len(byStage[obs.StageLink]); got != 2*n {
		t.Errorf("%d link spans, want %d", got, 2*n)
	}
	if len(byStage[obs.StageBacklink]) == 0 {
		t.Error("no backlink sent spans recorded")
	}
	for _, s := range byStage[obs.StageBacklink] {
		if s.Disp != obs.DispSent || s.Replica == "" {
			t.Errorf("backlink span = %+v, want sent with a station replica label", s)
		}
	}
	if len(byStage[obs.StageAD]) == 0 {
		t.Error("no AD spans recorded")
	}
}
