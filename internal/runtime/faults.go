package runtime

import (
	"fmt"

	"condmon/internal/ce"
	"condmon/internal/event"
)

// Fault injection for live systems: the failure modes of Section 1 — a CE
// going down and missing updates, or crashing and losing its history state
// — exposed as runtime controls. Control requests are serialized onto each
// CE's own goroutine through its update channel, so no locking is added to
// the evaluator hot path.

// ctlKind enumerates replica control operations.
type ctlKind int

const (
	ctlSetDown ctlKind = iota + 1
	ctlSetUp
	ctlCrash
)

// ctlMsg is a control request carried in-band through the update pipeline.
// One copy travels down every variable's channel; the target replica
// applies the operation when the last copy arrives, which totally orders
// the control after every previously emitted update. The remaining counter
// is owned by the target replica's goroutine.
type ctlMsg struct {
	kind      ctlKind
	remaining int
	done      chan struct{}
}

// SetReplicaDown fails (down=true) or revives (down=false) replica i
// (0-based). While down the replica misses every update, exactly the
// Section 1 failure replication exists to mask. The call blocks until the
// replica has applied the change, so updates emitted afterwards are
// guaranteed to be missed (or seen).
func (s *System) SetReplicaDown(i int, down bool) error {
	kind := ctlSetUp
	if down {
		kind = ctlSetDown
	}
	return s.control(i, kind)
}

// CrashReplica simulates a fail-stop restart of replica i without stable
// storage: its history windows are cleared and must refill before it can
// fire again.
func (s *System) CrashReplica(i int) error {
	return s.control(i, ctlCrash)
}

func (s *System) control(i int, kind ctlKind) error {
	if i < 0 || i >= s.replicas {
		return fmt.Errorf("runtime: replica index %d outside [0,%d)", i, s.replicas)
	}
	msg := &ctlMsg{kind: kind, remaining: len(s.vars), done: make(chan struct{})}
	for _, v := range s.vars {
		dm := s.dms[v]
		dm.mu.Lock()
		if dm.closed {
			dm.mu.Unlock()
			return fmt.Errorf("runtime: control on closed system")
		}
		dm.in <- frame{ctl: msg, target: i}
		dm.mu.Unlock()
	}
	select {
	case <-msg.done:
		return nil
	case <-s.shutdown:
		return fmt.Errorf("runtime: control interrupted by shutdown")
	}
}

// applyCtl executes a control request on the evaluator; runs on the target
// replica's goroutine once the frame's last copy arrives.
func applyCtl(eval *ce.Evaluator, msg *ctlMsg) {
	msg.remaining--
	if msg.remaining > 0 {
		return
	}
	switch msg.kind {
	case ctlSetDown:
		eval.SetDown(true)
	case ctlSetUp:
		eval.SetDown(false)
	case ctlCrash:
		eval.Crash()
	}
	close(msg.done)
}

// ceLoop is the replica server loop: updates and in-band control frames
// are serialized on one goroutine.
func ceLoop(index int, eval *ce.Evaluator, in chan frame, back chan event.Alert) {
	defer close(back)
	feed := func(u event.Update) {
		a, fired, err := eval.Feed(u)
		if err != nil {
			panic(fmt.Sprintf("runtime: %s: %v", eval.ID(), err))
		}
		if fired {
			back <- a
		}
	}
	for f := range in {
		switch {
		case f.ctl != nil:
			if f.target == index {
				applyCtl(eval, f.ctl)
			}
		case f.us != nil:
			for _, u := range f.us {
				feed(u)
			}
		default:
			feed(f.u)
		}
	}
}
