package runtime

import (
	"fmt"
	gort "runtime"
	"sync/atomic"

	"condmon/internal/ce"
	"condmon/internal/event"
)

// Fault injection for live systems: the failure modes of Section 1 — a CE
// going down and missing updates, or crashing and losing its history state
// — exposed as runtime controls. Control requests are serialized onto each
// CE's own goroutine through its update channel, so no locking is added to
// the evaluator hot path.

// ctlKind enumerates replica control operations.
type ctlKind int

const (
	ctlSetDown ctlKind = iota + 1
	ctlSetUp
	ctlCrash
	ctlVisit
)

// ctlMsg is a control request carried in-band through the update pipeline.
// One copy travels down every variable's channel; the target replica
// applies the operation when the last copy arrives, which totally orders
// the control after every previously emitted update. The remaining counter
// is owned by the target replica's goroutine.
type ctlMsg struct {
	kind      ctlKind
	remaining int
	done      chan struct{}
	// visit carries the ctlVisit callback; err its result, valid once
	// done is closed.
	visit func(*ce.Evaluator) error
	err   error
}

// SetReplicaDown fails (down=true) or revives (down=false) replica i
// (0-based). While down the replica misses every update, exactly the
// Section 1 failure replication exists to mask. The call blocks until the
// replica has applied the change, so updates emitted afterwards are
// guaranteed to be missed (or seen).
func (s *System) SetReplicaDown(i int, down bool) error {
	kind := ctlSetUp
	if down {
		kind = ctlSetDown
	}
	return s.control(i, kind, nil)
}

// CrashReplica simulates a fail-stop restart of replica i without stable
// storage: its history windows are cleared and must refill before it can
// fire again.
func (s *System) CrashReplica(i int) error {
	return s.control(i, ctlCrash, nil)
}

// VisitReplica runs fn on replica i's evaluator, on that replica's own
// goroutine, totally ordered after every previously emitted update — the
// recovery hook: fn can crash the evaluator and replay a durable log into
// it (durable.RecoverEvaluator) at a well-defined point of the stream.
// The call blocks until fn returns; its error is passed through.
func (s *System) VisitReplica(i int, fn func(ev *ce.Evaluator) error) error {
	return s.control(i, ctlVisit, fn)
}

// Drain blocks until every update emitted before the call has been fully
// processed end to end: fed to every replica and any resulting alerts
// offered to the Alert Displayer. When Drain returns, the displayed stream
// is final for the emitted prefix — the quiescent point for swapping
// displayer state during recovery (Displayer.ReplaceFilter).
func (s *System) Drain() error {
	// A nil visit on each replica is a pure barrier: it applies only after
	// every previously emitted update has been fed, and each feed counts
	// its alert in alertsSent before the control is reached.
	for i := 0; i < s.replicas; i++ {
		if err := s.control(i, ctlVisit, nil); err != nil {
			return err
		}
	}
	// The alerts are now either consumed or sitting in the buffered back
	// links; wait for the displayer's receivers to run them through the
	// filter.
	target := s.alertsSent.Load()
	for s.adSrv.received() < target {
		gort.Gosched()
	}
	return nil
}

func (s *System) control(i int, kind ctlKind, visit func(*ce.Evaluator) error) error {
	if i < 0 || i >= s.replicas {
		return fmt.Errorf("runtime: replica index %d outside [0,%d)", i, s.replicas)
	}
	msg := &ctlMsg{kind: kind, remaining: len(s.vars), done: make(chan struct{}), visit: visit}
	for _, v := range s.vars {
		dm := s.dms[v]
		dm.mu.Lock()
		if dm.closed {
			dm.mu.Unlock()
			return fmt.Errorf("runtime: control on closed system")
		}
		dm.in <- frame{ctl: msg, target: i}
		dm.mu.Unlock()
	}
	select {
	case <-msg.done:
		return msg.err
	case <-s.shutdown:
		return fmt.Errorf("runtime: control interrupted by shutdown")
	}
}

// applyCtl executes a control request on the evaluator; runs on the target
// replica's goroutine once the frame's last copy arrives.
func applyCtl(eval *ce.Evaluator, msg *ctlMsg) {
	msg.remaining--
	if msg.remaining > 0 {
		return
	}
	switch msg.kind {
	case ctlSetDown:
		eval.SetDown(true)
	case ctlSetUp:
		eval.SetDown(false)
	case ctlCrash:
		eval.Crash()
	case ctlVisit:
		if msg.visit != nil {
			msg.err = msg.visit(eval)
		}
	}
	close(msg.done)
}

// ceLoop is the replica server loop: updates and in-band control frames
// are serialized on one goroutine. Each fired alert is counted in sent
// before the next frame is processed, which is what lets Drain's control
// barrier read a complete count for the emitted prefix.
func ceLoop(index int, eval *ce.Evaluator, in chan frame, back chan event.Alert, sent *atomic.Int64) {
	defer close(back)
	feed := func(u event.Update) {
		a, fired, err := eval.Feed(u)
		if err != nil {
			panic(fmt.Sprintf("runtime: %s: %v", eval.ID(), err))
		}
		if fired {
			sent.Add(1)
			back <- a
		}
	}
	for f := range in {
		switch {
		case f.ctl != nil:
			if f.target == index {
				applyCtl(eval, f.ctl)
			}
		case f.us != nil:
			for _, u := range f.us {
				feed(u)
			}
		default:
			feed(f.u)
		}
	}
}
