package runtime

import (
	"errors"
	"testing"

	"condmon/internal/ad"
	"condmon/internal/cond"
	"condmon/internal/obs"
)

// TestNextRunAdaptation pins the pure controller step: only a backlog that
// is past the high-water mark and still growing halves the run; every
// other regime doubles it, and the result clamps to [Min, Max].
func TestNextRunAdaptation(t *testing.T) {
	o := PumpOptions{Min: 4, Max: 64, HighWater: 10}
	cases := []struct {
		name             string
		run, depth, last int
		want             int
	}{
		{"drained doubles", 8, 0, 3, 16},
		{"shallow growing backlog doubles", 8, 5, 2, 16},
		{"at high water doubles", 8, 10, 2, 16},
		{"growing past high water halves", 8, 11, 2, 4},
		{"deep but stable backlog doubles", 8, 100, 100, 16},
		{"deep shrinking backlog doubles", 8, 90, 100, 16},
		{"clamped at max", 64, 0, 0, 64},
		{"clamped at min", 4, 100, 10, 4},
		{"grows toward max", 48, 0, 0, 64},
	}
	for _, tc := range cases {
		if got := nextRun(tc.run, tc.depth, tc.last, o); got != tc.want {
			t.Errorf("%s: nextRun(%d, %d, %d) = %d, want %d",
				tc.name, tc.run, tc.depth, tc.last, got, tc.want)
		}
	}
}

// TestPumpOptionsDefaults checks the zero value resolves to sane tuning and
// that Max is never allowed below Min.
func TestPumpOptionsDefaults(t *testing.T) {
	var o PumpOptions
	o.applyDefaults()
	if o.Min != defaultPumpMin || o.Max != defaultPumpMax || o.HighWater != defaultPumpHighWater {
		t.Errorf("defaults = %+v, want {%d %d %d}",
			o, defaultPumpMin, defaultPumpMax, defaultPumpHighWater)
	}
	inverted := PumpOptions{Min: 100, Max: 10, HighWater: 1}
	inverted.applyDefaults()
	if inverted.Max != 100 {
		t.Errorf("Max below Min should be raised to Min, got Max=%d", inverted.Max)
	}
}

// TestPumpFlushSemantics verifies buffering: readings accumulate until the
// run length is hit, Flush pushes partial runs, and nothing is lost.
func TestPumpFlushSemantics(t *testing.T) {
	sys, err := NewMulti(
		[]cond.Condition{cond.Threshold{CondName: "hot", Var: "x", Limit: 500, Above: true}},
		func(c cond.Condition) ad.Filter { return ad.NewAD1() },
		MultiOptions{Replicas: 1})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	p := sys.NewPump(PumpOptions{Min: 4, Max: 4, HighWater: 1})
	for i := 0; i < 3; i++ {
		if err := p.Feed("x", float64(600+i)); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	if got := p.Pending("x"); got != 3 {
		t.Errorf("Pending = %d before run boundary, want 3", got)
	}
	if err := p.Feed("x", 603); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if got := p.Pending("x"); got != 0 {
		t.Errorf("Pending = %d after full run, want 0", got)
	}
	if err := p.Feed("x", 604); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := p.Pending("x"); got != 0 {
		t.Errorf("Pending = %d after Flush, want 0", got)
	}
	displayed, err := sys.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The threshold fires on every x > 500 update and AD-1 displays each
	// distinct alert once, so all five readings must have made it through.
	if len(displayed) != 5 {
		t.Errorf("displayed %d alerts, want 5", len(displayed))
	}
}

// TestPumpRunGauge verifies the controller publishes its current run length
// as multi.pump.<var>.run when the system carries a metrics registry.
func TestPumpRunGauge(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _, _ := newTestMulti(t, MultiOptions{Replicas: 1, Metrics: reg})
	p := sys.NewPump(PumpOptions{Min: 2, Max: 16, HighWater: 1})
	for i := 0; i < 2; i++ {
		if err := p.Feed("x", float64(i)); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	pt, ok := reg.Get("multi.pump.x.run")
	if !ok {
		t.Fatal("multi.pump.x.run gauge not registered")
	}
	if pt.Value < 2 || pt.Value > 16 {
		t.Errorf("run gauge = %d, want within [2, 16]", pt.Value)
	}
	if got := p.Run("x"); int64(got) != pt.Value {
		t.Errorf("Run(x) = %d but gauge says %d", got, pt.Value)
	}
	if _, err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPumpClosedSentinel pins error propagation: a Feed that triggers a
// flush after Close surfaces the wrapped ErrClosed.
func TestPumpClosedSentinel(t *testing.T) {
	sys, _, _ := newTestMulti(t, MultiOptions{Replicas: 1})
	p := sys.NewPump(PumpOptions{Min: 1, Max: 1, HighWater: 1})
	if _, err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Feed("x", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Feed after Close = %v, want ErrClosed", err)
	}
}

// TestQueueDepthUnknownVar pins the zero-for-unknown contract the pump
// relies on.
func TestQueueDepthUnknownVar(t *testing.T) {
	sys, _, _ := newTestMulti(t, MultiOptions{Replicas: 1})
	if got := sys.QueueDepth("nosuch"); got != 0 {
		t.Errorf("QueueDepth(nosuch) = %d, want 0", got)
	}
	if _, err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
